(* Differential testing: RANDOM aggregate batches evaluated by every engine
   in the repository — LMFAO (all option combinations collapse to one here),
   the tuple-at-a-time and columnar per-aggregate baselines, and the
   worst-case-optimal materialisation path — must all agree with the naive
   reference on random acyclic databases. This is the repository's broadest
   cross-engine consistency net. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

let int n = Value.Int n
let flt x = Value.Float x

(* random acyclic database: star or chain, int keys, float measures *)
let random_database rng =
  let card () = Util.Prng.int_range rng 0 25 in
  let domain = Util.Prng.int_range rng 1 5 in
  let mk name attrs gen =
    let rel = Relation.create name (Schema.make attrs) in
    for _ = 1 to card () do
      Relation.append rel (gen ())
    done;
    rel
  in
  let ri d = int (Util.Prng.int rng d) in
  let rf () = flt (float_of_int (Util.Prng.int rng 7)) in
  if Util.Prng.bool rng then
    (* star *)
    Database.create "star"
      [
        mk "F"
          [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]
          (fun () -> [| ri domain; ri domain; rf () |]);
        mk "D1"
          [ ("a", Value.TInt); ("x", Value.TInt); ("u", Value.TFloat) ]
          (fun () -> [| ri domain; ri 3; rf () |]);
        mk "D2"
          [ ("b", Value.TInt); ("y", Value.TInt) ]
          (fun () -> [| ri domain; ri 3 |]);
      ]
  else
    (* chain *)
    Database.create "chain"
      [
        mk "R1"
          [ ("a", Value.TInt); ("m", Value.TFloat) ]
          (fun () -> [| ri domain; rf () |]);
        mk "R2"
          [ ("a", Value.TInt); ("b", Value.TInt); ("x", Value.TInt) ]
          (fun () -> [| ri domain; ri domain; ri 3 |]);
        mk "R3"
          [ ("b", Value.TInt); ("u", Value.TFloat); ("y", Value.TInt) ]
          (fun () -> [| ri domain; rf (); ri 3 |]);
      ]

let numeric_attrs db =
  List.filter
    (fun a ->
      List.exists
        (fun r ->
          match Schema.position_opt (Relation.schema r) a with
          | Some i -> (Schema.attr_at (Relation.schema r) i).ty = Value.TFloat
          | None -> false)
        (Database.relations db))
    (Database.attribute_names db)

let categorical_attrs db =
  List.filter
    (fun a -> a = "x" || a = "y")
    (Database.attribute_names db)

(* a random aggregate over the database's attributes *)
let random_spec rng db i =
  let numeric = Array.of_list (numeric_attrs db) in
  let categorical = Array.of_list (categorical_attrs db) in
  let terms =
    List.init (Util.Prng.int rng 3) (fun _ ->
        (Util.Prng.choice rng numeric, Util.Prng.int_range rng 1 2))
  in
  let group_by =
    if Array.length categorical = 0 then []
    else
      List.filteri
        (fun _ _ -> Util.Prng.bool rng)
        (Array.to_list categorical)
  in
  let filter =
    match Util.Prng.int rng 4 with
    | 0 -> Predicate.True
    | 1 -> Predicate.Ge (Util.Prng.choice rng numeric, flt (float_of_int (Util.Prng.int rng 5)))
    | 2 when Array.length categorical > 0 ->
        Predicate.Eq (Util.Prng.choice rng categorical, int (Util.Prng.int rng 3))
    | _ -> Predicate.Lt (Util.Prng.choice rng numeric, flt (float_of_int (Util.Prng.int rng 7)))
  in
  Spec.make ~filter ~id:(Printf.sprintf "agg%d" i) ~terms ~group_by ()

let norm r = List.sort compare (List.filter (fun (_, v) -> Float.abs v > 1e-9) r)

let agree a b =
  norm a = [] && norm b = [] || Spec.result_equal (norm a) (norm b)

let engines_agree =
  QCheck2.Test.make ~count:60 ~name:"random batches: all engines agree"
    QCheck2.Gen.int
    (fun seed ->
      let rng = Util.Prng.create seed in
      let db = random_database rng in
      let batch =
        {
          Batch.name = "random";
          aggregates = List.init (Util.Prng.int_range rng 1 8) (random_spec rng db);
        }
      in
      let join = Database.materialise_join db in
      let reference = Batch.eval_flat join batch in
      let lmfao = (Lmfao.Engine.eval db batch).Lmfao.Engine.keyed in
      let dbx = Baseline.Unshared.dbx join batch in
      let monet = Baseline.Unshared.monet join batch in
      let wcoj_join =
        Factorized.Wcoj.materialise
          ~order:(List.sort compare (Database.attribute_names db))
          (Database.relations db)
      in
      let via_wcoj = Batch.eval_flat wcoj_join batch in
      List.for_all
        (fun (id, expected) ->
          agree expected (List.assoc id lmfao)
          && agree expected (List.assoc id dbx)
          && agree expected (List.assoc id monet)
          && agree expected (List.assoc id via_wcoj))
        reference)

(* degree statistics sanity over the same random relations *)
let degree_stats_consistent =
  QCheck2.Test.make ~count:60 ~name:"degree stats: partitions cover, degrees sum"
    QCheck2.Gen.int
    (fun seed ->
      let rng = Util.Prng.create seed in
      let db = random_database rng in
      List.for_all
        (fun rel ->
          List.for_all
            (fun attr ->
              let ds = Stats.degrees rel attr in
              let total = List.fold_left (fun acc (_, c) -> acc + c) 0 ds in
              let heavy, light = Stats.heavy_light_partition rel attr in
              total = Relation.cardinality rel
              && Relation.cardinality heavy + Relation.cardinality light
                 = Relation.cardinality rel)
            (Schema.names (Relation.schema rel)))
        (Database.relations db))

let test_heavy_light_split () =
  let rel =
    Relation.of_list "R"
      (Schema.make [ ("a", Value.TInt) ])
      (List.init 100 (fun i -> [| int (if i < 90 then 0 else i) |]))
  in
  let stats = Stats.degree_stats ~threshold:10 rel "a" in
  Alcotest.(check int) "one heavy value" 1 (List.length stats.heavy);
  Alcotest.(check int) "ten light values" 10 stats.light_count;
  Alcotest.(check int) "max degree" 90 stats.max_degree;
  let heavy, light = Stats.heavy_light_partition ~threshold:10 rel "a" in
  Alcotest.(check int) "heavy tuples" 90 (Relation.cardinality heavy);
  Alcotest.(check int) "light tuples" 10 (Relation.cardinality light)

(* ---- incremental maintenance: the three IVM strategies against each
   other and against recompute, after EVERY batch of one seeded 500-update
   stream of inserts and deletes ---- *)

module M = Fivm.Maintainer
module Delta = Fivm.Delta

let stream_db () =
  Database.create "stream"
    [
      Relation.create "F"
        (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

(* Inserts with small key domains (so tuples join), and deletes of
   previously inserted tuples about a quarter of the time. *)
let stream_update rng inserted =
  if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
    let u = Util.Prng.choice rng (Array.of_list !inserted) in
    inserted := List.filter (fun x -> x != u) !inserted;
    Delta.delete u.Delta.relation u.Delta.tuple
  end
  else begin
    let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
    let tuple =
      match rel with
      | "F" ->
          [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4);
             flt (Util.Prng.float rng 5.0) |]
      | _ -> [| int (Util.Prng.int rng 4); flt (Util.Prng.float rng 5.0) |]
    in
    let u = Delta.insert rel tuple in
    inserted := u :: !inserted;
    u
  end

let test_maintenance_strategies_agree () =
  let rng = Util.Prng.create 20260806 in
  let inserted = ref [] in
  let updates = Array.init 500 (fun _ -> stream_update rng inserted) in
  let features = [ "m"; "u"; "v" ] in
  let maintainers =
    List.map
      (fun s -> M.create s (stream_db ()) ~features)
      [ M.F_ivm; M.Higher_order; M.First_order ]
  in
  let batch_size = 20 in
  let batches = Array.length updates / batch_size in
  for b = 0 to batches - 1 do
    List.iter
      (fun m ->
        for i = b * batch_size to ((b + 1) * batch_size) - 1 do
          M.apply m updates.(i)
        done)
      maintainers;
    match maintainers with
    | fivm :: others ->
        let reference = M.covariance fivm in
        Alcotest.(check bool)
          (Printf.sprintf "batch %d: F-IVM matches recompute" b)
          true
          (Rings.Covariance.equal_rel ~eps:1e-6 reference (M.recompute fivm));
        List.iter
          (fun m ->
            Alcotest.(check bool)
              (Printf.sprintf "batch %d: %s matches F-IVM" b
                 (M.strategy_name (M.strategy_of m)))
              true
              (Rings.Covariance.equal_rel ~eps:1e-6 reference (M.covariance m)))
          others
    | [] -> assert false
  done;
  (* the stream really exercised both directions *)
  let deletes =
    Array.fold_left
      (fun acc (u : Delta.update) -> if u.Delta.multiplicity < 0 then acc + 1 else acc)
      0 updates
  in
  Alcotest.(check bool) "stream contains deletes" true (deletes > 50)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "differential"
    [
      ("cross-engine", [ qcheck engines_agree ]);
      ( "delta-stream",
        [
          Alcotest.test_case "all strategies + recompute agree per batch"
            `Quick test_maintenance_strategies_agree;
        ] );
      ( "degree-stats",
        [
          qcheck degree_stats_consistent;
          Alcotest.test_case "heavy/light split" `Quick test_heavy_light_split;
        ] );
    ]
