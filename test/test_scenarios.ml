(* The hostile-stream scenario matrix as a test suite: every dataset x shape
   cell through every layer (maintenance x3 strategies, shards {1,4,8},
   crash recovery, serving, models, streamed engines), each differential
   demanding BIT-identity — plus targeted regressions for the two defects
   the matrix was built to catch: zero-multiplicity group retention in the
   view trees, and lost updates on reordered/duplicated WAL tails. *)

open Relational
module M = Fivm.Maintainer
module Sg = Datagen.Stream_gen

let datasets =
  [
    ("retailer", Datagen.Retailer.generate, Datagen.Retailer.ivm_features);
    ("favorita", Datagen.Favorita.generate, Datagen.Favorita.ivm_features);
    ("yelp", Datagen.Yelp.generate, Datagen.Yelp.ivm_features);
    ("tpcds", Datagen.Tpcds.generate, Datagen.Tpcds.ivm_features);
  ]

let cov_bits c =
  let b = Buffer.create 512 in
  Rings.Covariance.encode b c;
  Buffer.contents b

(* ------------------------------------------------------- the full matrix *)

let test_cell (generate : ?scale:float -> seed:int -> unit -> Database.t) features
    dataset shape () =
  let db = generate ~scale:0.01 ~seed:42 () in
  let cell = Scenario.run_cell ~seed:42 ~dataset ~shape ~features db in
  Alcotest.(check bool) "stream non-empty" true (cell.Scenario.updates > 0);
  List.iter
    (fun (c : Scenario.check) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s x %s [%s] %s" dataset cell.Scenario.shape c.layer c.detail)
        true c.ok)
    cell.Scenario.checks;
  (* every layer ran *)
  List.iter
    (fun layer ->
      Alcotest.(check bool) (layer ^ " ran") true
        (List.exists (fun (c : Scenario.check) -> c.layer = layer) cell.Scenario.checks))
    Scenario.layers

let matrix_suite (name, generate, features) =
  ( "matrix-" ^ name,
    List.map
      (fun (shape_name, shape) ->
        Alcotest.test_case shape_name `Slow (test_cell generate features name shape))
      Sg.shapes )

(* ------------------------------------- zero-multiplicity group retention *)

let zero_residue_rows m =
  match M.dump_views m with
  | M.Cov_views views ->
      List.fold_left
        (fun acc (_, entries) ->
          acc
          + List.length
              (List.filter (fun (_, p) -> Fivm.Payload.Cov_dyn.is_zero p) entries))
        0 views
  | _ -> 0

(* Full churn: every fact tuple deleted and re-inserted. Entries pass
   through zero and come back; none may be LEFT at zero, and the final
   triple must still match a from-scratch recompute bit for bit. *)
let test_full_churn_no_residue () =
  let db = Sg.lattice_database (Datagen.Retailer.generate ~scale:0.01 ~seed:5 ()) in
  let stream = Sg.with_churn ~seed:5 ~churn:1.0 db in
  let m = M.create M.F_ivm db ~features:Datagen.Retailer.ivm_features in
  List.iter (M.apply m) stream;
  Alcotest.(check int) "no zero-payload view entries" 0 (zero_residue_rows m);
  Alcotest.(check string) "maintained == recompute (bits)"
    (cov_bits (M.recompute m))
    (cov_bits (M.covariance m))

(* Deletion for good: load everything, then delete every fact tuple and
   never re-insert. The cancelled fact groups must VANISH from the view
   trees (this is the retention defect: they used to linger as zero-payload
   rows), and the survivors must equal a recompute. *)
let test_net_zero_groups_vanish () =
  let db = Sg.lattice_database (Datagen.Retailer.generate ~scale:0.01 ~seed:6 ()) in
  let base = Sg.inserts_of_database ~seed:6 db in
  let fact = Relation.name (Sg.fact_relation db) in
  let m = M.create M.F_ivm db ~features:Datagen.Retailer.ivm_features in
  List.iter (M.apply m) base;
  let loaded_rows = M.view_rows m in
  List.iter
    (fun (u : Fivm.Delta.update) ->
      if u.relation = fact then M.apply m (Fivm.Delta.delete u.relation u.tuple))
    base;
  Alcotest.(check int) "no zero-payload view entries" 0 (zero_residue_rows m);
  Alcotest.(check bool)
    (Printf.sprintf "cancelled groups dropped (%d -> %d rows)" loaded_rows (M.view_rows m))
    true
    (M.view_rows m < loaded_rows);
  Alcotest.(check string) "maintained == recompute (bits)"
    (cov_bits (M.recompute m))
    (cov_bits (M.covariance m))

(* ------------------------------------ reordered / duplicated WAL replay *)

let with_temp_dir f =
  let dir = Filename.temp_dir "scenario_test" "" in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* Crash with reorder:6,dup:3 and NO torn tail: every acknowledged record
   survives on disk, just permuted and duplicated. Recovery must apply each
   exactly once in seq order — the old fold-while-increasing replay DROPPED
   the reordered lower-seq records and lost their updates. *)
let test_reorder_dup_recovery strategy () =
  let db = Sg.lattice_database (Datagen.Retailer.generate ~scale:0.01 ~seed:9 ()) in
  let features = Datagen.Retailer.ivm_features in
  let stream = Array.of_list (Sg.with_churn ~seed:9 ~churn:0.3 db) in
  let n = Array.length stream in
  let clean = M.create strategy db ~features in
  Array.iter (M.apply clean) stream;
  let want = cov_bits (M.covariance clean) in
  with_temp_dir @@ fun dir ->
  let faults =
    Resilience.Faults.parse ~seed:9 (Printf.sprintf "crash-after:%d,reorder:6,dup:3" (n / 2))
  in
  let cfg = Resilience.Driver.config ~checkpoint_every:50 ~faults dir in
  let make () = M.create strategy db ~features in
  let restarts = ref 0 in
  let rec drive d i =
    if i >= n then d
    else
      match Resilience.Driver.submit d stream.(i) with
      | Resilience.Driver.Applied | Resilience.Driver.Quarantined _ -> drive d (i + 1)
      | exception Resilience.Faults.Crash _ ->
          incr restarts;
          let d = Resilience.Driver.create cfg make in
          drive d (Resilience.Driver.seq d)
  in
  let d = drive (Resilience.Driver.create cfg make) 0 in
  Alcotest.(check bool) "crashed at least once" true (!restarts >= 1);
  Alcotest.(check string) "recovered == never-crashed (bits)" want
    (cov_bits (Resilience.Driver.covariance d));
  Resilience.Driver.close d

(* The WAL damage helpers themselves: reorder reverses the tail frames,
   dup appends byte-identical copies, and replay returns them verbatim
   (recovery, not replay, is what restores seq order). *)
let test_wal_tail_damage () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  let w = Resilience.Wal.open_append path in
  let update i =
    Fivm.Delta.insert "R" [| Value.Int i; Value.Float (float_of_int i /. 16.0) |]
  in
  for i = 1 to 10 do
    Resilience.Wal.append w { Resilience.Wal.seq = i; update = update i }
  done;
  Resilience.Wal.close w;
  Resilience.Wal.reorder_tail path ~frames:4;
  Resilience.Wal.dup_tail path ~frames:2;
  let rp = Resilience.Wal.replay path in
  Alcotest.(check bool) "no tear introduced" false rp.Resilience.Wal.torn;
  let seqs = List.map (fun (r : Resilience.Wal.record) -> r.seq) rp.Resilience.Wal.records in
  Alcotest.(check (list int)) "reversed tail + duplicated tail"
    [ 1; 2; 3; 4; 5; 6; 10; 9; 8; 7; 8; 7 ]
    seqs

let () =
  Alcotest.run "scenarios"
    (List.map matrix_suite datasets
    @ [
        ( "zero-multiplicity",
          [
            Alcotest.test_case "full churn leaves no residue" `Quick
              test_full_churn_no_residue;
            Alcotest.test_case "net-zero groups vanish" `Quick
              test_net_zero_groups_vanish;
          ] );
        ( "wal-tail",
          [
            Alcotest.test_case "reorder+dup recovery (f-ivm)" `Quick
              (test_reorder_dup_recovery M.F_ivm);
            Alcotest.test_case "reorder+dup recovery (higher-order)" `Quick
              (test_reorder_dup_recovery M.Higher_order);
            Alcotest.test_case "reorder/dup damage shapes" `Quick test_wal_tail_damage;
          ] );
      ])
