(* Paged columnar store: codec round-trips, corruption rejection, and the
   bit-identity contract of the out-of-core paths.

   The headline differentials assert that moving cells out of memory changes
   NOTHING about the answers: the covariance batch evaluated over paged
   streams (LMFAO interpreter and staged-compiled engine, with the page
   cache shrunk until it thrashes) is bitwise equal to in-memory execution,
   F-IVM maintainers base-loaded from per-shard page directories reproduce
   the directly-maintained covariance bit for bit on exact (dyadic-lattice)
   streams, and the spill-aware group-by/join emit bitwise-identical
   relations at every spill threshold — including threshold 0, where every
   row goes through the disk partitions — and under every worker budget. *)

open Relational
module Page = Store.Page
module Paged = Store.Paged
module Loader = Store.Loader
module M = Fivm.Maintainer
module Delta = Fivm.Delta
module Shard = Fivm.Shard
module Cov = Rings.Covariance

let int n = Value.Int n
let flt x = Value.Float x
let bits = Int64.bits_of_float
let qcheck = QCheck_alcotest.to_alcotest

(* Sharded imports nest nothing (flat <name>.shard<k>.pages files), but be
   thorough about cleanup anyway. *)
let with_temp_dir f =
  let dir = Filename.temp_dir "store" "" in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

(* Run [f] under an explicit Pool worker budget (the in-process equivalent
   of BORG_DOMAINS: budget 0 = everything inline = 1 domain, budget 3 = up
   to 4 live domains), restoring the real budget afterwards. *)
let with_worker_budget b f =
  let saved = Util.Pool.worker_budget () in
  Util.Pool.set_worker_budget b;
  Fun.protect ~finally:(fun () -> Util.Pool.set_worker_budget saved) f

let budgets = [ 0; 3 ]

(* ---- bitwise comparison helpers ---- *)

let value_bits_equal a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> bits x = bits y
  | _ -> Value.equal a b

let rel_bit_identical a b =
  Relation.cardinality a = Relation.cardinality b
  && Schema.names (Relation.schema a) = Schema.names (Relation.schema b)
  && (let ok = ref true in
      for i = 0 to Relation.cardinality a - 1 do
        let ta = Relation.get a i and tb = Relation.get b i in
        if Array.length ta <> Array.length tb then ok := false
        else
          Array.iteri
            (fun j v -> if not (value_bits_equal v tb.(j)) then ok := false)
            ta
      done;
      !ok)

let results_bit_equal (a : (string * Aggregates.Spec.result) list)
    (b : (string * Aggregates.Spec.result) list) =
  List.length a = List.length b
  && List.for_all2
       (fun (ida, ra) (idb, rb) ->
         ida = idb
         && List.length ra = List.length rb
         && List.for_all2
              (fun (ka, va) (kb, vb) -> ka = kb && bits va = bits vb)
              ra rb)
       a b

let cov_bit_identical a b =
  let n = Cov.dim a in
  Cov.dim b = n
  && bits a.Cov.c = bits b.Cov.c
  && (let ok = ref true in
      for i = 0 to n - 1 do
        if bits (Util.Vec.get a.Cov.s i) <> bits (Util.Vec.get b.Cov.s i) then
          ok := false;
        for j = 0 to n - 1 do
          if bits (Util.Mat.get a.Cov.q i j) <> bits (Util.Mat.get b.Cov.q i j)
          then ok := false
        done
      done;
      !ok)

(* ---- generators ---- *)

(* Columns exercising every physical representation: "k" stays Ints, "m"
   stays Floats (special values included: signed zeros, infinities, nan,
   subnormals — all must survive bitwise), "s" is Boxed from the start, and
   "x" is DECLARED TInt but occasionally fed a Null, forcing the mid-column
   promotion to Boxed that the codec's fallback tag must round-trip. *)
let wild_float rng =
  match Util.Prng.int rng 8 with
  | 0 -> 0.0
  | 1 -> -0.0
  | 2 -> infinity
  | 3 -> neg_infinity
  | 4 -> nan
  | 5 -> 4.9e-324 (* smallest subnormal *)
  | 6 -> -1.5
  | _ -> Util.Prng.float rng 1e6

let wild_string rng =
  match Util.Prng.int rng 4 with
  | 0 -> ""
  | 1 -> "x"
  | 2 -> String.make (Util.Prng.int rng 40) '\xff'
  | _ -> Printf.sprintf "s%d" (Util.Prng.int rng 1000)

let random_relation ?(name = "T") rng rows =
  let rel =
    Relation.create name
      (Schema.make
         [
           ("k", Value.TInt);
           ("m", Value.TFloat);
           ("s", Value.TStr);
           ("x", Value.TInt);
         ])
  in
  for _ = 1 to rows do
    let x =
      if Util.Prng.int rng 5 = 0 then Value.Null
      else int (Util.Prng.int rng 100)
    in
    Relation.append rel
      [| int (Util.Prng.int rng 1000); flt (wild_float rng); Value.Str (wild_string rng); x |]
  done;
  rel

(* ------------------------------------------------ page codec round-trip *)

let page_roundtrip =
  QCheck2.Test.make ~count:150 ~name:"page codec round-trips bitwise"
    QCheck2.Gen.(pair (int_range 0 150) int)
    (fun (rows, seed) ->
      let rng = Util.Prng.create seed in
      let rel = random_relation rng rows in
      let enc = Page.encode ~index:3 rel ~lo:0 ~rows in
      let p = Page.decode enc in
      let back = Page.to_relation "T" (Relation.schema rel) p in
      p.Page.index = 3 && p.Page.rows = rows && rel_bit_identical rel back)

let page_slice_roundtrip =
  QCheck2.Test.make ~count:80 ~name:"page slices round-trip from any offset"
    QCheck2.Gen.(pair (int_range 2 120) int)
    (fun (rows, seed) ->
      let rng = Util.Prng.create seed in
      let rel = random_relation rng rows in
      let lo = Util.Prng.int rng rows in
      let n = 1 + Util.Prng.int rng (rows - lo) in
      let p = Page.decode (Page.encode ~index:0 rel ~lo ~rows:n) in
      let back = Page.to_relation "T" (Relation.schema rel) p in
      p.Page.rows = n
      && (let ok = ref true in
          for i = 0 to n - 1 do
            let ta = Relation.get rel (lo + i) and tb = Relation.get back i in
            Array.iteri
              (fun j v -> if not (value_bits_equal v tb.(j)) then ok := false)
              ta
          done;
          !ok))

(* Every single-byte corruption of a page — torn tail, flipped magic,
   flipped length, flipped CRC, flipped payload — must be rejected with a
   LOCATED decode error: nonempty reason, offset inside the page image
   (plus the relocation base when the caller passes one). *)
let located_rejection ~at enc mutate =
  match Page.decode ?at (mutate enc) with
  | _ -> false
  | exception Codec.Decode_error { offset; reason } ->
      let base = match at with Some b -> b | None -> 0 in
      reason <> ""
      && offset >= base
      && offset <= base + String.length enc + 8

let page_rejects_torn_tail =
  QCheck2.Test.make ~count:100 ~name:"torn page tails are rejected, located"
    QCheck2.Gen.(pair (int_range 1 60) int)
    (fun (rows, seed) ->
      let rng = Util.Prng.create seed in
      let enc = Page.encode ~index:0 (random_relation rng rows) ~lo:0 ~rows in
      let cut = Util.Prng.int rng (String.length enc) in
      located_rejection ~at:None enc (fun s -> String.sub s 0 cut)
      && located_rejection ~at:(Some 4096) enc (fun s -> String.sub s 0 cut))

let page_rejects_flips =
  QCheck2.Test.make ~count:150 ~name:"flipped page bytes are rejected, located"
    QCheck2.Gen.(pair (int_range 1 60) int)
    (fun (rows, seed) ->
      let rng = Util.Prng.create seed in
      let enc = Page.encode ~index:0 (random_relation rng rows) ~lo:0 ~rows in
      let pos = Util.Prng.int rng (String.length enc) in
      let flip s =
        let d = Bytes.of_string s in
        Bytes.set d pos (Char.chr (Char.code (Bytes.get d pos) lxor 0x10));
        Bytes.to_string d
      in
      located_rejection ~at:None enc flip
      && located_rejection ~at:(Some 8192) enc flip)

(* ----------------------------------------------- paged files round-trip *)

let mk_rel_of rows rng = random_relation rng rows

(* Boundary row counts around an 8-row page: empty file (no pages at all),
   singleton, one-short, exact single page, one-over, exact multi-page. *)
let test_paged_boundary_sizes () =
  List.iter
    (fun rows ->
      with_temp_dir @@ fun dir ->
      let rng = Util.Prng.create (1000 + rows) in
      let rel = mk_rel_of rows rng in
      let written = Loader.import_relation ~dir ~page_rows:8 rel in
      Alcotest.(check int) "rows written" rows written;
      let p = Paged.openr ~cache_pages:2 ~dir "T" in
      Alcotest.(check int) "rows" rows (Paged.rows p);
      Alcotest.(check int) "pages" ((rows + 7) / 8) (Paged.pages p);
      let vpages, vrows = Paged.verify p in
      Alcotest.(check int) "verify pages" (Paged.pages p) vpages;
      Alcotest.(check int) "verify rows" rows vrows;
      Alcotest.(check bool) "bit-identical" true
        (rel_bit_identical rel (Paged.to_relation p));
      (* the sequential scan re-assembles the same rows in global order *)
      let seen = ref 0 in
      Paged.iter_chunks p (fun chunk ->
          for i = 0 to Relation.cardinality chunk - 1 do
            let ok = ref true in
            Array.iteri
              (fun j v ->
                if not (value_bits_equal v (Relation.get chunk i).(j)) then
                  ok := false)
              (Relation.get rel (!seen + i));
            Alcotest.(check bool) "chunk row" true !ok
          done;
          seen := !seen + Relation.cardinality chunk);
      Alcotest.(check int) "scanned rows" rows !seen;
      Paged.close p)
    [ 0; 1; 7; 8; 9; 16; 33 ]

let paged_roundtrip_any_budget =
  QCheck2.Test.make ~count:40
    ~name:"import/scan round-trips bitwise under every worker budget"
    QCheck2.Gen.(pair (int_range 0 200) int)
    (fun (rows, seed) ->
      List.for_all
        (fun b ->
          with_worker_budget b @@ fun () ->
          with_temp_dir @@ fun dir ->
          let rel = mk_rel_of rows (Util.Prng.create seed) in
          ignore (Loader.import_relation ~dir ~page_rows:16 rel);
          let p = Paged.openr ~cache_pages:2 ~dir "T" in
          let ok = rel_bit_identical rel (Paged.to_relation p) in
          Paged.close p;
          ok)
        budgets)

let test_file_corruption_located () =
  with_temp_dir @@ fun dir ->
  let rel = mk_rel_of 64 (Util.Prng.create 5) in
  ignore (Loader.import_relation ~dir ~page_rows:8 rel);
  let path = Paged.pages_path dir "T" in
  let size = (Unix.stat path).Unix.st_size in
  (* flip one byte mid-file: verify must fail with an offset inside it *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  let pos = size / 2 in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let p = Paged.openr ~cache_pages:2 ~dir "T" in
  (try
     ignore (Paged.verify p);
     Alcotest.fail "corrupt pages file accepted"
   with Codec.Decode_error { offset; reason } ->
     Alcotest.(check bool) "located in file" true (offset >= 0 && offset <= size);
     Alcotest.(check bool) "reason" true (reason <> ""));
  Paged.close p;
  (* torn tail: truncating the pages file must also be caught *)
  Unix.truncate path (size - 3);
  let p = Paged.openr ~cache_pages:2 ~dir "T" in
  (try
     ignore (Paged.verify p);
     Alcotest.fail "torn pages file accepted"
   with Codec.Decode_error _ | End_of_file -> ());
  Paged.close p;
  (* and a corrupt meta directory is rejected at open *)
  let meta = Paged.meta_path dir "T" in
  let ic = open_in_bin meta in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let d = Bytes.of_string contents in
  Bytes.set d (Bytes.length d / 2)
    (Char.chr (Char.code (Bytes.get d (Bytes.length d / 2)) lxor 4));
  let oc = open_out_bin meta in
  output_bytes oc d;
  close_out oc;
  try
    ignore (Paged.openr ~dir "T");
    Alcotest.fail "corrupt meta accepted"
  with Codec.Decode_error { reason; _ } ->
    Alcotest.(check bool) "meta reason" true (reason <> "")

(* --------------------------------------------------- engine differential *)

(* The fig3 covariance batch over paged streams, with the cache budget
   shrunk to 2 pages so the scan evicts constantly: both engines must be
   bitwise equal to their in-memory runs, and the eviction/read counters
   must prove the out-of-core path was actually exercised. *)
let test_engine_differential () =
  let db = Datagen.Retailer.generate ~scale:0.02 ~seed:7 () in
  let batch = Aggregates.Batch.covariance Datagen.Retailer.features in
  let r_mem = Lmfao.Engine.eval_batch db batch in
  let plan_mem = Compile.Engine.compile db batch in
  let r_mem_compiled = Compile.Engine.run plan_mem db in
  with_temp_dir @@ fun dir ->
  Obs.with_enabled true @@ fun () ->
  Obs.reset ();
  let paged =
    List.map
      (fun rel ->
        ignore (Loader.import_relation ~dir ~page_rows:64 rel);
        Paged.openr ~cache_pages:2 ~dir (Relation.name rel))
      (Database.relations db)
  in
  let sdb =
    Database.create_streamed "retailer_paged"
      (List.map (fun p -> (Paged.stub p, Some (Paged.stream p))) paged)
  in
  let r_paged = Lmfao.Engine.eval_batch sdb batch in
  let plan = Compile.Engine.compile sdb batch in
  let r_compiled = Compile.Engine.run plan sdb in
  Alcotest.(check bool) "lmfao paged == in-memory" true
    (results_bit_equal r_mem r_paged);
  Alcotest.(check bool) "compiled paged == in-memory" true
    (results_bit_equal r_mem_compiled r_compiled);
  Alcotest.(check bool) "compiled == interpreted" true
    (results_bit_equal r_mem r_mem_compiled);
  Alcotest.(check bool) "pages were read" true
    (Obs.counter_value_by_name "store.page_reads" > 0);
  Alcotest.(check bool) "the 2-page cache thrashed" true
    (Obs.counter_value_by_name "store.evictions" > 0);
  List.iter Paged.close paged;
  Obs.reset ()

(* ---------------------------------------------------- F-IVM differential *)

(* Star schema + dyadic-lattice streams, as in test_shard: exact payload
   arithmetic makes every covariance accumulation order-independent down to
   the last bit, so base-loading the stream's LIVE SET from per-shard page
   directories must reproduce the directly-maintained triple exactly. *)
let empty_db () =
  Database.create "stream"
    [
      Relation.create "F"
        (Schema.make
           [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1"
        (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2"
        (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let features = [ "m"; "u"; "v" ]
let strategies = [ M.F_ivm; M.Higher_order; M.First_order ]

let lattice rng = flt (float_of_int (1 + Util.Prng.int rng 64) /. 16.0)

let random_update rng inserted =
  let fresh () =
    let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
    let tuple =
      match rel with
      | "F" ->
          [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4); lattice rng |]
      | _ -> [| int (Util.Prng.int rng 4); lattice rng |]
    in
    Delta.insert rel tuple
  in
  if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
    let arr = Array.of_list !inserted in
    let u = Util.Prng.choice rng arr in
    inserted := List.filter (fun x -> x != u) !inserted;
    Delta.delete u.Delta.relation u.Delta.tuple
  end
  else begin
    let u = fresh () in
    inserted := u :: !inserted;
    u
  end

(* The stream plus its live multiset (inserts not yet deleted), the latter
   materialised as relations in insertion order. *)
let lattice_stream_and_live ~seed ~steps =
  let rng = Util.Prng.create seed in
  let inserted = ref [] in
  let updates = List.init steps (fun _ -> random_update rng inserted) in
  let db = empty_db () in
  List.iter
    (fun u ->
      Relation.append (Database.relation db u.Delta.relation) u.Delta.tuple)
    (List.rev !inserted);
  (updates, db)

let fivm_load_base_bit_identical strategy =
  QCheck2.Test.make ~count:12
    ~name:
      (Printf.sprintf "F-IVM base-load from shard pages is bit-identical (%s)"
         (M.strategy_name strategy))
    QCheck2.Gen.int
    (fun seed ->
      let updates, live = lattice_stream_and_live ~seed ~steps:240 in
      let m = M.create strategy (empty_db ()) ~features in
      List.iter (M.apply m) updates;
      let direct = M.covariance m in
      with_temp_dir @@ fun dir ->
      let shards = 3 in
      (* keyed relations (carrying "a") split into per-shard directories
         with the SAME routing rule Shard uses; D2 is broadcast *)
      ignore
        (Loader.import_sharded ~dir ~page_rows:8 ~shards ~key:[ "a" ]
           (Database.relation live "F"));
      ignore
        (Loader.import_sharded ~dir ~page_rows:8 ~shards ~key:[ "a" ]
           (Database.relation live "D1"));
      ignore
        (Loader.import_relation ~dir ~page_rows:8 (Database.relation live "D2"));
      let sh = Shard.create ~attr:"a" strategy (empty_db ()) ~features ~shards in
      let opened = ref [] in
      let keep p =
        opened := p :: !opened;
        p
      in
      let keyed name k =
        keep (Loader.open_shard ~cache_pages:2 ~dir name k)
      in
      (* each shard task gets its OWN reader handle (readers are not shared
         across domains), with a 2-page cache to force eviction mid-load *)
      Shard.load_base sh ~relation:"F" (fun k emit ->
          Paged.stream (keyed "F" k) emit);
      Shard.load_base sh ~relation:"D1" (fun k emit ->
          Paged.stream (keyed "D1" k) emit);
      Shard.load_base sh ~relation:"D2" (fun _ emit ->
          Paged.stream (keep (Paged.openr ~cache_pages:2 ~dir "D2")) emit);
      let loaded = Shard.covariance sh in
      List.iter Paged.close !opened;
      cov_bit_identical direct loaded)

(* ---------------------------------------------------- spill-op properties *)

let random_keyed_relation rng rows =
  let rel =
    Relation.create "R"
      (Schema.make
         [ ("k", Value.TInt); ("g", Value.TInt); ("m", Value.TFloat) ])
  in
  for _ = 1 to rows do
    Relation.append rel
      [|
        int (Util.Prng.int rng 7);
        int (Util.Prng.int rng 5);
        flt (Util.Prng.float rng 100.0);
      |]
  done;
  rel

let sorted_tuples rel =
  List.sort compare
    (List.init (Relation.cardinality rel) (fun i ->
         Array.to_list (Relation.get rel i)))

let spill_group_by_invariant =
  QCheck2.Test.make ~count:40
    ~name:"group-by is bitwise threshold- and budget-invariant"
    QCheck2.Gen.(pair (int_range 0 300) int)
    (fun (rows, seed) ->
      let rel = random_keyed_relation (Util.Prng.create seed) rows in
      let schema = Relation.schema rel in
      let aggs =
        [
          ("n", Ops.Count);
          ("sum_m", Ops.sum_of_attr schema "m");
          ("min_m", Ops.Min (fun t -> Value.to_float t.(2)));
          ("avg_m", Ops.Avg (fun t -> Value.to_float t.(2)));
        ]
      in
      let run spill_above =
        Ops.group_by_spill rel ~key:[ "k"; "g" ] ~aggs ~spill_above
      in
      (* thresholds: 0 = everything spills, 8 = one-page-equivalent, and
         max_int = never spills; each under inline and 4-domain budgets *)
      let results =
        List.concat_map
          (fun b ->
            with_worker_budget b (fun () -> List.map run [ 0; 8; max_int ]))
          budgets
      in
      let first = List.hd results in
      List.for_all (rel_bit_identical first) results
      (* and the contents agree with the unbounded group_by (whose emission
         order is hash order, so compare as sorted multisets) *)
      && sorted_tuples first
         = sorted_tuples (Ops.group_by rel ~key:[ "k"; "g" ] ~aggs))

let spill_join_invariant =
  QCheck2.Test.make ~count:40
    ~name:"join is bitwise identical at every spill threshold"
    QCheck2.Gen.(pair (pair (int_range 0 150) (int_range 0 150)) int)
    (fun ((na, nb), seed) ->
      let rng = Util.Prng.create seed in
      let a =
        Relation.create "A"
          (Schema.make [ ("k", Value.TInt); ("u", Value.TFloat) ])
      in
      for _ = 1 to na do
        Relation.append a [| int (Util.Prng.int rng 9); flt (Util.Prng.float rng 10.0) |]
      done;
      let b =
        Relation.create "B"
          (Schema.make [ ("k", Value.TInt); ("v", Value.TFloat) ])
      in
      for _ = 1 to nb do
        Relation.append b [| int (Util.Prng.int rng 9); flt (Util.Prng.float rng 10.0) |]
      done;
      let reference = Ops.natural_join a b in
      List.for_all
        (fun budget ->
          with_worker_budget budget @@ fun () ->
          List.for_all
            (fun spill_above ->
              rel_bit_identical reference
                (Ops.natural_join_spill a b ~spill_above))
            [ 0; 8; max_int ])
        budgets)

let test_spill_counters_move () =
  Obs.with_enabled true @@ fun () ->
  Obs.reset ();
  let rel = random_keyed_relation (Util.Prng.create 11) 200 in
  let aggs = [ ("n", Ops.Count) ] in
  (* unbounded arm: no spill traffic at all *)
  ignore (Ops.group_by_spill rel ~key:[ "k" ] ~aggs ~spill_above:max_int);
  Alcotest.(check int) "no spills below threshold" 0
    (Obs.counter_value_by_name "store.spills");
  (* forced arm: every row goes through the disk partitions *)
  ignore (Ops.group_by_spill rel ~key:[ "k" ] ~aggs ~spill_above:0);
  ignore (Ops.natural_join_spill rel rel ~spill_above:0);
  Alcotest.(check bool) "spills counted" true
    (Obs.counter_value_by_name "store.spills" > 0);
  Alcotest.(check bool) "spilled rows counted" true
    (Obs.counter_value_by_name "store.spill_rows" >= 200);
  Obs.reset ()

(* ---- suite ---- *)

let () =
  Alcotest.run "store"
    [
      ( "page-codec",
        [
          qcheck page_roundtrip;
          qcheck page_slice_roundtrip;
          qcheck page_rejects_torn_tail;
          qcheck page_rejects_flips;
        ] );
      ( "paged-files",
        [
          Alcotest.test_case "boundary row counts round-trip" `Quick
            test_paged_boundary_sizes;
          qcheck paged_roundtrip_any_budget;
          Alcotest.test_case "corruption is rejected with located errors"
            `Quick test_file_corruption_located;
        ] );
      ( "engine-differential",
        [
          Alcotest.test_case "paged == in-memory through both engines" `Quick
            test_engine_differential;
        ] );
      ( "fivm-differential",
        List.map (fun s -> qcheck (fivm_load_base_bit_identical s)) strategies );
      ( "spill-ops",
        [
          qcheck spill_group_by_invariant;
          qcheck spill_join_invariant;
          Alcotest.test_case "spill counters move only when forced" `Quick
            test_spill_counters_move;
        ] );
    ]
