(* Tests for the staged-compilation engine.

   The headline property is BIT-identity: [Compile.Engine] must produce
   exactly the floats [Lmfao.Engine] produces — same decomposition, same
   accumulation order — across random acyclic databases and batches
   (including filters and group-bys), every option combination, all four
   datagen schemas, and the cyclic-fallback path. A second qcheck suite
   checks stage equivalence of the IR passes: executing the plan after
   each pass gives bitwise the same results as executing the raw lowered
   plan. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch
module Feature = Aggregates.Feature
module Engine = Lmfao.Engine
module Cengine = Compile.Engine

let int n = Value.Int n
let flt x = Value.Float x

(* Same star database as test_lmfao: fact F(a,b,c,m1,m2) with dims
   D1(a,x,u), D2(b,y), D3(c,z); all floats integer-valued so results are
   exact and bit comparisons are meaningful. *)
let random_star rng card domain =
  let mk name attrs gen =
    let schema = Schema.make attrs in
    let rel = Relation.create name schema in
    for _ = 1 to card do
      Relation.append rel (gen ())
    done;
    rel
  in
  let ri d = int (Util.Prng.int rng d) in
  let rf () = flt (float_of_int (Util.Prng.int rng 10)) in
  let f =
    mk "F"
      [ ("a", Value.TInt); ("b", Value.TInt); ("c", Value.TInt);
        ("m1", Value.TFloat); ("m2", Value.TFloat) ]
      (fun () -> [| ri domain; ri domain; ri domain; rf (); rf () |])
  in
  let d1 =
    mk "D1"
      [ ("a", Value.TInt); ("x", Value.TInt); ("u", Value.TFloat) ]
      (fun () -> [| ri domain; ri 3; rf () |])
  in
  let d2 =
    mk "D2"
      [ ("b", Value.TInt); ("y", Value.TInt) ]
      (fun () -> [| ri domain; ri 3 |])
  in
  let d3 =
    mk "D3"
      [ ("c", Value.TInt); ("z", Value.TInt) ]
      (fun () -> [| ri domain; ri 3 |])
  in
  Database.create "star" [ f; d1; d2; d3 ]

let features =
  Feature.make ~response:"m1" ~thresholds_per_feature:3
    ~continuous:[ "m2"; "u" ] ~categorical:[ "x"; "y"; "z" ] ()

(* Bitwise comparison of keyed results: same ids, same assignments in the
   same order, and every float identical down to the last bit. *)
let bits_identical a b =
  List.length a = List.length b
  && List.for_all2
       (fun (id, mine) (id', theirs) ->
         String.equal id id'
         && List.length mine = List.length theirs
         && List.for_all2
              (fun (k, v) (k', v') ->
                k = k' && Int64.bits_of_float v = Int64.bits_of_float v')
              mine theirs)
       a b

let check_compiled_vs_interpreter ~options db batch =
  let interp = Engine.eval_batch ~options db batch in
  let compiled = Cengine.eval_batch ~options db batch in
  let ok = bits_identical interp compiled in
  if not ok then
    Format.eprintf "COMPILED MISMATCH on %s (interp %d results, compiled %d)@."
      batch.Batch.name (List.length interp) (List.length compiled);
  ok

let batch_of name db =
  match name with
  | "covariance" -> Batch.covariance features
  | "decision" -> Batch.decision_node ~db features
  | "mutualinfo" -> Batch.mutual_information [ "x"; "y"; "z" ]
  | "kmeans" -> Batch.kmeans features
  | _ -> assert false

(* Random ad-hoc batches: products with powers, group-bys, and one- or
   two-conjunct single-attribute filters (>=, <, =) over the star schema.
   Integer-valued constants keep evaluation exact. *)
let random_batch rng =
  let numeric = [ "m1"; "m2"; "u" ] in
  let categorical = [ "x"; "y"; "z"; "a"; "b"; "c" ] in
  let pick l = List.nth l (Util.Prng.int rng (List.length l)) in
  let subset l =
    List.filter (fun _ -> Util.Prng.int rng 3 = 0) l
  in
  let random_conjunct () =
    match Util.Prng.int rng 4 with
    | 0 -> Predicate.Ge (pick numeric, flt (float_of_int (Util.Prng.int rng 10)))
    | 1 -> Predicate.Lt (pick numeric, flt (float_of_int (Util.Prng.int rng 10)))
    | 2 -> Predicate.Eq (pick categorical, int (Util.Prng.int rng 4))
    | _ ->
        Predicate.In
          (pick categorical, [ int (Util.Prng.int rng 4); int (Util.Prng.int rng 4) ])
  in
  let random_spec i =
    let terms =
      List.map (fun a -> (a, 1 + Util.Prng.int rng 2)) (subset numeric)
    in
    let group_by = subset categorical in
    let filter =
      match Util.Prng.int rng 3 with
      | 0 -> Predicate.True
      | 1 -> random_conjunct ()
      | _ -> Predicate.And (random_conjunct (), random_conjunct ())
    in
    Spec.make ~filter ~id:(Printf.sprintf "q%d" i) ~terms ~group_by ()
  in
  let n = 1 + Util.Prng.int rng 8 in
  { Batch.name = "random"; aggregates = List.init n random_spec }

let default = Engine.default_options

let all_options =
  [
    ("default", default);
    ("no-share", { default with Engine.share = false });
    ("single-root", { default with Engine.multi_root = false });
    ("parallel", { default with Engine.parallel = true; chunk_threshold = 4 });
    ( "no-share single-root",
      { default with Engine.share = false; multi_root = false } );
  ]

let compiled_matches_interpreter batch_name options_desc options =
  QCheck2.Test.make ~count:12
    ~name:
      (Printf.sprintf "compiled = interpreter bitwise: %s (%s)" batch_name
         options_desc)
    QCheck2.Gen.(triple (int_range 0 25) (int_range 1 5) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let db = random_star rng card domain in
      check_compiled_vs_interpreter ~options db (batch_of batch_name db))

let random_batches_match options_desc options =
  QCheck2.Test.make ~count:30
    ~name:
      (Printf.sprintf "compiled = interpreter bitwise: random batches (%s)"
         options_desc)
    QCheck2.Gen.(triple (int_range 0 30) (int_range 1 5) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let db = random_star rng card domain in
      check_compiled_vs_interpreter ~options db (random_batch rng))

(* ---- all datagen schemas ---- *)

let datagen_schemas () =
  List.iter
    (fun (name, db, feats, mi) ->
      List.iter
        (fun batch ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s bitwise" name batch.Batch.name)
            true
            (check_compiled_vs_interpreter ~options:default db batch))
        [
          Batch.covariance feats;
          Batch.decision_node ~db feats;
          Batch.mutual_information mi;
        ])
    [
      ( "retailer",
        Datagen.Retailer.generate ~scale:0.02 ~seed:11 (),
        Datagen.Retailer.features,
        Datagen.Retailer.mi_attrs );
      ( "favorita",
        Datagen.Favorita.generate ~scale:0.02 ~seed:12 (),
        Datagen.Favorita.features,
        Datagen.Favorita.mi_attrs );
      ( "yelp",
        Datagen.Yelp.generate ~scale:0.02 ~seed:13 (),
        Datagen.Yelp.features,
        Datagen.Yelp.mi_attrs );
      ( "tpcds",
        Datagen.Tpcds.generate ~scale:0.02 ~seed:14 (),
        Datagen.Tpcds.features,
        Datagen.Tpcds.mi_attrs );
    ]

(* ---- cyclic fallback ---- *)

let cyclic_fallback () =
  let tri name a b rows =
    Relation.of_list name
      (Schema.make [ (a, Value.TInt); (b, Value.TInt) ])
      (List.map (fun (x, y) -> [| int x; int y |]) rows)
  in
  let db =
    Database.create "triangle"
      [
        tri "R" "a" "b" [ (1, 2); (2, 3); (1, 3) ];
        tri "S" "b" "c" [ (2, 3); (3, 1); (3, 4) ];
        tri "T" "c" "a" [ (3, 1); (1, 2); (4, 1) ];
      ]
  in
  let batch =
    {
      Batch.name = "tri";
      aggregates =
        [ Spec.count ~id:"n"; Spec.make ~id:"ga" ~terms:[] ~group_by:[ "a" ] () ];
    }
  in
  Obs.reset ();
  let ok =
    Obs.with_enabled true (fun () ->
        check_compiled_vs_interpreter ~options:default db batch)
  in
  Alcotest.(check bool) "cyclic batch bitwise via fallback" true ok;
  Alcotest.(check bool) "fallback counted" true
    (Obs.counter_value_by_name "lmfao.compile.cyclic" > 0);
  Obs.reset ()

(* ---- plan cache ---- *)

let plan_cache_behaviour () =
  let rng = Util.Prng.create 23 in
  let db = random_star rng 30 4 in
  let batch = Batch.covariance features in
  Obs.reset ();
  Obs.with_enabled true (fun () ->
      let first = Cengine.eval_batch db batch in
      let plans0 = Obs.counter_value_by_name "lmfao.compile.plans" in
      let again = Cengine.eval_batch db batch in
      Alcotest.(check bool) "second run bitwise equal" true
        (bits_identical first again);
      Alcotest.(check bool) "second run hit the plan cache" true
        (Obs.counter_value_by_name "lmfao.compile.cache_hits" > 0);
      Alcotest.(check int) "second run compiled nothing" plans0
        (Obs.counter_value_by_name "lmfao.compile.plans");
      (* a compiled plan revalidates against the live database: a fresh db
         with the same schema reuses it, and stays bit-identical *)
      let rng2 = Util.Prng.create 99 in
      let db2 = random_star rng2 25 3 in
      Alcotest.(check bool) "fresh data through the cached plan" true
        (check_compiled_vs_interpreter ~options:default db2 batch));
  Obs.reset ()

(* The plan signature covers the cardinality-dependent root assignment:
   pure counts root at the SMALLEST relation, so growing a different
   relation to be smallest must recompile rather than reuse a stale
   rooting (bit-identity with a fresh interpreter run would break). *)
let cache_revalidates_roots () =
  let mk name attrs rows =
    Relation.of_list name (Schema.make attrs)
      (List.map (Array.map (fun v -> v)) rows)
  in
  let db small_d =
    let f_rows =
      List.init 6 (fun i -> [| int (i mod 3); flt (float_of_int i) |])
    in
    let d_rows = List.init (if small_d then 2 else 9) (fun i -> [| int (i mod 3); int i |]) in
    Database.create "two"
      [
        mk "F" [ ("a", Value.TInt); ("m", Value.TFloat) ] f_rows;
        mk "D" [ ("a", Value.TInt); ("x", Value.TInt) ] d_rows;
      ]
  in
  let batch = { Batch.name = "counts"; aggregates = [ Spec.count ~id:"n" ] } in
  Alcotest.(check bool) "small D" true
    (check_compiled_vs_interpreter ~options:default (db true) batch);
  (* same fingerprint, different smallest relation -> must recompile *)
  Alcotest.(check bool) "large D (roots moved)" true
    (check_compiled_vs_interpreter ~options:default (db false) batch)

(* ---- stage equivalence of the IR passes ---- *)

let lowered_plans db batch options =
  let popts = { Lmfao.Plan.share = false; multi_root = options.Engine.multi_root } in
  let jt, groups = Lmfao.Plan.group_by_root popts db batch in
  let stats = Lmfao.Plan.fresh_stats () in
  List.filter_map
    (fun (root, specs) ->
      if specs = [] then None
      else Some (Compile.Lower.rooted (Lmfao.Plan.build popts ~stats jt ~root specs)))
    groups

let run_plans ~options db plans =
  List.concat_map (Compile.Exec.compute_rooted ~options db) plans

let passes_preserve_results =
  QCheck2.Test.make ~count:20
    ~name:"each IR pass preserves execution bitwise"
    QCheck2.Gen.(triple (int_range 0 25) (int_range 1 5) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let db = random_star rng card domain in
      let batch =
        if Util.Prng.int rng 2 = 0 then Batch.covariance features
        else random_batch rng
      in
      let options = default in
      let raw = lowered_plans db batch options in
      let reference = run_plans ~options db raw in
      (* cumulative: after each stage of the pipeline, results unchanged *)
      let _, ok =
        List.fold_left
          (fun (plans, ok) (pass_name, pass) ->
            let plans = List.map pass plans in
            let got = run_plans ~options db plans in
            let ok' = ok && bits_identical reference got in
            if not ok' && ok then
              Format.eprintf "PASS %s changed results@." pass_name;
            (plans, ok'))
          (raw, true)
          (Compile.Passes.all ~share:true)
      in
      (* and each pass individually on the raw plan *)
      List.for_all
        (fun (pass_name, pass) ->
          let got = run_plans ~options db (List.map pass raw) in
          let ok = bits_identical reference got in
          if not ok then Format.eprintf "PASS %s (solo) changed results@." pass_name;
          ok)
        (Compile.Passes.all ~share:true)
      && ok)

(* Slot merging really fires: an unshared covariance lowering has many
   identical fact-side partials, and the merged plan must shrink. *)
let merge_reduces_slots () =
  let rng = Util.Prng.create 7 in
  let db = random_star rng 30 4 in
  let batch = Batch.covariance features in
  let raw = lowered_plans db batch default in
  let total_slots plans =
    let rec node_slots (n : Compile.Ir.node) =
      Array.length n.Compile.Ir.n_slots
      + Array.fold_left (fun acc c -> acc + node_slots c) 0 n.Compile.Ir.n_children
    in
    List.fold_left (fun acc (r : Compile.Ir.rooted) -> acc + node_slots r.Compile.Ir.r_node) 0 plans
  in
  let merged = List.map Compile.Passes.merge_slots raw in
  Alcotest.(check bool)
    (Printf.sprintf "merged %d < raw %d slots" (total_slots merged) (total_slots raw))
    true
    (total_slots merged < total_slots raw);
  let reference = run_plans ~options:default db raw in
  Alcotest.(check bool) "merged still bitwise" true
    (bits_identical reference (run_plans ~options:default db merged))

(* Dead-slot elimination: drop an output and the unreferenced slot chain
   disappears, leaving the remaining output bit-identical. *)
let dead_slot_elimination () =
  let rng = Util.Prng.create 9 in
  let db = random_star rng 25 4 in
  let batch =
    {
      Batch.name = "two";
      aggregates =
        [
          Spec.make ~id:"s1" ~terms:[ ("m1", 1) ] ~group_by:[] ();
          Spec.make ~id:"s2" ~terms:[ ("m2", 2) ] ~group_by:[] ();
        ];
    }
  in
  match lowered_plans db batch default with
  | [ plan ] ->
      let reference = run_plans ~options:default db [ plan ] in
      let orphaned =
        {
          plan with
          Compile.Ir.r_outputs =
            Array.sub plan.Compile.Ir.r_outputs 0 1 (* drop s2's output *);
        }
      in
      let cleaned = Compile.Passes.dead_slots orphaned in
      let slots (r : Compile.Ir.rooted) =
        Array.length r.Compile.Ir.r_node.Compile.Ir.n_slots
      in
      Alcotest.(check bool)
        (Printf.sprintf "dead slots dropped (%d -> %d)" (slots orphaned)
           (slots cleaned))
        true
        (slots cleaned < slots orphaned);
      let got = run_plans ~options:default db [ cleaned ] in
      Alcotest.(check bool) "surviving output bitwise" true
        (bits_identical [ List.hd reference ] got)
  | plans ->
      Alcotest.failf "expected one rooted plan, got %d" (List.length plans)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "compile"
    [
      ( "differential",
        List.concat_map
          (fun (desc, options) ->
            List.map
              (fun b -> qcheck (compiled_matches_interpreter b desc options))
              [ "covariance"; "decision"; "mutualinfo"; "kmeans" ])
          all_options
        @ List.map
            (fun (desc, options) -> qcheck (random_batches_match desc options))
            all_options );
      ( "datagen",
        [ Alcotest.test_case "all schemas bitwise" `Quick datagen_schemas ] );
      ("cyclic", [ Alcotest.test_case "interpreter fallback" `Quick cyclic_fallback ]);
      ( "cache",
        [
          Alcotest.test_case "fingerprint cache hits and reuse" `Quick
            plan_cache_behaviour;
          Alcotest.test_case "signature revalidates roots" `Quick
            cache_revalidates_roots;
        ] );
      ( "passes",
        [
          qcheck passes_preserve_results;
          Alcotest.test_case "merge reduces slots" `Quick merge_reduces_slots;
          Alcotest.test_case "dead-slot elimination" `Quick dead_slot_elimination;
        ] );
    ]
