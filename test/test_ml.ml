(* Tests for the ML layer: every structure-aware trainer must agree with its
   structure-agnostic reference, and each model must actually learn planted
   signal. *)

open Relational
module Feature = Aggregates.Feature
module Spec = Aggregates.Spec
module Cov = Rings.Covariance

let int n = Value.Int n
let flt x = Value.Float x

(* A two-relation database with a planted linear response:
   y = 3 + 2*m - u (+ optional noise), F(a, m, y) joins D(a, u, k) on a.
   k is a categorical with an additive effect of +5 when k = 1. *)
let planted_db ?(rows = 400) ?(noise = 0.0) ~seed () =
  let rng = Util.Prng.create seed in
  let n_keys = 20 in
  let d =
    Relation.create "D"
      (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat); ("k", Value.TInt) ])
  in
  let u_of = Array.make n_keys 0.0 in
  let k_of = Array.make n_keys 0 in
  for a = 0 to n_keys - 1 do
    let u = Util.Prng.float_range rng (-3.0) 3.0 in
    let k = Util.Prng.int rng 3 in
    u_of.(a) <- u;
    k_of.(a) <- k;
    Relation.append d [| int a; flt u; int k |]
  done;
  let f =
    Relation.create "F"
      (Schema.make [ ("a", Value.TInt); ("m", Value.TFloat); ("y", Value.TFloat) ])
  in
  for _ = 1 to rows do
    let a = Util.Prng.int rng n_keys in
    let m = Util.Prng.float_range rng (-5.0) 5.0 in
    let y =
      3.0 +. (2.0 *. m) -. u_of.(a)
      +. (if k_of.(a) = 1 then 5.0 else 0.0)
      +. Util.Prng.gaussian rng ~mu:0.0 ~sigma:noise
    in
    Relation.append f [| int a; flt m; flt y |]
  done;
  Database.create "planted" [ f; d ]

let planted_features =
  Feature.make ~response:"y" ~thresholds_per_feature:8 ~continuous:[ "m"; "u" ]
    ~categorical:[ "k" ] ()

(* ---- moment assembly ---- *)

let test_moment_matches_data_matrix () =
  let db = planted_db ~seed:1 () in
  let features = planted_features in
  let run = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db features in
  ignore run;
  let batch = Aggregates.Batch.covariance features in
  let table = Lazy.force (Lmfao.Engine.eval db batch).Lmfao.Engine.table in
  let lookup id = Hashtbl.find table id in
  let from_batch = Ml.Moment.of_batch features lookup in
  let join = Database.materialise_join db in
  let onehot = Baseline.One_hot.encode join features in
  let from_matrix = Ml.Moment.of_data_matrix onehot ~response:"y" in
  (* compare by column name; the data-matrix version names the response
     "__response" *)
  let rename c = if c = "__response" then "y" else c in
  Array.iteri
    (fun i ci ->
      Array.iteri
        (fun j cj ->
          let i' = Ml.Moment.column_index from_batch (rename ci) in
          let j' = Ml.Moment.column_index from_batch (rename cj) in
          let a = Util.Mat.get from_matrix.matrix i j in
          let b = Util.Mat.get from_batch.matrix i' j' in
          if Float.abs (a -. b) > 1e-6 *. (1.0 +. Float.abs a) then
            Alcotest.failf "moment (%s, %s): %g vs %g" ci cj a b)
        from_matrix.columns)
    from_matrix.columns

(* ---- linear regression ---- *)

let test_linreg_recovers_plane () =
  let db = planted_db ~seed:2 () in
  let run =
    Ml.Model_intf.timed_fit
      ~options:{ Ml.Linreg.ridge = 1e-6; method_ = Ml.Linreg.Closed_form }
      (module Ml.Linreg.Model) db planted_features
  in
  let join = Database.materialise_join db in
  let rmse = Ml.Linreg.rmse_on run.model join in
  Alcotest.(check bool) (Printf.sprintf "rmse %.4f < 0.05" rmse) true (rmse < 0.05)

let test_gd_close_to_closed_form () =
  let db = planted_db ~seed:3 ~noise:1.0 () in
  let closed =
    Ml.Model_intf.timed_fit
      ~options:{ Ml.Linreg.ridge = 1e-3; method_ = Ml.Linreg.Closed_form }
      (module Ml.Linreg.Model) db planted_features
  in
  let gd =
    Ml.Model_intf.timed_fit
      ~options:
        {
          Ml.Linreg.ridge = 1e-3;
          method_ =
            Ml.Linreg.Gradient_descent
              { learning_rate = 0.05; iterations = 60_000; tolerance = 1e-10 };
        }
      (module Ml.Linreg.Model) db planted_features
  in
  let join = Database.materialise_join db in
  let r1 = Ml.Linreg.rmse_on closed.model join in
  let r2 = Ml.Linreg.rmse_on gd.model join in
  Alcotest.(check bool)
    (Printf.sprintf "gd rmse %.4f within 5%% of closed form %.4f" r2 r1)
    true
    (r2 < r1 *. 1.05 +. 1e-6)

let test_ridge_shrinks () =
  let db = planted_db ~seed:4 ~noise:0.5 () in
  let fit ridge =
    Ml.Model_intf.timed_fit
      ~options:{ Ml.Linreg.ridge; method_ = Ml.Linreg.Closed_form }
      (module Ml.Linreg.Model) db planted_features
  in
  let weak = fit 1e-6 and strong = fit 10.0 in
  Alcotest.(check bool) "stronger ridge, smaller norm" true
    (Util.Vec.norm2 strong.model.weights < Util.Vec.norm2 weak.model.weights)

(* ---- decision trees ---- *)

let test_tree_db_equals_flat () =
  let db = planted_db ~seed:5 ~noise:0.3 () in
  let f = planted_features in
  let thresholds = Ml.Decision_tree.thresholds_of_db db f in
  let params = { Ml.Decision_tree.default_params with max_depth = 3 } in
  let t_db = Ml.Decision_tree.train ~params db f in
  let join = Database.materialise_join db in
  let t_flat = Ml.Decision_tree.train_flat ~params join f ~thresholds in
  (* identical predictions on every join row *)
  let schema = Relation.schema join in
  Relation.iter
    (fun t ->
      let get a = t.(Schema.position schema a) in
      let p1 = Ml.Decision_tree.predict t_db get in
      let p2 = Ml.Decision_tree.predict t_flat get in
      if Float.abs (p1 -. p2) > 1e-9 then
        Alcotest.failf "tree predictions differ: %g vs %g" p1 p2)
    join

let test_tree_beats_constant () =
  let db = planted_db ~seed:6 ~noise:0.3 () in
  let f = planted_features in
  let tree =
    Ml.Decision_tree.train
      ~params:{ Ml.Decision_tree.default_params with max_depth = 5 }
      db f
  in
  let join = Database.materialise_join db in
  let rmse = Ml.Decision_tree.rmse_on tree join ~response:"y" in
  (* constant predictor RMSE = std of y *)
  let schema = Relation.schema join in
  let ypos = Schema.position schema "y" in
  let n = float_of_int (Relation.cardinality join) in
  let mean = Relation.fold (fun acc t -> acc +. Value.to_float t.(ypos)) 0.0 join /. n in
  let std =
    sqrt
      (Relation.fold
         (fun acc t -> acc +. ((Value.to_float t.(ypos) -. mean) ** 2.0))
         0.0 join
      /. n)
  in
  Alcotest.(check bool)
    (Printf.sprintf "tree rmse %.3f < 0.6 * std %.3f" rmse std)
    true (rmse < 0.6 *. std)

(* ---- k-means ---- *)

let test_rkmeans_near_lloyd () =
  let db = planted_db ~rows:600 ~seed:7 () in
  let dims = [ "m"; "u" ] in
  let join = Database.materialise_join db in
  let points = Ml.Kmeans.points_of_relation join dims in
  let lloyd = Ml.Kmeans.lloyd ~seed:5 ~k:4 points in
  let rk = Ml.Kmeans.rk_means ~seed:5 ~cells:24 ~k:4 db ~dims in
  (* evaluate rk centroids on the TRUE points *)
  let rk_cost = Ml.Kmeans.cost_of rk.centroids points in
  Alcotest.(check bool)
    (Printf.sprintf "rk cost %.1f <= 1.5 * lloyd cost %.1f" rk_cost lloyd.cost)
    true
    (rk_cost <= (1.5 *. lloyd.cost) +. 1e-6)

(* ---- SVM + additive inequalities ---- *)

let test_svm_separates () =
  let rng = Util.Prng.create 8 in
  let n = 400 in
  let x =
    Array.init n (fun _ ->
        [| 1.0; Util.Prng.float_range rng (-4.0) 4.0; Util.Prng.float_range rng (-4.0) 4.0 |])
  in
  let y = Array.map (fun row -> if row.(1) +. row.(2) > 0.5 then 1.0 else -1.0) x in
  let d = { Ml.Svm.x; y } in
  let w = Ml.Svm.train ~params:{ Ml.Svm.default_params with iterations = 800 } d in
  Alcotest.(check bool) "accuracy > 0.95" true (Ml.Svm.accuracy w d > 0.95)

let inequality_fast_equals_naive =
  QCheck2.Test.make ~count:100 ~name:"inequality sum: fast = naive"
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 30) (pair (float_bound_inclusive 10.0) (float_bound_inclusive 5.0)))
        (list_size (int_range 0 30) (pair (float_bound_inclusive 10.0) (float_bound_inclusive 5.0)))
        (float_bound_inclusive 15.0))
    (fun (l, r, c) ->
      let left = Array.of_list l and right = Array.of_list r in
      let fast = Ml.Inequality.fast_sum_pairs left right ~threshold:c in
      let naive = Ml.Inequality.naive_sum_pairs left right ~threshold:c in
      Float.abs (fast -. naive) <= 1e-6 *. (1.0 +. Float.abs naive))

let test_sum_above () =
  let data = [| (1.0, 10.0); (3.0, 20.0); (5.0, 40.0) |] in
  let s = Ml.Inequality.presort data in
  Alcotest.(check (float 1e-9)) "above 2" 60.0 (Ml.Inequality.sum_above s 2.0);
  Alcotest.(check (float 1e-9)) "above 0" 70.0 (Ml.Inequality.sum_above s 0.0);
  Alcotest.(check (float 1e-9)) "above 5" 0.0 (Ml.Inequality.sum_above s 5.0)

(* ---- PCA ---- *)

let test_pca_finds_planted_direction () =
  let rng = Util.Prng.create 9 in
  let acc = Cov.Acc.create 3 in
  for _ = 1 to 3000 do
    (* variance dominated by direction (1, 1, 0)/sqrt 2 *)
    let t = Util.Prng.gaussian rng ~mu:0.0 ~sigma:5.0 in
    let e1 = Util.Prng.gaussian rng ~mu:0.0 ~sigma:0.3 in
    let e2 = Util.Prng.gaussian rng ~mu:0.0 ~sigma:0.3 in
    Cov.Acc.add_tuple acc [| t +. e1; t -. e1; e2 |]
  done;
  let triple = Cov.Acc.freeze acc in
  match Ml.Pca.components ~k:1 triple with
  | [ c ] ->
      let v = c.vector in
      let dot = Float.abs ((v.(0) +. v.(1)) /. sqrt 2.0) in
      Alcotest.(check bool) "aligned with (1,1,0)" true (dot > 0.99);
      Alcotest.(check bool) "explains most variance" true
        (Ml.Pca.explained_variance triple [ c ] > 0.9)
  | _ -> Alcotest.fail "expected one component"

(* ---- Chow-Liu ---- *)

let test_chow_liu_recovers_chain () =
  (* single-relation database with chain x -> y -> z and independent w *)
  let rng = Util.Prng.create 10 in
  let rel =
    Relation.create "R"
      (Schema.make
         [ ("x", Value.TInt); ("yy", Value.TInt); ("z", Value.TInt); ("w", Value.TInt) ])
  in
  for _ = 1 to 4000 do
    let x = Util.Prng.int rng 4 in
    let y = if Util.Prng.float rng 1.0 < 0.9 then x else Util.Prng.int rng 4 in
    let z = if Util.Prng.float rng 1.0 < 0.9 then y else Util.Prng.int rng 4 in
    let w = Util.Prng.int rng 4 in
    Relation.append rel [| int x; int y; int z; int w |]
  done;
  let db = Database.create "chain" [ rel ] in
  let attrs = [ "x"; "yy"; "z"; "w" ] in
  let tree = Ml.Chow_liu.tree_over_database db attrs in
  Alcotest.(check int) "spanning tree edges" 3 (List.length tree);
  let has a b =
    List.exists
      (fun (e : Ml.Chow_liu.edge) -> (e.a = a && e.b = b) || (e.a = b && e.b = a))
      tree
  in
  Alcotest.(check bool) "x-yy edge" true (has "x" "yy");
  Alcotest.(check bool) "yy-z edge" true (has "yy" "z")

(* ---- functional dependencies ---- *)

let city_country_db ~seed =
  let rng = Util.Prng.create seed in
  let d =
    Relation.create "Loc"
      (Schema.make [ ("a", Value.TInt); ("city", Value.TInt); ("country", Value.TInt) ])
  in
  for a = 0 to 29 do
    let city = a mod 12 in
    Relation.append d [| int a; int city; int (city / 4) |]
  done;
  let f =
    Relation.create "F" (Schema.make [ ("a", Value.TInt); ("m", Value.TFloat) ])
  in
  for _ = 1 to 300 do
    Relation.append f
      [| int (Util.Prng.int rng 30); flt (Util.Prng.float_range rng 0.0 10.0) |]
  done;
  Database.create "fd" [ f; d ]

let test_fd_discovery_and_reconstruction () =
  let db = city_country_db ~seed:11 in
  let fds = Ml.Fd.discover db [ "city"; "country" ] in
  let fd =
    match
      List.find_opt
        (fun (f : Ml.Fd.fd) -> f.determinant = "city" && f.dependent = "country")
        fds
    with
    | Some f -> f
    | None -> Alcotest.fail "city -> country not discovered"
  in
  (* country -> city must NOT hold *)
  Alcotest.(check bool) "country -/-> city" false
    (List.exists
       (fun (f : Ml.Fd.fd) -> f.determinant = "country" && f.dependent = "city")
       fds);
  (* reconstruction: SUM(m) GROUP BY country from SUM(m) GROUP BY city *)
  let dependent_spec =
    Spec.make ~id:"sum(m)|country" ~terms:[ ("m", 1) ] ~group_by:[ "country" ] ()
  in
  let det_spec = Ml.Fd.determinant_spec fd dependent_spec in
  let join = Database.materialise_join db in
  let direct = Spec.eval_flat join dependent_spec in
  let via_fd = Ml.Fd.reconstruct fd ~dependent_spec (Spec.eval_flat join det_spec) in
  Alcotest.(check bool) "reconstruction exact" true (Spec.result_equal direct via_fd)

let test_fd_reduces_batch () =
  let db = city_country_db ~seed:12 in
  let features =
    Feature.make ~response:"m" ~continuous:[] ~categorical:[ "city"; "country" ] ()
  in
  let fds = Ml.Fd.discover db [ "city"; "country" ] in
  let fds =
    List.filter (fun (f : Ml.Fd.fd) -> f.dependent = "country") fds
  in
  let reduced, dropped = Ml.Fd.reduced_covariance_batch features fds in
  Alcotest.(check bool) "batch shrank" true (List.length dropped > 0);
  Alcotest.(check int) "kept + dropped = full"
    (Aggregates.Batch.size (Aggregates.Batch.covariance features))
    (Aggregates.Batch.size reduced + List.length dropped)

(* ---- model selection ---- *)

let test_forward_selection_finds_signal () =
  let db = planted_db ~seed:13 ~noise:0.2 () in
  let batch = Aggregates.Batch.covariance planted_features in
  let table = Lazy.force (Lmfao.Engine.eval db batch).Lmfao.Engine.table in
  let moment = Ml.Moment.of_batch planted_features (Hashtbl.find table) in
  let best, trail = Ml.Model_selection.forward_selection ~max_features:4 moment in
  Alcotest.(check bool) "m selected" true (List.mem "m" best.columns);
  Alcotest.(check bool) "several models tried" true (List.length trail >= 2);
  Alcotest.(check bool) "low mse" true (best.mse < 2.0)

(* ---- polynomial regression ---- *)

let test_polyreg_learns_quadratic () =
  (* y = 1 + 2m + 0.5 m*u over the join *)
  let rng = Util.Prng.create 14 in
  let d = Relation.create "D" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]) in
  let u_of = Array.init 15 (fun _ -> Util.Prng.float_range rng (-2.0) 2.0) in
  Array.iteri (fun a u -> Relation.append d [| int a; flt u |]) u_of;
  let f =
    Relation.create "F"
      (Schema.make [ ("a", Value.TInt); ("m", Value.TFloat); ("y", Value.TFloat) ])
  in
  for _ = 1 to 400 do
    let a = Util.Prng.int rng 15 in
    let m = Util.Prng.float_range rng (-3.0) 3.0 in
    let y = 1.0 +. (2.0 *. m) +. (0.5 *. m *. u_of.(a)) in
    Relation.append f [| int a; flt m; flt y |]
  done;
  let db = Database.create "quad" [ f; d ] in
  let moment, _ =
    Ml.Monomial.moment_of_database db ~features:[ "m"; "u" ] ~response:"y"
  in
  let model = Ml.Polyreg.train_from_monomial_moments ~ridge:1e-8 moment in
  let join = Database.materialise_join db in
  let rmse = Ml.Polyreg.rmse_on model join in
  Alcotest.(check bool) (Printf.sprintf "rmse %.5f < 0.01" rmse) true (rmse < 0.01)

(* ---- factorisation machines ---- *)

let test_fm_beats_linear_on_interactions () =
  let rng = Util.Prng.create 15 in
  let n = 500 in
  let x =
    Array.init n (fun _ ->
        [| Util.Prng.float_range rng (-2.0) 2.0; Util.Prng.float_range rng (-2.0) 2.0 |])
  in
  let y = Array.map (fun row -> 2.0 *. row.(0) *. row.(1)) x in
  let fm =
    Ml.Factorization_machine.train_on_rows
      ~params:
        { Ml.Factorization_machine.default_params with iterations = 3000; learning_rate = 0.05 }
      x y
  in
  let fm_mse = Ml.Factorization_machine.mse fm x y in
  (* best linear fit of pure interaction data is ~the variance of y *)
  let var_y =
    let mean = Array.fold_left ( +. ) 0.0 y /. float_of_int n in
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 y /. float_of_int n
  in
  Alcotest.(check bool)
    (Printf.sprintf "fm mse %.3f < 0.5 * var %.3f" fm_mse var_y)
    true
    (fm_mse < 0.5 *. var_y)

(* ---- classification trees ---- *)

(* planted classification data: class = f(m threshold, k category) *)
let classification_db ~seed ~noise =
  let rng = Util.Prng.create seed in
  let d =
    Relation.create "D" (Schema.make [ ("a", Value.TInt); ("k", Value.TInt) ])
  in
  for a = 0 to 19 do
    Relation.append d [| int a; int (a mod 3) |]
  done;
  let f =
    Relation.create "F"
      (Schema.make [ ("a", Value.TInt); ("m", Value.TFloat); ("label", Value.TInt) ])
  in
  for _ = 1 to 500 do
    let a = Util.Prng.int rng 20 in
    let m = Util.Prng.float_range rng (-5.0) 5.0 in
    let k = a mod 3 in
    let true_label = if m > 1.0 || k = 2 then 1 else 0 in
    let label =
      if Util.Prng.float rng 1.0 < noise then 1 - true_label else true_label
    in
    Relation.append f [| int a; flt m; int label |]
  done;
  Database.create "cls" [ f; d ]

let cls_features =
  Feature.make ~thresholds_per_feature:8 ~continuous:[ "m" ] ~categorical:[ "k" ] ()

let test_classification_tree_learns () =
  let db = classification_db ~seed:21 ~noise:0.0 in
  let tree =
    Ml.Classification_tree.train
      ~params:{ Ml.Classification_tree.default_params with max_depth = 3 }
      db ~class_attr:"label" cls_features
  in
  let join = Database.materialise_join db in
  let acc = Ml.Classification_tree.accuracy tree join ~class_attr:"label" in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f > 0.95" acc) true (acc > 0.95)

let test_classification_db_equals_flat () =
  let db = classification_db ~seed:22 ~noise:0.1 in
  let params = { Ml.Classification_tree.default_params with max_depth = 3 } in
  let t_db =
    Ml.Classification_tree.train ~params db ~class_attr:"label" cls_features
  in
  let join = Database.materialise_join db in
  let thresholds = Ml.Decision_tree.thresholds_of_db db cls_features in
  let t_flat =
    Ml.Classification_tree.train_flat ~params join ~class_attr:"label" cls_features
      ~thresholds
  in
  let schema = Relation.schema join in
  Relation.iter
    (fun t ->
      let get a = t.(Schema.position schema a) in
      if
        not
          (Value.equal
             (Ml.Classification_tree.predict t_db get)
             (Ml.Classification_tree.predict t_flat get))
      then Alcotest.fail "classification predictions diverge")
    join

let test_entropy_criterion_works () =
  let db = classification_db ~seed:23 ~noise:0.0 in
  let tree =
    Ml.Classification_tree.train
      ~params:
        {
          Ml.Classification_tree.default_params with
          max_depth = 3;
          criterion = Ml.Classification_tree.Entropy;
        }
      db ~class_attr:"label" cls_features
  in
  let join = Database.materialise_join db in
  Alcotest.(check bool) "entropy accuracy > 0.95" true
    (Ml.Classification_tree.accuracy tree join ~class_attr:"label" > 0.95)

(* ---- QR from moments ---- *)

let qr_matches_gram =
  QCheck2.Test.make ~count:50 ~name:"R^T R = Gram, R upper triangular"
    QCheck2.Gen.(pair (int_range 1 6) int)
    (fun (d, seed) ->
      let rng = Util.Prng.create seed in
      let rows = 3 * (d + 2) in
      let x =
        Array.init rows (fun _ ->
            Array.init d (fun _ -> Util.Prng.float_range rng (-3.0) 3.0))
      in
      (* add a ridge so the Gram matrix is PD even for unlucky draws *)
      let gram = Util.Mat.create d d in
      Array.iter (fun row -> Util.Mat.ger ~alpha:1.0 row row gram) x;
      let gram = Util.Mat.add gram (Util.Mat.scale 1e-6 (Util.Mat.identity d)) in
      let r = Ml.Qr.r_of_gram gram in
      Ml.Qr.is_upper_triangular r
      && Util.Mat.equal ~eps:1e-6 (Util.Mat.matmul (Util.Mat.transpose r) r) gram)

let test_qr_q_rows_orthonormal () =
  (* Q^T Q = I, checked by accumulating q q^T over all rows *)
  let rng = Util.Prng.create 77 in
  let d = 4 and rows = 200 in
  let x =
    Array.init rows (fun _ ->
        Array.init d (fun _ -> Util.Prng.float_range rng (-2.0) 2.0))
  in
  let gram = Util.Mat.create d d in
  Array.iter (fun row -> Util.Mat.ger ~alpha:1.0 row row gram) x;
  let r = Ml.Qr.r_of_gram gram in
  let qtq = Util.Mat.create d d in
  Array.iter
    (fun row ->
      let q = Ml.Qr.q_row r row in
      Util.Mat.ger ~alpha:1.0 q q qtq)
    x;
  Alcotest.(check bool) "Q^T Q = I" true
    (Util.Mat.equal ~eps:1e-6 qtq (Util.Mat.identity d))

let test_qr_from_moment () =
  let db = planted_db ~seed:24 ~noise:0.3 () in
  let batch = Aggregates.Batch.covariance planted_features in
  let table = Lazy.force (Lmfao.Engine.eval db batch).Lmfao.Engine.table in
  let moment = Ml.Moment.of_batch planted_features (Hashtbl.find table) in
  let r, cols = Ml.Qr.r_of_moment moment in
  Alcotest.(check bool) "upper triangular" true (Ml.Qr.is_upper_triangular r);
  Alcotest.(check int) "feature columns" (Ml.Moment.width moment - 1)
    (Array.length cols)

(* ---- warm starts (Section 1.5) ---- *)

let test_warm_start_fewer_iterations () =
  let db = planted_db ~seed:25 ~noise:0.5 () in
  let batch = Aggregates.Batch.covariance planted_features in
  let table = Lazy.force (Lmfao.Engine.eval db batch).Lmfao.Engine.table in
  let moment = Ml.Moment.of_batch planted_features (Hashtbl.find table) in
  let gd = Ml.Linreg.Gradient_descent { learning_rate = 0.1; iterations = 50_000; tolerance = 1e-8 } in
  let cold = Ml.Linreg.train ~method_:gd planted_features moment in
  (* warm-start from the converged model: must finish almost immediately *)
  let warm = Ml.Linreg.train ~method_:gd ~warm_start:cold planted_features moment in
  Alcotest.(check bool)
    (Printf.sprintf "warm %d << cold %d iterations" warm.iterations_run
       cold.iterations_run)
    true
    (warm.iterations_run * 10 <= cold.iterations_run + 10);
  Alcotest.(check bool) "same weights" true
    (Util.Vec.equal ~eps:1e-4 warm.weights cold.weights)

(* ---- F engine: factorised covariance = LMFAO's = flat ---- *)

let f_engine_matches =
  QCheck2.Test.make ~count:20 ~name:"F (factorised) covariance = AC/DC ring pass"
    QCheck2.Gen.(pair (int_range 5 80) int)
    (fun (rows, seed) ->
      let db = planted_db ~rows ~seed ~noise:0.5 () in
      let features = [ "y"; "m"; "u" ] in
      let via_f = Ml.F_engine.covariance db ~features in
      let via_acdc = Baseline.Acdc.stage2_shared db ~features in
      Cov.equal_rel ~eps:1e-7 via_f via_acdc)

let test_f_engine_linreg () =
  let db = planted_db ~seed:41 () in
  let model =
    Ml.F_engine.train_linreg ~ridge:1e-8 db ~features:[ "y"; "m"; "u" ] ~response:"y"
  in
  let w_of name =
    let cols = model.Ml.Linreg.feature_columns in
    let rec go i =
      if i >= Array.length cols then Alcotest.failf "missing column %s" name
      else if cols.(i) = name then model.Ml.Linreg.weights.(i)
      else go (i + 1)
    in
    go 0
  in
  (* the planted signal is y = 3 + 2m - u + 5[k=1]; without k's one-hot the
     linear part must still recover the m and u slopes *)
  Alcotest.(check bool) "m slope" true (Float.abs (w_of "m" -. 2.0) < 0.1);
  Alcotest.(check bool) "u slope" true (Float.abs (w_of "u" +. 1.0) < 0.3)

(* ---- SVD / Jacobi ---- *)

let jacobi_diagonalises =
  QCheck2.Test.make ~count:50 ~name:"jacobi: A v = lambda v and V orthogonal"
    QCheck2.Gen.(pair (int_range 1 6) int)
    (fun (n, seed) ->
      let rng = Util.Prng.create seed in
      (* random symmetric matrix *)
      let a =
        Util.Mat.init n n (fun i j ->
            if i <= j then Util.Prng.float_range rng (-3.0) 3.0 else 0.0)
      in
      let a = Util.Mat.init n n (fun i j -> Util.Mat.get a (min i j) (max i j)) in
      let eigenvalues, v = Ml.Svd.jacobi_eigen a in
      (* check A v_c = lambda_c v_c for each column *)
      let ok = ref true in
      for c = 0 to n - 1 do
        let vc = Array.init n (fun r -> Util.Mat.get v r c) in
        let av = Util.Mat.matvec a vc in
        Array.iteri
          (fun r x ->
            if Float.abs (x -. (eigenvalues.(c) *. vc.(r))) > 1e-6 then ok := false)
          av
      done;
      (* V^T V = I *)
      let vtv = Util.Mat.matmul (Util.Mat.transpose v) v in
      !ok && Util.Mat.equal ~eps:1e-6 vtv (Util.Mat.identity n)
      (* descending *)
      && (let sorted = ref true in
          for i = 0 to n - 2 do
            if eigenvalues.(i) < eigenvalues.(i + 1) -. 1e-9 then sorted := false
          done;
          !sorted))

let test_svd_reconstructs_gram () =
  let rng = Util.Prng.create 55 in
  let d = 4 in
  let x =
    Array.init 100 (fun _ -> Array.init d (fun _ -> Util.Prng.float_range rng (-2.0) 2.0))
  in
  let gram = Util.Mat.create d d in
  Array.iter (fun row -> Util.Mat.ger ~alpha:1.0 row row gram) x;
  let svd = Ml.Svd.of_gram gram in
  (* full-rank reconstruction is exact *)
  Alcotest.(check bool) "rank-d error ~ 0" true
    (Ml.Svd.gram_reconstruction_error svd gram ~k:d < 1e-6 *. Util.Mat.frobenius gram);
  (* errors decrease with k *)
  let e1 = Ml.Svd.gram_reconstruction_error svd gram ~k:1 in
  let e3 = Ml.Svd.gram_reconstruction_error svd gram ~k:3 in
  Alcotest.(check bool) "monotone" true (e3 <= e1 +. 1e-9)

let test_svd_u_rows_orthonormal () =
  let rng = Util.Prng.create 56 in
  let d = 3 in
  let x =
    Array.init 300 (fun _ -> Array.init d (fun _ -> Util.Prng.float_range rng (-2.0) 2.0))
  in
  let gram = Util.Mat.create d d in
  Array.iter (fun row -> Util.Mat.ger ~alpha:1.0 row row gram) x;
  let svd = Ml.Svd.of_gram gram in
  let utu = Util.Mat.create d d in
  Array.iter
    (fun row ->
      let u = Ml.Svd.u_row svd row in
      Util.Mat.ger ~alpha:1.0 u u utu)
    x;
  Alcotest.(check bool) "U^T U = I" true
    (Util.Mat.equal ~eps:1e-6 utu (Util.Mat.identity d))

(* ---- Huber regression (Section 2.3) ---- *)

let test_huber_resists_outliers () =
  let rng = Util.Prng.create 57 in
  let n = 400 in
  let x =
    Array.init n (fun _ -> [| 1.0; Util.Prng.float_range rng (-3.0) 3.0 |])
  in
  (* y = 1 + 2x with 10% wild outliers *)
  let y =
    Array.mapi
      (fun i row ->
        let base = 1.0 +. (2.0 *. row.(1)) in
        if i mod 10 = 0 then base +. 80.0 else base)
      x
  in
  let d = { Ml.Huber.x; y } in
  let w_huber =
    Ml.Huber.train_weights ~params:{ Ml.Huber.default_params with iterations = 2000 } d
  in
  (* least squares gets dragged by the outliers; fit it via the moments *)
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iteri
    (fun i row ->
      sx := !sx +. row.(1);
      sy := !sy +. y.(i);
      sxx := !sxx +. (row.(1) *. row.(1));
      sxy := !sxy +. (row.(1) *. y.(i)))
    x;
  let nf = float_of_int n in
  let ls_slope = ((nf *. !sxy) -. (!sx *. !sy)) /. ((nf *. !sxx) -. (!sx *. !sx)) in
  let ls_intercept = (!sy -. (ls_slope *. !sx)) /. nf in
  Alcotest.(check bool)
    (Printf.sprintf "huber slope %.2f closer to 2 than LS %.2f" w_huber.(1) ls_slope)
    true
    (Float.abs (w_huber.(1) -. 2.0) < Float.abs (ls_slope -. 2.0));
  Alcotest.(check bool)
    (Printf.sprintf "huber intercept %.2f closer to 1 than LS %.2f" w_huber.(0)
       ls_intercept)
    true
    (Float.abs (w_huber.(0) -. 1.0) < Float.abs (ls_intercept -. 1.0))

let test_huber_objective_decreases () =
  let rng = Util.Prng.create 58 in
  let x = Array.init 200 (fun _ -> [| 1.0; Util.Prng.float_range rng (-2.0) 2.0 |]) in
  let y = Array.map (fun row -> 3.0 -. row.(1)) x in
  let d = { Ml.Huber.x; y } in
  let w0 = [| 0.0; 0.0 |] in
  let w =
    Ml.Huber.train_weights ~params:{ Ml.Huber.default_params with iterations = 500 } d
  in
  Alcotest.(check bool) "objective decreased" true
    (Ml.Huber.objective w d < Ml.Huber.objective w0 d)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ml"
    [
      ( "moment",
        [ Alcotest.test_case "batch = data matrix" `Quick test_moment_matches_data_matrix ] );
      ( "linreg",
        [
          Alcotest.test_case "recovers plane" `Quick test_linreg_recovers_plane;
          Alcotest.test_case "gd close to closed form" `Quick test_gd_close_to_closed_form;
          Alcotest.test_case "ridge shrinks" `Quick test_ridge_shrinks;
        ] );
      ( "decision-tree",
        [
          Alcotest.test_case "db-trained = flat-trained" `Quick test_tree_db_equals_flat;
          Alcotest.test_case "beats constant" `Quick test_tree_beats_constant;
        ] );
      ("kmeans", [ Alcotest.test_case "rk-means near lloyd" `Quick test_rkmeans_near_lloyd ]);
      ( "svm-inequalities",
        [
          Alcotest.test_case "separates" `Quick test_svm_separates;
          qcheck inequality_fast_equals_naive;
          Alcotest.test_case "sum_above" `Quick test_sum_above;
        ] );
      ("pca", [ Alcotest.test_case "planted direction" `Quick test_pca_finds_planted_direction ]);
      ("chow-liu", [ Alcotest.test_case "recovers chain" `Quick test_chow_liu_recovers_chain ]);
      ( "functional-dependencies",
        [
          Alcotest.test_case "discovery + reconstruction" `Quick
            test_fd_discovery_and_reconstruction;
          Alcotest.test_case "batch reduction" `Quick test_fd_reduces_batch;
        ] );
      ( "model-selection",
        [ Alcotest.test_case "forward selection" `Quick test_forward_selection_finds_signal ] );
      ("polyreg", [ Alcotest.test_case "learns quadratic" `Quick test_polyreg_learns_quadratic ]);
      ( "factorisation-machine",
        [ Alcotest.test_case "beats linear on interactions" `Quick test_fm_beats_linear_on_interactions ] );
      ( "classification-tree",
        [
          Alcotest.test_case "learns planted rule" `Quick test_classification_tree_learns;
          Alcotest.test_case "db-trained = flat-trained" `Quick
            test_classification_db_equals_flat;
          Alcotest.test_case "entropy criterion" `Quick test_entropy_criterion_works;
        ] );
      ( "qr",
        [
          qcheck qr_matches_gram;
          Alcotest.test_case "Q rows orthonormal" `Quick test_qr_q_rows_orthonormal;
          Alcotest.test_case "R from moment matrix" `Quick test_qr_from_moment;
        ] );
      ( "warm-start",
        [ Alcotest.test_case "resume converges immediately" `Quick test_warm_start_fewer_iterations ] );
      ( "svd",
        [
          qcheck jacobi_diagonalises;
          Alcotest.test_case "gram reconstruction" `Quick test_svd_reconstructs_gram;
          Alcotest.test_case "U rows orthonormal" `Quick test_svd_u_rows_orthonormal;
        ] );
      ( "huber",
        [
          Alcotest.test_case "resists outliers" `Quick test_huber_resists_outliers;
          Alcotest.test_case "objective decreases" `Quick test_huber_objective_decreases;
        ] );
      ( "f-engine",
        [
          qcheck f_engine_matches;
          Alcotest.test_case "factorised linreg recovers slopes" `Quick
            test_f_engine_linreg;
        ] );
    ]
