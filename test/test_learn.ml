(* Differential tests for online model maintenance (lib/serve Model +
   lib/ml Model_intf).

   The headline property mirrors test_serve.ml one level up the stack: a
   registered model that has only ever been WARM-refreshed (each refresh
   resumes from the previous parameters, statistics read from the
   maintained covariance triple) must equal a COLD retrain from scratch
   over a from-scratch recompute of the same statistics, after every delta
   batch of a random insert/delete stream, for all three maintenance
   strategies. "Equal" is the per-model audit policy of
   [Ml.Models.refresh_audit]: bit-identical encodings for direct solves
   (closed-form ridge, polynomial regression), prediction tolerance for
   iterative optimisers. Bitwise equality only holds under exact float
   arithmetic, so streams draw from the dyadic lattice of test_serve.ml. *)

open Relational
module M = Fivm.Maintainer
module Delta = Fivm.Delta
module Batch = Aggregates.Batch

let int n = Value.Int n
let flt x = Value.Float x

(* Star schema shared with test_serve.ml: F(a,b,m), D1(a,u), D2(b,v). *)
let empty_db () =
  Database.create "stream"
    [
      Relation.create "F"
        (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let features = [ "m"; "u"; "v" ]
let response = "m"
let strategies = [ (M.F_ivm, "fivm"); (M.Higher_order, "higher"); (M.First_order, "first") ]

let random_update rng inserted =
  let fresh () =
    let value () = float_of_int (1 + Util.Prng.int rng 64) /. 16.0 in
    let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
    let tuple =
      match rel with
      | "F" ->
          [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4); flt (value ()) |]
      | _ -> [| int (Util.Prng.int rng 4); flt (value ()) |]
    in
    Delta.insert rel tuple
  in
  if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
    let arr = Array.of_list !inserted in
    let u = Util.Prng.choice rng arr in
    inserted := List.filter (fun x -> x != u) !inserted;
    Delta.delete u.Delta.relation u.Delta.tuple
  end
  else begin
    let u = fresh () in
    inserted := u :: !inserted;
    u
  end

let lattice_stream ~seed ~steps =
  let rng = Util.Prng.create seed in
  let inserted = ref [] in
  List.init steps (fun _ -> random_update rng inserted)

let segment stream lo len = List.filteri (fun i _ -> i >= lo && i < lo + len) stream

(* ---------- the warm-vs-cold audit ---------- *)

let probes =
  List.concat_map
    (fun u -> List.map (fun v -> (u, v)) [ 0.125; 1.0; 2.5 ])
    [ 0.25; 1.5; 3.0 ]

let get_of (u, v) name =
  match name with
  | "intercept" -> flt 1.0
  | "u" -> flt u
  | "v" -> flt v
  | other -> invalid_arg ("unexpected feature " ^ other)

let encode_bytes p =
  let b = Buffer.create 256 in
  Ml.Model_intf.encode_packed b p;
  Buffer.contents b

(* Cold statistics: a from-scratch recompute of the covariance triple over
   the server's current contents, wrapped in the same bundle shape as the
   warm path (identical column layout, so bitwise comparison of the trained
   parameters is meaningful). *)
let cold_bundle srv =
  Ml.Model_intf.moments_of_covariance
    ~snapshot:(fun () -> Serve.snapshot srv)
    (M.recompute (Serve.maintainer srv))
    ~features ~response

let audit_model srv what name =
  let spec = Serve.Model.spec_of srv name in
  Serve.Model.refresh srv name;
  let warm, warm_epoch = Serve.Model.packed srv name in
  if warm_epoch <> Serve.epoch srv then
    QCheck2.Test.fail_reportf "%s: %s served at epoch %d, data at %d" what name
      warm_epoch (Serve.epoch srv);
  let cold = Ml.Model_intf.train_packed spec (cold_bundle srv) in
  match Ml.Models.refresh_audit spec with
  | `Bitwise ->
      if encode_bytes warm <> encode_bytes cold then
        QCheck2.Test.fail_reportf
          "%s: warm-refreshed %s is not bit-identical to a cold retrain" what
          name
  | `Tolerance tol ->
      List.iter
        (fun probe ->
          let w = Ml.Model_intf.predict_packed warm (get_of probe) in
          let c = Ml.Model_intf.predict_packed cold (get_of probe) in
          if Float.abs (w -. c) > tol *. (1.0 +. Float.abs w +. Float.abs c)
          then
            QCheck2.Test.fail_reportf
              "%s: warm %s predicts %.17g, cold retrain %.17g (tol %g)" what
              name w c tol)
        probes

(* The differential: for each strategy, register the audited model set,
   then after every delta batch of a random lattice stream compare every
   warm-refreshed model against a cold retrain. *)
let audited_models = [ "linreg-closed"; "linreg-cg"; "linreg-gd"; "polyreg" ]

let warm_refresh_differential =
  QCheck2.Test.make ~count:4
    ~name:"warm refresh = cold retrain (all strategies, per-model audit)"
    QCheck2.Gen.(triple int (int_range 9 12) (int_range 3 5))
    (fun (seed, rounds, batch) ->
      List.for_all
        (fun (strategy, sname) ->
          let srv = Serve.create strategy (empty_db ()) ~features in
          let initial = 16 in
          let stream =
            lattice_stream ~seed ~steps:(initial + (rounds * batch))
          in
          Serve.apply_deltas srv (segment stream 0 initial);
          List.iter
            (fun m ->
              ignore
                (Serve.Model.register srv (Ml.Models.find_exn m) ~response))
            audited_models;
          for round = 1 to rounds do
            Serve.apply_deltas srv
              (segment stream (initial + ((round - 1) * batch)) batch);
            List.iter
              (audit_model srv (Printf.sprintf "%s round %d" sname round))
              audited_models
          done;
          true)
        strategies)

(* The snapshot-backed models (fm forces monomial moments, huber forces the
   row matrix — both recomputed from a snapshot because the triple only
   carries degree-2 moments) ride the same audit under their convergence
   envelope. Deterministic and small: their cold retrains are the expensive
   path the warm refresh exists to avoid. *)
let test_snapshot_backed_models () =
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  let stream = lattice_stream ~seed:23 ~steps:60 in
  Serve.apply_deltas srv (segment stream 0 40);
  List.iter
    (fun m ->
      ignore (Serve.Model.register srv (Ml.Models.find_exn m) ~response))
    [ "fm"; "huber" ];
  for round = 1 to 5 do
    Serve.apply_deltas srv (segment stream (40 + ((round - 1) * 4)) 4);
    List.iter
      (audit_model srv (Printf.sprintf "snapshot-backed round %d" round))
      [ "fm"; "huber" ]
  done

(* ---------- staleness semantics ---------- *)

(* A model with budget K must lag the data by at most K epochs: apply_deltas
   leaves it alone while epoch - model_epoch <= K and warm-refreshes it the
   moment the next epoch would exceed the budget; Model.refresh forces
   freshness on demand and is a no-op when already current. *)
let test_staleness_budget () =
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  let stream = lattice_stream ~seed:5 ~steps:100 in
  let seg = ref 0 in
  let advance n =
    Serve.apply_deltas srv (segment stream !seg n);
    seg := !seg + n
  in
  advance 30;
  let lazy_name =
    Serve.Model.register srv ~name:"lazy" ~max_staleness:2
      (Ml.Models.find_exn "linreg-closed")
      ~response
  in
  let eager_name =
    Serve.Model.register srv ~name:"eager"
      (Ml.Models.find_exn "linreg-closed")
      ~response
  in
  Alcotest.(check int) "registered at current epoch" 1
    (Serve.Model.epoch_of srv lazy_name);
  advance 5;
  advance 5;
  (* lag 2 <= budget: untouched; the zero-budget model tracks every epoch *)
  Alcotest.(check int) "within budget: not refreshed" 1
    (Serve.Model.epoch_of srv lazy_name);
  Alcotest.(check int) "zero staleness tracks the epoch" 3
    (Serve.Model.epoch_of srv eager_name);
  advance 5;
  (* lag would become 3 > budget: apply_deltas must refresh *)
  Alcotest.(check int) "budget exceeded: refreshed to current" 4
    (Serve.Model.epoch_of srv lazy_name);
  advance 5;
  let refreshes_before = (Serve.stats srv).Serve.model_refreshes in
  Serve.Model.refresh srv lazy_name;
  Alcotest.(check int) "on-demand refresh pulls to current" 5
    (Serve.Model.epoch_of srv lazy_name);
  Alcotest.(check int) "on-demand refresh counted"
    (refreshes_before + 1)
    (Serve.stats srv).Serve.model_refreshes;
  Serve.Model.refresh srv lazy_name;
  Alcotest.(check int) "refresh when current is a no-op"
    (refreshes_before + 1)
    (Serve.stats srv).Serve.model_refreshes;
  let predictions_before = (Serve.stats srv).Serve.model_predictions in
  let _value, tag = Serve.Model.predict srv lazy_name (get_of (1.0, 2.0)) in
  Alcotest.(check int) "prediction tagged with the parameter epoch" 5 tag;
  Alcotest.(check int) "prediction counted" (predictions_before + 1)
    (Serve.stats srv).Serve.model_predictions

(* ---------- clients_clamped (oversubscription is detectable) ---------- *)

let test_clients_clamped () =
  let saved = Util.Pool.worker_budget () in
  Util.Pool.set_worker_budget 1;
  Fun.protect ~finally:(fun () -> Util.Pool.set_worker_budget saved)
  @@ fun () ->
  let srv = Serve.create M.Higher_order (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:7 ~steps:60);
  let batch = Batch.covariance_numeric features in
  let burst = List.init 6 (fun _ -> batch) in
  Alcotest.(check int) "no clamp yet" 0 (Serve.stats srv).Serve.clients_clamped;
  let within = Serve.serve_many ~clients:2 srv burst in
  Alcotest.(check int) "a request within the budget is not a clamp" 0
    (Serve.stats srv).Serve.clients_clamped;
  let over = Serve.serve_many ~clients:8 srv burst in
  Alcotest.(check int) "oversubscription recorded" 1
    (Serve.stats srv).Serve.clients_clamped;
  (* clamping degrades parallelism, never answers *)
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "clamped results identical" true (a = b))
    within over

(* ---------- codec round trips through the registry ---------- *)

let test_codec_roundtrip () =
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:13 ~steps:80);
  let db = Serve.snapshot srv in
  let feature =
    Aggregates.Feature.make ~response ~continuous:[ "u"; "v" ] ~categorical:[] ()
  in
  let bundle = Ml.Model_intf.moments_of_database db feature in
  List.iter
    (fun spec ->
      let name = Ml.Model_intf.name spec in
      let packed = Ml.Model_intf.train_packed spec bundle in
      let bytes = encode_bytes packed in
      let decoded = Ml.Models.decode_packed (Codec.reader bytes) in
      Alcotest.(check string)
        (name ^ ": decode preserves the model name")
        (Ml.Model_intf.packed_name packed)
        (Ml.Model_intf.packed_name decoded);
      Alcotest.(check string)
        (name ^ ": decode/encode round-trips bit-exactly")
        bytes (encode_bytes decoded))
    Ml.Models.all

(* ---------- factorisation machine: moments vs rows ---------- *)

(* train_from_monomial_moments drives gradient descent purely from the
   degree-2 basis moments; train_on_rows computes the same full-batch
   gradient by passes over the explicit data matrix. Same initialisation
   (same params seed), mathematically identical gradients — the two may
   differ only in float rounding from summation order. *)
let test_fm_moment_vs_rows () =
  let rng = Util.Prng.create 31 in
  let dyadic () = float_of_int (1 + Util.Prng.int rng 64) /. 16.0 in
  let x = Array.init 40 (fun _ -> [| dyadic (); dyadic () |]) in
  let y = Array.map (fun r -> (0.5 *. r.(0)) -. (0.25 *. r.(1) *. r.(1))) x in
  let by_rows = Ml.Factorization_machine.train_on_rows x y in
  let moment =
    Ml.Monomial.moment_of_rows ~columns:[| "p"; "q" |]
      ~features:[ "p"; "q" ] ~response:"y" x y
  in
  let by_moments =
    Ml.Factorization_machine.train_from_monomial_moments moment
      ~features:[ "p"; "q" ]
  in
  Array.iteri
    (fun i row ->
      let a = Ml.Factorization_machine.predict by_rows row in
      let b = Ml.Factorization_machine.predict by_moments row in
      Alcotest.(check bool)
        (Printf.sprintf "row %d: moment-space gradient matches row-space" i)
        true
        (Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a +. Float.abs b)))
    x

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "learn"
    [
      ("differential", [ qcheck warm_refresh_differential ]);
      ( "models",
        [
          Alcotest.test_case "snapshot-backed models (fm, huber)" `Quick
            test_snapshot_backed_models;
          Alcotest.test_case "fm: moments vs rows" `Quick
            test_fm_moment_vs_rows;
          Alcotest.test_case "codec round trips" `Quick test_codec_roundtrip;
        ] );
      ( "serving",
        [
          Alcotest.test_case "staleness budget and epoch tags" `Quick
            test_staleness_budget;
          Alcotest.test_case "clients_clamped" `Quick test_clients_clamped;
        ] );
    ]
