(* Tests for the overload-hardened serving frontier (Serve.Admission +
   lib/traffic).

   The headline property is the shed-path differential: a degraded answer
   tagged [Stale e] must be BIT-identical to the answer the server actually
   served fresh at epoch [e] — overload may cost freshness, never
   correctness. As in test_serve.ml, bit equality across pipelines is only
   sound under exact float arithmetic, so all streams draw from the dyadic
   lattice (positive multiples of 1/16). *)

open Relational
module M = Fivm.Maintainer
module Delta = Fivm.Delta
module Batch = Aggregates.Batch
module Spec = Aggregates.Spec
module A = Serve.Admission

let int n = Value.Int n
let flt x = Value.Float x

let empty_db () =
  Database.create "stream"
    [
      Relation.create "F"
        (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let features = [ "m"; "u"; "v" ]

let strategies =
  [ (M.F_ivm, "fivm"); (M.Higher_order, "higher"); (M.First_order, "first") ]

let lattice_update rng =
  let value () = float_of_int (1 + Util.Prng.int rng 64) /. 16.0 in
  let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
  let tuple =
    match rel with
    | "F" ->
        [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4); flt (value ()) |]
    | _ -> [| int (Util.Prng.int rng 4); flt (value ()) |]
  in
  Delta.insert rel tuple

let lattice_stream ~seed ~steps =
  let rng = Util.Prng.create seed in
  List.init steps (fun _ -> lattice_update rng)

let cov_batch = Batch.covariance_numeric features
let mi_batch = Batch.mutual_information [ "a"; "b" ]

let grouped_batch =
  {
    Batch.name = "grouped";
    aggregates =
      [
        Spec.make ~id:"sum_m_by_a" ~terms:[ ("m", 1) ] ~group_by:[ "a" ] ();
        Spec.count ~id:"n";
      ];
  }

let catalog = [| cov_batch; mi_batch; grouped_batch |]
let bits = Int64.bits_of_float

let results_bit_identical a b =
  let norm rows = List.sort (fun (k, _) (k', _) -> compare k k') rows in
  List.length a = List.length b
  && List.for_all
       (fun (id, mine) ->
         match List.assoc_opt id b with
         | None -> false
         | Some theirs ->
             let mine = norm mine and theirs = norm theirs in
             List.length mine = List.length theirs
             && List.for_all2
                  (fun (k, v) (k', v') -> k = k' && bits v = bits v')
                  mine theirs)
       a

let fresh_eval srv batch =
  (Lmfao.Engine.eval ~on_cyclic:`Materialize (Serve.snapshot srv) batch)
    .Lmfao.Engine.keyed

(* ---- satellite 4: the shed-path differential, Admission-level ----

   For every maintenance strategy: serve a batch fresh (seeding the shadow
   cache), record the answer and its epoch, move the world on with more
   deltas, then force the admission layer to shed (zero refill rate, drained
   burst). The degraded answer must carry the OLD epoch tag and be bitwise
   the answer that epoch served — even though the server's current answer
   has moved on. *)
let stale_differential =
  QCheck2.Test.make ~count:8
    ~name:"Stale e answers are bitwise the answer epoch e served (all strategies)"
    QCheck2.Gen.(pair int (int_range 20 50))
    (fun (seed, steps) ->
      List.for_all
        (fun (strategy, sname) ->
          let srv = Serve.create strategy (empty_db ()) ~features in
          Serve.apply_deltas srv (lattice_stream ~seed ~steps);
          (* burst of 1 token, no refill: the second request MUST shed *)
          let cfg =
            A.config ~tenant_rate:0.0 ~tenant_burst:1.0 ~gate_delay:1.0
              ~deadline:10.0 ()
          in
          let adm = A.create cfg srv in
          Array.iteri
            (fun i batch ->
              let tenant = Printf.sprintf "%s-%d" sname i in
              let o =
                A.request adm ~tenant ~batch ~arrival:0.0 ~lane_free:0.0
              in
              let e0, r0 =
                match (o.A.status, o.A.result) with
                | A.Fresh e, Some r -> (e, r)
                | _ ->
                    QCheck2.Test.fail_reportf
                      "%s: first request for %s not served fresh" sname
                      batch.Batch.name
              in
              if not (results_bit_identical r0 (fresh_eval srv batch)) then
                QCheck2.Test.fail_reportf
                  "%s: fresh answer for %s diverges from recompute" sname
                  batch.Batch.name;
              (* the world moves on: the shadow entry's epoch is now stale *)
              Serve.apply_deltas srv
                (lattice_stream ~seed:(seed + i + 1) ~steps:10);
              let o2 =
                A.request adm ~tenant ~batch ~arrival:1.0 ~lane_free:1.0
              in
              match (o2.A.status, o2.A.result) with
              | A.Stale e, Some r ->
                  if e <> e0 then
                    QCheck2.Test.fail_reportf
                      "%s: stale tag %d, expected the seeding epoch %d" sname
                      e e0;
                  if not (results_bit_identical r r0) then
                    QCheck2.Test.fail_reportf
                      "%s: WRONG BIT — stale answer for %s is not epoch %d's \
                       answer"
                      sname batch.Batch.name e0;
                  if o2.A.used_lane then
                    QCheck2.Test.fail_reportf
                      "%s: shed answer consumed lane time" sname
              | s, _ ->
                  QCheck2.Test.fail_reportf
                    "%s: over-quota request for %s not shed (%s)" sname
                    batch.Batch.name
                    (match s with
                    | A.Fresh _ -> "fresh"
                    | A.Stale _ -> "stale without result"
                    | A.Timeout -> "timeout"))
            catalog;
          true)
        strategies)

(* ---- end-to-end: the driver's audit under overload and faults ----

   Open-loop Zipf traffic at a rate guaranteed to overload the virtual
   lanes, transient faults injected into every admitted serve, checked in
   Exact mode: the driver recomputes a reference for every answered epoch
   and fails on any bit divergence. All three outcome classes and the
   accounting identity must hold. *)
let driver_audit =
  QCheck2.Test.make ~count:4
    ~name:"driver audit: zero wrong bits under overload + transient faults"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let srv = Serve.create M.F_ivm (empty_db ()) ~features in
      Serve.apply_deltas srv (lattice_stream ~seed ~steps:40);
      let spec =
        Traffic.Workload.spec ~seed ~duration:1.0 ~read_rate:400.0
          ~delta_rate:4.0 ~delta_batch:6 ~tenants:3 ()
      in
      let events =
        (* warm reads seed the shadow cache before the storm *)
        List.init (Array.length catalog) (fun i ->
            Traffic.Workload.Read
              { at = 0.001 *. float_of_int (i + 1); tenant = 0; batch = i })
        @ List.map
            (function
              | Traffic.Workload.Read r ->
                  Traffic.Workload.Read { r with at = r.at +. 0.01 }
              | Traffic.Workload.Delta d ->
                  Traffic.Workload.Delta { d with at = d.at +. 0.01 })
            (Traffic.Workload.generate spec
               ~catalog:(Array.length catalog)
               ~make_updates:(fun rng n ->
                 List.init n (fun _ -> lattice_update rng)))
      in
      let cfg =
        A.config ~tenant_rate:30.0 ~tenant_burst:5.0
          ~gate_delay:1e-4 (* virtually everything over one slow lane sheds *)
          ~deadline:1.0 ~max_retries:8 ~backoff_base:1e-6 ~backoff_cap:1e-4
          ~faults:(Resilience.Faults.parse ~seed "transient:0.3")
          ~seed ()
      in
      let adm = A.create cfg srv in
      let r =
        Traffic.Driver.run ~lanes:1 ~flush_interval:0.2
          ~check:Traffic.Driver.Exact adm ~catalog ~events
      in
      if r.Traffic.Driver.error_count > 0 then
        QCheck2.Test.fail_reportf "audit failures:\n%s"
          (String.concat "\n" r.Traffic.Driver.errors);
      if
        r.Traffic.Driver.admitted + r.Traffic.Driver.shed
        + r.Traffic.Driver.timeout
        <> r.Traffic.Driver.offered
      then
        QCheck2.Test.fail_reportf "accounting: %d + %d + %d <> %d"
          r.Traffic.Driver.admitted r.Traffic.Driver.shed
          r.Traffic.Driver.timeout r.Traffic.Driver.offered;
      if r.Traffic.Driver.checked = 0 then
        QCheck2.Test.fail_reportf "audit checked nothing";
      if r.Traffic.Driver.admitted = 0 || r.Traffic.Driver.shed = 0 then
        QCheck2.Test.fail_reportf
          "expected both fresh and shed traffic (admitted %d, shed %d)"
          r.Traffic.Driver.admitted r.Traffic.Driver.shed;
      true)

(* ---- workload generation: determinism, order, ranges ---- *)
let workload_deterministic =
  QCheck2.Test.make ~count:30 ~name:"workload: deterministic per seed, sorted"
    QCheck2.Gen.(triple int (int_range 1 5) (int_range 1 4))
    (fun (seed, catalog_n, tenants) ->
      let mk () =
        Traffic.Workload.generate
          (Traffic.Workload.spec ~seed ~duration:0.5 ~read_rate:200.0
             ~delta_rate:20.0 ~delta_batch:3 ~tenants ())
          ~catalog:catalog_n
          ~make_updates:(fun rng n ->
            List.init n (fun _ -> lattice_update rng))
      in
      let a = mk () and b = mk () in
      if a <> b then QCheck2.Test.fail_reportf "same seed, different events";
      let rec sorted = function
        | x :: (y :: _ as rest) ->
            Traffic.Workload.at x <= Traffic.Workload.at y && sorted rest
        | _ -> true
      in
      if not (sorted a) then QCheck2.Test.fail_reportf "events out of order";
      List.iter
        (function
          | Traffic.Workload.Read { at; tenant; batch } ->
              if at < 0.0 || at >= 0.5 then
                QCheck2.Test.fail_reportf "read outside window";
              if tenant < 0 || tenant >= tenants then
                QCheck2.Test.fail_reportf "tenant %d out of range" tenant;
              if batch < 0 || batch >= catalog_n then
                QCheck2.Test.fail_reportf "batch %d out of range" batch
          | Traffic.Workload.Delta { updates; _ } ->
              if List.length updates <> 3 then
                QCheck2.Test.fail_reportf "delta batch size")
        a;
      true)

(* ---- coalescing: equivalence and elimination accounting ---- *)
let test_coalescing () =
  let t1 = [| int 1; flt 0.5 |] and t2 = [| int 2; flt 0.25 |] in
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:3 ~steps:30);
  let adm = A.create (A.config ()) srv in
  (* t1 inserted twice (merges to one update of multiplicity 2), t2
     inserted then deleted (cancels to nothing): 4 updates -> 1 *)
  (match
     A.submit_delta adm
       [ Delta.insert "D1" t1; Delta.insert "D1" t1; Delta.insert "D1" t2 ]
   with
  | `Queued -> ()
  | `Backpressure -> Alcotest.fail "queue full");
  (match A.submit_delta adm [ Delta.delete "D1" t2 ] with
  | `Queued -> ()
  | `Backpressure -> Alcotest.fail "queue full");
  Alcotest.(check int) "pending before flush" 4 (A.pending_updates adm);
  let eliminated = A.flush adm in
  Alcotest.(check int) "three of four updates eliminated" 3 eliminated;
  Alcotest.(check int) "queue drained" 0 (A.pending_updates adm);
  (* equivalence: a server given the pre-coalesced net directly *)
  let srv2 = Serve.create M.F_ivm (empty_db ()) ~features in
  Serve.apply_deltas srv2 (lattice_stream ~seed:3 ~steps:30);
  Serve.apply_deltas srv2 [ Delta.insert "D1" t1; Delta.insert "D1" t1 ];
  Array.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: coalesced == raw net" b.Batch.name)
        true
        (results_bit_identical (Serve.serve srv b) (Serve.serve srv2 b)))
    catalog;
  (* an empty-net flush must not bump the epoch *)
  (match A.submit_delta adm [ Delta.insert "D2" t1; Delta.delete "D2" t1 ] with
  | `Queued -> ()
  | `Backpressure -> Alcotest.fail "queue full");
  let e = Serve.epoch srv in
  Alcotest.(check int) "cancelling pair fully eliminated" 2 (A.flush adm);
  Alcotest.(check int) "no-op flush leaves the epoch alone" e (Serve.epoch srv)

(* ---- token buckets and backpressure ---- *)
let test_token_bucket_and_backpressure () =
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:5 ~steps:30);
  let cfg =
    A.config ~tenant_rate:2.0 ~tenant_burst:2.0 ~gate_delay:1.0 ~deadline:10.0
      ~max_pending:4 ()
  in
  let adm = A.create cfg srv in
  let status t arrival =
    (A.request adm ~tenant:t ~batch:cov_batch ~arrival ~lane_free:arrival)
      .A.status
  in
  let is_fresh = function A.Fresh _ -> true | _ -> false in
  (* two tokens: third same-instant request is denied; with an empty shadow
     it cannot even degrade, so it times out *)
  Alcotest.(check bool) "1st admitted" true (is_fresh (status "a" 0.0));
  Alcotest.(check bool) "2nd admitted" true (is_fresh (status "a" 0.0));
  (match status "a" 0.0 with
  | A.Stale _ ->
      () (* the first two answers seeded the shadow for this batch *)
  | s ->
      Alcotest.failf "3rd request should shed, got %s"
        (match s with A.Fresh _ -> "fresh" | _ -> "timeout"));
  (* an independent tenant has its own bucket *)
  Alcotest.(check bool) "other tenant admitted" true (is_fresh (status "b" 0.0));
  (* refill: 2 tokens/s -> one second later one token is back *)
  Alcotest.(check bool) "refilled after 1s" true (is_fresh (status "a" 1.0));
  (* backpressure: the queue caps at 4 pending updates *)
  let u () = [ Delta.insert "D1" [| int 0; flt 0.0625 |] ] in
  for i = 1 to 4 do
    match A.submit_delta adm (u ()) with
    | `Queued -> ()
    | `Backpressure -> Alcotest.failf "premature backpressure at %d" i
  done;
  (match A.submit_delta adm (u ()) with
  | `Backpressure -> ()
  | `Queued -> Alcotest.fail "expected backpressure on a full queue");
  ignore (A.flush adm);
  match A.submit_delta adm (u ()) with
  | `Queued -> ()
  | `Backpressure -> Alcotest.fail "flush should free the queue"

(* ---- retries: transient faults are retried with backoff, terminal
   exhaustion is a Timeout, and a recovered answer is still bit-exact ---- *)
let test_retries_under_faults () =
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:9 ~steps:30);
  let mk faults max_retries =
    A.create
      (A.config ~tenant_rate:100.0 ~tenant_burst:20.0 ~gate_delay:1.0
         ~deadline:10.0 ~max_retries ~backoff_base:1e-6 ~backoff_cap:1e-5
         ~faults ())
      srv
  in
  (* p=0.5 with a generous budget: over 20 requests some retries must fire,
     every answer fresh and bit-exact *)
  let adm = mk (Resilience.Faults.parse ~seed:1 "transient:0.5") 20 in
  let retries = ref 0 in
  for i = 0 to 19 do
    let o =
      A.request adm ~tenant:"t" ~batch:cov_batch
        ~arrival:(float_of_int i /. 100.0)
        ~lane_free:(float_of_int i /. 100.0)
    in
    retries := !retries + o.A.retries;
    match (o.A.status, o.A.result) with
    | A.Fresh _, Some r ->
        Alcotest.(check bool)
          (Printf.sprintf "request %d bit-exact after retries" i)
          true
          (results_bit_identical r (fresh_eval srv cov_batch))
    | _ -> Alcotest.failf "request %d not served fresh" i
  done;
  Alcotest.(check bool) "some retries happened" true (!retries > 0);
  (* certain failure with no retry budget: Timeout, no result, no stale
     masquerading as fresh *)
  let adm = mk (Resilience.Faults.parse ~seed:2 "transient:1.0") 2 in
  let o = A.request adm ~tenant:"t" ~batch:mi_batch ~arrival:0.0 ~lane_free:0.0 in
  (match (o.A.status, o.A.result) with
  | A.Timeout, None -> ()
  | _ -> Alcotest.fail "exhausted retries must yield Timeout with no result");
  Alcotest.(check int) "all retries consumed" 2 o.A.retries

(* ---- report quantiles vs the Obs histogram ---- *)
let test_report_histogram_consistency () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:13 ~steps:30);
  let adm =
    A.create
      (A.config ~tenant_rate:50.0 ~tenant_burst:10.0 ~gate_delay:1e-4
         ~deadline:1.0 ())
      srv
  in
  let events =
    List.init 60 (fun i ->
        Traffic.Workload.Read
          { at = float_of_int i /. 100.0; tenant = i mod 2; batch = i mod 3 })
  in
  let r = Traffic.Driver.run ~lanes:1 adm ~catalog ~events in
  Alcotest.(check int) "offered all reads" 60 r.Traffic.Driver.offered;
  (match Obs.histogram_snapshot_by_name "serve.latency" with
  | None -> Alcotest.fail "serve.latency histogram missing"
  | Some s ->
      Alcotest.(check int)
        "histogram count == offered" 60 s.Obs.hs_count;
      (* the histogram's p99 estimate must land between the exact p95 and
         the exact max, each widened by one log bucket (10^(1/5)): at small
         counts the two quantile definitions may disagree by a rank, which
         is at most a bucket or two of value *)
      let hp99 = Obs.snapshot_quantile s 0.99 in
      let w = 10.0 ** 0.2 in
      if r.Traffic.Driver.p95 > 0.0 && Float.is_finite hp99 then
        Alcotest.(check bool)
          (Printf.sprintf "histogram p99 %g within [p95/w, max*w] = [%g, %g]"
             hp99
             (r.Traffic.Driver.p95 /. w)
             (r.Traffic.Driver.max_latency *. w))
          true
          (hp99 >= r.Traffic.Driver.p95 /. w
          && hp99 <= r.Traffic.Driver.max_latency *. w));
  let counters = Obs.counter_snapshot () in
  let c name =
    match List.assoc_opt name counters with Some v -> v | None -> 0
  in
  Alcotest.(check int) "counter partition balances" (c "serve.offered")
    (c "serve.admitted" + c "serve.shed" + c "serve.timeout");
  Alcotest.(check int) "counters match the report" r.Traffic.Driver.admitted
    (c "serve.admitted")

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "traffic"
    [
      ( "differential",
        [ qcheck stale_differential; qcheck driver_audit ] );
      ("workload", [ qcheck workload_deterministic ]);
      ( "admission",
        [
          Alcotest.test_case "coalescing equivalence" `Quick test_coalescing;
          Alcotest.test_case "token buckets and backpressure" `Quick
            test_token_bucket_and_backpressure;
          Alcotest.test_case "retries under transient faults" `Quick
            test_retries_under_faults;
          Alcotest.test_case "report vs histogram" `Quick
            test_report_histogram_consistency;
        ] );
    ]
