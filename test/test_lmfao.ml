(* Tests for the LMFAO engine: every aggregate of every batch must equal the
   naive evaluation over the materialised join, across random databases,
   option combinations (sharing / multi-root / parallel), and batch types. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch
module Feature = Aggregates.Feature
module Engine = Lmfao.Engine

let int n = Value.Int n
let flt x = Value.Float x

(* A small star database: fact F(a,b,c,m1,m2) with dims D1(a,x,u), D2(b,y),
   D3(c,z). a,b,c,x,y,z categorical (ints), m1,m2,u,v continuous floats. *)
let random_star rng card domain =
  let mk name attrs gen =
    let schema = Schema.make attrs in
    let rel = Relation.create name schema in
    for _ = 1 to card do
      Relation.append rel (gen ())
    done;
    rel
  in
  let ri d = int (Util.Prng.int rng d) in
  let rf () = flt (float_of_int (Util.Prng.int rng 10)) in
  let f =
    mk "F"
      [ ("a", Value.TInt); ("b", Value.TInt); ("c", Value.TInt);
        ("m1", Value.TFloat); ("m2", Value.TFloat) ]
      (fun () -> [| ri domain; ri domain; ri domain; rf (); rf () |])
  in
  let d1 =
    mk "D1"
      [ ("a", Value.TInt); ("x", Value.TInt); ("u", Value.TFloat) ]
      (fun () -> [| ri domain; ri 3; rf () |])
  in
  let d2 =
    mk "D2"
      [ ("b", Value.TInt); ("y", Value.TInt) ]
      (fun () -> [| ri domain; ri 3 |])
  in
  let d3 =
    mk "D3"
      [ ("c", Value.TInt); ("z", Value.TInt) ]
      (fun () -> [| ri domain; ri 3 |])
  in
  Database.create "star" [ f; d1; d2; d3 ]

let features =
  Feature.make ~response:"m1" ~thresholds_per_feature:3
    ~continuous:[ "m2"; "u" ] ~categorical:[ "x"; "y"; "z" ] ()

let check_engine_vs_flat ~options db batch =
  let flat = Batch.eval_flat (Database.materialise_join db) batch in
  let got = (Engine.eval ~options db batch).Engine.keyed in
  List.for_all
    (fun (id, reference) ->
      let mine = List.assoc id got in
      (* flat eval omits empty groups; engine may produce explicit scalar 0 *)
      let norm r =
        List.sort compare (List.filter (fun (_, v) -> Float.abs v > 1e-12) r)
      in
      let ok = norm mine = [] && norm reference = [] || Spec.result_equal (norm mine) (norm reference) in
      if not ok then
        Format.eprintf "MISMATCH %s@. engine: %s@. flat:   %s@." id
          (String.concat " "
             (List.map (fun (k, v) ->
                  Printf.sprintf "{%s}=%g"
                    (String.concat ","
                       (List.map (fun (a, x) -> a ^ "=" ^ Value.to_string x) k))
                    v)
                (norm mine)))
          (String.concat " "
             (List.map (fun (k, v) ->
                  Printf.sprintf "{%s}=%g"
                    (String.concat ","
                       (List.map (fun (a, x) -> a ^ "=" ^ Value.to_string x) k))
                    v)
                (norm reference)));
      ok)
    flat

let batch_of name db =
  match name with
  | "covariance" -> Batch.covariance features
  | "decision" -> Batch.decision_node ~db features
  | "mutualinfo" -> Batch.mutual_information [ "x"; "y"; "z" ]
  | "kmeans" -> Batch.kmeans features
  | _ -> assert false

let engine_matches_flat batch_name options_desc options =
  QCheck2.Test.make ~count:12
    ~name:(Printf.sprintf "%s batch = flat eval (%s)" batch_name options_desc)
    QCheck2.Gen.(triple (int_range 0 25) (int_range 1 5) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let db = random_star rng card domain in
      check_engine_vs_flat ~options db (batch_of batch_name db))

let default = Engine.default_options

let all_options =
  [
    ("default", default);
    ("no-share", { default with share = false });
    ("single-root", { default with multi_root = false });
    ("parallel", { default with parallel = true; chunk_threshold = 4 });
    ( "no-share single-root",
      { default with share = false; multi_root = false } );
  ]

let sharing_reduces_partials () =
  let rng = Util.Prng.create 17 in
  let db = random_star rng 40 4 in
  let batch = Batch.covariance features in
  let with_share = (Engine.eval ~options:default db batch).Engine.stats in
  let without =
    (Engine.eval ~options:{ default with share = false } db batch).Engine.stats
  in
  Alcotest.(check bool)
    (Printf.sprintf "shared %d < unshared %d partials" with_share.partials
       without.partials)
    true
    (with_share.partials < without.partials);
  Alcotest.(check bool) "some sharing happened" true (with_share.shared_away > 0)

let counters_mirror_stats () =
  let rng = Util.Prng.create 17 in
  let db = random_star rng 40 4 in
  let batch = Batch.covariance features in
  Obs.reset ();
  let stats =
    Obs.with_enabled true (fun () -> (Engine.eval db batch).Engine.stats)
  in
  Alcotest.(check int) "lmfao.views = stats.views" stats.views
    (Obs.counter_value_by_name "lmfao.views");
  Alcotest.(check int) "lmfao.partials = stats.partials" stats.partials
    (Obs.counter_value_by_name "lmfao.partials");
  Alcotest.(check int) "lmfao.shared_away = stats.shared_away" stats.shared_away
    (Obs.counter_value_by_name "lmfao.shared_away");
  Alcotest.(check bool) "sharing counted" true
    (Obs.counter_value_by_name "lmfao.shared_away" > 0);
  Alcotest.(check bool) "scans counted" true
    (Obs.counter_value_by_name "lmfao.tuples_scanned" > 0);
  Obs.reset ();
  (* disabled run leaves everything at zero *)
  ignore (Engine.eval db batch);
  Alcotest.(check int) "disabled leaves counters at zero" 0
    (Obs.counter_value_by_name "lmfao.views")

let unsupported_additive_filter () =
  let rng = Util.Prng.create 3 in
  let db = random_star rng 10 3 in
  let spec =
    Spec.make
      ~filter:(Predicate.Additive_ineq ([ ("m1", 1.0); ("u", 1.0) ], 5.0))
      ~id:"svm" ~terms:[] ~group_by:[] ()
  in
  let batch = { Batch.name = "svm"; aggregates = [ spec ] } in
  match Engine.eval db batch with
  | exception Engine.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let empty_join_gives_zero () =
  (* dims that never match the fact *)
  let f =
    Relation.of_list "F"
      (Schema.make [ ("a", Value.TInt); ("m", Value.TFloat) ])
      [ [| int 1; flt 5.0 |] ]
  in
  let d =
    Relation.of_list "D"
      (Schema.make [ ("a", Value.TInt); ("x", Value.TInt) ])
      [ [| int 2; int 7 |] ]
  in
  let db = Database.create "empty" [ f; d ] in
  let batch =
    {
      Batch.name = "b";
      aggregates =
        [
          Spec.count ~id:"n";
          Spec.make ~id:"sx" ~terms:[ ("m", 1) ] ~group_by:[ "x" ] ();
        ];
    }
  in
  let results = (Engine.eval db batch).Engine.keyed in
  Alcotest.(check (float 0.0)) "count 0" 0.0 (Spec.scalar_result (List.assoc "n" results));
  Alcotest.(check int) "no groups" 0 (List.length (List.assoc "sx" results))

(* the bucket rewriting must answer the ORIGINAL decision-node batch ids *)
let bucketed_equals_flat =
  QCheck2.Test.make ~count:20 ~name:"bucket rewriting = flat decision batch"
    QCheck2.Gen.(triple (int_range 1 30) (int_range 1 5) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let db = random_star rng card domain in
      let thresholds =
        List.map
          (fun x -> (x, Batch.thresholds_for db x 4))
          features.Feature.continuous
      in
      let batch = Batch.decision_node ~db { features with thresholds_per_feature = 4 } in
      let flat = Batch.eval_flat (Database.materialise_join db) batch in
      let bucketed = Lmfao.Bucketed.decision_node_results db features ~thresholds in
      List.for_all
        (fun (id, reference) ->
          match List.assoc_opt id bucketed with
          | None -> false
          | Some mine ->
              let norm r =
                List.sort compare (List.filter (fun (_, v) -> Float.abs v > 1e-12) r)
              in
              norm mine = [] && norm reference = []
              || Spec.result_equal (norm mine) (norm reference))
        flat)

(* ---- parallel differential ----

   The parallel evaluator must be BIT-identical to the sequential one — not
   merely numerically close — because [Pool.parallel_chunks] fixes the
   decomposition and fold order independently of how many domains (or spawn
   tokens) execute the chunks. Inputs here are exact in floating point
   (integer-valued floats; every partial sum of products stays far below
   2^53), so any ordering difference would surface as a bit difference.
   Exercised under BORG_DOMAINS=1 (inline) and =4 (spawning, budget 3) via
   the env var the engine actually reads, across the share / multi_root
   option matrix. *)

let bits_identical a b =
  let norm r =
    List.sort (fun (k, _) (k', _) -> compare k k') r
  in
  List.length a = List.length b
  && List.for_all
       (fun (id, mine) ->
         match List.assoc_opt id b with
         | None -> false
         | Some theirs ->
             let mine = norm mine and theirs = norm theirs in
             List.length mine = List.length theirs
             && List.for_all2
                  (fun (k, v) (k', v') ->
                    k = k'
                    && Int64.bits_of_float v = Int64.bits_of_float v')
                  mine theirs)
       a

let with_domains_env v f =
  let saved = Sys.getenv_opt "BORG_DOMAINS" in
  let saved_budget = Util.Pool.worker_budget () in
  Unix.putenv "BORG_DOMAINS" v;
  Util.Pool.set_worker_budget (Util.Pool.num_domains () - 1);
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "BORG_DOMAINS" (Option.value saved ~default:"");
      Util.Pool.set_worker_budget saved_budget)
    f

let parallel_matches_sequential options_desc options =
  QCheck2.Test.make ~count:8
    ~name:
      (Printf.sprintf "parallel = sequential bitwise (%s, domains 1 and 4)"
         options_desc)
    QCheck2.Gen.(triple (int_range 1 30) (int_range 1 5) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let db = random_star rng card domain in
      List.for_all
        (fun batch_name ->
          let batch = batch_of batch_name db in
          let seq =
            (Engine.eval ~options:{ options with Engine.parallel = false } db
               batch)
              .Engine.keyed
          in
          List.for_all
            (fun env ->
              with_domains_env env @@ fun () ->
              let par =
                (Engine.eval
                   ~options:
                     { options with Engine.parallel = true; chunk_threshold = 4 }
                   db batch)
                  .Engine.keyed
              in
              bits_identical seq par)
            [ "1"; "4" ])
        [ "covariance"; "mutualinfo" ])

let parallel_differential_matrix =
  List.map
    (fun (desc, options) -> parallel_matches_sequential desc options)
    [
      ("default", default);
      ("no-share", { default with share = false });
      ("single-root", { default with multi_root = false });
      ( "no-share single-root",
        { default with share = false; multi_root = false } );
    ]

(* ---- cyclic fallback ----

   Cyclic schemas (no join tree) fall back to a materialised WCOJ join.
   The fallback must report REAL stats — one view (the join), one partial
   per aggregate — and bump the [lmfao.cyclic_fallback] counter, instead of
   the all-zero stats it used to fabricate. *)
let cyclic_fallback_reports_stats () =
  let tri name a b rows =
    Relation.of_list name
      (Schema.make [ (a, Value.TInt); (b, Value.TInt) ])
      (List.map (fun (x, y) -> [| int x; int y |]) rows)
  in
  let db =
    Database.create "triangle"
      [
        tri "R" "a" "b" [ (1, 2); (2, 3); (1, 3) ];
        tri "S" "b" "c" [ (2, 3); (3, 1); (3, 4) ];
        tri "T" "c" "a" [ (3, 1); (1, 2); (4, 1) ];
      ]
  in
  let batch =
    {
      Batch.name = "tri";
      aggregates =
        [ Spec.count ~id:"n"; Spec.make ~id:"ga" ~terms:[] ~group_by:[ "a" ] () ];
    }
  in
  (match Engine.eval ~on_cyclic:`Raise db batch with
  | exception Join_tree.Cyclic -> ()
  | _ -> Alcotest.fail "expected Cyclic on `Raise");
  Obs.reset ();
  let r =
    Obs.with_enabled true (fun () -> Engine.eval ~on_cyclic:`Materialize db batch)
  in
  Alcotest.(check int) "one materialised view" 1 r.Engine.stats.views;
  Alcotest.(check int) "one partial per aggregate" 2 r.Engine.stats.partials;
  Alcotest.(check int) "nothing shared" 0 r.Engine.stats.shared_away;
  Alcotest.(check int) "fallback counted" 1
    (Obs.counter_value_by_name "lmfao.cyclic_fallback");
  Alcotest.(check bool) "join tuples scanned" true
    (Obs.counter_value_by_name "lmfao.tuples_scanned" > 0);
  (* and the results are still right: the triangle query has exactly three
     matches, (1,2,3), (2,3,1) and (1,3,4) *)
  Alcotest.(check (float 0.0)) "count" 3.0
    (Spec.scalar_result (List.assoc "n" r.Engine.keyed));
  Obs.reset ()

let test_spec_to_sql () =
  let spec =
    Spec.make
      ~filter:(Predicate.Ge ("prize", Value.Float 10.0))
      ~id:"s" ~terms:[ ("maxtemp", 1); ("prize", 2) ] ~group_by:[ "category" ] ()
  in
  Alcotest.(check string) "sql"
    "SELECT category, SUM(maxtemp * prize * prize) FROM Q WHERE prize >= 10 GROUP BY category;"
    (Spec.to_sql spec);
  Alcotest.(check string) "count sql" "SELECT SUM(1) FROM Q;"
    (Spec.to_sql (Spec.count ~id:"n"))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "lmfao"
    [
      ( "vs-flat",
        List.concat_map
          (fun (desc, options) ->
            List.map
              (fun b -> qcheck (engine_matches_flat b desc options))
              [ "covariance"; "decision"; "mutualinfo"; "kmeans" ])
          all_options );
      ("bucketed", [ qcheck bucketed_equals_flat ]);
      ("parallel-differential", List.map qcheck parallel_differential_matrix);
      ( "cyclic",
        [
          Alcotest.test_case "fallback reports real stats" `Quick
            cyclic_fallback_reports_stats;
        ] );
      ("sql", [ Alcotest.test_case "Spec.to_sql" `Quick test_spec_to_sql ]);
      ( "sharing",
        [
          Alcotest.test_case "dedup reduces partials" `Quick sharing_reduces_partials;
          Alcotest.test_case "obs counters mirror stats" `Quick counters_mirror_stats;
        ] );
      ( "edges",
        [
          Alcotest.test_case "additive filter unsupported" `Quick
            unsupported_additive_filter;
          Alcotest.test_case "empty join" `Quick empty_join_gives_zero;
        ] );
    ]
