(* Tests for the resilience layer: codec round-trips, WAL torn-tail
   tolerance, checkpoint/restore, and — the core promise — crash recovery
   that is BIT-IDENTICAL to a run with no crash, for seeded update streams
   across all three maintenance strategies and every injected fault shape
   (plain crash, torn WAL tail, bit-flipped newest checkpoint). *)

open Relational
module Cov = Rings.Covariance
module M = Fivm.Maintainer
module Delta = Fivm.Delta
module Wal = Resilience.Wal
module Checkpoint = Resilience.Checkpoint
module Faults = Resilience.Faults
module Driver = Resilience.Driver

let int n = Value.Int n
let flt x = Value.Float x

(* Star schema: F(a,b,m) with D1(a,u), D2(b,v); numeric features m,u,v. *)
let empty_db () =
  Database.create "stream"
    [
      Relation.create "F"
        (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let features = [ "m"; "u"; "v" ]
let make strategy () = M.create strategy (empty_db ()) ~features

let random_update rng inserted =
  let fresh () =
    let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
    let tuple =
      match rel with
      | "F" ->
          [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4);
             flt (Util.Prng.float rng 5.0) |]
      | _ -> [| int (Util.Prng.int rng 4); flt (Util.Prng.float rng 5.0) |]
    in
    Delta.insert rel tuple
  in
  if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
    let arr = Array.of_list !inserted in
    let u = Util.Prng.choice rng arr in
    inserted := List.filter (fun x -> x != u) !inserted;
    Delta.delete u.Delta.relation u.Delta.tuple
  end
  else begin
    let u = fresh () in
    inserted := u :: !inserted;
    u
  end

let stream ~seed ~steps =
  let rng = Util.Prng.create seed in
  let inserted = ref [] in
  List.init steps (fun _ -> random_update rng inserted)

(* Bit-identical covariance comparison: every float equal by BIT PATTERN. *)
let bits = Int64.bits_of_float

let cov_bit_identical a b =
  let n = Cov.dim a in
  Cov.dim b = n
  && bits a.Cov.c = bits b.Cov.c
  && (let ok = ref true in
      for i = 0 to n - 1 do
        if bits (Util.Vec.get a.Cov.s i) <> bits (Util.Vec.get b.Cov.s i) then ok := false;
        for j = 0 to n - 1 do
          if bits (Util.Mat.get a.Cov.q i j) <> bits (Util.Mat.get b.Cov.q i j) then
            ok := false
        done
      done;
      !ok)

let with_temp_dir f =
  let dir = Filename.temp_dir "resilience" "" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* Reference: the same stream through a bare maintainer, no driver. *)
let clean_covariance strategy updates =
  let m = make strategy () in
  List.iter (M.apply m) updates;
  M.covariance m

(* Drive [updates] through a driver that may crash; on {!Faults.Crash},
   rebuild the driver from disk (the recovery path) and resume the stream
   from its recovered sequence number. *)
let run_resilient ~cfg ~strategy updates =
  let n = List.length updates in
  let arr = Array.of_list updates in
  let rec go attempts d =
    if attempts > 25 then failwith "crash loop";
    let from = Driver.seq d in
    match
      for i = from to n - 1 do
        ignore (Driver.submit d arr.(i))
      done
    with
    | () -> d
    | exception Faults.Crash _ -> go (attempts + 1) (Driver.create cfg (make strategy))
  in
  go 0 (Driver.create cfg (make strategy))

(* ---- codec round-trips ---- *)

let test_codec_roundtrip () =
  let module C = Codec in
  let b = Buffer.create 64 in
  C.value b Value.Null;
  C.value b (int 42);
  C.value b (flt (-0.0));
  C.value b (Value.Str "hello");
  C.tuple b [| int 1; flt nan; Value.Str "" |];
  C.key b (Keypack.P 123456789);
  C.key b (Keypack.B [| int 7; Value.Str "x" |]);
  C.i64 b min_int;
  C.f64 b infinity;
  let rd = C.reader (Buffer.contents b) in
  Alcotest.(check bool) "null" true (C.read_value rd = Value.Null);
  Alcotest.(check bool) "int" true (C.read_value rd = int 42);
  (match C.read_value rd with
  | Value.Float f -> Alcotest.(check bool) "-0.0 bits" true (bits f = bits (-0.0))
  | _ -> Alcotest.fail "expected float");
  Alcotest.(check bool) "str" true (C.read_value rd = Value.Str "hello");
  (match C.read_tuple rd with
  | [| Value.Int 1; Value.Float f; Value.Str "" |] ->
      Alcotest.(check bool) "nan bits" true (bits f = bits nan)
  | _ -> Alcotest.fail "tuple mismatch");
  Alcotest.(check bool) "packed key" true (C.read_key rd = Keypack.P 123456789);
  Alcotest.(check bool) "boxed key" true
    (match C.read_key rd with
    | Keypack.B t -> Tuple.equal t [| int 7; Value.Str "x" |]
    | _ -> false);
  Alcotest.(check int) "min_int" min_int (C.read_i64 rd);
  Alcotest.(check bool) "inf" true (C.read_f64 rd = infinity);
  Alcotest.(check bool) "eof" true (C.eof rd)

let test_frame_rejects_damage () =
  let module C = Codec in
  let b = Buffer.create 32 in
  C.frame b "payload bytes";
  let s = Buffer.contents b in
  Alcotest.(check string) "roundtrip" "payload bytes" (C.read_frame (C.reader s));
  (* truncation *)
  (try
     ignore (C.read_frame (C.reader (String.sub s 0 (String.length s - 1))));
     Alcotest.fail "truncated frame accepted"
   with C.Decode_error _ -> ());
  (* bit flip *)
  let d = Bytes.of_string s in
  Bytes.set d 10 (Char.chr (Char.code (Bytes.get d 10) lxor 1));
  try
    ignore (C.read_frame (C.reader (Bytes.to_string d)));
    Alcotest.fail "corrupt frame accepted"
  with C.Decode_error _ -> ()

let cov_codec_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"covariance codec is bit-identical"
    QCheck2.Gen.(pair (int_range 1 6) int)
    (fun (dim, seed) ->
      let rng = Util.Prng.create seed in
      let acc = Cov.Acc.create dim in
      for _ = 1 to 10 do
        Cov.Acc.add_tuple acc
          (Array.init dim (fun _ -> Util.Prng.gaussian rng ~mu:0.0 ~sigma:100.0))
      done;
      let c = Cov.Acc.freeze acc in
      let b = Buffer.create 256 in
      Cov.encode b c;
      let c' = Cov.decode (Codec.reader (Buffer.contents b)) in
      cov_bit_identical c c')

(* ---- WAL ---- *)

let test_wal_roundtrip_and_torn_tail () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  let us = stream ~seed:11 ~steps:20 in
  let w = Wal.open_append path in
  List.iteri (fun i u -> Wal.append w { Wal.seq = i + 1; update = u }) us;
  Wal.close w;
  let rp = Wal.replay path in
  Alcotest.(check int) "all records" 20 (List.length rp.Wal.records);
  Alcotest.(check bool) "not torn" false rp.Wal.torn;
  Alcotest.(check int) "valid = size" (Wal.size path) rp.Wal.valid_bytes;
  List.iteri
    (fun i (r : Wal.record) ->
      Alcotest.(check int) "seq order" (i + 1) r.seq)
    rp.Wal.records;
  (* shear mid-frame: replay keeps the valid prefix, flags torn, no raise *)
  Wal.shear_tail path ~bytes:3;
  let rp = Wal.replay path in
  Alcotest.(check bool) "torn" true rp.Wal.torn;
  Alcotest.(check int) "lost exactly the last record" 19 (List.length rp.Wal.records);
  (* repair + append again: the log stays replayable *)
  Wal.truncate path ~len:rp.Wal.valid_bytes;
  let w = Wal.open_append path in
  Wal.append w { Wal.seq = 20; update = List.nth us 19 };
  Wal.close w;
  let rp = Wal.replay path in
  Alcotest.(check bool) "repaired" false rp.Wal.torn;
  Alcotest.(check int) "complete again" 20 (List.length rp.Wal.records)

(* ---- checkpoint ---- *)

let test_checkpoint_roundtrip () =
  with_temp_dir @@ fun dir ->
  List.iter
    (fun strategy ->
      let m = make strategy () in
      List.iter (M.apply m) (stream ~seed:5 ~steps:60);
      ignore (Checkpoint.write ~dir ~seq:60 m);
      let restored, corrupt = Checkpoint.restore ~dir ~make:(make strategy) in
      Alcotest.(check int) "no corruption" 0 corrupt;
      match restored with
      | None -> Alcotest.fail "no checkpoint restored"
      | Some r ->
          Alcotest.(check int) "seq" 60 r.Checkpoint.seq;
          Alcotest.(check bool)
            (M.strategy_name strategy ^ ": state restored bit-identically")
            true
            (cov_bit_identical (M.covariance m) (M.covariance r.Checkpoint.maintainer));
          (* and the restored maintainer keeps maintaining identically *)
          let tail = stream ~seed:6 ~steps:30 in
          List.iter (M.apply m) tail;
          List.iter (M.apply r.Checkpoint.maintainer) tail;
          Alcotest.(check bool) "continues bit-identically" true
            (cov_bit_identical (M.covariance m)
               (M.covariance r.Checkpoint.maintainer)))
    [ M.F_ivm; M.Higher_order; M.First_order ]

let test_checkpoint_corruption_falls_back () =
  with_temp_dir @@ fun dir ->
  let m = make M.F_ivm () in
  let us = stream ~seed:7 ~steps:40 in
  List.iteri
    (fun i u ->
      M.apply m u;
      if i = 19 then ignore (Checkpoint.write ~dir ~seq:20 m))
    us;
  ignore (Checkpoint.write ~dir ~seq:40 m);
  Checkpoint.flip_bit_newest dir;
  let restored, corrupt = Checkpoint.restore ~dir ~make:(make M.F_ivm) in
  Alcotest.(check int) "one corrupt checkpoint skipped" 1 corrupt;
  (match restored with
  | Some r -> Alcotest.(check int) "fell back to the older checkpoint" 20 r.Checkpoint.seq
  | None -> Alcotest.fail "older checkpoint not restored");
  (* both checkpoints corrupt: restore degrades to empty, still no raise *)
  let files = Checkpoint.list dir in
  List.iter
    (fun (_, p) ->
      let s = Bytes.of_string (In_channel.with_open_bin p In_channel.input_all) in
      Bytes.set s (Bytes.length s - 1) 'X';
      Out_channel.with_open_bin p (fun oc -> Out_channel.output_bytes oc s))
    files;
  let restored, corrupt = Checkpoint.restore ~dir ~make:(make M.F_ivm) in
  Alcotest.(check bool) "both skipped" true (corrupt >= 2);
  Alcotest.(check bool) "empty start" true (restored = None)

(* ---- the core promise: crash recovery is bit-identical ---- *)

let crash_recovery_bit_identical strategy =
  QCheck2.Test.make ~count:35
    ~name:
      (Printf.sprintf "%s: crash recovery is bit-identical" (M.strategy_name strategy))
    QCheck2.Gen.(triple (int_range 20 120) (int_range 0 3) int)
    (fun (steps, fault_kind, seed) ->
      let updates = stream ~seed ~steps in
      let reference = clean_covariance strategy updates in
      let crash_at = 1 + (abs seed mod steps) in
      let spec =
        match fault_kind with
        | 0 -> Printf.sprintf "crash-after:%d" crash_at
        | 1 -> Printf.sprintf "crash-before:%d" crash_at
        | 2 -> Printf.sprintf "crash-after:%d,torn-tail:5" crash_at
        | _ -> Printf.sprintf "crash-after:%d,flip-checkpoint" crash_at
      in
      with_temp_dir @@ fun dir ->
      let faults = Faults.parse ~seed spec in
      let cfg = Driver.config ~checkpoint_every:16 ~faults dir in
      let d = run_resilient ~cfg ~strategy updates in
      Driver.seq d = List.length updates
      && cov_bit_identical reference (Driver.covariance d))

let test_clean_restart_bit_identical () =
  (* no faults at all: stop half way (close = checkpoint), restart, finish *)
  List.iter
    (fun strategy ->
      let updates = stream ~seed:42 ~steps:100 in
      let reference = clean_covariance strategy updates in
      with_temp_dir @@ fun dir ->
      let cfg = Driver.config ~checkpoint_every:32 dir in
      let d = Driver.create cfg (make strategy) in
      List.iteri (fun i u -> if i < 50 then ignore (Driver.submit d u)) updates;
      Driver.close d;
      let d = Driver.create cfg (make strategy) in
      Alcotest.(check int) "resumed at 50" 50 (Driver.seq d);
      List.iteri (fun i u -> if i >= 50 then ignore (Driver.submit d u)) updates;
      Alcotest.(check bool)
        (M.strategy_name strategy ^ ": restart is bit-identical")
        true
        (cov_bit_identical reference (Driver.covariance d)))
    [ M.F_ivm; M.Higher_order; M.First_order ]

(* ---- counters: recoveries and torn tails are observable ---- *)

let test_recovery_counters () =
  Obs.reset ();
  Obs.with_enabled true @@ fun () ->
  with_temp_dir @@ fun dir ->
  let updates = stream ~seed:13 ~steps:60 in
  let faults = Faults.parse ~seed:13 "crash-after:30,torn-tail:4" in
  let cfg = Driver.config ~checkpoint_every:16 ~faults dir in
  let d = run_resilient ~cfg ~strategy:M.F_ivm updates in
  Alcotest.(check int) "committed" 60 (Driver.seq d);
  Alcotest.(check bool) "resilience.recoveries > 0" true
    (Obs.counter_value_by_name "resilience.recoveries" > 0);
  Alcotest.(check bool) "resilience.wal_torn > 0" true
    (Obs.counter_value_by_name "resilience.wal_torn" > 0);
  Alcotest.(check bool) "resilience.wal_records >= stream" true
    (Obs.counter_value_by_name "resilience.wal_records" >= 60);
  Alcotest.(check bool) "resilience.checkpoints > 0" true
    (Obs.counter_value_by_name "resilience.checkpoints" > 0);
  Obs.reset ()

(* ---- quarantine ---- *)

let test_quarantine () =
  Obs.reset ();
  Obs.with_enabled true @@ fun () ->
  with_temp_dir @@ fun dir ->
  let cfg = Driver.config dir in
  let d = Driver.create cfg (make M.F_ivm) in
  let good = Delta.insert "F" [| int 1; int 2; flt 3.0 |] in
  let bad =
    [
      Delta.insert "Nope" [| int 1 |];
      Delta.insert "F" [| int 1; int 2 |];
      Delta.insert "F" [| int 1; flt 2.0; flt 3.0 |];
      Delta.insert "F" [| int 1; int 2; flt nan |];
      Delta.insert "D1" [| int 0; flt infinity |];
    ]
  in
  Alcotest.(check bool) "good applied" true (Driver.submit d good = Driver.Applied);
  List.iter
    (fun u ->
      match Driver.submit d u with
      | Driver.Quarantined _ -> ()
      | Driver.Applied -> Alcotest.fail "malformed update applied")
    bad;
  Alcotest.(check int) "only the good one committed" 1 (Driver.seq d);
  Alcotest.(check int) "dead letters" (List.length bad) (List.length (Driver.quarantined d));
  Alcotest.(check int) "resilience.quarantined" (List.length bad)
    (Obs.counter_value_by_name "resilience.quarantined");
  (* quarantined updates were never logged: a restart replays only the good *)
  Driver.close d;
  let d = Driver.create cfg (make M.F_ivm) in
  Alcotest.(check int) "restart sees seq 1" 1 (Driver.seq d);
  Obs.reset ()

(* ---- transient faults: retries, then bit-identical completion ---- *)

let test_transient_retries () =
  Obs.reset ();
  Obs.with_enabled true @@ fun () ->
  with_temp_dir @@ fun dir ->
  let updates = stream ~seed:21 ~steps:80 in
  let reference = clean_covariance M.F_ivm updates in
  let faults = Faults.parse ~seed:21 "transient:0.3" in
  let cfg = Driver.config ~faults dir in
  let d = Driver.create cfg (make M.F_ivm) in
  Driver.submit_batch d updates;
  Alcotest.(check int) "all committed" 80 (Driver.seq d);
  Alcotest.(check bool) "retries happened" true
    (Obs.counter_value_by_name "resilience.retries" > 0);
  Alcotest.(check bool) "result unaffected by retries" true
    (cov_bit_identical reference (Driver.covariance d));
  Obs.reset ()

(* ---- audit + graceful degradation ---- *)

let test_audit_rebuilds_corrupted_state () =
  Obs.reset ();
  Obs.with_enabled true @@ fun () ->
  with_temp_dir @@ fun dir ->
  let updates = stream ~seed:31 ~steps:60 in
  let faults = Faults.parse ~seed:31 "corrupt-state:25" in
  let cfg = Driver.config ~audit_every:10 ~audit_eps:1e-6 ~faults dir in
  let d = Driver.create cfg (make M.F_ivm) in
  Driver.submit_batch d updates;
  Alcotest.(check int) "all committed" 60 (Driver.seq d);
  Alcotest.(check bool) "audits ran" true
    (Obs.counter_value_by_name "resilience.audits" > 0);
  Alcotest.(check int) "the corruption was caught once" 1
    (Obs.counter_value_by_name "resilience.audit_failures");
  Alcotest.(check int) "and repaired by one rebuild" 1
    (Obs.counter_value_by_name "resilience.rebuilds");
  (* after degradation the answer is correct again (rebuild re-derives the
     views, so bit-identity to the clean run is NOT promised — correctness
     within tolerance is) *)
  let reference = clean_covariance M.F_ivm updates in
  Alcotest.(check bool) "answers correct after rebuild" true
    (Cov.equal_rel ~eps:1e-9 reference (Driver.covariance d));
  Alcotest.(check bool) "audit now passes" true (Driver.audit_now d);
  Obs.reset ()

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "resilience"
    [
      ( "codec",
        [
          Alcotest.test_case "primitive round-trips" `Quick test_codec_roundtrip;
          Alcotest.test_case "frames reject damage" `Quick test_frame_rejects_damage;
          qcheck cov_codec_roundtrip;
        ] );
      ( "wal",
        [ Alcotest.test_case "round-trip and torn tail" `Quick test_wal_roundtrip_and_torn_tail ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip, bit-identical" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "corruption falls back" `Quick
            test_checkpoint_corruption_falls_back;
        ] );
      ( "crash-recovery",
        [
          qcheck (crash_recovery_bit_identical M.F_ivm);
          qcheck (crash_recovery_bit_identical M.Higher_order);
          qcheck (crash_recovery_bit_identical M.First_order);
          Alcotest.test_case "clean restart is bit-identical" `Quick
            test_clean_restart_bit_identical;
          Alcotest.test_case "recovery counters" `Quick test_recovery_counters;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "quarantine dead-letters malformed updates" `Quick
            test_quarantine;
          Alcotest.test_case "transient faults retry to completion" `Quick
            test_transient_retries;
          Alcotest.test_case "audit catches corruption and rebuilds" `Quick
            test_audit_rebuilds_corrupted_state;
        ] );
    ]
