(* Differential/determinism harness for sharded maintenance (Fivm.Shard +
   Resilience.Sharded).

   The headline property is SHARD-COUNT INVARIANCE: the merged covariance of
   an N-shard pipeline equals the unsharded maintainer's, bit for bit, for
   every N. Bitwise equality across different SUMMATION ORDERS only holds
   when the float arithmetic is exact, so the differential streams draw
   feature values from a dyadic lattice (strictly positive multiples of
   1/16, at most 4): every product and sum in the covariance pipeline is
   then exactly representable (numerators stay far below 2^53), and any
   association of the additions yields identical bits. For arbitrary floats
   the guarantee is weaker — deterministic for a fixed shard count, equal
   to the unsharded run up to summation order — and is tested as such. *)

open Relational
module Cov = Rings.Covariance
module M = Fivm.Maintainer
module Delta = Fivm.Delta
module Shard = Fivm.Shard
module Faults = Resilience.Faults
module Sharded = Resilience.Sharded

let int n = Value.Int n
let flt x = Value.Float x

(* Star schema: F(a,b,m) with D1(a,u), D2(b,v); numeric features m,u,v.
   The partition attribute resolves to "a" (in F and D1); D2 is broadcast. *)
let empty_db () =
  Database.create "stream"
    [
      Relation.create "F"
        (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let features = [ "m"; "u"; "v" ]
let strategies = [ M.F_ivm; M.Higher_order; M.First_order ]
let make strategy () = M.create strategy (empty_db ()) ~features

(* Insert/delete stream over the star schema; [value] draws one feature. *)
let random_update ~value rng inserted =
  let fresh () =
    let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
    let tuple =
      match rel with
      | "F" ->
          [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4); flt (value rng) |]
      | _ -> [| int (Util.Prng.int rng 4); flt (value rng) |]
    in
    Delta.insert rel tuple
  in
  if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
    let arr = Array.of_list !inserted in
    let u = Util.Prng.choice rng arr in
    inserted := List.filter (fun x -> x != u) !inserted;
    Delta.delete u.Delta.relation u.Delta.tuple
  end
  else begin
    let u = fresh () in
    inserted := u :: !inserted;
    u
  end

let stream_with ~value ~seed ~steps =
  let rng = Util.Prng.create seed in
  let inserted = ref [] in
  List.init steps (fun _ -> random_update ~value rng inserted)

(* Exact-arithmetic stream: features are strictly positive multiples of
   1/16 (never -0.0, never rounding), so every covariance accumulation is
   exact and summation order cannot change a single bit. *)
let lattice_stream ~seed ~steps =
  stream_with
    ~value:(fun rng -> float_of_int (1 + Util.Prng.int rng 64) /. 16.0)
    ~seed ~steps

(* Arbitrary-float stream: order-sensitive accumulations. *)
let float_stream ~seed ~steps =
  stream_with ~value:(fun rng -> Util.Prng.float rng 5.0) ~seed ~steps

let bits = Int64.bits_of_float

let cov_bit_identical a b =
  let n = Cov.dim a in
  Cov.dim b = n
  && bits a.Cov.c = bits b.Cov.c
  && (let ok = ref true in
      for i = 0 to n - 1 do
        if bits (Util.Vec.get a.Cov.s i) <> bits (Util.Vec.get b.Cov.s i) then ok := false;
        for j = 0 to n - 1 do
          if bits (Util.Mat.get a.Cov.q i j) <> bits (Util.Mat.get b.Cov.q i j) then
            ok := false
        done
      done;
      !ok)

(* Shard directories nest (dir/shard-k/...): recursive removal. *)
let with_temp_dir f =
  let dir = Filename.temp_dir "shard" "" in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let clean_covariance strategy updates =
  let m = make strategy () in
  List.iter (M.apply m) updates;
  M.covariance m

let shard_counts = [ 1; 2; 3; 8 ]
let qcheck = QCheck_alcotest.to_alcotest

(* ---- the headline differential: shard-count invariance, bit for bit ---- *)

let sharded_bit_identical strategy =
  QCheck2.Test.make ~count:8
    ~name:
      (Printf.sprintf "%s: N-shard run is bit-identical to unsharded and recompute"
         (M.strategy_name strategy))
    QCheck2.Gen.int
    (fun seed ->
      let updates = lattice_stream ~seed ~steps:500 in
      let reference = clean_covariance strategy updates in
      List.for_all
        (fun shards ->
          let sh = Shard.create strategy (empty_db ()) ~features ~shards in
          Shard.apply_batch sh updates;
          cov_bit_identical reference (Shard.covariance sh)
          && cov_bit_identical reference (Shard.recompute sh))
        shard_counts)

(* Single-update routing path (Shard.apply) agrees with the batch path. *)
let test_apply_matches_apply_batch () =
  let updates = lattice_stream ~seed:97 ~steps:300 in
  List.iter
    (fun strategy ->
      let one = Shard.create strategy (empty_db ()) ~features ~shards:3 in
      List.iter (Shard.apply one) updates;
      let batch = Shard.create strategy (empty_db ()) ~features ~shards:3 in
      Shard.apply_batch batch updates;
      Alcotest.(check bool)
        (M.strategy_name strategy ^ ": apply = apply_batch")
        true
        (cov_bit_identical (Shard.covariance one) (Shard.covariance batch)))
    strategies

(* The result may not depend on how many domains applied the shards. *)
let test_domain_count_invariance () =
  let updates = lattice_stream ~seed:3 ~steps:400 in
  let reference =
    let sh = Shard.create M.F_ivm (empty_db ()) ~features ~shards:4 in
    Shard.apply_batch ~domains:1 sh updates;
    Shard.covariance sh
  in
  List.iter
    (fun domains ->
      let sh = Shard.create M.F_ivm (empty_db ()) ~features ~shards:4 in
      Shard.apply_batch ~domains sh updates;
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d bit-identical to domains=1" domains)
        true
        (cov_bit_identical reference (Shard.covariance sh)))
    [ 2; 4; 8 ]

(* ---- fault injection: per-shard crash recovery stays invariant ---- *)

let sharded_crash_recovery strategy =
  QCheck2.Test.make ~count:6
    ~name:
      (Printf.sprintf "%s: sharded crash-after:K recovery is bit-identical"
         (M.strategy_name strategy))
    QCheck2.Gen.(pair int (int_range 1 120))
    (fun (seed, crash_at) ->
      let updates = lattice_stream ~seed ~steps:500 in
      let reference = clean_covariance strategy updates in
      List.for_all
        (fun shards ->
          with_temp_dir @@ fun dir ->
          let plan = Shard.plan ~shards (empty_db ()) in
          let spec = Printf.sprintf "crash-after:%d,torn-tail:4" crash_at in
          let sh =
            Sharded.create ~checkpoint_every:16
              ~faults:(fun k -> Faults.parse ~seed:(seed + k) spec)
              ~dir ~plan (make strategy)
          in
          Sharded.submit_batch sh updates;
          let queues = Shard.partition plan updates in
          let expected = Array.map List.length queues in
          (* a crash fires in every shard whose queue reaches crash_at *)
          let expected_crashes =
            Array.fold_left
              (fun acc len -> if len >= crash_at then acc + 1 else acc)
              0 expected
          in
          Sharded.crashes sh = expected_crashes
          && Sharded.seqs sh = expected
          && cov_bit_identical reference (Sharded.covariance sh))
        shard_counts)

(* Clean stop/restart: per-shard recovery reads only that shard's state. *)
let test_sharded_restart () =
  with_temp_dir @@ fun dir ->
  let updates = lattice_stream ~seed:8 ~steps:400 in
  let reference = clean_covariance M.F_ivm updates in
  let plan = Shard.plan ~shards:4 (empty_db ()) in
  let half = List.filteri (fun i _ -> i < 200) updates in
  let rest = List.filteri (fun i _ -> i >= 200) updates in
  let sh = Sharded.create ~checkpoint_every:32 ~dir ~plan (make M.F_ivm) in
  Sharded.submit_batch sh half;
  let seqs_before = Sharded.seqs sh in
  Sharded.close sh;
  let sh = Sharded.create ~checkpoint_every:32 ~dir ~plan (make M.F_ivm) in
  Alcotest.(check bool) "each shard resumed at its own seq" true
    (Sharded.seqs sh = seqs_before);
  Sharded.submit_batch sh rest;
  let expected =
    Array.fold_left
      (fun acc q -> acc + List.length q)
      0
      (Shard.partition plan updates)
  in
  Alcotest.(check int) "all committed (with broadcast replication)" expected
    (Array.fold_left ( + ) 0 (Sharded.seqs sh));
  Alcotest.(check bool) "restarted sharded run is bit-identical" true
    (cov_bit_identical reference (Sharded.covariance sh))

(* ---- routing ---- *)

let test_plan_and_partition () =
  let db = empty_db () in
  let plan = Shard.plan ~shards:4 db in
  Alcotest.(check string) "partition attribute" "a" (Shard.plan_attr plan);
  Alcotest.(check int) "shards" 4 (Shard.plan_shards plan);
  let updates = lattice_stream ~seed:5 ~steps:200 in
  let queues = Shard.partition plan updates in
  (* keyed updates land in exactly one queue; broadcasts in all *)
  let keyed, broadcast =
    List.fold_left
      (fun (k, b) (u : Delta.update) ->
        if u.relation = "D2" then (k, b + 1) else (k + 1, b))
      (0, 0) updates
  in
  let total = Array.fold_left (fun acc q -> acc + List.length q) 0 queues in
  Alcotest.(check int) "replication factor" (keyed + (4 * broadcast)) total;
  (* same-key F/D1 updates route to the same shard *)
  List.iter
    (fun (u : Delta.update) ->
      match Shard.route_update plan u with
      | Some k ->
          let k' =
            Keypack.shard_of_key ~shards:4
              (Keypack.key_of_tuple [| 0 |] u.tuple)
          in
          Alcotest.(check int) "route = hash of key field" k' k
      | None -> Alcotest.(check string) "only D2 broadcasts" "D2" u.relation)
    updates;
  (* per-shard queues preserve stream order *)
  Array.iter
    (fun q ->
      let positions =
        List.map
          (fun (u : Delta.update) ->
            let rec index i = function
              | [] -> -1
              | x :: rest -> if x == u then i else index (i + 1) rest
            in
            index 0 updates)
          q
      in
      Alcotest.(check bool) "queue preserves stream order" true
        (List.sort compare positions = positions))
    queues

(* ---- arbitrary floats: determinism for a fixed N, accuracy vs unsharded ---- *)

let test_arbitrary_floats_deterministic () =
  let updates = float_stream ~seed:1234 ~steps:500 in
  let run () =
    let sh = Shard.create M.F_ivm (empty_db ()) ~features ~shards:3 in
    Shard.apply_batch sh updates;
    Shard.covariance sh
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two identical runs agree bit-for-bit" true
    (cov_bit_identical a b);
  let reference = clean_covariance M.F_ivm updates in
  Alcotest.(check bool) "agrees with unsharded up to summation order" true
    (Cov.equal_rel ~eps:1e-9 reference a)

(* ---- observability ---- *)

let test_shard_counters () =
  Obs.reset ();
  Obs.with_enabled true @@ fun () ->
  let updates = lattice_stream ~seed:77 ~steps:200 in
  let sh = Shard.create M.F_ivm (empty_db ()) ~features ~shards:2 in
  Shard.apply_batch sh updates;
  ignore (Shard.covariance sh);
  Alcotest.(check bool) "fivm.shard.routed > 0" true
    (Obs.counter_value_by_name "fivm.shard.routed" > 0);
  Alcotest.(check bool) "fivm.shard.broadcast > 0" true
    (Obs.counter_value_by_name "fivm.shard.broadcast" > 0);
  Alcotest.(check int) "fivm.shard.batches" 1
    (Obs.counter_value_by_name "fivm.shard.batches");
  Alcotest.(check bool) "per-shard delta counters cover the batch" true
    (Obs.counter_value_by_name "fivm.shard.0.deltas"
     + Obs.counter_value_by_name "fivm.shard.1.deltas"
    > 0);
  Alcotest.(check bool) "skew gauge set" true
    (Obs.gauge_value (Obs.gauge "fivm.shard.skew") > 0.0);
  Obs.reset ()

let () =
  Alcotest.run "shard"
    [
      ( "differential",
        List.map (fun s -> qcheck (sharded_bit_identical s)) strategies
        @ [
            Alcotest.test_case "apply matches apply_batch" `Quick
              test_apply_matches_apply_batch;
            Alcotest.test_case "domain-count invariance" `Quick
              test_domain_count_invariance;
            Alcotest.test_case "arbitrary floats: deterministic for fixed N" `Quick
              test_arbitrary_floats_deterministic;
          ] );
      ( "crash-recovery",
        List.map (fun s -> qcheck (sharded_crash_recovery s)) strategies
        @ [ Alcotest.test_case "clean restart per shard" `Quick test_sharded_restart ] );
      ( "routing",
        [ Alcotest.test_case "plan and partition" `Quick test_plan_and_partition ] );
      ( "observability",
        [ Alcotest.test_case "shard counters and gauges" `Quick test_shard_counters ] );
    ]
