(* The observability layer: span nesting, counter semantics across
   enable/disable/reset, and the JSON export/parse round-trip that the CLI
   smoke test (borg check-metrics) relies on. *)

let with_clean_obs f =
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.reset (); Obs.set_enabled false) f

(* ---- spans ---- *)

let test_span_nesting () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "inner_a" (fun () -> ());
        Obs.with_span "inner_b" (fun () -> 41 + 1))
  in
  Alcotest.(check int) "body result" 42 r;
  match Obs.spans () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" (Obs.span_name outer);
      Alcotest.(check (list string)) "children in order" [ "inner_a"; "inner_b" ]
        (List.map Obs.span_name (Obs.span_children outer));
      Alcotest.(check bool) "non-negative time" true (Obs.span_seconds outer >= 0.0)
  | spans ->
      Alcotest.failf "expected one root span, got %d" (List.length spans)

let test_span_closes_on_exception () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  (try Obs.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  (* the span must be closed and recorded, and the stack popped: a sibling
     span recorded afterwards is a root, not a child of "boom" *)
  Obs.with_span "after" (fun () -> ());
  Alcotest.(check (list string)) "both roots" [ "boom"; "after" ]
    (List.map Obs.span_name (Obs.spans ()))

(* ---- counters ---- *)

let test_counter_add_and_reset () =
  with_clean_obs @@ fun () ->
  let c = Obs.counter "test.events" in
  Obs.set_enabled true;
  Obs.incr c;
  Obs.add c 9;
  Alcotest.(check int) "accumulated" 10 (Obs.counter_value c);
  Alcotest.(check int) "by name" 10 (Obs.counter_value_by_name "test.events");
  Obs.reset ();
  Alcotest.(check int) "reset to zero" 0 (Obs.counter_value c);
  Obs.set_enabled true;
  Obs.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Obs.counter_value c)

let test_counter_interning () =
  with_clean_obs @@ fun () ->
  let a = Obs.counter "test.same" and b = Obs.counter "test.same" in
  Obs.set_enabled true;
  Obs.incr a;
  Obs.incr b;
  Alcotest.(check int) "one cell behind both handles" 2 (Obs.counter_value a)

(* ---- disabled fast path ---- *)

let test_disabled_is_noop () =
  with_clean_obs @@ fun () ->
  Alcotest.(check bool) "disabled by default" false (Obs.is_enabled ());
  let c = Obs.counter "test.off" in
  Obs.incr c;
  Obs.add c 100;
  let g = Obs.gauge "test.off_gauge" in
  Obs.set_gauge g 3.0;
  let h = Obs.histogram "test.off_hist" in
  Obs.observe h 1.0;
  let r = Obs.with_span "invisible" (fun () -> "through") in
  Alcotest.(check string) "with_span is identity" "through" r;
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.histogram_count h);
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()));
  Alcotest.(check (list (pair string int))) "empty snapshot" []
    (Obs.counter_snapshot ())

let test_with_enabled_restores () =
  with_clean_obs @@ fun () ->
  Obs.with_enabled true (fun () ->
      Alcotest.(check bool) "forced on" true (Obs.is_enabled ()));
  Alcotest.(check bool) "restored off" false (Obs.is_enabled ())

(* ---- gauges under concurrent writers ----

   [set_gauge] used to be a plain mutable-field store; concurrent writers
   from worker domains were a data race (flagged by tsan, undefined under
   the OCaml memory model). The cell is now a [float Atomic.t]: with N
   domains each storing its own distinct sentinel value in a tight loop,
   every intermediate read and the final value must be EXACTLY one of the
   written sentinels — torn or invented values fail the bit-pattern check. *)
let test_gauge_concurrent_writers () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let g = Obs.gauge "test.race_gauge" in
  let writers = 4 and iters = 25_000 in
  (* sentinel per writer: distinct bit patterns, incl. a negative and a
     subnormal-ish magnitude so torn writes cannot masquerade as valid *)
  let sentinel d = Float.of_int (d + 1) *. 1.625 *. if d mod 2 = 0 then 1.0 else -1.0 in
  let valid v =
    v = 0.0 || List.exists (fun d -> Int64.bits_of_float (sentinel d) = Int64.bits_of_float v)
                 (List.init writers Fun.id)
  in
  let bad = Atomic.make 0 in
  let domains =
    List.init writers (fun d ->
        Domain.spawn (fun () ->
            let mine = sentinel d in
            for _ = 1 to iters do
              Obs.set_gauge g mine;
              if not (valid (Obs.gauge_value g)) then Atomic.incr bad
            done))
  in
  (* the main domain reads concurrently too *)
  for _ = 1 to iters do
    if not (valid (Obs.gauge_value g)) then Atomic.incr bad
  done;
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn or invented gauge values" 0 (Atomic.get bad);
  Alcotest.(check bool) "final value is a written sentinel" true
    (valid (Obs.gauge_value g) && Obs.gauge_value g <> 0.0)

(* ---- histograms: buckets and quantiles ---- *)

let test_bucket_layout () =
  (* the bucket function must agree with the published bounds: every value
     lands in the unique bucket with upper(i-1) < v <= upper(i) *)
  Alcotest.(check int) "nan underflows" 0 (Obs.bucket_index Float.nan);
  Alcotest.(check int) "negative underflows" 0 (Obs.bucket_index (-3.0));
  Alcotest.(check int) "tiny underflows" 0 (Obs.bucket_index 1e-12);
  Alcotest.(check int) "huge overflows" (Obs.bucket_count - 1)
    (Obs.bucket_index 1e12);
  let prng = Util.Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = 10.0 ** Util.Prng.float_range prng (-10.0) 7.0 in
    let i = Obs.bucket_index v in
    let lower = if i = 0 then neg_infinity else Obs.bucket_upper (i - 1) in
    if not (v > lower && v <= Obs.bucket_upper i) then
      Alcotest.failf "v=%.17g landed in bucket %d (%g, %g]" v i lower
        (Obs.bucket_upper i)
  done

let test_quantile_sanity () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let h = Obs.histogram "test.quantiles" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.histogram_quantile h 0.5));
  (* 1..1000 ms uniformly: quantile estimates must sit near the true values
     within the geometric bucket resolution (10^(1/5) ~ 58% per bucket) *)
  for i = 1 to 1000 do
    Obs.observe h (float_of_int i /. 1000.0)
  done;
  let check_q q truth =
    let est = Obs.histogram_quantile h q in
    if not (est >= truth /. 1.7 && est <= truth *. 1.7) then
      Alcotest.failf "q=%g: estimate %g too far from %g" q est truth
  in
  check_q 0.5 0.5;
  check_q 0.95 0.95;
  check_q 0.99 0.99;
  (* monotone in q, and clamped to observed extremes *)
  let p50 = Obs.histogram_quantile h 0.5 and p99 = Obs.histogram_quantile h 0.99 in
  Alcotest.(check bool) "monotone" true (p50 <= p99);
  Alcotest.(check bool) "q=0 >= min" true (Obs.histogram_quantile h 0.0 >= 0.001);
  Alcotest.(check bool) "q=1 <= max" true (Obs.histogram_quantile h 1.0 <= 1.0)

let test_single_value_quantile () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let h = Obs.histogram "test.single" in
  Obs.observe h 0.25;
  (* with one observation every quantile is clamped to that exact value *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0)) "clamped to the observation" 0.25
        (Obs.histogram_quantile h q))
    [ 0.0; 0.5; 0.99; 1.0 ]

(* random snapshots exercise the snapshot codec: counts spread over random
   buckets, including underflow/overflow *)
let qcheck_snapshot_round_trip =
  QCheck2.Test.make ~count:300 ~name:"histogram snapshots round-trip via JSON"
    QCheck2.Gen.int
    (fun seed ->
      let prng = Util.Prng.create seed in
      let n = Util.Prng.int prng 50 in
      Obs.with_enabled true (fun () ->
          let h = Obs.histogram (Printf.sprintf "test.rt.%d" seed) in
          for _ = 1 to n do
            let v =
              match Util.Prng.int prng 10 with
              | 0 -> 0.0 (* underflow *)
              | 1 -> 1e12 (* overflow *)
              | _ -> 10.0 ** Util.Prng.float_range prng (-10.0) 7.0
            in
            Obs.observe h v
          done;
          let s = Obs.histogram_snapshot h in
          match Obs.snapshot_of_json (Obs.Json.parse_exn (Obs.Json.to_string (Obs.snapshot_to_json s))) with
          | Error e -> QCheck2.Test.fail_reportf "re-parse failed: %s" e
          | Ok s' ->
              (* min/max go through %.17g so they round-trip bit-exactly *)
              s'.Obs.hs_count = s.Obs.hs_count
              && s'.Obs.hs_buckets = s.Obs.hs_buckets
              && Int64.bits_of_float s'.Obs.hs_min = Int64.bits_of_float s.Obs.hs_min
              && Int64.bits_of_float s'.Obs.hs_max = Int64.bits_of_float s.Obs.hs_max
              && (s.Obs.hs_count = 0
                  || Float.abs (s'.Obs.hs_sum -. s.Obs.hs_sum)
                     <= 1e-9 *. Float.abs s.Obs.hs_sum)))

let test_snapshot_of_json_rejects () =
  List.iter
    (fun s ->
      match Obs.snapshot_of_json (Obs.Json.parse_exn s) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected rejection of %s" s)
    [
      "{}";                                         (* no count *)
      "{\"count\":1,\"sum\":0.5}";                  (* buckets missing *)
      "{\"count\":2,\"sum\":1,\"buckets\":{\"3\":1}}"; (* sum mismatch *)
      "{\"count\":1,\"sum\":1,\"buckets\":{\"999\":1}}"; (* bad index *)
      "{\"count\":1.5,\"sum\":1}";                  (* non-integer count *)
    ]

(* ---- JSON ---- *)

let test_json_round_trip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("name", Str "lmfao.view:Sales \"quoted\"\n");
        ("seconds", Num 0.25);
        ("count", num_int 42);
        ("flags", Arr [ Bool true; Bool false; Null ]);
        ("nested", Obj [ ("neg", Num (-1.5)) ]);
      ]
  in
  match parse (to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round-trip" true (doc = doc')
  | Error e -> Alcotest.failf "re-parse failed: %s" e

let test_json_parse_errors () =
  let open Obs.Json in
  List.iter
    (fun s ->
      match parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error on %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* Random finite JSON documents: structural depth <= 3, finite numbers only
   (the printer maps non-finite to null by design, which would not round-trip
   as a Num). *)
let random_json seed =
  let open Obs.Json in
  let prng = Util.Prng.create seed in
  let random_string () =
    String.init (Util.Prng.int prng 8) (fun _ ->
        (* printable ASCII plus the escaped set and a control char *)
        Util.Prng.choice prng
          [| 'a'; 'z'; '0'; ' '; '"'; '\\'; '\n'; '\t'; '\001'; '/'; '{' |])
  in
  let random_number () =
    match Util.Prng.int prng 4 with
    | 0 -> num_int (Util.Prng.int_range prng (-1000) 1000)
    | 1 -> Num (Util.Prng.float_range prng (-1e6) 1e6)
    | 2 -> Num (Util.Prng.float_range prng (-1e-3) 1e-3)
    | _ -> Num (if Util.Prng.bool prng then 0.0 else -0.0)
  in
  let rec value depth =
    match if depth = 0 then Util.Prng.int prng 5 else Util.Prng.int prng 7 with
    | 0 -> Null
    | 1 -> Bool (Util.Prng.bool prng)
    | 2 | 3 -> random_number ()
    | 4 -> Str (random_string ())
    | 5 -> Arr (List.init (Util.Prng.int prng 4) (fun _ -> value (depth - 1)))
    | _ ->
        Obj
          (List.init (Util.Prng.int prng 4) (fun i ->
               (Printf.sprintf "k%d%s" i (random_string ()), value (depth - 1))))
  in
  value 3

let qcheck_json_round_trip =
  QCheck2.Test.make ~count:200 ~name:"random documents round-trip via parse_exn"
    QCheck2.Gen.int
    (fun seed ->
      let doc = random_json seed in
      Obs.Json.parse_exn (Obs.Json.to_string doc) = doc)

let test_json_rejects_truncation_and_garbage () =
  let open Obs.Json in
  let doc = random_json 42 in
  let s = to_string (Obj [ ("payload", doc); ("n", num_int 7) ]) in
  (* every strict prefix must raise Parse_error, never parse as a smaller
     document *)
  for len = 0 to String.length s - 1 do
    match parse_exn (String.sub s 0 len) with
    | _ -> Alcotest.failf "prefix of length %d parsed" len
    | exception Parse_error _ -> ()
  done;
  (* trailing garbage after a complete document is rejected too *)
  List.iter
    (fun tail ->
      match parse_exn (s ^ tail) with
      | _ -> Alcotest.failf "accepted trailing %S" tail
      | exception Parse_error _ -> ())
    [ "x"; "{}"; "  1"; ","; "]" ];
  (* but trailing whitespace is fine *)
  Alcotest.(check bool) "whitespace tail ok" true
    (parse_exn (s ^ " \n\t ") = parse_exn s)

let test_export_shape () =
  with_clean_obs @@ fun () ->
  Obs.set_enabled true;
  let c = Obs.counter "test.export" in
  Obs.with_span "root" (fun () -> Obs.add c 7);
  let json =
    match Obs.Json.parse (Obs.json_string ()) with
    | Ok j -> j
    | Error e -> Alcotest.failf "export is not valid JSON: %s" e
  in
  (match Obs.Json.member "spans" json with
  | Some (Obs.Json.Arr [ span ]) ->
      Alcotest.(check bool) "span name exported" true
        (Obs.Json.member "name" span = Some (Obs.Json.Str "root"))
  | _ -> Alcotest.fail "expected one exported span");
  match Obs.Json.member "counters" json with
  | Some (Obs.Json.Obj cs) ->
      Alcotest.(check bool) "counter exported" true
        (List.assoc_opt "test.export" cs = Some (Obs.Json.Num 7.0))
  | _ -> Alcotest.fail "expected a counters object"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "closes on exception" `Quick
            test_span_closes_on_exception;
        ] );
      ( "counters",
        [
          Alcotest.test_case "add and reset" `Quick test_counter_add_and_reset;
          Alcotest.test_case "interning" `Quick test_counter_interning;
        ] );
      ( "enablement",
        [
          Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "with_enabled restores" `Quick
            test_with_enabled_restores;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "concurrent writers race-free" `Quick
            test_gauge_concurrent_writers;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket layout" `Quick test_bucket_layout;
          Alcotest.test_case "quantile sanity" `Quick test_quantile_sanity;
          Alcotest.test_case "single-value quantile" `Quick
            test_single_value_quantile;
          QCheck_alcotest.to_alcotest qcheck_snapshot_round_trip;
          Alcotest.test_case "snapshot_of_json rejects bad input" `Quick
            test_snapshot_of_json_rejects;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          QCheck_alcotest.to_alcotest qcheck_json_round_trip;
          Alcotest.test_case "rejects truncation and trailing garbage" `Quick
            test_json_rejects_truncation_and_garbage;
          Alcotest.test_case "export shape" `Quick test_export_shape;
        ] );
    ]
