(* Tests for the util substrate: PRNG, vectors/matrices (Cholesky), CSV,
   interner, and the domain pool. *)

open Util

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int_range rng 3 9 in
    Alcotest.(check bool) "in range" true (x >= 3 && x <= 9)
  done

let test_prng_split_independent () =
  let a = Prng.create 1 in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.int a 1000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_zipf_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 500 do
    let r = Prng.zipf rng ~n:50 ~s:1.2 in
    Alcotest.(check bool) "rank bounds" true (r >= 1 && r <= 50)
  done

let test_backoff_deterministic_and_bounded () =
  (* same seed, same delay sequence — bit-exact *)
  let a = Prng.create 11 and b = Prng.create 11 in
  for k = 0 to 20 do
    let da = Prng.backoff a ~base:0.001 ~cap:0.25 ~attempt:k in
    let db = Prng.backoff b ~base:0.001 ~cap:0.25 ~attempt:k in
    Alcotest.(check bool) "deterministic under seed" true
      (Int64.bits_of_float da = Int64.bits_of_float db)
  done;
  (* every draw respects 0 <= d < min cap (base * 2^k), even for attempts
     past the overflow-clamp point *)
  let rng = Prng.create 12 in
  List.iter
    (fun k ->
      for _ = 1 to 200 do
        let d = Prng.backoff rng ~base:0.001 ~cap:0.25 ~attempt:k in
        let ceiling = Float.min 0.25 (0.001 *. (2.0 ** float_of_int k)) in
        Alcotest.(check bool)
          (Printf.sprintf "attempt %d in [0, %g)" k ceiling)
          true
          (d >= 0.0 && d < ceiling)
      done)
    [ 0; 1; 3; 7; 30; 100; max_int ];
  (* different seeds decorrelate: the jitter sequences must differ *)
  let x = Prng.create 1 and y = Prng.create 2 in
  let seq p = List.init 8 (fun k -> Prng.backoff p ~base:0.001 ~cap:0.25 ~attempt:k) in
  Alcotest.(check bool) "seeds decorrelate" true (seq x <> seq y);
  (* degenerate inputs *)
  Alcotest.(check (float 0.0)) "zero base gives zero delay" 0.0
    (Prng.backoff rng ~base:0.0 ~cap:1.0 ~attempt:5);
  Alcotest.check_raises "negative base rejected"
    (Invalid_argument "Prng.backoff: negative base or cap") (fun () ->
      ignore (Prng.backoff rng ~base:(-1.0) ~cap:1.0 ~attempt:0))

let test_gaussian_moments () =
  let rng = Prng.create 5 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian rng ~mu:2.0 ~sigma:3.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.0) < 0.15);
  Alcotest.(check bool) "var near 9" true (Float.abs (var -. 9.0) < 0.8)

(* --- vectors --- *)

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-12)) "dot" 32.0 (Vec.dot a b);
  Alcotest.(check bool) "add" true (Vec.equal (Vec.add a b) [| 5.0; 7.0; 9.0 |]);
  Alcotest.(check bool) "scale" true (Vec.equal (Vec.scale 2.0 a) [| 2.0; 4.0; 6.0 |]);
  let y = Vec.copy b in
  Vec.axpy ~alpha:2.0 a y;
  Alcotest.(check bool) "axpy" true (Vec.equal y [| 6.0; 9.0; 12.0 |])

(* --- matrices --- *)

let random_spd rng n =
  (* A = B^T B + n * I is SPD *)
  let b = Mat.init n n (fun _ _ -> Prng.float_range rng (-1.0) 1.0) in
  Mat.add (Mat.matmul (Mat.transpose b) b) (Mat.scale (float_of_int n) (Mat.identity n))

let cholesky_prop =
  QCheck2.Test.make ~count:50 ~name:"solve_spd solves random SPD systems"
    QCheck2.Gen.(pair (int_range 1 8) int)
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let a = random_spd rng n in
      let x_true = Array.init n (fun _ -> Prng.float_range rng (-5.0) 5.0) in
      let b = Mat.matvec a x_true in
      let x = Mat.solve_spd a b in
      Vec.equal ~eps:1e-6 x x_true)

let test_cholesky_rejects_non_pd () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not PD" Mat.Not_positive_definite (fun () ->
      ignore (Mat.cholesky m))

let test_matmul_identity () =
  let rng = Prng.create 11 in
  let a = Mat.init 4 4 (fun _ _ -> Prng.float_range rng (-1.0) 1.0) in
  Alcotest.(check bool) "A*I = A" true (Mat.equal (Mat.matmul a (Mat.identity 4)) a);
  Alcotest.(check bool) "I*A = A" true (Mat.equal (Mat.matmul (Mat.identity 4) a) a)

let test_ger () =
  let m = Mat.create 2 2 in
  Mat.ger ~alpha:2.0 [| 1.0; 2.0 |] [| 3.0; 4.0 |] m;
  Alcotest.(check (float 1e-12)) "m00" 6.0 (Mat.get m 0 0);
  Alcotest.(check (float 1e-12)) "m01" 8.0 (Mat.get m 0 1);
  Alcotest.(check (float 1e-12)) "m10" 12.0 (Mat.get m 1 0);
  Alcotest.(check (float 1e-12)) "m11" 16.0 (Mat.get m 1 1)

let test_power_iteration () =
  (* diag(5, 2, 1): dominant eigenvalue 5 with e_0 *)
  let m = Mat.init 3 3 (fun i j -> if i = j then [| 5.0; 2.0; 1.0 |].(i) else 0.0) in
  let lambda, v = Mat.power_iteration m [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check (float 1e-6)) "lambda" 5.0 lambda;
  Alcotest.(check (float 1e-4)) "v aligned with e0" 1.0 (Float.abs v.(0))

(* --- CSV --- *)

let test_csv_roundtrip () =
  let rows = [ [ "a"; "b"; "c" ]; [ "1"; "2.5"; "xyz" ] ] in
  Alcotest.(check bool)
    "roundtrip" true
    (Csvio.parse_string (Csvio.to_string rows) = rows)

let csv_prop =
  QCheck2.Test.make ~count:100 ~name:"csv roundtrip on random cells"
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (list_size (int_range 1 5) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))))
    (fun rows -> Csvio.parse_string (Csvio.to_string rows) = rows)

(* Malformed CSV reports its source position: 1-based line (physical, so
   skipped blank lines still count) and 1-based column. *)

let check_malformed name ~line ~column f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Csvio.Malformed" name
  | exception Csvio.Malformed m ->
      Alcotest.(check int) (name ^ ": line") line m.line;
      Alcotest.(check int) (name ^ ": column") column m.column

let test_csv_located_lines () =
  let text = "a,b\n\n1,2\n\n\n3,4\n" in
  Alcotest.(check (list (pair int (list string))))
    "blank lines counted but skipped"
    [ (1, [ "a"; "b" ]); (3, [ "1"; "2" ]); (6, [ "3"; "4" ]) ]
    (Csvio.parse_string_located text)

let test_csv_malformed_arity () =
  let schema = Relational.Schema.make [ ("x", Relational.Value.TInt); ("y", Relational.Value.TFloat) ] in
  (* row 2 of the data (line 3 under a header) has three cells *)
  check_malformed "wrong arity" ~line:3 ~column:3 (fun () ->
      Relational.Relation.of_csv_rows ~first_line:2 "r" schema
        [ [ "1"; "2.0" ]; [ "3"; "4.0"; "oops" ] ]);
  (* located variant: the reported line survives interleaved blanks *)
  let rows = Csvio.parse_string_located "1,2.0\n\n\n3,4.0,oops\n" in
  check_malformed "wrong arity (located)" ~line:4 ~column:3 (fun () ->
      Relational.Relation.of_csv_rows_located "r" schema rows)

let test_csv_malformed_cell () =
  let schema = Relational.Schema.make [ ("x", Relational.Value.TInt); ("y", Relational.Value.TFloat) ] in
  check_malformed "non-numeric cell" ~line:2 ~column:2 (fun () ->
      Relational.Relation.of_csv_rows "r" schema
        [ [ "1"; "2.0" ]; [ "3"; "not-a-number" ] ]);
  check_malformed "int cell" ~line:1 ~column:1 (fun () ->
      Relational.Relation.of_csv_rows "r" schema [ [ "1.5"; "2.0" ] ]);
  (* the message is human-readable and carries the position *)
  (match
     Relational.Relation.of_csv_rows "r" schema [ [ "x"; "0" ] ]
   with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Csvio.Malformed m ->
      Alcotest.(check bool) "reason mentions the cell" true
        (String.length m.reason > 0))

(* --- interner --- *)

let test_interner () =
  let i = Interner.create () in
  let a = Interner.intern i "apple" in
  let b = Interner.intern i "banana" in
  let a' = Interner.intern i "apple" in
  Alcotest.(check int) "stable id" a a';
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "name roundtrip" "banana" (Interner.name i b);
  Alcotest.(check int) "size" 2 (Interner.size i)

(* --- pool --- *)

let test_ranges_cover () =
  List.iter
    (fun (n, k) ->
      let rs = Pool.ranges n k in
      let total = List.fold_left (fun acc (_, len) -> acc + len) 0 rs in
      Alcotest.(check int) (Printf.sprintf "cover %d/%d" n k) n total)
    [ (10, 3); (0, 4); (7, 10); (100, 8) ]

let test_parallel_sum () =
  let n = 10000 in
  let seq = n * (n - 1) / 2 in
  let par =
    Pool.parallel_chunks n
      (fun lo len ->
        let s = ref 0 in
        for i = lo to lo + len - 1 do
          s := !s + i
        done;
        !s)
      ~combine:( + ) ~zero:0
  in
  Alcotest.(check int) "parallel sum" seq par

let test_parallel_tasks_order () =
  let results = Pool.parallel_tasks (List.init 20 (fun i () -> i * i)) in
  Alcotest.(check (list int)) "ordered" (List.init 20 (fun i -> i * i)) results

(* For a FIXED chunk count, the result may not depend on how many domains
   execute the chunks — even when [combine] is non-commutative and float
   rounding makes every association distinct. Covers the n < chunks edge
   (each chunk one element) via small n. *)
let parallel_chunks_domain_invariance =
  QCheck2.Test.make ~count:60
    ~name:"parallel_chunks: result independent of domain count"
    QCheck2.Gen.(triple (int_range 0 50) (int_range 1 10) int)
    (fun (n, chunks, seed) ->
      let rng = Util.Prng.create seed in
      let xs = Array.init (max n 1) (fun _ -> Util.Prng.float rng 1.0) in
      let run domains =
        Pool.parallel_chunks ~domains ~chunks n
          (fun lo len ->
            let s = ref 0.0 in
            for i = lo to lo + len - 1 do
              s := !s +. xs.(i)
            done;
            !s)
          (* non-commutative, non-associative combine: any reordering of the
             fold shows up in the bits *)
          ~combine:(fun acc x -> (acc *. 0.5) +. x)
          ~zero:1.0
      in
      let reference = Int64.bits_of_float (run 1) in
      List.for_all
        (fun domains -> Int64.bits_of_float (run domains) = reference)
        [ 2; 3; 4; 8 ])

(* domains=1 must not spawn: every chunk runs on the calling domain. *)
let test_parallel_chunks_no_spawn () =
  let self = Domain.self () in
  let ids =
    Pool.parallel_chunks ~domains:1 ~chunks:8 100
      (fun _ _ -> [ Domain.self () ])
      ~combine:( @ ) ~zero:[]
  in
  Alcotest.(check int) "8 chunks ran" 8 (List.length ids);
  Alcotest.(check bool) "all on the calling domain" true
    (List.for_all (fun id -> id = self) ids)

(* n < chunks: ranges must cover [0, n) exactly with n singleton chunks. *)
let test_ranges_fewer_items_than_chunks () =
  let rs = Pool.ranges 3 8 in
  Alcotest.(check int) "clamped to n chunks" 3 (List.length rs);
  Alcotest.(check (list (pair int int))) "singleton cover"
    [ (0, 1); (1, 1); (2, 1) ] rs;
  Alcotest.(check (list (pair int int))) "n=0 empty" [] (Pool.ranges 0 4)

(* BORG_DOMAINS parsing: junk, "0" and negatives must fall back to the
   recommended-count default (capped at 8), never to an arbitrary constant
   or a crash. *)
let test_domains_of_env () =
  let default = Pool.domains_of_env None in
  Alcotest.(check bool) "default positive, capped" true
    (default >= 1 && default <= 8);
  List.iter
    (fun junk ->
      Alcotest.(check int)
        (Printf.sprintf "%S falls back" junk)
        default
        (Pool.domains_of_env (Some junk)))
    [ ""; "banana"; "0"; "-3"; "2.5"; "1e3"; "  "; "0x"; "--4" ];
  Alcotest.(check int) "valid value wins" 4 (Pool.domains_of_env (Some "4"));
  Alcotest.(check int) "whitespace trimmed" 6
    (Pool.domains_of_env (Some " 6 "));
  Alcotest.(check int) "large values not capped" 32
    (Pool.domains_of_env (Some "32"))

(* Budget regression: nested parallel calls share ONE process-global token
   pool, so peak live domains never exceed budget + 1 (the caller) no matter
   how the calls nest. Before the budget each nesting level spawned its own
   full complement. *)
let with_budget k f =
  let saved = Pool.worker_budget () in
  Pool.set_worker_budget k;
  Fun.protect ~finally:(fun () -> Pool.set_worker_budget saved) f

let test_nested_budget_no_oversubscription () =
  with_budget 2 @@ fun () ->
  Pool.reset_peak_live_domains ();
  (* 4 outer tasks each wanting 4 domains, each running an inner
     parallel_chunks also wanting 4: without a shared budget this asks for
     dozens of domains at once. *)
  let outer =
    Pool.parallel_tasks ~domains:4
      (List.init 4 (fun i () ->
           Pool.parallel_chunks ~domains:4 100
             (fun lo len ->
               let s = ref 0 in
               for j = lo to lo + len - 1 do
                 s := !s + j + i
               done;
               !s)
             ~combine:( + ) ~zero:0))
  in
  let expect i = (100 * 99 / 2) + (100 * i) in
  Alcotest.(check (list int)) "nested results exact"
    [ expect 0; expect 1; expect 2; expect 3 ]
    outer;
  Alcotest.(check bool)
    (Printf.sprintf "peak %d <= budget 2 + 1" (Pool.peak_live_domains ()))
    true
    (Pool.peak_live_domains () <= 3);
  Alcotest.(check int) "all workers joined" 1 (Pool.live_domains ());
  (* Tokens must be back in the pool: a fresh parallel call can spawn the
     full complement again (peak accounting moves before the spawn, so this
     is deterministic). *)
  Pool.reset_peak_live_domains ();
  ignore
    (Pool.parallel_tasks ~domains:3
       (List.init 3 (fun i () -> i * i)));
  Alcotest.(check int) "tokens released back to the pool" 3
    (Pool.peak_live_domains ())

(* Zero budget: everything runs inline on the calling domain, results are
   still exact, and nothing is ever spawned. *)
let test_zero_budget_runs_inline () =
  with_budget 0 @@ fun () ->
  Pool.reset_peak_live_domains ();
  let r =
    Pool.parallel_chunks ~domains:8 1000
      (fun lo len ->
        let s = ref 0 in
        for i = lo to lo + len - 1 do
          s := !s + i
        done;
        !s)
      ~combine:( + ) ~zero:0
  in
  Alcotest.(check int) "sum exact" (1000 * 999 / 2) r;
  Alcotest.(check int) "no domain ever spawned" 1 (Pool.peak_live_domains ())

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "int_range bounds" `Quick test_prng_range;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "backoff deterministic and bounded" `Quick
            test_backoff_deterministic_and_bounded;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        ] );
      ("vec", [ Alcotest.test_case "basic ops" `Quick test_vec_ops ]);
      ( "mat",
        [
          qcheck cholesky_prop;
          Alcotest.test_case "cholesky rejects non-PD" `Quick
            test_cholesky_rejects_non_pd;
          Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
          Alcotest.test_case "ger rank-1 update" `Quick test_ger;
          Alcotest.test_case "power iteration" `Quick test_power_iteration;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          qcheck csv_prop;
          Alcotest.test_case "located physical lines" `Quick
            test_csv_located_lines;
          Alcotest.test_case "malformed: wrong arity" `Quick
            test_csv_malformed_arity;
          Alcotest.test_case "malformed: bad cell" `Quick
            test_csv_malformed_cell;
        ] );
      ("interner", [ Alcotest.test_case "basic" `Quick test_interner ]);
      ( "pool",
        [
          Alcotest.test_case "ranges cover" `Quick test_ranges_cover;
          Alcotest.test_case "parallel sum" `Quick test_parallel_sum;
          Alcotest.test_case "task order" `Quick test_parallel_tasks_order;
          qcheck parallel_chunks_domain_invariance;
          Alcotest.test_case "domains=1 never spawns" `Quick
            test_parallel_chunks_no_spawn;
          Alcotest.test_case "ranges with n < chunks" `Quick
            test_ranges_fewer_items_than_chunks;
          Alcotest.test_case "BORG_DOMAINS parsing fallback" `Quick
            test_domains_of_env;
          Alcotest.test_case "nested calls respect global budget" `Quick
            test_nested_budget_no_oversubscription;
          Alcotest.test_case "zero budget runs inline" `Quick
            test_zero_budget_runs_inline;
        ] );
    ]
