(* Tests for the synthetic dataset generators: acyclicity, key integrity,
   determinism, scaling, and feature-map consistency for all four datasets. *)

open Relational

type dataset = {
  dname : string;
  generate : ?scale:float -> seed:int -> unit -> Database.t;
  features : Aggregates.Feature.t;
  mi_attrs : string list;
  ivm_features : string list;
}

let datasets =
  [
    {
      dname = "retailer";
      generate = Datagen.Retailer.generate;
      features = Datagen.Retailer.features;
      mi_attrs = Datagen.Retailer.mi_attrs;
      ivm_features = Datagen.Retailer.ivm_features;
    };
    {
      dname = "favorita";
      generate = Datagen.Favorita.generate;
      features = Datagen.Favorita.features;
      mi_attrs = Datagen.Favorita.mi_attrs;
      ivm_features = Datagen.Favorita.ivm_features;
    };
    {
      dname = "yelp";
      generate = Datagen.Yelp.generate;
      features = Datagen.Yelp.features;
      mi_attrs = Datagen.Yelp.mi_attrs;
      ivm_features = Datagen.Yelp.ivm_features;
    };
    {
      dname = "tpcds";
      generate = Datagen.Tpcds.generate;
      features = Datagen.Tpcds.features;
      mi_attrs = Datagen.Tpcds.mi_attrs;
      ivm_features = Datagen.Tpcds.ivm_features;
    };
  ]

let small d = d.generate ~scale:0.02 ~seed:7 ()

let test_acyclic d () =
  let db = small d in
  match Database.join_tree db with
  | _ -> ()
  | exception Join_tree.Cyclic -> Alcotest.fail "cyclic schema"

let test_deterministic d () =
  let a = small d and b = small d in
  List.iter2
    (fun ra rb ->
      Alcotest.(check int)
        (Relation.name ra ^ " cardinality")
        (Relation.cardinality ra) (Relation.cardinality rb);
      Relation.iteri
        (fun i t ->
          if not (Tuple.equal t (Relation.get rb i)) then
            Alcotest.failf "tuple %d differs in %s" i (Relation.name ra))
        ra)
    (Database.relations a) (Database.relations b)

let test_seed_changes_data d () =
  let a = d.generate ~scale:0.02 ~seed:1 () in
  let b = d.generate ~scale:0.02 ~seed:2 () in
  let differs =
    List.exists2
      (fun ra rb ->
        Relation.cardinality ra <> Relation.cardinality rb
        || List.exists2
             (fun ta tb -> not (Tuple.equal ta tb))
             (Relation.to_list ra) (Relation.to_list rb))
      (Database.relations a) (Database.relations b)
  in
  Alcotest.(check bool) "different seeds differ" true differs

let test_joinable d () =
  (* every fact tuple must join: the full join is at least as big as the
     largest relation would suggest for key-fkey schemas — we only check
     non-emptiness and fkey resolution *)
  let db = small d in
  let join = Database.materialise_join db in
  Alcotest.(check bool) "join non-empty" true (Relation.cardinality join > 0)

let test_scaling d () =
  let s1 = d.generate ~scale:0.02 ~seed:3 () in
  let s2 = d.generate ~scale:0.06 ~seed:3 () in
  Alcotest.(check bool) "larger scale, more tuples" true
    (Database.total_cardinality s2 > Database.total_cardinality s1)

let test_features_exist d () =
  let db = small d in
  let attrs = Database.attribute_names db in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " exists") true (List.mem f attrs))
    (Aggregates.Feature.all d.features @ d.mi_attrs @ d.ivm_features)

(* Foreign-key consistency, schema-agnostically: for every attribute shared
   between relations, a relation in which the values are UNIQUE (a key —
   the dimension side) must enumerate a superset of every other relation's
   values for it. Facts drawing keys a dimension never generated would make
   tuples silently drop out of joins — exactly the corruption hostile
   streams at scale would amplify. Checked at scale 0.01 and 0.1 across
   seeds (the qcheck input). *)
let fk_consistent d =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:4 ~name:(d.dname ^ " FK-consistent at scale {0.01, 0.1}")
       QCheck2.Gen.(pair (oneofl [ 0.01; 0.1 ]) (int_range 1 1000))
       (fun (scale, seed) ->
         let db = d.generate ~scale ~seed () in
         let values rel pos =
           let tbl = Hashtbl.create 256 in
           Relation.iter (fun t -> Hashtbl.replace tbl t.(pos) ()) rel;
           tbl
         in
         let position rel attr =
           let rec find i = function
             | [] -> None
             | a :: _ when a = attr -> Some i
             | _ :: rest -> find (i + 1) rest
           in
           find 0 (Schema.names (Relation.schema rel))
         in
         let rels = Database.relations db in
         let attrs =
           List.sort_uniq compare
             (List.concat_map (fun r -> Schema.names (Relation.schema r)) rels)
         in
         List.for_all
           (fun attr ->
             let holders =
               List.filter_map
                 (fun r -> Option.map (fun p -> (r, p)) (position r attr))
                 rels
             in
             if List.length holders < 2 then true
             else
               let with_values =
                 List.map (fun (r, p) -> (r, values r p)) holders
               in
               let owners =
                 List.filter
                   (fun (r, vs) -> Hashtbl.length vs = Relation.cardinality r)
                   with_values
               in
               List.for_all
                 (fun (_, owner_vs) ->
                   List.for_all
                     (fun (_, vs) ->
                       Hashtbl.fold
                         (fun v () acc -> acc && Hashtbl.mem owner_vs v)
                         vs true)
                     with_values)
                 owners)
           attrs))

(* A corrupted cell in a generated relation's CSV must surface as a LOCATED
   [Csvio.Malformed] — the 1-based source line and column of the bad cell,
   not a generic parse failure half a file away. *)
let test_csv_malformed d () =
  let db = d.generate ~scale:0.01 ~seed:13 () in
  let rel =
    List.find
      (fun r ->
        Relation.cardinality r >= 3
        && List.exists
             (fun (a : Schema.attr) -> a.Schema.ty <> Value.TStr)
             (Schema.attrs (Relation.schema r)))
      (Database.relations db)
  in
  let schema = Relation.schema rel in
  let col =
    (* first non-string column: "bogus" cannot parse there *)
    let rec find i =
      if (Schema.attr_at schema i).Schema.ty <> Value.TStr then i else find (i + 1)
    in
    find 0
  in
  let rows = Relation.csv_rows rel in
  let bad_row = 2 in
  let rows =
    List.mapi
      (fun i row ->
        if i = bad_row then List.mapi (fun j c -> if j = col then "bogus" else c) row
        else row)
      rows
  in
  match Relation.of_csv_rows (Relation.name rel) schema rows with
  | _ -> Alcotest.fail "corrupted cell accepted"
  | exception Util.Csvio.Malformed { line; column; reason } ->
      Alcotest.(check int) "line points at the corrupted row" (bad_row + 1) line;
      Alcotest.(check int) "column points at the corrupted cell" (col + 1) column;
      Alcotest.(check bool) "reason names the cell contents" true
        (let rec contains i =
           i + 5 <= String.length reason
           && (String.sub reason i 5 = "bogus" || contains (i + 1))
         in
         contains 0)

let test_lmfao_runs d () =
  (* the covariance batch must run end to end on each dataset *)
  let db = d.generate ~scale:0.01 ~seed:11 () in
  let batch = Aggregates.Batch.covariance d.features in
  let r = Lmfao.Engine.eval db batch in
  let results = r.Lmfao.Engine.keyed and stats = r.Lmfao.Engine.stats in
  Alcotest.(check int) "all aggregates answered"
    (Aggregates.Batch.size batch) (List.length results);
  Alcotest.(check bool) "sharing found" true (stats.shared_away >= 0)

let suite d =
  ( d.dname,
    [
      Alcotest.test_case "acyclic schema" `Quick (test_acyclic d);
      Alcotest.test_case "deterministic per seed" `Quick (test_deterministic d);
      Alcotest.test_case "seed changes data" `Quick (test_seed_changes_data d);
      Alcotest.test_case "join non-empty" `Quick (test_joinable d);
      Alcotest.test_case "scaling monotone" `Quick (test_scaling d);
      Alcotest.test_case "feature attrs exist" `Quick (test_features_exist d);
      Alcotest.test_case "covariance batch via LMFAO" `Quick (test_lmfao_runs d);
      fk_consistent d;
      Alcotest.test_case "corrupted CSV cell is located" `Quick (test_csv_malformed d);
    ] )

let () = Alcotest.run "datagen" (List.map suite datasets)
