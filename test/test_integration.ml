(* End-to-end integration tests across subsystems, at tiny scales:
   the two Figure-2 flows agree; the three IVM strategies converge to the
   same state on a real dataset stream; every model trains on every
   dataset. *)

open Relational

let test_two_flows_agree () =
  (* the structure-aware model must be at least as accurate as the one-epoch
     SGD baseline, and the pipelines must see the same data *)
  let db = Datagen.Retailer.generate ~scale:0.02 ~seed:31 () in
  let features = Datagen.Retailer.features in
  let report = Baseline.Agnostic.run db features in
  let aware = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db features in
  let join = Database.materialise_join db in
  let aware_rmse = Ml.Linreg.rmse_on aware.model join in
  Alcotest.(check int) "join rows" (Relation.cardinality join) report.join_cardinality;
  Alcotest.(check bool)
    (Printf.sprintf "aware rmse %.2f <= agnostic rmse %.2f" aware_rmse report.rmse)
    true
    (aware_rmse <= report.rmse +. 1e-9);
  (* and close to the closed-form optimum *)
  let closed =
    Ml.Model_intf.timed_fit
      ~options:{ Ml.Linreg.ridge = 1e-3; method_ = Ml.Linreg.Closed_form }
      (module Ml.Linreg.Model) db features
  in
  let closed_rmse = Ml.Linreg.rmse_on closed.model join in
  Alcotest.(check bool)
    (Printf.sprintf "aware %.4f within 2%% of closed form %.4f" aware_rmse closed_rmse)
    true
    (aware_rmse <= (closed_rmse *. 1.02) +. 1e-9)

let test_ivm_strategies_converge_on_retailer () =
  let db = Datagen.Retailer.generate ~scale:0.01 ~seed:32 () in
  let features = Datagen.Retailer.ivm_features in
  let stream = Datagen.Stream_gen.with_churn ~churn:0.2 db in
  let final strategy =
    let m = Fivm.Maintainer.create strategy db ~features in
    List.iter (Fivm.Maintainer.apply m) stream;
    Fivm.Maintainer.covariance m
  in
  let a = final Fivm.Maintainer.F_ivm in
  let b = final Fivm.Maintainer.Higher_order in
  let c = final Fivm.Maintainer.First_order in
  Alcotest.(check bool) "fivm = higher" true (Rings.Covariance.equal_rel ~eps:1e-7 a b);
  Alcotest.(check bool) "fivm = first" true (Rings.Covariance.equal_rel ~eps:1e-7 a c);
  (* the stream's net content is the database itself: counts must match *)
  let join = Database.materialise_join db in
  Alcotest.(check (float 0.5))
    "maintained count = join cardinality"
    (float_of_int (Relation.cardinality join))
    (Rings.Covariance.count a)

let all_datasets () =
  [
    ( "favorita",
      Datagen.Favorita.generate ~scale:0.03 ~seed:33 (),
      Datagen.Favorita.features );
    ("yelp", Datagen.Yelp.generate ~scale:0.03 ~seed:33 (), Datagen.Yelp.features);
    ("tpcds", Datagen.Tpcds.generate ~scale:0.03 ~seed:33 (), Datagen.Tpcds.features);
  ]

let test_models_train_everywhere () =
  List.iter
    (fun (name, db, features) ->
      let join = Database.materialise_join db in
      (* linear regression *)
      let r = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db features in
      let rmse = Ml.Linreg.rmse_on r.model join in
      Alcotest.(check bool) (name ^ ": finite linreg rmse") true (Float.is_finite rmse);
      (* decision tree (small) *)
      let tree =
        Ml.Decision_tree.train
          ~params:{ Ml.Decision_tree.default_params with max_depth = 2 }
          db
          { features with thresholds_per_feature = 4 }
      in
      Alcotest.(check bool) (name ^ ": tree built") true (Ml.Decision_tree.size tree >= 1);
      (* PCA over the numeric features *)
      let task = Fivm.Cov_task.make db ~features:(Aggregates.Feature.numeric features) in
      let storage = Fivm.Storage.create db in
      List.iter
        (fun u -> Fivm.Storage.apply storage u)
        (Datagen.Stream_gen.inserts_of_database db);
      ignore task;
      ignore storage)
    (all_datasets ())

let test_kmeans_pipeline () =
  let db = Datagen.Yelp.generate ~scale:0.05 ~seed:34 () in
  let dims = [ "bstars"; "uavgstars"; "useful" ] in
  let clustering = Ml.Kmeans.rk_means ~k:3 ~cells:12 db ~dims in
  Alcotest.(check int) "3 centroids" 3 (Array.length clustering.centroids);
  Alcotest.(check bool) "finite cost" true (Float.is_finite clustering.cost)

let test_chow_liu_on_retailer () =
  let db = Datagen.Retailer.generate ~scale:0.02 ~seed:35 () in
  let attrs = [ "subcategory"; "category"; "categoryCluster"; "rain"; "snow" ] in
  let tree = Ml.Chow_liu.tree_over_database db attrs in
  Alcotest.(check int) "spanning tree" (List.length attrs - 1) (List.length tree);
  (* the taxonomy chain subcategory - category - categoryCluster is the
     strongest dependency structure in the data *)
  let has a b =
    List.exists
      (fun (e : Ml.Chow_liu.edge) -> (e.a = a && e.b = b) || (e.a = b && e.b = a))
      tree
  in
  Alcotest.(check bool) "taxonomy edge" true
    (has "subcategory" "category" || has "category" "categoryCluster")

let test_bucketed_tree_training_agrees () =
  (* decision trees trained via the engine and via flat scans agree on
     predictions for a real dataset *)
  let db = Datagen.Favorita.generate ~scale:0.02 ~seed:36 () in
  let features =
    { (Datagen.Favorita.features) with thresholds_per_feature = 5 }
  in
  let params = { Ml.Decision_tree.default_params with max_depth = 2 } in
  let t_db = Ml.Decision_tree.train ~params db features in
  let join = Database.materialise_join db in
  let thresholds = Ml.Decision_tree.thresholds_of_db db features in
  let t_flat = Ml.Decision_tree.train_flat ~params join features ~thresholds in
  let schema = Relation.schema join in
  Relation.iter
    (fun t ->
      let get a = t.(Schema.position schema a) in
      if
        Float.abs
          (Ml.Decision_tree.predict t_db get -. Ml.Decision_tree.predict t_flat get)
        > 1e-9
      then Alcotest.fail "tree predictions diverge")
    join

let () =
  Alcotest.run "integration"
    [
      ( "figure-2-flows",
        [ Alcotest.test_case "agnostic vs aware" `Quick test_two_flows_agree ] );
      ( "ivm",
        [
          Alcotest.test_case "strategies converge on retailer stream" `Quick
            test_ivm_strategies_converge_on_retailer;
        ] );
      ( "models",
        [
          Alcotest.test_case "train on all datasets" `Quick test_models_train_everywhere;
          Alcotest.test_case "rk-means pipeline" `Quick test_kmeans_pipeline;
          Alcotest.test_case "chow-liu on retailer" `Quick test_chow_liu_on_retailer;
          Alcotest.test_case "tree db = flat on favorita" `Quick
            test_bucketed_tree_training_agrees;
        ] );
    ]
