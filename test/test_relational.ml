(* Tests for the relational substrate: operator semantics against naive
   reference implementations on random relations, GYO acyclicity, and join
   trees. *)

open Relational

let int n = Value.Int n

let schema_ab = Schema.make [ ("a", Value.TInt); ("b", Value.TInt) ]
let schema_bc = Schema.make [ ("b", Value.TInt); ("c", Value.TInt) ]

let rel_of name schema rows =
  Relation.of_list name schema (List.map (fun r -> Array.map (fun x -> int x) (Array.of_list r)) rows)

(* random relation over int attrs with small domain *)
let random_rel rng name attrs card domain =
  let schema = Schema.make (List.map (fun a -> (a, Value.TInt)) attrs) in
  let rel = Relation.create name schema in
  for _ = 1 to card do
    Relation.append rel
      (Array.of_list (List.map (fun _ -> int (Util.Prng.int rng domain)) attrs))
  done;
  rel

let rows_as_sorted_lists rel =
  List.sort compare
    (List.map (fun t -> Array.to_list t) (Relation.to_list rel))

(* --- schema --- *)

let test_schema_positions () =
  let s = Schema.make [ ("x", Value.TInt); ("y", Value.TFloat); ("z", Value.TStr) ] in
  Alcotest.(check int) "x at 0" 0 (Schema.position s "x");
  Alcotest.(check int) "z at 2" 2 (Schema.position s "z");
  Alcotest.(check bool) "mem" true (Schema.mem s "y");
  Alcotest.(check bool) "not mem" false (Schema.mem s "w");
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Schema.of_list: duplicate attribute x") (fun () ->
      ignore (Schema.make [ ("x", Value.TInt); ("x", Value.TInt) ]))

let test_schema_join () =
  let j = Schema.join schema_ab schema_bc in
  Alcotest.(check (list string)) "join schema" [ "a"; "b"; "c" ] (Schema.names j);
  Alcotest.(check (list string)) "common" [ "b" ] (Schema.common schema_ab schema_bc)

(* --- value ordering --- *)

let value_compare_total =
  QCheck2.Test.make ~count:200 ~name:"value compare is a total order"
    QCheck2.Gen.(
      let value =
        oneof
          [
            map (fun n -> Value.Int n) small_int;
            map (fun x -> Value.Float x) (float_bound_inclusive 100.0);
            map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 4));
            return Value.Null;
          ]
      in
      triple value value value)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      (* transitivity of <= *)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

(* --- select / project --- *)

let test_select () =
  let r = rel_of "R" schema_ab [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] in
  let got = Ops.select (Predicate.Ge ("a", int 3)) r in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality got)

let test_additive_ineq_predicate () =
  let r = rel_of "R" schema_ab [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] in
  (* a + 2b > 10: (1,2)->5 no, (3,4)->11 yes, (5,6)->17 yes *)
  let got = Ops.select (Predicate.Additive_ineq ([ ("a", 1.0); ("b", 2.0) ], 10.0)) r in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality got)

let test_project_bag () =
  let r = rel_of "R" schema_ab [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 2 ] ] in
  let p = Ops.project r [ "a" ] in
  Alcotest.(check int) "bag keeps dups" 3 (Relation.cardinality p);
  let d = Ops.project_distinct r [ "a" ] in
  Alcotest.(check int) "distinct" 1 (Relation.cardinality d)

(* --- joins vs nested-loop reference --- *)

let join_matches_reference =
  QCheck2.Test.make ~count:60 ~name:"hash join = nested-loop join"
    QCheck2.Gen.(triple (int_range 0 25) (int_range 1 5) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let a = random_rel rng "A" [ "a"; "b" ] card domain in
      let b = random_rel rng "B" [ "b"; "c" ] card domain in
      let fast = Ops.natural_join a b in
      (* reference *)
      let refr = Relation.create "ref" (Schema.join (Relation.schema a) (Relation.schema b)) in
      Relation.iter
        (fun ta ->
          Relation.iter
            (fun tb ->
              if Value.equal ta.(1) tb.(0) then
                Relation.append refr [| ta.(0); ta.(1); tb.(1) |])
            b)
        a;
      rows_as_sorted_lists fast = rows_as_sorted_lists refr)

let test_join_cartesian_when_disjoint () =
  let a = rel_of "A" (Schema.make [ ("a", Value.TInt) ]) [ [ 1 ]; [ 2 ] ] in
  let b = rel_of "B" (Schema.make [ ("b", Value.TInt) ]) [ [ 10 ]; [ 20 ]; [ 30 ] ] in
  Alcotest.(check int) "cartesian 2x3" 6 (Relation.cardinality (Ops.natural_join a b))

let test_semijoin () =
  let a = rel_of "A" schema_ab [ [ 1; 1 ]; [ 2; 2 ]; [ 3; 3 ] ] in
  let b = rel_of "B" schema_bc [ [ 1; 9 ]; [ 3; 9 ] ] in
  let s = Ops.semijoin a b in
  Alcotest.(check int) "two survivors" 2 (Relation.cardinality s)

(* --- columnar path vs boxed-tuple oracle --- *)

(* The typed-column operators must agree, as bags of rows, with naive
   oracles computed over boxed tuples pulled out via [Relation.to_list] —
   the edge representation the columnar layer is supposed to be
   indistinguishable from. *)

let boxed_rows rel = List.map Array.to_list (Relation.to_list rel)

let cartesian_matches_boxed_oracle =
  QCheck2.Test.make ~count:40
    ~name:"disjoint natural join = boxed cartesian oracle"
    QCheck2.Gen.(triple (int_range 0 12) (int_range 0 12) int)
    (fun (na, nb, seed) ->
      let rng = Util.Prng.create seed in
      let a = random_rel rng "A" [ "a" ] na 5 in
      let b = random_rel rng "B" [ "b"; "c" ] nb 5 in
      let fast = Ops.natural_join a b in
      let oracle =
        List.concat_map
          (fun ta ->
            List.map (fun tb -> Array.to_list (Array.append ta tb)) (Relation.to_list b))
          (Relation.to_list a)
      in
      List.sort compare (boxed_rows fast) = List.sort compare oracle)

let distinct_matches_boxed_oracle =
  QCheck2.Test.make ~count:40 ~name:"distinct on bags = boxed sort_uniq oracle"
    QCheck2.Gen.(triple (int_range 0 40) (int_range 1 3) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      (* small domain so duplicate rows are common *)
      let r = random_rel rng "R" [ "a"; "b" ] card domain in
      let d = Ops.distinct r in
      List.sort compare (boxed_rows d)
      = List.sort_uniq compare (boxed_rows r))

let projection_matches_boxed_oracle =
  QCheck2.Test.make ~count:40
    ~name:"bag projection keeps duplicates = boxed per-row oracle"
    QCheck2.Gen.(triple (int_range 0 40) (int_range 1 3) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let r = random_rel rng "R" [ "a"; "b"; "c" ] card domain in
      let p = Ops.project r [ "c"; "a" ] in
      let pos_c = Schema.position (Relation.schema r) "c" in
      let pos_a = Schema.position (Relation.schema r) "a" in
      let oracle = List.map (fun t -> [ t.(pos_c); t.(pos_a) ]) (Relation.to_list r) in
      Relation.cardinality p = Relation.cardinality r
      && List.sort compare (boxed_rows p) = List.sort compare oracle)

(* --- group_by vs reference --- *)

let groupby_matches_reference =
  QCheck2.Test.make ~count:60 ~name:"group_by sums = manual fold"
    QCheck2.Gen.(triple (int_range 0 40) (int_range 1 4) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let r = random_rel rng "R" [ "g"; "v" ] card domain in
      let schema = Relation.schema r in
      let got =
        Ops.group_by r ~key:[ "g" ]
          ~aggs:[ ("s", Ops.sum_of_attr schema "v"); ("n", Ops.Count) ]
      in
      (* reference via assoc list *)
      let table = Hashtbl.create 8 in
      Relation.iter
        (fun t ->
          let g = Value.to_int t.(0) and v = Value.to_float t.(1) in
          let s0, n0 = Option.value ~default:(0.0, 0) (Hashtbl.find_opt table g) in
          Hashtbl.replace table g (s0 +. v, n0 + 1))
        r;
      Relation.cardinality got = Hashtbl.length table
      && Relation.fold
           (fun ok t ->
             let g = Value.to_int t.(0) in
             let s = Value.to_float t.(1) and n = Value.to_float t.(2) in
             match Hashtbl.find_opt table g with
             | Some (s0, n0) ->
                 ok && Float.abs (s -. s0) < 1e-9 && int_of_float n = n0
             | None -> false)
           true got)

let test_aggregate_scalar () =
  let r = rel_of "R" schema_ab [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 30 ] ] in
  let schema = Relation.schema r in
  match
    Ops.aggregate r
      [
        Ops.Count;
        Ops.sum_of_attr schema "b";
        Ops.Min (fun t -> Value.to_float t.(1));
        Ops.Max (fun t -> Value.to_float t.(1));
        Ops.Avg (fun t -> Value.to_float t.(1));
      ]
  with
  | [ n; s; mn; mx; avg ] ->
      Alcotest.(check (float 1e-9)) "count" 3.0 n;
      Alcotest.(check (float 1e-9)) "sum" 60.0 s;
      Alcotest.(check (float 1e-9)) "min" 10.0 mn;
      Alcotest.(check (float 1e-9)) "max" 30.0 mx;
      Alcotest.(check (float 1e-9)) "avg" 20.0 avg
  | _ -> Alcotest.fail "wrong arity"

(* --- hypergraph / GYO --- *)

let test_gyo_acyclic_chain () =
  let hg =
    [
      Hypergraph.edge "R1" [ "a"; "b" ];
      Hypergraph.edge "R2" [ "b"; "c" ];
      Hypergraph.edge "R3" [ "c"; "d" ];
    ]
  in
  Alcotest.(check bool) "chain acyclic" true (Hypergraph.is_acyclic hg)

let test_gyo_triangle_cyclic () =
  let hg =
    [
      Hypergraph.edge "R1" [ "a"; "b" ];
      Hypergraph.edge "R2" [ "b"; "c" ];
      Hypergraph.edge "R3" [ "a"; "c" ];
    ]
  in
  Alcotest.(check bool) "triangle cyclic" false (Hypergraph.is_acyclic hg)

let test_gyo_star_acyclic () =
  let hg =
    [
      Hypergraph.edge "F" [ "a"; "b"; "c" ];
      Hypergraph.edge "D1" [ "a"; "x" ];
      Hypergraph.edge "D2" [ "b"; "y" ];
      Hypergraph.edge "D3" [ "c"; "z" ];
    ]
  in
  Alcotest.(check bool) "star acyclic" true (Hypergraph.is_acyclic hg)

(* Join tree: running-intersection property — for each attribute, the nodes
   containing it form a connected subtree. *)
let running_intersection jt root_name =
  let node = Join_tree.tree ~root:root_name jt in
  let attr_nodes = Hashtbl.create 16 in
  let rec collect (n : Join_tree.node) =
    List.iter
      (fun a ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt attr_nodes a) in
        Hashtbl.replace attr_nodes a (Relation.name n.rel :: cur))
      (Schema.names (Relation.schema n.rel));
    List.iter collect n.children
  in
  collect node;
  (* for each attr, check connectivity by walking the tree and counting the
     maximal connected runs containing the attr *)
  let ok = ref true in
  Hashtbl.iter
    (fun attr _ ->
      (* count connected components of nodes containing attr *)
      let rec components (n : Join_tree.node) inside =
        let here = Schema.mem (Relation.schema n.rel) attr in
        let new_comp = if here && not inside then 1 else 0 in
        List.fold_left
          (fun acc c -> acc + components c here)
          new_comp n.children
      in
      if components node false > 1 then ok := false)
    attr_nodes;
  !ok

let test_join_tree_running_intersection () =
  let rels =
    [
      rel_of "F" (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("c", Value.TInt) ]) [];
      rel_of "D1" (Schema.make [ ("a", Value.TInt); ("x", Value.TInt) ]) [];
      rel_of "D2" (Schema.make [ ("b", Value.TInt); ("y", Value.TInt) ]) [];
      rel_of "D3" (Schema.make [ ("c", Value.TInt); ("z", Value.TInt) ]) [];
    ]
  in
  let jt = Join_tree.build rels in
  List.iter
    (fun root ->
      Alcotest.(check bool)
        (Printf.sprintf "running intersection from %s" root)
        true
        (running_intersection jt root))
    (Join_tree.node_names jt)

let test_join_tree_cyclic_raises () =
  let rels =
    [
      rel_of "R1" schema_ab [];
      rel_of "R2" schema_bc [];
      rel_of "R3" (Schema.make [ ("a", Value.TInt); ("c", Value.TInt) ]) [];
    ]
  in
  Alcotest.check_raises "cyclic" Join_tree.Cyclic (fun () ->
      ignore (Join_tree.build rels))

(* --- database --- *)

let test_database_join () =
  let f =
    rel_of "F" (Schema.make [ ("a", Value.TInt); ("b", Value.TInt) ])
      [ [ 1; 10 ]; [ 2; 20 ] ]
  in
  let d =
    rel_of "D" (Schema.make [ ("a", Value.TInt); ("x", Value.TInt) ])
      [ [ 1; 100 ]; [ 1; 101 ]; [ 2; 200 ] ]
  in
  let db = Database.create "toy" [ f; d ] in
  let join = Database.materialise_join db in
  Alcotest.(check int) "join size" 3 (Relation.cardinality join);
  Alcotest.(check int) "total card" 5 (Database.total_cardinality db)

(* compiled predicates agree with interpreted evaluation *)
let predicate_compile_matches_eval =
  QCheck2.Test.make ~count:200 ~name:"Predicate.compile = Predicate.eval"
    QCheck2.Gen.(
      let leaf =
        oneof
          [
            map (fun c -> Predicate.Ge ("a", Value.Int c)) (int_range 0 5);
            map (fun c -> Predicate.Lt ("b", Value.Int c)) (int_range 0 5);
            map (fun c -> Predicate.Eq ("a", Value.Int c)) (int_range 0 5);
            map
              (fun cs -> Predicate.In ("b", List.map (fun c -> Value.Int c) cs))
              (list_size (int_range 0 3) (int_range 0 5));
            return Predicate.True;
          ]
      in
      let pred =
        oneof
          [
            leaf;
            map (fun p -> Predicate.Not p) leaf;
            map2 (fun p q -> Predicate.And (p, q)) leaf leaf;
            map2 (fun p q -> Predicate.Or (p, q)) leaf leaf;
          ]
      in
      triple pred (int_range 0 5) (int_range 0 5))
    (fun (p, x, y) ->
      let t = [| int x; int y |] in
      Predicate.eval schema_ab t p = Predicate.compile schema_ab p t)

let test_sort_by () =
  let r = rel_of "R" schema_ab [ [ 3; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] in
  let sorted = Ops.sort_by r [ "a" ] in
  Alcotest.(check (list int)) "ascending a" [ 1; 2; 3 ]
    (List.map (fun t -> Value.to_int t.(0)) (Relation.to_list sorted))

let test_union () =
  let a = rel_of "A" schema_ab [ [ 1; 2 ] ] in
  let b = rel_of "B" schema_ab [ [ 3; 4 ]; [ 1; 2 ] ] in
  let u = Ops.union a b in
  Alcotest.(check int) "bag union" 3 (Relation.cardinality u);
  let c = rel_of "C" schema_bc [ [ 1; 2 ] ] in
  Alcotest.check_raises "schema mismatch"
    (Invalid_argument "Ops.union: schema mismatch") (fun () ->
      ignore (Ops.union a c))

let test_relation_value_accounting () =
  let r = rel_of "R" schema_ab [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "value count" 4 (Relation.value_count r);
  Alcotest.(check int) "distinct" 2 (Relation.distinct_count r);
  Alcotest.(check bool) "csv bytes > 0" true (Relation.csv_size r > 0);
  (* csv round trip *)
  let rows = Relation.csv_rows r in
  let back = Relation.of_csv_rows "R" schema_ab rows in
  Alcotest.(check int) "round trip size" 2 (Relation.cardinality back);
  Alcotest.(check bool) "round trip tuples" true
    (List.for_all2 Tuple.equal (Relation.to_list r) (Relation.to_list back))

let test_append_arity_mismatch () =
  let r = Relation.create "R" schema_ab in
  Alcotest.check_raises "arity"
    (Invalid_argument "Relation.append: arity mismatch on R (3 vs 2)") (fun () ->
      Relation.append r [| int 1; int 2; int 3 |])

(* ---- Keypack shard routing ---- *)

(* Uniform keys spread evenly: no shard may receive more than twice the
   mean, for packed multi-field int keys and for boxed string keys alike. *)
let test_shard_distribution () =
  let n = 10_000 in
  let check_counts label shards counts =
    let mean = float_of_int n /. float_of_int shards in
    Array.iteri
      (fun s c ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: shard %d/%d holds %d <= 2x mean" label s shards c)
          true
          (float_of_int c <= 2.0 *. mean))
      counts
  in
  List.iter
    (fun shards ->
      let packed = Array.make shards 0 in
      let boxed = Array.make shards 0 in
      for i = 0 to n - 1 do
        let kp =
          Keypack.key_of_tuple [| 0; 1 |]
            [| Value.Int (i mod 100); Value.Int (i / 100) |]
        in
        let kb = Keypack.key_of_tuple [| 0 |] [| Value.Str (string_of_int i) |] in
        packed.(Keypack.shard_of_key ~shards kp) <-
          packed.(Keypack.shard_of_key ~shards kp) + 1;
        boxed.(Keypack.shard_of_key ~shards kb) <-
          boxed.(Keypack.shard_of_key ~shards kb) + 1
      done;
      check_counts "packed" shards packed;
      check_counts "boxed" shards boxed)
    [ 2; 3; 4; 8; 16 ];
  Alcotest.(check int) "shards=1 routes everything to 0" 0
    (Keypack.shard_of_key ~shards:1 (Keypack.P 123456789))

(* Routing is a function of the key VALUE: a key and its boxed round trip
   (unpack/key_tuple then re-pack) land on the same shard, whether the key
   packs or falls back to a boxed tuple. *)
let shard_route_roundtrip =
  QCheck2.Test.make ~count:200
    ~name:"shard routing consistent across pack/unpack round trips"
    QCheck2.Gen.(pair (int_range 1 4) int)
    (fun (arity, seed) ->
      let rng = Util.Prng.create seed in
      (* mix fields that pack (small non-negative ints) with fields that
         force the boxed fallback (negatives, strings) *)
      let field () =
        match Util.Prng.int rng 3 with
        | 0 -> Value.Int (Util.Prng.int rng 1000)
        | 1 -> Value.Int (-1 - Util.Prng.int rng 1000)
        | _ -> Value.Str (string_of_int (Util.Prng.int rng 100))
      in
      let tuple = Array.init arity (fun _ -> field ()) in
      let positions = Array.init arity Fun.id in
      let k = Keypack.key_of_tuple positions tuple in
      let k' = Keypack.key_of_tuple positions (Keypack.key_tuple arity k) in
      Keypack.key_equal k k'
      && List.for_all
           (fun shards ->
             let s = Keypack.shard_of_key ~shards k in
             s = Keypack.shard_of_key ~shards k' && s >= 0 && s < shards)
           [ 1; 2; 3; 8; 16 ])

(* The two key readers — the column extractor used by base-table scans and
   the tuple packer used by streaming deltas — must agree on representation
   (packed vs boxed), hash and shard for every logical row, or a delta
   would route to a different shard / view bucket than the base load that
   preceded it. *)
let extractor_matches_tuple_path =
  QCheck2.Test.make ~count:100
    ~name:"column extractor and tuple packer agree on key, hash and shard"
    QCheck2.Gen.(triple (int_range 1 3) (int_range 1 40) int)
    (fun (key_arity, rows, seed) ->
      let rng = Util.Prng.create seed in
      (* per-column value class: packable ints, ints past the per-field
         budget (box multi-attribute keys), or strings (always boxed) *)
      let col_class = Array.init key_arity (fun _ -> Util.Prng.int rng 3) in
      let field c =
        match col_class.(c) with
        | 0 -> Value.Int (Util.Prng.int rng 1000)
        | 1 -> Value.Int ((1 lsl 40) + Util.Prng.int rng 1000)
        | _ -> Value.Str (Printf.sprintf "key-%06d" (Util.Prng.int rng 1000))
      in
      let schema =
        Schema.make
          (List.init (key_arity + 1) (fun i ->
               if i < key_arity then
                 ( Printf.sprintf "k%d" i,
                   if col_class.(i) = 2 then Value.TStr else Value.TInt )
               else ("x", Value.TFloat)))
      in
      let rel = Relation.create "R" schema in
      for _ = 1 to rows do
        Relation.append rel
          (Array.init (key_arity + 1) (fun i ->
               if i < key_arity then field i
               else Value.Float (float_of_int (Util.Prng.int rng 64) /. 16.0)))
      done;
      let positions = Array.init key_arity Fun.id in
      let from_cols = Relation.extractor rel positions in
      List.for_all
        (fun (i, t) ->
          let kc = from_cols i and kt = Keypack.key_of_tuple positions t in
          Keypack.key_equal kc kt
          && Keypack.key_hash kc = Keypack.key_hash kt
          && List.for_all
               (fun shards ->
                 Keypack.shard_of_key ~shards kc = Keypack.shard_of_key ~shards kt)
               [ 1; 4; 8 ])
        (List.mapi (fun i t -> (i, t)) (Relation.to_list rel)))

(* Zipf-skewed key traffic: the hot ranks dominate the SAMPLE, but routing
   only ever sees each distinct key once per table bucket — the distinct
   keys must still spread within 2x of the per-shard mean, for packed ints
   and for boxed (string) keys alike. *)
let test_zipf_shard_distribution () =
  let rng = Util.Prng.create 77 in
  let n = 10_000 in
  let draws = 20_000 in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to draws do
    Hashtbl.replace seen (Util.Prng.zipf rng ~n ~s:1.2) ()
  done;
  let check label key_of =
    List.iter
      (fun shards ->
        let counts = Array.make shards 0 in
        let distinct = Hashtbl.length seen in
        Hashtbl.iter
          (fun rank () ->
            let s = Keypack.shard_of_key ~shards (key_of rank) in
            counts.(s) <- counts.(s) + 1)
          seen;
        let mean = float_of_int distinct /. float_of_int shards in
        Array.iteri
          (fun s c ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: shard %d/%d holds %d distinct keys <= 2x mean %g"
                 label s shards c mean)
              true
              (float_of_int c <= 2.0 *. mean))
          counts)
      [ 4; 8 ]
  in
  Alcotest.(check bool) "skew reached the tail" true (Hashtbl.length seen > 100);
  check "packed" (fun rank -> Keypack.key_of_tuple [| 0 |] [| Value.Int rank |]);
  check "boxed" (fun rank ->
      Keypack.key_of_tuple [| 0 |] [| Value.Str (Printf.sprintf "key-%09d" rank) |])

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "relational"
    [
      ( "schema",
        [
          Alcotest.test_case "positions" `Quick test_schema_positions;
          Alcotest.test_case "join schema" `Quick test_schema_join;
        ] );
      ("value", [ qcheck value_compare_total ]);
      ( "ops",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "additive inequality" `Quick test_additive_ineq_predicate;
          Alcotest.test_case "bag projection" `Quick test_project_bag;
          qcheck join_matches_reference;
          Alcotest.test_case "disjoint join = cartesian" `Quick
            test_join_cartesian_when_disjoint;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
          qcheck groupby_matches_reference;
          Alcotest.test_case "scalar aggregates" `Quick test_aggregate_scalar;
          qcheck predicate_compile_matches_eval;
          Alcotest.test_case "sort_by" `Quick test_sort_by;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "value accounting + csv" `Quick
            test_relation_value_accounting;
          Alcotest.test_case "append arity mismatch" `Quick test_append_arity_mismatch;
        ] );
      ( "columnar-vs-boxed",
        [
          qcheck cartesian_matches_boxed_oracle;
          qcheck distinct_matches_boxed_oracle;
          qcheck projection_matches_boxed_oracle;
        ] );
      ( "keypack",
        [
          Alcotest.test_case "shard distribution sanity" `Quick
            test_shard_distribution;
          Alcotest.test_case "zipf distinct-key distribution" `Quick
            test_zipf_shard_distribution;
          qcheck shard_route_roundtrip;
          qcheck extractor_matches_tuple_path;
        ] );
      ( "hypergraph",
        [
          Alcotest.test_case "chain acyclic" `Quick test_gyo_acyclic_chain;
          Alcotest.test_case "triangle cyclic" `Quick test_gyo_triangle_cyclic;
          Alcotest.test_case "star acyclic" `Quick test_gyo_star_acyclic;
        ] );
      ( "join-tree",
        [
          Alcotest.test_case "running intersection (all roots)" `Quick
            test_join_tree_running_intersection;
          Alcotest.test_case "cyclic raises" `Quick test_join_tree_cyclic_raises;
        ] );
      ("database", [ Alcotest.test_case "materialise join" `Quick test_database_join ]);
    ]
