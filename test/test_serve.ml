(* Differential tests for the epoch-invalidated serving cache (lib/serve).

   The headline property: a served result — whether it came from the cache,
   from an in-place covariance refresh after a delta batch, or from a
   recompute after invalidation — is BIT-identical to a fresh
   [Lmfao.Engine.eval] over the server's current snapshot, at every point
   of a random insert/delete stream, for all three maintenance strategies.
   Bitwise equality across the maintained and recomputed pipelines only
   holds under exact float arithmetic, so the streams draw feature values
   from the dyadic lattice of [test_shard.ml] (strictly positive multiples
   of 1/16, at most 4): every covariance accumulation is then exactly
   representable and no summation order can change a bit. *)

open Relational
module M = Fivm.Maintainer
module Delta = Fivm.Delta
module Batch = Aggregates.Batch
module Spec = Aggregates.Spec

let int n = Value.Int n
let flt x = Value.Float x

(* Star schema shared with test_shard.ml: F(a,b,m), D1(a,u), D2(b,v). *)
let empty_db () =
  Database.create "stream"
    [
      Relation.create "F"
        (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let features = [ "m"; "u"; "v" ]
let strategies = [ (M.F_ivm, "fivm"); (M.Higher_order, "higher"); (M.First_order, "first") ]

let random_update rng inserted =
  let fresh () =
    let value () = float_of_int (1 + Util.Prng.int rng 64) /. 16.0 in
    let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
    let tuple =
      match rel with
      | "F" ->
          [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4); flt (value ()) |]
      | _ -> [| int (Util.Prng.int rng 4); flt (value ()) |]
    in
    Delta.insert rel tuple
  in
  if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
    let arr = Array.of_list !inserted in
    let u = Util.Prng.choice rng arr in
    inserted := List.filter (fun x -> x != u) !inserted;
    Delta.delete u.Delta.relation u.Delta.tuple
  end
  else begin
    let u = fresh () in
    inserted := u :: !inserted;
    u
  end

let lattice_stream ~seed ~steps =
  let rng = Util.Prng.create seed in
  let inserted = ref [] in
  List.init steps (fun _ -> random_update rng inserted)

let segment stream lo len = List.filteri (fun i _ -> i >= lo && i < lo + len) stream

(* The served batch mix: one fully covariance-backed batch (refreshed in
   place on deltas), one categorical batch and one grouped batch (both
   invalidated on deltas, recomputed on the next request). *)
let cov_batch = Batch.covariance_numeric features
let mi_batch = Batch.mutual_information [ "a"; "b" ]

let grouped_batch =
  {
    Batch.name = "grouped";
    aggregates =
      [
        Spec.make ~id:"sum_m_by_a" ~terms:[ ("m", 1) ] ~group_by:[ "a" ] ();
        Spec.count ~id:"n";
      ];
  }

let all_batches = [ cov_batch; mi_batch; grouped_batch ]

(* Bit-level equality of keyed results, insensitive to aggregate and row
   order (the engine groups by decomposition root; serve returns batch
   order). *)
let bits = Int64.bits_of_float

let results_bit_identical a b =
  let norm rows = List.sort (fun (k, _) (k', _) -> compare k k') rows in
  List.length a = List.length b
  && List.for_all
       (fun (id, mine) ->
         match List.assoc_opt id b with
         | None -> false
         | Some theirs ->
             let mine = norm mine and theirs = norm theirs in
             List.length mine = List.length theirs
             && List.for_all2
                  (fun (k, v) (k', v') -> k = k' && bits v = bits v')
                  mine theirs)
       a

let fresh_eval srv batch =
  (Lmfao.Engine.eval ~on_cyclic:`Materialize (Serve.snapshot srv) batch)
    .Lmfao.Engine.keyed

let check_batch srv what batch =
  let served = Serve.serve srv batch in
  if not (results_bit_identical served (fresh_eval srv batch)) then
    QCheck2.Test.fail_reportf "%s: served %s diverges from fresh recompute"
      what batch.Batch.name

(* The differential: random lattice stream applied in rounds; after every
   round every batch must serve bit-identically to recompute, twice (the
   second being a guaranteed cache hit), for each strategy. *)
let serving_differential =
  QCheck2.Test.make ~count:6 ~name:"served = recompute bitwise (all strategies)"
    QCheck2.Gen.(triple int (int_range 20 60) (int_range 1 3))
    (fun (seed, steps, rounds) ->
      List.for_all
        (fun (strategy, sname) ->
          let srv = Serve.create strategy (empty_db ()) ~features in
          let per = steps / (rounds + 1) in
          let stream = lattice_stream ~seed ~steps in
          Serve.apply_deltas srv (segment stream 0 per);
          for round = 1 to rounds do
            List.iter
              (fun b ->
                check_batch srv (Printf.sprintf "%s round %d miss" sname round) b;
                check_batch srv (Printf.sprintf "%s round %d hit" sname round) b)
              all_batches;
            Serve.apply_deltas srv (segment stream (round * per) per);
            (* immediately after the delta batch: the covariance batch was
               refreshed in place (no recompute), the others invalidated —
               all must still equal recompute *)
            List.iter
              (fun b ->
                check_batch srv
                  (Printf.sprintf "%s round %d post-delta" sname round)
                  b)
              all_batches
          done;
          true)
        strategies)

(* Cache-state bookkeeping on one deterministic run: misses on first touch,
   hits on repeats, refresh (not invalidation) for the covariance-backed
   batch, invalidation for the rest; epoch advances once per delta batch. *)
let test_stats_and_epoch () =
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  let stream = lattice_stream ~seed:11 ~steps:60 in
  Serve.apply_deltas srv (segment stream 0 40);
  Alcotest.(check int) "epoch after first delta batch" 1 (Serve.epoch srv);
  List.iter (fun b -> ignore (Serve.serve srv b)) all_batches;
  List.iter (fun b -> ignore (Serve.serve srv b)) all_batches;
  let s = Serve.stats srv in
  Alcotest.(check int) "one miss per distinct batch" 3 s.Serve.misses;
  Alcotest.(check int) "repeats all hit" 3 s.Serve.hits;
  Alcotest.(check int) "three entries cached" 3 (Serve.cache_size srv);
  Serve.apply_deltas srv (segment stream 40 20);
  Alcotest.(check int) "epoch advanced" 2 (Serve.epoch srv);
  let s = Serve.stats srv in
  Alcotest.(check int) "covariance batch refreshed in place" 1 s.Serve.refreshes;
  Alcotest.(check int) "other batches invalidated" 2 s.Serve.invalidations;
  Alcotest.(check int) "invalidated entries dropped" 1 (Serve.cache_size srv);
  (* the refreshed entry serves as a HIT and still equals recompute *)
  let before = (Serve.stats srv).Serve.hits in
  check_batch srv "refreshed hit" cov_batch;
  Alcotest.(check int) "refresh served without recompute" (before + 1)
    (Serve.stats srv).Serve.hits

(* Concurrent clients: K pool tasks serving the same mix must each get the
   bit-identical answer. A worker budget is forced (this machine may
   default to zero tokens) so real domains are exercised. *)
let test_concurrent_clients () =
  let saved = Util.Pool.worker_budget () in
  Util.Pool.set_worker_budget 3;
  Fun.protect ~finally:(fun () -> Util.Pool.set_worker_budget saved)
  @@ fun () ->
  let srv = Serve.create M.Higher_order (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:7 ~steps:80);
  (* warm the cache sequentially so the concurrent burst only reads *)
  List.iter (fun b -> ignore (Serve.serve srv b)) all_batches;
  let expected = List.map (fun b -> fresh_eval srv b) all_batches in
  let burst = List.concat (List.init 4 (fun _ -> all_batches)) in
  let got = Serve.serve_many ~clients:4 srv burst in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "client result %d bit-identical" i)
        true
        (results_bit_identical r (List.nth expected (i mod 3))))
    got

(* The single-writer contract must be ENFORCED, not just documented. A model
   whose refresh parks on an atomic gate holds one [apply_deltas] open
   mid-flight on a spawned domain; any second writer entering during that
   window must raise [Serve.Concurrent_writer] instead of interleaving with
   the maintainer pass. Deterministic: the main domain only proceeds once
   the gate confirms the writer is inside. *)
let test_single_writer_enforced () =
  let entered = Atomic.make false and release = Atomic.make false in
  let blocking_model : Ml.Model_intf.t =
    (module struct
      let name = "blocker"
      let description = "test model that parks its refresh on a gate"

      type options = unit

      let default_options = ()

      type model = unit

      let needs = `Covariance
      let train_from_moments ?options:_ ?warm_start:_ _ = ()

      let refresh ?options:_ ~previous:_ _ =
        Atomic.set entered true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done

      let predict () _ = 0.0
      let encode _ () = ()
      let decode _ = ()
    end)
  in
  let srv = Serve.create M.F_ivm (empty_db ()) ~features in
  Serve.apply_deltas srv (lattice_stream ~seed:3 ~steps:30);
  ignore (Serve.Model.register srv blocking_model ~response:"m");
  let update = [ Delta.insert "D1" [| int 0; flt 1.0 |] ] in
  let writer = Domain.spawn (fun () -> Serve.apply_deltas srv update) in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  (* the first writer is parked inside apply_deltas: every overlapping
     writer entry point must refuse *)
  let raises f =
    match f () with
    | _ -> false
    | exception Serve.Concurrent_writer _ -> true
  in
  Alcotest.(check bool) "overlapping apply_deltas raises" true
    (raises (fun () -> Serve.apply_deltas srv update));
  Alcotest.(check bool) "overlapping Model.refresh raises" true
    (raises (fun () -> Serve.Model.refresh srv "blocker"));
  Alcotest.(check bool) "overlapping Model.register raises" true
    (raises (fun () ->
         Serve.Model.register srv ~name:"second" blocking_model ~response:"m"));
  Atomic.set release true;
  Domain.join writer;
  (* the flag is released: writing works again, and the refused writers
     left no partial state behind (epoch advanced exactly once) *)
  let e = Serve.epoch srv in
  Serve.apply_deltas srv update;
  Alcotest.(check int) "writer flag released after the race" (e + 1)
    (Serve.epoch srv)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "serve"
    [
      ("differential", [ qcheck serving_differential ]);
      ( "cache",
        [
          Alcotest.test_case "stats and epoch bookkeeping" `Quick
            test_stats_and_epoch;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
        ] );
      ( "writer",
        [
          Alcotest.test_case "single-writer contract enforced" `Quick
            test_single_writer_enforced;
        ] );
    ]
