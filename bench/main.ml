(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 3 for the experiment index).

     dune exec bench/main.exe             -- run everything
     dune exec bench/main.exe -- fig3 fig5 ...   -- run selected entries
     BORG_SCALE=0.5 dune exec bench/main.exe     -- scale the datasets

   Absolute numbers depend on this machine and the synthetic data scale;
   the reproduced quantity is the SHAPE: who wins, by what factor, and how
   factors grow (the paper's numbers are quoted alongside). Micro-kernels
   are additionally registered as Bechamel tests (entry "micro"). *)

let scale =
  match Sys.getenv_opt "BORG_SCALE" with
  | Some s -> (try float_of_string s with _ -> 1.0)
  | None -> 1.0

(* BORG_OBS=1 switches the observability layer on for the whole run; each
   entry then prints its counter snapshot (timings stay span-free unless an
   entry opts in, so the measured numbers are not perturbed by reporting). *)
let obs_on =
  match Sys.getenv_opt "BORG_OBS" with
  | Some ("0" | "false" | "") | None -> false
  | Some _ -> true

let seed = 42

(* --json FILE: machine-readable per-entry timings (plus the per-entry
   counter snapshot when BORG_OBS is on), for tracking the perf trajectory
   across PRs. Populated by [record] calls at the measurement points and
   written once after the run. *)
let json_out = ref None
let compare_with = ref None
let timings : Obs.Json.t list ref = ref []

let record ~entry ~engine seconds =
  timings :=
    Obs.Json.Obj
      [
        ("entry", Obs.Json.Str entry);
        ("engine", Obs.Json.Str engine);
        ("seconds", Obs.Json.Num seconds);
      ]
    :: !timings

let line = String.make 78 '-'

let header title paper =
  Printf.printf "\n%s\n%s\n" line title;
  if paper <> "" then Printf.printf "(paper: %s)\n" paper;
  Printf.printf "%s\n%!" line

let pct x = Printf.sprintf "%.1fx" x

let human_bytes b =
  if b > 1_000_000 then Printf.sprintf "%.1f MB" (float_of_int b /. 1e6)
  else if b > 1_000 then Printf.sprintf "%.1f KB" (float_of_int b /. 1e3)
  else Printf.sprintf "%d B" b

(* ---------------------------------------------------------------- fig3 *)

(* Figure 3: the retailer dataset characteristics and the end-to-end
   structure-agnostic vs structure-aware comparison. *)
let fig3 () =
  header "Figure 3: retailer end-to-end (PostgreSQL+TensorFlow vs LMFAO)"
    "2,160x total speedup; join 10x input size; aggregates 37KB vs 23GB";
  let db = Datagen.Retailer.generate ~scale:(0.3 *. scale) ~seed () in
  let features = Datagen.Retailer.features in
  (* left table: dataset characteristics *)
  Printf.printf "%-14s %12s %8s %12s\n" "Relation" "Cardinality" "Arity" "CSV size";
  List.iter
    (fun r ->
      Printf.printf "%-14s %12d %8d %12s\n" (Relational.Relation.name r)
        (Relational.Relation.cardinality r)
        (Relational.Schema.arity (Relational.Relation.schema r))
        (human_bytes (Relational.Relation.csv_size r)))
    (Relational.Database.relations db);
  let join = Relational.Database.materialise_join db in
  Printf.printf "%-14s %12d %8d %12s\n" "Join" (Relational.Relation.cardinality join)
    (Relational.Schema.arity (Relational.Relation.schema join))
    (human_bytes (Relational.Relation.csv_size join));
  let input_bytes = Relational.Database.total_csv_size db in
  Printf.printf "join/input size ratio: %.1fx (paper: ~10x)\n%!"
    (float_of_int (Relational.Relation.csv_size join) /. float_of_int input_bytes);
  (* right table: the two pipelines *)
  let report = Baseline.Agnostic.run db features in
  let aware = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db features in
  let aware_total = aware.stats_seconds +. aware.solve_seconds in
  let aware_rmse = Ml.Linreg.rmse_on aware.model join in
  (* sufficient statistics size: the aggregate payload *)
  let batch = Aggregates.Batch.covariance features in
  let table = Lazy.force (Lmfao.Engine.eval db batch).Lmfao.Engine.table in
  let stat_bytes =
    Hashtbl.fold (fun _ r acc -> acc + (List.length r * 16)) table 0
  in
  Printf.printf "\n%-24s %14s %14s\n" "" "agnostic" "LMFAO";
  Printf.printf "%-24s %14s %14s\n" "Join"
    (Util.Timing.to_string report.join_seconds) "--";
  Printf.printf "%-24s %14s %14s\n" "Export/import"
    (Util.Timing.to_string report.export_seconds) "--";
  Printf.printf "%-24s %14s %14s\n" "One-hot + shuffling"
    (Util.Timing.to_string report.shuffle_seconds) "--";
  Printf.printf "%-24s %14s %14s\n" "Query batch" "--"
    (Util.Timing.to_string aware.stats_seconds);
  Printf.printf "%-24s %14s %14s\n" "Grad descent"
    (Util.Timing.to_string report.learn_seconds)
    (Util.Timing.to_string aware.solve_seconds);
  Printf.printf "%-24s %14s %14s\n" "Total"
    (Util.Timing.to_string (Baseline.Agnostic.total_seconds report))
    (Util.Timing.to_string aware_total);
  Printf.printf "%-24s %14s %14s\n" "Payload moved"
    (human_bytes report.join_csv_bytes) (human_bytes stat_bytes);
  Printf.printf "%-24s %14.3f %14.3f\n" "RMSE (train)" report.rmse aware_rmse;
  Printf.printf "\nspeedup (total): %s   (paper: 2,160x on 84M rows)\n%!"
    (pct (Baseline.Agnostic.total_seconds report /. aware_total));
  record ~entry:"fig3" ~engine:"lmfao-batch" aware.stats_seconds;
  record ~entry:"fig3" ~engine:"lmfao-total" aware_total;
  record ~entry:"fig3" ~engine:"agnostic-total"
    (Baseline.Agnostic.total_seconds report);
  (* interpreted vs staged-compiled execution of the same covariance batch:
     compile once (cold cost reported separately), then time the two
     executors on identical plans. *)
  let t_interp =
    Util.Timing.measure ~repeats:3 (fun () -> Lmfao.Engine.eval_batch db batch)
  in
  let plan, t_compile = Util.Timing.time (fun () -> Compile.Engine.compile db batch) in
  let t_compiled =
    Util.Timing.measure ~repeats:3 (fun () -> Compile.Engine.run plan db)
  in
  Printf.printf "\ncovariance batch, interpreted: %s  compiled: %s (%s; compile %s)\n%!"
    (Util.Timing.to_string t_interp)
    (Util.Timing.to_string t_compiled)
    (pct (t_interp /. t_compiled))
    (Util.Timing.to_string t_compile);
  record ~entry:"fig3" ~engine:"lmfao-interpreted" t_interp;
  record ~entry:"fig3" ~engine:"lmfao-compiled" t_compiled;
  record ~entry:"fig3" ~engine:"compile-cold" t_compile

(* ------------------------------------------------------------ fig4left *)

type dataset = {
  dname : string;
  db : Relational.Database.t;
  features : Aggregates.Feature.t;
  mi_attrs : string list;
  ivm_features : string list;
}

let datasets ~s () =
  [
    {
      dname = "Retailer";
      db = Datagen.Retailer.generate ~scale:(0.08 *. s) ~seed ();
      features = Datagen.Retailer.features;
      mi_attrs = Datagen.Retailer.mi_attrs;
      ivm_features = Datagen.Retailer.ivm_features;
    };
    {
      dname = "Favorita";
      db = Datagen.Favorita.generate ~scale:(0.15 *. s) ~seed ();
      features = Datagen.Favorita.features;
      mi_attrs = Datagen.Favorita.mi_attrs;
      ivm_features = Datagen.Favorita.ivm_features;
    };
    {
      dname = "Yelp";
      db = Datagen.Yelp.generate ~scale:(0.15 *. s) ~seed ();
      features = Datagen.Yelp.features;
      mi_attrs = Datagen.Yelp.mi_attrs;
      ivm_features = Datagen.Yelp.ivm_features;
    };
    {
      dname = "TPC-DS";
      db = Datagen.Tpcds.generate ~scale:(0.1 *. s) ~seed ();
      features = Datagen.Tpcds.features;
      mi_attrs = Datagen.Tpcds.mi_attrs;
      ivm_features = Datagen.Tpcds.ivm_features;
    };
  ]

(* Figure 4 left: LMFAO vs unshared per-aggregate engines on batches C
   (covariance) and R (regression-tree node). *)
let fig4left () =
  header "Figure 4 (left): LMFAO speedup over DBX- and MonetDB-style engines"
    "speedups track batch size, 10x-1000x across C and R batches";
  Printf.printf "%-10s %-6s %6s | %10s %10s %10s | %9s %9s\n" "dataset" "batch"
    "#aggs" "LMFAO" "DBX-like" "Monet-like" "vs DBX" "vs Monet";
  (* LMFAO answers the R batch through its threshold-bucket rewriting (one
     group-by triple per feature + suffix sums) — same answers, far fewer
     aggregates; the baselines answer the original filtered batch. *)
  List.iter
    (fun d ->
      (* the per-aggregate engines work over the materialised join; its
         construction is part of their cost (the paper's competitors evaluate
         the batch over the join of the base tables) *)
      let join, t_join =
        Util.Timing.time (fun () -> Relational.Database.materialise_join d.db)
      in
      let thresholds =
        List.map
          (fun x ->
            (x, Aggregates.Batch.thresholds_for d.db x d.features.thresholds_per_feature))
          d.features.continuous
      in
      List.iter
        (fun (bname, batch, lmfao_run) ->
          let n = Aggregates.Batch.size batch in
          let t_lmfao = Util.Timing.measure ~repeats:1 lmfao_run in
          let t_dbx =
            t_join
            +. Util.Timing.measure ~repeats:1 (fun () ->
                   ignore (Baseline.Unshared.dbx join batch))
          in
          let t_monet =
            t_join
            +. Util.Timing.measure ~repeats:1 (fun () ->
                   ignore (Baseline.Unshared.monet join batch))
          in
          Printf.printf "%-10s %-6s %6d | %10s %10s %10s | %9s %9s\n%!" d.dname bname
            n
            (Util.Timing.to_string t_lmfao)
            (Util.Timing.to_string t_dbx)
            (Util.Timing.to_string t_monet)
            (pct (t_dbx /. t_lmfao))
            (pct (t_monet /. t_lmfao));
          let tag engine = Printf.sprintf "%s-%s-%s" engine d.dname bname in
          record ~entry:"fig4left" ~engine:(tag "lmfao") t_lmfao;
          record ~entry:"fig4left" ~engine:(tag "dbx") t_dbx;
          record ~entry:"fig4left" ~engine:(tag "monet") t_monet)
        [
          (let batch = Aggregates.Batch.covariance d.features in
           ("C", batch, fun () -> ignore (Lmfao.Engine.eval d.db batch)));
          (let batch = Aggregates.Batch.decision_node ~db:d.db d.features in
           ( "R",
             batch,
             fun () ->
               ignore (Lmfao.Bucketed.decision_node_results d.db d.features ~thresholds)
           ));
        ])
    (datasets ~s:(4.0 *. scale) ())

(* ----------------------------------------------------------- fig4right *)

(* Figure 4 right: maintenance throughput under inserts into an initially
   empty retailer database. *)
let fig4right () =
  header "Figure 4 (right): IVM throughput, covariance matrix under inserts"
    "F-IVM >1M tuples/s, ~10x over higher-order, >>100x over first-order";
  let db = Datagen.Retailer.generate ~scale:(0.4 *. scale) ~seed () in
  let features = Datagen.Retailer.ivm_features in
  let stream = Array.of_list (Datagen.Stream_gen.inserts_of_database db) in
  let n = Array.length stream in
  Printf.printf "stream: %d inserts, %d numeric features (%d aggregates)\n" n
    (List.length features)
    ((List.length features + 1) * (List.length features + 2) / 2);
  (* the paper's x-axis: cumulative throughput at fractions of the stream *)
  let fractions = [ 0.1; 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  Printf.printf "%-18s" "fraction:";
  List.iter (fun f -> Printf.printf " %9.1f" f) fractions;
  Printf.printf "   (tuples/s)\n";
  let budget = 8.0 (* seconds per method; the paper used a 1h timeout *) in
  List.iter
    (fun strategy ->
      let m = Fivm.Maintainer.create strategy db ~features in
      let t0 = Util.Timing.now () in
      let processed = ref 0 in
      let checkpoints = ref fractions in
      let series = ref [] in
      (try
         Array.iter
           (fun u ->
             Fivm.Maintainer.apply m u;
             incr processed;
             (match !checkpoints with
             | f :: rest when float_of_int !processed >= f *. float_of_int n ->
                 series :=
                   float_of_int !processed /. (Util.Timing.now () -. t0) :: !series;
                 checkpoints := rest
             | _ -> ());
             if !processed land 255 = 0 && Util.Timing.now () -. t0 > budget then
               raise Exit)
           stream
       with Exit -> ());
      Printf.printf "%-18s" (Fivm.Maintainer.strategy_name strategy);
      List.iter (fun tps -> Printf.printf " %9.0f" tps) (List.rev !series);
      if !processed < n then
        Printf.printf "   (timed out at %d/%d after %.0fs)" !processed n budget;
      Printf.printf "\n%!")
    [ Fivm.Maintainer.F_ivm; Fivm.Maintainer.Higher_order; Fivm.Maintainer.First_order ]

(* ----------------------------------------------------------------- fig5 *)

(* Figure 5: number of aggregates per batch. *)
let fig5 () =
  header "Figure 5: aggregate batch sizes"
    "covar 937/157/730/3299, node 3150/273/1392/4299, MI 56/106/172/254, k-means 44/19/38/92";
  let ds = datasets ~s:(Stdlib.min scale 0.3) () in
  Printf.printf "%-16s" "workload";
  List.iter (fun d -> Printf.printf " %10s" d.dname) ds;
  Printf.printf "\n";
  let row name count =
    Printf.printf "%-16s" name;
    List.iter (fun d -> Printf.printf " %10d" (count d)) ds;
    Printf.printf "\n%!"
  in
  row "Covar. matrix" (fun d ->
      Aggregates.Batch.size (Aggregates.Batch.covariance d.features));
  row "Decision node" (fun d ->
      Aggregates.Batch.size (Aggregates.Batch.decision_node d.features));
  row "Mutual inf." (fun d ->
      Aggregates.Batch.size (Aggregates.Batch.mutual_information d.mi_attrs));
  row "k-means" (fun d -> Aggregates.Batch.size (Aggregates.Batch.kmeans d.features))

(* ----------------------------------------------------------------- fig6 *)

(* Figure 6: the code-optimisation ladder. *)
let fig6 () =
  header "Figure 6: LMFAO code optimisations vs AC/DC-style baseline"
    "cumulative speedups up to ~128x from specialisation + sharing + parallelism";
  Printf.printf "%-10s | %-38s %12s %9s\n" "dataset" "stage" "time" "speedup";
  List.iter
    (fun d ->
      let features = d.ivm_features in
      let baseline = ref None in
      List.iter
        (fun (stage_name, stage) ->
          let t =
            Util.Timing.measure ~repeats:1 (fun () -> stage d.db ~features)
          in
          let base =
            match !baseline with
            | None ->
                baseline := Some t;
                t
            | Some b -> b
          in
          Printf.printf "%-10s | %-38s %12s %9s\n%!" d.dname stage_name
            (Util.Timing.to_string t) (pct (base /. t));
          record ~entry:"fig6"
            ~engine:(Printf.sprintf "%s-%s" d.dname stage_name)
            t)
        Baseline.Acdc.stages;
      Printf.printf "\n%!")
    (datasets ~s:(4.0 *. scale) ())

(* ---------------------------------------------------------------- fsize *)

(* Section 1.2 footnote: factorised vs flat join size. *)
let fsize () =
  header "Footnote 1: factorised vs flat representation size (retailer)"
    "factorised join 26x smaller / flat join 10x larger than the input";
  let db = Datagen.Retailer.generate ~scale:(0.05 *. scale) ~seed () in
  let rels = Relational.Database.relations db in
  let order = Factorized.Var_order.of_relations rels in
  let frep = Factorized.Fjoin.factorize rels order in
  let join = Relational.Database.materialise_join db in
  let input = Relational.Database.total_value_count db in
  let flat = Relational.Relation.value_count join in
  let fact = Factorized.Frep.value_count frep in
  Printf.printf "input values:        %10d\n" input;
  Printf.printf "flat join values:    %10d  (%.1fx input; paper ~10x)\n" flat
    (float_of_int flat /. float_of_int input);
  Printf.printf "factorised values:   %10d  (%.1fx smaller than input; paper ~26x)\n"
    fact
    (float_of_int input /. float_of_int fact);
  Printf.printf "flat/factorised:     %10.1fx\n%!"
    (float_of_int flat /. float_of_int fact)

(* ---------------------------------------------------------------- reuse *)

(* Section 1.5: model selection reusing one covariance matrix. *)
let reuse () =
  header "Section 1.5: model reuse (many models from one covariance matrix)"
    "retrain per feature subset in ~50ms vs a full learner scan per model";
  let db = Datagen.Retailer.generate ~scale:(0.1 *. scale) ~seed () in
  let features = Datagen.Retailer.features in
  let batch = Aggregates.Batch.covariance features in
  let table, t_batch =
    Util.Timing.time (fun () ->
        Lazy.force (Lmfao.Engine.eval db batch).Lmfao.Engine.table)
  in
  let moment = Ml.Moment.of_batch features (Hashtbl.find table) in
  let (best, trail), t_select =
    Util.Timing.time (fun () ->
        Ml.Model_selection.forward_selection ~max_features:10 moment)
  in
  (* forward selection evaluates |pool| candidate models per greedy round *)
  let models_tried =
    (List.length trail - 1) * (Ml.Moment.width moment - 2)
    |> Stdlib.max (List.length trail)
  in
  (* agnostic comparison: ONE end-to-end retrain *)
  let t_agnostic =
    Baseline.Agnostic.total_seconds (Baseline.Agnostic.run db features)
  in
  Printf.printf "covariance batch (once):        %s\n" (Util.Timing.to_string t_batch);
  Printf.printf "models evaluated from moments:  %d in %s (%s each)\n" models_tried
    (Util.Timing.to_string t_select)
    (Util.Timing.to_string (t_select /. float_of_int (Stdlib.max 1 models_tried)));
  Printf.printf "best subset: %s (mse %.3f)\n" (String.concat ", " best.columns)
    best.mse;
  Printf.printf "agnostic pipeline per model:    %s  (%.0fx more per candidate)\n%!"
    (Util.Timing.to_string t_agnostic)
    (t_agnostic /. (t_select /. float_of_int (Stdlib.max 1 models_tried)))

(* ----------------------------------------------------------------- ifaq *)

(* Figure 11: the IFAQ pipeline, measured by interpreter operation counts. *)
let ifaq () =
  header "Figure 11: IFAQ transformation pipeline (operation counts)"
    "each stage preserves semantics while reducing work";
  let relations = Ifaq.Gd_example.relations ~n_s:300 ~n_keys:12 ~seed () in
  Printf.printf "%-55s %12s %12s %10s\n" "stage" "arith" "dict ops" "loops";
  List.iter
    (fun (name, program) ->
      let _, c = Ifaq.Interp.run ~relations program in
      Printf.printf "%-55s %12d %12d %10d\n%!" name c.Ifaq.Interp.arith
        c.Ifaq.Interp.dict_ops c.Ifaq.Interp.iterations)
    (Ifaq.Gd_example.all_stages ());
  (* Section 5.3 data layout: the same dictionary workload on the three
     physical layouts ("each of them show advantages for different
     workloads") *)
  let rng = Util.Prng.create seed in
  Printf.printf "\ndictionary layouts (1M contributions over 100K keys, 200K probes):\n";
  Printf.printf "%-16s %12s %12s\n" "layout" "build" "probe+scan";
  let entries =
    Array.init 1_000_000 (fun _ ->
        (Util.Prng.int rng 100_000, Util.Prng.float rng 1.0))
  in
  let probes = Array.init 200_000 (fun _ -> Util.Prng.int rng 120_000) in
  List.iter
    (fun (module D : Ifaq.Dict_layout.DICT) ->
      let _, build, probe = Ifaq.Dict_layout.workload (module D) ~entries ~probes in
      Printf.printf "%-16s %12s %12s\n%!"
        (Ifaq.Dict_layout.layout_name D.layout)
        (Util.Timing.to_string build) (Util.Timing.to_string probe))
    Ifaq.Dict_layout.all

(* ----------------------------------------------------------------- ineq *)

(* Section 2.3: additive-inequality aggregates, new algorithm vs scan. *)
let ineq () =
  header "Section 2.3: additive-inequality aggregates (sort+sweep vs naive scan)"
    "the new algorithms need polynomially less time than per-tuple checking";
  let rng = Util.Prng.create seed in
  Printf.printf "%-10s %12s %12s %9s\n" "n" "naive" "sort+sweep" "speedup";
  List.iter
    (fun n ->
      let side () =
        Array.init n (fun _ ->
            (Util.Prng.float_range rng 0.0 100.0, Util.Prng.float_range rng 0.0 1.0))
      in
      let left = side () and right = side () in
      let t_naive =
        Util.Timing.measure ~repeats:1 (fun () ->
            Ml.Inequality.naive_sum_pairs left right ~threshold:100.0)
      in
      let t_fast =
        Util.Timing.measure ~repeats:1 (fun () ->
            Ml.Inequality.fast_sum_pairs left right ~threshold:100.0)
      in
      Printf.printf "%-10d %12s %12s %9s\n%!" n
        (Util.Timing.to_string t_naive)
        (Util.Timing.to_string t_fast)
        (pct (t_naive /. t_fast)))
    [ 500; 2000; 8000 ]

(* ---------------------------------------------------------------- micro *)

(* Bechamel micro-benchmarks: one kernel per table/figure. *)
let micro () =
  header "Bechamel micro-kernels (one per figure)" "";
  let open Bechamel in
  let db = Datagen.Retailer.generate ~scale:0.01 ~seed () in
  let features = Datagen.Retailer.ivm_features in
  let rels = Relational.Database.relations db in
  let order = Factorized.Var_order.of_relations rels in
  let cov_batch = Aggregates.Batch.covariance Datagen.Retailer.features in
  let task = Fivm.Cov_task.make db ~features in
  let dim = List.length features in
  let stream = Array.of_list (Datagen.Stream_gen.inserts_of_database db) in
  let tests =
    [
      Test.make ~name:"fig3: lmfao covariance batch (retailer)"
        (Staged.stage (fun () -> ignore (Lmfao.Engine.eval db cov_batch)));
      Test.make ~name:"fig4l: one unshared aggregate scan"
        (let join = Relational.Database.materialise_join db in
         let spec = List.hd cov_batch.Aggregates.Batch.aggregates in
         Staged.stage (fun () -> ignore (Aggregates.Spec.eval_flat join spec)));
      Test.make ~name:"fig4r: f-ivm 100-insert burst"
        (Staged.stage (fun () ->
             let m = Fivm.Maintainer.create Fivm.Maintainer.F_ivm db ~features in
             for i = 0 to Stdlib.min 99 (Array.length stream - 1) do
               Fivm.Maintainer.apply m stream.(i)
             done));
      Test.make ~name:"fig5: covariance batch synthesis"
        (Staged.stage (fun () ->
             ignore (Aggregates.Batch.covariance Datagen.Retailer.features)));
      Test.make ~name:"fig6: covariance ring product"
        (let a = Rings.Covariance.of_tuple (Array.init dim float_of_int) in
         let b =
           Rings.Covariance.of_tuple (Array.init dim (fun i -> float_of_int (i + 1)))
         in
         Staged.stage (fun () -> ignore (Rings.Covariance.mul a b)));
      Test.make ~name:"fsize: factorised count (retailer)"
        (Staged.stage (fun () -> ignore (Factorized.Fjoin.count rels order)));
      Test.make ~name:"fig11: ifaq specialised stage eval"
        (let relations = Ifaq.Gd_example.relations ~n_s:50 ~n_keys:6 ~seed () in
         let program = snd (List.nth (Ifaq.Gd_example.all_stages ()) 3) in
         Staged.stage (fun () -> ignore (Ifaq.Interp.run ~relations program)));
      Test.make ~name:"s1.5: model re-solve from moments"
        (let table = Lazy.force (Lmfao.Engine.eval db cov_batch).Lmfao.Engine.table in
         let moment =
           Ml.Moment.of_batch Datagen.Retailer.features (Hashtbl.find table)
         in
         Staged.stage (fun () ->
             ignore
               (Ml.Linreg.train ~method_:Ml.Linreg.Closed_form
                  Datagen.Retailer.features moment)));
      Test.make ~name:"fig10: cov-task tuple lift"
        (let rel = List.hd rels in
         let t = Relational.Relation.get rel 0 in
         let name = Relational.Relation.name rel in
         Staged.stage (fun () -> ignore (Fivm.Cov_task.lift_cov task name t)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name wall ->
          let estimate =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              instance wall
          in
          match Analyze.OLS.estimates estimate with
          | Some [ t ] ->
              Printf.printf "%-55s %12s/run\n%!" name
                (Util.Timing.to_string (t *. 1e-9))
          | _ -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    tests

(* --------------------------------------------------------------- ablate *)

(* Ablations of the design choices DESIGN.md calls out: LMFAO's sharing,
   multi-root decomposition and parallelism, and the factorised engine's
   subtree caching. *)
let ablate () =
  header "Ablations: LMFAO engine options and factorised-join caching" "";
  let db = Datagen.Retailer.generate ~scale:(0.2 *. scale) ~seed () in
  let batch = Aggregates.Batch.covariance Datagen.Retailer.features in
  Printf.printf "LMFAO covariance batch (%d aggregates, %d input tuples):\n"
    (Aggregates.Batch.size batch)
    (Relational.Database.total_cardinality db);
  let d = Lmfao.Engine.default_options in
  List.iter
    (fun (name, options) ->
      let r, t =
        Util.Timing.time (fun () -> Lmfao.Engine.eval ~options db batch)
      in
      let stats = r.Lmfao.Engine.stats in
      Printf.printf "  %-28s %10s  (%4d views, %6d partials, %6d shared away)\n%!"
        name (Util.Timing.to_string t) stats.Lmfao.Engine.views
        stats.Lmfao.Engine.partials stats.Lmfao.Engine.shared_away)
    [
      ("default", d);
      ("- sharing", { d with share = false });
      ("- multi-root", { d with multi_root = false });
      ("- sharing - multi-root", { d with share = false; multi_root = false });
      ("+ parallel", { d with parallel = true; chunk_threshold = 2048 });
    ];
  (* factorised join subtree caching: pays on many-to-many joins where a
     subtree (here: an item's price) is shared across branches (here:
     dishes), the paper's Figure 8 situation scaled up *)
  let rng = Util.Prng.create seed in
  let open Relational in
  let orders =
    Relation.create "Orders"
      (Schema.make [ ("customer", Value.TInt); ("dish", Value.TInt) ])
  in
  for _ = 1 to 20_000 do
    Relation.append orders
      [| Value.Int (Util.Prng.int rng 500); Value.Int (Util.Prng.int rng 200) |]
  done;
  let dish = Relation.create "Dish" (Schema.make [ ("dish", Value.TInt); ("item", Value.TInt) ]) in
  for d = 0 to 199 do
    for _ = 1 to 8 do
      Relation.append dish [| Value.Int d; Value.Int (Util.Prng.int rng 60) |]
    done
  done;
  let items = Relation.create "Items" (Schema.make [ ("item", Value.TInt); ("price", Value.TFloat) ]) in
  for i = 0 to 59 do
    Relation.append items [| Value.Int i; Value.Float (Util.Prng.float_range rng 1.0 9.0) |]
  done;
  let rels = [ orders; dish; items ] in
  let order = Factorized.Var_order.of_relations rels in
  let t_cached =
    Util.Timing.measure ~repeats:1 (fun () ->
        Factorized.Fjoin.sum_product ~cache:true rels order ~vars:[ "price" ])
  in
  let t_uncached =
    Util.Timing.measure ~repeats:1 (fun () ->
        Factorized.Fjoin.sum_product ~cache:false rels order ~vars:[ "price" ])
  in
  Printf.printf
    "\nfactorised SUM(price) over a many-to-many join (Fig. 8 shape, 20K orders):\n\
    \  cached %s vs uncached %s (%s)\n%!"
    (Util.Timing.to_string t_cached)
    (Util.Timing.to_string t_uncached)
    (pct (t_uncached /. t_cached))

(* ----------------------------------------------------------------- wcoj *)

(* Section 3.2: worst-case optimal joins and their incremental cousin.
   Triangle counting on a random graph: the WCOJ engine vs the classical
   binary-join plan (materialise R |><| S, then join T), whose intermediate
   result blows past the AGM bound; plus the update-time maintenance of the
   triangle count ([36, 37]). *)
let wcoj () =
  header "Section 3.2: worst-case optimal joins (triangle query)"
    "WCOJ runs within the AGM bound; binary plans materialise a quadratic intermediate";
  let open Relational in
  let rng = Util.Prng.create seed in
  Printf.printf "%-12s %10s | %12s %12s %9s | %14s\n" "edges" "triangles" "wcoj"
    "binary-join" "speedup" "intermediate";
  List.iter
    (fun m ->
      let domain = int_of_float (sqrt (float_of_int m) *. 2.0) in
      let mk name (a1, a2) =
        let r =
          Relation.create name (Schema.make [ (a1, Value.TInt); (a2, Value.TInt) ])
        in
        for _ = 1 to m do
          Relation.append r
            [| Value.Int (Util.Prng.int rng domain); Value.Int (Util.Prng.int rng domain) |]
        done;
        r
      in
      let r = mk "R" ("a", "b") and s = mk "S" ("b", "c") and t = mk "T" ("c", "a") in
      let count = ref 0 in
      let t_wcoj =
        Util.Timing.measure ~repeats:1 (fun () ->
            count := Factorized.Wcoj.count [ r; s; t ])
      in
      let intermediate = ref 0 in
      let t_binary =
        Util.Timing.measure ~repeats:1 (fun () ->
            let rs = Ops.natural_join r s in
            intermediate := Relation.cardinality rs;
            Relation.cardinality (Ops.natural_join rs t))
      in
      Printf.printf "%-12d %10d | %12s %12s %9s | %14d\n%!" m !count
        (Util.Timing.to_string t_wcoj)
        (Util.Timing.to_string t_binary)
        (pct (t_binary /. t_wcoj))
        !intermediate;
      record ~entry:"wcoj" ~engine:(Printf.sprintf "wcoj-%d" m) t_wcoj;
      record ~entry:"wcoj" ~engine:(Printf.sprintf "binary-join-%d" m) t_binary)
    [ 2_000; 8_000; 32_000 ];
  (* maintenance under updates *)
  let g = Fivm.Triangle.create () in
  let n_updates = 30_000 in
  let domain = 300 in
  let t_maintain =
    Util.Timing.measure ~repeats:1 (fun () ->
        for _ = 1 to n_updates do
          let which =
            [| Fivm.Triangle.R; Fivm.Triangle.S; Fivm.Triangle.T |]
              .(Util.Prng.int rng 3)
          in
          Fivm.Triangle.update g which
            ~x:(Value.Int (Util.Prng.int rng domain))
            ~y:(Value.Int (Util.Prng.int rng domain))
            1
        done)
  in
  Printf.printf
    "\ntriangle maintenance: %d edge inserts in %s (%.0f updates/s; final count %d,\n\
     recomputed %d)\n%!"
    n_updates
    (Util.Timing.to_string t_maintain)
    (float_of_int n_updates /. t_maintain)
    (Fivm.Triangle.count g) (Fivm.Triangle.recompute g)

(* ------------------------------------------------------------- recovery *)

(* Recovery time vs checkpoint cadence: how long until the maintainer
   answers again after a crash, from (a) a cold rebuild of the whole stream,
   (b) checkpoint + WAL-tail replay at several cadences. The trade-off is
   the classical one: frequent checkpoints cost steady-state throughput and
   buy short recovery (small WAL tail), and vice versa. *)
let recovery () =
  header "Recovery time: checkpoint + WAL-tail replay vs cold rebuild" "";
  let db = Datagen.Retailer.generate ~scale:(0.05 *. scale) ~seed () in
  let features = Datagen.Retailer.ivm_features in
  let stream = Array.of_list (Datagen.Stream_gen.inserts_of_database db) in
  let n = Array.length stream in
  let make () = Fivm.Maintainer.create Fivm.Maintainer.F_ivm db ~features in
  Printf.printf "stream: %d inserts (F-IVM, retailer)\n" n;
  (* cold rebuild reference: re-apply the whole stream *)
  let t_cold =
    Util.Timing.measure ~repeats:1 (fun () ->
        let m = make () in
        Array.iter (Fivm.Maintainer.apply m) stream)
  in
  Printf.printf "%-28s %12s %12s %14s\n" "configuration" "ingest" "recovery"
    "vs cold";
  Printf.printf "%-28s %12s %12s %14s\n" "cold rebuild (no WAL)" "--"
    (Util.Timing.to_string t_cold) "1.0x";
  record ~entry:"recovery" ~engine:"cold-rebuild" t_cold;
  List.iter
    (fun checkpoint_every ->
      let dir = Filename.temp_dir "borg-recovery" "" in
      let cleanup () =
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      in
      Fun.protect ~finally:cleanup @@ fun () ->
      let cfg = Resilience.Driver.config ~checkpoint_every dir in
      let d = Resilience.Driver.create cfg make in
      let t_ingest =
        Util.Timing.measure ~repeats:1 (fun () ->
            Array.iter (fun u -> ignore (Resilience.Driver.submit d u)) stream)
      in
      (* simulate the crash: abandon [d] and recover purely from disk *)
      let t_recover =
        Util.Timing.measure ~repeats:1 (fun () ->
            ignore (Resilience.Driver.create cfg make))
      in
      let label = Printf.sprintf "checkpoint every %d" checkpoint_every in
      Printf.printf "%-28s %12s %12s %14s\n%!" label
        (Util.Timing.to_string t_ingest)
        (Util.Timing.to_string t_recover)
        (pct (t_cold /. t_recover));
      record ~entry:"recovery"
        ~engine:(Printf.sprintf "ckpt-%d-ingest" checkpoint_every)
        t_ingest;
      record ~entry:"recovery"
        ~engine:(Printf.sprintf "ckpt-%d-recover" checkpoint_every)
        t_recover)
    [ 100; 1000; 10000 ]

(* -------------------------------------------------------------- engines *)

(* The engine facade: every Engine_intf implementation on the same batch,
   through the one entry point the CLI uses (borg agg --engine). *)
let engines () =
  header "Engine facade: one covariance batch through every Engine_intf engine" "";
  let db = Datagen.Retailer.generate ~scale:(0.1 *. scale) ~seed () in
  let batch = Aggregates.Batch.covariance Datagen.Retailer.features in
  Printf.printf "batch: %d aggregates, %d input tuples\n"
    (Aggregates.Batch.size batch)
    (Relational.Database.total_cardinality db);
  List.iter
    (fun e ->
      let results, t =
        Util.Timing.time (fun () -> Aggregates.Engine_intf.eval e db batch)
      in
      Printf.printf "  %-10s %10s  (%d aggregates; %s)\n%!"
        (Aggregates.Engine_intf.name e)
        (Util.Timing.to_string t) (List.length results)
        (Aggregates.Engine_intf.description e);
      record ~entry:"engines" ~engine:(Aggregates.Engine_intf.name e) t)
    [
      (module Lmfao.Engine : Aggregates.Engine_intf.S);
      (module Compile.Engine);
      (module Baseline.Agnostic);
      (module Baseline.Unshared.Dbx);
      (module Baseline.Unshared.Monet);
    ]

(* ---------------------------------------------------------------- shard *)

(* Sharded maintenance scaling: the retailer insert stream hash-partitioned
   into N shards (Fivm.Shard). Wall time reflects this machine's core
   count; "critical path" runs every shard alone (~domains:1) and takes the
   slowest shard's apply time — the delta-application makespan an idle
   N-core machine would see. Merge time is the canonical shard-order fold
   of the per-shard covariances. *)
let shard () =
  header "Sharded F-IVM maintenance: shard-count scaling (retailer stream)" "";
  let db = Datagen.Retailer.generate ~scale ~seed () in
  let features = Datagen.Retailer.ivm_features in
  let stream = Datagen.Stream_gen.inserts_of_database db in
  Printf.printf "stream: %d inserts (F-IVM); partition attribute: %s; %d domains\n"
    (List.length stream)
    (Fivm.Shard.plan_attr (Fivm.Shard.plan ~shards:1 db))
    (Util.Pool.num_domains ());
  Printf.printf "%-8s %12s %14s %10s %16s\n" "shards" "wall" "critical path"
    "merge" "speedup (crit)";
  let base = ref nan in
  List.iter
    (fun shards ->
      let sh_wall = Fivm.Shard.create Fivm.Maintainer.F_ivm db ~features ~shards in
      let t_wall =
        Util.Timing.measure ~repeats:1 (fun () ->
            Fivm.Shard.apply_batch sh_wall stream)
      in
      let sh_crit = Fivm.Shard.create Fivm.Maintainer.F_ivm db ~features ~shards in
      Fivm.Shard.apply_batch ~domains:1 sh_crit stream;
      let t_crit =
        Array.fold_left Stdlib.max 0.0 (Fivm.Shard.shard_seconds sh_crit)
      in
      let _, t_merge =
        Util.Timing.time (fun () -> ignore (Fivm.Shard.covariance sh_crit))
      in
      if shards = 1 then base := t_crit;
      Printf.printf "%-8d %12s %14s %10s %16s\n%!" shards
        (Util.Timing.to_string t_wall)
        (Util.Timing.to_string t_crit)
        (Util.Timing.to_string t_merge)
        (pct (!base /. t_crit));
      record ~entry:"shard" ~engine:(Printf.sprintf "n%d-wall" shards) t_wall;
      record ~entry:"shard" ~engine:(Printf.sprintf "n%d-critical" shards) t_crit;
      record ~entry:"shard" ~engine:(Printf.sprintf "n%d-merge" shards) t_merge)
    [ 1; 2; 4; 8 ]

(* ---------------------------------------------------------------- serve *)

(* Serving-layer cache economics: the numeric covariance batch over the
   retailer stream, answered (a) cold by Lmfao.Engine.eval over the current
   contents, (b) by the epoch-cached hit path, (c) re-served right after a
   delta round refreshed the entry in place. The headline number is the
   hit/cold ratio — the whole point of the cache is that repeated traffic
   stops paying for LMFAO's decomposition. *)
let serve_bench () =
  header "Serving: epoch-cached hits vs cold LMFAO recompute (retailer)" "";
  let db = Datagen.Retailer.generate ~scale ~seed () in
  let features = Datagen.Retailer.ivm_features in
  let stream = Array.of_list (Datagen.Stream_gen.inserts_of_database db) in
  let n = Array.length stream in
  let initial = n * 9 / 10 in
  let seg lo len = Array.to_list (Array.sub stream lo len) in
  let srv = Serve.create Fivm.Maintainer.F_ivm db ~features in
  let t_load =
    Util.Timing.measure ~repeats:1 (fun () ->
        Serve.apply_deltas srv (seg 0 initial))
  in
  let batch = Aggregates.Batch.covariance_numeric features in
  Printf.printf "stream: %d inserts loaded in %s; batch: %d aggregates\n" initial
    (Util.Timing.to_string t_load)
    (Aggregates.Batch.size batch);
  let dbnow = Serve.snapshot srv in
  let t_cold =
    Util.Timing.measure ~repeats:3 (fun () ->
        ignore (Lmfao.Engine.eval ~on_cyclic:`Materialize dbnow batch))
  in
  ignore (Serve.serve srv batch);
  let t_hit =
    Util.Timing.measure ~repeats:100 (fun () -> ignore (Serve.serve srv batch))
  in
  let t_refresh =
    Util.Timing.measure ~repeats:3 (fun () ->
        Serve.apply_deltas srv (seg initial 8))
  in
  let t_hit_after =
    Util.Timing.measure ~repeats:100 (fun () -> ignore (Serve.serve srv batch))
  in
  let s = Serve.stats srv in
  Printf.printf "%-34s %12s %14s\n" "path" "time" "vs cold";
  Printf.printf "%-34s %12s %14s\n" "cold Lmfao.Engine.eval"
    (Util.Timing.to_string t_cold) "1.0x";
  Printf.printf "%-34s %12s %14s\n" "cache hit"
    (Util.Timing.to_string t_hit)
    (pct (t_cold /. t_hit));
  Printf.printf "%-34s %12s %14s\n" "8-update delta round (refresh)"
    (Util.Timing.to_string t_refresh)
    (pct (t_cold /. t_refresh));
  Printf.printf "%-34s %12s %14s\n" "hit after refresh"
    (Util.Timing.to_string t_hit_after)
    (pct (t_cold /. t_hit_after));
  Printf.printf
    "stats: %d hits, %d misses, %d refreshes, %d invalidations (epoch %d)\n%!"
    s.Serve.hits s.Serve.misses s.Serve.refreshes s.Serve.invalidations
    (Serve.epoch srv);
  record ~entry:"serve" ~engine:"cold-eval" t_cold;
  record ~entry:"serve" ~engine:"cache-hit" t_hit;
  record ~entry:"serve" ~engine:"delta-refresh" t_refresh;
  record ~entry:"serve" ~engine:"hit-after-refresh" t_hit_after

(* ---------------------------------------------------------------- learn *)

(* Online model maintenance economics (Section 1.5): after a delta round,
   how expensive is keeping a served model fresh? Three rungs on the
   retailer stream: (a) the aggregate refresh itself (the 8-update delta
   round through the maintainer), (b) a warm model refresh — moment assembly
   from the maintained triple + warm-started CG, data-size-independent, (c)
   a cold retrain — recompute the covariance batch over the current contents
   with LMFAO, then solve from scratch. The claim: (b) rides along with (a)
   at negligible extra cost, while (c) pays a full data pass per refresh. *)
let learn_bench () =
  header "Online learning: warm model refresh vs cold retrain (retailer)"
    "refreshing a maintained model costs O(d^2), not a data pass";
  let db = Datagen.Retailer.generate ~scale ~seed () in
  let features = Datagen.Retailer.ivm_features in
  let response = "inventoryunits" in
  let stream = Array.of_list (Datagen.Stream_gen.inserts_of_database db) in
  let n = Array.length stream in
  let initial = n * 9 / 10 in
  let seg lo len = Array.to_list (Array.sub stream lo len) in
  let srv = Serve.create Fivm.Maintainer.F_ivm db ~features in
  Serve.apply_deltas srv (seg 0 initial);
  (* register with an infinite staleness budget so apply_deltas leaves the
     model alone and each rung can be timed in isolation *)
  let spec = Ml.Models.find_exn "linreg-cg" in
  let mname =
    Serve.Model.register srv ~max_staleness:max_int spec ~response
  in
  (* [measure]'s warmup would consume the delta segment and leave the model
     current (a no-op refresh), so time each stale->fresh cycle exactly once
     per round and take medians *)
  let median l =
    let a = Array.of_list (List.sort compare l) in
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
  in
  let samples =
    List.init 5 (fun r ->
        let t_agg =
          Util.Timing.time_only (fun () ->
              Serve.apply_deltas srv (seg (initial + (8 * r)) 8))
        in
        let t_model =
          Util.Timing.time_only (fun () -> Serve.Model.refresh srv mname)
        in
        (t_agg, t_model))
  in
  let t_agg = median (List.map fst samples) in
  let t_model = median (List.map snd samples) in
  (* cold retrain: statistics recomputed over the current contents, solve
     from scratch — what serving would pay without the maintained triple *)
  let feature =
    Aggregates.Feature.make ~response
      ~continuous:(List.filter (fun x -> x <> response) features)
      ~categorical:[] ()
  in
  let dbnow = Serve.snapshot srv in
  let cold =
    Ml.Model_intf.timed_fit (module Ml.Linreg.Model) dbnow feature
  in
  let t_cold = cold.stats_seconds +. cold.solve_seconds in
  Printf.printf "stream: %d inserts loaded; %d features, response %s\n" initial
    (List.length features) response;
  Printf.printf "%-34s %12s %14s\n" "path" "time" "vs cold retrain";
  Printf.printf "%-34s %12s %14s\n" "aggregate refresh (8-update round)"
    (Util.Timing.to_string t_agg) (pct (t_cold /. t_agg));
  Printf.printf "%-34s %12s %14s\n" "warm model refresh (from triple)"
    (Util.Timing.to_string t_model)
    (pct (t_cold /. t_model));
  Printf.printf "%-34s %12s %14s\n" "cold retrain (stats + solve)"
    (Util.Timing.to_string t_cold) "1.0x";
  Printf.printf
    "model refresh / aggregate refresh: %.2fx (epoch %d, model epoch %d)\n%!"
    (t_model /. t_agg) (Serve.epoch srv)
    (Serve.Model.epoch_of srv mname);
  record ~entry:"learn" ~engine:"aggregate-refresh" t_agg;
  record ~entry:"learn" ~engine:"model-refresh-warm" t_model;
  record ~entry:"learn" ~engine:"cold-retrain-stats" cold.stats_seconds;
  record ~entry:"learn" ~engine:"cold-retrain-solve" cold.solve_seconds;
  record ~entry:"learn" ~engine:"cold-retrain-total" t_cold

(* -------------------------------------------------------------- traffic *)

(* Tail latency vs offered load through the admission-controlled frontier:
   open-loop Poisson/Zipf traffic (Traffic.Workload) against Serve.Admission
   on the exact-arithmetic lattice schema, swept over lanes x load
   multiplier. The shape to reproduce is the classical hockey stick: below
   capacity the deadline never binds and everything is admitted fresh; past
   capacity the queueing-delay gate trips and the p99 stays bounded because
   excess requests degrade to stale answers instead of queueing without
   limit. Lane count is a driver parameter, so one process sweeps 1/4/8
   lanes regardless of BORG_DOMAINS. *)
let traffic_bench () =
  header "Traffic: tail latency vs offered load under admission control"
    "overload degrades to explicit staleness; tails stay bounded";
  let open Relational in
  let star_db () =
    Database.create "lattice"
      [
        Relation.create "F"
          (Schema.make
             [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
        Relation.create "D1"
          (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
        Relation.create "D2"
          (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
      ]
  in
  let lattice_updates rng n =
    let value rng = float_of_int (1 + Util.Prng.int rng 64) /. 16.0 in
    let iv n = Value.Int n and fv x = Value.Float x in
    List.init n (fun _ ->
        let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
        let tuple =
          match rel with
          | "F" ->
              [| iv (Util.Prng.int rng 4); iv (Util.Prng.int rng 4);
                 fv (value rng) |]
          | _ -> [| iv (Util.Prng.int rng 4); fv (value rng) |]
        in
        Fivm.Delta.insert rel tuple)
  in
  let features = [ "m"; "u"; "v" ] in
  let catalog =
    [|
      Aggregates.Batch.covariance_numeric features;
      Aggregates.Batch.mutual_information [ "a"; "b" ];
      {
        Aggregates.Batch.name = "grouped";
        aggregates =
          [
            Aggregates.Spec.make ~id:"sum_m_by_a" ~terms:[ ("m", 1) ]
              ~group_by:[ "a" ] ();
            Aggregates.Spec.count ~id:"n";
          ];
      };
    |]
  in
  (* per-request hit and miss costs on this machine, probed once on a warmed
     server: the offered rate scales with the hit cost (the capacity the
     cache is supposed to deliver), but the gate and deadline must absorb
     the occasional post-delta cold recompute, which is orders of magnitude
     dearer *)
  let t_hit, t_miss =
    let srv = Serve.create Fivm.Maintainer.F_ivm (star_db ()) ~features in
    Serve.apply_deltas srv
      (lattice_updates (Util.Prng.create seed) 300);
    let t_miss =
      Float.max 1e-6
        (Util.Timing.measure ~repeats:3 (fun () ->
             Array.iter
               (fun b ->
                 ignore
                   (Lmfao.Engine.eval ~on_cyclic:`Materialize
                      (Serve.snapshot srv) b))
               catalog)
        /. float_of_int (Array.length catalog))
    in
    Array.iter (fun b -> ignore (Serve.serve srv b)) catalog;
    let t_hit =
      Float.max 1e-8
        (Util.Timing.measure ~repeats:50 (fun () ->
             Array.iter (fun b -> ignore (Serve.serve srv b)) catalog)
        /. float_of_int (Array.length catalog))
    in
    (t_hit, t_miss)
  in
  (* every cell spans the same virtual window, long enough that the
     single-writer flush stalls (four delta batches in two flushes, each a
     few hundred us of measured apply time) are a small tax rather than the
     whole story; the request count then follows from the offered rate *)
  let duration = 0.01 *. Float.max 1.0 scale in
  Printf.printf
    "hit cost %s, miss cost %s; %.0fms virtual window per cell; open-loop \
     Poisson, Zipf 1.2\n"
    (Util.Timing.to_string t_hit)
    (Util.Timing.to_string t_miss)
    (duration *. 1e3);
  Printf.printf "%-6s %-6s | %8s %8s %8s %8s | %10s %10s %10s\n" "lanes"
    "load" "offered" "admit" "shed" "timeout" "p50" "p99" "max";
  let total = ref 0 in
  List.iter
    (fun lanes ->
      List.iter
        (fun mult ->
          let srv =
            Serve.create Fivm.Maintainer.F_ivm (star_db ()) ~features
          in
          Serve.apply_deltas srv
            (lattice_updates (Util.Prng.create seed) 300);
          let read_rate = mult *. float_of_int lanes /. t_hit in
          let spec =
            Traffic.Workload.spec ~seed ~duration ~read_rate
              ~delta_rate:(4.0 /. duration) ~delta_batch:8 ~tenants:4
              ~batch_skew:1.2 ~tenant_skew:1.2 ()
          in
          let events =
            Traffic.Workload.generate spec
              ~catalog:(Array.length catalog)
              ~make_updates:lattice_updates
          in
          (* generous quotas: the bench isolates the queueing-delay gate
             (the CLI exercises the per-tenant buckets); the gate absorbs a
             few cold recomputes before shedding *)
          let cfg =
            Serve.Admission.config ~tenant_rate:read_rate ~tenant_burst:256.0
              ~gate_delay:(Float.max (200.0 *. t_hit) (4.0 *. t_miss))
              ~deadline:(Float.max (1000.0 *. t_hit) (20.0 *. t_miss))
              ~seed ()
          in
          let adm = Serve.Admission.create cfg srv in
          let r =
            Traffic.Driver.run ~lanes ~flush_interval:(duration /. 2.0) adm
              ~catalog ~events
          in
          total := !total + r.Traffic.Driver.offered;
          Printf.printf "%-6d %-6s | %8d %8d %8d %8d | %10s %10s %10s\n%!"
            lanes
            (Printf.sprintf "%.1fx" mult)
            r.Traffic.Driver.offered r.Traffic.Driver.admitted
            r.Traffic.Driver.shed r.Traffic.Driver.timeout
            (Util.Timing.to_string r.Traffic.Driver.p50)
            (Util.Timing.to_string r.Traffic.Driver.p99)
            (Util.Timing.to_string r.Traffic.Driver.max_latency);
          let tag q = Printf.sprintf "l%d-x%.1f-%s" lanes mult q in
          record ~entry:"traffic" ~engine:(tag "p50") r.Traffic.Driver.p50;
          record ~entry:"traffic" ~engine:(tag "p99") r.Traffic.Driver.p99;
          record ~entry:"traffic"
            ~engine:(tag "admitted-frac")
            (float_of_int r.Traffic.Driver.admitted
            /. float_of_int (Stdlib.max 1 r.Traffic.Driver.offered)))
        [ 0.5; 2.0; 8.0 ])
    [ 1; 4; 8 ];
  Printf.printf "total simulated requests: %d\n%!" !total

(* ------------------------------------------------------------ outofcore *)

(* ROADMAP item 3: the fig3 covariance batch over the paged columnar store.
   Every relation is imported into `.pages` files and the engines scan them
   through a FIXED page-cache budget, so the resident working set stays
   flat while the dataset grows — the out-of-core property, gauge-verified:
   at every scale the bench asserts store.cache_pages_peak <= budget and
   that paged results are BIT-IDENTICAL to in-memory execution (both the
   LMFAO interpreter and the staged-compiled engine).

   Scales are ABSOLUTE ({0.1, 0.5, 1.0}, seed fixed), deliberately ignoring
   BORG_SCALE: the committed crossover table must mean the same thing on
   every machine. Scale 1.0 is the repo's full retailer (84K Inventory
   rows, 1/1000 of the paper's 84M — the shape, not the wall-clock). *)

let results_bit_equal (a : (string * Aggregates.Spec.result) list)
    (b : (string * Aggregates.Spec.result) list) =
  let bits = Int64.bits_of_float in
  List.length a = List.length b
  && List.for_all2
       (fun (ida, ra) (idb, rb) ->
         ida = idb
         && List.length ra = List.length rb
         && List.for_all2
              (fun (ka, va) (kb, vb) ->
                ka = kb && bits va = bits vb)
              ra rb)
       a b

let outofcore () =
  header "Out-of-core: fig3 covariance batch over the paged store"
    "LMFAO/F-IVM report at full scale; working set no longer fits";
  let features = Datagen.Retailer.features in
  let batch = Aggregates.Batch.covariance features in
  let page_rows = 1024 in
  let cache_pages = 8 in
  (* gauges/counters only move with the obs layer on; this entry opts in *)
  let obs_was = Obs.is_enabled () in
  Obs.set_enabled true;
  let peak_gauge = Obs.gauge "store.cache_pages_peak" in
  Printf.printf
    "page cache budget: %d pages x %d rows (held fixed across scales)\n\n"
    cache_pages page_rows;
  Printf.printf "%-6s %10s | %12s %12s %8s | %10s %9s %9s\n" "scale" "rows"
    "in-memory" "paged" "ratio" "pages" "peak" "bit-eq";
  List.iter
    (fun s ->
      let db = Datagen.Retailer.generate ~scale:s ~seed () in
      let rows = Relational.Database.total_cardinality db in
      let t_mem =
        Util.Timing.measure ~repeats:2 (fun () -> Lmfao.Engine.eval_batch db batch)
      in
      let r_mem = Lmfao.Engine.eval_batch db batch in
      (* import every relation, then rebuild the database as planner stubs
         plus page streams: same names, schemas and cardinalities, cells on
         disk *)
      let dir = Filename.temp_file "borg-outofcore" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let paged =
        List.map
          (fun rel ->
            ignore (Store.Loader.import_relation ~dir ~page_rows rel);
            Store.Paged.openr ~cache_pages ~dir (Relational.Relation.name rel))
          (Relational.Database.relations db)
      in
      let total_pages =
        List.fold_left (fun acc p -> acc + Store.Paged.pages p) 0 paged
      in
      let sdb =
        Relational.Database.create_streamed
          (Relational.Database.name db ^ "_paged")
          (List.map
             (fun p -> (Store.Paged.stub p, Some (Store.Paged.stream p)))
             paged)
      in
      Obs.set_gauge peak_gauge 0.0;
      let t_paged =
        Util.Timing.measure ~repeats:2 (fun () -> Lmfao.Engine.eval_batch sdb batch)
      in
      let r_paged = Lmfao.Engine.eval_batch sdb batch in
      let plan = Compile.Engine.compile sdb batch in
      let r_compiled = Compile.Engine.run plan sdb in
      let peak = int_of_float (Obs.gauge_value peak_gauge) in
      let ok =
        results_bit_equal r_mem r_paged && results_bit_equal r_mem r_compiled
      in
      if not ok then
        failwith
          (Printf.sprintf
             "outofcore: paged results differ from in-memory at scale %g" s);
      if peak > cache_pages then
        failwith
          (Printf.sprintf
             "outofcore: cache peak %d exceeds budget %d at scale %g" peak
             cache_pages s);
      Printf.printf "%-6g %10d | %12s %12s %8s | %10d %9d %9s\n%!" s rows
        (Util.Timing.to_string t_mem)
        (Util.Timing.to_string t_paged)
        (pct (t_paged /. t_mem))
        total_pages peak "yes";
      let tag e = Printf.sprintf "%s@%g" e s in
      record ~entry:"outofcore" ~engine:(tag "in-memory") t_mem;
      record ~entry:"outofcore" ~engine:(tag "paged") t_paged;
      record ~entry:"outofcore" ~engine:(tag "cache-peak-pages") (float_of_int peak);
      record ~entry:"outofcore" ~engine:(tag "cache-budget-pages")
        (float_of_int cache_pages);
      List.iter Store.Paged.close paged;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    [ 0.1; 0.5; 1.0 ];
  Printf.printf
    "\npeak cache residency is flat while the dataset grows 10x: the paged\n\
     path runs the full-scale batch in bounded memory, trading decode time\n\
     (the in-memory vs paged ratio above is the crossover cost).\n%!";
  Obs.set_enabled obs_was

(* ------------------------------------------------------------- dispatch *)

(* ------------------------------------------------------------ scenarios *)

(* Hostile-stream maintenance throughput: every dataset x shape cell of the
   scenario grammar (single-tuple and batched inserts, churn past zero,
   out-of-order windows, Zipf-skewed victims, boxed high-cardinality keys)
   pushed through F-IVM maintenance. The throughput column is delta tuples
   per second through the maintained view tree; every cell ends with the
   same bit-identity differential the scenario harness enforces, so a
   number is only ever printed for a stream that was maintained CORRECTLY. *)
let scenarios_bench () =
  header "Hostile-stream maintenance throughput (dataset x shape, F-IVM)" "";
  let cov_bits c =
    let b = Buffer.create 512 in
    Rings.Covariance.encode b c;
    Buffer.contents b
  in
  let datasets =
    [
      ("retailer", Datagen.Retailer.generate, Datagen.Retailer.ivm_features);
      ("favorita", Datagen.Favorita.generate, Datagen.Favorita.ivm_features);
      ("yelp", Datagen.Yelp.generate, Datagen.Yelp.ivm_features);
      ("tpcds", Datagen.Tpcds.generate, Datagen.Tpcds.ivm_features);
    ]
  in
  Printf.printf "%-10s %-14s %9s %9s %12s %14s\n" "dataset" "shape" "updates"
    "deletes" "wall" "updates/s";
  List.iter
    (fun ( name,
           (generate : ?scale:float -> seed:int -> unit -> Relational.Database.t),
           features ) ->
      let db0 = generate ~scale:(0.05 *. scale) ~seed () in
      List.iter
        (fun (sname, shape) ->
          let db, batches = Datagen.Stream_gen.hostile ~seed shape db0 in
          let updates = List.fold_left (fun n b -> n + List.length b) 0 batches in
          let deletes =
            List.fold_left
              (fun n b ->
                n
                + List.length
                    (List.filter
                       (fun (u : Fivm.Delta.update) -> u.multiplicity < 0)
                       b))
              0 batches
          in
          let m = Fivm.Maintainer.create Fivm.Maintainer.F_ivm db ~features in
          let (), wall =
            Util.Timing.time (fun () ->
                List.iter (Fivm.Maintainer.apply_batch m) batches)
          in
          if
            not
              (String.equal
                 (cov_bits (Fivm.Maintainer.covariance m))
                 (cov_bits (Fivm.Maintainer.recompute m)))
          then failwith (Printf.sprintf "scenarios: %s x %s diverged" name sname);
          Printf.printf "%-10s %-14s %9d %9d %12s %14.0f\n%!" name sname updates
            deletes
            (Util.Timing.to_string wall)
            (float_of_int updates /. wall);
          record ~entry:"scenarios" ~engine:(name ^ "/" ^ sname) wall)
        Datagen.Stream_gen.shapes)
    datasets

let entries =
  [
    ("fig3", fig3);
    ("fig4left", fig4left);
    ("fig4right", fig4right);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fsize", fsize);
    ("reuse", reuse);
    ("ifaq", ifaq);
    ("ineq", ineq);
    ("ablate", ablate);
    ("wcoj", wcoj);
    ("recovery", recovery);
    ("shard", shard);
    ("serve", serve_bench);
    ("learn", learn_bench);
    ("traffic", traffic_bench);
    ("engines", engines);
    ("outofcore", outofcore);
    ("scenarios", scenarios_bench);
    ("micro", micro);
  ]

let () =
  let rec parse_args acc = function
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse_args acc rest
    | "--json" :: [] -> failwith "--json needs a file argument"
    | "--compare" :: file :: rest ->
        compare_with := Some file;
        parse_args acc rest
    | "--compare" :: [] -> failwith "--compare needs a file argument"
    | x :: rest -> parse_args (x :: acc) rest
    | [] -> List.rev acc
  in
  let requested =
    match parse_args [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst entries
    | rest -> rest
  in
  Printf.printf "relational-data-borg benchmark harness (scale %.2f%s)\n" scale
    (if obs_on then ", observability on" else "");
  Obs.set_enabled obs_on;
  List.iter
    (fun name ->
      match List.assoc_opt name entries with
      | Some f ->
          Obs.reset ();
          let (), wall = Util.Timing.time f in
          record ~entry:name ~engine:"wall" wall;
          if obs_on then begin
            match Obs.counter_snapshot () with
            | [] -> ()
            | snapshot ->
                Printf.printf "\n[%s] counters:\n" name;
                List.iter (fun (c, v) -> Printf.printf "  %-36s %12d\n" c v) snapshot;
                Printf.printf "%!";
                timings :=
                  Obs.Json.Obj
                    [
                      ("entry", Obs.Json.Str name);
                      ( "counters",
                        Obs.Json.Obj
                          (List.map
                             (fun (c, v) -> (c, Obs.Json.num_int v))
                             snapshot) );
                    ]
                  :: !timings
          end
      | None ->
          Printf.printf "unknown entry %s (available: %s)\n" name
            (String.concat ", " (List.map fst entries)))
    requested;
  (* --compare OLD.json: per-entry speedup of this run against a previous
     --json dump, matched on (entry, engine). *)
  (match !compare_with with
  | None -> ()
  | Some file ->
      let triples doc =
        match Obs.Json.member "timings" doc with
        | Some (Obs.Json.Arr l) ->
            List.filter_map
              (fun o ->
                match
                  ( Obs.Json.member "entry" o,
                    Obs.Json.member "engine" o,
                    Obs.Json.member "seconds" o )
                with
                | ( Some (Obs.Json.Str e),
                    Some (Obs.Json.Str g),
                    Some (Obs.Json.Num s) ) ->
                    Some ((e, g), s)
                | _ -> None)
              l
        | _ -> []
      in
      match Obs.Json.parse (In_channel.with_open_text file In_channel.input_all) with
      | Error msg -> Printf.printf "\n--compare %s: parse error: %s\n%!" file msg
      | exception Sys_error msg -> Printf.printf "\n--compare: %s\n%!" msg
      | Ok doc ->
          let old = triples doc in
          let now =
            triples (Obs.Json.Obj [ ("timings", Obs.Json.Arr (List.rev !timings)) ])
          in
          header (Printf.sprintf "Comparison against %s (old / new)" file) "";
          Printf.printf "%-12s %-22s %12s %12s %10s\n" "entry" "engine" "old"
            "new" "speedup";
          List.iter
            (fun ((entry, engine), secs) ->
              match List.assoc_opt (entry, engine) old with
              | None -> ()
              | Some old_secs ->
                  Printf.printf "%-12s %-22s %12s %12s %10s\n" entry engine
                    (Util.Timing.to_string old_secs)
                    (Util.Timing.to_string secs)
                    (pct (old_secs /. secs)))
            now;
          Printf.printf "%!");
  match !json_out with
  | None -> ()
  | Some file ->
      let doc =
        Obs.Json.Obj
          [
            ("scale", Obs.Json.Num scale);
            ("seed", Obs.Json.num_int seed);
            ("timings", Obs.Json.Arr (List.rev !timings));
          ]
      in
      let oc = open_out file in
      output_string oc (Obs.Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s\n%!" file
