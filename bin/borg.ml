(* borg: command-line driver for the relational-data-borg library.

     borg generate retailer --scale 0.1 --out /tmp/retailer
     borg train retailer --scale 0.1
     borg tree retailer --depth 4
     borg batches
     borg ivm retailer --method fivm --limit 20000

   See README.md for the library API; the benchmark harness regenerating the
   paper's figures lives in bench/main.exe. *)

open Cmdliner
open Relational

type dataset_spec = {
  generate : ?scale:float -> seed:int -> unit -> Database.t;
  features : Aggregates.Feature.t;
  ivm_features : string list;
}

let datasets =
  [
    ( "retailer",
      {
        generate = Datagen.Retailer.generate;
        features = Datagen.Retailer.features;
        ivm_features = Datagen.Retailer.ivm_features;
      } );
    ( "favorita",
      {
        generate = Datagen.Favorita.generate;
        features = Datagen.Favorita.features;
        ivm_features = Datagen.Favorita.ivm_features;
      } );
    ( "yelp",
      {
        generate = Datagen.Yelp.generate;
        features = Datagen.Yelp.features;
        ivm_features = Datagen.Yelp.ivm_features;
      } );
    ( "tpcds",
      {
        generate = Datagen.Tpcds.generate;
        features = Datagen.Tpcds.features;
        ivm_features = Datagen.Tpcds.ivm_features;
      } );
  ]

let dataset_arg =
  let dconv =
    Arg.enum (List.map (fun (name, spec) -> (name, (name, spec))) datasets)
  in
  Arg.(required & pos 0 (some dconv) None & info [] ~docv:"DATASET")

let scale_arg =
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S" ~doc:"Dataset scale factor.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

(* ---- observability flags (shared by every workload command) ---- *)

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Enable observability and print the span/counter report to stderr.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable observability and write the metrics snapshot as JSON to $(docv).")

(* Run a command body with observability switched on when either flag asks
   for it; the report/export happens even if the body raises. *)
let with_obs trace metrics_out f =
  let enabled = trace || metrics_out <> None in
  if not enabled then f ()
  else begin
    Obs.reset ();
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.set_enabled false;
        if trace then Format.eprintf "%a@." Obs.pp_report ();
        Option.iter
          (fun path ->
            try Obs.write_file path
            with Sys_error msg ->
              Printf.eprintf "borg: cannot write metrics: %s\n" msg;
              exit 1)
          metrics_out)
      f
  end

(* ---- generate ---- *)

let generate_cmd =
  let out_arg =
    Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run (name, spec) scale seed out trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let db = spec.generate ~scale ~seed () in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iter
      (fun rel ->
        let path = Filename.concat out (Relation.name rel ^ ".csv") in
        let headers = [ Schema.names (Relation.schema rel) ] in
        Util.Csvio.write_file path (headers @ Relation.csv_rows rel);
        Printf.printf "wrote %s (%d tuples)\n" path (Relation.cardinality rel))
      (Database.relations db);
    Printf.printf "dataset %s at scale %g: %d tuples total\n" name scale
      (Database.total_cardinality db)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic dataset as CSV files.")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ out_arg $ trace_arg
          $ metrics_out_arg)

(* ---- train ---- *)

let train_cmd =
  let run (name, spec) scale seed trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let db = spec.generate ~scale ~seed () in
    Printf.printf "training ridge linear regression over %s (scale %g)...\n" name scale;
    let r = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db spec.features in
    Printf.printf "batch: %d aggregates in %s; solve: %s (%d steps)\n"
      r.aggregate_count
      (Util.Timing.to_string r.stats_seconds)
      (Util.Timing.to_string r.solve_seconds)
      r.model.iterations_run;
    let join = Database.materialise_join db in
    Printf.printf "train RMSE: %.4f over %d rows\n"
      (Ml.Linreg.rmse_on r.model join)
      (Relation.cardinality join);
    let top =
      List.sort
        (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a))
        (Array.to_list
           (Array.mapi (fun i c -> (c, r.model.weights.(i))) r.model.feature_columns))
    in
    Printf.printf "largest weights:\n";
    List.iteri
      (fun i (c, w) -> if i < 10 then Printf.printf "  %-30s %+10.4f\n" c w)
      top
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train linear regression via the aggregate batch.")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ trace_arg $ metrics_out_arg)

(* ---- tree ---- *)

let tree_cmd =
  let depth_arg =
    Arg.(value & opt int 4 & info [ "depth" ] ~docv:"D" ~doc:"Maximum tree depth.")
  in
  let run (name, spec) scale seed depth trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let db = spec.generate ~scale ~seed () in
    Printf.printf "training a depth-%d regression tree over %s...\n" depth name;
    let tree, seconds =
      Util.Timing.time (fun () ->
          Ml.Decision_tree.train
            ~params:{ Ml.Decision_tree.default_params with max_depth = depth }
            db spec.features)
    in
    Printf.printf "trained in %s (%d nodes)\n" (Util.Timing.to_string seconds)
      (Ml.Decision_tree.size tree);
    Format.printf "%a@." (Ml.Decision_tree.pp ?indent:None) tree
  in
  Cmd.v
    (Cmd.info "tree" ~doc:"Train a CART regression tree from aggregate batches.")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ depth_arg $ trace_arg
          $ metrics_out_arg)

(* ---- batches ---- *)

let batches_cmd =
  let run () =
    Printf.printf "%-12s %16s %16s %16s %12s\n" "dataset" "covariance"
      "decision-node" "mutual-info" "k-means";
    List.iter
      (fun (name, spec) ->
        let mi =
          match name with
          | "retailer" -> Datagen.Retailer.mi_attrs
          | "favorita" -> Datagen.Favorita.mi_attrs
          | "yelp" -> Datagen.Yelp.mi_attrs
          | _ -> Datagen.Tpcds.mi_attrs
        in
        Printf.printf "%-12s %16d %16d %16d %12d\n" name
          (Aggregates.Batch.size (Aggregates.Batch.covariance spec.features))
          (Aggregates.Batch.size (Aggregates.Batch.decision_node spec.features))
          (Aggregates.Batch.size (Aggregates.Batch.mutual_information mi))
          (Aggregates.Batch.size (Aggregates.Batch.kmeans spec.features)))
      datasets
  in
  Cmd.v
    (Cmd.info "batches" ~doc:"Print aggregate batch sizes per workload (Figure 5).")
    Term.(const run $ const ())

(* ---- ivm ---- *)

let ivm_cmd =
  let method_arg =
    let mconv =
      Arg.enum
        [
          ("fivm", Fivm.Maintainer.F_ivm);
          ("higher", Fivm.Maintainer.Higher_order);
          ("first", Fivm.Maintainer.First_order);
        ]
    in
    Arg.(value & opt mconv Fivm.Maintainer.F_ivm
         & info [ "method" ] ~docv:"M" ~doc:"fivm | higher | first")
  in
  let limit_arg =
    Arg.(value & opt int max_int & info [ "limit" ] ~docv:"N" ~doc:"Insert at most N tuples.")
  in
  let run (name, spec) scale seed strategy limit trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let db = spec.generate ~scale ~seed () in
    let stream = Datagen.Stream_gen.inserts_of_database db in
    let m = Fivm.Maintainer.create strategy db ~features:spec.ivm_features in
    let batch =
      List.filteri (fun i _ -> i < limit) stream
    in
    let n = ref (List.length batch) in
    let seconds =
      Util.Timing.time_only (fun () -> Fivm.Maintainer.apply_batch m batch)
    in
    Printf.printf "%s over %s: %d inserts in %s (%.0f tuples/s)\n"
      (Fivm.Maintainer.strategy_name strategy)
      name !n
      (Util.Timing.to_string seconds)
      (float_of_int !n /. seconds);
    let cov = Fivm.Maintainer.covariance m in
    Printf.printf "maintained join count: %g\n" (Rings.Covariance.count cov)
  in
  Cmd.v
    (Cmd.info "ivm" ~doc:"Maintain the covariance matrix under an insert stream.")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ method_arg $ limit_arg
          $ trace_arg $ metrics_out_arg)

(* ---- maintain: resilient IVM with WAL, checkpoints and fault injection ---- *)

let maintain_cmd =
  let method_arg =
    let mconv =
      Arg.enum
        [
          ("fivm", Fivm.Maintainer.F_ivm);
          ("higher", Fivm.Maintainer.Higher_order);
          ("first", Fivm.Maintainer.First_order);
        ]
    in
    Arg.(value & opt mconv Fivm.Maintainer.F_ivm
         & info [ "method" ] ~docv:"M" ~doc:"fivm | higher | first")
  in
  let limit_arg =
    Arg.(value & opt int max_int & info [ "limit" ] ~docv:"N" ~doc:"Insert at most N tuples.")
  in
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:"WAL and checkpoint directory (kept across restarts). Defaults to a \
                   fresh temporary directory, removed on exit.")
  in
  let every_arg =
    Arg.(value & opt int 256
         & info [ "checkpoint-every" ] ~docv:"K" ~doc:"Commits between checkpoints (0: never).")
  in
  let audit_arg =
    Arg.(value & opt int 0
         & info [ "audit-every" ] ~docv:"K"
             ~doc:"Commits between audits of the maintained covariance against a \
                   from-scratch recomputation (0: never).")
  in
  let faults_arg =
    (* validate the spec at parse time so a typo is a usage error, not an
       uncaught Invalid_argument later *)
    let fconv =
      let parse s =
        match Resilience.Faults.parse ~seed:0 s with
        | _ -> Ok s
        | exception Invalid_argument msg -> Error (`Msg msg)
      in
      Arg.conv (parse, Format.pp_print_string)
    in
    Arg.(value & opt (some fconv) None
         & info [ "inject-faults" ] ~docv:"SPEC" ~doc:(Resilience.Faults.grammar ^ "."))
  in
  let restarts_arg =
    Arg.(value & opt int 3
         & info [ "restarts" ] ~docv:"R"
             ~doc:"Recover and resume after at most R injected crashes.")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"After the stream, replay it through a bare maintainer and fail unless \
                   the recovered covariance is bit-identical.")
  in
  let shards_arg =
    let default =
      match Sys.getenv_opt "BORG_SHARDS" with
      | Some s -> ( try Stdlib.max 1 (int_of_string s) with _ -> 1)
      | None -> 1
    in
    Arg.(value & opt int default
         & info [ "shards" ] ~docv:"N"
             ~doc:"Hash-partition the stream into N shards maintained in parallel, \
                   each with its own WAL and checkpoints under \
                   $(b,checkpoint-dir)/shard-k. Defaults to $(b,BORG_SHARDS) \
                   or 1 (the single-shard driver).")
  in
  let digest_out_arg =
    Arg.(value & opt (some string) None
         & info [ "digest-out" ] ~docv:"FILE"
             ~doc:"Write a hex CRC-32 digest of the final covariance's bit pattern \
                   to $(docv); identical digests mean bit-identical results.")
  in
  let run (name, spec) scale seed strategy limit dir every audit faults_spec restarts
      verify shards digest_out trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let db = spec.generate ~scale ~seed () in
    let stream =
      Array.of_list
        (List.filteri (fun i _ -> i < limit) (Datagen.Stream_gen.inserts_of_database db))
    in
    let rec rm_rf path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    let dir, cleanup =
      match dir with
      | Some d -> (d, fun () -> ())
      | None ->
          let d = Filename.temp_dir "borg-maintain" "" in
          (d, fun () -> rm_rf d)
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let make () = Fivm.Maintainer.create strategy db ~features:spec.ivm_features in
    let bit_identical (cov : Rings.Covariance.t) (reference : Rings.Covariance.t) =
      let bits = Int64.bits_of_float in
      let dim = Rings.Covariance.dim reference in
      let identical = ref (bits cov.Rings.Covariance.c = bits reference.Rings.Covariance.c) in
      for i = 0 to dim - 1 do
        if bits (Util.Vec.get cov.Rings.Covariance.s i)
           <> bits (Util.Vec.get reference.Rings.Covariance.s i)
        then identical := false;
        for j = 0 to dim - 1 do
          if bits (Util.Mat.get cov.Rings.Covariance.q i j)
             <> bits (Util.Mat.get reference.Rings.Covariance.q i j)
          then identical := false
        done
      done;
      !identical
    in
    let t0 = Unix.gettimeofday () in
    (* Single shard: the bare driver with an in-process restart loop.
       Sharded: per-shard drivers with in-task recovery (Resilience.Sharded). *)
    let cov, committed, crashes, quarantined, reference =
      if shards <= 1 then begin
        let faults =
          match faults_spec with
          | Some s -> Resilience.Faults.parse ~seed s
          | None -> Resilience.Faults.none ()
        in
        let cfg =
          Resilience.Driver.config ~checkpoint_every:every ~audit_every:audit ~faults dir
        in
        let crashes = ref 0 in
        let rec go d =
          let from = Resilience.Driver.seq d in
          match
            for i = from to Array.length stream - 1 do
              ignore (Resilience.Driver.submit d stream.(i))
            done
          with
          | () -> d
          | exception Resilience.Faults.Crash msg ->
              incr crashes;
              Printf.printf "crash %d: %s\n%!" !crashes msg;
              if !crashes > restarts then begin
                Printf.eprintf "borg maintain: restart budget (%d) exhausted\n" restarts;
                exit 1
              end;
              let d' = Resilience.Driver.create cfg make in
              Printf.printf "recovered to seq %d, resuming\n%!" (Resilience.Driver.seq d');
              go d'
        in
        let d = go (Resilience.Driver.create cfg make) in
        let cov = Resilience.Driver.covariance d in
        let committed = Resilience.Driver.seq d in
        let quarantined = List.length (Resilience.Driver.quarantined d) in
        Resilience.Driver.close d;
        let reference () =
          let m = make () in
          Array.iter (Fivm.Maintainer.apply m) stream;
          Fivm.Maintainer.covariance m
        in
        (cov, committed, !crashes, quarantined, reference)
      end
      else begin
        let plan = Fivm.Shard.plan ~shards db in
        let faults k =
          match faults_spec with
          | Some s -> Resilience.Faults.parse ~seed:(seed + k) s
          | None -> Resilience.Faults.none ()
        in
        let sh =
          Resilience.Sharded.create ~checkpoint_every:every ~audit_every:audit
            ~max_restarts:restarts ~faults ~dir ~plan make
        in
        (match Resilience.Sharded.submit_batch sh (Array.to_list stream) with
        | () -> ()
        | exception Failure msg ->
            Printf.eprintf "borg maintain: %s\n" msg;
            exit 1);
        let cov = Resilience.Sharded.covariance sh in
        let committed = Resilience.Sharded.seq sh in
        let crashes = Resilience.Sharded.crashes sh in
        let quarantined = List.length (Resilience.Sharded.quarantined sh) in
        Resilience.Sharded.close sh;
        let reference () =
          let clean =
            Fivm.Shard.create strategy db ~features:spec.ivm_features ~shards
          in
          Array.iter (Fivm.Shard.apply clean) stream;
          Fivm.Shard.covariance clean
        in
        Printf.printf "sharded over %d shards on %s (per-shard commits:%s)\n" shards
          (Fivm.Shard.plan_attr plan)
          (String.concat ""
             (Array.to_list
                (Array.map (Printf.sprintf " %d") (Resilience.Sharded.seqs sh))));
        (cov, committed, crashes, quarantined, reference)
      end
    in
    let seconds = Unix.gettimeofday () -. t0 in
    let n = Array.length stream in
    Printf.printf
      "%s over %s: %d updates committed in %s (%.0f tuples/s), %d crash(es), %d quarantined\n"
      (Fivm.Maintainer.strategy_name strategy)
      name committed
      (Util.Timing.to_string seconds)
      (float_of_int n /. seconds)
      crashes quarantined;
    Printf.printf "maintained join count: %g\n" (Rings.Covariance.count cov);
    Option.iter
      (fun path ->
        let buf = Buffer.create 4096 in
        Rings.Covariance.encode buf cov;
        let digest = Printf.sprintf "%08x\n" (Util.Checksum.crc32 (Buffer.contents buf)) in
        let oc = open_out path in
        output_string oc digest;
        close_out oc;
        Printf.printf "digest: %s" digest)
      digest_out;
    if verify then begin
      if bit_identical cov (reference ()) then
        Printf.printf "verify: recovered covariance is bit-identical to the clean run\n"
      else begin
        Printf.eprintf "borg maintain: recovered covariance DIVERGES from the clean run\n";
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "maintain"
       ~doc:
         "Maintain the covariance matrix resiliently: WAL + checkpoints, optional \
          fault injection, crash recovery, quarantine and audits, optionally \
          hash-partitioned over N parallel shards.")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ method_arg $ limit_arg
          $ dir_arg $ every_arg $ audit_arg $ faults_arg $ restarts_arg $ verify_arg
          $ shards_arg $ digest_out_arg $ trace_arg $ metrics_out_arg)

(* ---- agg: run an aggregate batch through a selectable engine ---- *)

let engines : Aggregates.Engine_intf.t list =
  [
    (module Lmfao.Engine);
    (module Compile.Engine);
    (module Baseline.Agnostic);
    (module Baseline.Unshared.Dbx);
    (module Baseline.Unshared.Monet);
  ]

let engine_names =
  String.concat ", " (List.map Aggregates.Engine_intf.name engines)

let agg_cmd =
  let engine_arg =
    (* resolved through the registry so any registered engine is
       selectable; a typo reports the known names *)
    let econv =
      let parse s =
        match Aggregates.Engine_intf.find engines s with
        | Some e -> Ok e
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown engine '%s' (known engines: %s)" s
                    engine_names))
      in
      let print fmt e =
        Format.pp_print_string fmt (Aggregates.Engine_intf.name e)
      in
      Arg.conv (parse, print)
    in
    Arg.(value & opt econv (List.hd engines)
         & info [ "engine" ] ~docv:"E"
             ~doc:(Printf.sprintf "Aggregate engine: %s." engine_names))
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:
               "Audit the result: evaluate the batch twice (the second run \
                exercises any plan cache) and compare against the LMFAO \
                interpreter — bitwise for lmfao engines, numerically \
                otherwise. Exits 1 on divergence.")
  in
  let batch_arg =
    let bconv =
      Arg.enum
        [
          ("covariance", `Covariance);
          ("decision-node", `Decision_node);
          ("mutual-info", `Mutual_info);
          ("kmeans", `Kmeans);
        ]
    in
    Arg.(value & opt bconv `Covariance
         & info [ "batch" ] ~docv:"B"
             ~doc:"Batch: covariance | decision-node | mutual-info | kmeans.")
  in
  (* bitwise comparison of keyed results: same ids, same assignments in
     the same order, every float identical to the last bit *)
  let bits_identical a b =
    List.length a = List.length b
    && List.for_all2
         (fun (id, mine) (id', theirs) ->
           String.equal id id'
           && List.length mine = List.length theirs
           && List.for_all2
                (fun (k, v) (k', v') ->
                  k = k' && Int64.bits_of_float v = Int64.bits_of_float v')
                mine theirs)
         a b
  in
  let run (name, spec) scale seed engine batch_name check trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let db = spec.generate ~scale ~seed () in
    let mi =
      match name with
      | "retailer" -> Datagen.Retailer.mi_attrs
      | "favorita" -> Datagen.Favorita.mi_attrs
      | "yelp" -> Datagen.Yelp.mi_attrs
      | _ -> Datagen.Tpcds.mi_attrs
    in
    let batch =
      match batch_name with
      | `Covariance -> Aggregates.Batch.covariance spec.features
      | `Decision_node -> Aggregates.Batch.decision_node spec.features
      | `Mutual_info -> Aggregates.Batch.mutual_information mi
      | `Kmeans -> Aggregates.Batch.kmeans spec.features
    in
    Printf.printf "engine %s: %s\n"
      (Aggregates.Engine_intf.name engine)
      (Aggregates.Engine_intf.description engine);
    let results, seconds =
      Util.Timing.time (fun () -> Aggregates.Engine_intf.eval engine db batch)
    in
    Printf.printf "batch %s over %s (scale %g): %d aggregates in %s\n"
      batch.Aggregates.Batch.name
      name scale (List.length results) (Util.Timing.to_string seconds);
    List.iter
      (fun (id, rows) -> Printf.printf "  %-24s %6d group(s)\n" id (List.length rows))
      results;
    if check then begin
      let ename = Aggregates.Engine_intf.name engine in
      (* second evaluation: a cached-plan engine serves this from its
         cache, so the audit also covers the cached path *)
      let again = Aggregates.Engine_intf.eval engine db batch in
      let reference = Lmfao.Engine.eval_batch db batch in
      let bitwise =
        String.length ename >= 5 && String.sub ename 0 5 = "lmfao"
      in
      let agree a b =
        if bitwise then bits_identical a b
        else
          List.length a = List.length b
          && List.for_all2
               (fun (id, r) (id', r') ->
                 String.equal id id' && Aggregates.Spec.result_equal r r')
               (List.sort compare a) (List.sort compare b)
      in
      let ok_rerun = agree results again in
      let ok_ref = agree results reference in
      Printf.printf "check (%s): rerun %s, vs interpreter %s\n"
        (if bitwise then "bitwise" else "numeric")
        (if ok_rerun then "identical" else "DIVERGED")
        (if ok_ref then "identical" else "DIVERGED");
      if not (ok_rerun && ok_ref) then begin
        Printf.eprintf "borg agg: engine %s diverges from the reference\n"
          ename;
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "agg" ~doc:"Evaluate an aggregate batch with a selectable engine.")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ engine_arg $ batch_arg
          $ check_arg $ trace_arg $ metrics_out_arg)

(* ---- the lattice workload (shared by serve and learn) ----

   A small star schema whose feature values are strictly positive multiples
   of 1/16. On the lattice every covariance sum is exactly representable in
   a float, so --check can demand BIT identity between maintained
   (cached/refreshed/warm-trained) state and a fresh recompute. *)

let star_db () =
  Database.create "lattice"
    [
      Relation.create "F"
        (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let lattice_stream ~seed ~steps =
  let rng = Util.Prng.create seed in
  let inserted = ref [] in
  let value rng = float_of_int (1 + Util.Prng.int rng 64) /. 16.0 in
  let iv n = Value.Int n and fv x = Value.Float x in
  List.init steps (fun _ ->
      if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
        let u = Util.Prng.choice rng (Array.of_list !inserted) in
        inserted := List.filter (fun x -> x != u) !inserted;
        Fivm.Delta.delete u.Fivm.Delta.relation u.Fivm.Delta.tuple
      end
      else begin
        let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
        let tuple =
          match rel with
          | "F" -> [| iv (Util.Prng.int rng 4); iv (Util.Prng.int rng 4); fv (value rng) |]
          | _ -> [| iv (Util.Prng.int rng 4); fv (value rng) |]
        in
        let u = Fivm.Delta.insert rel tuple in
        inserted := u :: !inserted;
        u
      end)

(* ---- serve: epoch-cached aggregate serving over a delta stream ---- *)

let serve_cmd =
  (* [exact]: demand bit identity (sound only for exact float arithmetic —
     the lattice stream). Otherwise served and recomputed sums may differ
     in summation order, so compare with the same relative tolerance as
     Covariance.equal_rel. *)
  let results_agree ~exact a b =
    let same v1 v2 =
      if exact then Int64.bits_of_float v1 = Int64.bits_of_float v2
      else
        Float.abs (v1 -. v2)
        <= 1e-9 *. (1.0 +. Float.abs v1 +. Float.abs v2)
    in
    let by_id l = List.sort (fun (i, _) (j, _) -> compare i j) l in
    let a = by_id a and b = by_id b in
    List.length a = List.length b
    && List.for_all2
         (fun (id1, r1) (id2, r2) ->
           String.equal id1 id2
           && List.length r1 = List.length r2
           && List.for_all2
                (fun (k1, v1) (k2, v2) -> k1 = k2 && same v1 v2)
                r1 r2)
         a b
  in
  let target_arg =
    let sconv =
      Arg.enum
        (("lattice", `Lattice)
        :: List.map (fun (n, s) -> (n, `Gen (n, s))) datasets)
    in
    Arg.(required & pos 0 (some sconv) None & info [] ~docv:"DATASET")
  in
  let method_arg =
    let mconv =
      Arg.enum
        [
          ("fivm", Fivm.Maintainer.F_ivm);
          ("higher", Fivm.Maintainer.Higher_order);
          ("first", Fivm.Maintainer.First_order);
        ]
    in
    Arg.(value & opt mconv Fivm.Maintainer.F_ivm
         & info [ "method" ] ~docv:"M" ~doc:"fivm | higher | first")
  in
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"K" ~doc:"Concurrent serving clients per burst.")
  in
  let repeats_arg =
    Arg.(value & opt int 4
         & info [ "repeats" ] ~docv:"R" ~doc:"Requests per batch per client burst.")
  in
  let rounds_arg =
    Arg.(value & opt int 2
         & info [ "rounds" ] ~docv:"N" ~doc:"Delta rounds applied between bursts.")
  in
  let limit_arg =
    Arg.(value & opt int 400
         & info [ "limit" ] ~docv:"N"
             ~doc:"Total updates: half as the initial load, the rest split over the rounds.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"After every burst, fail unless each served result matches a \
                   fresh LMFAO recompute over the current contents: bit-identical \
                   on the exact-arithmetic lattice dataset, within 1e-9 relative \
                   error elsewhere (arbitrary floats are summation-order \
                   sensitive).")
  in
  let run target scale seed strategy clients repeats rounds limit check trace
      metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let exact = target = `Lattice in
    let name, schema_db, features, mi, stream =
      match target with
      | `Lattice ->
          ("lattice", star_db (), [ "m"; "u"; "v" ], [ "a"; "b" ],
           lattice_stream ~seed ~steps:limit)
      | `Gen (n, spec) ->
          let db = spec.generate ~scale ~seed () in
          let mi =
            match n with
            | "retailer" -> Datagen.Retailer.mi_attrs
            | "favorita" -> Datagen.Favorita.mi_attrs
            | "yelp" -> Datagen.Yelp.mi_attrs
            | _ -> Datagen.Tpcds.mi_attrs
          in
          ( n, db, spec.ivm_features, mi,
            List.filteri (fun i _ -> i < limit)
              (Datagen.Stream_gen.inserts_of_database db) )
    in
    let srv = Serve.create strategy schema_db ~features in
    let batches =
      (* one refreshable batch (pure covariance coordinates) and one that
         must invalidate (group-bys) *)
      [
        Aggregates.Batch.covariance_numeric features;
        Aggregates.Batch.mutual_information mi;
      ]
    in
    let updates = Array.of_list stream in
    let n = Array.length updates in
    let initial = n / 2 in
    let seg lo len = Array.to_list (Array.sub updates lo len) in
    Serve.apply_deltas srv (seg 0 initial);
    let served = ref 0 in
    let burst () =
      List.iter
        (fun b ->
          (* one warm-up request (miss or refreshed hit), then a concurrent
             burst that must hit the cache *)
          ignore (Serve.serve srv b);
          let requests = List.init (clients * repeats) (fun _ -> b) in
          ignore (Serve.serve_many ~clients srv requests);
          served := !served + 1 + List.length requests;
          if check then begin
            let got = Serve.serve srv b in
            incr served;
            let fresh =
              (Lmfao.Engine.eval ~on_cyclic:`Materialize (Serve.snapshot srv) b)
                .Lmfao.Engine.keyed
            in
            if not (results_agree ~exact got fresh) then begin
              Printf.eprintf
                "borg serve: served %s DIVERGES from recompute at epoch %d\n"
                b.Aggregates.Batch.name (Serve.epoch srv);
              List.iter
                (fun (id, r1) ->
                  match List.assoc_opt id fresh with
                  | Some r2 when r1 = r2 -> ()
                  | r2 ->
                      Printf.eprintf "  %s: served %s vs fresh %s\n" id
                        (String.concat ";"
                           (List.map (fun (_, v) -> Printf.sprintf "%h" v) r1))
                        (match r2 with
                        | None -> "<missing>"
                        | Some r2 ->
                            String.concat ";"
                              (List.map (fun (_, v) -> Printf.sprintf "%h" v) r2)))
                got;
              exit 1
            end
          end)
        batches
    in
    let t0 = Unix.gettimeofday () in
    burst ();
    let remaining = n - initial in
    for r = 0 to rounds - 1 do
      let lo = initial + r * remaining / rounds in
      let hi = initial + (r + 1) * remaining / rounds in
      Serve.apply_deltas srv (seg lo (hi - lo));
      burst ()
    done;
    let seconds = Unix.gettimeofday () -. t0 in
    let s = Serve.stats srv in
    Printf.printf
      "%s over %s (%s): %d requests in %s, epoch %d, cache %d entries\n"
      "serve" name
      (Fivm.Maintainer.strategy_name strategy)
      !served (Util.Timing.to_string seconds) (Serve.epoch srv)
      (Serve.cache_size srv);
    Printf.printf "hits %d  misses %d  refreshes %d  invalidations %d\n" s.Serve.hits
      s.Serve.misses s.Serve.refreshes s.Serve.invalidations;
    if check then
      Printf.printf "check: served results %s recompute\n"
        (if exact then "bit-identical to" else "within 1e-9 relative of")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve aggregate batches concurrently from the epoch-invalidated cache \
          while F-IVM applies delta rounds.")
    Term.(const run $ target_arg $ scale_arg $ seed_arg $ method_arg $ clients_arg
          $ repeats_arg $ rounds_arg $ limit_arg $ check_arg $ trace_arg
          $ metrics_out_arg)

(* ---- learn: epoch-fresh model serving over a delta stream ---- *)

let learn_cmd =
  (* Online model maintenance over the exact-arithmetic lattice workload:
     register Ml.Models entries against a server, stream delta batches
     through it, and serve epoch-tagged predictions between batches. With
     --check, every strategy runs and after every batch each served model is
     audited against a COLD retrain over from-scratch statistics
     (Maintainer.recompute + snapshot): bit-identical encodings for direct
     solves, prediction agreement within Models.refresh_audit tolerance for
     iterative optimisers. *)
  let models_arg =
    let known = String.concat ", " (List.map Ml.Model_intf.name Ml.Models.all) in
    Arg.(value
         & opt (list string) [ "linreg-closed"; "linreg-cg"; "linreg-gd"; "polyreg" ]
         & info [ "models" ] ~docv:"M,.."
             ~doc:(Printf.sprintf "Registry models to serve (known: %s)." known))
  in
  let method_arg =
    let mconv =
      Arg.enum
        [
          ("fivm", Fivm.Maintainer.F_ivm);
          ("higher", Fivm.Maintainer.Higher_order);
          ("first", Fivm.Maintainer.First_order);
        ]
    in
    Arg.(value & opt mconv Fivm.Maintainer.F_ivm
         & info [ "method" ] ~docv:"M"
             ~doc:"fivm | higher | first (ignored under --check, which runs all three).")
  in
  let rounds_arg =
    Arg.(value & opt int 100
         & info [ "rounds" ] ~docv:"N" ~doc:"Delta batches applied per strategy.")
  in
  let batch_arg =
    Arg.(value & opt int 4
         & info [ "batch-size" ] ~docv:"B" ~doc:"Updates per delta batch.")
  in
  let initial_arg =
    Arg.(value & opt int 96
         & info [ "initial" ] ~docv:"N" ~doc:"Updates loaded before registration.")
  in
  let staleness_arg =
    Arg.(value & opt int 0
         & info [ "staleness" ] ~docv:"K"
             ~doc:"Epochs a served model may lag the data before apply_deltas \
                   must refresh it (0: refresh every batch).")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Run ALL three maintenance strategies and, after every delta \
                   batch, fail unless each served (warm-refreshed) model matches \
                   a cold retrain over from-scratch statistics: bit-identical \
                   encodings for direct solves, served predictions within the \
                   audit tolerance for iterative optimisers.")
  in
  let run models strategy rounds batch initial staleness check seed trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let specs =
      List.map
        (fun n ->
          match Ml.Models.find n with
          | Some s -> s
          | None ->
              Printf.eprintf "borg learn: unknown model %s (known: %s)\n" n
                (String.concat ", " (List.map Ml.Model_intf.name Ml.Models.all));
              exit 1)
        models
    in
    let features = [ "m"; "u"; "v" ] and response = "m" in
    (* probe points for served predictions (lattice-range attribute values) *)
    let probes =
      List.concat_map
        (fun u -> List.map (fun v -> (u, v)) [ 0.25; 1.0; 2.5 ])
        [ 0.5; 1.25; 3.0 ]
    in
    let get_of (u, v) attr =
      match attr with
      | "intercept" -> Value.Float 1.0
      | "u" -> Value.Float u
      | "v" -> Value.Float v
      | a -> invalid_arg (Printf.sprintf "borg learn: probe has no attribute %s" a)
    in
    let strategies =
      if check then
        [ Fivm.Maintainer.F_ivm; Fivm.Maintainer.Higher_order; Fivm.Maintainer.First_order ]
      else [ strategy ]
    in
    List.iter
      (fun strategy ->
        let srv = Serve.create strategy (star_db ()) ~features in
        let stream =
          Array.of_list (lattice_stream ~seed ~steps:(initial + (rounds * batch)))
        in
        let seg lo len = Array.to_list (Array.sub stream lo len) in
        Serve.apply_deltas srv (seg 0 initial);
        let names =
          List.map
            (fun spec ->
              Serve.Model.register srv ~max_staleness:staleness spec ~response)
            specs
        in
        let audits = ref 0 in
        let audit () =
          (* one cold bundle per batch, shared across models: from-scratch
             covariance (Maintainer.recompute) in the SAME layout as the
             served bundle, snapshot-backed monomial/row statistics *)
          let cold_moments =
            Ml.Model_intf.moments_of_covariance
              ~snapshot:(fun () -> Serve.snapshot srv)
              (Fivm.Maintainer.recompute (Serve.maintainer srv))
              ~features ~response
          in
          List.iter
            (fun name ->
              (* freshness on demand: under --staleness the served model may
                 legitimately lag, so pull it to the current epoch first *)
              Serve.Model.refresh srv name;
              let warm, _ = Serve.Model.packed srv name in
              let spec = Serve.Model.spec_of srv name in
              let cold = Ml.Model_intf.train_packed spec cold_moments in
              let diverged detail =
                Printf.eprintf
                  "borg learn: %s served model DIVERGES from cold retrain at \
                   epoch %d (%s): %s\n"
                  name (Serve.epoch srv)
                  (Fivm.Maintainer.strategy_name strategy)
                  detail;
                exit 1
              in
              (match Ml.Models.refresh_audit spec with
              | `Bitwise ->
                  let bytes p =
                    let b = Buffer.create 256 in
                    Ml.Model_intf.encode_packed b p;
                    Buffer.contents b
                  in
                  if not (String.equal (bytes warm) (bytes cold)) then
                    diverged "encoded parameters differ bitwise"
              | `Tolerance tol ->
                  List.iter
                    (fun probe ->
                      let w = Ml.Model_intf.predict_packed warm (get_of probe) in
                      let c = Ml.Model_intf.predict_packed cold (get_of probe) in
                      if
                        not
                          (Float.abs (w -. c)
                          <= tol *. (1.0 +. Float.abs w +. Float.abs c))
                      then
                        diverged
                          (Printf.sprintf "prediction %h vs %h (tol %g)" w c tol))
                    probes);
              incr audits)
            names
        in
        let t0 = Unix.gettimeofday () in
        for r = 0 to rounds - 1 do
          Serve.apply_deltas srv (seg (initial + (r * batch)) batch);
          List.iter
            (fun name ->
              List.iter
                (fun p -> ignore (Serve.Model.predict srv name (get_of p)))
                probes)
            names;
          if check then audit ()
        done;
        let seconds = Unix.gettimeofday () -. t0 in
        let s = Serve.stats srv in
        Printf.printf
          "learn over lattice (%s): %d models, %d delta batches in %s, epoch %d\n"
          (Fivm.Maintainer.strategy_name strategy)
          (List.length names) rounds
          (Util.Timing.to_string seconds)
          (Serve.epoch srv);
        Printf.printf "model refreshes %d  model predictions %d\n"
          s.Serve.model_refreshes s.Serve.model_predictions;
        List.iter
          (fun name ->
            Printf.printf "  %-14s epoch %d\n" name (Serve.Model.epoch_of srv name))
          names;
        if check then
          Printf.printf
            "check: %d model audits against cold retrains passed\n" !audits)
      strategies
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:
         "Serve epoch-fresh models over a delta stream: register, warm-refresh \
          on every batch, predict with epoch tags; --check audits every \
          refresh against a cold retrain under all three strategies.")
    Term.(const run $ models_arg $ method_arg $ rounds_arg $ batch_arg
          $ initial_arg $ staleness_arg $ check_arg $ seed_arg $ trace_arg
          $ metrics_out_arg)

(* ---- check-metrics: validate an exported metrics snapshot ---- *)

(* ---- traffic: open-loop overload against the admission frontier ----

   The harness proves the tentpole claim: under offered load far beyond
   capacity, with transient faults injected into the recompute path, the
   server answers what it can fresh, degrades the rest to explicitly-tagged
   stale answers, and NEVER returns a wrong bit.

   The run is built in three phases on the virtual timeline, with the
   service costs probed on THIS machine first (a hit and a miss are timed,
   and rates/gates derived from them), so the same command produces the
   same qualitative picture — admission, shedding, timeouts, coalescing —
   on any hardware:

   1. WARM: one read per core batch at a leisurely rate — all admitted
      fresh; seeds the stale shadow cache.
   2. OVERLOAD: Poisson reads at [--overload]x the measured per-lane hit
      capacity, Zipf-skewed over batches and tenants, mixed with Poisson
      delta batches (lattice inserts AND deletes, each batch carrying a
      duplicated insert so coalescing provably eliminates updates).
   3. STARVED TENANT: a burst from a fresh tenant drains its token bucket
      on warmed batches, then asks for never-served "cold" batches
      (guaranteed Timeout: over quota, nothing to shed) and for warmed
      batches again (guaranteed Stale) — so all three outcome classes are
      exercised deterministically, independent of machine speed.

   --check turns on seeded transient faults, audits every answer against a
   from-scratch recompute for its claimed epoch (BIT-identical — the
   workload is the exact-arithmetic lattice), and enforces the accounting
   invariants (admitted + shed + timeout == offered, histogram count ==
   offered). *)

let traffic_cmd =
  let requests_arg =
    Arg.(value & opt int 2000
         & info [ "requests" ] ~docv:"N"
             ~doc:"Offered reads in the overload phase.")
  in
  let overload_arg =
    Arg.(value & opt float 8.0
         & info [ "overload" ] ~docv:"X"
             ~doc:"Offered rate as a multiple of measured per-lane capacity.")
  in
  let tenants_arg =
    Arg.(value & opt int 4
         & info [ "tenants" ] ~docv:"K" ~doc:"Tenant population (Zipf-active).")
  in
  let method_arg =
    let mconv =
      Arg.enum
        [
          ("fivm", Fivm.Maintainer.F_ivm);
          ("higher", Fivm.Maintainer.Higher_order);
          ("first", Fivm.Maintainer.First_order);
        ]
    in
    Arg.(value & opt mconv Fivm.Maintainer.F_ivm
         & info [ "method" ] ~docv:"M" ~doc:"fivm | higher | first")
  in
  let faults_arg =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fault plan for the recompute path (default with --check: \
                   transient:0.15).")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Inject transient faults and audit every answer: fresh \
                   answers must be bit-identical to a recompute at the \
                   current epoch, stale answers bit-identical to the answer \
                   their tagged epoch actually served, and the admission \
                   accounting must balance. Exits non-zero on any violation.")
  in
  let run requests overload tenants strategy faults check seed trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let features = [ "m"; "u"; "v" ] in
    (* core batches (the served mix: refreshable covariance + invalidating
       categorical/grouped shapes) and cold batches reads never warm — the
       starved-tenant phase requests them to force Timeouts *)
    let core =
      [|
        Aggregates.Batch.covariance_numeric features;
        Aggregates.Batch.mutual_information [ "a"; "b" ];
        {
          Aggregates.Batch.name = "grouped";
          aggregates =
            [
              Aggregates.Spec.make ~id:"sum_m_by_a" ~terms:[ ("m", 1) ]
                ~group_by:[ "a" ] ();
              Aggregates.Spec.count ~id:"n";
            ];
        };
      |]
    in
    let cold =
      [|
        {
          Aggregates.Batch.name = "cold_b";
          aggregates =
            [
              Aggregates.Spec.make ~id:"sum_v_by_b" ~terms:[ ("v", 1) ]
                ~group_by:[ "b" ] ();
            ];
        };
        {
          Aggregates.Batch.name = "cold_ab";
          aggregates =
            [
              Aggregates.Spec.make ~id:"n_by_ab" ~terms:[]
                ~group_by:[ "a"; "b" ] ();
            ];
        };
        {
          Aggregates.Batch.name = "cold_u2";
          aggregates =
            [
              Aggregates.Spec.make ~id:"sum_u2_by_a" ~terms:[ ("u", 2) ]
                ~group_by:[ "a" ] ();
            ];
        };
      |]
    in
    let catalog = Array.append core cold in
    let lanes = Util.Pool.num_domains () in
    let srv = Serve.create strategy (star_db ()) ~features in
    Serve.apply_deltas srv (lattice_stream ~seed ~steps:300);
    (* ---- capacity probe: a miss and a hit on this machine ---- *)
    let time f =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let t_miss =
      let total =
        Array.fold_left
          (fun acc b ->
            acc
            +. time (fun () ->
                   ignore
                     (Lmfao.Engine.eval ~on_cyclic:`Materialize
                        (Serve.snapshot srv) b)))
          0.0 core
      in
      Float.max 1e-6 (total /. float_of_int (Array.length core))
    in
    let t_hit =
      Array.iter (fun b -> ignore (Serve.serve srv b)) core;
      let reps = 50 in
      let total =
        time (fun () ->
            for _ = 1 to reps do
              Array.iter (fun b -> ignore (Serve.serve srv b)) core
            done)
      in
      Float.max 1e-8 (total /. float_of_int (reps * Array.length core))
    in
    (* ---- derived open-loop spec ---- *)
    let read_rate = overload *. float_of_int lanes /. t_hit in
    let duration = float_of_int requests /. read_rate in
    let spec =
      Traffic.Workload.spec ~seed ~duration ~read_rate
        ~delta_rate:(30.0 /. duration) ~delta_batch:8 ~tenants
        ~batch_skew:1.2 ~tenant_skew:1.2 ()
    in
    (* lattice updates with persistent insert/delete state; every batch
       carries one duplicated insert so coalescing provably merges *)
    let inserted = ref [] in
    let make_updates rng n =
      let value rng = float_of_int (1 + Util.Prng.int rng 64) /. 16.0 in
      let iv n = Value.Int n and fv x = Value.Float x in
      let one () =
        if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
          let u = Util.Prng.choice rng (Array.of_list !inserted) in
          inserted := List.filter (fun x -> x != u) !inserted;
          Fivm.Delta.delete u.Fivm.Delta.relation u.Fivm.Delta.tuple
        end
        else begin
          let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
          let tuple =
            match rel with
            | "F" ->
                [| iv (Util.Prng.int rng 4); iv (Util.Prng.int rng 4);
                   fv (value rng) |]
            | _ -> [| iv (Util.Prng.int rng 4); fv (value rng) |]
          in
          let u = Fivm.Delta.insert rel tuple in
          inserted := u :: !inserted;
          u
        end
      in
      let fresh =
        Fivm.Delta.insert "D1" [| iv (Util.Prng.int rng 4); fv (value rng) |]
      in
      fresh :: fresh :: List.init (max 0 (n - 2)) (fun _ -> one ())
    in
    let overload_events =
      Traffic.Workload.generate spec ~catalog:(Array.length core) ~make_updates
    in
    (* phase 1: warm reads, spaced far apart, before the overload window *)
    let warm_gap = 20.0 *. t_miss in
    let warm_span = warm_gap *. float_of_int (Array.length core + 1) in
    let warm_events =
      List.init (Array.length core) (fun i ->
          Traffic.Workload.Read
            { at = float_of_int (i + 1) *. warm_gap; tenant = 0; batch = i })
    in
    let shift dt = function
      | Traffic.Workload.Read r ->
          Traffic.Workload.Read { r with at = r.at +. dt }
      | Traffic.Workload.Delta d ->
          Traffic.Workload.Delta { d with at = d.at +. dt }
    in
    (* phase 3: the starved tenant — drain its bucket on the hot batch,
       then cold batches (Timeout: over quota, nothing to shed), then the
       hot batch again (Stale: over quota, shadow warm) *)
    let tenant_burst = 8.0 in
    let t_end = warm_span +. duration +. (2.0 *. t_miss) in
    let starved = tenants in
    let burst_events =
      List.init 8 (fun _ ->
          Traffic.Workload.Read { at = t_end; tenant = starved; batch = 0 })
      @ List.init (Array.length cold) (fun i ->
            Traffic.Workload.Read
              { at = t_end; tenant = starved; batch = Array.length core + i })
      @ List.init 4 (fun _ ->
            Traffic.Workload.Read { at = t_end; tenant = starved; batch = 0 })
    in
    let events =
      warm_events
      @ List.map (shift warm_span) overload_events
      @ burst_events
    in
    let fault_spec =
      match (faults, check) with
      | Some s, _ -> s
      | None, true -> "transient:0.15"
      | None, false -> ""
    in
    let faults =
      if fault_spec = "" then Resilience.Faults.none ()
      else Resilience.Faults.parse ~seed fault_spec
    in
    let cfg =
      Serve.Admission.config
        ~tenant_rate:(0.25 *. read_rate /. float_of_int tenants)
        ~tenant_burst
        ~gate_delay:
          (Float.max (20.0 *. t_hit)
             (0.05 *. float_of_int requests *. t_hit /. float_of_int lanes))
        ~deadline:(Float.max (50.0 *. t_miss) (float_of_int requests *. t_hit))
        ~max_pending:2048 ~max_retries:6 ~backoff_base:1e-5 ~backoff_cap:1e-3
        ~faults ~seed ()
    in
    let adm = Serve.Admission.create cfg srv in
    let reads =
      List.length
        (List.filter
           (function Traffic.Workload.Read _ -> true | _ -> false)
           events)
    in
    let report =
      Traffic.Driver.run ~lanes ~flush_interval:(duration /. 15.0)
        ~check:(if check then Traffic.Driver.Exact else Traffic.Driver.No_check)
        adm ~catalog ~events
    in
    Printf.printf
      "traffic (%s, %d lanes, %.0fx overload): offered %d  admitted %d  shed \
       %d  timeout %d\n"
      (Fivm.Maintainer.strategy_name strategy)
      lanes overload report.Traffic.Driver.offered
      report.Traffic.Driver.admitted report.Traffic.Driver.shed
      report.Traffic.Driver.timeout;
    Printf.printf
      "flushes %d  coalesced %d  backpressure %d  retries %d  epoch %d\n"
      report.Traffic.Driver.flushes report.Traffic.Driver.coalesced
      report.Traffic.Driver.backpressure report.Traffic.Driver.retries
      (Serve.epoch srv);
    Printf.printf "latency p50 %s  p95 %s  p99 %s  max %s\n"
      (Util.Timing.to_string report.Traffic.Driver.p50)
      (Util.Timing.to_string report.Traffic.Driver.p95)
      (Util.Timing.to_string report.Traffic.Driver.p99)
      (Util.Timing.to_string report.Traffic.Driver.max_latency);
    if check then begin
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
      let r = report in
      if r.Traffic.Driver.error_count > 0 then begin
        List.iter
          (fun e -> Printf.eprintf "borg traffic: audit: %s\n" e)
          r.Traffic.Driver.errors;
        fail "%d audit failures (%d answers checked)"
          r.Traffic.Driver.error_count r.Traffic.Driver.checked
      end;
      if
        r.Traffic.Driver.admitted + r.Traffic.Driver.shed
        + r.Traffic.Driver.timeout
        <> r.Traffic.Driver.offered
      then
        fail "accounting: admitted %d + shed %d + timeout %d <> offered %d"
          r.Traffic.Driver.admitted r.Traffic.Driver.shed
          r.Traffic.Driver.timeout r.Traffic.Driver.offered;
      if r.Traffic.Driver.offered <> reads then
        fail "offered %d <> generated reads %d" r.Traffic.Driver.offered reads;
      if r.Traffic.Driver.admitted = 0 then fail "no request was admitted";
      if r.Traffic.Driver.shed = 0 then fail "no request was shed";
      if r.Traffic.Driver.timeout = 0 then fail "no request timed out";
      if r.Traffic.Driver.coalesced = 0 then fail "coalescing eliminated nothing";
      if r.Traffic.Driver.checked = 0 then fail "audit checked no answers";
      if Obs.is_enabled () then begin
        (match Obs.histogram_snapshot_by_name "serve.latency" with
        | Some s ->
            if s.Obs.hs_count <> r.Traffic.Driver.offered then
              fail "histogram count %d <> offered %d" s.Obs.hs_count
                r.Traffic.Driver.offered
        | None -> fail "serve.latency histogram missing");
        let cv = Obs.counter_value_by_name in
        if
          cv "serve.offered"
          <> cv "serve.admitted" + cv "serve.shed" + cv "serve.timeout"
        then fail "serve.* counters do not balance"
      end;
      match !failures with
      | [] ->
          Printf.printf
            "check: %d answers audited bit-exact, all outcome classes \
             exercised, accounting balanced\n"
            r.Traffic.Driver.checked
      | fs ->
          List.iter (fun f -> Printf.eprintf "borg traffic: FAIL: %s\n" f)
            (List.rev fs);
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Open-loop overload harness: Poisson/Zipf traffic against the \
          admission-controlled server, with probing-derived rates, injected \
          faults, and a bit-exactness audit of every degraded answer.")
    Term.(const run $ requests_arg $ overload_arg $ tenants_arg $ method_arg
          $ faults_arg $ check_arg $ seed_arg $ trace_arg $ metrics_out_arg)

(* ---- store: import a dataset into the paged columnar store ---- *)

let store_cmd =
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Directory for the page files (default: a fresh temporary \
                   directory, removed afterwards).")
  in
  let page_rows_arg =
    Arg.(value & opt int Store.Paged.default_page_rows
         & info [ "page-rows" ] ~docv:"N" ~doc:"Rows per page.")
  in
  let cache_pages_arg =
    Arg.(value & opt int Store.Paged.default_cache_pages
         & info [ "cache-pages" ] ~docv:"N"
             ~doc:"Page-cache budget (decoded pages resident at once).")
  in
  let shards_arg =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"K"
             ~doc:"Also write per-shard page directories, routed like \
                   Fivm.Shard on the dataset's partition attribute.")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Re-open every relation, decode all pages against the \
                   directory, and check a paged scan reproduces the source \
                   relation bit for bit. Exits non-zero on any mismatch.")
  in
  let tuples_bit_equal a b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri
          (fun i x ->
            let y = b.(i) in
            let eq =
              match (x, y) with
              | Value.Float f, Value.Float g ->
                  Int64.bits_of_float f = Int64.bits_of_float g
              | _ -> Value.equal x y
            in
            if not eq then ok := false)
          a;
        !ok)
  in
  let run (dataset_name, spec) scale seed dir page_rows cache_pages shards
      verify trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let db = spec.generate ~scale ~seed () in
    let made_tmp = dir = None in
    let dir =
      match dir with
      | Some d ->
          if not (Sys.file_exists d) then Unix.mkdir d 0o755;
          d
      | None ->
          let d = Filename.temp_file "borg-store" "" in
          Sys.remove d;
          Unix.mkdir d 0o700;
          d
    in
    Printf.printf "store: importing %s (scale %g, %d rows/page) into %s\n"
      dataset_name scale page_rows dir;
    let failures = ref 0 in
    List.iter
      (fun rel ->
        let rname = Relation.name rel in
        let rows =
          Obs.with_span "store.import" (fun () ->
              Store.Loader.import_relation ~dir ~page_rows rel)
        in
        let p = Store.Paged.openr ~cache_pages ~dir rname in
        let bytes = (Unix.stat (Store.Paged.pages_path dir rname)).st_size in
        Printf.printf "  %-12s %8d rows %6d pages %9d bytes\n" rname rows
          (Store.Paged.pages p) bytes;
        if verify then
          Obs.with_span "store.verify" (fun () ->
              (match Store.Paged.verify p with
              | _pages, _rows -> ()
              | exception Relational.Codec.Decode_error e ->
                  incr failures;
                  Printf.printf "  %-12s FAILED verify: %s\n" rname
                    (Relational.Codec.error_message e));
              (* paged scan == source, bit for bit, through the page cache
                 (small budgets force evictions mid-scan) *)
              let base = ref 0 and bad = ref 0 in
              Store.Paged.iter_chunks p (fun chunk ->
                  for i = 0 to Relation.cardinality chunk - 1 do
                    if
                      not
                        (tuples_bit_equal (Relation.get chunk i)
                           (Relation.get rel (!base + i)))
                    then incr bad
                  done;
                  base := !base + Relation.cardinality chunk);
              if !base <> Relation.cardinality rel || !bad > 0 then begin
                incr failures;
                Printf.printf
                  "  %-12s FAILED round-trip: %d rows (want %d), %d mismatched\n"
                  rname !base
                  (Relation.cardinality rel)
                  !bad
              end;
              (* re-touch the most recent page: it must still be resident,
                 so this records a cache hit (retention within budget) *)
              if Store.Paged.pages p > 0 then
                ignore (Store.Paged.chunk p (Store.Paged.pages p - 1)));
        Store.Paged.close p)
      (Database.relations db);
    if shards > 0 then begin
      let plan = Fivm.Shard.plan ~shards db in
      let attr = Fivm.Shard.plan_attr plan in
      Printf.printf "store: sharding on %s across %d shards\n" attr shards;
      List.iter
        (fun rel ->
          let rname = Relation.name rel in
          match Schema.position_opt (Relation.schema rel) attr with
          | None -> Printf.printf "  %-12s broadcast (no %s)\n" rname attr
          | Some _ ->
              let per_shard =
                Store.Loader.import_sharded ~dir ~page_rows ~shards
                  ~key:[ attr ] rel
              in
              Printf.printf "  %-12s [%s] rows/shard\n" rname
                (String.concat "; " (List.map string_of_int per_shard)))
        (Database.relations db)
    end;
    if made_tmp then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end;
    if !failures > 0 then begin
      Printf.printf "store: %d relation(s) FAILED verification\n" !failures;
      exit 1
    end
    else if verify then Printf.printf "store: all relations verified\n"
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:"Import a dataset into the paged columnar store (and optionally \
             verify pages + scan round-trip).")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ dir_arg
          $ page_rows_arg $ cache_pages_arg $ shards_arg $ verify_arg
          $ trace_arg $ metrics_out_arg)

(* ---- scenarios: the hostile-stream (dataset x shape x layer) matrix ---- *)

let scenarios_cmd =
  let shape_arg =
    let sconv =
      Arg.enum (List.map (fun (n, s) -> (n, s)) Datagen.Stream_gen.shapes)
    in
    Arg.(value & opt_all sconv []
         & info [ "shape" ] ~docv:"SHAPE"
             ~doc:(Printf.sprintf
                     "Stream shape to run (repeatable); default: every shape. One of %s."
                     (String.concat ", " (List.map fst Datagen.Stream_gen.shapes))))
  in
  let layers_arg =
    let lconv =
      let parse s =
        let ls = List.map String.trim (String.split_on_char ',' s) in
        match List.find_opt (fun l -> not (List.mem l Scenario.layers)) ls with
        | Some bad ->
            Error (`Msg (Printf.sprintf "unknown layer %S (have: %s)" bad
                           (String.concat ", " Scenario.layers)))
        | None -> Ok ls
      in
      Arg.conv (parse, fun ppf ls -> Format.pp_print_string ppf (String.concat "," ls))
    in
    Arg.(value & opt lconv Scenario.layers
         & info [ "layers" ] ~docv:"L,.."
             ~doc:(Printf.sprintf "Comma-separated layer subset of: %s."
                     (String.concat ", " Scenario.layers)))
  in
  let shards_arg =
    let sconv =
      let parse s =
        try
          let ns = List.map int_of_string (String.split_on_char ',' (String.trim s)) in
          if List.for_all (fun n -> n >= 1) ns && ns <> [] then Ok ns
          else Error (`Msg "shard counts must be >= 1")
        with Failure _ -> Error (`Msg (Printf.sprintf "bad shard list %S" s))
      in
      Arg.conv
        (parse, fun ppf ns ->
          Format.pp_print_string ppf (String.concat "," (List.map string_of_int ns)))
    in
    Arg.(value & opt sconv [ 1; 4; 8 ]
         & info [ "shards" ] ~docv:"N,.." ~doc:"Shard counts for the shard layer.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit non-zero unless every differential in every cell passed.")
  in
  let scale_arg =
    Arg.(value & opt float 0.01
         & info [ "scale" ] ~docv:"S"
             ~doc:"Dataset scale factor (the matrix applies each stream through \
                   every layer, so cells are deliberately small).")
  in
  let run (name, spec) scale seed shapes layers shards check trace metrics_out =
    with_obs trace metrics_out @@ fun () ->
    let shapes =
      match shapes with [] -> List.map snd Datagen.Stream_gen.shapes | ss -> ss
    in
    let cells =
      List.map
        (fun shape ->
          (* a fresh generation per cell: [hostile] transforms the database
             in place of the stream's initial load *)
          let db = spec.generate ~scale ~seed () in
          let cell =
            Scenario.run_cell ~seed ~shards ~layers ~dataset:name ~shape
              ~features:spec.ivm_features db
          in
          Format.printf "%a@." Scenario.pp_cell cell;
          cell)
        shapes
    in
    let failed = List.filter (fun c -> not (Scenario.cell_ok c)) cells in
    Printf.printf "scenarios %s: %d cell(s), %d failed\n" name (List.length cells)
      (List.length failed);
    if check && failed <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:"Run hostile-stream differential cells (dataset x shape x layer): \
             deletes past zero, out-of-order batches, Zipf churn and \
             high-cardinality keys through maintenance, sharding, crash \
             recovery, serving, models and the streamed engines, each \
             checked bit-for-bit against an independent oracle.")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ shape_arg $ layers_arg
          $ shards_arg $ check_arg $ trace_arg $ metrics_out_arg)

let check_metrics_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let require_span_arg =
    Arg.(value & opt_all string []
         & info [ "require-span" ] ~docv:"NAME"
             ~doc:"Fail unless a span named $(docv) (or $(docv):...) was recorded. \
                   Repeatable.")
  in
  let require_counter_arg =
    Arg.(value & opt_all string []
         & info [ "require-counter" ] ~docv:"NAME"
             ~doc:"Fail unless counter $(docv) is present and non-zero. Repeatable.")
  in
  let require_histogram_arg =
    Arg.(value & opt_all string []
         & info [ "require-histogram" ] ~docv:"NAME"
             ~doc:"Fail unless histogram $(docv) is present with at least one \
                   observation. Repeatable.")
  in
  let require_eq_arg =
    Arg.(value & opt_all string []
         & info [ "require-eq" ] ~docv:"A=B+C"
             ~doc:"Fail unless the counter on the left equals the sum of the \
                   counters on the right (absent counters read as 0, matching \
                   the export, which omits zero counters). Repeatable.")
  in
  let require_le_arg =
    Arg.(value & opt_all string []
         & info [ "require-le" ] ~docv:"A<=B"
             ~doc:"Fail unless metric A is at most metric B. Each side is a \
                   gauge or counter name (gauges first) or a numeric literal; \
                   a named metric that is absent fails the check. Repeatable.")
  in
  let run file req_spans req_counters req_histograms req_eqs req_les =
    let contents = In_channel.with_open_text file In_channel.input_all in
    match Obs.Json.parse contents with
    | Error msg ->
        Printf.eprintf "check-metrics: %s: invalid JSON: %s\n" file msg;
        exit 1
    | Ok json ->
        let failures = ref [] in
        let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
        (* collect every span name in the tree *)
        let span_names = ref [] in
        let rec walk = function
          | Obs.Json.Obj _ as o ->
              (match Obs.Json.member "name" o with
              | Some (Obs.Json.Str n) -> span_names := n :: !span_names
              | _ -> ());
              (match Obs.Json.member "children" o with
              | Some (Obs.Json.Arr kids) -> List.iter walk kids
              | _ -> ())
          | _ -> ()
        in
        (match Obs.Json.member "spans" json with
        | Some (Obs.Json.Arr spans) -> List.iter walk spans
        | _ -> fail "no \"spans\" array");
        List.iter
          (fun req ->
            let matches n = n = req || String.starts_with ~prefix:(req ^ ":") n in
            if not (List.exists matches !span_names) then
              fail "missing span %S" req)
          req_spans;
        (match Obs.Json.member "counters" json with
        | Some (Obs.Json.Obj cs) ->
            List.iter
              (fun req ->
                match List.assoc_opt req cs with
                | Some (Obs.Json.Num v) when v > 0.0 -> ()
                | Some _ -> fail "counter %S is zero" req
                | None -> fail "missing counter %S" req)
              req_counters
        | _ -> if req_counters <> [] then fail "no \"counters\" object");
        (* counter lookup treating absence as 0 — the export omits counters
           that never moved, so an accounting identity over them must too *)
        let counter_value name =
          match Obs.Json.member "counters" json with
          | Some (Obs.Json.Obj cs) -> (
              match List.assoc_opt name cs with
              | Some (Obs.Json.Num v) -> v
              | _ -> 0.0)
          | _ -> 0.0
        in
        List.iter
          (fun eq ->
            match String.split_on_char '=' eq with
            | [ lhs; rhs ] ->
                let lhs = String.trim lhs in
                let terms =
                  List.map String.trim (String.split_on_char '+' rhs)
                in
                let sum =
                  List.fold_left (fun a t -> a +. counter_value t) 0.0 terms
                in
                let v = counter_value lhs in
                if v <> sum then
                  fail "identity %S: %g <> %g" eq v sum
            | _ -> fail "malformed --require-eq %S (want A=B+C+...)" eq)
          req_eqs;
        (* gauge-or-counter lookup for ordering assertions (e.g. peak cache
           residency bounded by the configured budget) *)
        let metric_value name =
          match float_of_string_opt name with
          | Some v -> Some v
          | None -> (
              let in_obj key =
                match Obs.Json.member key json with
                | Some (Obs.Json.Obj kvs) -> (
                    match List.assoc_opt name kvs with
                    | Some (Obs.Json.Num v) -> Some v
                    | _ -> None)
                | _ -> None
              in
              match in_obj "gauges" with
              | Some v -> Some v
              | None -> in_obj "counters")
        in
        List.iter
          (fun le ->
            match String.index_opt le '<' with
            | Some i
              when i + 1 < String.length le && le.[i + 1] = '=' ->
                let lhs = String.trim (String.sub le 0 i) in
                let rhs =
                  String.trim (String.sub le (i + 2) (String.length le - i - 2))
                in
                (match (metric_value lhs, metric_value rhs) with
                | Some a, Some b ->
                    if not (a <= b) then fail "bound %S: %g > %g" le a b
                | None, _ -> fail "bound %S: missing metric %S" le lhs
                | _, None -> fail "bound %S: missing metric %S" le rhs)
            | _ -> fail "malformed --require-le %S (want A<=B)" le)
          req_les;
        (match Obs.Json.member "histograms" json with
        | Some (Obs.Json.Obj hs) ->
            List.iter
              (fun req ->
                match List.assoc_opt req hs with
                | Some h -> (
                    match Obs.Json.member "count" h with
                    | Some (Obs.Json.Num n) when n > 0.0 -> ()
                    | _ -> fail "histogram %S has no observations" req)
                | None -> fail "missing histogram %S" req)
              req_histograms
        | _ -> if req_histograms <> [] then fail "no \"histograms\" object");
        (match !failures with
        | [] ->
            Printf.printf "check-metrics: %s ok (%d spans, %d required counters)\n"
              file (List.length !span_names) (List.length req_counters)
        | fs ->
            List.iter (fun f -> Printf.eprintf "check-metrics: %s\n" f) (List.rev fs);
            exit 1)
  in
  Cmd.v
    (Cmd.info "check-metrics"
       ~doc:"Validate a --metrics-out JSON snapshot (used by the CI smoke test).")
    Term.(const run $ file_arg $ require_span_arg $ require_counter_arg
          $ require_histogram_arg $ require_eq_arg $ require_le_arg)

let () =
  let doc = "machine learning over relational data, the structure-aware way" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "borg" ~version:"1.0.0" ~doc)
          [
            generate_cmd;
            train_cmd;
            tree_cmd;
            batches_cmd;
            ivm_cmd;
            maintain_cmd;
            agg_cmd;
            serve_cmd;
            learn_cmd;
            traffic_cmd;
            store_cmd;
            scenarios_cmd;
            check_metrics_cmd;
          ]))
