(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over strings.

   Integrity checking for the resilience layer's on-disk formats (WAL record
   framing and checkpoint payloads): a torn write or a flipped bit must be
   detected, not replayed into maintained state. Table-driven, byte at a
   time — plenty for update-record-sized inputs. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Checksum.crc32_sub";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)

let crc32_bytes b ~pos ~len = crc32_sub (Bytes.unsafe_to_string b) ~pos ~len
