(** CRC-32 (IEEE, reflected) integrity checksums for the resilience layer's
    on-disk formats. Results are non-negative 32-bit values in an [int]. *)

val crc32 : string -> int
val crc32_sub : string -> pos:int -> len:int -> int
val crc32_bytes : Bytes.t -> pos:int -> len:int -> int
