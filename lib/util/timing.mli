(** Wall-clock timing for the experiment harness. *)

val now : unit -> float
(** Monotonic seconds from an unspecified origin ({!Obs.Clock.now}); only
    differences between readings are meaningful. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] once, returning its result and elapsed seconds. *)

val time_only : (unit -> 'a) -> float
(** Elapsed seconds of one run, result discarded. *)

val measure : ?repeats:int -> ?warmup:bool -> (unit -> 'a) -> float
(** Median elapsed seconds over [repeats] runs (default 3) after an optional
    warm-up run; even [repeats] average the two middle samples. *)

val pp_duration : Format.formatter -> float -> unit
(** Human-readable duration (ns/us/ms/s). *)

val to_string : float -> string
(** [to_string s] renders like {!pp_duration}. *)
