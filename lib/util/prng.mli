(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the repository flows through this module so that data
    generation, shuffling, and randomised tests are reproducible per seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val next_int64 : t -> int64
(** Raw 64-bit output of one splitmix64 step. *)

val bits : t -> int
(** Uniform non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_range : t -> float -> float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed value (Box-Muller). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly chosen element. Raises on empty arrays. *)

val split : t -> t
(** A generator seeded from this one; both can then be used independently. *)

val backoff : t -> base:float -> cap:float -> attempt:int -> float
(** [backoff t ~base ~cap ~attempt] draws a full-jitter exponential backoff
    delay: uniform in [\[0, min cap (base * 2^attempt))]. [attempt] counts
    from 0 and is clamped internally so large values cannot overflow.
    Deterministic under seed; raises on negative [base] or [cap]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with skew exponent [s] (s <= 0 gives
    uniform). Used to generate realistically skewed foreign keys. *)
