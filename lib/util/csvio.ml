(* Minimal CSV reading/writing.

   The structure-agnostic baseline of Figure 3 round-trips the materialised
   data matrix through CSV to model the PostgreSQL -> TensorFlow export/import
   step, so this module is on the measured path and avoids quadratic string
   building. Only the simple dialect is supported: comma separator, no quoted
   separators (our generators never emit commas inside fields). *)

(* Malformed input (wrong arity, unparseable cell) carries its SOURCE
   position: 1-based line and column (column = cell index + 1), so a bad
   cell in a million-row import is findable. Raised by the typed loaders
   ([Relation.of_csv_rows]) on top of the located rows below. *)
exception Malformed of { line : int; column : int; reason : string }

let malformed ~line ~column reason = raise (Malformed { line; column; reason })

let () =
  Printexc.register_printer (function
    | Malformed { line; column; reason } ->
        Some (Printf.sprintf "malformed CSV at line %d, column %d: %s" line column reason)
    | _ -> None)

let split_line line =
  String.split_on_char ',' line

let strip_cr line =
  if String.length line > 0 && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

(* Rows paired with their 1-based physical line numbers; blank lines are
   skipped but keep counting, so positions in {!Malformed} match the file. *)
let parse_string_located s =
  let lines = String.split_on_char '\n' s in
  List.rev
    (snd
       (List.fold_left
          (fun (lineno, acc) line ->
            let line = strip_cr line in
            ( lineno + 1,
              if line = "" then acc else (lineno, split_line line) :: acc ))
          (1, []) lines))

let parse_string s = List.map snd (parse_string_located s)

let write_row buf row =
  List.iteri
    (fun i cell ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf cell)
    row;
  Buffer.add_char buf '\n'

let to_string rows =
  let buf = Buffer.create 4096 in
  List.iter (write_row buf) rows;
  Buffer.contents buf

let write_file path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      List.iter
        (fun row ->
          write_row buf row;
          if Buffer.length buf > 1_000_000 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end)
        rows;
      Buffer.output_buffer oc buf)

let read_file_located path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | line ->
            let line = strip_cr line in
            loop (lineno + 1)
              (if line = "" then acc else (lineno, split_line line) :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop 1 [])

let read_file path = List.map snd (read_file_located path)
