(* Deterministic pseudo-random number generation based on splitmix64.

   All data generators and randomised algorithms in this repository draw from
   this PRNG rather than [Stdlib.Random] so that every experiment is exactly
   reproducible from a seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: the state advances by the golden-gamma constant and the
   output is a finalising mix of the new state. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* A non-negative 62-bit integer. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  bits t mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound = Stdlib.float_of_int (bits t) /. 4611686018427387904.0 *. bound

let float_range t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Box-Muller transform; one value per call, the pair's second half is
   discarded to keep the generator stateless beyond [state]. *)
let gaussian t ~mu ~sigma =
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t (Array.length arr))

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }

(* Full-jitter exponential backoff (the AWS architecture-blog variant):
   uniform in [0, min cap (base * 2^attempt)]. Full jitter beats equal/no
   jitter at decorrelating retry storms — two clients that failed together
   do not retry together. The exponent is clamped so [1 lsl attempt] cannot
   overflow into a negative sleep. *)
let backoff t ~base ~cap ~attempt =
  if base < 0.0 || cap < 0.0 then invalid_arg "Prng.backoff: negative base or cap";
  let attempt = Stdlib.max 0 (Stdlib.min 60 attempt) in
  let ceiling = Float.min cap (base *. Float.of_int (1 lsl attempt)) in
  if ceiling <= 0.0 then 0.0 else float t ceiling

(* Zipf-distributed rank in [1, n] with exponent [s], via rejection-free
   inverse-CDF over a precomputed table would be costly per-call; we use the
   standard approximation by rejection sampling (Devroye). Good enough for
   skewed workload generation. *)
let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if s <= 0.0 then int_range t 1 n
  else begin
    let b = 2.0 ** (s -. 1.0) in
    let rec loop () =
      let u = Stdlib.max 1e-12 (float t 1.0) in
      let v = float t 1.0 in
      let x = Float.of_int (Float.to_int (float_of_int n ** u)) +. 1.0 in
      let x = Stdlib.min x (float_of_int n) in
      let t' = x ** (s -. 1.0) in
      if v *. x *. (t' -. 1.0) /. (b -. 1.0) <= t' /. b then Float.to_int x
      else loop ()
    in
    Stdlib.max 1 (Stdlib.min n (loop ()))
  end
