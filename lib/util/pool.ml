(* Domain-based parallel map over index ranges (OCaml 5 Domains).

   LMFAO's domain parallelism (Section 4 of the paper) partitions a relation
   into chunks processed by worker domains whose partial aggregates are then
   combined. This module provides exactly that pattern.

   All spawning goes through one PROCESS-GLOBAL worker budget: nested
   [parallel_tasks] / [parallel_chunks] calls (LMFAO recurses over subtrees
   from inside parallel root groups) acquire spawn tokens from a shared
   atomic pool and run inline when it is exhausted, so the peak number of
   live domains never exceeds [num_domains ()] no matter how deeply the
   calls nest or how many of them run concurrently. *)

(* [domains_of_env v] parses a BORG_DOMAINS value. Anything that is not a
   positive integer (junk, "", "0", negatives) falls back to the documented
   default: the runtime's recommendation capped at 8. *)
let default_domains () =
  Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count ()))

let domains_of_env = function
  | None -> default_domains ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | Some _ | None -> default_domains ())

let num_domains () = domains_of_env (Sys.getenv_opt "BORG_DOMAINS")

(* ---------- the global worker budget ----------

   [budget_avail] holds the spawn tokens still free; each spawned domain
   holds one token until it is joined. The total is fixed at module
   initialisation to [num_domains () - 1] (the calling domain is the
   remaining worker), so with BORG_DOMAINS=1 nothing ever spawns. Tests and
   benchmarks may resize the pool with [set_worker_budget] while no workers
   are live. *)

let budget_total = Atomic.make (Stdlib.max 0 (num_domains () - 1))
let budget_avail = Atomic.make (Atomic.get budget_total)

let worker_budget () = Atomic.get budget_total

let set_worker_budget n =
  let n = Stdlib.max 0 n in
  Atomic.set budget_total n;
  Atomic.set budget_avail n

let rec try_acquire want =
  if want <= 0 then 0
  else
    let avail = Atomic.get budget_avail in
    if avail <= 0 then 0
    else
      let take = Stdlib.min want avail in
      if Atomic.compare_and_set budget_avail avail (avail - take) then take
      else try_acquire want

let release n = if n > 0 then ignore (Atomic.fetch_and_add budget_avail n)

(* Live-domain accounting (1 = the main domain). The counter moves in the
   spawning domain — up just before [Domain.spawn], down after the matching
   join — so [peak_live_domains] is an upper bound on concurrently live
   domains and exactly mirrors token ownership. *)

let live = Atomic.make 1
let peak = Atomic.make 1

let rec bump_peak v =
  let p = Atomic.get peak in
  if v > p && not (Atomic.compare_and_set peak p v) then bump_peak v

let live_domains () = Atomic.get live
let peak_live_domains () = Atomic.get peak
let reset_peak_live_domains () = Atomic.set peak (Atomic.get live)

let c_spawned = Obs.counter "pool.spawned"
let c_inline = Obs.counter "pool.budget_inline"

(* Spawn [granted] copies of [worker] (the caller already holds [granted]
   tokens), run [worker] inline too, then join and release. Tokens and the
   live count are restored even if a worker raises. *)
let with_workers granted worker =
  if granted <= 0 then worker ()
  else begin
    bump_peak (granted + Atomic.fetch_and_add live granted);
    Obs.add c_spawned granted;
    let spawned = List.init granted (fun _ -> Domain.spawn worker) in
    Fun.protect
      ~finally:(fun () ->
        List.iter Domain.join spawned;
        ignore (Atomic.fetch_and_add live (-granted));
        release granted)
      worker
  end

(* Split [0, n) into at most [chunks] contiguous ranges. *)
let ranges n chunks =
  let chunks = Stdlib.max 1 (Stdlib.min n chunks) in
  let base = n / chunks and rem = n mod chunks in
  let rec build i start acc =
    if i = chunks then List.rev acc
    else
      let len = base + if i < rem then 1 else 0 in
      build (i + 1) (start + len) ((start, len) :: acc)
  in
  if n = 0 then [] else build 0 0 []

(* [parallel_chunks ~domains ~chunks n f ~combine ~zero] applies [f lo len]
   on each chunk, distributing chunks over worker domains, and folds the
   results with [combine] in chunk-index order. The decomposition and the
   fold order depend only on [n] and [chunks] — never on how many domains
   execute them — so for a fixed chunk count the result is bit-identical
   across domain counts even when [combine] is non-commutative.
   [chunks] defaults to [domains] to preserve the historical decomposition
   for callers with commutative combines. With one worker (or one chunk)
   everything runs inline on the calling domain: no spawn. *)
let parallel_chunks ?domains ?chunks n f ~combine ~zero =
  let domains =
    Stdlib.max 1 (match domains with Some d -> d | None -> num_domains ())
  in
  let chunks = match chunks with Some c -> Stdlib.max 1 c | None -> domains in
  match ranges n chunks with
  | [] -> zero
  | [ (lo, len) ] -> combine zero (f lo len)
  | rs ->
      let rs = Array.of_list rs in
      let k = Array.length rs in
      let results = Array.make k None in
      let workers = Stdlib.min domains k in
      let granted = if workers <= 1 then 0 else try_acquire (workers - 1) in
      if granted = 0 then begin
        if workers > 1 then Obs.add c_inline k;
        Array.iteri (fun i (lo, len) -> results.(i) <- Some (f lo len)) rs
      end
      else begin
        let next = Atomic.make 0 in
        let worker () =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < k then begin
              let lo, len = rs.(i) in
              results.(i) <- Some (f lo len);
              loop ()
            end
          in
          loop ()
        in
        with_workers granted worker
      end;
      Array.fold_left
        (fun acc r ->
          match r with
          | Some v -> combine acc v
          | None -> failwith "Pool.parallel_chunks: missing chunk")
        zero results

(* Run a list of independent thunks in parallel, preserving order of
   results. Used for LMFAO task parallelism over independent view groups. *)
let parallel_tasks ?domains thunks =
  let domains = match domains with Some d -> d | None -> num_domains () in
  if domains <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let tasks = Array.of_list thunks in
    let n = Array.length tasks in
    let results = Array.make n None in
    let granted =
      try_acquire (Stdlib.min (domains - 1) (Stdlib.max 0 (n - 1)))
    in
    if granted = 0 then begin
      Obs.add c_inline n;
      Array.iteri (fun i t -> results.(i) <- Some (t ())) tasks
    end
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (tasks.(i) ());
            loop ()
          end
        in
        loop ()
      in
      with_workers granted worker
    end;
    Array.to_list
      (Array.map
         (function Some r -> r | None -> failwith "Pool.parallel_tasks: missing")
         results)
  end
