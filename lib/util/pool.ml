(* Domain-based parallel map over index ranges (OCaml 5 Domains).

   LMFAO's domain parallelism (Section 4 of the paper) partitions a relation
   into chunks processed by worker domains whose partial aggregates are then
   combined. This module provides exactly that pattern. *)

let num_domains () =
  match Sys.getenv_opt "BORG_DOMAINS" with
  | Some s -> (try Stdlib.max 1 (int_of_string s) with _ -> 4)
  | None -> Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count ()))

(* Split [0, n) into at most [chunks] contiguous ranges. *)
let ranges n chunks =
  let chunks = Stdlib.max 1 (Stdlib.min n chunks) in
  let base = n / chunks and rem = n mod chunks in
  let rec build i start acc =
    if i = chunks then List.rev acc
    else
      let len = base + if i < rem then 1 else 0 in
      build (i + 1) (start + len) ((start, len) :: acc)
  in
  if n = 0 then [] else build 0 0 []

(* [parallel_chunks ~domains ~chunks n f ~combine ~zero] applies [f lo len]
   on each chunk, distributing chunks over worker domains, and folds the
   results with [combine] in chunk-index order. The decomposition and the
   fold order depend only on [n] and [chunks] — never on how many domains
   execute them — so for a fixed chunk count the result is bit-identical
   across domain counts even when [combine] is non-commutative.
   [chunks] defaults to [domains] to preserve the historical decomposition
   for callers with commutative combines. With one worker (or one chunk)
   everything runs inline on the calling domain: no spawn. *)
let parallel_chunks ?domains ?chunks n f ~combine ~zero =
  let domains =
    Stdlib.max 1 (match domains with Some d -> d | None -> num_domains ())
  in
  let chunks = match chunks with Some c -> Stdlib.max 1 c | None -> domains in
  match ranges n chunks with
  | [] -> zero
  | [ (lo, len) ] -> combine zero (f lo len)
  | rs ->
      let rs = Array.of_list rs in
      let k = Array.length rs in
      let results = Array.make k None in
      let workers = Stdlib.min domains k in
      if workers <= 1 then
        Array.iteri (fun i (lo, len) -> results.(i) <- Some (f lo len)) rs
      else begin
        let next = Atomic.make 0 in
        let worker () =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < k then begin
              let lo, len = rs.(i) in
              results.(i) <- Some (f lo len);
              loop ()
            end
          in
          loop ()
        in
        let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join spawned
      end;
      Array.fold_left
        (fun acc r ->
          match r with
          | Some v -> combine acc v
          | None -> failwith "Pool.parallel_chunks: missing chunk")
        zero results

(* Run a list of independent thunks in parallel, preserving order of
   results. Used for LMFAO task parallelism over independent view groups. *)
let parallel_tasks ?domains thunks =
  let domains = match domains with Some d -> d | None -> num_domains () in
  if domains <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let tasks = Array.of_list thunks in
    let n = Array.length tasks in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (Stdlib.min (domains - 1) (Stdlib.max 0 (n - 1))) (fun _ ->
          Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function Some r -> r | None -> failwith "Pool.parallel_tasks: missing")
         results)
  end
