(** Domain-based parallelism helpers (OCaml 5) implementing LMFAO's domain
    and task parallelism patterns. *)

val num_domains : unit -> int
(** Worker count: [BORG_DOMAINS] env var if set, else the runtime's
    recommendation capped at 8. *)

val ranges : int -> int -> (int * int) list
(** [ranges n chunks] splits [\[0, n)] into at most [chunks] contiguous
    [(start, length)] ranges covering it exactly. *)

val parallel_chunks :
  ?domains:int ->
  ?chunks:int ->
  int ->
  (int -> int -> 'a) ->
  combine:('b -> 'a -> 'b) ->
  zero:'b ->
  'b
(** [parallel_chunks n f ~combine ~zero] evaluates [f start len] on each chunk
    of [\[0, n)] in parallel domains and folds the partial results in
    chunk-index order. The decomposition and fold order depend only on [n]
    and [chunks] (default: the domain count), so for a fixed [chunks] the
    result is independent of how many domains run the work — bit-identical
    even for non-commutative [combine]. [?domains:1] runs inline without
    spawning. *)

val parallel_tasks : ?domains:int -> (unit -> 'a) list -> 'a list
(** Run independent thunks in parallel, returning results in input order. *)
