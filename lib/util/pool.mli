(** Domain-based parallelism helpers (OCaml 5) implementing LMFAO's domain
    and task parallelism patterns, with one process-global worker budget
    shared by every (possibly nested) call. *)

val num_domains : unit -> int
(** Worker count: [BORG_DOMAINS] env var if it parses as a positive
    integer, else the runtime's recommendation capped at 8 (the same
    default an unset variable gets — junk, ["0"] and negatives never pick
    an arbitrary constant). *)

val domains_of_env : string option -> int
(** The [BORG_DOMAINS] parsing rule behind {!num_domains}, exposed for
    tests: [None], non-integers and values [< 1] all yield the documented
    default. *)

(** {1 Global worker budget}

    Every spawn takes a token from a process-wide pool of
    [num_domains () - 1] tokens (fixed at module initialisation; the
    calling domain is the remaining worker). Nested parallel calls that
    find the pool empty run inline instead of oversubscribing, so peak
    live domains never exceed [worker_budget () + 1]. *)

val worker_budget : unit -> int
(** Total spawn tokens. *)

val set_worker_budget : int -> unit
(** Resize the token pool (clamped at 0). Test/bench hook — only call
    while no worker domains are live, or tokens will be miscounted. *)

val live_domains : unit -> int
(** Domains currently alive (1 = just the main domain). *)

val peak_live_domains : unit -> int
(** High-water mark of {!live_domains} since the last
    {!reset_peak_live_domains}. *)

val reset_peak_live_domains : unit -> unit

(** {1 Parallel maps} *)

val ranges : int -> int -> (int * int) list
(** [ranges n chunks] splits [\[0, n)] into at most [chunks] contiguous
    [(start, length)] ranges covering it exactly. *)

val parallel_chunks :
  ?domains:int ->
  ?chunks:int ->
  int ->
  (int -> int -> 'a) ->
  combine:('b -> 'a -> 'b) ->
  zero:'b ->
  'b
(** [parallel_chunks n f ~combine ~zero] evaluates [f start len] on each chunk
    of [\[0, n)] in parallel domains and folds the partial results in
    chunk-index order. The decomposition and fold order depend only on [n]
    and [chunks] (default: the domain count), so for a fixed [chunks] the
    result is independent of how many domains run the work — bit-identical
    even for non-commutative [combine] — and in particular independent of
    how many spawn tokens the global budget happens to grant. [?domains:1]
    runs inline without spawning or touching the budget. *)

val parallel_tasks : ?domains:int -> (unit -> 'a) list -> 'a list
(** Run independent thunks in parallel, returning results in input order.
    Spawns at most [min (domains - 1) (n - 1)] workers, further capped by
    the free tokens of the global budget (0 free: all thunks run inline on
    the calling domain). *)
