(** Minimal CSV support for the export/import steps of the structure-agnostic
    baseline. Simple dialect: comma separator, no embedded commas/quotes. *)

exception Malformed of { line : int; column : int; reason : string }
(** Malformed input with its SOURCE position: 1-based line, 1-based column
    (cell index + 1). Raised by typed loaders built on the located rows
    (e.g. [Relation.of_csv_rows]) for wrong arity or unparseable cells. *)

val malformed : line:int -> column:int -> string -> 'a
(** Raise {!Malformed}. *)

val parse_string : string -> string list list
(** Parse CSV text into rows of cells; blank lines are skipped. *)

val parse_string_located : string -> (int * string list) list
(** Rows paired with 1-based physical line numbers (blank lines skipped but
    counted, so positions match the source text). *)

val to_string : string list list -> string
(** Serialise rows to CSV text. *)

val write_file : string -> string list list -> unit
val read_file : string -> string list list
val read_file_located : string -> (int * string list) list
