(* Concurrent aggregate serving over Lmfao.Engine with an epoch-invalidated
   result cache.

   The paper's serving story (ROADMAP north star) is repeated traffic of the
   SAME aggregate batches — covariance matrices for model reoptimisation,
   mutual-information batches for structure search — over a database that
   F-IVM keeps fresh. Re-running LMFAO's decomposition per request wastes
   the repetition, so this layer caches batch results keyed by

     (Batch.fingerprint, database epoch)

   where the epoch is an atomic counter advanced by every delta batch. A
   request whose cached entry carries the current epoch is a HIT (no engine
   work at all). On delta application, cache entries are either

   - REFRESHED in place, when every aggregate of the batch is a coordinate
     of the maintained covariance triple (COUNT, SUM(x), SUM(x^2),
     SUM(x*y) over the maintainer's features, unfiltered and ungrouped):
     the new result is read straight out of [Maintainer.covariance], which
     F-IVM has already brought up to date — no recompute; or
   - DROPPED (invalidated), for anything else (group-bys, filters,
     non-feature attributes); the next request recomputes and re-caches.

   Under exact arithmetic (the dyadic-lattice inputs of the differential
   tests) refreshed entries are bit-identical to a fresh LMFAO recompute,
   because both pipelines produce exactly representable sums.

   Concurrency: the cache is guarded by one mutex held only for lookups and
   insertions (never across engine work); the epoch is an [Atomic]. Reads
   may run as K concurrent clients on [Util.Pool] tasks under the global
   worker budget. Delta application is single-writer: callers must not
   overlap [apply_deltas] with in-flight reads (the CLI and tests serialise
   them; a miss that loses the race to a concurrent delta batch is inserted
   at its own stale epoch and simply misses again next time). *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch
module Cov = Rings.Covariance
module Maintainer = Fivm.Maintainer

(* Coordinate of one covariance-backed aggregate in the maintained triple. *)
type coord = C | S of int | Q of int * int

type entry = {
  mutable e_epoch : int; (* epoch the cached result is valid for *)
  mutable e_result : (string * Spec.result) list;
  refresh : (string * coord) list option;
      (* per-aggregate coordinates when the WHOLE batch is covariance-backed *)
}

type stats = { hits : int; misses : int; invalidations : int; refreshes : int }

type t = {
  maintainer : Maintainer.t;
  schema_db : Database.t; (* empty, schema-shaped; snapshots clone it *)
  feature_index : (string, int) Hashtbl.t;
  epoch : int Atomic.t;
  cache : (int, entry) Hashtbl.t; (* fingerprint -> entry *)
  lock : Mutex.t;
  options : Lmfao.Engine.options;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  refreshes : int Atomic.t;
}

let c_hits = Obs.counter "serve.hits"
let c_misses = Obs.counter "serve.misses"
let c_invalidations = Obs.counter "serve.invalidations"
let c_refreshes = Obs.counter "serve.refreshes"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(options = Lmfao.Engine.default_options) strategy
    (db : Database.t) ~features =
  let maintainer = Maintainer.create strategy db ~features in
  let feature_index = Hashtbl.create 8 in
  List.iteri (fun i f -> Hashtbl.replace feature_index f i) features;
  {
    maintainer;
    schema_db = db;
    feature_index;
    epoch = Atomic.make 0;
    cache = Hashtbl.create 16;
    lock = Mutex.create ();
    options;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    refreshes = Atomic.make 0;
  }

let maintainer t = t.maintainer
let epoch t = Atomic.get t.epoch
let cache_size t = locked t (fun () -> Hashtbl.length t.cache)

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    invalidations = Atomic.get t.invalidations;
    refreshes = Atomic.get t.refreshes;
  }

(* ---------- covariance-backed detection ---------- *)

let coord_of_spec t (s : Spec.t) =
  let idx a = Hashtbl.find_opt t.feature_index a in
  if s.filter <> Predicate.True || s.group_by <> [] then None
  else
    match s.terms with
    | [] -> Some C
    | [ (x, 1) ] -> Option.map (fun i -> S i) (idx x)
    | [ (x, 2) ] -> Option.map (fun i -> Q (i, i)) (idx x)
    | [ (x, 1); (y, 1) ] -> (
        match (idx x, idx y) with
        | Some i, Some j -> Some (Q (i, j))
        | _ -> None)
    | _ -> None

(* The refresh plan: Some coords iff EVERY aggregate is a triple
   coordinate — a partially backed batch cannot be refreshed consistently,
   so it invalidates as a whole. *)
let refresh_plan t (batch : Batch.t) =
  let rec all acc = function
    | [] -> Some (List.rev acc)
    | (s : Spec.t) :: rest -> (
        match coord_of_spec t s with
        | Some c -> all ((s.id, c) :: acc) rest
        | None -> None)
  in
  all [] batch.Batch.aggregates

let coord_value (cov : Cov.t) = function
  | C -> cov.Cov.c
  | S i -> Util.Vec.get cov.Cov.s i
  | Q (i, j) -> Util.Mat.get cov.Cov.q i j

let result_of_plan cov plan =
  List.map (fun (id, c) -> (id, [ ([], coord_value cov c) ])) plan

(* ---------- snapshot + recompute ---------- *)

(* Current database contents as a fresh [Database.t]: replay [Storage.dump]
   (live tuples in insertion-stamp order) into empty clones of the schema
   relations. Order preservation keeps LMFAO's accumulation order — and so
   its float results — deterministic for a given stream. *)
let snapshot t : Database.t =
  let rels =
    List.map
      (fun r -> Relation.create (Relation.name r) (Relation.schema r))
      (Database.relations t.schema_db)
  in
  let db = Database.create (Database.name t.schema_db) rels in
  List.iter
    (fun (u : Fivm.Delta.update) ->
      let rel = Database.relation db u.Fivm.Delta.relation in
      for _ = 1 to u.Fivm.Delta.multiplicity do
        Relation.append rel u.Fivm.Delta.tuple
      done)
    (Fivm.Storage.dump (Maintainer.storage t.maintainer));
  db

(* Recompute the batch and return results in BATCH order (the engine groups
   its keyed results by decomposition root) — the serving contract is
   request order, and refreshed entries are rebuilt in batch order too. *)
let recompute t (batch : Batch.t) =
  let r =
    Lmfao.Engine.eval ~options:t.options ~on_cyclic:`Materialize (snapshot t)
      batch
  in
  let table = Lazy.force r.Lmfao.Engine.table in
  List.map
    (fun (s : Spec.t) ->
      match Hashtbl.find_opt table s.id with
      | Some res -> (s.id, res)
      | None -> failwith "Serve.recompute: engine lost an aggregate")
    batch.Batch.aggregates

(* ---------- the read path ---------- *)

let serve t (batch : Batch.t) : (string * Spec.result) list =
  Obs.with_span "serve.request" @@ fun () ->
  let fp = Batch.fingerprint batch in
  let now = Atomic.get t.epoch in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.cache fp with
        | Some e when e.e_epoch = now -> Some e.e_result
        | _ -> None)
  in
  match cached with
  | Some r ->
      Atomic.incr t.hits;
      Obs.incr c_hits;
      r
  | None ->
      Atomic.incr t.misses;
      Obs.incr c_misses;
      let keyed = recompute t batch in
      locked t (fun () ->
          match Hashtbl.find_opt t.cache fp with
          | Some e when e.e_epoch >= now ->
              (* a concurrent miss (or a refresh) got there first; keep the
                 newer entry *)
              ()
          | _ ->
              Hashtbl.replace t.cache fp
                {
                  e_epoch = now;
                  e_result = keyed;
                  refresh = refresh_plan t batch;
                });
      keyed

(* K concurrent clients on pool tasks; [clients] bounds the domains used
   (further capped by the global worker budget). Results in input order. *)
let serve_many ?clients t (batches : Batch.t list) =
  Util.Pool.parallel_tasks ?domains:clients
    (List.map (fun b () -> serve t b) batches)

(* ---------- the write path ---------- *)

let apply_deltas t (updates : Fivm.Delta.update list) =
  Obs.with_span "serve.apply" @@ fun () ->
  Maintainer.apply_batch t.maintainer updates;
  let next = Atomic.fetch_and_add t.epoch 1 + 1 in
  let cov = lazy (Maintainer.covariance t.maintainer) in
  locked t (fun () ->
      let dropped = ref [] in
      Hashtbl.iter
        (fun fp (e : entry) ->
          if e.e_epoch < next then
            match e.refresh with
            | Some plan ->
                e.e_result <- result_of_plan (Lazy.force cov) plan;
                e.e_epoch <- next;
                Atomic.incr t.refreshes;
                Obs.incr c_refreshes
            | None ->
                dropped := fp :: !dropped;
                Atomic.incr t.invalidations;
                Obs.incr c_invalidations)
        t.cache;
      List.iter (Hashtbl.remove t.cache) !dropped)
