(* Concurrent aggregate serving over Lmfao.Engine with an epoch-invalidated
   result cache.

   The paper's serving story (ROADMAP north star) is repeated traffic of the
   SAME aggregate batches — covariance matrices for model reoptimisation,
   mutual-information batches for structure search — over a database that
   F-IVM keeps fresh. Re-running LMFAO's decomposition per request wastes
   the repetition, so this layer caches batch results keyed by

     (Batch.fingerprint, database epoch)

   where the epoch is an atomic counter advanced by every delta batch. A
   request whose cached entry carries the current epoch is a HIT (no engine
   work at all). On delta application, cache entries are either

   - REFRESHED in place, when every aggregate of the batch is a coordinate
     of the maintained covariance triple (COUNT, SUM(x), SUM(x^2),
     SUM(x*y) over the maintainer's features, unfiltered and ungrouped):
     the new result is read straight out of [Maintainer.covariance], which
     F-IVM has already brought up to date — no recompute; or
   - DROPPED (invalidated), for anything else (group-bys, filters,
     non-feature attributes); the next request recomputes and re-caches.

   Under exact arithmetic (the dyadic-lattice inputs of the differential
   tests) refreshed entries are bit-identical to a fresh LMFAO recompute,
   because both pipelines produce exactly representable sums.

   Concurrency: the cache is guarded by one mutex held only for lookups and
   insertions (never across engine work); the epoch is an [Atomic]. Reads
   may run as K concurrent clients on [Util.Pool] tasks under the global
   worker budget. Delta application is single-writer: callers must not
   overlap [apply_deltas] with in-flight reads (the CLI and tests serialise
   them; a miss that loses the race to a concurrent delta batch is inserted
   at its own stale epoch and simply misses again next time). *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch
module Cov = Rings.Covariance
module Maintainer = Fivm.Maintainer

(* Coordinate of one covariance-backed aggregate in the maintained triple. *)
type coord = C | S of int | Q of int * int

type entry = {
  mutable e_epoch : int; (* epoch the cached result is valid for *)
  mutable e_result : (string * Spec.result) list;
  refresh : (string * coord) list option;
      (* per-aggregate coordinates when the WHOLE batch is covariance-backed *)
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  refreshes : int;
  clients_clamped : int;
  model_refreshes : int;
  model_predictions : int;
}

(* One registered model: the module that trains it, the current parameters,
   the epoch they were trained at, and the staleness budget (how many epochs
   the model may lag the data before [apply_deltas] must refresh it). *)
type mentry = {
  spec : Ml.Model_intf.t;
  m_response : string;
  max_staleness : int;
  mutable packed : Ml.Model_intf.packed;
  mutable m_epoch : int;
}

type t = {
  maintainer : Maintainer.t;
  feature_index : (string, int) Hashtbl.t;
  epoch : int Atomic.t;
  cache : (int, entry) Hashtbl.t; (* fingerprint -> entry *)
  plans : (int, Compile.Engine.compiled) Hashtbl.t;
      (* fingerprint -> compiled plan, revalidated against the snapshot *)
  models : (string, mentry) Hashtbl.t; (* registered name -> entry *)
  lock : Mutex.t;
  options : Lmfao.Engine.options;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  refreshes : int Atomic.t;
  clients_clamped : int Atomic.t;
  model_refreshes : int Atomic.t;
  model_predictions : int Atomic.t;
}

let c_hits = Obs.counter "serve.hits"
let c_misses = Obs.counter "serve.misses"
let c_invalidations = Obs.counter "serve.invalidations"
let c_refreshes = Obs.counter "serve.refreshes"
let c_clients_clamped = Obs.counter "serve.clients_clamped"
let c_model_refreshes = Obs.counter "serve.model_refreshes"
let c_model_predictions = Obs.counter "serve.model_predictions"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(options = Lmfao.Engine.default_options) strategy
    (db : Database.t) ~features =
  let maintainer = Maintainer.create strategy db ~features in
  let feature_index = Hashtbl.create 8 in
  List.iteri (fun i f -> Hashtbl.replace feature_index f i) features;
  {
    maintainer;
    feature_index;
    epoch = Atomic.make 0;
    cache = Hashtbl.create 16;
    plans = Hashtbl.create 16;
    models = Hashtbl.create 8;
    lock = Mutex.create ();
    options;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    refreshes = Atomic.make 0;
    clients_clamped = Atomic.make 0;
    model_refreshes = Atomic.make 0;
    model_predictions = Atomic.make 0;
  }

let maintainer t = t.maintainer
let epoch t = Atomic.get t.epoch
let cache_size t = locked t (fun () -> Hashtbl.length t.cache)

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    invalidations = Atomic.get t.invalidations;
    refreshes = Atomic.get t.refreshes;
    clients_clamped = Atomic.get t.clients_clamped;
    model_refreshes = Atomic.get t.model_refreshes;
    model_predictions = Atomic.get t.model_predictions;
  }

(* ---------- covariance-backed detection ---------- *)

let coord_of_spec t (s : Spec.t) =
  let idx a = Hashtbl.find_opt t.feature_index a in
  if s.filter <> Predicate.True || s.group_by <> [] then None
  else
    match s.terms with
    | [] -> Some C
    | [ (x, 1) ] -> Option.map (fun i -> S i) (idx x)
    | [ (x, 2) ] -> Option.map (fun i -> Q (i, i)) (idx x)
    | [ (x, 1); (y, 1) ] -> (
        match (idx x, idx y) with
        | Some i, Some j -> Some (Q (i, j))
        | _ -> None)
    | _ -> None

(* The refresh plan: Some coords iff EVERY aggregate is a triple
   coordinate — a partially backed batch cannot be refreshed consistently,
   so it invalidates as a whole. *)
let refresh_plan t (batch : Batch.t) =
  let rec all acc = function
    | [] -> Some (List.rev acc)
    | (s : Spec.t) :: rest -> (
        match coord_of_spec t s with
        | Some c -> all ((s.id, c) :: acc) rest
        | None -> None)
  in
  all [] batch.Batch.aggregates

let coord_value (cov : Cov.t) = function
  | C -> cov.Cov.c
  | S i -> Util.Vec.get cov.Cov.s i
  | Q (i, j) -> Util.Mat.get cov.Cov.q i j

let result_of_plan cov plan =
  List.map (fun (id, c) -> (id, [ ([], coord_value cov c) ])) plan

(* ---------- snapshot + recompute ---------- *)

(* Current database contents as a fresh [Database.t] (storage dump replayed
   in insertion-stamp order) — what a cache miss evaluates over and what
   beyond-the-triple model refreshers recompute their statistics from. *)
let snapshot t : Database.t = Maintainer.snapshot t.maintainer

(* Recompute the batch and return results in BATCH order (the engine groups
   its keyed results by decomposition root) — the serving contract is
   request order, and refreshed entries are rebuilt in batch order too.

   Acyclic batches go through the staged-compilation tier: one compiled
   plan per batch fingerprint, cached on the instance and revalidated
   against the live snapshot before reuse ([Compile.Engine.reusable] —
   deltas shift cardinalities, which can move a pure count's root). The
   compiled results are bitwise equal to the interpreter's, so the serving
   audit's fresh-recompute comparison is unaffected. Cyclic schemas keep
   the interpreter path with WCOJ materialisation. *)
let recompute t (batch : Batch.t) =
  let db = snapshot t in
  let compiled =
    match
      let fp = Batch.fingerprint batch in
      let plan =
        match locked t (fun () -> Hashtbl.find_opt t.plans fp) with
        | Some p when Compile.Engine.reusable p ~options:t.options db batch ->
            p
        | _ ->
            let p = Compile.Engine.compile ~options:t.options db batch in
            locked t (fun () -> Hashtbl.replace t.plans fp p);
            p
      in
      Compile.Engine.run plan db
    with
    | keyed -> Some keyed
    | exception Join_tree.Cyclic -> None
  in
  match compiled with
  | Some keyed ->
      List.map
        (fun (s : Spec.t) ->
          match List.assoc_opt s.id keyed with
          | Some res -> (s.id, res)
          | None -> failwith "Serve.recompute: engine lost an aggregate")
        batch.Batch.aggregates
  | None ->
      let r =
        Lmfao.Engine.eval ~options:t.options ~on_cyclic:`Materialize db batch
      in
      let table = Lazy.force r.Lmfao.Engine.table in
      List.map
        (fun (s : Spec.t) ->
          match Hashtbl.find_opt table s.id with
          | Some res -> (s.id, res)
          | None -> failwith "Serve.recompute: engine lost an aggregate")
        batch.Batch.aggregates

(* ---------- the read path ---------- *)

let serve t (batch : Batch.t) : (string * Spec.result) list =
  Obs.with_span "serve.request" @@ fun () ->
  let fp = Batch.fingerprint batch in
  let now = Atomic.get t.epoch in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.cache fp with
        | Some e when e.e_epoch = now -> Some e.e_result
        | _ -> None)
  in
  match cached with
  | Some r ->
      Atomic.incr t.hits;
      Obs.incr c_hits;
      r
  | None ->
      Atomic.incr t.misses;
      Obs.incr c_misses;
      let keyed = recompute t batch in
      locked t (fun () ->
          match Hashtbl.find_opt t.cache fp with
          | Some e when e.e_epoch >= now ->
              (* a concurrent miss (or a refresh) got there first; keep the
                 newer entry *)
              ()
          | _ ->
              Hashtbl.replace t.cache fp
                {
                  e_epoch = now;
                  e_result = keyed;
                  refresh = refresh_plan t batch;
                });
      keyed

(* K concurrent clients on pool tasks; [clients] bounds the domains used
   (further capped by the global worker budget). Results in input order.
   An explicit request above the budget is recorded in [clients_clamped]
   (and the [serve.clients_clamped] counter) — the pool silently runs the
   excess inline, and load tests need oversubscription to be detectable. *)
let serve_many ?clients t (batches : Batch.t list) =
  let requested =
    match clients with Some c -> c | None -> Util.Pool.num_domains ()
  in
  if requested > Util.Pool.worker_budget () + 1 then begin
    Atomic.incr t.clients_clamped;
    Obs.incr c_clients_clamped
  end;
  Util.Pool.parallel_tasks ?domains:clients
    (List.map (fun b () -> serve t b) batches)

(* ---------- online model maintenance ---------- *)

(* The moments bundle a registered model (re)trains from: covariance
   straight from the maintained triple (O(d^2), data-size independent);
   monomial / row statistics recomputed from a snapshot on demand. *)
let model_moments t ~response =
  Ml.Model_intf.moments_of_covariance
    ~snapshot:(fun () -> snapshot t)
    ~engine_options:t.options
    (Maintainer.covariance t.maintainer)
    ~features:(Maintainer.features t.maintainer)
    ~response

let refresh_models t ~next =
  (* snapshot the entry list under the lock, train outside it (the lock is
     never held across engine work); entry mutation is safe because delta
     application is single-writer *)
  let entries =
    locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.models [])
  in
  List.iter
    (fun (e : mentry) ->
      if next - e.m_epoch > e.max_staleness then begin
        e.packed <-
          Ml.Model_intf.refresh_packed e.packed
            (model_moments t ~response:e.m_response);
        e.m_epoch <- next;
        Atomic.incr t.model_refreshes;
        Obs.incr c_model_refreshes
      end)
    entries

(* ---------- the write path ---------- *)

let apply_deltas t (updates : Fivm.Delta.update list) =
  Obs.with_span "serve.apply" @@ fun () ->
  Maintainer.apply_batch t.maintainer updates;
  let next = Atomic.fetch_and_add t.epoch 1 + 1 in
  let cov = lazy (Maintainer.covariance t.maintainer) in
  locked t (fun () ->
      let dropped = ref [] in
      Hashtbl.iter
        (fun fp (e : entry) ->
          if e.e_epoch < next then
            match e.refresh with
            | Some plan ->
                e.e_result <- result_of_plan (Lazy.force cov) plan;
                e.e_epoch <- next;
                Atomic.incr t.refreshes;
                Obs.incr c_refreshes
            | None ->
                dropped := fp :: !dropped;
                Atomic.incr t.invalidations;
                Obs.incr c_invalidations)
        t.cache;
      List.iter (Hashtbl.remove t.cache) !dropped);
  refresh_models t ~next

(* ---------- epoch-fresh model serving ---------- *)

module Model = struct
  let find t name =
    locked t (fun () ->
        match Hashtbl.find_opt t.models name with
        | Some e -> e
        | None -> invalid_arg (Printf.sprintf "Serve.Model: no model %S" name))

  (* Register and train the initial parameters from the current triple.
     Single-writer, like [apply_deltas]. *)
  let register ?name ?(max_staleness = 0) t (spec : Ml.Model_intf.t)
      ~(response : string) =
    if max_staleness < 0 then invalid_arg "Serve.Model.register: max_staleness < 0";
    if not (List.mem response (Maintainer.features t.maintainer)) then
      invalid_arg
        (Printf.sprintf
           "Serve.Model.register: response %s is not a maintained feature"
           response);
    let name = Option.value name ~default:(Ml.Model_intf.name spec) in
    let packed =
      Ml.Model_intf.train_packed spec (model_moments t ~response)
    in
    let e =
      {
        spec;
        m_response = response;
        max_staleness;
        packed;
        m_epoch = Atomic.get t.epoch;
      }
    in
    locked t (fun () ->
        if Hashtbl.mem t.models name then
          invalid_arg
            (Printf.sprintf "Serve.Model.register: %S already registered" name);
        Hashtbl.replace t.models name e);
    name

  let names t =
    locked t (fun () ->
        List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.models []))

  (* The served parameters with their epoch tag: the model is guaranteed to
     lag the data by at most its staleness budget. *)
  let packed t name =
    let e = find t name in
    (e.packed, e.m_epoch)

  let epoch_of t name = (find t name).m_epoch
  let spec_of t name = (find t name).spec
  let response_of t name = (find t name).m_response

  let predict t name (get : string -> Value.t) =
    let e = find t name in
    Atomic.incr t.model_predictions;
    Obs.incr c_model_predictions;
    (Ml.Model_intf.predict_packed e.packed get, e.m_epoch)

  (* Force a refresh outside [apply_deltas] (e.g. a staleness-intolerant
     client paying for freshness on demand). *)
  let refresh t name =
    let e = find t name in
    let now = Atomic.get t.epoch in
    if e.m_epoch < now then begin
      e.packed <-
        Ml.Model_intf.refresh_packed e.packed
          (model_moments t ~response:e.m_response);
      e.m_epoch <- now;
      Atomic.incr t.model_refreshes;
      Obs.incr c_model_refreshes
    end
end
