(* Concurrent aggregate serving over Lmfao.Engine with an epoch-invalidated
   result cache.

   The paper's serving story (ROADMAP north star) is repeated traffic of the
   SAME aggregate batches — covariance matrices for model reoptimisation,
   mutual-information batches for structure search — over a database that
   F-IVM keeps fresh. Re-running LMFAO's decomposition per request wastes
   the repetition, so this layer caches batch results keyed by

     (Batch.fingerprint, database epoch)

   where the epoch is an atomic counter advanced by every delta batch. A
   request whose cached entry carries the current epoch is a HIT (no engine
   work at all). On delta application, cache entries are either

   - REFRESHED in place, when every aggregate of the batch is a coordinate
     of the maintained covariance triple (COUNT, SUM(x), SUM(x^2),
     SUM(x*y) over the maintainer's features, unfiltered and ungrouped):
     the new result is read straight out of [Maintainer.covariance], which
     F-IVM has already brought up to date — no recompute; or
   - DROPPED (invalidated), for anything else (group-bys, filters,
     non-feature attributes); the next request recomputes and re-caches.

   Under exact arithmetic (the dyadic-lattice inputs of the differential
   tests) refreshed entries are bit-identical to a fresh LMFAO recompute,
   because both pipelines produce exactly representable sums.

   Concurrency: the cache is guarded by one mutex held only for lookups and
   insertions (never across engine work); the epoch is an [Atomic]. Reads
   may run as K concurrent clients on [Util.Pool] tasks under the global
   worker budget. Delta application is single-writer: callers must not
   overlap [apply_deltas] with in-flight reads (the CLI and tests serialise
   them; a miss that loses the race to a concurrent delta batch is inserted
   at its own stale epoch and simply misses again next time). *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch
module Cov = Rings.Covariance
module Maintainer = Fivm.Maintainer

(* Coordinate of one covariance-backed aggregate in the maintained triple. *)
type coord = C | S of int | Q of int * int

type entry = {
  mutable e_epoch : int; (* epoch the cached result is valid for *)
  mutable e_result : (string * Spec.result) list;
  refresh : (string * coord) list option;
      (* per-aggregate coordinates when the WHOLE batch is covariance-backed *)
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  refreshes : int;
  clients_clamped : int;
  model_refreshes : int;
  model_predictions : int;
}

(* One registered model: the module that trains it, the current parameters,
   the epoch they were trained at, and the staleness budget (how many epochs
   the model may lag the data before [apply_deltas] must refresh it). *)
type mentry = {
  spec : Ml.Model_intf.t;
  m_response : string;
  max_staleness : int;
  mutable packed : Ml.Model_intf.packed;
  mutable m_epoch : int;
}

type t = {
  maintainer : Maintainer.t;
  feature_index : (string, int) Hashtbl.t;
  epoch : int Atomic.t;
  cache : (int, entry) Hashtbl.t; (* fingerprint -> entry *)
  plans : (int, Compile.Engine.compiled) Hashtbl.t;
      (* fingerprint -> compiled plan, revalidated against the snapshot *)
  models : (string, mentry) Hashtbl.t; (* registered name -> entry *)
  lock : Mutex.t;
  writer : bool Atomic.t; (* single-writer contract enforcement *)
  options : Lmfao.Engine.options;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  refreshes : int Atomic.t;
  clients_clamped : int Atomic.t;
  model_refreshes : int Atomic.t;
  model_predictions : int Atomic.t;
}

let c_hits = Obs.counter "serve.hits"
let c_misses = Obs.counter "serve.misses"
let c_invalidations = Obs.counter "serve.invalidations"
let c_refreshes = Obs.counter "serve.refreshes"
let c_clients_clamped = Obs.counter "serve.clients_clamped"
let c_model_refreshes = Obs.counter "serve.model_refreshes"
let c_model_predictions = Obs.counter "serve.model_predictions"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

exception Concurrent_writer of string

(* The documented single-writer contract, now enforced: every mutating
   entry point ([apply_deltas], [Model.register], [Model.refresh]) must
   hold the writer flag for its whole duration. Overlap raises instead of
   silently corrupting maintainer or model state — the flag is a CAS, not
   a lock, because a second writer is a caller BUG to surface, not a
   queue to wait in. *)
let with_writer t ~who f =
  if not (Atomic.compare_and_set t.writer false true) then
    raise
      (Concurrent_writer
         (Printf.sprintf
            "Serve.%s: another writer (apply_deltas / Model.register / \
             Model.refresh) is in flight — writes must be serialised"
            who));
  Fun.protect ~finally:(fun () -> Atomic.set t.writer false) f

let create ?(options = Lmfao.Engine.default_options) strategy
    (db : Database.t) ~features =
  let maintainer = Maintainer.create strategy db ~features in
  let feature_index = Hashtbl.create 8 in
  List.iteri (fun i f -> Hashtbl.replace feature_index f i) features;
  {
    maintainer;
    feature_index;
    epoch = Atomic.make 0;
    cache = Hashtbl.create 16;
    plans = Hashtbl.create 16;
    models = Hashtbl.create 8;
    lock = Mutex.create ();
    writer = Atomic.make false;
    options;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    refreshes = Atomic.make 0;
    clients_clamped = Atomic.make 0;
    model_refreshes = Atomic.make 0;
    model_predictions = Atomic.make 0;
  }

let maintainer t = t.maintainer
let epoch t = Atomic.get t.epoch
let cache_size t = locked t (fun () -> Hashtbl.length t.cache)

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    invalidations = Atomic.get t.invalidations;
    refreshes = Atomic.get t.refreshes;
    clients_clamped = Atomic.get t.clients_clamped;
    model_refreshes = Atomic.get t.model_refreshes;
    model_predictions = Atomic.get t.model_predictions;
  }

(* ---------- covariance-backed detection ---------- *)

let coord_of_spec t (s : Spec.t) =
  let idx a = Hashtbl.find_opt t.feature_index a in
  if s.filter <> Predicate.True || s.group_by <> [] then None
  else
    match s.terms with
    | [] -> Some C
    | [ (x, 1) ] -> Option.map (fun i -> S i) (idx x)
    | [ (x, 2) ] -> Option.map (fun i -> Q (i, i)) (idx x)
    | [ (x, 1); (y, 1) ] -> (
        match (idx x, idx y) with
        | Some i, Some j -> Some (Q (i, j))
        | _ -> None)
    | _ -> None

(* The refresh plan: Some coords iff EVERY aggregate is a triple
   coordinate — a partially backed batch cannot be refreshed consistently,
   so it invalidates as a whole. *)
let refresh_plan t (batch : Batch.t) =
  let rec all acc = function
    | [] -> Some (List.rev acc)
    | (s : Spec.t) :: rest -> (
        match coord_of_spec t s with
        | Some c -> all ((s.id, c) :: acc) rest
        | None -> None)
  in
  all [] batch.Batch.aggregates

let coord_value (cov : Cov.t) = function
  | C -> cov.Cov.c
  | S i -> Util.Vec.get cov.Cov.s i
  | Q (i, j) -> Util.Mat.get cov.Cov.q i j

let result_of_plan cov plan =
  List.map (fun (id, c) -> (id, [ ([], coord_value cov c) ])) plan

(* ---------- snapshot + recompute ---------- *)

(* Current database contents as a fresh [Database.t] (storage dump replayed
   in insertion-stamp order) — what a cache miss evaluates over and what
   beyond-the-triple model refreshers recompute their statistics from. *)
let snapshot t : Database.t = Maintainer.snapshot t.maintainer

(* Recompute the batch and return results in BATCH order (the engine groups
   its keyed results by decomposition root) — the serving contract is
   request order, and refreshed entries are rebuilt in batch order too.

   Acyclic batches go through the staged-compilation tier: one compiled
   plan per batch fingerprint, cached on the instance and revalidated
   against the live snapshot before reuse ([Compile.Engine.reusable] —
   deltas shift cardinalities, which can move a pure count's root). The
   compiled results are bitwise equal to the interpreter's, so the serving
   audit's fresh-recompute comparison is unaffected. Cyclic schemas keep
   the interpreter path with WCOJ materialisation. *)
let recompute t (batch : Batch.t) =
  let db = snapshot t in
  let compiled =
    match
      let fp = Batch.fingerprint batch in
      let plan =
        match locked t (fun () -> Hashtbl.find_opt t.plans fp) with
        | Some p when Compile.Engine.reusable p ~options:t.options db batch ->
            p
        | _ ->
            let p = Compile.Engine.compile ~options:t.options db batch in
            locked t (fun () -> Hashtbl.replace t.plans fp p);
            p
      in
      Compile.Engine.run plan db
    with
    | keyed -> Some keyed
    | exception Join_tree.Cyclic -> None
  in
  match compiled with
  | Some keyed ->
      List.map
        (fun (s : Spec.t) ->
          match List.assoc_opt s.id keyed with
          | Some res -> (s.id, res)
          | None -> failwith "Serve.recompute: engine lost an aggregate")
        batch.Batch.aggregates
  | None ->
      let r =
        Lmfao.Engine.eval ~options:t.options ~on_cyclic:`Materialize db batch
      in
      let table = Lazy.force r.Lmfao.Engine.table in
      List.map
        (fun (s : Spec.t) ->
          match Hashtbl.find_opt table s.id with
          | Some res -> (s.id, res)
          | None -> failwith "Serve.recompute: engine lost an aggregate")
        batch.Batch.aggregates

(* ---------- the read path ---------- *)

let serve t (batch : Batch.t) : (string * Spec.result) list =
  Obs.with_span "serve.request" @@ fun () ->
  let fp = Batch.fingerprint batch in
  let now = Atomic.get t.epoch in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.cache fp with
        | Some e when e.e_epoch = now -> Some e.e_result
        | _ -> None)
  in
  match cached with
  | Some r ->
      Atomic.incr t.hits;
      Obs.incr c_hits;
      r
  | None ->
      Atomic.incr t.misses;
      Obs.incr c_misses;
      let keyed = recompute t batch in
      locked t (fun () ->
          match Hashtbl.find_opt t.cache fp with
          | Some e when e.e_epoch >= now ->
              (* a concurrent miss (or a refresh) got there first; keep the
                 newer entry *)
              ()
          | _ ->
              Hashtbl.replace t.cache fp
                {
                  e_epoch = now;
                  e_result = keyed;
                  refresh = refresh_plan t batch;
                });
      keyed

(* K concurrent clients on pool tasks; [clients] bounds the domains used
   (further capped by the global worker budget). Results in input order.
   An explicit request above the budget is recorded in [clients_clamped]
   (and the [serve.clients_clamped] counter) — the pool silently runs the
   excess inline, and load tests need oversubscription to be detectable. *)
let serve_many ?clients t (batches : Batch.t list) =
  let requested =
    match clients with Some c -> c | None -> Util.Pool.num_domains ()
  in
  if requested > Util.Pool.worker_budget () + 1 then begin
    Atomic.incr t.clients_clamped;
    Obs.incr c_clients_clamped
  end;
  Util.Pool.parallel_tasks ?domains:clients
    (List.map (fun b () -> serve t b) batches)

(* ---------- online model maintenance ---------- *)

(* The moments bundle a registered model (re)trains from: covariance
   straight from the maintained triple (O(d^2), data-size independent);
   monomial / row statistics recomputed from a snapshot on demand. *)
let model_moments t ~response =
  Ml.Model_intf.moments_of_covariance
    ~snapshot:(fun () -> snapshot t)
    ~engine_options:t.options
    (Maintainer.covariance t.maintainer)
    ~features:(Maintainer.features t.maintainer)
    ~response

let refresh_models t ~next =
  (* snapshot the entry list under the lock, train outside it (the lock is
     never held across engine work); entry mutation is safe because delta
     application is single-writer *)
  let entries =
    locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.models [])
  in
  List.iter
    (fun (e : mentry) ->
      if next - e.m_epoch > e.max_staleness then begin
        e.packed <-
          Ml.Model_intf.refresh_packed e.packed
            (model_moments t ~response:e.m_response);
        e.m_epoch <- next;
        Atomic.incr t.model_refreshes;
        Obs.incr c_model_refreshes
      end)
    entries

(* ---------- the write path ---------- *)

let apply_deltas t (updates : Fivm.Delta.update list) =
  Obs.with_span "serve.apply" @@ fun () ->
  with_writer t ~who:"apply_deltas" @@ fun () ->
  Maintainer.apply_batch t.maintainer updates;
  let next = Atomic.fetch_and_add t.epoch 1 + 1 in
  let cov = lazy (Maintainer.covariance t.maintainer) in
  locked t (fun () ->
      let dropped = ref [] in
      Hashtbl.iter
        (fun fp (e : entry) ->
          if e.e_epoch < next then
            match e.refresh with
            | Some plan ->
                e.e_result <- result_of_plan (Lazy.force cov) plan;
                e.e_epoch <- next;
                Atomic.incr t.refreshes;
                Obs.incr c_refreshes
            | None ->
                dropped := fp :: !dropped;
                Atomic.incr t.invalidations;
                Obs.incr c_invalidations)
        t.cache;
      List.iter (Hashtbl.remove t.cache) !dropped);
  refresh_models t ~next

(* ---------- epoch-fresh model serving ---------- *)

module Model = struct
  let find t name =
    locked t (fun () ->
        match Hashtbl.find_opt t.models name with
        | Some e -> e
        | None -> invalid_arg (Printf.sprintf "Serve.Model: no model %S" name))

  (* Register and train the initial parameters from the current triple.
     Single-writer, like [apply_deltas]. *)
  let register ?name ?(max_staleness = 0) t (spec : Ml.Model_intf.t)
      ~(response : string) =
    if max_staleness < 0 then invalid_arg "Serve.Model.register: max_staleness < 0";
    if not (List.mem response (Maintainer.features t.maintainer)) then
      invalid_arg
        (Printf.sprintf
           "Serve.Model.register: response %s is not a maintained feature"
           response);
    let name = Option.value name ~default:(Ml.Model_intf.name spec) in
    with_writer t ~who:"Model.register" @@ fun () ->
    let packed =
      Ml.Model_intf.train_packed spec (model_moments t ~response)
    in
    let e =
      {
        spec;
        m_response = response;
        max_staleness;
        packed;
        m_epoch = Atomic.get t.epoch;
      }
    in
    locked t (fun () ->
        if Hashtbl.mem t.models name then
          invalid_arg
            (Printf.sprintf "Serve.Model.register: %S already registered" name);
        Hashtbl.replace t.models name e);
    name

  let names t =
    locked t (fun () ->
        List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.models []))

  (* The served parameters with their epoch tag: the model is guaranteed to
     lag the data by at most its staleness budget. *)
  let packed t name =
    let e = find t name in
    (e.packed, e.m_epoch)

  let epoch_of t name = (find t name).m_epoch
  let spec_of t name = (find t name).spec
  let response_of t name = (find t name).m_response

  let predict t name (get : string -> Value.t) =
    let e = find t name in
    Atomic.incr t.model_predictions;
    Obs.incr c_model_predictions;
    (Ml.Model_intf.predict_packed e.packed get, e.m_epoch)

  (* Force a refresh outside [apply_deltas] (e.g. a staleness-intolerant
     client paying for freshness on demand). *)
  let refresh t name =
    let e = find t name in
    with_writer t ~who:"Model.refresh" @@ fun () ->
    let now = Atomic.get t.epoch in
    if e.m_epoch < now then begin
      e.packed <-
        Ml.Model_intf.refresh_packed e.packed
          (model_moments t ~response:e.m_response);
      e.m_epoch <- now;
      Atomic.incr t.model_refreshes;
      Obs.incr c_model_refreshes
    end
end

(* ---------- overload-robust admission frontier ---------- *)

(* [Admission] wraps the read/write paths with the machinery a server needs
   when traffic is adversarial rather than cooperative:

   - per-tenant token buckets plus a global queue-delay gate decide who gets
     engine time at all;
   - requests that are denied engine time are NOT dropped: they are answered
     from an epoch-stale shadow cache with an explicit [Stale of epoch] tag.
     The shadow cache records, for every fresh answer, the exact result
     bytes served at that epoch — a shed answer is therefore always
     bit-identical to SOME past epoch's correct answer (the differential in
     [test_traffic.ml]), never a wrong bit;
   - admitted requests carry a deadline; answers that complete past it are
     classified [Timeout] (the caller sees no result — a late answer is a
     wrong answer in an open-loop system);
   - the recompute path retries injected transient faults
     ([Resilience.Faults]) with full-jitter backoff ([Util.Prng.backoff]);
   - writes go through a bounded pending queue that COALESCES updates (per
     (relation, tuple) multiplicity sums, zeros dropped) into one maintainer
     pass, with [`Backpressure] once the queue is full.

   Time is VIRTUAL and owned by the caller (the [Traffic] driver): [request]
   takes the request's arrival instant and the instant its serving lane
   frees up, and returns the finish instant. Only the engine work itself is
   measured in real wall-clock seconds and folded into the virtual
   timeline — this is how the open-loop harness avoids coordinated
   omission: queueing delay is simulated, service cost is real.

   Every request resolves to exactly ONE of admitted / shed / timeout, so
   [serve.offered = serve.admitted + serve.shed + serve.timeout] is a hard
   invariant (checked by [borg traffic --check]), and each resolution
   observes [serve.latency] exactly once. *)
module Admission = struct
  type status = Fresh of int | Stale of int | Timeout

  type outcome = {
    status : status;
    result : (string * Spec.result) list option;
        (* Some for [Fresh]/[Stale] with a cached answer; None for
           [Timeout] and for shed requests with no stale entry yet *)
    started : float;
    finished : float;
    latency : float;
    retries : int;
    used_lane : bool;
  }

  type config = {
    tenant_rate : float;  (* token-bucket refill, requests/second *)
    tenant_burst : float;  (* bucket capacity *)
    gate_delay : float;  (* max queue delay before the global gate sheds *)
    deadline : float;  (* per-request budget from arrival to finish *)
    max_pending : int;  (* pending delta-queue depth before backpressure *)
    max_retries : int;  (* transient-fault retry budget per request *)
    backoff_base : float;
    backoff_cap : float;
    faults : Resilience.Faults.t;
    seed : int;
  }

  let config ?(tenant_rate = 100.0) ?(tenant_burst = 20.0) ?(gate_delay = 0.05)
      ?(deadline = 0.25) ?(max_pending = 4096) ?(max_retries = 4)
      ?(backoff_base = 1e-4) ?(backoff_cap = 1e-2) ?faults ?(seed = 0) () =
    (* rate 0 is meaningful — a bucket that never refills (tests, frozen
       tenants) — but a burst below one token could never admit anything *)
    if tenant_rate < 0.0 || tenant_burst < 1.0 then
      invalid_arg "Admission.config: tenant_rate < 0 or tenant_burst < 1";
    if max_pending <= 0 then invalid_arg "Admission.config: max_pending <= 0";
    let faults =
      match faults with Some f -> f | None -> Resilience.Faults.none ()
    in
    {
      tenant_rate;
      tenant_burst;
      gate_delay;
      deadline;
      max_pending;
      max_retries;
      backoff_base;
      backoff_cap;
      faults;
      seed;
    }

  type bucket = { mutable tokens : float; mutable last_refill : float }

  type a = {
    srv : t;
    cfg : config;
    prng : Util.Prng.t;
    tenants : (string, bucket) Hashtbl.t;
    shadow : (int, int * (string * Spec.result) list) Hashtbl.t;
        (* fingerprint -> (epoch, exact result served at that epoch) *)
    mutable pending : Fivm.Delta.update list list; (* newest first *)
    mutable pending_updates : int;
  }

  let c_offered = Obs.counter "serve.offered"
  let c_admitted = Obs.counter "serve.admitted"
  let c_shed = Obs.counter "serve.shed"
  let c_timeout = Obs.counter "serve.timeout"
  let c_coalesced = Obs.counter "serve.coalesced"
  let c_retries = Obs.counter "serve.retries"
  let c_backpressure = Obs.counter "serve.backpressure"
  let h_latency = Obs.histogram "serve.latency"

  let create cfg srv =
    {
      srv;
      cfg;
      prng = Util.Prng.create cfg.seed;
      tenants = Hashtbl.create 16;
      shadow = Hashtbl.create 64;
      pending = [];
      pending_updates = 0;
    }

  let server a = a.srv
  let pending_updates a = a.pending_updates

  (* ---- token buckets ---- *)

  let take_token a ~tenant ~now =
    let b =
      match Hashtbl.find_opt a.tenants tenant with
      | Some b -> b
      | None ->
          let b = { tokens = a.cfg.tenant_burst; last_refill = now } in
          Hashtbl.add a.tenants tenant b;
          b
    in
    (* lazy refill at arrival; virtual time is monotone per driver but be
       robust to equal stamps *)
    if now > b.last_refill then begin
      b.tokens <-
        Float.min a.cfg.tenant_burst
          (b.tokens +. ((now -. b.last_refill) *. a.cfg.tenant_rate));
      b.last_refill <- now
    end;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      true
    end
    else false

  (* ---- the read path ---- *)

  (* Denied engine time: answer from the shadow cache when it has this
     batch (shed — a degraded but correct answer), otherwise the request is
     effectively dropped (timeout — no answer at all). Either way the
     resolution is a cache lookup, free on the virtual timeline. *)
  let shed_outcome a ~fp ~arrival =
    Obs.observe h_latency 0.0;
    let status, result =
      match Hashtbl.find_opt a.shadow fp with
      | Some (e, r) ->
          Obs.incr c_shed;
          (Stale e, Some r)
      | None ->
          Obs.incr c_timeout;
          (Timeout, None)
    in
    {
      status;
      result;
      started = arrival;
      finished = arrival;
      latency = 0.0;
      retries = 0;
      used_lane = false;
    }

  let request a ~tenant ~batch ~arrival ~lane_free =
    Obs.incr c_offered;
    let fp = Batch.fingerprint batch in
    if not (take_token a ~tenant ~now:arrival) then
      (* over quota: this tenant gets a degraded answer, never a lane *)
      shed_outcome a ~fp ~arrival
    else begin
      let started = Float.max arrival lane_free in
      let queue_delay = started -. arrival in
      if queue_delay > a.cfg.gate_delay then
        (* global gate: the lanes are so far behind that admitting would
           only grow the queue — answer stale instead *)
        shed_outcome a ~fp ~arrival
      else begin
        (* admitted to a lane: real engine work on the virtual timeline,
           with transient faults retried under full-jitter backoff *)
        let retries = ref 0 in
        let rec attempt k backoff_spent =
          if Resilience.Faults.transient_failure a.cfg.faults then begin
            Obs.incr c_retries;
            if k >= a.cfg.max_retries then None
            else begin
              incr retries;
              let delay =
                Util.Prng.backoff a.prng ~base:a.cfg.backoff_base
                  ~cap:a.cfg.backoff_cap ~attempt:k
              in
              attempt (k + 1) (backoff_spent +. delay)
            end
          end
          else begin
            let t0 = Obs.Clock.now () in
            let r = serve a.srv batch in
            Some (r, backoff_spent +. (Obs.Clock.now () -. t0))
          end
        in
        match attempt 0 0.0 with
        | None ->
            (* fault persisted through the retry budget *)
            Obs.incr c_timeout;
            Obs.observe h_latency a.cfg.deadline;
            {
              status = Timeout;
              result = None;
              started;
              finished = started;
              latency = a.cfg.deadline;
              retries = !retries;
              used_lane = false;
            }
        | Some (r, service) ->
            let finished = started +. service in
            let latency = finished -. arrival in
            Obs.observe h_latency latency;
            if latency > a.cfg.deadline then begin
              (* completed, but past its budget: in an open-loop system a
                 late answer is not an answer (the lane time is still
                 spent — that is what congestion costs) *)
              Obs.incr c_timeout;
              {
                status = Timeout;
                result = None;
                started;
                finished;
                latency;
                retries = !retries;
                used_lane = true;
              }
            end
            else begin
              let e = Atomic.get a.srv.epoch in
              Hashtbl.replace a.shadow fp (e, r);
              Obs.incr c_admitted;
              {
                status = Fresh e;
                result = Some r;
                started;
                finished;
                latency;
                retries = !retries;
                used_lane = true;
              }
            end
      end
    end

  (* ---- the write path: bounded queue + coalescing ---- *)

  let submit_delta a (updates : Fivm.Delta.update list) =
    if a.pending_updates + List.length updates > a.cfg.max_pending then begin
      Obs.incr c_backpressure;
      `Backpressure
    end
    else begin
      a.pending <- updates :: a.pending;
      a.pending_updates <- a.pending_updates + List.length updates;
      `Queued
    end

  (* Merge all pending batches into one maintainer pass: multiplicities sum
     per (relation, tuple) and zero-sum pairs vanish entirely. Coalescing
     reorders float accumulation, so bit-identity of the maintained state
     versus one-by-one application holds on exactly representable inputs
     (the dyadic lattice of the tests); IEEE inputs agree to rounding. *)
  let flush a =
    let batches = List.rev a.pending in
    a.pending <- [];
    let before = a.pending_updates in
    a.pending_updates <- 0;
    if batches = [] then 0
    else begin
      let order = ref [] in
      let merged : (string * Relational.Tuple.t, int ref) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (List.iter (fun (u : Fivm.Delta.update) ->
             let key = (u.Fivm.Delta.relation, u.Fivm.Delta.tuple) in
             match Hashtbl.find_opt merged key with
             | Some m -> m := !m + u.Fivm.Delta.multiplicity
             | None ->
                 Hashtbl.add merged key (ref u.Fivm.Delta.multiplicity);
                 order := key :: !order))
        batches;
      let coalesced =
        List.filter_map
          (fun key ->
            let m = !(Hashtbl.find merged key) in
            if m = 0 then None
            else
              let relation, tuple = key in
              Some { Fivm.Delta.relation; tuple; multiplicity = m })
          (List.rev !order)
      in
      let eliminated = before - List.length coalesced in
      Obs.add c_coalesced eliminated;
      if coalesced <> [] then apply_deltas a.srv coalesced;
      eliminated
    end
end
