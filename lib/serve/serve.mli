(** Concurrent aggregate AND model serving over {!Lmfao.Engine} with an
    epoch-invalidated result cache kept fresh by {!Fivm.Maintainer}.

    Batches are cached under [(Batch.fingerprint, epoch)]: every delta batch
    advances the atomic epoch, then either refreshes cache entries in place
    (batches made entirely of maintained covariance-triple coordinates —
    COUNT / SUM(x) / SUM(x^2) / SUM(x*y) over the features, unfiltered,
    ungrouped) or drops them so the next request recomputes from a storage
    snapshot. Under exact arithmetic, refreshed and recomputed results are
    bit-identical (the serving differential in [test_serve.ml]).

    {!Model} extends the same loop to learned models: registered
    {!Ml.Model_intf} implementations train from the maintained triple and
    are refreshed (warm-started) by [apply_deltas] whenever their staleness
    budget would otherwise be exceeded, so predictions carry an epoch tag at
    most [max_staleness] behind the data.

    Reads may run as concurrent clients on {!Util.Pool} tasks under the
    process-global worker budget; delta application is single-writer and
    must not overlap reads. Counters [serve.hits] / [serve.misses] /
    [serve.invalidations] / [serve.refreshes] / [serve.clients_clamped] /
    [serve.model_refreshes] / [serve.model_predictions] and spans
    [serve.request] / [serve.apply] are maintained when {!Obs} is enabled;
    {!stats} is always live. *)

open Relational
module Spec := Aggregates.Spec

type t

exception Concurrent_writer of string
(** Raised by {!apply_deltas}, {!Model.register} and {!Model.refresh} when
    another writer is already in flight: the single-writer contract is
    enforced, not just documented — overlap is a caller bug surfaced loudly
    instead of silent maintainer/model corruption. *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  refreshes : int;
  clients_clamped : int;
      (** [serve_many] calls whose requested client count exceeded the
          worker budget (the pool runs the excess inline — detectable
          oversubscription, not a silent cap) *)
  model_refreshes : int;
  model_predictions : int;
}

val create :
  ?options:Lmfao.Engine.options ->
  Fivm.Maintainer.strategy ->
  Database.t ->
  features:string list ->
  t
(** A server over an initially EMPTY database with the given schemas (the
    same contract as {!Fivm.Maintainer.create}); [features] are the numeric
    attributes of the maintained covariance task. [options] configure the
    recompute engine (e.g. [parallel]). *)

val serve : t -> Aggregates.Batch.t -> (string * Spec.result) list
(** Answer one batch: a cache hit returns the stored result without engine
    work; a miss evaluates the batch with {!Lmfao.Engine.eval} over a
    snapshot of the current contents and caches it at the epoch observed
    before the computation. Results are in batch-aggregate order regardless
    of how they were produced (the engine groups by decomposition root;
    refreshes rebuild in batch order). *)

val serve_many :
  ?clients:int -> t -> Aggregates.Batch.t list -> (string * Spec.result) list list
(** [serve] each batch as a parallel pool task ([clients] bounds the domain
    count, default [Pool.num_domains ()]; the global budget caps actual
    spawns). Results in input order. A request for more clients than the
    budget can grant bumps [stats.clients_clamped] and the
    [serve.clients_clamped] counter. *)

val apply_deltas : t -> Fivm.Delta.update list -> unit
(** Apply one delta batch through the maintainer, advance the epoch, refresh
    every covariance-backed cache entry from the maintained triple and drop
    the rest, then warm-refresh every registered model whose staleness
    budget the new epoch would exceed. Single-writer: do not overlap with
    reads; overlapping another writer raises {!Concurrent_writer}. *)

(** Epoch-fresh model serving: register a {!Ml.Model_intf} implementation,
    get it trained from the maintained triple and refreshed (warm-started)
    on delta application, and serve predictions tagged with the epoch the
    parameters were trained at. *)
module Model : sig
  val register :
    ?name:string -> ?max_staleness:int -> t -> Ml.Model_intf.t ->
    response:string -> string
  (** Train the initial parameters from the current triple and register
      under [name] (default: the model's own name; returned). [response]
      must be one of the maintainer's features. [max_staleness] (default 0)
      is the number of epochs the model may lag the data before
      [apply_deltas] must refresh it. Single-writer, like [apply_deltas].
      Raises on duplicate names and unknown responses. *)

  val predict : t -> string -> (string -> Value.t) -> float * int
  (** Prediction by attribute lookup plus the epoch tag of the parameters
      used (at most [max_staleness] behind {!epoch}). *)

  val packed : t -> string -> Ml.Model_intf.packed * int
  (** The served parameters with their epoch tag. *)

  val refresh : t -> string -> unit
  (** Force a warm refresh to the current epoch outside [apply_deltas]
      (freshness on demand); no-op when already current. Single-writer. *)

  val names : t -> string list
  val epoch_of : t -> string -> int
  val spec_of : t -> string -> Ml.Model_intf.t
  val response_of : t -> string -> string
end

(** Overload-robust admission frontier around the read/write paths:
    per-tenant token buckets plus a global queue-delay gate, per-request
    deadlines with timeout classification, load shedding that answers from
    an epoch-stale shadow cache with an explicit [Stale of epoch] tag (a
    shed answer is always bit-identical to some past epoch's correct
    answer — never a wrong bit), transient-fault retries with full-jitter
    backoff, and a bounded delta queue that coalesces updates per
    (relation, tuple) into one maintainer pass.

    Time is virtual and caller-owned: {!request} takes the arrival instant
    and the instant the serving lane frees, and returns the finish instant;
    only engine work is measured in real wall-clock seconds and folded into
    the virtual timeline (the open-loop harness in [Traffic] avoids
    coordinated omission this way). Counters: [serve.offered] =
    [serve.admitted] + [serve.shed] + [serve.timeout] is a hard invariant;
    [serve.coalesced], [serve.retries], [serve.backpressure] and the
    [serve.latency] histogram (observed exactly once per request) complete
    the picture. *)
module Admission : sig
  type status =
    | Fresh of int  (** answered at the current epoch, within deadline *)
    | Stale of int
        (** shed: answered from the shadow cache, bit-identical to the
            answer served at that epoch *)
    | Timeout
        (** no answer: deadline exceeded, retry budget exhausted, or shed
            with no stale entry to degrade to *)

  type outcome = {
    status : status;
    result : (string * Spec.result) list option;
        (** [Some] iff status is [Fresh] or [Stale] *)
    started : float;  (** when a lane picked the request up (virtual) *)
    finished : float;  (** when the lane freed again (virtual) *)
    latency : float;  (** [finished - arrival]; 0 for lane-free outcomes *)
    retries : int;
    used_lane : bool;
        (** whether lane time was consumed (the driver advances the lane's
            free instant to [finished] only when set) *)
  }

  type config = {
    tenant_rate : float;
    tenant_burst : float;
    gate_delay : float;
    deadline : float;
    max_pending : int;
    max_retries : int;
    backoff_base : float;
    backoff_cap : float;
    faults : Resilience.Faults.t;
    seed : int;
  }

  val config :
    ?tenant_rate:float ->
    ?tenant_burst:float ->
    ?gate_delay:float ->
    ?deadline:float ->
    ?max_pending:int ->
    ?max_retries:int ->
    ?backoff_base:float ->
    ?backoff_cap:float ->
    ?faults:Resilience.Faults.t ->
    ?seed:int ->
    unit ->
    config
  (** Defaults: 100 req/s per tenant with burst 20, 50 ms gate, 250 ms
      deadline, 4096 pending updates, 4 retries, backoff 0.1→10 ms, no
      faults, seed 0. *)

  type a

  val create : config -> t -> a
  val server : a -> t

  val request :
    a ->
    tenant:string ->
    batch:Aggregates.Batch.t ->
    arrival:float ->
    lane_free:float ->
    outcome
  (** Resolve one read. Over-quota tenants and requests whose queue delay
      ([max arrival lane_free - arrival]) exceeds the gate are denied engine
      time and answered from the shadow cache ([Stale]) or dropped
      ([Timeout]); admitted requests run {!serve} (transient faults retried
      with jittered backoff), are timed, and are classified [Fresh] or
      [Timeout] against the deadline. Exactly one of
      [serve.admitted]/[serve.shed]/[serve.timeout] is incremented. *)

  val submit_delta :
    a -> Fivm.Delta.update list -> [ `Queued | `Backpressure ]
  (** Queue updates for the next {!flush}; [`Backpressure] (and the
      [serve.backpressure] counter) once the bounded queue is full — the
      caller must flush before retrying. *)

  val flush : a -> int
  (** Coalesce all pending updates (multiplicities summed per
      (relation, tuple), zero sums dropped, first-occurrence order) into at
      most one {!apply_deltas} pass. Returns the number of updates
      eliminated by coalescing (also added to [serve.coalesced]).
      Single-writer, like {!apply_deltas}. *)

  val pending_updates : a -> int
end

val snapshot : t -> Database.t
(** The current database contents as a fresh [Database.t] (storage dump
    replayed in insertion-stamp order) — what a cache miss evaluates over. *)

val maintainer : t -> Fivm.Maintainer.t
val epoch : t -> int
val cache_size : t -> int
val stats : t -> stats
