(** Concurrent aggregate AND model serving over {!Lmfao.Engine} with an
    epoch-invalidated result cache kept fresh by {!Fivm.Maintainer}.

    Batches are cached under [(Batch.fingerprint, epoch)]: every delta batch
    advances the atomic epoch, then either refreshes cache entries in place
    (batches made entirely of maintained covariance-triple coordinates —
    COUNT / SUM(x) / SUM(x^2) / SUM(x*y) over the features, unfiltered,
    ungrouped) or drops them so the next request recomputes from a storage
    snapshot. Under exact arithmetic, refreshed and recomputed results are
    bit-identical (the serving differential in [test_serve.ml]).

    {!Model} extends the same loop to learned models: registered
    {!Ml.Model_intf} implementations train from the maintained triple and
    are refreshed (warm-started) by [apply_deltas] whenever their staleness
    budget would otherwise be exceeded, so predictions carry an epoch tag at
    most [max_staleness] behind the data.

    Reads may run as concurrent clients on {!Util.Pool} tasks under the
    process-global worker budget; delta application is single-writer and
    must not overlap reads. Counters [serve.hits] / [serve.misses] /
    [serve.invalidations] / [serve.refreshes] / [serve.clients_clamped] /
    [serve.model_refreshes] / [serve.model_predictions] and spans
    [serve.request] / [serve.apply] are maintained when {!Obs} is enabled;
    {!stats} is always live. *)

open Relational
module Spec := Aggregates.Spec

type t

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  refreshes : int;
  clients_clamped : int;
      (** [serve_many] calls whose requested client count exceeded the
          worker budget (the pool runs the excess inline — detectable
          oversubscription, not a silent cap) *)
  model_refreshes : int;
  model_predictions : int;
}

val create :
  ?options:Lmfao.Engine.options ->
  Fivm.Maintainer.strategy ->
  Database.t ->
  features:string list ->
  t
(** A server over an initially EMPTY database with the given schemas (the
    same contract as {!Fivm.Maintainer.create}); [features] are the numeric
    attributes of the maintained covariance task. [options] configure the
    recompute engine (e.g. [parallel]). *)

val serve : t -> Aggregates.Batch.t -> (string * Spec.result) list
(** Answer one batch: a cache hit returns the stored result without engine
    work; a miss evaluates the batch with {!Lmfao.Engine.eval} over a
    snapshot of the current contents and caches it at the epoch observed
    before the computation. Results are in batch-aggregate order regardless
    of how they were produced (the engine groups by decomposition root;
    refreshes rebuild in batch order). *)

val serve_many :
  ?clients:int -> t -> Aggregates.Batch.t list -> (string * Spec.result) list list
(** [serve] each batch as a parallel pool task ([clients] bounds the domain
    count, default [Pool.num_domains ()]; the global budget caps actual
    spawns). Results in input order. A request for more clients than the
    budget can grant bumps [stats.clients_clamped] and the
    [serve.clients_clamped] counter. *)

val apply_deltas : t -> Fivm.Delta.update list -> unit
(** Apply one delta batch through the maintainer, advance the epoch, refresh
    every covariance-backed cache entry from the maintained triple and drop
    the rest, then warm-refresh every registered model whose staleness
    budget the new epoch would exceed. Single-writer: do not overlap with
    reads. *)

(** Epoch-fresh model serving: register a {!Ml.Model_intf} implementation,
    get it trained from the maintained triple and refreshed (warm-started)
    on delta application, and serve predictions tagged with the epoch the
    parameters were trained at. *)
module Model : sig
  val register :
    ?name:string -> ?max_staleness:int -> t -> Ml.Model_intf.t ->
    response:string -> string
  (** Train the initial parameters from the current triple and register
      under [name] (default: the model's own name; returned). [response]
      must be one of the maintainer's features. [max_staleness] (default 0)
      is the number of epochs the model may lag the data before
      [apply_deltas] must refresh it. Single-writer, like [apply_deltas].
      Raises on duplicate names and unknown responses. *)

  val predict : t -> string -> (string -> Value.t) -> float * int
  (** Prediction by attribute lookup plus the epoch tag of the parameters
      used (at most [max_staleness] behind {!epoch}). *)

  val packed : t -> string -> Ml.Model_intf.packed * int
  (** The served parameters with their epoch tag. *)

  val refresh : t -> string -> unit
  (** Force a warm refresh to the current epoch outside [apply_deltas]
      (freshness on demand); no-op when already current. Single-writer. *)

  val names : t -> string list
  val epoch_of : t -> string -> int
  val spec_of : t -> string -> Ml.Model_intf.t
  val response_of : t -> string -> string
end

val snapshot : t -> Database.t
(** The current database contents as a fresh [Database.t] (storage dump
    replayed in insertion-stamp order) — what a cache miss evaluates over. *)

val maintainer : t -> Fivm.Maintainer.t
val epoch : t -> int
val cache_size : t -> int
val stats : t -> stats
