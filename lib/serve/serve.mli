(** Concurrent aggregate serving over {!Lmfao.Engine} with an
    epoch-invalidated result cache kept fresh by {!Fivm.Maintainer}.

    Batches are cached under [(Batch.fingerprint, epoch)]: every delta batch
    advances the atomic epoch, then either refreshes cache entries in place
    (batches made entirely of maintained covariance-triple coordinates —
    COUNT / SUM(x) / SUM(x^2) / SUM(x*y) over the features, unfiltered,
    ungrouped) or drops them so the next request recomputes from a storage
    snapshot. Under exact arithmetic, refreshed and recomputed results are
    bit-identical (the serving differential in [test_serve.ml]).

    Reads may run as concurrent clients on {!Util.Pool} tasks under the
    process-global worker budget; delta application is single-writer and
    must not overlap reads. Counters [serve.hits] / [serve.misses] /
    [serve.invalidations] / [serve.refreshes] and spans [serve.request] /
    [serve.apply] are maintained when {!Obs} is enabled; {!stats} is always
    live. *)

open Relational
module Spec := Aggregates.Spec

type t

type stats = { hits : int; misses : int; invalidations : int; refreshes : int }

val create :
  ?options:Lmfao.Engine.options ->
  Fivm.Maintainer.strategy ->
  Database.t ->
  features:string list ->
  t
(** A server over an initially EMPTY database with the given schemas (the
    same contract as {!Fivm.Maintainer.create}); [features] are the numeric
    attributes of the maintained covariance task. [options] configure the
    recompute engine (e.g. [parallel]). *)

val serve : t -> Aggregates.Batch.t -> (string * Spec.result) list
(** Answer one batch: a cache hit returns the stored result without engine
    work; a miss evaluates the batch with {!Lmfao.Engine.eval} over a
    snapshot of the current contents and caches it at the epoch observed
    before the computation. Results are in batch-aggregate order regardless
    of how they were produced (the engine groups by decomposition root;
    refreshes rebuild in batch order). *)

val serve_many :
  ?clients:int -> t -> Aggregates.Batch.t list -> (string * Spec.result) list list
(** [serve] each batch as a parallel pool task ([clients] bounds the domain
    count, default [Pool.num_domains ()]; the global budget caps actual
    spawns). Results in input order. *)

val apply_deltas : t -> Fivm.Delta.update list -> unit
(** Apply one delta batch through the maintainer, advance the epoch, then
    refresh every covariance-backed cache entry from the maintained triple
    and drop the rest. Single-writer: do not overlap with reads. *)

val snapshot : t -> Database.t
(** The current database contents as a fresh [Database.t] (storage dump
    replayed in insertion-stamp order) — what a cache miss evaluates over. *)

val maintainer : t -> Fivm.Maintainer.t
val epoch : t -> int
val cache_size : t -> int
val stats : t -> stats
