(* The Section 5.3 worked example: gradient descent for linear regression
   over the join Q = S(i,s,u) |><| R(s,c) |><| I(i,p), expressed as an IFAQ
   program and taken through the transformation pipeline.

   [original] is the paper's starting program (the response u rides along in
   the tuples; following the paper we keep the displayed objective
   sum_x Q(x) * (sum_f2 theta(f2) x(f2)) * x(f1), which exercises exactly
   the same data-intensive structure). Every later stage — through
   aggregate extraction, pushdown past the joins, view fusion and trie
   conversion — is produced mechanically by the [Rewrite] passes. Tests
   check that EVERY stage evaluates to the same parameters. *)

open Expr

let features = [ "i"; "s"; "c"; "p" ]

let alpha = 0.0005
let iterations = 8

(* Q = sum_xs sum_xr sum_xi { {i;s;c;p;u} ->
       S(xs)*R(xr)*I(xi)*[xs.i=xi.i]*[xs.s=xr.s] } *)
let join_expr =
  Sum
    ( "xs",
      Rel "S",
      Sum
        ( "xr",
          Rel "R",
          Sum
            ( "xi",
              Rel "I",
              Sing
                ( Rec
                    [
                      ("i", Field (Var "xs", "i"));
                      ("s", Field (Var "xs", "s"));
                      ("c", Field (Var "xr", "c"));
                      ("p", Field (Var "xi", "p"));
                      ("u", Field (Var "xs", "u"));
                    ],
                  Mul
                    ( Lookup (Rel "S", Var "xs"),
                      Mul
                        ( Lookup (Rel "R", Var "xr"),
                          Mul
                            ( Lookup (Rel "I", Var "xi"),
                              Mul
                                ( Eq (Field (Var "xs", "i"), Field (Var "xi", "i")),
                                  Eq (Field (Var "xs", "s"), Field (Var "xr", "s"))
                                ) ) ) ) ) ) ) )

let theta0 = Lam ("f", Set features, Num 1.0)

(* one update:  theta' = lam_{f1 in F} theta(f1) -
     alpha * sum_{x in sup(Q)} Q(x) * (sum_{f2 in F} theta(f2)*x(f2)) * x(f1) *)
let update =
  Lam
    ( "f1",
      Set features,
      Sub
        ( Lookup (Var "theta", Var "f1"),
          Mul
            ( Num alpha,
              Sum
                ( "x",
                  Var "Q",
                  Mul
                    ( Lookup (Var "Q", Var "x"),
                      Mul
                        ( Sum
                            ( "f2",
                              Set features,
                              Mul (Lookup (Var "theta", Var "f2"), Lookup (Var "x", Var "f2"))
                            ),
                          Lookup (Var "x", Var "f1") ) ) ) ) ) )

let original =
  Let
    ( "Q",
      join_expr,
      Iter { times = iterations; var = "theta"; init = theta0; body = update } )

(* the full ladder: the mechanical [Rewrite] stages, the mechanical
   aggregate pushdown applied on top of them, and the mechanical view
   fusion + trie conversion ([Rewrite.fuse_views]) — which derives the
   paper's fused per-relation views

     WR = sum_xr { xr.s -> {m1=R(xr), m2=R(xr)*xr.c, m3=R(xr)*xr.c^2} }
     WI = sum_xi { xi.i -> {m1=I(xi), m2=I(xi)*xi.p, m3=I(xi)*xi.p^2} }

   so each M entry is one scan of S probing the two tries. *)
let all_stages () : (string * expr) list =
  let mechanical = Rewrite.pipeline original in
  let last = snd (List.nth mechanical (List.length mechanical - 1)) in
  let pushed = Rewrite.aggregate_pushdown last in
  mechanical
  @ [
      ("aggregate pushdown (mechanical)", pushed);
      ("view fusion + trie conversion (mechanical)", Rewrite.fuse_views pushed);
    ]

(* ---- example data ---- *)

(* small random instances of S(i,s,u), R(s,c), I(i,p) *)
let relations ?(n_s = 40) ?(n_keys = 6) ~seed () =
  let rng = Util.Prng.create seed in
  let num x = Interp.VNum x in
  let tuple fields = Interp.VRec (List.sort compare fields) in
  let dict_of_list entries =
    (* merge duplicates *)
    let c = Interp.fresh_counters () in
    List.fold_left
      (fun acc e -> Interp.value_add c acc (Interp.VDict [ e ]))
      (Interp.VDict []) entries
  in
  let s_rel =
    dict_of_list
      (List.init n_s (fun _ ->
           ( tuple
               [
                 ("i", num (float_of_int (Util.Prng.int rng n_keys)));
                 ("s", num (float_of_int (Util.Prng.int rng n_keys)));
                 ("u", num (Util.Prng.float_range rng 0.0 2.0));
               ],
             num 1.0 )))
  in
  let r_rel =
    dict_of_list
      (List.init n_keys (fun k ->
           ( tuple
               [
                 ("s", num (float_of_int k));
                 ("c", num (Util.Prng.float_range rng 0.0 2.0));
               ],
             num 1.0 )))
  in
  let i_rel =
    dict_of_list
      (List.init n_keys (fun k ->
           ( tuple
               [
                 ("i", num (float_of_int k));
                 ("p", num (Util.Prng.float_range rng 0.0 2.0));
               ],
             num 1.0 )))
  in
  [ ("S", s_rel); ("R", r_rel); ("I", i_rel) ]
