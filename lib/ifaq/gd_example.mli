(** The Section 5.3 worked example: gradient descent for linear regression
    over S(i,s,u) |><| R(s,c) |><| I(i,p) as an IFAQ program, its
    transformation ladder, and small random instances to run it on. *)

val features : string list
val alpha : float
val iterations : int

val join_expr : Expr.expr
(** Q as a triple-nested Sigma of guarded singleton dictionaries. *)

val theta0 : Expr.expr
val update : Expr.expr
val original : Expr.expr
(** The paper's starting program: [let Q = ... in iterate ...]. *)

val all_stages : unit -> (string * Expr.expr) list
(** The mechanical [Rewrite.pipeline] stages, then the mechanical
    [Rewrite.aggregate_pushdown], then the mechanical [Rewrite.fuse_views]
    (per-relation fused trie views WR/WI probed from one scan of S). *)

val relations :
  ?n_s:int -> ?n_keys:int -> seed:int -> unit -> (string * Interp.value) list
(** Random instances of S, R, I as interpreter relation values. *)
