(* IFAQ's equivalence-preserving transformations (Section 5.3, Figure 11).

   Implemented mechanically over the AST:
   - high-level optimisations: normalisation (pushing factors into the
     innermost Sigma), loop scheduling (swapping a big-domain Sigma inside a
     static-set Sigma), and factorisation (pulling loop-invariant factors
     back out);
   - static memoisation + code motion: the largest data-intensive Sigma in
     a convergence-loop body whose only non-global free variables are bound
     over STATIC sets is abstracted into a dictionary and hoisted out of
     the loop;
   - schema specialisation: loop unrolling of Lambda/Sigma over static sets
     into records/addition chains, and static field access replacing
     dynamic lookups by record fields.

   The aggregate pushdown and the final view FUSION + trie conversion are
   also mechanical (see below). The test suite checks semantic equivalence
   of every stage. *)

open Expr

(* ---------- multiplicative chains ---------- *)

let rec mul_factors = function
  | Mul (a, b) -> mul_factors a @ mul_factors b
  | e -> [ e ]

let mul_of_list = function
  | [] -> Num 1.0
  | f :: fs -> List.fold_left (fun acc g -> Mul (acc, g)) f fs

(* ---------- stage 1: normalise, swap, factor out ---------- *)

(* Push every factor multiplied with a Sigma into its body (when the factor
   does not use the bound variable). *)
let push_into_sums e =
  let rule = function
    | Mul _ as m -> (
        let factors = mul_factors m in
        match
          List.partition (function Sum _ -> true | _ -> false) factors
        with
        | [ Sum (v, src, body) ], others
          when others <> [] && List.for_all (fun f -> not (uses v f)) others ->
            Sum (v, src, mul_of_list (others @ [ body ]))
        | _ -> m)
    | e -> e
  in
  rewrite_fix rule e

(* Swap Sigma over a non-static domain with an inner Sigma over a static
   set: the outer loop then iterates the SMALL set. *)
let swap_loops e =
  let rule = function
    | Sum (x, big, Sum (f, Set syms, body)) when big <> Set syms && not (uses f big)
      ->
        Sum (f, Set syms, Sum (x, big, body))
    | e -> e
  in
  rewrite_fix rule e

(* Pull factors that do not depend on the bound variable out of Sigma
   bodies (uses fewer arithmetic operations). *)
let factor_out e =
  let rule = function
    | Sum (v, src, body) -> (
        let factors = mul_factors body in
        match List.partition (uses v) factors with
        | _, [] -> Sum (v, src, body)
        | dependent, invariant ->
            Mul (mul_of_list invariant, Sum (v, src, mul_of_list dependent)))
    | e -> e
  in
  rewrite_fix rule e

let high_level e = factor_out (swap_loops (push_into_sums e))

(* ---------- stage 2: static memoisation + code motion ---------- *)

let gensym =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "%s_%d" prefix !counter

(* Replace every occurrence structurally equal to [target] by [by]. *)
let replace_equal ~target ~by e =
  map_bottom_up (fun node -> if node = target then by else node) e

(* Find the largest Sigma subexpression of [body] such that
   - it does not use [loop_var];
   - each of its free variables is either free in the whole loop body
     (hence bound outside the Iter, safe to reference from a hoisted Let) or
     bound by an enclosing Lambda/Sigma over a static [Set].
   Returns the candidate together with the static binders (outermost
   first). *)
let find_memoisable ~loop_var body =
  let globals = free body in
  let best = ref None in
  let consider ctx e =
    match e with
    | Sum _ when not (uses loop_var e) ->
        let needed =
          List.filter (fun v -> not (List.mem v globals)) (free e)
        in
        let binders =
          List.filter (fun (v, _) -> List.mem v needed) ctx
        in
        if List.for_all (fun v -> List.mem_assoc v ctx) needed then begin
          match !best with
          | Some (b, _) when size b >= size e -> ()
          | _ -> best := Some (e, binders)
        end
    | _ -> ()
  in
  (* context-carrying traversal: ctx lists (var, set) for static binders
     in scope, outermost first *)
  let rec walk ctx e =
    consider ctx e;
    match e with
    | Num _ | Sym _ | Var _ | Set _ | Rel _ -> ()
    | Rec fields -> List.iter (fun (_, e) -> walk ctx e) fields
    | Field (e, _) -> walk ctx e
    | Lookup (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Sing (a, b)
      ->
        walk ctx a;
        walk ctx b
    | Lam (v, (Set _ as s), b) | Sum (v, (Set _ as s), b) ->
        walk ctx s;
        walk (ctx @ [ (v, s) ]) b
    | Lam (v, s, b) | Sum (v, s, b) ->
        walk ctx s;
        ignore v;
        walk ctx b
    | Let (_, s, b) ->
        walk ctx s;
        walk ctx b
    | Iter { init; body; _ } ->
        walk ctx init;
        walk ctx body
  in
  walk [] body;
  !best

(* Memoise the candidate as a nested dictionary and hoist it above the
   convergence loop. *)
let memoise_and_hoist e =
  let rule = function
    | Iter { times; var; init; body } as it -> (
        match find_memoisable ~loop_var:var body with
        | None | Some (_, []) -> it
        | Some (target, binders) ->
            let m = gensym "M" in
            let access =
              List.fold_left (fun acc (v, _) -> Lookup (acc, Var v)) (Var m) binders
            in
            let dict =
              List.fold_right (fun (v, s) acc -> Lam (v, s, acc)) binders target
            in
            let body' = replace_equal ~target ~by:access body in
            Let (m, dict, Iter { times; var; init; body = body' }))
    | e -> e
  in
  map_bottom_up rule e

(* ---------- stage 3: schema specialisation ---------- *)

let unroll_static e =
  let rule = function
    | Lam (v, Set syms, body) ->
        Rec (List.map (fun s -> (s, subst v (Sym s) body)) syms)
    | Sum (v, Set syms, body) -> (
        match List.map (fun s -> subst v (Sym s) body) syms with
        | [] -> Num 0.0
        | f :: fs -> List.fold_left (fun acc g -> Add (acc, g)) f fs)
    | e -> e
  in
  rewrite_fix rule e

let static_field_access e =
  let rule = function
    | Lookup (d, Sym s) -> Field (d, s)
    | Field (Rec fields, f) when List.mem_assoc f fields ->
        (* projection of a record literal *)
        List.assoc f fields
    | e -> e
  in
  rewrite_fix rule e

let specialise e = static_field_access (unroll_static e)

(* ---------- aggregate pushdown (Figure 11's aggregate optimisations) ----

   Mechanical derivation of the paper's pushdown: inline the join
   definition, distribute the outer Sigma through the join's nested Sigmas
   (bilinearity of SUM in the dictionary annotation), eliminate the
   singleton-dictionary Sigma, turn join guards into dictionary views, and
   hoist the views out of the enclosing loops. View FUSION (merging the
   per-entry views into shared record-valued ones) and trie conversion
   remain the hand-derived final stage in [Gd_example]. *)

(* inline a Let-bound variable everywhere (dropping the Let) *)
let inline_let name e =
  let go = function
    | Let (v, def, body) when v = name -> subst v def body
    | other -> other
  in
  map_bottom_up go e

(* Sigma over a dictionary-valued Sigma: when the body is multiplicative in
   the dictionary's annotation (it contains the factor d(x)), the outer
   Sigma distributes through the inner one. *)
let push_sum_through_join e =
  let rule = function
    | Sum (x, (Sum (y, src, d) as j), body) when not (uses y body) -> (
        let factors = mul_factors body in
        let is_annot = function
          | Lookup (j', Var x') -> x' = x && j' = j
          | _ -> false
        in
        match List.partition is_annot factors with
        | [ _ ], rest ->
            Sum
              ( y,
                src,
                Sum (x, d, mul_of_list (Lookup (d, Var x) :: rest)) )
        | _ -> Sum (x, j, body))
    | e -> e
  in
  rewrite_fix rule e

(* Sigma over a singleton dictionary = the body at the key; the residual
   lookup of the singleton at its own key reduces to the value (sparse
   semantics are preserved because the body is multiplicative in it). *)
let eliminate_singleton_sums e =
  let rule = function
    | Sum (x, Sing (k, v), body) when not (uses x k) && not (uses x v) ->
        subst x k body
    | Lookup (Sing (k, v), k') when k = k' -> v
    | e -> e
  in
  rewrite_fix rule e

(* A multiplicative equality guard linking an inner loop variable to outer
   context becomes a dictionary view probed from outside:
     Sigma_y src. [outer = inner(y)] * f(y) * g
   = g * (Sigma_y src. {inner(y) -> f(y)}) (outer) *)
let guards_to_views e =
  let rule = function
    | Sum (y, src, body) when not (uses y src) -> (
        let factors = mul_factors body in
        let is_guard = function
          | Eq (l, r) -> (uses y r && not (uses y l)) || (uses y l && not (uses y r))
          | _ -> false
        in
        match List.partition is_guard factors with
        | g :: gs, rest ->
            let outer, inner =
              match g with
              | Eq (l, r) when uses y r -> (l, r)
              | Eq (l, r) -> (r, l)
              | _ -> assert false
            in
            (* keep further guards and y-dependent factors inside the view *)
            let value = mul_of_list (gs @ rest) in
            if uses y value || gs <> [] then
              Lookup (Sum (y, src, Sing (inner, value)), outer)
            else Mul (value, Lookup (Sum (y, src, Sing (inner, Num 1.0)), outer))
        | _ -> Sum (y, src, body))
    | e -> e
  in
  rewrite_fix rule e

(* Hoist view-shaped subexpressions (Sigmas over base relations, free of the
   loop variable) out of enclosing Sigmas as Lets — loop-invariant code
   motion for the views the pushdown just created. *)
let hoist_views e =
  let rule = function
    | Sum (x, src, body) -> (
        (* largest Sum-over-Rel subexpression of body not using x *)
        let best = ref None in
        let consider e' =
          match e' with
          | Sum (_, Rel _, _) when not (uses x e') -> (
              match !best with
              | Some b when size b >= size e' -> ()
              | _ -> best := Some e')
          | _ -> ()
        in
        let rec walk e' =
          consider e';
          match e' with
          | Num _ | Sym _ | Var _ | Set _ | Rel _ -> ()
          | Rec fields -> List.iter (fun (_, e) -> walk e) fields
          | Field (e, _) -> walk e
          | Lookup (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b)
          | Sing (a, b) ->
              walk a;
              walk b
          | Lam (_, s, b) | Sum (_, s, b) | Let (_, s, b) ->
              walk s;
              walk b
          | Iter { init; body; _ } ->
              walk init;
              walk body
        in
        walk body;
        match !best with
        | None -> Sum (x, src, body)
        | Some view ->
            let v = gensym "V" in
            Let (v, view, Sum (x, src, replace_equal ~target:view ~by:(Var v) body)))
    | e -> e
  in
  rewrite_fix rule e

let aggregate_pushdown ?(join_name = "Q") e =
  e |> inline_let join_name |> push_sum_through_join |> eliminate_singleton_sums
  |> static_field_access |> factor_out |> guards_to_views |> hoist_views

(* ---------- view fusion + trie conversion ---------- *)

(* The pushdown leaves one Let-bound view per aggregate entry and side:
   [Let (v, Sum (y, Rel r, Sing (key, value)), body)]. Views over the SAME
   relation with the SAME key differ only in the value they carry (the
   moment: multiplicity, a field, a square...). Fusion groups them by
   (relation, key) — bound variable normalised — dedups structurally equal
   values, and replaces each group by ONE record-valued view

     W = Σ y∈r. {key → {m1 = value_1; ...; mk = value_k}}

   — the trie conversion: one probe per relation now retrieves every
   moment at once. Probes [v(probe)] become [W(probe).mi], the original
   Lets are dropped, and the fused views wrap the program. *)
let fuse_views (e : expr) : expr =
  let rec has_binder = function
    | Sum _ | Lam _ | Let _ | Iter _ -> true
    | Num _ | Sym _ | Var _ | Set _ | Rel _ -> false
    | Rec fields -> List.exists (fun (_, x) -> has_binder x) fields
    | Field (x, _) -> has_binder x
    | Lookup (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b)
    | Sing (a, b) ->
        has_binder a || has_binder b
  in
  (* rename the bound variable to a marker so views from different entries
     compare structurally (safe: the matched bodies contain no binders) *)
  let normalise y x =
    map_bottom_up (fun n -> if n = Var y then Var "%y" else n) x
  in
  (* collect every fusable view binding in discovery order *)
  let found = ref [] in
  ignore
    (map_bottom_up
       (fun node ->
         (match node with
          | Let (v, (Sum (y, Rel r, Sing (key, value)) as view), _)
            when free view = [] && (not (has_binder key))
                 && not (has_binder value) ->
              found := (v, r, normalise y key, normalise y value) :: !found
          | _ -> ());
         node)
       e);
  let views = List.rev !found in
  if views = [] then e
  else begin
    (* group by (relation, key); dedup values in first-use order *)
    let groups : ((string * expr) * (string * expr list ref)) list ref =
      ref []
    in
    let tbl : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (v, r, key, value) ->
        let gkey = (r, key) in
        let w, values =
          match List.assoc_opt gkey !groups with
          | Some g -> g
          | None ->
              let g = (gensym "W", ref []) in
              groups := !groups @ [ (gkey, g) ];
              g
        in
        let rec index i = function
          | [] ->
              values := !values @ [ value ];
              i
          | x :: xs -> if x = value then i else index (i + 1) xs
        in
        let idx = index 0 !values in
        Hashtbl.replace tbl v (w, Printf.sprintf "m%d" (idx + 1)))
      views;
    (* drop the fused-away Lets and retarget their probes *)
    let stripped =
      map_bottom_up
        (fun node ->
          match node with
          | Let (v, _, body) when Hashtbl.mem tbl v -> body
          | Lookup (Var v, probe) when Hashtbl.mem tbl v ->
              let w, field = Hashtbl.find tbl v in
              Field (Lookup (Var w, probe), field)
          | node -> node)
        e
    in
    (* wrap the fused record-valued views around the program *)
    List.fold_right
      (fun ((r, key), (w, values)) acc ->
        let yv = gensym "y" in
        let denorm x =
          map_bottom_up (fun n -> if n = Var "%y" then Var yv else n) x
        in
        let fields =
          List.mapi
            (fun i v -> (Printf.sprintf "m%d" (i + 1), denorm v))
            !values
        in
        Let (w, Sum (yv, Rel r, Sing (denorm key, Rec fields)), acc))
      !groups stripped
  end

(* ---------- the cumulative pipeline ---------- *)

let stages : (string * (expr -> expr)) list =
  [
    ("high-level optimisations (normalise, loop scheduling, factorisation)", high_level);
    ("static memoisation + code motion", memoise_and_hoist);
    ("schema specialisation (loop unrolling, static field access)", specialise);
  ]

(* Apply the pipeline cumulatively, returning each intermediate program. *)
let pipeline (e : expr) : (string * expr) list =
  let _, acc =
    List.fold_left
      (fun (cur, acc) (name, f) ->
        let next = f cur in
        (next, (name, next) :: acc))
      (e, [ ("original", e) ])
      stages
  in
  List.rev acc
