(** IFAQ's equivalence-preserving transformations (Section 5.3, Figure 11),
    implemented mechanically over the AST — through aggregate pushdown,
    view fusion and trie conversion; tests check semantic equivalence of
    every stage. *)

open Expr

val mul_factors : expr -> expr list
(** Flatten a multiplication chain. *)

val mul_of_list : expr list -> expr

val push_into_sums : expr -> expr
(** Normalisation: push factors multiplied with a Sigma into its body (when
    independent of the bound variable). *)

val swap_loops : expr -> expr
(** Loop scheduling: hoist a static-set Sigma above a big-domain Sigma. *)

val factor_out : expr -> expr
(** Factorisation: pull loop-invariant factors back out of Sigma bodies. *)

val high_level : expr -> expr
(** The composed "high-level optimisations" stage. *)

val memoise_and_hoist : expr -> expr
(** Static memoisation + code motion: the largest data-intensive Sigma in a
    convergence-loop body whose non-global free variables are bound over
    static sets is abstracted into a dictionary and Let-hoisted above the
    loop. *)

val unroll_static : expr -> expr
(** Loop unrolling: Lambda/Sigma over static sets become records / addition
    chains. *)

val static_field_access : expr -> expr
(** [Lookup (d, Sym s)] becomes [Field (d, s)]; record-literal projections
    reduce. *)

val specialise : expr -> expr
(** The composed "schema specialisation" stage. *)

val inline_let : string -> expr -> expr
(** Substitute a Let-bound definition everywhere, dropping the Let. *)

val push_sum_through_join : expr -> expr
(** Distribute a Sigma over a dictionary-valued Sigma when the body is
    multiplicative in the dictionary's annotation. *)

val eliminate_singleton_sums : expr -> expr
(** Sigma over a singleton dictionary reduces to the body at the key. *)

val guards_to_views : expr -> expr
(** Multiplicative equality guards become dictionary views probed from the
    outer context — the pushdown past the joins. *)

val hoist_views : expr -> expr
(** Loop-invariant code motion for the views the pushdown created. *)

val aggregate_pushdown : ?join_name:string -> expr -> expr
(** The composed mechanical pushdown stage. *)

val fuse_views : expr -> expr
(** View fusion + trie conversion: Let-bound views over the same relation
    with the same key are fused into one record-valued view carrying every
    distinct moment as a field; probes become field projections of one
    lookup. *)

val stages : (string * (expr -> expr)) list
val pipeline : expr -> (string * expr) list
(** Cumulative application, including the original program. *)
