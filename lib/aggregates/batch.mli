(** Batch synthesis: from a learning task to its aggregate batch (Section 2).
    The batch sizes these produce are the Figure 5 quantities. *)

open Relational

type t = { name : string; aggregates : Spec.t list }

val size : t -> int

val covariance : Feature.t -> t
(** Section 2.1: COUNT, SUM(Xi), SUM(Xi*Xj) over numeric features, plus the
    group-by counts/sums encoding all categorical interactions sparsely. *)

val thresholds_for : Database.t -> string -> int -> float list
(** Equi-width threshold candidates for a continuous attribute, from its
    observed range in the base relations. *)

val decision_node : ?db:Database.t -> Feature.t -> t
(** Section 2.2: the variance triples (SUM(y^2), SUM(y), COUNT) per
    candidate split — threshold filters for continuous features (thresholds
    from [db] when given), grouped triples for categorical ones. *)

val mutual_information : string list -> t
(** COUNT plus all marginal and pairwise joint counts over the attributes
    (model selection / Chow-Liu trees). *)

val kmeans : Feature.t -> t
(** Rk-means-style sufficient statistics: COUNT, per-dimension sums, and
    categorical frequency vectors. *)

val eval_flat : Relation.t -> t -> (string * Spec.result) list
(** Naive evaluation of the whole batch over a materialised data matrix. *)

val pp : Format.formatter -> t -> unit

val fingerprint : t -> int
(** Order-sensitive content fingerprint of the batch (name plus every
    aggregate's {!Spec.canonical} folded through [Util.Checksum.crc32]);
    non-negative and stable across processes. Cache key material. *)

val covariance_numeric : string list -> t
(** The numeric part of {!covariance} over an explicit feature list: COUNT,
    SUM(x) and SUM(x*y) only — the batch shape a covariance-maintaining
    serving cache can refresh without recomputation. *)
