(* Batch synthesis: from a learning task to its aggregate batch (Section 2).

   The batch sizes these produce are the quantities reported in the paper's
   Figure 5 — hundreds to thousands of similar aggregates per task, which is
   what makes sharing (LMFAO, the covariance ring) pay off. *)

open Relational

type t = { name : string; aggregates : Spec.t list }

let size b = List.length b.aggregates

(* --- 2.1 least-squares / covariance matrix ---

   For numeric features (continuous + response) and categorical features:
     SUM(1)                                     1
     SUM(Xi), SUM(Xi*Xj)  (i <= j numeric)      n + n(n+1)/2
     SUM(1) GROUP BY K                          per categorical
     SUM(Xi) GROUP BY K                         per (categorical, numeric)
     SUM(1) GROUP BY K1,K2 (K1 < K2)            per categorical pair *)
let covariance (f : Feature.t) =
  let numeric = Feature.numeric f in
  let categorical = f.categorical in
  let aggs = ref [] in
  let push a = aggs := a :: !aggs in
  push (Spec.count ~id:"count");
  List.iter
    (fun x -> push (Spec.make ~id:(Printf.sprintf "sum(%s)" x) ~terms:[ (x, 1) ] ~group_by:[] ()))
    numeric;
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) (x :: rest) @ pairs rest
  in
  List.iter
    (fun (x, y) ->
      let terms = if x = y then [ (x, 2) ] else [ (x, 1); (y, 1) ] in
      push (Spec.make ~id:(Printf.sprintf "sum(%s*%s)" x y) ~terms ~group_by:[] ()))
    (pairs numeric);
  List.iter
    (fun k ->
      push (Spec.make ~id:(Printf.sprintf "count|%s" k) ~terms:[] ~group_by:[ k ] ()))
    categorical;
  List.iter
    (fun k ->
      List.iter
        (fun x ->
          push
            (Spec.make
               ~id:(Printf.sprintf "sum(%s)|%s" x k)
               ~terms:[ (x, 1) ] ~group_by:[ k ] ()))
        numeric)
    categorical;
  let rec cat_pairs = function
    | [] -> []
    | k :: rest -> List.map (fun k' -> (k, k')) rest @ cat_pairs rest
  in
  List.iter
    (fun (k, k') ->
      push
        (Spec.make ~id:(Printf.sprintf "count|%s,%s" k k') ~terms:[] ~group_by:[ k; k' ] ()))
    (cat_pairs categorical);
  { name = "covariance"; aggregates = List.rev !aggs }

(* Threshold candidates for a continuous feature, chosen from its value
   distribution in the base relations (equi-width over observed range). *)
let thresholds_for db attr count =
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (fun rel ->
      let schema = Relation.schema rel in
      match Schema.position_opt schema attr with
      | None -> ()
      | Some i ->
          Relation.iter
            (fun t ->
              let x = Value.to_float t.(i) in
              if x < !lo then lo := x;
              if x > !hi then hi := x)
            rel)
    (Database.relations db);
  if !lo >= !hi then [ !lo ]
  else
    List.init count (fun j ->
        !lo +. ((!hi -. !lo) *. float_of_int (j + 1) /. float_of_int (count + 1)))

(* --- 2.2 decision-tree node costs ---

   Regression trees (CART) need, per candidate split, the response variance
   on each side: VARIANCE(Y) WHERE Xi op c, i.e. the three aggregates
   SUM(Y^2), SUM(Y), SUM(1) under the filter. Continuous features get
   [thresholds_per_feature] threshold filters; categorical features get the
   three aggregates grouped by the feature (one entry per category = the
   set-membership splits). *)
let decision_node ?(db : Database.t option) (f : Feature.t) =
  let y =
    match f.response with
    | Some y -> y
    | None -> invalid_arg "Batch.decision_node: needs a response"
  in
  let aggs = ref [] in
  let push a = aggs := a :: !aggs in
  let variance_triple ~suffix ~filter ~group_by =
    push (Spec.make ~filter ~id:("sum_y2" ^ suffix) ~terms:[ (y, 2) ] ~group_by ());
    push (Spec.make ~filter ~id:("sum_y" ^ suffix) ~terms:[ (y, 1) ] ~group_by ());
    push (Spec.make ~filter ~id:("count" ^ suffix) ~terms:[] ~group_by ())
  in
  List.iter
    (fun x ->
      let ths =
        match db with
        | Some db -> thresholds_for db x f.thresholds_per_feature
        | None ->
            List.init f.thresholds_per_feature (fun j -> float_of_int (j + 1))
      in
      List.iteri
        (fun j c ->
          let filter = Predicate.Ge (x, Value.Float c) in
          variance_triple ~suffix:(Printf.sprintf "|%s>=t%d" x j) ~filter ~group_by:[])
        ths)
    f.continuous;
  List.iter
    (fun k ->
      variance_triple ~suffix:(Printf.sprintf "|by %s" k) ~filter:Predicate.True
        ~group_by:[ k ])
    f.categorical;
  { name = "decision-node"; aggregates = List.rev !aggs }

(* --- mutual information (model selection, Chow-Liu trees) ---

   Pairwise distributions of categorical variables: SUM(1), the marginals
   SUM(1) GROUP BY K, and the joints SUM(1) GROUP BY K1,K2. *)
let mutual_information (attrs : string list) =
  let aggs = ref [ Spec.count ~id:"count" ] in
  List.iter
    (fun k ->
      aggs := Spec.make ~id:(Printf.sprintf "count|%s" k) ~terms:[] ~group_by:[ k ] () :: !aggs)
    attrs;
  let rec pairs = function
    | [] -> []
    | k :: rest -> List.map (fun k' -> (k, k')) rest @ pairs rest
  in
  List.iter
    (fun (k, k') ->
      aggs :=
        Spec.make ~id:(Printf.sprintf "count|%s,%s" k k') ~terms:[] ~group_by:[ k; k' ] ()
        :: !aggs)
    (pairs attrs);
  { name = "mutual-information"; aggregates = List.rev !aggs }

(* --- k-means (Rk-means coresets) ---

   Rk-means clusters a small grid coreset instead of the full join: per
   numeric dimension it needs the total count and the dimension's sums
   grouped by grid cell; categorical dimensions contribute their frequency
   vectors. We approximate grid cells by the categorical group-bys available
   in the schema and per-dimension sums. *)
let kmeans (f : Feature.t) =
  let aggs = ref [ Spec.count ~id:"count" ] in
  List.iter
    (fun x ->
      aggs := Spec.make ~id:(Printf.sprintf "sum(%s)" x) ~terms:[ (x, 1) ] ~group_by:[] () :: !aggs)
    (Feature.numeric f);
  List.iter
    (fun k ->
      aggs := Spec.make ~id:(Printf.sprintf "count|%s" k) ~terms:[] ~group_by:[ k ] () :: !aggs)
    f.categorical;
  { name = "k-means"; aggregates = List.rev !aggs }

(* Evaluate a whole batch naively over a materialised data matrix; the
   reference the engines are tested against, and the "DBX"-style baseline. *)
let eval_flat rel batch =
  List.map (fun spec -> (spec.Spec.id, Spec.eval_flat rel spec)) batch.aggregates

let pp ppf b =
  Format.fprintf ppf "batch %s: %d aggregates@\n" b.name (size b);
  List.iter (fun a -> Format.fprintf ppf "  %a@\n" Spec.pp a) b.aggregates

(* Content fingerprint: the batch's canonical forms folded through CRC-32,
   chaining each step's digest into the next input so aggregate ORDER
   matters (two batches answer positionally). Used by [Serve] as the cache
   key for a batch shape. *)
let fingerprint b =
  List.fold_left
    (fun acc s -> Util.Checksum.crc32 (Printf.sprintf "%08x|%s" acc (Spec.canonical s)))
    (Util.Checksum.crc32 b.name)
    b.aggregates

(* The numeric-only covariance batch: COUNT, SUM(x), SUM(x*y) over the given
   features, no categorical interactions. Exactly the aggregates a serving
   cache can refresh from a maintained covariance triple. *)
let covariance_numeric (features : string list) =
  let aggs = ref [] in
  let push a = aggs := a :: !aggs in
  push (Spec.count ~id:"count");
  List.iter
    (fun x ->
      push (Spec.make ~id:(Printf.sprintf "sum(%s)" x) ~terms:[ (x, 1) ] ~group_by:[] ()))
    features;
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) (x :: rest) @ pairs rest
  in
  List.iter
    (fun (x, y) ->
      let terms = if x = y then [ (x, 2) ] else [ (x, 1); (y, 1) ] in
      push (Spec.make ~id:(Printf.sprintf "sum(%s*%s)" x y) ~terms ~group_by:[] ()))
    (pairs features);
  { name = "covariance-numeric"; aggregates = List.rev !aggs }
