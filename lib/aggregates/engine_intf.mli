(** The common shape of a batch-of-aggregates engine (LMFAO, the unshared
    DBX/MonetDB stand-ins, the structure-agnostic pipeline), so the CLI and
    bench harness can select engines through one first-class-module list
    instead of per-engine match arms. *)

module type S = sig
  val name : string
  (** Short selector used by [borg agg --engine] and the bench harness. *)

  val description : string
  (** One-line description for listings. *)

  type options

  val default_options : options

  val eval_batch :
    ?options:options ->
    Relational.Database.t ->
    Batch.t ->
    (string * Spec.result) list
  (** Answer every aggregate of the batch, keyed by aggregate id. Engines
      that need a materialised join build it internally (its cost is part of
      the engine's answer time, as in the paper's comparisons). Cyclic
      schemas are handled by each engine's own fallback rather than raised. *)
end

type t = (module S)
(** A packed engine with its options type hidden: callers evaluate with the
    engine's defaults. *)

val name : t -> string
val description : t -> string
val find : t list -> string -> t option
val eval : t -> Relational.Database.t -> Batch.t -> (string * Spec.result) list
