(* Seeded fault injection for the resilient maintenance driver.

   A fault plan is parsed from a compact spec string (comma-separated):

     crash-before:N     raise {!Crash} when update N is logged but not applied
     crash-after:N      raise {!Crash} right after update N commits
     torn-tail:K        when a crash fires, shear K bytes off the WAL tail
     reorder:K          when a crash fires, reverse the last K WAL records
                        (replay must cope with a non-monotone seq tail)
     dup:K              when a crash fires, re-append the last K WAL records
                        (replay must not double-apply duplicated frames)
     flip-checkpoint    when a crash fires, flip a bit in the newest checkpoint
     transient:P        each apply fails with probability P (seeded; retried)
     corrupt-state:N    silently perturb maintained views after update N
                        (exercises the audit/rebuild path)

   Crash and corruption events are ONE-SHOT: they clear themselves when they
   fire, so an in-process restart that replays the same sequence numbers
   (e.g. after a torn tail rewound the committed count) does not crash-loop.
   Transient failures draw from a [Util.Prng] stream, so a given seed yields
   the same failure pattern on every run. *)

exception Crash of string

type t = {
  prng : Util.Prng.t;
  mutable crash_before : int option;
  mutable crash_after : int option;
  mutable torn_tail : int;
  mutable reorder_tail : int;
  mutable dup_tail : int;
  mutable flip_checkpoint : bool;
  mutable transient : float;
  mutable corrupt_state : int option;
}

let none () =
  {
    prng = Util.Prng.create 0;
    crash_before = None;
    crash_after = None;
    torn_tail = 0;
    reorder_tail = 0;
    dup_tail = 0;
    flip_checkpoint = false;
    transient = 0.0;
    corrupt_state = None;
  }

let grammar =
  "comma-separated events: crash-before:N | crash-after:N | torn-tail:K | \
   reorder:K | dup:K | flip-checkpoint | transient:P | corrupt-state:N"

let parse ~seed spec =
  let t = { (none ()) with prng = Util.Prng.create seed } in
  let bad tok = invalid_arg (Printf.sprintf "bad fault spec %S (%s)" tok grammar) in
  String.split_on_char ',' spec
  |> List.iter (fun tok ->
         let tok = String.trim tok in
         if tok = "" then ()
         else
           match String.index_opt tok ':' with
           | None -> if tok = "flip-checkpoint" then t.flip_checkpoint <- true else bad tok
           | Some i -> (
               let name = String.sub tok 0 i in
               let arg = String.sub tok (i + 1) (String.length tok - i - 1) in
               let int_arg () = match int_of_string_opt arg with Some n -> n | None -> bad tok in
               let float_arg () =
                 match float_of_string_opt arg with Some f -> f | None -> bad tok
               in
               match name with
               | "crash-before" -> t.crash_before <- Some (int_arg ())
               | "crash-after" -> t.crash_after <- Some (int_arg ())
               | "torn-tail" -> t.torn_tail <- int_arg ()
               | "reorder" -> t.reorder_tail <- int_arg ()
               | "dup" -> t.dup_tail <- int_arg ()
               | "flip-checkpoint" -> bad tok
               | "transient" -> t.transient <- float_arg ()
               | "corrupt-state" -> t.corrupt_state <- Some (int_arg ())
               | _ -> bad tok));
  t

let crash_before t ~seq =
  match t.crash_before with
  | Some n when seq >= n ->
      t.crash_before <- None;
      raise (Crash (Printf.sprintf "injected crash before commit of update %d" seq))
  | _ -> ()

let crash_after t ~seq =
  match t.crash_after with
  | Some n when seq >= n ->
      t.crash_after <- None;
      raise (Crash (Printf.sprintf "injected crash after commit of update %d" seq))
  | _ -> ()

let transient_failure t = t.transient > 0.0 && Util.Prng.float t.prng 1.0 < t.transient

let corrupt_now t ~seq =
  match t.corrupt_state with
  | Some n when seq >= n ->
      t.corrupt_state <- None;
      true
  | _ -> false

let torn_tail t = t.torn_tail
let reorder_tail t = t.reorder_tail
let dup_tail t = t.dup_tail
let flips_checkpoint t = t.flip_checkpoint
