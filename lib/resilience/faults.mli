(** Seeded fault injection for the resilient maintenance driver: one-shot
    crash events (optionally tearing the WAL tail / bit-flipping the newest
    checkpoint as they fire), seeded transient apply failures, and silent
    view-state corruption to exercise the audit path. *)

exception Crash of string
(** Simulated process death; the driver applies any configured disk damage
    and re-raises, and the harness recovers by rebuilding the driver. *)

type t

val none : unit -> t
(** No faults. *)

val parse : seed:int -> string -> t
(** Parse a fault spec. Raises [Invalid_argument] with the grammar on a bad
    token. *)

val grammar : string
(** One-line description of the spec grammar (CLI help text). *)

val crash_before : t -> seq:int -> unit
(** Raise {!Crash} (once) if the plan crashes before commit of [seq]. *)

val crash_after : t -> seq:int -> unit

val transient_failure : t -> bool
(** Draw: does this apply attempt fail transiently? *)

val corrupt_now : t -> seq:int -> bool
(** One-shot: perturb the maintained state after this commit? *)

val torn_tail : t -> int
(** Bytes to shear off the WAL when a crash fires (0 = none). *)

val reorder_tail : t -> int
(** Records of the WAL tail to reverse when a crash fires (0 = none):
    recovery must tolerate a non-monotone seq tail. *)

val dup_tail : t -> int
(** Records of the WAL tail to duplicate when a crash fires (0 = none):
    recovery must not double-apply duplicated frames. *)

val flips_checkpoint : t -> bool
(** Flip a bit in the newest checkpoint when a crash fires? *)
