(* Append-only write-ahead log of delta updates.

   One checksummed frame per record ([Codec.frame]: length, CRC-32, payload);
   each record carries the sequence number the update commits as, so replay
   after a checkpoint restore can skip the prefix already covered by the
   checkpoint. Appends flush before returning — a record that [append]
   acknowledged survives a crash, and recovery applies it.

   Replay is truncation-tolerant: a torn tail (partial frame, or a frame
   whose checksum no longer matches) ends the replay at the last valid
   record instead of raising; the caller repairs the file with {!truncate}
   before appending again, so later records never sit behind garbage. *)

module Codec = Relational.Codec

type record = { seq : int; update : Fivm.Delta.update }

let encode_record b (r : record) =
  Codec.i64 b r.seq;
  Codec.str b r.update.relation;
  Codec.tuple b r.update.tuple;
  Codec.i64 b r.update.multiplicity

let decode_record rd : record =
  let seq = Codec.read_i64 rd in
  let relation = Codec.read_str rd in
  let tuple = Codec.read_tuple rd in
  let multiplicity = Codec.read_i64 rd in
  { seq; update = { Fivm.Delta.relation; tuple; multiplicity } }

type writer = { path : string; oc : out_channel }

let open_append path =
  {
    path;
    oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path;
  }

let append w r =
  let payload = Buffer.create 64 in
  encode_record payload r;
  let framed = Buffer.create 80 in
  Codec.frame framed (Buffer.contents payload);
  Buffer.output_buffer w.oc framed;
  flush w.oc

let close w = close_out_noerr w.oc

type replay = { records : record list; valid_bytes : int; torn : bool }

let replay path : replay =
  if not (Sys.file_exists path) then { records = []; valid_bytes = 0; torn = false }
  else begin
    let s = In_channel.with_open_bin path In_channel.input_all in
    let rd = Codec.reader s in
    let records = ref [] and valid = ref 0 and torn = ref false in
    (try
       while not (Codec.eof rd) do
         let payload = Codec.read_frame rd in
         records := decode_record (Codec.reader payload) :: !records;
         valid := rd.Codec.pos
       done
     with Codec.Decode_error _ -> torn := true);
    { records = List.rev !records; valid_bytes = !valid; torn = !torn }
  end

let truncate path ~len = if Sys.file_exists path then Unix.truncate path len

let size path = if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0

(* Damage injection (fault harness): shear [bytes] off the end of the log,
   simulating a write torn mid-frame by a crash. *)
let shear_tail path ~bytes =
  let n = size path in
  if n > 0 then Unix.truncate path (max 0 (n - bytes))

let rewrite path (records : record list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      let payload = Buffer.create 64 in
      encode_record payload r;
      Codec.frame b (Buffer.contents payload))
    records;
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Buffer.contents b))

(* Damage injection: reverse the order of the last [frames] valid records,
   simulating a log whose tail was flushed out of sequence (seqs arrive
   non-monotone at replay). A torn suffix, if any, is dropped in the
   rewrite — the crash that fires this damage would have torn it anyway. *)
let reorder_tail path ~frames =
  if frames > 1 then begin
    let rp = replay path in
    let n = List.length rp.records in
    if n > 1 then begin
      let k = min frames n in
      let head = ref [] and tail = ref [] in
      List.iteri
        (fun i r -> if i < n - k then head := r :: !head else tail := r :: !tail)
        rp.records;
      rewrite path (List.rev !head @ !tail)
    end
  end

(* Damage injection: append byte-identical copies of the last [frames] valid
   records, simulating a retried flush that re-sent an acknowledged window —
   replay sees duplicated (and, for [frames] > 1, non-monotone) seqs. *)
let dup_tail path ~frames =
  if frames > 0 then begin
    let rp = replay path in
    let n = List.length rp.records in
    if n > 0 then begin
      let k = min frames n in
      let dup = List.filteri (fun i _ -> i >= n - k) rp.records in
      rewrite path (rp.records @ dup)
    end
  end
