(** Resilient batch driver around the F-IVM maintenance loop: validate →
    quarantine or WAL-append → apply (with retry/backoff under injected
    transient faults) → commit, with periodic checkpoints, periodic audits
    against {!Fivm.Maintainer.recompute} (divergence triggers a rebuild from
    base storage), and crash recovery from the newest valid checkpoint plus
    the WAL tail. All activity is counted under [resilience.*]. *)

open Fivm

type config = {
  dir : string;  (** WAL + checkpoint directory (created if absent) *)
  checkpoint_every : int;  (** commits between checkpoints; 0 = never *)
  audit_every : int;  (** commits between audits; 0 = never *)
  audit_eps : float;  (** relative tolerance of the audit comparison *)
  max_retries : int;  (** transient-failure retry budget per update *)
  faults : Faults.t;
}

val config :
  ?checkpoint_every:int ->
  ?audit_every:int ->
  ?audit_eps:float ->
  ?max_retries:int ->
  ?faults:Faults.t ->
  string ->
  config
(** [config dir] with defaults: checkpoint every 256 commits, no audits,
    [audit_eps = 1e-6], 8 retries, no faults. *)

type t

val create : config -> (unit -> Maintainer.t) -> t
(** Always starts with recovery (a [resilience.recover] span): restore the
    newest valid checkpoint, repair a torn WAL tail to its valid prefix,
    replay WAL records past the checkpoint. A fresh directory yields an
    empty maintainer at sequence 0. [make] supplies empty maintainers of the
    desired strategy; it is also used by audit-failure rebuilds. *)

type outcome = Applied | Quarantined of string

val submit : t -> Delta.update -> outcome
(** One update through the durability contract. Malformed updates (unknown
    relation, wrong arity, type mismatch, non-finite value) are quarantined
    without being logged. May raise {!Faults.Crash} under an injected crash
    — the driver damages disk state as configured and re-raises; recover by
    calling {!create} again with the same config. *)

val submit_batch : t -> Delta.update list -> unit
(** Submit updates in order inside a [resilience.batch] span. *)

val covariance : t -> Rings.Covariance.t
(** The maintained result — keeps answering across recoveries/rebuilds. *)

val seq : t -> int
(** Committed update count; a caller resuming a stream after a crash feeds
    updates from position [seq] onwards. *)

val quarantined : t -> (Delta.update * string) list
(** Dead-letter list in arrival order. *)

val maintainer : t -> Maintainer.t

val checkpoint_now : t -> unit
(** Checkpoint (atomic rename) and rotate the WAL. *)

val audit_now : t -> bool
(** Compare maintained vs recomputed covariance; [false] means divergence
    was found (and views were rebuilt from base storage). *)

val close : t -> unit
(** Checkpoint, then close the WAL. *)
