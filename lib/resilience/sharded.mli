(** Sharded resilient maintenance: one {!Driver} (WAL + checkpoints +
    recovery) per shard of a {!Fivm.Shard.plan}, each under its own
    subdirectory [dir/shard-<k>], maintained in parallel on [Util.Pool]
    tasks. Recovery is per shard: rebuilding shard [k] restores shard
    [k]'s newest checkpoint and replays only shard [k]'s WAL tail — the
    other shards keep serving. Injected crashes ({!Faults.Crash}) are
    caught inside the owning shard's task, which recreates its driver
    (recovering from disk) and resumes its queue from the recovered
    sequence number. *)

open Fivm

type t

val create :
  ?checkpoint_every:int ->
  ?audit_every:int ->
  ?audit_eps:float ->
  ?max_retries:int ->
  ?max_restarts:int ->
  ?faults:(int -> Faults.t) ->
  dir:string ->
  plan:Shard.plan ->
  (unit -> Maintainer.t) ->
  t
(** One driver per shard of [plan], each recovering from [dir/shard-<k>]
    on creation. [faults k] supplies shard [k]'s fault plan (default: no
    faults); the same plans are reused across in-task driver recreations,
    so one-shot crash events fire once per shard. [max_restarts] (default
    8) bounds crash recoveries per shard per batch. Other options are the
    {!Driver.config} knobs, applied to every shard. *)

val shards : t -> int
val plan_of : t -> Shard.plan

val submit_batch : ?domains:int -> t -> Delta.update list -> unit
(** Partition the batch by the plan and run every shard's submit loop in
    parallel inside a [resilience.shard.batch] span. A shard that crashes
    recovers in-task and resumes from its recovered sequence number
    (assuming the crash window holds no quarantined updates — parity with
    the single-shard restart harness). Raises [Failure] if a shard
    exhausts [max_restarts]. *)

val covariance : t -> Rings.Covariance.t
(** Per-shard driver covariances merged in canonical shard order
    (folded from shard 0's triple, as {!Fivm.Shard.covariance}). *)

val seq : t -> int
(** Total committed updates across shards. *)

val seqs : t -> int array
(** Per-shard committed counts. *)

val crashes : t -> int
(** Injected crashes recovered from so far (all shards). *)

val quarantined : t -> (Delta.update * string) list
(** Dead-letter lists concatenated in shard order. *)

val driver : t -> int -> Driver.t
(** Shard [k]'s current driver (tests; replaced after each recovery). *)

val checkpoint_now : t -> unit
val close : t -> unit
