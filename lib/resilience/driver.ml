(* Resilient batch driver around the F-IVM maintenance loop.

   The durability contract, per update:

   1. VALIDATE against the live schemas (unknown relation, wrong arity,
      type-mismatched or non-finite values). Malformed updates are
      quarantined into a dead-letter list and NEVER logged — the WAL only
      ever holds updates the maintainer can apply.
   2. LOG to the WAL (flushed) under the next sequence number.
   3. APPLY to the maintainer, retrying with exponential backoff when the
      fault plan injects a transient failure.
   4. COMMIT: advance the sequence counter.

   A crash between 2 and 4 is therefore recoverable: the update is in the
   WAL and recovery replays it. [create] always starts with recovery —
   restore the newest valid checkpoint, repair a torn WAL tail to its valid
   prefix, replay the records past the checkpoint's sequence number — so a
   fresh directory, a clean shutdown and a crash all go through one path.

   Checkpoints rotate the WAL in two generations: [wal.log] becomes
   [wal.prev.log] (dropping the generation before it) and a fresh [wal.log]
   starts. Checkpoint pruning keeps the newest TWO checkpoints, so even if
   the newest checkpoint is corrupted on disk, the older checkpoint plus the
   two log generations still cover every committed update — recovery skips
   replayed records at or below the restored sequence number, so the overlap
   is harmless, as is a crash between the checkpoint rename and the
   rotation.

   Audits periodically compare the maintained covariance against a
   from-scratch recomputation ([Maintainer.recompute]); on divergence the
   driver rebuilds views from base storage and re-checkpoints — callers
   keep getting answers, at rebuild cost, instead of wrong ones. *)

open Fivm
open Relational
module M = Maintainer

(* Observability ([resilience.*]): the robustness ledger — what was logged,
   replayed, quarantined, retried, recovered and rebuilt. *)
let c_wal_records = Obs.counter "resilience.wal_records"
let c_wal_replayed = Obs.counter "resilience.wal_replayed"
let c_wal_torn = Obs.counter "resilience.wal_torn"
let c_checkpoints = Obs.counter "resilience.checkpoints"
let c_checkpoint_corrupt = Obs.counter "resilience.checkpoint_corrupt"
let c_recoveries = Obs.counter "resilience.recoveries"
let c_quarantined = Obs.counter "resilience.quarantined"
let c_retries = Obs.counter "resilience.retries"
let c_audits = Obs.counter "resilience.audits"
let c_audit_failures = Obs.counter "resilience.audit_failures"
let c_rebuilds = Obs.counter "resilience.rebuilds"

type config = {
  dir : string;
  checkpoint_every : int;  (* commits between checkpoints; 0 = never *)
  audit_every : int;  (* commits between audits; 0 = never *)
  audit_eps : float;
  max_retries : int;
  faults : Faults.t;
}

let config ?(checkpoint_every = 256) ?(audit_every = 0) ?(audit_eps = 1e-6)
    ?(max_retries = 8) ?faults dir =
  let faults = match faults with Some f -> f | None -> Faults.none () in
  { dir; checkpoint_every; audit_every; audit_eps; max_retries; faults }

type t = {
  cfg : config;
  make : unit -> M.t;
  mutable m : M.t;
  mutable wal : Wal.writer;
  mutable seq : int;
  mutable dead_letters : (Delta.update * string) list;  (* newest first *)
  retry_prng : Util.Prng.t;  (* jittered-backoff draws, deterministic per driver *)
}

type outcome = Applied | Quarantined of string

let wal_path cfg = Filename.concat cfg.dir "wal.log"
let wal_prev_path cfg = Filename.concat cfg.dir "wal.prev.log"

(* ---- validation / quarantine ---- *)

let validate (m : M.t) (u : Delta.update) =
  match Storage.node (M.storage m) u.relation with
  | exception Invalid_argument _ -> Error (Printf.sprintf "unknown relation %s" u.relation)
  | n ->
      let arity = Schema.arity n.Storage.schema in
      if Tuple.arity u.tuple <> arity then
        Error
          (Printf.sprintf "arity mismatch: relation %s has %d attributes, tuple has %d"
             u.relation arity (Tuple.arity u.tuple))
      else begin
        let err = ref None in
        Array.iteri
          (fun i v ->
            if !err = None then begin
              let attr = Schema.attr_at n.Storage.schema i in
              (match v with
              | Value.Float f when not (Float.is_finite f) ->
                  err :=
                    Some
                      (Printf.sprintf "non-finite value %h in attribute %s" f
                         attr.Schema.name)
              | _ -> ());
              match (Value.type_of v, !err) with
              | Some ty, None when ty <> attr.Schema.ty ->
                  err :=
                    Some
                      (Printf.sprintf "attribute %s expects %s, got %s" attr.Schema.name
                         (Value.ty_to_string attr.Schema.ty)
                         (Value.ty_to_string ty))
              | _ -> ()
            end)
          u.tuple;
        match !err with Some e -> Error e | None -> Ok ()
      end

(* ---- recovery ---- *)

let recover cfg make =
  Obs.with_span "resilience.recover" @@ fun () ->
  if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
  let restored, corrupt = Checkpoint.restore ~dir:cfg.dir ~make in
  Obs.add c_checkpoint_corrupt corrupt;
  let m, seq0 =
    match restored with
    | Some r -> (r.Checkpoint.maintainer, r.Checkpoint.seq)
    | None -> (make (), 0)
  in
  (* both log generations, oldest records first; each repaired to its valid
     prefix if torn (replay skips the checkpoint-covered overlap by seq) *)
  let replay_file path =
    let rp = Wal.replay path in
    if rp.Wal.torn then begin
      Obs.incr c_wal_torn;
      Wal.truncate path ~len:rp.Wal.valid_bytes
    end;
    rp
  in
  let prev = replay_file (wal_prev_path cfg) in
  let cur = replay_file (wal_path cfg) in
  let records = prev.Wal.records @ cur.Wal.records in
  (* The tail is not trusted to be monotone: a crash can leave frames
     reordered or duplicated (see Faults reorder:K / dup:K), and the two
     generations overlap the checkpoint. Dedup by seq (first occurrence
     wins — duplicates are byte-identical copies), drop everything the
     checkpoint already covers, and apply in ascending seq order. The old
     fold-while-increasing scheme silently DROPPED any record whose seq
     dipped below a later frame's — a lost update, not just a re-apply. *)
  let seen = Hashtbl.create 64 in
  let fresh =
    List.filter
      (fun (r : Wal.record) ->
        r.seq > seq0
        && not (Hashtbl.mem seen r.seq)
        && (Hashtbl.add seen r.seq (); true))
      records
  in
  let fresh =
    List.sort (fun (a : Wal.record) (b : Wal.record) -> compare a.seq b.seq) fresh
  in
  let seq =
    List.fold_left
      (fun _ (r : Wal.record) ->
        M.apply m r.update;
        Obs.incr c_wal_replayed;
        r.seq)
      seq0 fresh
  in
  let had_state =
    restored <> None || corrupt > 0 || prev.Wal.torn || cur.Wal.torn
    || records <> []
  in
  if had_state then Obs.incr c_recoveries;
  (m, seq)

let create cfg make =
  let m, seq = recover cfg make in
  {
    cfg;
    make;
    m;
    wal = Wal.open_append (wal_path cfg);
    seq;
    dead_letters = [];
    retry_prng = Util.Prng.create (Hashtbl.hash cfg.dir);
  }

(* ---- checkpoint / audit ---- *)

let rotate_wal t =
  Wal.close t.wal;
  let cur = wal_path t.cfg and prev = wal_prev_path t.cfg in
  if Sys.file_exists prev then Sys.remove prev;
  if Sys.file_exists cur then Sys.rename cur prev;
  t.wal <- Wal.open_append cur

let checkpoint_now t =
  Obs.with_span "resilience.checkpoint" @@ fun () ->
  ignore (Checkpoint.write ~dir:t.cfg.dir ~seq:t.seq t.m);
  Obs.incr c_checkpoints;
  rotate_wal t

(* Graceful degradation: rebuild views from base storage through a fresh
   maintainer (every tuple replayed in stamp order), swap it in, and
   checkpoint so the divergent state cannot be restored later. *)
let rebuild t =
  Obs.incr c_rebuilds;
  let fresh = t.make () in
  List.iter (M.apply fresh) (Storage.dump (M.storage t.m));
  t.m <- fresh;
  checkpoint_now t

let audit_now t =
  Obs.with_span "resilience.audit" @@ fun () ->
  Obs.incr c_audits;
  let ok = Rings.Covariance.equal_rel ~eps:t.cfg.audit_eps (M.covariance t.m) (M.recompute t.m) in
  if not ok then begin
    Obs.incr c_audit_failures;
    rebuild t
  end;
  ok

(* ---- the faulty path: crashes damage disk state, then propagate ---- *)

let apply_crash_damage t =
  Wal.close t.wal;
  let f = t.cfg.faults in
  (* the byte-level shear models a write torn at the TRUE end of the log, so
     it runs first; reorder/dup then rewrite the surviving valid frames. The
     other order would let the shear eat the LOWEST seq of a reversed window
     — an acknowledged record destroyed beyond what any replay can repair. *)
  if Faults.torn_tail f > 0 then Wal.shear_tail (wal_path t.cfg) ~bytes:(Faults.torn_tail f);
  if Faults.reorder_tail f > 0 then
    Wal.reorder_tail (wal_path t.cfg) ~frames:(Faults.reorder_tail f);
  if Faults.dup_tail f > 0 then Wal.dup_tail (wal_path t.cfg) ~frames:(Faults.dup_tail f);
  if Faults.flips_checkpoint f then Checkpoint.flip_bit_newest t.cfg.dir

let guarded t thunk =
  try thunk ()
  with Faults.Crash _ as e ->
    apply_crash_damage t;
    raise e

let apply_with_retries t u =
  let f = t.cfg.faults in
  let rec attempt k =
    if Faults.transient_failure f then begin
      Obs.incr c_retries;
      if k >= t.cfg.max_retries then
        failwith
          (Printf.sprintf "resilience: transient fault persisted after %d retries"
             t.cfg.max_retries);
      (* full-jitter backoff decorrelates retry storms across drivers that
         hit the same transient fault together *)
      Unix.sleepf (Util.Prng.backoff t.retry_prng ~base:0.0002 ~cap:0.01 ~attempt:k);
      attempt (k + 1)
    end
    else M.apply t.m u
  in
  attempt 0

let submit t (u : Delta.update) : outcome =
  match validate t.m u with
  | Error reason ->
      t.dead_letters <- (u, reason) :: t.dead_letters;
      Obs.incr c_quarantined;
      Quarantined reason
  | Ok () ->
      guarded t (fun () ->
          let seq' = t.seq + 1 in
          Wal.append t.wal { Wal.seq = seq'; update = u };
          Obs.incr c_wal_records;
          Faults.crash_before t.cfg.faults ~seq:seq';
          apply_with_retries t u;
          t.seq <- seq';
          if Faults.corrupt_now t.cfg.faults ~seq:seq' then M.perturb t.m 1.0;
          Faults.crash_after t.cfg.faults ~seq:seq';
          if t.cfg.checkpoint_every > 0 && seq' mod t.cfg.checkpoint_every = 0 then
            checkpoint_now t;
          if t.cfg.audit_every > 0 && seq' mod t.cfg.audit_every = 0 then
            ignore (audit_now t);
          Applied)

let submit_batch t us =
  Obs.with_span "resilience.batch" @@ fun () ->
  List.iter (fun u -> ignore (submit t u)) us

let covariance t = M.covariance t.m
let maintainer t = t.m
let seq t = t.seq
let quarantined t = List.rev t.dead_letters

let close t =
  checkpoint_now t;
  Wal.close t.wal
