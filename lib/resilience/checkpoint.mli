(** Checkpoint/restore of {!Fivm.Maintainer} state: magic + one checksummed
    frame holding version, strategy, sequence number, the storage dump and
    the EXACT maintained view payloads (floats by bit pattern), written via
    atomic rename. Restore walks checkpoints newest first and skips any that
    fail the checksum or decode, so bit flips degrade to an older checkpoint
    instead of raising. *)

open Fivm

val write : dir:string -> seq:int -> Maintainer.t -> string
(** Write [checkpoint-<seq>.ckpt] (atomically, via a [.tmp] rename), prune
    all but the newest two, and return the path. *)

type restored = { maintainer : Maintainer.t; seq : int }

val restore : dir:string -> make:(unit -> Maintainer.t) -> restored option * int
(** Restore from the newest valid checkpoint ([make] supplies empty
    maintainers of the expected strategy). Returns the restored state (or
    [None] if no valid checkpoint exists) and the number of corrupt or
    mismatched checkpoints skipped. *)

val list : string -> (int * string) list
(** (seq, path) of the checkpoints in a directory, newest first. *)

val flip_bit_newest : string -> unit
(** Damage injection: flip one bit in the newest checkpoint file. *)
