(* Checkpoint/restore of maintainer state.

   A checkpoint file is a magic string followed by ONE checksummed frame
   ([Codec.frame]) holding: format version, strategy tag, committed sequence
   number, the base-storage dump (in insertion-stamp order), and the exact
   maintained view payloads ([Maintainer.dump_views]). Storing the views
   verbatim — floats by bit pattern — rather than recomputing them on restore
   is what makes recovery bit-identical: a recomputation would re-associate
   float additions and drift in the last ulps.

   Writes go to a [.tmp] sibling and are renamed into place, so a crash
   mid-write never leaves a half checkpoint under the live name. Restore
   walks checkpoints newest first and falls back past any file that fails
   the checksum or decodes badly (bit flips read as "no checkpoint"). *)

open Fivm
module Codec = Relational.Codec
module Cov = Rings.Covariance

let magic = "BORGCKP1"

(* ---- encoding ---- *)

let strategy_tag = function
  | Maintainer.F_ivm -> 0
  | Maintainer.Higher_order -> 1
  | Maintainer.First_order -> 2

let strategy_of_tag = function
  | 0 -> Maintainer.F_ivm
  | 1 -> Maintainer.Higher_order
  | 2 -> Maintainer.First_order
  | n -> Codec.fail (Printf.sprintf "bad strategy tag %d" n)

let encode_update b (u : Delta.update) =
  Codec.str b u.relation;
  Codec.tuple b u.tuple;
  Codec.i64 b u.multiplicity

let decode_update rd : Delta.update =
  let relation = Codec.read_str rd in
  let tuple = Codec.read_tuple rd in
  let multiplicity = Codec.read_i64 rd in
  { relation; tuple; multiplicity }

let encode_list b enc xs =
  Codec.i64 b (List.length xs);
  List.iter (enc b) xs

let decode_list rd dec =
  let n = Codec.read_i64 rd in
  if n < 0 || n > 100_000_000 then
    Codec.fail (Printf.sprintf "implausible list length %d" n);
  List.init n (fun _ -> dec rd)

let encode_cov_payload b = function
  | `Zero -> Codec.u8 b 0
  | `One -> Codec.u8 b 1
  | `Elem e ->
      Codec.u8 b 2;
      Cov.encode b e

let decode_cov_payload rd : Payload.Cov_dyn.t =
  match Codec.read_u8 rd with
  | 0 -> `Zero
  | 1 -> `One
  | 2 -> `Elem (Cov.decode rd)
  | n -> Codec.fail (Printf.sprintf "bad payload tag %d" n)

let encode_group enc_payload b (name, entries) =
  Codec.str b name;
  encode_list b
    (fun b (k, p) ->
      Codec.key b k;
      enc_payload b p)
    entries

let decode_group dec_payload rd =
  let name = Codec.read_str rd in
  let entries =
    decode_list rd (fun rd ->
        let k = Codec.read_key rd in
        let p = dec_payload rd in
        (k, p))
  in
  (name, entries)

let encode_views b = function
  | Maintainer.Cov_views groups ->
      Codec.u8 b 0;
      encode_list b (encode_group encode_cov_payload) groups
  | Maintainer.Float_views per_agg ->
      Codec.u8 b 1;
      Codec.i64 b (Array.length per_agg);
      Array.iter (fun groups -> encode_list b (encode_group Codec.f64) groups) per_agg
  | Maintainer.Totals totals ->
      Codec.u8 b 2;
      Codec.i64 b (Array.length totals);
      Array.iter (Codec.f64 b) totals

let decode_views rd : Maintainer.view_dump =
  match Codec.read_u8 rd with
  | 0 -> Maintainer.Cov_views (decode_list rd (decode_group decode_cov_payload))
  | 1 ->
      let n = Codec.read_i64 rd in
      if n < 0 || n > 1_000_000 then
        Codec.fail "implausible aggregate count";
      Maintainer.Float_views
        (Array.init n (fun _ -> decode_list rd (decode_group Codec.read_f64)))
  | 2 ->
      let n = Codec.read_i64 rd in
      if n < 0 || n > 1_000_000 then
        Codec.fail "implausible totals length";
      Maintainer.Totals (Array.init n (fun _ -> Codec.read_f64 rd))
  | n -> Codec.fail (Printf.sprintf "bad views tag %d" n)

(* ---- files ---- *)

let path_of dir seq = Filename.concat dir (Printf.sprintf "checkpoint-%012d.ckpt" seq)

(* (seq, path) of every checkpoint in [dir], newest first. *)
let list dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           match Scanf.sscanf_opt f "checkpoint-%d.ckpt%!" (fun n -> n) with
           | Some seq -> Some (seq, Filename.concat dir f)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let keep = 2

let write ~dir ~seq (m : Maintainer.t) =
  let payload = Buffer.create 4096 in
  Codec.u8 payload 1 (* version *);
  Codec.u8 payload (strategy_tag (Maintainer.strategy_of m));
  Codec.i64 payload seq;
  encode_list payload encode_update (Storage.dump (Maintainer.storage m));
  encode_views payload (Maintainer.dump_views m);
  let file = Buffer.create (Buffer.length payload + 16) in
  Buffer.add_string file magic;
  Codec.frame file (Buffer.contents payload);
  let path = path_of dir seq in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Buffer.output_buffer oc file);
  Sys.rename tmp path;
  (* prune, keeping the newest [keep] *)
  List.iteri
    (fun i (_, p) -> if i >= keep then try Sys.remove p with Sys_error _ -> ())
    (list dir);
  path

let decode_file path : int * int * Delta.update list * Maintainer.view_dump =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    Codec.fail "bad magic";
  let rd = Codec.reader ~pos:mlen s in
  let payload = Codec.read_frame rd in
  let rd = Codec.reader payload in
  let version = Codec.read_u8 rd in
  if version <> 1 then
    Codec.fail (Printf.sprintf "unsupported version %d" version);
  let tag = Codec.read_u8 rd in
  let seq = Codec.read_i64 rd in
  let storage_dump = decode_list rd decode_update in
  let views = decode_views rd in
  (tag, seq, storage_dump, views)

type restored = { maintainer : Maintainer.t; seq : int }

let restore ~dir ~(make : unit -> Maintainer.t) : restored option * int =
  let corrupt = ref 0 in
  let rec try_candidates = function
    | [] -> None
    | (_, path) :: rest -> (
        match decode_file path with
        | tag, seq, storage_dump, views ->
            let m = make () in
            if tag <> strategy_tag (Maintainer.strategy_of m) then begin
              (* someone changed strategy under the same directory: this
                 checkpoint cannot seed the requested maintainer *)
              incr corrupt;
              try_candidates rest
            end
            else begin
              (* replay the base storage DIRECTLY (no view propagation) in
                 stamp order, then install the exact view payloads *)
              let storage = Maintainer.storage m in
              List.iter (Storage.apply storage) storage_dump;
              Maintainer.restore_views m views;
              Some { maintainer = m; seq }
            end
        | exception (Codec.Decode_error _ | Sys_error _ | End_of_file) ->
            incr corrupt;
            try_candidates rest)
  in
  let r = try_candidates (list dir) in
  (r, !corrupt)

(* Damage injection (fault harness): flip one bit in the newest checkpoint,
   as silent media corruption would. *)
let flip_bit_newest dir =
  match list dir with
  | [] -> ()
  | (_, path) :: _ ->
      let s = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      let n = Bytes.length s in
      if n > 0 then begin
        let i = n / 2 in
        Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x10));
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc s)
      end
