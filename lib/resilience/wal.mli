(** Append-only write-ahead log of delta updates: one checksummed frame per
    record, flushed on append, with truncation-tolerant replay (a torn tail
    ends the replay at the last valid record instead of raising). *)

type record = { seq : int; update : Fivm.Delta.update }
(** [seq] is the sequence number the update commits as; replay after a
    checkpoint restore skips records with [seq <=] the checkpoint's. *)

type writer

val open_append : string -> writer
(** Open (creating if absent) for appending. *)

val append : writer -> record -> unit
(** Frame, write, flush: acknowledged records survive a crash. *)

val close : writer -> unit

type replay = {
  records : record list;  (** valid prefix, in append order *)
  valid_bytes : int;  (** length of that prefix on disk *)
  torn : bool;  (** a partial or corrupt frame ended the scan early *)
}

val replay : string -> replay
(** Never raises on torn/corrupt tails; a missing file is an empty log. *)

val truncate : string -> len:int -> unit
(** Repair a torn log to its valid prefix before appending again. *)

val size : string -> int

val shear_tail : string -> bytes:int -> unit
(** Damage injection: shear bytes off the end, as a crash mid-write would. *)

val reorder_tail : string -> frames:int -> unit
(** Damage injection: reverse the last [frames] valid records in place, so
    replay sees a non-monotone seq tail (out-of-sequence flush). *)

val dup_tail : string -> frames:int -> unit
(** Damage injection: re-append copies of the last [frames] valid records,
    so replay sees duplicated (and non-monotone) seqs (retried flush). *)
