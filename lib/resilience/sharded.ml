(* Per-shard resilient drivers over a Fivm.Shard plan. Each shard keeps its
   own WAL + checkpoints under dir/shard-<k>; crashes are caught inside the
   owning shard's Pool task, which recreates the driver (per-shard recovery:
   only shard k's checkpoint + WAL tail are read) and resumes its queue from
   the recovered sequence number. *)

open Fivm
module Cov = Rings.Covariance

let c_crashes = Obs.counter "resilience.shard.crashes"

type t = {
  plan : Shard.plan;
  configs : Driver.config array;
  make : unit -> Maintainer.t;
  drivers : Driver.t array;
  max_restarts : int;
  crashes : int Atomic.t;
}

let create ?(checkpoint_every = 256) ?(audit_every = 0) ?(audit_eps = 1e-6)
    ?(max_retries = 8) ?(max_restarts = 8) ?faults ~dir ~plan make =
  let n = Shard.plan_shards plan in
  let fault_plan k =
    match faults with Some f -> f k | None -> Faults.none ()
  in
  let configs =
    Array.init n (fun k ->
        Driver.config ~checkpoint_every ~audit_every ~audit_eps ~max_retries
          ~faults:(fault_plan k)
          (Filename.concat dir (Printf.sprintf "shard-%d" k)))
  in
  let drivers = Array.map (fun c -> Driver.create c make) configs in
  { plan; configs; make; drivers; max_restarts; crashes = Atomic.make 0 }

let shards t = Array.length t.drivers
let plan_of t = t.plan

(* One shard's submit loop with in-task crash recovery. The queue position
   is recovered as (committed seq - seq at batch entry): exact as long as
   the crash window holds no quarantined updates, which do not advance seq
   (same contract as the single-shard restart harness in `borg maintain`). *)
let run_shard t k queue =
  let queue = Array.of_list queue in
  let n = Array.length queue in
  let start_seq = Driver.seq t.drivers.(k) in
  let restarts = ref 0 in
  let rec go () =
    let d = t.drivers.(k) in
    let pos = Driver.seq d - start_seq in
    try
      for i = pos to n - 1 do
        ignore (Driver.submit d queue.(i))
      done
    with Faults.Crash _ ->
      incr restarts;
      Atomic.incr t.crashes;
      Obs.incr c_crashes;
      if !restarts > t.max_restarts then
        failwith
          (Printf.sprintf "Sharded: shard %d exhausted %d restarts" k
             t.max_restarts);
      t.drivers.(k) <- Driver.create t.configs.(k) t.make;
      go ()
  in
  go ()

let submit_batch ?domains t updates =
  let queues = Shard.partition t.plan updates in
  Obs.with_span "resilience.shard.batch" (fun () ->
      let tasks =
        List.init (Array.length t.drivers) (fun k () ->
            run_shard t k queues.(k))
      in
      ignore (Util.Pool.parallel_tasks ?domains tasks))

(* Canonical shard-order merge starting from shard 0's triple — see
   Fivm.Shard.covariance. *)
let covariance t =
  let parts = Array.map Driver.covariance t.drivers in
  let acc = ref parts.(0) in
  for k = 1 to Array.length parts - 1 do
    acc := Cov.add !acc parts.(k)
  done;
  !acc

let seqs t = Array.map Driver.seq t.drivers
let seq t = Array.fold_left ( + ) 0 (seqs t)
let crashes t = Atomic.get t.crashes

let quarantined t =
  Array.to_list t.drivers |> List.concat_map Driver.quarantined

let driver t k = t.drivers.(k)
let checkpoint_now t = Array.iter Driver.checkpoint_now t.drivers
let close t = Array.iter Driver.close t.drivers
