(** Logical planning for LMFAO, shared by the closure interpreter
    ({!Engine}) and the staged compiler ([Compile]). The planner decides
    WHAT each view computes — multi-root assignment, top-down restriction
    of every aggregate over the join tree, per-node dedup of identical
    partials — and leaves the plan as pure data: first-order filter
    conjuncts, (position, power) terms, explicit child-slot wiring. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

exception Unsupported of string
(** Raised for filters that do not decompose per attribute. *)

type options = {
  share : bool;  (** dedup identical partial aggregates *)
  multi_root : bool;  (** per-aggregate root choice *)
}

val default_options : options
(** [{ share = true; multi_root = true }]. *)

type stats = {
  mutable views : int;
  mutable partials : int;
  mutable shared_away : int;
}

val fresh_stats : unit -> stats

(** One partial aggregate computed at a node. *)
type slot = {
  key : string;  (** canonical form (sharing on) or aggregate id (off) *)
  spec : Spec.t;  (** the restricted spec this slot computes *)
  local_terms : (int * int) array;  (** (position, power) over owned attrs *)
  local_groups : (string * int) array;  (** owned group-by attrs *)
  local_filter : Predicate.t list;  (** owned filter conjuncts *)
  child_slots : int array;  (** per child: slot in the child's plan *)
  scalar : bool;  (** no group-by anywhere in the subtree *)
}

type node = {
  rel : Relation.t;
  key_positions : int array;  (** this node's join key with its parent *)
  child_keys : int array array;
      (** per child: child-key positions in OUR schema *)
  slots : slot array;
  slot_index : (string, int) Hashtbl.t;  (** slot key -> index into [slots] *)
  children : node list;
}

type rooted = {
  root : string;
  tree : node;
  requests : (Spec.t * string) list;
      (** each requested aggregate with its root slot key, in batch order *)
}

val conjuncts : Predicate.t -> Predicate.t list
(** Flatten a predicate into its conjuncts ([True] contributes none).
    @raise Unsupported never — only {!conjunct_attr} rejects. *)

val conjunct_attr : Predicate.t -> string
(** The single attribute a conjunct constrains.
    @raise Unsupported when the conjunct spans several attributes. *)

val restrict : (string -> bool) -> Spec.t -> Spec.t
(** Restrict a spec (terms, group-by, filter conjuncts) to the attributes
    satisfying the predicate, keeping its id. *)

val compute_owners : Join_tree.node -> (string, string) Hashtbl.t
(** Attribute -> owning relation for a rooting: the node closest to the
    root whose relation contains the attribute. *)

val choose_root : Join_tree.t -> default_root:string -> Spec.t -> string
(** The multi-root policy: group-bys root at their first group attribute's
    relation; products at their first term's owner; counts at the smallest
    relation. *)

val group_by_root :
  options -> Database.t -> Batch.t -> Join_tree.t * (string * Spec.t list) list
(** Group the batch's aggregates by their chosen root (batch order
    preserved within and across groups), together with the join tree.
    @raise Join_tree.Cyclic on cyclic schemas. *)

val build : options -> stats:stats -> Join_tree.t -> root:string ->
  Spec.t list -> rooted
(** Build the rooted logical plan for one group of aggregates, updating
    [stats] and the [lmfao.views] / [lmfao.partials] / [lmfao.shared_away]
    counters.
    @raise Unsupported on non-decomposable filters *)
