(* Threshold-bucket rewriting for decision-tree node batches.

   The decision-node workload asks, per continuous feature x with candidate
   thresholds c_1 < ... < c_k, for the triples (SUM(y^2), SUM(y), SUM(1))
   under each filter x >= c_j — 3k filtered aggregates per feature whose
   partial aggregates do NOT coincide (each filter differs), so plain
   sharing cannot collapse them. LMFAO's answer is to rewrite them into ONE
   group-by triple per feature over the derived bucket column

       bucket_x(v) = |{ j : c_j <= v }|          (in 0..k)

   and recover every threshold answer as a suffix sum over buckets:
   x >= c_j  <=>  bucket_x >= j. The batch shrinks from 3*k per feature to
   3, the rest is O(k) postprocessing on the tiny grouped results. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

let bucket_attr x = "__bucket_" ^ x

let bucket_of thresholds v =
  (* number of thresholds <= v; thresholds sorted ascending *)
  let x = Value.to_float v in
  let rec go acc = function
    | c :: rest when c <= x -> go (acc + 1) rest
    | _ -> acc
  in
  go 0 thresholds

(* The rewritten batch: per continuous feature a grouped triple over its
   bucket column; per categorical feature the usual grouped triple; plus the
   unfiltered totals. *)
let rewritten_batch (f : Feature.t) (thresholds : (string * float list) list) =
  let y = Option.get f.response in
  let triple ~prefix ~group_by =
    [
      Spec.make ~id:(prefix ^ "#s2") ~terms:[ (y, 2) ] ~group_by ();
      Spec.make ~id:(prefix ^ "#s") ~terms:[ (y, 1) ] ~group_by ();
      Spec.make ~id:(prefix ^ "#n") ~terms:[] ~group_by ();
    ]
  in
  {
    Aggregates.Batch.name = "decision-node-bucketed";
    aggregates =
      triple ~prefix:"total" ~group_by:[]
      @ List.concat_map
          (fun x ->
            if List.mem_assoc x thresholds then
              triple ~prefix:("bucket|" ^ x) ~group_by:[ bucket_attr x ]
            else [])
          f.continuous
      @ List.concat_map
          (fun k -> triple ~prefix:("by|" ^ k) ~group_by:[ k ])
          f.categorical;
  }

(* Evaluate the ORIGINAL decision-node batch ids (as produced by
   [Aggregates.Batch.decision_node]) through the bucket rewriting. *)
let decision_node_results ?(options = Engine.default_options) (db : Database.t)
    (f : Feature.t) ~(thresholds : (string * float list) list) :
    (string * Spec.result) list =
  let y = Option.get f.response in
  ignore y;
  let sorted_thresholds =
    List.map (fun (x, cs) -> (x, List.sort compare cs)) thresholds
  in
  let db' =
    Derived.augment db
      (List.map
         (fun (x, cs) -> (x, bucket_attr x, fun v -> bucket_of cs v))
         sorted_thresholds)
  in
  let batch = rewritten_batch f sorted_thresholds in
  let table = Lazy.force (Engine.eval ~options db' batch).table in
  let lookup id =
    match Hashtbl.find_opt table id with
    | Some r -> r
    | None -> invalid_arg ("Bucketed: missing aggregate " ^ id)
  in
  (* suffix sums over the bucket groups *)
  let suffix_of x kind j =
    let grouped = lookup (Printf.sprintf "bucket|%s#%s" x kind) in
    List.fold_left
      (fun acc (assignment, v) ->
        match assignment with
        | [ (_, bucket) ] when Value.to_int bucket >= j -> acc +. v
        | _ -> acc)
      0.0 grouped
  in
  let results = ref [] in
  let push id v = results := (id, v) :: !results in
  (* mirror the id scheme of Batch.decision_node *)
  List.iter
    (fun x ->
      match List.assoc_opt x sorted_thresholds with
      | None -> ()
      | Some cs ->
          List.iteri
            (fun j _c ->
              let suffix = Printf.sprintf "|%s>=t%d" x j in
              push ("sum_y2" ^ suffix) [ ([], suffix_of x "s2" (j + 1)) ];
              push ("sum_y" ^ suffix) [ ([], suffix_of x "s" (j + 1)) ];
              push ("count" ^ suffix) [ ([], suffix_of x "n" (j + 1)) ])
            cs)
    f.continuous;
  List.iter
    (fun k ->
      let remap kind = lookup (Printf.sprintf "by|%s#%s" k kind) in
      let suffix = Printf.sprintf "|by %s" k in
      push ("sum_y2" ^ suffix) (remap "s2");
      push ("sum_y" ^ suffix) (remap "s");
      push ("count" ^ suffix) (remap "n"))
    f.categorical;
  List.rev !results
