(** LMFAO: Layered Multiple Functional Aggregate Optimisation (Sections 1.4
    and 4). Evaluates a batch of SUM-PRODUCT / GROUP BY / filter aggregates
    over the natural join of a database without materialising the join:
    multi-root decomposition over the join tree, per-node deduplication of
    identical partial aggregates (sharing), one shared scan per node, and
    optional domain parallelism.

    The single entry point is {!eval}. When observability is on ({!Obs}),
    every root and view computation runs inside a span and the engine
    maintains the [lmfao.views] / [lmfao.partials] / [lmfao.shared_away] /
    [lmfao.tuples_scanned] / [lmfao.roots] counters. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

exception Unsupported of string
(** Raised for filters that do not decompose per attribute (e.g. additive
    inequalities — see [Ml.Inequality] / [Ml.Svm] for those). *)

type options = {
  share : bool;  (** dedup identical partial aggregates (default true) *)
  parallel : bool;  (** chunked scans + parallel subtree tasks *)
  multi_root : bool;  (** per-aggregate root choice (default true) *)
  chunk_threshold : int;  (** parallel scans only above this cardinality *)
}

val default_options : options

type stats = Plan.stats = {
  mutable views : int;  (** views (node plans) computed *)
  mutable partials : int;  (** distinct partial aggregates across all views *)
  mutable shared_away : int;  (** batch restrictions collapsed by dedup *)
}

val choose_root : Join_tree.t -> default_root:string -> Spec.t -> string
(** The multi-root policy: group-bys root at their first group attribute's
    relation; products at their first term's owner; counts at the smallest
    relation. *)

type result = {
  keyed : (string * Spec.result) list;  (** results keyed by aggregate id *)
  table : (string, Spec.result) Hashtbl.t Lazy.t;
      (** the same results as a lookup table, built on first force *)
  stats : stats;
}

val eval :
  ?options:options ->
  ?on_cyclic:[ `Raise | `Materialize ] ->
  Database.t ->
  Batch.t ->
  result
(** Evaluate the whole batch. [on_cyclic] selects the behaviour on cyclic
    schemas: [`Raise] (default) propagates [Join_tree.Cyclic];
    [`Materialize] falls back to materialising the join with
    {!Factorized.Wcoj} and evaluating the batch flat (the paper's footnote-4
    bag materialisation). On that path [result.stats] reflects the actual
    work — one materialised view, one flat pass per aggregate, nothing
    shared — and the [lmfao.cyclic_fallback] counter is bumped.
    @raise Unsupported on non-decomposable filters
    @raise Join_tree.Cyclic on cyclic schemas with [on_cyclic = `Raise] *)

(** {1 Engine_intf}

    [Engine] satisfies {!Aggregates.Engine_intf.S}, so it can be packed into
    a first-class-module engine list. *)

val name : string
val description : string

val eval_batch :
  ?options:options -> Database.t -> Batch.t -> (string * Spec.result) list
(** [(eval ~on_cyclic:`Materialize db batch).keyed]. *)
