(* Logical planning for LMFAO (Sections 1.4 and 4), split out of the
   interpreter so that other execution tiers (the staged compiler in
   [Compile]) can consume the same decomposition.

   The planner owns everything that is independent of HOW a view is
   executed: multi-root assignment, the top-down restriction of each
   aggregate over the join tree, per-node deduplication of identical
   partials (sharing), and attribute ownership. Its output is pure data —
   filters stay first-order [Predicate.t] conjuncts, terms and keys are
   resolved to column positions — which both the closure interpreter
   ([Engine]) and the staged compiler lower in their own way. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

exception Unsupported of string

type options = {
  share : bool; (* dedup identical partial aggregates *)
  multi_root : bool; (* root group-by aggregates at their group attr's node *)
}

let default_options = { share = true; multi_root = true }

type stats = {
  mutable views : int;
  mutable partials : int;
  mutable shared_away : int;
}

let fresh_stats () = { views = 0; partials = 0; shared_away = 0 }

(* One partial aggregate computed at a node, shared by every batch
   aggregate whose restriction to this subtree coincides with it. *)
type slot = {
  key : string; (* canonical form (sharing on) or aggregate id (off) *)
  spec : Spec.t; (* the restricted spec this slot computes *)
  local_terms : (int * int) array; (* (position, power) over owned attrs *)
  local_groups : (string * int) array; (* owned group-by attrs *)
  local_filter : Predicate.t list; (* owned filter conjuncts *)
  child_slots : int array; (* per child: slot in the child's plan *)
  scalar : bool; (* no group-by anywhere in the subtree *)
}

type node = {
  rel : Relation.t;
  key_positions : int array; (* this node's join key with its parent *)
  child_keys : int array array; (* per child: child-key positions in OUR schema *)
  slots : slot array;
  slot_index : (string, int) Hashtbl.t; (* slot key -> index into [slots] *)
  children : node list;
}

type rooted = {
  root : string;
  tree : node;
  requests : (Spec.t * string) list;
      (* each requested aggregate with its root slot key, in batch order *)
}

let c_views = Obs.counter "lmfao.views"
let c_partials = Obs.counter "lmfao.partials"
let c_shared_away = Obs.counter "lmfao.shared_away"

(* ---------- filter decomposition ---------- *)

(* Split a predicate into single-attribute conjuncts. Aggregates whose
   filters span several attributes (additive inequalities) are outside this
   engine; Section 2.3's dedicated algorithms live in [Ml.Svm]. *)
let rec conjuncts (p : Predicate.t) : Predicate.t list =
  match p with
  | Predicate.True -> []
  | Predicate.And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let conjunct_attr p =
  match List.sort_uniq compare (Predicate.attrs p) with
  | [ a ] -> a
  | _ ->
      raise
        (Unsupported
           (Format.asprintf "filter %a does not decompose per attribute"
              Predicate.pp p))

(* Restrict a spec to the attributes satisfying [keep]. *)
let restrict keep (s : Spec.t) : Spec.t =
  let filter =
    match List.filter (fun c -> keep (conjunct_attr c)) (conjuncts s.filter) with
    | [] -> Predicate.True
    | c :: cs -> List.fold_left (fun acc c -> Predicate.And (acc, c)) c cs
  in
  Spec.make ~filter ~id:s.id
    ~terms:(List.filter (fun (a, _) -> keep a) s.terms)
    ~group_by:(List.filter keep s.group_by)
    ()

let slot_key options (s : Spec.t) =
  if options.share then Spec.canonical s else s.Spec.id

(* ---------- plan construction ---------- *)

let rec build_node ~options ~owner ~stats (node : Join_tree.node)
    (specs : Spec.t list) : node =
  let my_name = Relation.name node.rel in
  let schema = Relation.schema node.rel in
  (* deduplicate partials at this node *)
  let canonical = slot_key options in
  let tbl = Hashtbl.create 16 in
  let distinct = ref [] in
  List.iter
    (fun s ->
      let key = canonical s in
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key (List.length !distinct);
        distinct := s :: !distinct
      end
      else begin
        stats.shared_away <- stats.shared_away + 1;
        Obs.incr c_shared_away
      end)
    specs;
  let distinct = Array.of_list (List.rev !distinct) in
  stats.partials <- stats.partials + Array.length distinct;
  stats.views <- stats.views + 1;
  Obs.add c_partials (Array.length distinct);
  Obs.incr c_views;
  let owned_here a = Hashtbl.find owner a = my_name in
  (* children plans: restrict each distinct partial to each child's subtree *)
  let children_with_specs =
    List.map
      (fun (child : Join_tree.node) ->
        let child_names =
          Join_tree.fold_node (fun acc n -> Relation.name n.rel :: acc) [] child
        in
        let in_child a = List.mem (Hashtbl.find owner a) child_names in
        let restricted = Array.map (restrict in_child) distinct in
        (child, restricted))
      node.children
  in
  let child_plans =
    List.map
      (fun (child, restricted) ->
        build_node ~options ~owner ~stats child (Array.to_list restricted))
      children_with_specs
  in
  (* slot index of each restricted partial within its child's plan *)
  let child_slot_of =
    List.map2
      (fun (_, restricted) (plan : node) ->
        Array.map
          (fun (r : Spec.t) ->
            match Hashtbl.find_opt plan.slot_index (canonical r) with
            | Some i -> i
            | None -> failwith "Plan.build: missing child slot")
          restricted)
      children_with_specs child_plans
  in
  let slots =
    Array.mapi
      (fun i (s : Spec.t) ->
        let local_terms =
          Array.of_list
            (List.filter_map
               (fun (a, p) ->
                 if owned_here a then Some (Schema.position schema a, p)
                 else None)
               s.terms)
        in
        let local_groups =
          Array.of_list
            (List.filter_map
               (fun a ->
                 if owned_here a then Some (a, Schema.position schema a)
                 else None)
               s.group_by)
        in
        let local_filter =
          List.filter (fun c -> owned_here (conjunct_attr c)) (conjuncts s.filter)
        in
        let child_slots =
          Array.of_list (List.map (fun arr -> arr.(i)) child_slot_of)
        in
        {
          key = canonical s;
          spec = s;
          local_terms;
          local_groups;
          local_filter;
          child_slots;
          scalar = s.group_by = [];
        })
      distinct
  in
  let slot_index = Hashtbl.create (2 * Array.length slots) in
  Array.iteri (fun i (s : slot) -> Hashtbl.replace slot_index s.key i) slots;
  {
    rel = node.rel;
    key_positions = Array.of_list (List.map (Schema.position schema) node.key);
    child_keys =
      Array.of_list
        (List.map
           (fun ((child : Join_tree.node), _) ->
             Array.of_list (List.map (Schema.position schema) child.key))
           children_with_specs);
    slots;
    slot_index;
    children = child_plans;
  }

(* Owner of each attribute for a given rooting: the node closest to the root
   whose relation contains it (BFS order, ties broken by name). *)
let compute_owners (root : Join_tree.node) =
  let owner = Hashtbl.create 32 in
  let queue = Queue.create () in
  Queue.add root queue;
  let level = ref [] in
  (* BFS with deterministic within-level order *)
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    level := n :: !level;
    List.iter (fun c -> Queue.add c queue) n.children
  done;
  List.iter
    (fun (n : Join_tree.node) ->
      List.iter
        (fun a -> Hashtbl.replace owner a (Relation.name n.rel))
        (Schema.names (Relation.schema n.rel)))
    !level;
  (* [!level] is reverse BFS, so replace leaves the shallowest node in *)
  owner

let build options ~stats (jt : Join_tree.t) ~root (specs : Spec.t list) :
    rooted =
  let tree = Join_tree.tree ~root jt in
  let owner = compute_owners tree in
  let tree = build_node ~options ~owner ~stats tree specs in
  { root; tree; requests = List.map (fun s -> (s, slot_key options s)) specs }

(* ---------- root choice ---------- *)

(* Root choice per aggregate (the heart of LMFAO's multi-root design):
   group-by aggregates root at the relation owning their first group-by
   attribute (grouping stays local); scalar products root at the relation
   owning their first term, so the products are computed over that (usually
   small dimension) relation while the big fact table contributes only
   DEDUPLICATED partial sums — one per attribute rather than one per
   aggregate; pure counts root at the smallest relation. *)
let choose_root (jt : Join_tree.t) ~default_root (s : Spec.t) =
  let owner_of attr =
    match
      List.find_opt
        (fun r -> Schema.mem (Relation.schema r) attr)
        (Join_tree.relations jt)
    with
    | Some r -> Relation.name r
    | None -> default_root
  in
  match (s.group_by, s.terms) with
  | g :: _, _ -> owner_of g
  | [], (a, _) :: _ -> owner_of a
  | [], [] -> (
      match
        List.sort
          (fun r1 r2 ->
            compare (Relation.cardinality r1) (Relation.cardinality r2))
          (Join_tree.relations jt)
      with
      | smallest :: _ -> Relation.name smallest
      | [] -> default_root)

(* Group the batch's aggregates by their chosen root, preserving batch order
   within and across groups. Raises [Join_tree.Cyclic] on cyclic schemas. *)
let group_by_root options (db : Database.t) (batch : Batch.t) :
    Join_tree.t * (string * Spec.t list) list =
  let jt = Database.join_tree db in
  let default_root =
    let largest =
      List.fold_left
        (fun acc r ->
          match acc with
          | None -> Some r
          | Some best ->
              if Relation.cardinality r > Relation.cardinality best then Some r
              else acc)
        None (Database.relations db)
    in
    Relation.name (Option.get largest)
  in
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun s ->
      let root =
        if options.multi_root then choose_root jt ~default_root s
        else default_root
      in
      match Hashtbl.find_opt groups root with
      | Some l -> l := s :: !l
      | None ->
          Hashtbl.add groups root (ref [ s ]);
          order := root :: !order)
    batch.Batch.aggregates;
  ( jt,
    List.map
      (fun root -> (root, List.rev !(Hashtbl.find groups root)))
      (List.rev !order) )
