(* LMFAO: Layered Multiple Functional Aggregate Optimisation (Sections 1.4
   and 4).

   Evaluates a batch of SUM-PRODUCT aggregates over the natural join of a
   database without materialising the join:

   - Each aggregate is decomposed top-down over a join tree: node N is
     assigned the restriction of the aggregate to the attributes owned by
     N's subtree; a subtree containing none of the aggregate's attributes is
     assigned a plain count (the paper's decomposition scheme).
   - Restrictions that coincide across the batch are computed ONCE per node
     (partial-aggregate sharing) and all partials at a node share one scan
     of the node's relation (shared scans).
   - Aggregates with group-by attributes are decomposed starting from the
     relation owning their first group-by attribute (multi-root
     decomposition), keeping high-cardinality grouping local to its node.
   - Scans can be chunked across domains and independent subtrees computed
     as parallel tasks (Section 4, "Parallelisation").

   The decomposition itself (restriction, sharing, root choice, ownership)
   lives in [Plan]; this module is the closure INTERPRETER over that
   logical plan. The staged compiler in [Compile] consumes the same plans
   and must stay bit-identical to this module — it is the differential
   oracle. *)

open Relational
module GF = Factorized.Faggregate.Grouped_float
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

exception Unsupported = Plan.Unsupported

type options = {
  share : bool; (* dedup identical partial aggregates (default true) *)
  parallel : bool; (* chunked scans + parallel subtree tasks *)
  multi_root : bool; (* root group-by aggregates at their group attr's node *)
  chunk_threshold : int; (* parallel scans only above this cardinality *)
}

let default_options =
  { share = true; parallel = false; multi_root = true; chunk_threshold = 8192 }

let plan_options (o : options) =
  { Plan.share = o.share; multi_root = o.multi_root }

(* ---------- payloads ----------

   A view row holds the partial-aggregate payloads of one join-key value:
   scalar partials (no group-by anywhere below) in a flat float array —
   the hot path, accumulated without boxing — and grouped partials as
   k-relation maps. *)

type row = { sc : float array; gr : GF.t array }

(* ---------- executable plans ---------- *)

type slot_plan = {
  canonical : string;
  local_terms : (int * int) array; (* (position, power) over owned attrs *)
  local_groups : (string * int) array; (* owned group-by attrs *)
  filter_src : Predicate.t list; (* owned filter conjuncts, compiled per scan *)
  child_slots : int array; (* per child: slot in the child's plan *)
  child_refs : (int * bool) array; (* per child: (payload index, is_scalar) *)
  scalar : bool; (* no group-by anywhere in the subtree *)
  payload_idx : int; (* index into [row.sc] or [row.gr] *)
}

type node_plan = {
  rel : Relation.t;
  stream : Database.chunks option; (* out-of-core: scan THIS, never [rel]'s cells *)
  key_positions : int array; (* this node's join key with its parent *)
  child_keys : int array array; (* per child: child-key positions in OUR schema *)
  slots : slot_plan array;
  slot_index : (string, int) Hashtbl.t; (* canonical -> index into [slots] *)
  n_scalar : int;
  n_grouped : int;
  children : node_plan list;
}

type stats = Plan.stats = {
  mutable views : int;
  mutable partials : int;
  mutable shared_away : int;
}

(* Observability: the per-layer work the paper counts (Sections 1.4 and 4),
   exported under the [lmfao.*] namespace. Handles are created once at
   module initialisation; updates are a branch when disabled. *)
let c_views = Obs.counter "lmfao.views"
let c_partials = Obs.counter "lmfao.partials"
let c_tuples_scanned = Obs.counter "lmfao.tuples_scanned"
let c_roots = Obs.counter "lmfao.roots"

(* Instantiate the closure interpreter for a logical plan: assign payload
   indexes in slot order (scalars and grouped partials counted separately)
   and resolve each child slot to its payload. Filter conjuncts stay as
   source predicates — they compile against the columns of whatever
   relation the scan actually reads (the resident relation, or each chunk
   of a streamed one). *)
let rec instantiate ~db (p : Plan.node) : node_plan =
  let child_plans = List.map (instantiate ~db) p.Plan.children in
  let child_plan_arr = Array.of_list child_plans in
  let n_scalar = ref 0 and n_grouped = ref 0 in
  let slots =
    Array.map
      (fun (s : Plan.slot) ->
        let child_refs =
          Array.mapi
            (fun c cs ->
              let child_slot = child_plan_arr.(c).slots.(cs) in
              (child_slot.payload_idx, child_slot.scalar))
            s.child_slots
        in
        let payload_idx =
          if s.scalar then begin
            incr n_scalar;
            !n_scalar - 1
          end
          else begin
            incr n_grouped;
            !n_grouped - 1
          end
        in
        {
          canonical = s.key;
          local_terms = s.local_terms;
          local_groups = s.local_groups;
          filter_src = s.local_filter;
          child_slots = s.child_slots;
          child_refs;
          scalar = s.scalar;
          payload_idx;
        })
      p.Plan.slots
  in
  {
    rel = p.Plan.rel;
    stream = Database.stream db (Relation.name p.Plan.rel);
    key_positions = p.Plan.key_positions;
    child_keys = p.Plan.child_keys;
    slots;
    slot_index = p.Plan.slot_index;
    n_scalar = !n_scalar;
    n_grouped = !n_grouped;
    children = child_plans;
  }

(* ---------- evaluation ---------- *)

type view = row Keypack.Hybrid.t

let fresh_row plan =
  { sc = Array.make plan.n_scalar 0.0; gr = Array.make plan.n_grouped GF.zero }

let merge_rows (a : row) (b : row) =
  Array.iteri (fun i v -> a.sc.(i) <- a.sc.(i) +. v) b.sc;
  Array.iteri (fun i v -> a.gr.(i) <- GF.add a.gr.(i) v) b.gr

let merge_views (a : view) (b : view) : view =
  Keypack.Hybrid.iter
    (fun key row_b ->
      match Keypack.Hybrid.find_opt a key with
      | Some row_a -> merge_rows row_a row_b
      | None -> Keypack.Hybrid.add a key row_b)
    b;
  a

(* Grouped contribution of row [i] to one slot, accumulated into [acc] with
   per-key [KMap.update]s (an O(log) path copy per row) rather than a whole-
   map union. Group values are boxed one cell at a time from the columns;
   scalar children fold straight into the float coefficient — only genuinely
   grouped children pay for a map product. *)
let accumulate_grouped (slot : slot_plan) (cols : Column.t array) i local
    (child_rows : row array) (acc : GF.t) : GF.t =
  let coeff = ref local in
  let grouped = ref [] in
  Array.iteri
    (fun c r ->
      let idx, is_scalar = slot.child_refs.(c) in
      if is_scalar then coeff := !coeff *. r.sc.(idx)
      else grouped := r.gr.(idx) :: !grouped)
    child_rows;
  let assignment =
    match slot.local_groups with
    | [| (a, pos) |] -> [ (a, Column.get cols.(pos) i) ]
    | groups ->
        List.sort compare
          (Array.to_list
             (Array.map (fun (a, pos) -> (a, Column.get cols.(pos) i)) groups))
  in
  let bump k v acc =
    GF.KMap.update k
      (function None -> Some v | Some v0 -> Some (v0 +. v))
      acc
  in
  match !grouped with
  | [] -> bump assignment !coeff acc
  | gs ->
      let m = ref (GF.KMap.singleton assignment !coeff) in
      List.iter (fun g -> m := GF.mul !m g) gs;
      GF.KMap.fold bump !m acc

let rec compute ~options (plan : node_plan) : view =
  Obs.with_span ("lmfao.view:" ^ Relation.name plan.rel) (fun () ->
      compute_node ~options plan)

and compute_node ~options (plan : node_plan) : view =
  let child_views =
    if options.parallel && List.length plan.children > 1 then
      Util.Pool.parallel_tasks
        (List.map (fun c () -> compute ~options c) plan.children)
    else List.map (compute ~options) plan.children
  in
  let child_views = Array.of_list child_views in
  let n_children = Array.length child_views in
  (* Scan rows [lo, lo+len) of [rel] into [view]. Key extractors and filter
     closures are compiled against [rel]'s own columns, so the same loop
     serves the resident relation and each chunk of a streamed one. *)
  let scan_into rel view lo len =
    Obs.add c_tuples_scanned len;
    ignore (Relation.scan rel);
    let cols = Relation.columns rel in
    let schema = Relation.schema rel in
    let own_key = Relation.extractor rel plan.key_positions in
    let child_key = Array.map (Relation.extractor rel) plan.child_keys in
    let filters =
      Array.map
        (fun slot ->
          match slot.filter_src with
          | [] -> fun _ -> true
          | cs ->
              let compiled = List.map (Predicate.compile_cols schema cols) cs in
              fun i -> List.for_all (fun f -> f i) compiled)
        plan.slots
    in
    let child_rows = Array.make n_children { sc = [||]; gr = [||] } in
    for i = lo to lo + len - 1 do
      (* probe all children; a missing partner voids the row entirely *)
      let rec probe c =
        if c = n_children then true
        else
          match Keypack.Hybrid.find_opt child_views.(c) (child_key.(c) i) with
          | Some r ->
              child_rows.(c) <- r;
              probe (c + 1)
          | None -> false
      in
      if probe 0 then begin
        let key = own_key i in
        let acc_row =
          match Keypack.Hybrid.find_opt view key with
          | Some r -> r
          | None ->
              let r = fresh_row plan in
              Keypack.Hybrid.add view key r;
              r
        in
        Array.iteri
          (fun si slot ->
            if filters.(si) i then begin
              (* product of the owned attribute powers, read unboxed *)
              let local = ref 1.0 in
              Array.iter
                (fun (pos, power) ->
                  let x = Column.float_at cols.(pos) i in
                  for _ = 1 to power do
                    local := !local *. x
                  done)
                slot.local_terms;
              if slot.scalar then begin
                (* tight unboxed path: multiply the children's scalars in *)
                for c = 0 to n_children - 1 do
                  let idx, _ = slot.child_refs.(c) in
                  local := !local *. child_rows.(c).sc.(idx)
                done;
                acc_row.sc.(slot.payload_idx) <-
                  acc_row.sc.(slot.payload_idx) +. !local
              end
              else
                acc_row.gr.(slot.payload_idx) <-
                  accumulate_grouped slot cols i !local child_rows
                    acc_row.gr.(slot.payload_idx)
            end)
          plan.slots
      end
    done
  in
  match plan.stream with
  | Some chunks ->
      (* Out-of-core scan: one page-sized chunk at a time, in global row
         order, accumulating into a SINGLE view — the float-addition
         sequence is exactly that of a sequential in-memory scan, so the
         result is bit-identical. Chunk parallelism stays off here: only
         the sequential order carries the bit-identity guarantee. *)
      let view : view = Keypack.Hybrid.create 256 in
      chunks (fun chunk -> scan_into chunk view 0 (Relation.cardinality chunk));
      view
  | None ->
      let n = Relation.cardinality plan.rel in
      if options.parallel && n > options.chunk_threshold then
        Util.Pool.parallel_chunks n
          (fun lo len ->
            let view : view = Keypack.Hybrid.create 256 in
            scan_into plan.rel view lo len;
            view)
          ~combine:(fun acc v ->
            match acc with None -> Some v | Some a -> Some (merge_views a v))
          ~zero:None
        |> Option.value ~default:(Keypack.Hybrid.create 1)
      else begin
        let view : view = Keypack.Hybrid.create 256 in
        scan_into plan.rel view 0 n;
        view
      end

(* ---------- top level ---------- *)

let run_rooted ~options ~stats ~db (jt : Join_tree.t) root (specs : Spec.t list)
    : (string * Spec.result) list =
  if specs = [] then []
  else
    Obs.with_span ("lmfao.root:" ^ root) @@ fun () ->
    Obs.incr c_roots;
    let rooted = Plan.build (plan_options options) ~stats jt ~root specs in
    let plan = instantiate ~db rooted.Plan.tree in
    let view = compute ~options plan in
    (* the root view has the single empty key, which packs as [P 0] *)
    let row = Keypack.Hybrid.find_opt view (Keypack.P 0) in
    (* map each requested spec to its (possibly shared) slot *)
    List.map
      (fun ((s : Spec.t), key) ->
        let result =
          match row with
          | None -> if s.group_by = [] then [ ([], 0.0) ] else []
          | Some r ->
              let slot =
                match Hashtbl.find_opt plan.slot_index key with
                | Some i -> plan.slots.(i)
                | None -> failwith "Engine.run_rooted: lost slot"
              in
              if slot.scalar then [ ([], r.sc.(slot.payload_idx)) ]
              else GF.bindings r.gr.(slot.payload_idx)
        in
        (s.id, result))
      rooted.Plan.requests

let choose_root = Plan.choose_root

(* Evaluate the batch over an acyclic schema: group the aggregates by their
   chosen root, then one rooted decomposition pass per group. *)
let eval_acyclic ~options (db : Database.t) (batch : Batch.t) :
    (string * Spec.result) list * stats =
  let jt, groups = Plan.group_by_root (plan_options options) db batch in
  let stats = Plan.fresh_stats () in
  let run_group (root, specs) = run_rooted ~options ~stats ~db jt root specs in
  let results =
    if options.parallel && List.length groups > 1 then
      List.concat
        (Util.Pool.parallel_tasks (List.map (fun g () -> run_group g) groups))
    else List.concat_map run_group groups
  in
  (results, stats)

(* ---------- the facade ---------- *)

type result = {
  keyed : (string * Spec.result) list;
  table : (string, Spec.result) Hashtbl.t Lazy.t;
  stats : stats;
}

let table_of keyed =
  let tbl = Hashtbl.create (List.length keyed) in
  List.iter (fun (id, r) -> Hashtbl.replace tbl id r) keyed;
  tbl

(* Cyclic fallback (the paper's Section 4 footnote: cyclic queries are
   partially evaluated to acyclic ones by materialising decomposition bags):
   materialise the full join with the worst-case optimal engine and answer
   the batch by flat evaluation over it. Stats reflect the actual work: one
   materialised view (the full join), one flat pass per aggregate, no
   sharing. *)
let c_cyclic_fallback = Obs.counter "lmfao.cyclic_fallback"

let eval_cyclic (db : Database.t) (batch : Batch.t) :
    (string * Spec.result) list * stats =
  Obs.with_span "lmfao.cyclic_fallback" @@ fun () ->
  Obs.incr c_cyclic_fallback;
  (* WCOJ needs resident cells: pull any streamed relation fully into
     memory first (cyclic + out-of-core is outside the streaming path). *)
  let resident r =
    match Database.stream db (Relation.name r) with
    | None -> r
    | Some chunks ->
        let out =
          Relation.create
            ~capacity:(Stdlib.max 1 (Relation.cardinality r))
            (Relation.name r) (Relation.schema r)
        in
        chunks (fun c ->
            for i = 0 to Relation.cardinality c - 1 do
              Relation.append_from out c i
            done);
        out
  in
  let join =
    Factorized.Wcoj.materialise (List.map resident (Database.relations db))
  in
  let keyed =
    List.map
      (fun (s : Spec.t) -> (s.id, Spec.eval_flat join s))
      batch.Batch.aggregates
  in
  let stats =
    { views = 1; partials = List.length batch.Batch.aggregates; shared_away = 0 }
  in
  Obs.incr c_views;
  Obs.add c_partials stats.partials;
  Obs.add c_tuples_scanned
    (Relation.cardinality join * List.length batch.Batch.aggregates);
  (keyed, stats)

let eval ?(options = default_options) ?(on_cyclic = `Raise) (db : Database.t)
    (batch : Batch.t) : result =
  Obs.with_span "lmfao.eval" @@ fun () ->
  let keyed, stats =
    match eval_acyclic ~options db batch with
    | r -> r
    | exception Join_tree.Cyclic when on_cyclic = `Materialize ->
        eval_cyclic db batch
  in
  { keyed; table = lazy (table_of keyed); stats }

(* ---------- Engine_intf ---------- *)

let name = "lmfao"

let description =
  "shared multi-root decomposition over the join tree (cyclic: WCOJ fallback)"

let eval_batch ?options db batch =
  (eval ?options ~on_cyclic:`Materialize db batch).keyed
