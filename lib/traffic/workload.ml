(* Open-loop workload generation.

   The arrival process is OPEN-LOOP: request instants are drawn from Poisson
   processes fixed in advance, independent of how fast the server answers.
   A closed-loop generator (issue, wait, issue) silently slows down exactly
   when the server struggles — the coordinated-omission trap — and can never
   show overload. Here overload is a property of the event list itself.

   Two independent Poisson streams are merged on the virtual timeline:

   - READS at [read_rate]/s. Which batch a read asks for is Zipf-skewed over
     the catalog (rank 1 = hottest), which tenant issues it is Zipf-skewed
     over the tenant population — both mirror production traffic, where a
     few dashboards and a few tenants dominate.
   - DELTAS at [delta_rate]/s, each carrying [delta_batch] updates from the
     caller-supplied generator (which is where inserts/deletes and value
     distributions live — the harness uses the dyadic-lattice stream so the
     shed-path differential can demand bit equality).

   Everything is drawn from one seeded [Util.Prng], split per stream:
   identical specs generate identical event lists on every machine. *)

type event =
  | Read of { at : float; tenant : int; batch : int }
  | Delta of { at : float; updates : Fivm.Delta.update list }

let at = function Read { at; _ } -> at | Delta { at; _ } -> at

type spec = {
  seed : int;
  duration : float;
  read_rate : float;
  delta_rate : float;
  delta_batch : int;
  tenants : int;
  batch_skew : float;
  tenant_skew : float;
}

let spec ?(seed = 0) ?(duration = 1.0) ?(read_rate = 100.0)
    ?(delta_rate = 10.0) ?(delta_batch = 8) ?(tenants = 4)
    ?(batch_skew = 1.1) ?(tenant_skew = 1.1) () =
  if duration <= 0.0 then invalid_arg "Workload.spec: duration <= 0";
  if read_rate < 0.0 || delta_rate < 0.0 then
    invalid_arg "Workload.spec: negative rate";
  if tenants < 1 then invalid_arg "Workload.spec: tenants < 1";
  if delta_batch < 1 then invalid_arg "Workload.spec: delta_batch < 1";
  { seed; duration; read_rate; delta_rate; delta_batch; tenants;
    batch_skew; tenant_skew }

(* Poisson arrivals: exponential interarrival gaps via inverse CDF. *)
let arrivals prng ~rate ~duration =
  if rate <= 0.0 then []
  else begin
    let out = ref [] in
    let t = ref 0.0 in
    let continue = ref true in
    while !continue do
      let u = Float.max 1e-12 (Util.Prng.float prng 1.0) in
      t := !t -. (log u /. rate);
      if !t < duration then out := !t :: !out else continue := false
    done;
    List.rev !out
  end

let generate s ~catalog ~make_updates =
  if catalog < 1 then invalid_arg "Workload.generate: empty catalog";
  let root = Util.Prng.create s.seed in
  let read_clock = Util.Prng.split root in
  let read_draw = Util.Prng.split root in
  let delta_clock = Util.Prng.split root in
  let delta_draw = Util.Prng.split root in
  let reads =
    List.map
      (fun at ->
        Read
          {
            at;
            tenant = Util.Prng.zipf read_draw ~n:s.tenants ~s:s.tenant_skew - 1;
            batch = Util.Prng.zipf read_draw ~n:catalog ~s:s.batch_skew - 1;
          })
      (arrivals read_clock ~rate:s.read_rate ~duration:s.duration)
  in
  let deltas =
    List.map
      (fun at -> Delta { at; updates = make_updates delta_draw s.delta_batch })
      (arrivals delta_clock ~rate:s.delta_rate ~duration:s.duration)
  in
  (* stable merge by arrival instant; ties keep reads before deltas, which
     is irrelevant to correctness (the driver imposes its own barriers) but
     keeps the order deterministic *)
  List.stable_sort (fun a b -> Float.compare (at a) (at b)) (reads @ deltas)
