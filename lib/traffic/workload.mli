(** Open-loop workload generation: Poisson read/delta arrivals fixed in
    advance (independent of server speed — overload is a property of the
    event list, avoiding the coordinated-omission trap of closed-loop
    generators), with Zipf-skewed batch popularity and tenant activity.
    Fully deterministic per seed. *)

type event =
  | Read of { at : float; tenant : int; batch : int }
      (** one request for catalog index [batch] by tenant [tenant] *)
  | Delta of { at : float; updates : Fivm.Delta.update list }
      (** one delta batch entering the write queue *)

val at : event -> float

type spec = {
  seed : int;
  duration : float;  (** virtual seconds of traffic *)
  read_rate : float;  (** Poisson reads/second *)
  delta_rate : float;  (** Poisson delta batches/second *)
  delta_batch : int;  (** updates per delta batch *)
  tenants : int;
  batch_skew : float;  (** Zipf exponent of batch popularity *)
  tenant_skew : float;  (** Zipf exponent of tenant activity *)
}

val spec :
  ?seed:int ->
  ?duration:float ->
  ?read_rate:float ->
  ?delta_rate:float ->
  ?delta_batch:int ->
  ?tenants:int ->
  ?batch_skew:float ->
  ?tenant_skew:float ->
  unit ->
  spec
(** Defaults: seed 0, 1 s, 100 reads/s, 10 delta batches/s of 8 updates,
    4 tenants, skew 1.1 on both Zipf draws. Raises on non-positive duration,
    negative rates, or empty populations. *)

val generate :
  spec ->
  catalog:int ->
  make_updates:(Util.Prng.t -> int -> Fivm.Delta.update list) ->
  event list
(** The merged event list, ascending by arrival instant. [catalog] is the
    number of distinct batches reads choose from (Zipf rank 1 = index 0 =
    hottest). [make_updates prng n] supplies each delta batch's [n] updates
    from the given (seed-derived) generator — inserts, deletes and value
    distributions are the caller's choice. *)
