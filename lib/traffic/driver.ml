(* Virtual-time execution of an open-loop event list against an admission-
   controlled server.

   The driver owns the clock and the serving lanes. Each lane models one
   worker a deployment would dedicate to request service (lane count
   defaults to [Util.Pool.num_domains ()], i.e. BORG_DOMAINS); a lane is
   just the instant it next becomes free. A read is offered to the
   earliest-free lane; [Serve.Admission.request] decides whether it gets
   engine time at all, and the measured engine seconds advance that lane's
   free instant. Queueing is therefore SIMULATED on the virtual timeline
   while service cost is REAL — an offered rate above capacity makes lane
   free instants run away from arrival instants, and the admission gate
   starts shedding, exactly as a wall-clock deployment would, but
   reproducibly and without burning wall time on sleeps.

   Writes go through the admission layer's bounded coalescing queue and are
   flushed on a virtual interval (and on backpressure). A flush is the
   single-writer barrier: its measured wall time stalls EVERY lane, which is
   precisely the read/write interference the paper's epoch model implies.

   Check mode is the shed-path differential: every answered request is
   audited against a from-scratch [Lmfao.Engine.eval] reference for the
   epoch it claims — [Fresh e] must match the reference AT the current
   epoch [e], and [Stale e] must match the reference that was current when
   epoch [e] was live (references are captured while their epoch is still
   current, so the audit never needs time travel). [Exact] demands bit
   equality (sound on dyadic-lattice inputs); [Approx eps] allows relative
   rounding drift for arbitrary floats. *)

module Admission = Serve.Admission

type check = No_check | Exact | Approx of float

type report = {
  offered : int;
  admitted : int;
  shed : int;
  timeout : int;
  flushes : int;
  backpressure : int;
  retries : int;
  coalesced : int;
  dropped_deltas : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max_latency : float;
  checked : int;
  errors : string list;
  error_count : int;
}

(* exact order statistic over the collected latencies (the Obs histogram is
   the production view; the report recomputes independently so the two can
   cross-check each other in tests) *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

let value_eq check a b =
  match check with
  | Exact | No_check -> Int64.bits_of_float a = Int64.bits_of_float b
  | Approx eps ->
      a = b
      || Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* keyed-result equality, insensitive to aggregate and row order *)
let results_match check mine theirs =
  let norm rows = List.sort (fun (k, _) (k', _) -> compare k k') rows in
  List.length mine = List.length theirs
  && List.for_all
       (fun (id, m) ->
         match List.assoc_opt id theirs with
         | None -> false
         | Some t ->
             let m = norm m and t = norm t in
             List.length m = List.length t
             && List.for_all2
                  (fun (k, v) (k', v') -> k = k' && value_eq check v v')
                  m t)
       mine

let run ?lanes ?(flush_interval = 0.05) ?(check = No_check) adm ~catalog
    ~events =
  if Array.length catalog = 0 then invalid_arg "Driver.run: empty catalog";
  let srv = Admission.server adm in
  let lane_count =
    match lanes with Some n -> Stdlib.max 1 n | None -> Util.Pool.num_domains ()
  in
  let lane_free = Array.make lane_count 0.0 in
  let offered = ref 0
  and admitted = ref 0
  and shed = ref 0
  and timeout = ref 0
  and flushes = ref 0
  and backpressure = ref 0
  and retries = ref 0
  and coalesced = ref 0
  and dropped_deltas = ref 0
  and checked = ref 0 in
  let latencies = ref [] in
  let errors = ref [] and error_count = ref 0 in
  let record_error fmt =
    Printf.ksprintf
      (fun msg ->
        incr error_count;
        if !error_count <= 20 then errors := msg :: !errors)
      fmt
  in
  (* (epoch, catalog index) -> reference result, captured while the epoch
     was current; [Stale e] audits read what was stored then *)
  let refs : (int * int, (string * Aggregates.Spec.result) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let reference_now idx =
    let key = (Serve.epoch srv, idx) in
    match Hashtbl.find_opt refs key with
    | Some r -> r
    | None ->
        let r =
          (Lmfao.Engine.eval ~on_cyclic:`Materialize (Serve.snapshot srv)
             catalog.(idx))
            .Lmfao.Engine.keyed
        in
        Hashtbl.add refs key r;
        r
  in
  let audit idx (o : Admission.outcome) =
    if check <> No_check then
      match (o.Admission.status, o.Admission.result) with
      | Admission.Fresh e, Some r ->
          incr checked;
          let now_e = Serve.epoch srv in
          if e <> now_e then
            record_error "fresh answer tagged epoch %d at epoch %d" e now_e
          else if not (results_match check r (reference_now idx)) then
            record_error "WRONG BIT: fresh answer for %s diverges at epoch %d"
              catalog.(idx).Aggregates.Batch.name e
      | Admission.Stale e, Some r -> (
          incr checked;
          if e > Serve.epoch srv then
            record_error "stale answer tagged FUTURE epoch %d" e
          else
            match Hashtbl.find_opt refs (e, idx) with
            | None ->
                record_error
                  "stale answer for %s references epoch %d never served fresh"
                  catalog.(idx).Aggregates.Batch.name e
            | Some reference ->
                if not (results_match check r reference) then
                  record_error
                    "WRONG BIT: stale answer for %s is not epoch %d's answer"
                    catalog.(idx).Aggregates.Batch.name e)
      | Admission.Timeout, None -> ()
      | Admission.Timeout, Some _ ->
          record_error "timeout outcome carries a result"
      | (Admission.Fresh _ | Admission.Stale _), None ->
          record_error "answered status with no result"
  in
  let flush now =
    if Admission.pending_updates adm > 0 then begin
      let t0 = Obs.Clock.now () in
      coalesced := !coalesced + Admission.flush adm;
      let dt = Obs.Clock.now () -. t0 in
      incr flushes;
      (* the single-writer barrier stalls every lane for the flush's
         measured duration *)
      for i = 0 to lane_count - 1 do
        lane_free.(i) <- Float.max lane_free.(i) now +. dt
      done
    end
  in
  let last_flush = ref 0.0 in
  List.iter
    (fun ev ->
      let now = Workload.at ev in
      if now -. !last_flush >= flush_interval then begin
        flush now;
        last_flush := now
      end;
      match ev with
      | Workload.Read { at; tenant; batch } ->
          incr offered;
          let li = ref 0 in
          Array.iteri (fun i f -> if f < lane_free.(!li) then li := i) lane_free;
          let o =
            Admission.request adm
              ~tenant:(Printf.sprintf "t%d" tenant)
              ~batch:catalog.(batch) ~arrival:at ~lane_free:lane_free.(!li)
          in
          if o.Admission.used_lane then lane_free.(!li) <- o.Admission.finished;
          latencies := o.Admission.latency :: !latencies;
          retries := !retries + o.Admission.retries;
          (match o.Admission.status with
          | Admission.Fresh _ -> incr admitted
          | Admission.Stale _ -> incr shed
          | Admission.Timeout -> incr timeout);
          audit batch o
      | Workload.Delta { at = _; updates } -> (
          match Admission.submit_delta adm updates with
          | `Queued -> ()
          | `Backpressure -> (
              (* the queue is full: flush synchronously (paying the barrier)
                 and retry once; a delta batch larger than the whole queue
                 can never fit and is dropped, counted *)
              incr backpressure;
              flush now;
              last_flush := now;
              match Admission.submit_delta adm updates with
              | `Queued -> ()
              | `Backpressure -> incr dropped_deltas)))
    events;
  (* drain the tail so every submitted update reaches the maintainer *)
  let end_of_time =
    match List.rev events with [] -> 0.0 | ev :: _ -> Workload.at ev
  in
  flush end_of_time;
  let sorted = Array.of_list !latencies in
  Array.sort Float.compare sorted;
  {
    offered = !offered;
    admitted = !admitted;
    shed = !shed;
    timeout = !timeout;
    flushes = !flushes;
    backpressure = !backpressure;
    retries = !retries;
    coalesced = !coalesced;
    dropped_deltas = !dropped_deltas;
    p50 = quantile sorted 0.5;
    p95 = quantile sorted 0.95;
    p99 = quantile sorted 0.99;
    max_latency = (if Array.length sorted = 0 then Float.nan
                   else sorted.(Array.length sorted - 1));
    checked = !checked;
    errors = List.rev !errors;
    error_count = !error_count;
  }
