(** Virtual-time execution of an open-loop {!Workload} event list against a
    {!Serve.Admission} frontier.

    The driver owns the clock and [lanes] serving lanes (default
    [Util.Pool.num_domains ()]): queueing is simulated on the virtual
    timeline while engine work is measured in real wall-clock seconds, so
    overload behaviour is reproducible without sleeping. Delta batches flow
    through the admission layer's coalescing queue, flushed every
    [flush_interval] virtual seconds and on backpressure; each flush is the
    single-writer barrier and stalls every lane for its measured duration.

    Check mode audits every answered request against a from-scratch
    [Lmfao.Engine.eval] reference captured while the answer's epoch was
    current: [Fresh e] must match the current epoch's reference, [Stale e]
    must be the answer epoch [e] actually served — [Exact] bit-for-bit
    (sound on dyadic-lattice inputs), [Approx eps] up to relative [eps]. *)

type check = No_check | Exact | Approx of float

type report = {
  offered : int;
  admitted : int;  (** fresh answers within deadline *)
  shed : int;  (** degraded [Stale] answers *)
  timeout : int;  (** no answer: late, retries exhausted, or nothing to shed *)
  flushes : int;
  backpressure : int;  (** submissions refused by the full delta queue *)
  retries : int;  (** transient-fault retries across all requests *)
  coalesced : int;  (** updates eliminated by coalescing *)
  dropped_deltas : int;  (** delta batches larger than the whole queue *)
  p50 : float;  (** exact order statistics over per-request latency;
                    independent of (and cross-checkable against) the
                    [serve.latency] histogram *)
  p95 : float;
  p99 : float;
  max_latency : float;
  checked : int;  (** answers audited in check mode *)
  errors : string list;  (** first 20 audit failures *)
  error_count : int;
}

val run :
  ?lanes:int ->
  ?flush_interval:float ->
  ?check:check ->
  Serve.Admission.a ->
  catalog:Aggregates.Batch.t array ->
  events:Workload.event list ->
  report
(** Process [events] in arrival order. [offered = admitted + shed + timeout]
    holds by construction; the same invariant over the [serve.*] counters is
    what [borg traffic --check] verifies end to end. *)
