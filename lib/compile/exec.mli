(** Stage 3: closure-compile a physical IR plan against a live database
    and run it — monomorphic column readers, pre-resolved payload offsets,
    unrolled small-arity products, zero variant dispatch in the scan loop.
    Results are BITWISE equal to {!Lmfao.Engine} on the same logical plan
    (the differential qcheck suite enforces this). *)

open Relational
module Spec = Aggregates.Spec

type options = Lmfao.Engine.options
(** Only [parallel] and [chunk_threshold] matter here; [share] and
    [multi_root] are already baked into the plan. *)

val compute_rooted :
  options:options -> Database.t -> Ir.rooted -> (string * Spec.result) list
(** Execute one rooted plan: bind (specialise readers, filters, kernels to
    the live column representations — drift is counted in
    [lmfao.compile.fallbacks]), scan, and extract each output aggregate
    from its root slot. Runs under [lmfao.compile.root:*] /
    [lmfao.compile.view:*] spans and counts
    [lmfao.compile.tuples_scanned]. *)
