(** Stage 1: mechanical lowering of a logical {!Lmfao.Plan} into the typed
    physical IR. No optimisation happens here — filter fusion, slot
    merging, dead-slot elimination and load hoisting are {!Passes}. *)

open Relational

val filter : Schema.t -> Predicate.t -> Ir.filter
(** Resolve a first-order predicate's attributes to column positions. *)

val rooted : Lmfao.Plan.rooted -> Ir.rooted
(** Lower one rooted logical plan. Column representations are recorded
    from the relations' current state; the executor re-validates them. *)
