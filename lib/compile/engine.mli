(** The staged-compilation engine ("lmfao-compiled"): lowers the LMFAO
    logical plan through the typed IR, optimises it, and executes
    specialised closures. Satisfies {!Aggregates.Engine_intf.S}. Results
    are bitwise equal to {!Lmfao.Engine}; cyclic schemas fall back to the
    interpreter (counted in [lmfao.compile.cyclic]). *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

type options = Lmfao.Engine.options

val default_options : options

type compiled
(** A compiled batch: one optimised {!Ir.rooted} per multi-root group,
    tagged with the batch fingerprint and a plan signature. *)

val compile : ?options:options -> Database.t -> Batch.t -> compiled
(** Compile without consulting the cache. Counts [lmfao.compile.plans];
    runs under the [lmfao.compile.plan] span with [lmfao.compile.lower] /
    [lmfao.compile.passes] child spans.
    @raise Join_tree.Cyclic on cyclic schemas
    @raise Lmfao.Plan.Unsupported on non-decomposable filters *)

val run : compiled -> Database.t -> (string * Spec.result) list
(** Execute a compiled batch against a database (which must still match
    the plan signature — see {!reusable}). *)

val reusable : compiled -> ?options:options -> Database.t -> Batch.t -> bool
(** Whether a cached plan may serve this (db, batch, options): the batch
    fingerprint, the options, and the plan signature — schema shape plus
    the cardinality-dependent multi-root assignment — all still match. *)

val find_or_compile : ?options:options -> Database.t -> Batch.t -> compiled
(** Consult the global fingerprint-keyed plan cache (revalidating the
    signature; hits count [lmfao.compile.cache_hits]), compiling on miss.
    Thread-safe.
    @raise Join_tree.Cyclic on cyclic schemas *)

(** {1 Engine_intf} *)

val name : string
val description : string

val eval_batch :
  ?options:options -> Database.t -> Batch.t -> (string * Spec.result) list
