(* Stage 3: closure-compile a physical IR plan against a live database and
   run it.

   Binding happens once per node per execution: relations are resolved by
   name, column readers are specialised to the live [Column.data]
   representation ([float array]/[int array] accessors, no variant
   dispatch per row), key extractors are compiled, filters are compiled to
   position-resolved closures, and each slot becomes one kernel closure
   with its payload offset and child payload indexes pre-resolved and its
   term product unrolled for small arities. The scan loop then runs with
   zero per-row dispatch beyond the kernel calls themselves.

   BIT-IDENTITY CONTRACT: this executor must produce results bitwise
   equal to [Lmfao.Engine] on the same logical plan. Float operations
   happen in exactly the interpreter's order — term products are
   left-associated starting from 1.0, child scalars multiply in child
   order after the terms, slots accumulate in slot-array order, rows are
   inserted into the view before any filter is tested, grouped
   accumulation replicates [Engine.accumulate_grouped] verbatim, and
   parallel scans use the same deterministic [Pool.parallel_chunks]
   decomposition and merge order. The differential qcheck suite holds
   this line. *)

open Relational
module Spec = Aggregates.Spec

type options = Lmfao.Engine.options

(* Sorted-assignment grouped accumulator: the k-relation payload
   ([Faggregate.Grouped] over floats) specialised to flat sorted arrays.
   Every operation replicates the ring's fold order EXACTLY — [KMap] folds
   ascending in [Key.compare] order, so each per-key float addition happens
   in the same sequence as the interpreter's map-based path, keeping
   results bitwise equal while dropping the balanced-tree overhead (and
   its allocation) from the per-tuple inner loop. *)
module Ga = struct
  type key = (string * Value.t) list

  (* replica of [Faggregate.Grouped.Key.compare] *)
  let key_compare (a : key) (b : key) =
    let rec go a b =
      match (a, b) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | (xa, va) :: ra, (xb, vb) :: rb ->
          let c = compare xa xb in
          if c <> 0 then c
          else
            let c = Value.compare va vb in
            if c <> 0 then c else go ra rb
    in
    go a b

  type t = {
    mutable keys : key array; (* ascending in [key_compare]; [len] used *)
    mutable vals : float array;
    mutable len : int;
  }

  let create () = { keys = [||]; vals = [||]; len = 0 }
  let singleton k v = { keys = [| k |]; vals = [| v |]; len = 1 }

  (* index of [k], or [-(insertion point) - 1] when absent *)
  let rec search t k lo hi =
    if lo > hi then -lo - 1
    else
      let mid = (lo + hi) / 2 in
      let c = key_compare k t.keys.(mid) in
      if c = 0 then mid
      else if c < 0 then search t k lo (mid - 1)
      else search t k (mid + 1) hi

  let insert t pos k v =
    if t.len = Array.length t.keys then begin
      let cap = max 4 (2 * t.len) in
      let ks = Array.make cap [] and vs = Array.make cap 0.0 in
      Array.blit t.keys 0 ks 0 t.len;
      Array.blit t.vals 0 vs 0 t.len;
      t.keys <- ks;
      t.vals <- vs
    end;
    Array.blit t.keys pos t.keys (pos + 1) (t.len - pos);
    Array.blit t.vals pos t.vals (pos + 1) (t.len - pos);
    t.keys.(pos) <- k;
    t.vals.(pos) <- v;
    t.len <- t.len + 1

  (* [KMap.update k (None -> v | Some v0 -> v0 +. v)] *)
  let bump t k v =
    let i = search t k 0 (t.len - 1) in
    if i >= 0 then t.vals.(i) <- t.vals.(i) +. v else insert t (-i - 1) k v

  (* [KMap.union (fun _ x y -> Some (x +. y))] with x from [a], y from
     [b], merged into [a] in place *)
  let add_into (a : t) (b : t) =
    if b.len <> 0 then
      if a.len = 0 then begin
        a.keys <- Array.sub b.keys 0 b.len;
        a.vals <- Array.sub b.vals 0 b.len;
        a.len <- b.len
      end
      else begin
        let ks = Array.make (a.len + b.len) [] in
        let vs = Array.make (a.len + b.len) 0.0 in
        let i = ref 0 and j = ref 0 and n = ref 0 in
        while !i < a.len && !j < b.len do
          let c = key_compare a.keys.(!i) b.keys.(!j) in
          if c = 0 then begin
            ks.(!n) <- a.keys.(!i);
            vs.(!n) <- a.vals.(!i) +. b.vals.(!j);
            incr i;
            incr j
          end
          else if c < 0 then begin
            ks.(!n) <- a.keys.(!i);
            vs.(!n) <- a.vals.(!i);
            incr i
          end
          else begin
            ks.(!n) <- b.keys.(!j);
            vs.(!n) <- b.vals.(!j);
            incr j
          end;
          incr n
        done;
        while !i < a.len do
          ks.(!n) <- a.keys.(!i);
          vs.(!n) <- a.vals.(!i);
          incr i;
          incr n
        done;
        while !j < b.len do
          ks.(!n) <- b.keys.(!j);
          vs.(!n) <- b.vals.(!j);
          incr j;
          incr n
        done;
        a.keys <- ks;
        a.vals <- vs;
        a.len <- !n
      end

  (* replica of [Faggregate.Grouped.merge_keys] *)
  let merge_keys a b = List.sort (fun (x, _) (y, _) -> compare x y) (a @ b)

  (* replica of [Faggregate.Grouped.mul]: both folds ascending, each
     product bumped into the accumulator in generation order. Assignments
     cover disjoint variable sets, so merging with the empty key is the
     identity (the ring's fst-only stable sort of an already-sorted
     assignment). *)
  let mul (a : t) (b : t) : t =
    let acc = create () in
    for i = 0 to a.len - 1 do
      let ka = a.keys.(i) and va = a.vals.(i) in
      for j = 0 to b.len - 1 do
        let kb = b.keys.(j) in
        let k =
          match (ka, kb) with
          | [], _ -> kb
          | _, [] -> ka
          | _ -> merge_keys ka kb
        in
        bump acc k (va *. b.vals.(j))
      done
    done;
    acc

  let bindings (t : t) = List.init t.len (fun i -> (t.keys.(i), t.vals.(i)))
end

type row = { sc : float array; gr : Ga.t array }
type view = row Keypack.Hybrid.t

(* Specialization fallbacks: boxed or representation-drifted columns, and
   grouped (k-relation valued) slots that use the generic map path. *)
let c_fallbacks = Obs.counter "lmfao.compile.fallbacks"
let c_tuples = Obs.counter "lmfao.compile.tuples_scanned"

let merge_rows (a : row) (b : row) =
  Array.iteri (fun i v -> a.sc.(i) <- a.sc.(i) +. v) b.sc;
  Array.iteri (fun i v -> Ga.add_into a.gr.(i) v) b.gr

let merge_views (a : view) (b : view) : view =
  Keypack.Hybrid.iter
    (fun key row_b ->
      match Keypack.Hybrid.find_opt a key with
      | Some row_a -> merge_rows row_a row_b
      | None -> Keypack.Hybrid.add a key row_b)
    b;
  a

(* ---------- monomorphic column readers ---------- *)

(* Reader specialised to the live representation. Indexes stay within the
   relation's cardinality, which the column capacity bounds, so the
   unsafe reads are in range. Semantics are [Column.float_at]. *)
let reader (cols : Column.t array) pos : int -> float =
  match Column.data cols.(pos) with
  | Column.Floats a -> fun i -> Array.unsafe_get a i
  | Column.Ints a -> fun i -> float_of_int (Array.unsafe_get a i)
  | Column.Boxed a -> fun i -> Value.to_float (Array.unsafe_get a i)

let live_rep (cols : Column.t array) pos : Ir.rep =
  match Column.data cols.(pos) with
  | Column.Ints _ -> Ir.Rint
  | Column.Floats _ -> Ir.Rfloat
  | Column.Boxed _ -> Ir.Rboxed

(* ---------- filter compilation ---------- *)

(* Mirror of [Predicate.compile_cols], driven by the IR's positions. The
   generic arms preserve [Value.compare]/[Value.equal] semantics for
   boxed or cross-typed columns. *)
let rec compile_filter (cols : Column.t array) (f : Ir.filter) : int -> bool =
  match f with
  | Ir.FTrue -> fun _ -> true
  | Ir.FGe (p, c) -> (
      let cl = cols.(p) in
      match (Column.data cl, c) with
      | Column.Ints arr, Value.Int x -> fun i -> arr.(i) >= x
      | Column.Floats arr, Value.Float x -> fun i -> arr.(i) >= x
      | _ -> fun i -> Value.compare (Column.get cl i) c >= 0)
  | Ir.FLt (p, c) -> (
      let cl = cols.(p) in
      match (Column.data cl, c) with
      | Column.Ints arr, Value.Int x -> fun i -> arr.(i) < x
      | Column.Floats arr, Value.Float x -> fun i -> arr.(i) < x
      | _ -> fun i -> Value.compare (Column.get cl i) c < 0)
  | Ir.FEq (p, c) -> (
      let cl = cols.(p) in
      match (Column.data cl, c) with
      | Column.Ints arr, Value.Int x -> fun i -> arr.(i) = x
      | Column.Floats arr, Value.Float x -> fun i -> arr.(i) = x
      | _ -> fun i -> Value.equal (Column.get cl i) c)
  | Ir.FIn (p, cs) -> (
      let cl = cols.(p) in
      match Column.data cl with
      | Column.Ints arr
        when List.for_all (function Value.Int _ -> true | _ -> false) cs ->
          let xs = List.map Value.to_int cs in
          fun i -> List.mem arr.(i) xs
      | _ -> fun i -> List.exists (Value.equal (Column.get cl i)) cs)
  | Ir.FNot f ->
      let g = compile_filter cols f in
      fun i -> not (g i)
  | Ir.FAnd (f, g) ->
      let cf = compile_filter cols f and cg = compile_filter cols g in
      fun i -> cf i && cg i
  | Ir.FOr (f, g) ->
      let cf = compile_filter cols f and cg = compile_filter cols g in
      fun i -> cf i || cg i
  | Ir.FAdditive (ts, c) ->
      let compiled = List.map (fun (p, w) -> (cols.(p), w)) ts in
      fun i ->
        List.fold_left
          (fun acc (cl, w) -> acc +. (w *. Column.float_at cl i))
          0.0 compiled
        > c

let compile_filters cols = function
  | [] -> fun _ -> true
  | [ f ] -> compile_filter cols f
  | fs ->
      let compiled = List.map (compile_filter cols) fs in
      fun i -> List.for_all (fun f -> f i) compiled

(* ---------- term products ---------- *)

(* Left-associated product starting from 1.0, unrolled for the common
   arities. The op sequence is exactly the interpreter's
   [local := 1.0; local := !local *. x; ...] chain. *)
let build_product (terms : ((int -> float) * int) array) : int -> float =
  match terms with
  | [||] -> fun _ -> 1.0
  | [| (r, 1) |] -> fun i -> 1.0 *. r i
  | [| (r, 2) |] ->
      fun i ->
        let x = r i in
        1.0 *. x *. x
  | [| (r1, 1); (r2, 1) |] -> fun i -> 1.0 *. r1 i *. r2 i
  | terms ->
      fun i ->
        let local = ref 1.0 in
        Array.iter
          (fun (r, power) ->
            let x = r i in
            for _ = 1 to power do
              local := !local *. x
            done)
          terms;
        !local

(* ---------- grouped accumulation (generic path) ---------- *)

(* Replica of [Engine.accumulate_grouped] over the sorted-array payload:
   scalar children fold into the float coefficient, grouped children
   multiply as k-relations, the group assignment boxes one cell per
   attribute. Mutates [acc] in place; the float-op sequence per result key
   is the interpreter's. *)
let accumulate_grouped (groups : (string * int) array)
    (child_refs : (int * bool) array) (cols : Column.t array) i local
    (child_rows : row array) (acc : Ga.t) : unit =
  let coeff = ref local in
  let grouped = ref [] in
  Array.iteri
    (fun c r ->
      let idx, is_scalar = child_refs.(c) in
      if is_scalar then coeff := !coeff *. r.sc.(idx)
      else grouped := r.gr.(idx) :: !grouped)
    child_rows;
  let assignment =
    match groups with
    | [| (a, pos) |] -> [ (a, Column.get cols.(pos) i) ]
    | groups ->
        List.sort compare
          (Array.to_list
             (Array.map (fun (a, pos) -> (a, Column.get cols.(pos) i)) groups))
  in
  match !grouped with
  | [] -> Ga.bump acc assignment !coeff
  | [ g ] when assignment = [] ->
      (* the hot root shape: no local groups, one grouped child.
         [mul (singleton [] coeff) g] then the ascending fold into [acc]
         collapses to bumping each coeff·entry directly — the same
         additions, per key, in the same ascending order *)
      let c = !coeff in
      for j = 0 to g.Ga.len - 1 do
        Ga.bump acc g.Ga.keys.(j) (c *. g.Ga.vals.(j))
      done
  | gs ->
      let m = ref (Ga.singleton assignment !coeff) in
      List.iter (fun g -> m := Ga.mul !m g) gs;
      (* [KMap.fold bump]: ascending over the product, bumped into acc *)
      let m = !m in
      for k = 0 to m.Ga.len - 1 do
        Ga.bump acc m.Ga.keys.(k) m.Ga.vals.(k)
      done

(* ---------- node execution ---------- *)

(* Payload layout: scalars and grouped partials counted separately in slot
   order — identical to the interpreter's assignment. *)
let payload_map (slots : Ir.slot array) : (int * bool) array * int * int =
  let ns = ref 0 and ng = ref 0 in
  let m =
    Array.map
      (fun (s : Ir.slot) ->
        if s.Ir.s_scalar then begin
          incr ns;
          (!ns - 1, true)
        end
        else begin
          incr ng;
          (!ng - 1, false)
        end)
      slots
  in
  (m, !ns, !ng)

(* Count specialization fallbacks for one node binding: grouped slots (map
   path) and columns whose live representation is boxed or has drifted
   from what the plan was specialised for. *)
let count_fallbacks (node : Ir.node) cols =
  Array.iter
    (fun (s : Ir.slot) ->
      if not s.Ir.s_scalar then Obs.incr c_fallbacks;
      Array.iter
        (fun (t : Ir.term) ->
          let live = live_rep cols t.Ir.t_pos in
          if live = Ir.Rboxed || live <> t.Ir.t_rep then Obs.incr c_fallbacks)
        s.Ir.s_terms)
    node.Ir.n_slots

let rec compute ~(options : options) (db : Database.t) (node : Ir.node) :
    view * (int * bool) array =
  Obs.with_span ("lmfao.compile.view:" ^ node.Ir.n_rel) (fun () ->
      compute_node ~options db node)

and compute_node ~options db (node : Ir.node) : view * (int * bool) array =
  let children = Array.to_list node.Ir.n_children in
  let kids =
    if options.Lmfao.Engine.parallel && List.length children > 1 then
      Util.Pool.parallel_tasks
        (List.map (fun c () -> compute ~options db c) children)
    else List.map (compute ~options db) children
  in
  let child_views = Array.of_list (List.map fst kids) in
  let child_payloads = Array.of_list (List.map snd kids) in
  let rel = Database.relation db node.Ir.n_rel in
  let stream = Database.stream db node.Ir.n_rel in
  let n = Relation.cardinality rel in
  let n_children = Array.length child_views in
  let n_slots = Array.length node.Ir.n_slots in
  let payload, payload_scalars, payload_grouped = payload_map node.Ir.n_slots in
  (* per slot: the child payload indexes its kernel multiplies/merges *)
  let child_refs =
    Array.map
      (fun (s : Ir.slot) ->
        Array.mapi (fun c cs -> child_payloads.(c).(cs)) s.Ir.s_children)
      node.Ir.n_slots
  in
  count_fallbacks node (Relation.columns rel);
  let nh = Array.length node.Ir.n_hoisted in
  (* [scan_into] is invoked once per chunk — a parallel slice of the
     resident relation, or one streamed page chunk. Everything
     representation-dependent (column readers, key extractors, filters,
     kernels, the hoist buffer) is specialised inside against THIS
     relation's live columns, so concurrent chunks never share mutable
     state and streamed chunks bind to their own pages. Construction is
     O(slots), amortised over a chunk of rows. *)
  let scan_into rel view lo len =
    Obs.add c_tuples len;
    ignore (Relation.scan rel);
    let cols = Relation.columns rel in
    let own_key = Relation.extractor rel node.Ir.n_key.Ir.k_positions in
    let child_key =
      Array.map
        (fun (k : Ir.key_shape) -> Relation.extractor rel k.Ir.k_positions)
        node.Ir.n_child_keys
    in
    let buf = Array.make (max nh 1) 0.0 in
    let hload =
      Array.map (fun pos -> reader cols pos) node.Ir.n_hoisted
    in
    let slot_reader pos =
      (* hoisted positions read the per-row buffer *)
      let rec idx k =
        if k >= nh then -1
        else if node.Ir.n_hoisted.(k) = pos then k
        else idx (k + 1)
      in
      match idx 0 with
      | -1 -> reader cols pos
      | k -> fun _ -> Array.unsafe_get buf k
    in
    let scan_ok = compile_filters cols node.Ir.n_scan_filters in
    let kernels =
      Array.mapi
        (fun s_idx (s : Ir.slot) ->
          let filt = compile_filters cols s.Ir.s_filters in
          let no_filter = s.Ir.s_filters = [] in
          let product =
            build_product
              (Array.map
                 (fun (t : Ir.term) -> (slot_reader t.Ir.t_pos, t.Ir.t_power))
                 s.Ir.s_terms)
          in
          let p_idx, _ = payload.(s_idx) in
          let refs = child_refs.(s_idx) in
          if s.Ir.s_scalar then (
            match Array.length refs with
            | 0 when no_filter ->
                fun i _child_rows (acc : row) ->
                  acc.sc.(p_idx) <- acc.sc.(p_idx) +. product i
            | 0 ->
                fun i _child_rows (acc : row) ->
                  if filt i then acc.sc.(p_idx) <- acc.sc.(p_idx) +. product i
            | nrefs ->
                fun i child_rows (acc : row) ->
                  if filt i then begin
                    let local = ref (product i) in
                    for c = 0 to nrefs - 1 do
                      let idx, _ = Array.unsafe_get refs c in
                      local :=
                        !local *. (Array.unsafe_get child_rows c).sc.(idx)
                    done;
                    acc.sc.(p_idx) <- acc.sc.(p_idx) +. !local
                  end)
          else
            fun i child_rows (acc : row) ->
              if filt i then
                accumulate_grouped s.Ir.s_groups refs cols i (product i)
                  child_rows
                  acc.gr.(p_idx))
        node.Ir.n_slots
    in
    let child_rows = Array.make n_children { sc = [||]; gr = [||] } in
    for i = lo to lo + len - 1 do
      (* probe all children; a missing partner voids the row entirely *)
      let rec probe c =
        if c = n_children then true
        else
          match
            Keypack.Hybrid.find_opt child_views.(c) (child_key.(c) i)
          with
          | Some r ->
              child_rows.(c) <- r;
              probe (c + 1)
          | None -> false
      in
      if probe 0 then begin
        let key = own_key i in
        (* the row is inserted BEFORE any filter runs: an all-filters-false
           row still creates a zero row, as in the interpreter *)
        let acc_row =
          match Keypack.Hybrid.find_opt view key with
          | Some r -> r
          | None ->
              let r =
                {
                  sc = Array.make payload_scalars 0.0;
                  (* fresh accumulators: [Ga.t] is mutable, never shared *)
                  gr = Array.init payload_grouped (fun _ -> Ga.create ());
                }
              in
              Keypack.Hybrid.add view key r;
              r
        in
        if scan_ok i then begin
          for k = 0 to nh - 1 do
            Array.unsafe_set buf k ((Array.unsafe_get hload k) i)
          done;
          for s = 0 to n_slots - 1 do
            (Array.unsafe_get kernels s) i child_rows acc_row
          done
        end
      end
    done
  in
  let view =
    match stream with
    | Some chunks ->
        (* Out-of-core: sequential page chunks into ONE view, in global row
           order — the interpreter's sequential float-op sequence, hence
           bit-identical. Parallel chunking stays off on this path. *)
        let view : view = Keypack.Hybrid.create 256 in
        chunks (fun chunk ->
            scan_into chunk view 0 (Relation.cardinality chunk));
        view
    | None ->
        if
          options.Lmfao.Engine.parallel
          && n > options.Lmfao.Engine.chunk_threshold
        then
          Util.Pool.parallel_chunks n
            (fun lo len ->
              let view : view = Keypack.Hybrid.create 256 in
              scan_into rel view lo len;
              view)
            ~combine:(fun acc v ->
              match acc with None -> Some v | Some a -> Some (merge_views a v))
            ~zero:None
          |> Option.value ~default:(Keypack.Hybrid.create 1)
        else begin
          let view : view = Keypack.Hybrid.create 256 in
          scan_into rel view 0 n;
          view
        end
  in
  (view, payload)

(* ---------- rooted execution ---------- *)

let compute_rooted ~options db (r : Ir.rooted) : (string * Spec.result) list =
  Obs.with_span ("lmfao.compile.root:" ^ r.Ir.r_root) @@ fun () ->
  let view, payload = compute ~options db r.Ir.r_node in
  (* the root view has the single empty key, which packs as [P 0] *)
  let row = Keypack.Hybrid.find_opt view (Keypack.P 0) in
  Array.to_list
    (Array.map
       (fun (id, slot) ->
         let p_idx, scalar = payload.(slot) in
         let result =
           match row with
           | None -> if scalar then [ ([], 0.0) ] else []
           | Some r ->
               if scalar then [ ([], r.sc.(p_idx)) ]
               else Ga.bindings r.gr.(p_idx)
         in
         (id, result))
       r.Ir.r_outputs)
