(* The staged-compilation engine: an [Aggregates.Engine_intf.S]
   implementation ("lmfao-compiled") that lowers the LMFAO logical plan
   through the typed IR (stage 1), optimises it (stage 2) and executes the
   specialised closures (stage 3).

   Compiled plans are cached globally, keyed by [Batch.fingerprint] — the
   same key [Serve] uses for its result cache — so recompilation is
   amortised across epochs and delta rounds. A cached plan is revalidated
   against a cheap plan signature (schema shape, options, and the
   multi-root assignment, which depends on relation CARDINALITIES and so
   can drift as data changes); on any mismatch the batch is recompiled.
   That keeps the engine bit-identical to a fresh interpreter run even
   when deltas have shifted which relation a pure count roots at.

   Cyclic schemas fall back to the interpreter (which materialises the
   join with the WCOJ engine), counted in [lmfao.compile.cyclic]. *)

open Relational
module Plan = Lmfao.Plan
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

type options = Lmfao.Engine.options

let default_options = Lmfao.Engine.default_options

type compiled = {
  fingerprint : int; (* Batch.fingerprint of the compiled batch *)
  signature : string; (* plan signature the cache revalidates against *)
  options : options;
  groups : Ir.rooted array; (* one rooted plan per multi-root group *)
}

let c_plans = Obs.counter "lmfao.compile.plans"
let c_cache_hits = Obs.counter "lmfao.compile.cache_hits"
let c_cyclic = Obs.counter "lmfao.compile.cyclic"

let plan_options (o : options) ~share =
  { Plan.share; multi_root = o.Lmfao.Engine.multi_root }

(* Everything the lowered plans depend on besides the batch itself: the
   schema shape (relation names, attribute order) and the root
   assignment. Cheap to recompute — no scans, just the join tree and the
   per-aggregate root policy. Raises [Join_tree.Cyclic]. *)
let signature_of (options : options) (db : Database.t) (batch : Batch.t) :
    string =
  let popts = plan_options options ~share:options.Lmfao.Engine.share in
  let _jt, groups = Plan.group_by_root popts db batch in
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "share=%b;multi=%b|" options.Lmfao.Engine.share
       options.Lmfao.Engine.multi_root);
  List.iter
    (fun r ->
      Buffer.add_string b (Relation.name r);
      Buffer.add_char b '(';
      List.iter
        (fun a ->
          Buffer.add_string b a;
          Buffer.add_char b ',')
        (Schema.names (Relation.schema r));
      Buffer.add_string b ");")
    (Database.relations db);
  List.iter
    (fun (root, specs) ->
      Buffer.add_string b root;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int (List.length specs));
      Buffer.add_char b ';')
    groups;
  Buffer.contents b

(* Compile the batch: plan unshared (one slot per aggregate), lower each
   rooted group, and let the pass pipeline rediscover sharing on the
   physical form. Raises [Join_tree.Cyclic]. *)
let compile ?(options = default_options) (db : Database.t) (batch : Batch.t) :
    compiled =
  Obs.with_span "lmfao.compile.plan" @@ fun () ->
  Obs.incr c_plans;
  let popts = plan_options options ~share:false in
  let jt, groups = Plan.group_by_root popts db batch in
  let stats = Plan.fresh_stats () in
  let lowered =
    List.filter_map
      (fun (root, specs) ->
        if specs = [] then None
        else
          let ir =
            Obs.with_span "lmfao.compile.lower" (fun () ->
                Lower.rooted (Plan.build popts ~stats jt ~root specs))
          in
          Some
            (Obs.with_span "lmfao.compile.passes" (fun () ->
                 Passes.pipeline ~share:options.Lmfao.Engine.share ir)))
      groups
  in
  {
    fingerprint = Batch.fingerprint batch;
    signature = signature_of options db batch;
    options;
    groups = Array.of_list lowered;
  }

let run (c : compiled) (db : Database.t) : (string * Spec.result) list =
  Obs.with_span "lmfao.compile.exec" @@ fun () ->
  let groups = Array.to_list c.groups in
  if c.options.Lmfao.Engine.parallel && List.length groups > 1 then
    List.concat
      (Util.Pool.parallel_tasks
         (List.map
            (fun g () -> Exec.compute_rooted ~options:c.options db g)
            groups))
  else
    List.concat_map (fun g -> Exec.compute_rooted ~options:c.options db g) groups

(* A cached plan may be reused iff the batch, options and plan signature
   all still match. Cyclic schemas never reuse (they never compiled). *)
let reusable (c : compiled) ?(options = default_options) (db : Database.t)
    (batch : Batch.t) : bool =
  c.options = options
  && c.fingerprint = Batch.fingerprint batch
  &&
  match signature_of options db batch with
  | s -> String.equal c.signature s
  | exception Join_tree.Cyclic -> false

(* ---------- the engine facade with its global plan cache ---------- *)

let cache : (int, compiled) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()

let locked f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let find_or_compile ?(options = default_options) db batch : compiled =
  locked @@ fun () ->
  let fp = Batch.fingerprint batch in
  let signature = signature_of options db batch in
  match Hashtbl.find_opt cache fp with
  | Some c when c.options = options && String.equal c.signature signature ->
      Obs.incr c_cache_hits;
      c
  | _ ->
      let c = compile ~options db batch in
      Hashtbl.replace cache fp c;
      c

let name = "lmfao-compiled"

let description =
  "staged compilation of the LMFAO plan: typed IR, fused+specialized scans, \
   cached per batch fingerprint (cyclic: interpreter fallback)"

let eval_batch ?(options = default_options) db batch :
    (string * Spec.result) list =
  match find_or_compile ~options db batch with
  | c -> run c db
  | exception Join_tree.Cyclic ->
      Obs.incr c_cyclic;
      Lmfao.Engine.eval_batch ~options db batch
