(* Stage 2: optimisation passes over the physical IR.

   Each pass is a total [Ir.rooted -> Ir.rooted] function that preserves
   results BITWISE — the qcheck stage-equivalence suite executes every
   intermediate plan and compares against the unoptimised one. The passes
   reuse the transformation vocabulary of [Ifaq.Rewrite] on the physical
   form: [fuse_filters] is predicate fusion (push_into_sums / factor_out
   applied to guards), [merge_slots] is sharing as structural memoisation
   (memoise_and_hoist), [dead_slots] is liveness-based elimination, and
   [hoist_loads] is loop-invariant code motion for column reads.

   Bitwise preservation constrains what a pass may do:

   - [fuse_filters] may hoist a conjunct to the scan level only when EVERY
     slot tests it, and the hoisted test guards the slot kernels ONLY —
     never the view insertion. The interpreter inserts a row's join key
     into the view BEFORE evaluating any slot filter, so an all-filters-
     false row still creates a zero row; the compiled scan must too.
   - [merge_slots] keeps the FIRST occurrence of each structure, so slot
     order — and with it payload order and float accumulation order — is
     exactly the order the interpreter's canonical-string dedup produces.
   - [hoist_loads] only moves column reads, never arithmetic: a hoisted
     value is the same float the term product would have read. *)

let c_fused = Obs.counter "lmfao.compile.filters_fused"
let c_merged = Obs.counter "lmfao.compile.slots_merged"
let c_dead = Obs.counter "lmfao.compile.dead_slots"
let c_hoisted = Obs.counter "lmfao.compile.hoisted_loads"

let remap_outputs remap (r : Ir.rooted) node =
  {
    r with
    Ir.r_node = node;
    r_outputs = Array.map (fun (id, s) -> (id, remap.(s))) r.Ir.r_outputs;
  }

(* ---------- predicate fusion ---------- *)

(* Hoist filter conjuncts shared by EVERY slot of a node into the node's
   scan filter, so they are tested once per row instead of once per slot.
   Purely common-subexpression elimination: the scan filter gates the slot
   kernels, not the key insertion (see the bitwise note above). *)
let fuse_filters (r : Ir.rooted) : Ir.rooted =
  let rec go (node : Ir.node) : Ir.node =
    let node = { node with Ir.n_children = Array.map go node.Ir.n_children } in
    match Array.to_list node.Ir.n_slots with
    | [] -> node
    | first :: rest ->
        let common =
          List.filter
            (fun c ->
              List.for_all (fun (s : Ir.slot) -> List.mem c s.Ir.s_filters) rest)
            (List.sort_uniq compare first.Ir.s_filters)
        in
        if common = [] then node
        else begin
          Obs.add c_fused (List.length common);
          let strip (s : Ir.slot) =
            {
              s with
              Ir.s_filters =
                List.filter (fun c -> not (List.mem c common)) s.Ir.s_filters;
            }
          in
          {
            node with
            Ir.n_scan_filters = node.Ir.n_scan_filters @ common;
            n_slots = Array.map strip node.Ir.n_slots;
          }
        end
  in
  { r with Ir.r_node = go r.Ir.r_node }

(* ---------- shared-prefix merging ---------- *)

(* Collapse structurally identical slots, bottom-up so that child sharing
   makes parents identical in turn. This rediscovers — on the physical
   form — exactly the sharing the planner's canonical-string dedup finds,
   plus any duplicates that only become visible after filter fusion. *)
let merge_slots (r : Ir.rooted) : Ir.rooted =
  let rec go (node : Ir.node) : Ir.node * int array =
    let merged = Array.map go node.Ir.n_children in
    let children = Array.map fst merged in
    let slots =
      Array.map
        (fun (s : Ir.slot) ->
          {
            s with
            Ir.s_children =
              Array.mapi (fun c cs -> (snd merged.(c)).(cs)) s.Ir.s_children;
          })
        node.Ir.n_slots
    in
    let tbl = Hashtbl.create 16 in
    let remap = Array.make (Array.length slots) (-1) in
    let kept = ref [] in
    let k = ref 0 in
    Array.iteri
      (fun i (s : Ir.slot) ->
        let key = Ir.slot_structure s in
        match Hashtbl.find_opt tbl key with
        | Some j ->
            remap.(i) <- j;
            Obs.incr c_merged
        | None ->
            Hashtbl.add tbl key !k;
            remap.(i) <- !k;
            incr k;
            kept := s :: !kept)
      slots;
    ( {
        node with
        Ir.n_slots = Array.of_list (List.rev !kept);
        n_children = children;
      },
      remap )
  in
  let node, remap = go r.Ir.r_node in
  remap_outputs remap r node

(* ---------- dead-slot elimination ---------- *)

(* Drop slots no output and no live parent slot references. After
   [merge_slots] on a planner-produced tree nothing is usually dead — the
   pass is the safety net that makes the pipeline compositional (any
   front-end producing IR, and any future pass dropping references, stays
   executable without scanning for orphans). *)
let dead_slots (r : Ir.rooted) : Ir.rooted =
  let rec go (node : Ir.node) (live : bool array) : Ir.node * int array =
    let remap = Array.make (Array.length node.Ir.n_slots) (-1) in
    let kept = ref [] in
    let k = ref 0 in
    Array.iteri
      (fun i s ->
        if live.(i) then begin
          remap.(i) <- !k;
          incr k;
          kept := s :: !kept
        end
        else Obs.incr c_dead)
      node.Ir.n_slots;
    let kept = Array.of_list (List.rev !kept) in
    let child_live =
      Array.map
        (fun (c : Ir.node) -> Array.make (Array.length c.Ir.n_slots) false)
        node.Ir.n_children
    in
    Array.iter
      (fun (s : Ir.slot) ->
        Array.iteri (fun c cs -> child_live.(c).(cs) <- true) s.Ir.s_children)
      kept;
    let merged =
      Array.mapi (fun c child -> go child child_live.(c)) node.Ir.n_children
    in
    let kept =
      Array.map
        (fun (s : Ir.slot) ->
          {
            s with
            Ir.s_children =
              Array.mapi (fun c cs -> (snd merged.(c)).(cs)) s.Ir.s_children;
          })
        kept
    in
    ( { node with Ir.n_slots = kept; n_children = Array.map fst merged },
      remap )
  in
  let root_live = Array.make (Array.length r.Ir.r_node.Ir.n_slots) false in
  Array.iter (fun (_, s) -> root_live.(s) <- true) r.Ir.r_outputs;
  let node, remap = go r.Ir.r_node root_live in
  remap_outputs remap r node

(* ---------- loop-invariant load hoisting ---------- *)

(* Mark columns whose value at least two slot kernels read, so the
   executor loads them once per row into an unboxed buffer instead of
   re-dispatching per kernel. Only reads move; arithmetic stays in the
   kernels, so accumulation order is untouched. *)
let hoist_loads (r : Ir.rooted) : Ir.rooted =
  let rec go (node : Ir.node) : Ir.node =
    let uses = Hashtbl.create 8 in
    Array.iter
      (fun (s : Ir.slot) ->
        Array.iter
          (fun (t : Ir.term) ->
            Hashtbl.replace uses t.Ir.t_pos
              (1 + Option.value ~default:0 (Hashtbl.find_opt uses t.Ir.t_pos)))
          s.Ir.s_terms)
      node.Ir.n_slots;
    let hoisted =
      Hashtbl.fold (fun pos n acc -> if n >= 2 then pos :: acc else acc) uses []
    in
    let hoisted = Array.of_list (List.sort compare hoisted) in
    Obs.add c_hoisted (Array.length hoisted);
    {
      node with
      Ir.n_hoisted = hoisted;
      n_children = Array.map go node.Ir.n_children;
    }
  in
  { r with Ir.r_node = go r.Ir.r_node }

(* ---------- the pipeline ---------- *)

let all ~share =
  [
    ("fuse-filters", fuse_filters);
    ("merge-slots", if share then merge_slots else fun r -> r);
    ("dead-slots", dead_slots);
    ("hoist-loads", hoist_loads);
  ]

let pipeline ?(share = true) (r : Ir.rooted) : Ir.rooted =
  List.fold_left (fun r (_, pass) -> pass r) r (all ~share)
