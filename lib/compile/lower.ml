(* Stage 1: lower a logical [Lmfao.Plan] into the typed physical IR.

   Lowering is a mechanical translation — every decision with a
   cost-model flavour (root choice, restriction, ownership) has already
   been made by the planner, and every optimisation on the physical form
   (filter fusion, slot merging, dead-slot elimination, load hoisting)
   belongs to [Passes]. The one convention worth noting: the compiler
   lowers UNSHARED plans (one slot per requested aggregate) and lets the
   structural merge pass rediscover sharing on the physical form, so the
   pass pipeline, not the planner's string canonicalisation, is what the
   compiled engine's sharing rests on. *)

open Relational
module Plan = Lmfao.Plan

let rep_of (cols : Column.t array) pos : Ir.rep =
  match Column.data cols.(pos) with
  | Column.Ints _ -> Ir.Rint
  | Column.Floats _ -> Ir.Rfloat
  | Column.Boxed _ -> Ir.Rboxed

let rec filter schema (p : Predicate.t) : Ir.filter =
  let pos = Schema.position schema in
  match p with
  | Predicate.True -> Ir.FTrue
  | Predicate.Ge (a, c) -> Ir.FGe (pos a, c)
  | Predicate.Lt (a, c) -> Ir.FLt (pos a, c)
  | Predicate.Eq (a, c) -> Ir.FEq (pos a, c)
  | Predicate.In (a, cs) -> Ir.FIn (pos a, cs)
  | Predicate.Not p -> Ir.FNot (filter schema p)
  | Predicate.And (p, q) -> Ir.FAnd (filter schema p, filter schema q)
  | Predicate.Or (p, q) -> Ir.FOr (filter schema p, filter schema q)
  | Predicate.Additive_ineq (ts, c) ->
      Ir.FAdditive (List.map (fun (a, w) -> (pos a, w)) ts, c)

let key_shape cols (positions : int array) : Ir.key_shape =
  {
    Ir.k_positions = positions;
    k_reps = Array.map (rep_of cols) positions;
    k_width = Keypack.field_width (Array.length positions);
  }

let slot schema cols (s : Plan.slot) : Ir.slot =
  {
    Ir.s_key = s.Plan.key;
    s_terms =
      Array.map
        (fun (pos, power) ->
          { Ir.t_pos = pos; t_power = power; t_rep = rep_of cols pos })
        s.Plan.local_terms;
    s_groups = s.Plan.local_groups;
    s_filters = List.map (filter schema) s.Plan.local_filter;
    s_children = s.Plan.child_slots;
    s_scalar = s.Plan.scalar;
  }

let rec node (p : Plan.node) : Ir.node =
  let schema = Relation.schema p.Plan.rel in
  let cols = Relation.columns p.Plan.rel in
  {
    Ir.n_rel = Relation.name p.Plan.rel;
    n_key = key_shape cols p.Plan.key_positions;
    n_child_keys = Array.map (key_shape cols) p.Plan.child_keys;
    n_scan_filters = [];
    n_hoisted = [||];
    n_slots = Array.map (slot schema cols) p.Plan.slots;
    n_children = Array.of_list (List.map node p.Plan.children);
  }

let rooted (r : Plan.rooted) : Ir.rooted =
  {
    Ir.r_root = r.Plan.root;
    r_node = node r.Plan.tree;
    r_outputs =
      Array.of_list
        (List.map
           (fun ((s : Aggregates.Spec.t), key) ->
             match Hashtbl.find_opt r.Plan.tree.Plan.slot_index key with
             | Some i -> (s.id, i)
             | None -> failwith "Lower.rooted: lost root slot")
           r.Plan.requests);
  }
