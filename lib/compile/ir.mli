(** The typed physical IR of the staged compiler (stage 1 output): one
    LMFAO rooted decomposition as pure, closure-free data. Attribute names
    are resolved to column positions, column representations are recorded
    explicitly, and filters stay first-order — so plans have meaningful
    structural equality (used by the merge pass), and the executor can
    emit monomorphic accessors per representation. *)

open Relational

(** Column representation observed at lowering time. The executor
    re-checks against the live [Column.data] and counts any drift as a
    specialization fallback. *)
type rep = Rint | Rfloat | Rboxed

(** Single-attribute filter conjuncts: [Predicate.t] with attribute names
    resolved to column positions. *)
type filter =
  | FTrue
  | FGe of int * Value.t
  | FLt of int * Value.t
  | FEq of int * Value.t
  | FIn of int * Value.t list
  | FNot of filter
  | FAnd of filter * filter
  | FOr of filter * filter
  | FAdditive of (int * float) list * float

type term = { t_pos : int; t_power : int; t_rep : rep }

type key_shape = { k_positions : int array; k_reps : rep array; k_width : int }

type slot = {
  s_key : string;  (** provenance: slot key of the first logical partial *)
  s_terms : term array;
  s_groups : (string * int) array;  (** owned group-by (attr, position) *)
  s_filters : filter list;  (** residual conjuncts, tested per row *)
  s_children : int array;  (** per child: slot index in that child *)
  s_scalar : bool;
}

type node = {
  n_rel : string;  (** resolved against the live database at bind time *)
  n_key : key_shape;
  n_child_keys : key_shape array;
  n_scan_filters : filter list;
      (** conjuncts common to EVERY slot, hoisted to the scan *)
  n_hoisted : int array;  (** columns preloaded once per row *)
  n_slots : slot array;
  n_children : node array;
}

type rooted = {
  r_root : string;
  r_node : node;
  r_outputs : (string * int) array;  (** aggregate id -> root slot index *)
}

val slot_structure :
  slot ->
  term array * (string * int) array * filter list * int array * bool
(** The behaviour-determining part of a slot ([s_key] is provenance only):
    two slots with equal structure hold equal payloads after any scan. *)

val to_string : rooted -> string
(** Multi-line rendering of a rooted plan (debugging, DESIGN examples). *)
