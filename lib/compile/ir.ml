(* The typed physical IR of the staged compiler (stage 1 output).

   A [rooted] tree describes one LMFAO rooted decomposition as pure data:
   which relation each view scans, the key shape it groups by and the key
   shapes it probes its children with, and per slot the term product,
   group-by columns, residual filters and child-slot wiring. Everything is
   resolved to column positions and annotated with the column
   representation observed at lowering time, so the executor (stage 3) can
   emit monomorphic accessors and treat any representation drift as an
   explicit specialization fallback.

   The IR is first-order and closure-free on purpose: structural equality
   is meaningful (the shared-prefix merging pass dedups slots with
   polymorphic equality) and plans can be printed, diffed and cached. *)

open Relational

(* Column representation as observed when the plan was lowered. The
   executor re-checks against the live [Column.data] and falls back to the
   generic boxed reader — counted in [lmfao.compile.fallbacks] — when the
   representation has drifted (e.g. a column promoted by later deltas). *)
type rep = Rint | Rfloat | Rboxed

(* Single-attribute filter conjuncts, mirroring [Predicate.t] with
   attribute names resolved to column positions. Compiled against the
   live column representation exactly like [Predicate.compile_cols]. *)
type filter =
  | FTrue
  | FGe of int * Value.t
  | FLt of int * Value.t
  | FEq of int * Value.t
  | FIn of int * Value.t list
  | FNot of filter
  | FAnd of filter * filter
  | FOr of filter * filter
  | FAdditive of (int * float) list * float

type term = { t_pos : int; t_power : int; t_rep : rep }

(* A join key: the column positions packed by [Keypack], with their
   observed representations and the packed field width at this arity. *)
type key_shape = { k_positions : int array; k_reps : rep array; k_width : int }

type slot = {
  s_key : string; (* provenance: slot key of the first logical partial *)
  s_terms : term array;
  s_groups : (string * int) array; (* owned group-by (attr, position) *)
  s_filters : filter list; (* residual conjuncts, tested per row *)
  s_children : int array; (* per child: slot index in that child *)
  s_scalar : bool;
}

type node = {
  n_rel : string; (* resolved against the live database at bind time *)
  n_key : key_shape;
  n_child_keys : key_shape array;
  n_scan_filters : filter list; (* conjuncts common to EVERY slot, hoisted *)
  n_hoisted : int array; (* columns preloaded once per row (>= 2 readers) *)
  n_slots : slot array;
  n_children : node array;
}

type rooted = {
  r_root : string;
  r_node : node;
  r_outputs : (string * int) array; (* aggregate id -> root slot index *)
}

(* The part of a slot that determines what it computes. Two slots with
   equal structure necessarily hold equal payloads after any scan, so the
   merge pass collapses them; [s_key] is provenance only and excluded. *)
let slot_structure (s : slot) =
  (s.s_terms, s.s_groups, s.s_filters, s.s_children, s.s_scalar)

(* ---------- printing (debugging and DESIGN examples) ---------- *)

let rep_name = function Rint -> "int" | Rfloat -> "float" | Rboxed -> "boxed"

let rec filter_to_string = function
  | FTrue -> "true"
  | FGe (p, v) -> Printf.sprintf "c%d >= %s" p (Value.to_string v)
  | FLt (p, v) -> Printf.sprintf "c%d < %s" p (Value.to_string v)
  | FEq (p, v) -> Printf.sprintf "c%d = %s" p (Value.to_string v)
  | FIn (p, vs) ->
      Printf.sprintf "c%d in (%s)" p
        (String.concat "," (List.map Value.to_string vs))
  | FNot f -> Printf.sprintf "not (%s)" (filter_to_string f)
  | FAnd (f, g) ->
      Printf.sprintf "(%s and %s)" (filter_to_string f) (filter_to_string g)
  | FOr (f, g) ->
      Printf.sprintf "(%s or %s)" (filter_to_string f) (filter_to_string g)
  | FAdditive (ts, c) ->
      Printf.sprintf "%s > %g"
        (String.concat " + "
           (List.map (fun (p, w) -> Printf.sprintf "%g*c%d" w p) ts))
        c

let key_to_string (k : key_shape) =
  Printf.sprintf "[%s]@%dbit"
    (String.concat ","
       (Array.to_list
          (Array.mapi
             (fun i p -> Printf.sprintf "c%d:%s" p (rep_name k.k_reps.(i)))
             k.k_positions)))
    k.k_width

let slot_to_string (s : slot) =
  let terms =
    String.concat "*"
      (Array.to_list
         (Array.map
            (fun t ->
              if t.t_power = 1 then
                Printf.sprintf "c%d:%s" t.t_pos (rep_name t.t_rep)
              else
                Printf.sprintf "c%d:%s^%d" t.t_pos (rep_name t.t_rep) t.t_power)
            s.s_terms))
  in
  let terms = if terms = "" then "1" else terms in
  let groups =
    match s.s_groups with
    | [||] -> ""
    | g ->
        " by "
        ^ String.concat ","
            (Array.to_list (Array.map (fun (a, p) -> Printf.sprintf "%s:c%d" a p) g))
  in
  let filters =
    match s.s_filters with
    | [] -> ""
    | fs -> " if " ^ String.concat " && " (List.map filter_to_string fs)
  in
  let children =
    match s.s_children with
    | [||] -> ""
    | cs ->
        " * "
        ^ String.concat " * "
            (Array.to_list
               (Array.mapi (fun c slot -> Printf.sprintf "child%d.s%d" c slot) cs))
  in
  Printf.sprintf "%s(%s%s)%s%s"
    (if s.s_scalar then "sum" else "gsum")
    terms filters children groups

let rec node_lines indent (n : node) =
  let pad = String.make indent ' ' in
  let scan_filters =
    match n.n_scan_filters with
    | [] -> ""
    | fs -> " where " ^ String.concat " && " (List.map filter_to_string fs)
  in
  let hoisted =
    match n.n_hoisted with
    | [||] -> ""
    | h ->
        " hoist ["
        ^ String.concat ","
            (Array.to_list (Array.map (Printf.sprintf "c%d") h))
        ^ "]"
  in
  (Printf.sprintf "%sscan %s key %s%s%s" pad n.n_rel (key_to_string n.n_key)
     scan_filters hoisted
  :: Array.to_list
       (Array.mapi
          (fun i s -> Printf.sprintf "%s  s%d: %s" pad i (slot_to_string s))
          n.n_slots))
  @ List.concat_map (node_lines (indent + 2)) (Array.to_list n.n_children)

let to_string (r : rooted) =
  String.concat "\n"
    ((Printf.sprintf "root %s -> %s" r.r_root
        (String.concat ","
           (Array.to_list
              (Array.map (fun (id, s) -> Printf.sprintf "%s:s%d" id s) r.r_outputs))))
    :: node_lines 2 r.r_node)
