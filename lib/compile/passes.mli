(** Stage 2: optimisation passes over the physical IR. Every pass
    preserves execution results BITWISE (enforced by the qcheck
    stage-equivalence suite); see the implementation header for the
    constraints this puts on each transformation. *)

val fuse_filters : Ir.rooted -> Ir.rooted
(** Hoist filter conjuncts shared by every slot of a node into the node's
    scan filter (tested once per row). The scan filter gates the slot
    kernels only — never the view's key insertion. *)

val merge_slots : Ir.rooted -> Ir.rooted
(** Collapse structurally identical slots bottom-up, keeping first
    occurrences (so payload and accumulation order match the
    interpreter's canonical-string sharing). *)

val dead_slots : Ir.rooted -> Ir.rooted
(** Drop slots that no output and no live parent slot references. *)

val hoist_loads : Ir.rooted -> Ir.rooted
(** Mark columns read by at least two slot kernels for a once-per-row
    buffered load. *)

val all : share:bool -> (string * (Ir.rooted -> Ir.rooted)) list
(** The pipeline stages in order, named (for the stage-equivalence
    suite). With [share = false] the merge pass is the identity, matching
    the interpreter's [share = false] semantics. *)

val pipeline : ?share:bool -> Ir.rooted -> Ir.rooted
(** [fuse_filters |> merge_slots (if share) |> dead_slots |> hoist_loads].
    [share] defaults to [true]. *)
