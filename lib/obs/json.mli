(** Minimal dependency-free JSON — enough to export metrics snapshots and
    validate them back in the CLI smoke test. Numbers carry one float type
    (as in JSON itself); integral values print without a fractional part. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num_int : int -> t
(** [num_int n] is [Num (float_of_int n)]. *)

val to_string : t -> string
(** Compact (single-line) rendering; strings are escaped per RFC 8259. *)

exception Parse_error of string
(** Message includes the offending byte offset. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    offending offset. Inverse of {!to_string} on finite numbers. Truncated
    documents and trailing garbage are rejected — a prefix is never
    silently accepted. *)

val parse_exn : string -> t
(** As {!parse}, raising {!Parse_error}. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up a field; [None] on other shapes. *)
