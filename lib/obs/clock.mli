(** Monotonic wall clock for interval measurements. Backed by
    [clock_gettime(CLOCK_MONOTONIC)] where available (Linux/macOS/BSD) with a
    [gettimeofday] fallback, so readings never jump backwards under NTP
    adjustments on the platforms we run on. *)

val now : unit -> float
(** Seconds from an unspecified origin; only differences are meaningful. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [now () -. t0]. *)
