(* Minimal JSON: just enough to export metrics snapshots and validate them
   back (the CLI smoke test and the round-trip tests), with no external
   dependency. Numbers are floats (JSON has one number type); integral
   values print without a fractional part. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num_int n = Num (float_of_int n)

(* ---------- printing ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else if Float.is_finite x then Printf.sprintf "%.17g" x
  else "null" (* JSON has no inf/nan; metrics should never produce them *)

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num x -> Buffer.add_string b (number_string x)
  | Str s -> escape_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 1024 in
  write b t;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then error st "unterminated string"
    else
      let c = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if st.pos >= String.length st.s then error st "unterminated escape";
          let e = st.s.[st.pos] in
          st.pos <- st.pos + 1;
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              if st.pos + 4 > String.length st.s then error st "short \\u escape";
              let hex = String.sub st.s st.pos 4 in
              st.pos <- st.pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> error st "bad \\u escape"
              in
              (* basic-plane code points as UTF-8 (enough for our exports) *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> error st "bad escape")
      | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some x -> Num x
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        Arr (List.rev !items)
      end
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some c -> if is_number_start c then parse_number st else error st "unexpected character"

and is_number_start c = match c with '0' .. '9' | '-' -> true | _ -> false

(* A document is ONE value followed only by whitespace: both truncated input
   (inner error) and trailing garbage reject with {!Parse_error} carrying
   the offset — never a silently accepted prefix. *)
let parse_exn s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing characters";
  v

let parse s =
  match parse_exn s with v -> Ok v | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
