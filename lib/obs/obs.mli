(** Engine-wide observability: hierarchical spans (wall clock + minor-heap
    allocation), a process-global registry of named counters / gauges /
    histograms, a pluggable sink, a tree reporter and a JSON exporter.

    Everything is gated on one {!set_enabled} flag checked first in every
    operation, so instrumented engines pay a single load-and-branch per event
    when observability is off. Counter updates are atomic and span nesting is
    tracked per domain, so instrumentation inside [Util.Pool] workers is
    safe.

    Naming convention: [<engine>.<quantity>], e.g. [lmfao.views],
    [fivm.delta_tuples], [wcoj.seeks] (see README "Observability"). *)

module Clock : module type of Clock
module Json : module type of Json

(** {1 Enablement} *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with observability forced on/off, restoring the previous state. *)

(** {1 Counters}

    Monotone event counts. Handles are interned by name: the registry lookup
    happens once at handle creation (typically module initialisation), and
    {!add} on the hot path is a branch plus an atomic add. *)

type counter

val counter : string -> counter
(** Find-or-create the counter registered under [name]. *)

val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

val counter_value_by_name : string -> int
(** 0 for unregistered names (tests and reporters). *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Streaming summaries of observed values: count / sum / min / max plus a
    FIXED log-scaled bucket layout shared by every histogram — bucket 0 is
    the underflow bin (values <= 1e-9), the last bucket the overflow bin, and
    each decade of [1e-9, 1e6] in between is split into 5 geometric bins. A
    fixed layout lets snapshots from different processes aggregate and
    compare without negotiating boundaries, and supports Prometheus-style
    quantile estimation ({!histogram_quantile}). *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_count : int
(** Total number of buckets, including underflow and overflow. *)

val bucket_upper : int -> float
(** Inclusive upper bound of bucket [i]; [infinity] for the overflow
    bucket. Bucket [i] holds values in [(bucket_upper (i-1), bucket_upper i]]
    (bucket 0: [(-inf, 1e-9]]). *)

val bucket_index : float -> int
(** Index of the bucket an observation of [v] lands in. *)

type histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** [infinity] when empty *)
  hs_max : float;  (** [neg_infinity] when empty *)
  hs_buckets : (int * int) list;
      (** [(bucket index, count)], non-zero entries only, ascending index *)
}

val histogram_snapshot : histogram -> histogram_snapshot
(** Consistent copy of the histogram's current state (taken under the
    registry lock). *)

val histogram_snapshot_by_name : string -> histogram_snapshot option
(** [None] for unregistered names. *)

val snapshot_quantile : histogram_snapshot -> float -> float
(** [snapshot_quantile s q] estimates the [q]-quantile ([q] clamped to
    [0,1]) by walking cumulative bucket counts and interpolating linearly
    inside the target bucket, clamped to the observed [min, max]. [nan] when
    the snapshot is empty. *)

val histogram_quantile : histogram -> float -> float
(** [snapshot_quantile] of a fresh {!histogram_snapshot}. *)

val snapshot_to_json : histogram_snapshot -> Json.t
(** Export as an object with [count], [sum] and — when non-empty — [min],
    [max], [p50]/[p95]/[p99] and a [buckets] object keyed by bucket index.
    Round-trips through {!snapshot_of_json}. *)

val snapshot_of_json : Json.t -> (histogram_snapshot, string) result
(** Parse a snapshot back; tolerates extra keys (such as the exported
    quantiles) and validates that bucket counts sum to [count]. *)

(** {1 Spans} *)

type span

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: wall-clock seconds via {!Clock} and
    allocation via [Gc.minor_words] are recorded on both edges, and the span
    nests under the innermost open span of the current domain (or becomes a
    report root). When disabled this is exactly [f ()]. Exceptions still
    close the span. *)

val span_name : span -> string
val span_seconds : span -> float
val span_minor_words : span -> float
val span_children : span -> span list
val spans : unit -> span list
(** Finished top-level spans, oldest first. *)

(** {1 Sinks}

    Streaming notification of span edges, e.g. for live tracing. The
    default {!null_sink} does nothing; accumulation into the registry for
    {!pp_report} / {!to_json} happens regardless of the sink. *)

type sink = {
  on_span_start : span -> unit;
  on_span_end : span -> unit;  (** timings and allocations are final here *)
}

val null_sink : sink
val set_sink : sink -> unit

(** {1 Snapshot, report, export} *)

val reset : unit -> unit
(** Zero all counter/gauge/histogram values and drop recorded spans; the
    registered handles stay valid. *)

val counter_snapshot : unit -> (string * int) list
(** Non-zero counters, sorted by name. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable span tree plus non-zero counters/gauges/histograms. *)

val to_json : unit -> Json.t
val json_string : unit -> string

val write_file : string -> unit
(** Write {!json_string} (newline-terminated) to a file. *)
