(* Engine-wide observability: hierarchical spans, a process-global registry
   of named counters / gauges / histograms, a pluggable sink interface, a
   tree reporter and a JSON exporter.

   Everything is gated on one [enabled] flag checked first in every hot-path
   operation, so an instrumented engine pays a single load-and-branch per
   event when observability is off (the "null sink fast path"). Counters use
   [Atomic] and spans keep one stack per domain, so instrumented code inside
   [Util.Pool] workers stays safe; spans started on a worker domain with an
   empty stack attach to the report root. *)

module Clock = Clock
module Json = Json

(* ---------- enablement ---------- *)

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

let with_enabled b f =
  let saved = !enabled in
  enabled := b;
  Fun.protect ~finally:(fun () -> enabled := saved) f

(* ---------- registry plumbing ---------- *)

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ---------- counters ---------- *)

type counter = { c_name : string; cell : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let add c n = if !enabled then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let counter_value c = Atomic.get c.cell

let counter_value_by_name name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> counter_value c
      | None -> 0)

(* ---------- gauges ---------- *)

(* Gauges are written from worker domains (e.g. per-shard sizes inside
   [Util.Pool] tasks), so the cell is an [Atomic] — a plain mutable float
   here was a cross-domain data race that histograms (mutex) and counters
   (atomics) never had. *)
type gauge = { g_name : string; g : float Atomic.t }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g = Atomic.make 0.0 } in
          Hashtbl.add gauges name g;
          g)

let set_gauge g v = if !enabled then Atomic.set g.g v
let gauge_value g = Atomic.get g.g

(* ---------- histograms ----------

   Streaming summaries with FIXED log-scaled buckets shared by every
   histogram: bucket 0 is the underflow bin (v <= 1e-9), the last bucket the
   overflow bin, and in between each decade of [1e-9, 1e6] is split into
   [buckets_per_decade] geometric bins. A fixed layout means snapshots from
   different processes (metrics files, bench runs) aggregate and compare
   without negotiation, and quantile estimation is a cumulative walk plus a
   linear interpolation inside one bucket — the Prometheus
   [histogram_quantile] recipe. The layout spans nanoseconds to ~11 days,
   enough for every latency/duration this repository observes. *)

let buckets_per_decade = 5
let bucket_lo = 1e-9
let bucket_decades = 15
let bucket_count = 2 + (buckets_per_decade * bucket_decades)

let bucket_upper i =
  if i <= 0 then bucket_lo
  else if i >= bucket_count - 1 then infinity
  else bucket_lo *. (10.0 ** (float_of_int i /. float_of_int buckets_per_decade))

let bucket_index v =
  if not (v > bucket_lo) then 0 (* also catches nan and negatives *)
  else begin
    let raw =
      1
      + int_of_float
          (Float.floor (Float.log10 (v /. bucket_lo) *. float_of_int buckets_per_decade))
    in
    let i = Stdlib.max 1 (Stdlib.min (bucket_count - 1) raw) in
    (* the log is inexact at bucket boundaries; nudge into the invariant
       upper (i-1) < v <= upper i *)
    if v > bucket_upper i then Stdlib.min (bucket_count - 1) (i + 1)
    else if i > 1 && v <= bucket_upper (i - 1) then i - 1
    else i
  end

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* length [bucket_count] *)
}

type histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float; (* infinity when empty *)
  hs_max : float; (* neg_infinity when empty *)
  hs_buckets : (int * int) list; (* (bucket index, count), non-zero, ascending *)
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
              h_buckets = Array.make bucket_count 0;
            }
          in
          Hashtbl.add histograms name h;
          h)

let observe h v =
  if !enabled then
    locked (fun () ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let i = bucket_index v in
        h.h_buckets.(i) <- h.h_buckets.(i) + 1)

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let snapshot_of_histogram h =
  (* caller holds the registry lock or accepts a racy-but-consistent-enough
     read; the exported paths go through [histogram_snapshot] below *)
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
  done;
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = h.h_min;
    hs_max = h.h_max;
    hs_buckets = !buckets;
  }

let histogram_snapshot h = locked (fun () -> snapshot_of_histogram h)

let histogram_snapshot_by_name name =
  locked (fun () ->
      Option.map snapshot_of_histogram (Hashtbl.find_opt histograms name))

(* Prometheus-style estimate: walk the cumulative counts to the bucket
   containing rank [q * count], then interpolate linearly inside it. The
   result is clamped to the observed [min, max], which also grounds the
   open-ended underflow/overflow buckets. *)
let snapshot_quantile s q =
  if s.hs_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int s.hs_count in
    let rec walk before = function
      | [] -> s.hs_max
      | (i, n) :: rest ->
          let cum = float_of_int (before + n) in
          if cum < target && rest <> [] then walk (before + n) rest
          else begin
            let lower = if i = 0 then 0.0 else bucket_upper (i - 1) in
            let upper = bucket_upper i in
            let lower = Float.max lower (Float.min s.hs_min upper) in
            let upper = if Float.is_finite upper then upper else s.hs_max in
            let frac =
              Float.max 0.0 (Float.min 1.0 ((target -. float_of_int before) /. float_of_int n))
            in
            let est = lower +. (frac *. (upper -. lower)) in
            Float.max s.hs_min (Float.min s.hs_max est)
          end
    in
    walk 0 s.hs_buckets
  end

let histogram_quantile h q = snapshot_quantile (histogram_snapshot h) q

let snapshot_to_json s =
  Json.Obj
    (("count", Json.num_int s.hs_count)
     :: ("sum", Json.Num s.hs_sum)
     ::
     (if s.hs_count = 0 then []
      else
        [
          ("min", Json.Num s.hs_min);
          ("max", Json.Num s.hs_max);
          ("p50", Json.Num (snapshot_quantile s 0.5));
          ("p95", Json.Num (snapshot_quantile s 0.95));
          ("p99", Json.Num (snapshot_quantile s 0.99));
          ( "buckets",
            Json.Obj
              (List.map
                 (fun (i, n) -> (string_of_int i, Json.num_int n))
                 s.hs_buckets) );
        ]))

let snapshot_of_json j =
  let int_field name =
    match Json.member name j with
    | Some (Json.Num x) when Float.is_integer x -> Ok (int_of_float x)
    | Some _ -> Error (Printf.sprintf "histogram field %S is not an integer" name)
    | None -> Error (Printf.sprintf "histogram field %S missing" name)
  in
  let float_field name default =
    match Json.member name j with
    | Some (Json.Num x) -> Ok x
    | Some _ -> Error (Printf.sprintf "histogram field %S is not a number" name)
    | None -> Ok default
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* count = int_field "count" in
  let* sum = float_field "sum" 0.0 in
  let* mn = float_field "min" infinity in
  let* mx = float_field "max" neg_infinity in
  let* buckets =
    match Json.member "buckets" j with
    | None -> if count = 0 then Ok [] else Error "histogram field \"buckets\" missing"
    | Some (Json.Obj fields) ->
        let rec go acc = function
          | [] -> Ok (List.sort compare (List.rev acc))
          | (k, Json.Num n) :: rest when Float.is_integer n -> (
              match int_of_string_opt k with
              | Some i when i >= 0 && i < bucket_count && int_of_float n > 0 ->
                  go ((i, int_of_float n) :: acc) rest
              | _ -> Error (Printf.sprintf "bad histogram bucket %S" k))
          | (k, _) :: _ -> Error (Printf.sprintf "bad histogram bucket %S" k)
        in
        go [] fields
    | Some _ -> Error "histogram field \"buckets\" is not an object"
  in
  if List.fold_left (fun acc (_, n) -> acc + n) 0 buckets <> count then
    Error "histogram bucket counts do not sum to count"
  else Ok { hs_count = count; hs_sum = sum; hs_min = mn; hs_max = mx; hs_buckets = buckets }

(* ---------- spans ---------- *)

type span = {
  span_name : string;
  start_s : float;
  mutable stop_s : float;
  start_words : float;
  mutable stop_words : float;
  mutable children : span list; (* newest first while open; oldest first once reported *)
}

let span_name s = s.span_name
let span_seconds s = s.stop_s -. s.start_s
let span_minor_words s = s.stop_words -. s.start_words
let span_children s = List.rev s.children

(* ---------- sinks ---------- *)

type sink = {
  on_span_start : span -> unit;
  on_span_end : span -> unit; (* timings/allocations are final here *)
}

let null_sink = { on_span_start = (fun _ -> ()); on_span_end = (fun _ -> ()) }
let sink = ref null_sink
let set_sink s = sink := s

(* ---------- span collection ---------- *)

(* finished top-level spans, oldest first once snapshotted *)
let top_spans : span list ref = ref []

(* one span stack per domain: nesting is a per-domain notion, and workers
   spawned by [Util.Pool] must not interleave with the spawning domain *)
let stacks : (int, span list ref) Hashtbl.t = Hashtbl.create 8

let domain_stack () =
  let id = (Domain.self () :> int) in
  locked (fun () ->
      match Hashtbl.find_opt stacks id with
      | Some st -> st
      | None ->
          let st = ref [] in
          Hashtbl.add stacks id st;
          st)

let with_span name f =
  if not !enabled then f ()
  else begin
    let sp =
      {
        span_name = name;
        start_s = Clock.now ();
        stop_s = 0.0;
        start_words = Gc.minor_words ();
        stop_words = 0.0;
        children = [];
      }
    in
    !sink.on_span_start sp;
    let stack = domain_stack () in
    stack := sp :: !stack;
    let finish () =
      sp.stop_s <- Clock.now ();
      sp.stop_words <- Gc.minor_words ();
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | _ -> (* unbalanced exit; drop everything above us *)
          stack := (match List.find_opt (fun s -> s == sp) !stack with
                    | Some _ ->
                        let rec drop = function
                          | s :: rest -> if s == sp then rest else drop rest
                          | [] -> []
                        in
                        drop !stack
                    | None -> !stack));
      (match !stack with
      | parent :: _ -> parent.children <- sp :: parent.children
      | [] -> locked (fun () -> top_spans := sp :: !top_spans));
      !sink.on_span_end sp
    in
    Fun.protect ~finally:finish f
  end

let spans () = locked (fun () -> List.rev !top_spans)

(* ---------- reset ---------- *)

(* Zero the VALUES but keep the registered objects: instrumented modules
   hold counter handles created at module initialisation. *)
let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g 0.0) gauges;
      Hashtbl.iter
        (fun _ h ->
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Array.fill h.h_buckets 0 bucket_count 0)
        histograms;
      top_spans := [];
      Hashtbl.iter (fun _ st -> st := []) stacks)

(* ---------- snapshots ---------- *)

let sorted_bindings tbl =
  let items = locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  List.sort (fun (a, _) (b, _) -> compare a b) items

let counter_snapshot () =
  List.filter_map
    (fun (name, c) ->
      let v = counter_value c in
      if v = 0 then None else Some (name, v))
    (sorted_bindings counters)

(* ---------- reporters ---------- *)

let pp_words ppf w =
  if w >= 1e6 then Format.fprintf ppf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Format.fprintf ppf "%.1fkw" (w /. 1e3)
  else Format.fprintf ppf "%.0fw" w

let pp_seconds ppf s =
  if s < 1e-6 then Format.fprintf ppf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Format.fprintf ppf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.2fms" (s *. 1e3)
  else Format.fprintf ppf "%.2fs" s

let rec pp_span_tree indent ppf sp =
  Format.fprintf ppf "%s%s  %a  (%a minor)@," indent sp.span_name pp_seconds
    (span_seconds sp) pp_words (span_minor_words sp);
  List.iter (pp_span_tree (indent ^ "  ") ppf) (span_children sp)

let pp_report ppf () =
  Format.fprintf ppf "@[<v>";
  (match spans () with
  | [] -> ()
  | roots ->
      Format.fprintf ppf "spans:@,";
      List.iter (pp_span_tree "  " ppf) roots);
  (match counter_snapshot () with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "counters:@,";
      List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %12d@," name v) cs);
  let gs =
    List.filter (fun (_, g) -> gauge_value g <> 0.0) (sorted_bindings gauges)
  in
  if gs <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (name, g) -> Format.fprintf ppf "  %-36s %12g@," name (gauge_value g)) gs
  end;
  let hs =
    List.filter (fun (_, h) -> h.h_count > 0) (sorted_bindings histograms)
  in
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (name, h) ->
        let s = histogram_snapshot h in
        Format.fprintf ppf "  %-36s n=%d sum=%g min=%g max=%g p50=%g p99=%g@,"
          name s.hs_count s.hs_sum s.hs_min s.hs_max
          (snapshot_quantile s 0.5) (snapshot_quantile s 0.99))
      hs
  end;
  Format.fprintf ppf "@]"

(* ---------- JSON export ---------- *)

let rec span_to_json sp =
  Json.Obj
    [
      ("name", Json.Str sp.span_name);
      ("seconds", Json.Num (span_seconds sp));
      ("minor_words", Json.Num (span_minor_words sp));
      ("children", Json.Arr (List.map span_to_json (span_children sp)));
    ]

let to_json () =
  Json.Obj
    [
      ("spans", Json.Arr (List.map span_to_json (spans ())));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.num_int v)) (counter_snapshot ())) );
      ( "gauges",
        Json.Obj
          (List.filter_map
             (fun (k, g) -> if gauge_value g = 0.0 then None else Some (k, Json.Num (gauge_value g)))
             (sorted_bindings gauges)) );
      ( "histograms",
        Json.Obj
          (List.filter_map
             (fun (k, h) ->
               if h.h_count = 0 then None
               else Some (k, snapshot_to_json (histogram_snapshot h)))
             (sorted_bindings histograms)) );
    ]

let json_string () = Json.to_string (to_json ())

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json_string ());
      output_char oc '\n')
