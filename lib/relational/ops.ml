(* Physical relational operators: selection, projection, hash joins, group-by
   aggregation, set operations. These implement the classical query
   processing that the structure-agnostic baselines use and against which
   the factorised engines are compared — now over the typed columnar layer:
   predicates compile against columns, rows move column-to-column without
   boxed intermediates, and join/group-by keys hash as packed ints via
   [Keypack] instead of boxed tuple arrays. *)

module Hybrid = Keypack.Hybrid

let select ?(name = "sigma") pred rel =
  let schema = Relation.schema rel in
  let keep = Predicate.compile_cols schema (Relation.columns rel) pred in
  let out = Relation.create name schema in
  ignore (Relation.scan rel);
  for i = 0 to Relation.cardinality rel - 1 do
    if keep i then Relation.append_from out rel i
  done;
  out

let select_fn ?(name = "sigma") f rel =
  let out = Relation.create name (Relation.schema rel) in
  Relation.iteri (fun i t -> if f t then Relation.append_from out rel i) rel;
  out

(* Bag projection: whole-column copies, no per-row work. *)
let project ?(name = "pi") rel attr_names =
  let schema = Relation.schema rel in
  let positions = Array.of_list (Schema.positions schema attr_names) in
  let out_schema = Schema.project schema attr_names in
  Relation.of_projection name rel positions out_schema

let distinct ?(name = "delta") rel =
  let out = Relation.create name (Relation.schema rel) in
  let n = Relation.cardinality rel in
  let all = Array.init (Schema.arity (Relation.schema rel)) Fun.id in
  let key = Relation.extractor rel all in
  let seen = Hybrid.create (Stdlib.max 16 n) in
  for i = 0 to n - 1 do
    let k = key i in
    if not (Hybrid.mem seen k) then begin
      Hybrid.add seen k ();
      Relation.append_from out rel i
    end
  done;
  out

let project_distinct ?name rel attr_names = distinct ?name (project rel attr_names)

let union ?(name = "union") a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg "Ops.union: schema mismatch";
  let out = Relation.create name (Relation.schema a) in
  for i = 0 to Relation.cardinality a - 1 do
    Relation.append_from out a i
  done;
  for i = 0 to Relation.cardinality b - 1 do
    Relation.append_from out b i
  done;
  out

(* Index a relation by a key: packed key to the list of row indexes (most
   recently appended first). *)
let build_index rel key_positions =
  let key = Relation.extractor rel key_positions in
  let idx = Hybrid.create (Stdlib.max 16 (Relation.cardinality rel)) in
  for i = 0 to Relation.cardinality rel - 1 do
    let k = key i in
    match Hybrid.find_opt idx k with
    | Some l -> l := i :: !l
    | None -> Hybrid.add idx k (ref [ i ])
  done;
  idx

(* Natural hash join on the attributes common to both schemas. The output
   schema is [a]'s attributes followed by [b]'s non-shared attributes, as in
   [Schema.join]. If there are no common attributes this is the Cartesian
   product. *)
let natural_join ?(name = "join") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let key_names = Schema.common sa sb in
  let ka = Array.of_list (Schema.positions sa key_names) in
  let kb = Array.of_list (Schema.positions sb key_names) in
  let out_schema = Schema.join sa sb in
  (* positions of b's non-shared attributes *)
  let b_extra =
    Array.of_list
      (List.filter_map
         (fun n -> if Schema.mem sa n then None else Some (Schema.position sb n))
         (Schema.names sb))
  in
  let out = Relation.create name out_schema in
  (* build on the smaller side, probe with the larger *)
  let build_rel, probe_rel, build_key, probe_key, build_is_a =
    if Relation.cardinality a <= Relation.cardinality b then (a, b, ka, kb, true)
    else (b, a, kb, ka, false)
  in
  let idx = build_index build_rel build_key in
  let probe = Relation.extractor probe_rel probe_key in
  ignore (Relation.scan probe_rel);
  for j = 0 to Relation.cardinality probe_rel - 1 do
    match Hybrid.find_opt idx (probe j) with
    | None -> ()
    | Some rows ->
        List.iter
          (fun i ->
            if build_is_a then Relation.append_concat out a i b b_extra j
            else Relation.append_concat out a j b b_extra i)
          !rows
  done;
  out

let natural_join_all ?(name = "join") = function
  | [] -> invalid_arg "Ops.natural_join_all: empty list"
  | r :: rest -> List.fold_left (fun acc r' -> natural_join ~name acc r') r rest

(* Tuples of [a] with at least one join partner in [b]. *)
let semijoin ?(name = "semijoin") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let key_names = Schema.common sa sb in
  let ka = Array.of_list (Schema.positions sa key_names) in
  let kb = Array.of_list (Schema.positions sb key_names) in
  let keys = Hybrid.create (Stdlib.max 16 (Relation.cardinality b)) in
  let kb_of = Relation.extractor b kb in
  for j = 0 to Relation.cardinality b - 1 do
    let k = kb_of j in
    if not (Hybrid.mem keys k) then Hybrid.add keys k ()
  done;
  let out = Relation.create name sa in
  let ka_of = Relation.extractor a ka in
  for i = 0 to Relation.cardinality a - 1 do
    if Hybrid.mem keys (ka_of i) then Relation.append_from out a i
  done;
  out

(* Aggregation functions for [group_by]. Each aggregate reads a float from a
   tuple and is summed/counted/etc. within a group. *)
type agg =
  | Count
  | Sum of (Tuple.t -> float)
  | Min of (Tuple.t -> float)
  | Max of (Tuple.t -> float)
  | Avg of (Tuple.t -> float)

let sum_of_attr schema attr =
  let i = Schema.position schema attr in
  Sum (fun t -> Value.to_float t.(i))

(* Group-by aggregation: the output schema is the key attributes followed by
   one float column per aggregate, named as given. Grouping hashes packed
   keys; the boxed tuple is materialised per row only when an aggregate
   closure needs it. *)
let group_by ?(name = "gamma") rel ~key ~aggs =
  let schema = Relation.schema rel in
  let key_positions = Array.of_list (Schema.positions schema key) in
  let key_arity = Array.length key_positions in
  let out_schema =
    Schema.of_list
      (List.map (fun n -> Schema.attr_at schema (Schema.position schema n)) key
      @ List.map (fun (agg_name, _) -> Schema.attr agg_name Value.TFloat) aggs)
  in
  let aggs = Array.of_list (List.map snd aggs) in
  let n_aggs = Array.length aggs in
  let needs_tuple = Array.exists (function Count -> false | _ -> true) aggs in
  let key_of = Relation.extractor rel key_positions in
  (* per-group accumulators: sums plus a count (avg and count need it) *)
  let groups = Hybrid.create 64 in
  for i = 0 to Relation.cardinality rel - 1 do
    let k = key_of i in
    let acc =
      match Hybrid.find_opt groups k with
      | Some acc -> acc
      | None ->
          let acc = (Array.make n_aggs 0.0, ref 0, Array.make n_aggs nan) in
          Hybrid.add groups k acc;
          acc
    in
    let sums, count, extremes = acc in
    incr count;
    if needs_tuple then begin
      let t = Relation.get rel i in
      Array.iteri
        (fun j agg ->
          match agg with
          | Count -> ()
          | Sum f | Avg f -> sums.(j) <- sums.(j) +. f t
          | Min f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v < extremes.(j) then extremes.(j) <- v
          | Max f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v > extremes.(j) then extremes.(j) <- v)
        aggs
    end
  done;
  let out = Relation.create ~capacity:(Hybrid.length groups) name out_schema in
  Hybrid.iter
    (fun k (sums, count, extremes) ->
      let agg_values =
        Array.mapi
          (fun j agg ->
            let x =
              match agg with
              | Count -> float_of_int !count
              | Sum _ -> sums.(j)
              | Avg _ -> sums.(j) /. float_of_int !count
              | Min _ | Max _ -> extremes.(j)
            in
            Value.Float x)
          aggs
      in
      Relation.append out (Array.append (Keypack.key_tuple key_arity k) agg_values))
    groups;
  out

(* Scalar aggregation (no group-by): returns the aggregate values in order. *)
let aggregate rel aggs =
  let n = List.length aggs in
  let sums = Array.make n 0.0 in
  let extremes = Array.make n nan in
  let count = ref 0 in
  let aggs = Array.of_list aggs in
  Relation.iter
    (fun t ->
      incr count;
      Array.iteri
        (fun j agg ->
          match agg with
          | Count -> ()
          | Sum f | Avg f -> sums.(j) <- sums.(j) +. f t
          | Min f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v < extremes.(j) then extremes.(j) <- v
          | Max f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v > extremes.(j) then extremes.(j) <- v)
        aggs)
    rel;
  Array.to_list
    (Array.mapi
       (fun j agg ->
         match agg with
         | Count -> float_of_int !count
         | Sum _ -> sums.(j)
         | Avg _ -> sums.(j) /. float_of_int !count
         | Min _ | Max _ -> extremes.(j))
       aggs)

(* ---- spill-aware operators ----

   Variants of [group_by] and [natural_join] that bound their hash state: when
   the input exceeds [spill_above] rows, row INDEXES are partitioned to disk
   by [Keypack.shard_of_key] and each partition is processed with its own
   (small) hash table. Only the index sequences spill — cells stay in the
   source relation's columns, which the caller may itself be paging.

   Bit-identity with the in-memory operators is by construction: a packed key
   routes every row of one group (or join key) to exactly ONE partition, and
   within a partition the spilled indexes replay in ascending global row
   order. Group accumulators therefore see the same float-addition sequence
   as a single global scan, and a final merge by first-occurrence row index
   (group-by) or stable sort by global probe index (join) reproduces the
   canonical emission order exactly. *)

let spills_counter = Obs.counter "store.spills"
let spill_rows_counter = Obs.counter "store.spill_rows"
let spill_partitions = 8

(* One temp file of little-endian i64 row indexes per partition, written
   through a small buffer so spilling itself stays O(1) in memory. *)
type spill_file = { path : string; oc : Out_channel.t; buf : Buffer.t }

let spill_open tag p =
  let path = Filename.temp_file (Printf.sprintf "borg-%s-%d" tag p) ".idx" in
  { path; oc = Out_channel.open_bin path; buf = Buffer.create 8192 }

let spill_push f i =
  Codec.i64 f.buf i;
  if Buffer.length f.buf >= 65536 then begin
    Buffer.output_buffer f.oc f.buf;
    Buffer.clear f.buf
  end

let spill_indexes f =
  Buffer.output_buffer f.oc f.buf;
  Buffer.clear f.buf;
  Out_channel.close f.oc;
  let s = In_channel.with_open_bin f.path In_channel.input_all in
  (try Sys.remove f.path with Sys_error _ -> ());
  let rd = Codec.reader s in
  Array.init (String.length s / 8) (fun _ -> Codec.read_i64 rd)

(* Partition row indexes [0, n) of [key_of] to disk; returns one ascending
   index array per partition. *)
let spill_partition tag n key_of =
  Obs.incr spills_counter;
  Obs.add spill_rows_counter n;
  let files = Array.init spill_partitions (spill_open tag) in
  for i = 0 to n - 1 do
    spill_push files.(Keypack.shard_of_key ~shards:spill_partitions (key_of i)) i
  done;
  Array.map spill_indexes files

type group_acc = { sums : float array; count : int ref; extremes : float array }

let group_fold rel aggs needs_tuple acc i =
  incr acc.count;
  if needs_tuple then begin
    let t = Relation.get rel i in
    Array.iteri
      (fun j agg ->
        match agg with
        | Count -> ()
        | Sum f | Avg f -> acc.sums.(j) <- acc.sums.(j) +. f t
        | Min f ->
            let v = f t in
            if Float.is_nan acc.extremes.(j) || v < acc.extremes.(j) then
              acc.extremes.(j) <- v
        | Max f ->
            let v = f t in
            if Float.is_nan acc.extremes.(j) || v > acc.extremes.(j) then
              acc.extremes.(j) <- v)
      aggs
  end

(* Group the rows listed in [indexes] (ascending); returns groups in
   first-seen order, each tagged with its first-occurrence global row. *)
let group_run rel aggs needs_tuple n_aggs key_of indexes =
  let groups = Hybrid.create 64 in
  let order = ref [] in
  Array.iter
    (fun i ->
      let k = key_of i in
      let acc =
        match Hybrid.find_opt groups k with
        | Some acc -> acc
        | None ->
            let acc =
              { sums = Array.make n_aggs 0.0; count = ref 0;
                extremes = Array.make n_aggs nan }
            in
            Hybrid.add groups k acc;
            order := (i, k, acc) :: !order;
            acc
      in
      group_fold rel aggs needs_tuple acc i)
    indexes;
  List.rev !order

let group_by_spill ?(name = "gamma") rel ~key ~aggs ~spill_above =
  let schema = Relation.schema rel in
  let key_positions = Array.of_list (Schema.positions schema key) in
  let key_arity = Array.length key_positions in
  let out_schema =
    Schema.of_list
      (List.map (fun n -> Schema.attr_at schema (Schema.position schema n)) key
      @ List.map (fun (agg_name, _) -> Schema.attr agg_name Value.TFloat) aggs)
  in
  let aggs = Array.of_list (List.map snd aggs) in
  let n_aggs = Array.length aggs in
  let needs_tuple = Array.exists (function Count -> false | _ -> true) aggs in
  let n = Relation.cardinality rel in
  let key_of = Relation.extractor rel key_positions in
  ignore (Relation.scan rel);
  let groups =
    if n <= spill_above then
      group_run rel aggs needs_tuple n_aggs key_of (Array.init n Fun.id)
    else begin
      (* each key lands in exactly one partition, so merging partition
         results by first-occurrence row reproduces global first-seen order *)
      let parts = spill_partition "groupby" n key_of in
      let per_part =
        Array.map (group_run rel aggs needs_tuple n_aggs key_of) parts
      in
      let all = Array.concat (Array.to_list (Array.map Array.of_list per_part)) in
      Array.sort (fun (a, _, _) (b, _, _) -> compare (a : int) b) all;
      Array.to_list all
    end
  in
  let out = Relation.create ~capacity:(List.length groups) name out_schema in
  List.iter
    (fun (_, k, { sums; count; extremes }) ->
      let agg_values =
        Array.mapi
          (fun j agg ->
            let x =
              match agg with
              | Count -> float_of_int !count
              | Sum _ -> sums.(j)
              | Avg _ -> sums.(j) /. float_of_int !count
              | Min _ | Max _ -> extremes.(j)
            in
            Value.Float x)
          aggs
      in
      Relation.append out (Array.append (Keypack.key_tuple key_arity k) agg_values))
    groups;
  out

let natural_join_spill ?(name = "join") a b ~spill_above =
  let build_card = Stdlib.min (Relation.cardinality a) (Relation.cardinality b) in
  if build_card <= spill_above then natural_join ~name a b
  else begin
    let sa = Relation.schema a and sb = Relation.schema b in
    let key_names = Schema.common sa sb in
    let ka = Array.of_list (Schema.positions sa key_names) in
    let kb = Array.of_list (Schema.positions sb key_names) in
    let out_schema = Schema.join sa sb in
    let b_extra =
      Array.of_list
        (List.filter_map
           (fun n -> if Schema.mem sa n then None else Some (Schema.position sb n))
           (Schema.names sb))
    in
    let out = Relation.create name out_schema in
    let build_rel, probe_rel, build_key, probe_key, build_is_a =
      if Relation.cardinality a <= Relation.cardinality b then (a, b, ka, kb, true)
      else (b, a, kb, ka, false)
    in
    let build_of = Relation.extractor build_rel build_key in
    let probe_of = Relation.extractor probe_rel probe_key in
    ignore (Relation.scan probe_rel);
    let build_parts =
      spill_partition "join-build" (Relation.cardinality build_rel) build_of
    in
    let probe_parts =
      spill_partition "join-probe" (Relation.cardinality probe_rel) probe_of
    in
    (* per-partition (probe row, build row) matches, in the in-memory probe
       emission order for the rows of that partition *)
    let matches = ref [] in
    Array.iteri
      (fun p build_idx ->
        let idx = Hybrid.create (Stdlib.max 16 (Array.length build_idx)) in
        Array.iter
          (fun i ->
            let k = build_of i in
            match Hybrid.find_opt idx k with
            | Some l -> l := i :: !l
            | None -> Hybrid.add idx k (ref [ i ]))
          build_idx;
        let part = ref [] in
        Array.iter
          (fun j ->
            match Hybrid.find_opt idx (probe_of j) with
            | None -> ()
            | Some rows -> List.iter (fun i -> part := (j, i) :: !part) !rows)
          probe_parts.(p);
        matches := Array.of_list (List.rev !part) :: !matches)
      build_parts;
    (* each probe row lives in exactly one partition: a stable sort on the
       global probe index interleaves partitions back into probe order while
       keeping each probe row's build matches in most-recent-first order *)
    let all = Array.concat (List.rev !matches) in
    Array.stable_sort (fun (ja, _) (jb, _) -> compare (ja : int) jb) all;
    Array.iter
      (fun (j, i) ->
        if build_is_a then Relation.append_concat out a i b b_extra j
        else Relation.append_concat out a j b b_extra i)
      all;
    out
  end

let sort_by ?(name = "sort") rel attr_names =
  let schema = Relation.schema rel in
  let positions = Array.of_list (Schema.positions schema attr_names) in
  let arr = Array.of_list (Relation.to_list rel) in
  Array.sort
    (fun a b -> Tuple.compare (Tuple.project a positions) (Tuple.project b positions))
    arr;
  Relation.of_list name schema (Array.to_list arr)
