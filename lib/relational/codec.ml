(* Binary codec for the durable formats of the resilience layer and the
   paged columnar store: fixed-width little-endian primitives plus
   value/tuple/key encodings.

   Writers append to a [Buffer.t]; readers consume a [reader] cursor over a
   string and raise [Decode_error] on any malformed or truncated input —
   callers (WAL replay, checkpoint restore, page decode) turn that into
   "stop at the last valid prefix" or a located diagnostic rather than
   crashing. Errors carry the BYTE OFFSET at which the failing read began
   (mirroring [Util.Csvio.Malformed]'s source position for text input), so
   a corrupt page or checkpoint can be pointed at, not just detected. The
   encoding is self-contained per record: no global symbol table, so a
   record can be decoded out of any valid byte range. *)

type error = { offset : int; reason : string }
(* [offset] is the position in the decoded string where the failing read
   started; [-1] when the error is semantic rather than positional (e.g. a
   registry lookup that found no decoder). *)

exception Decode_error of error

let error_message { offset; reason } =
  if offset < 0 then reason
  else Printf.sprintf "%s at byte %d" reason offset

let () =
  Printexc.register_printer (function
    | Decode_error e -> Some ("Relational.Codec.Decode_error: " ^ error_message e)
    | _ -> None)

let fail ?(offset = -1) reason = raise (Decode_error { offset; reason })

type reader = { buf : string; mutable pos : int }

let reader ?(pos = 0) buf = { buf; pos }

let eof r = r.pos >= String.length r.buf

let remaining r = String.length r.buf - r.pos

let fail_at r reason = fail ~offset:r.pos reason

let need r n =
  if remaining r < n then
    fail_at r (Printf.sprintf "truncated input: need %d bytes" n)

(* ---- primitives ---- *)

let u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

let read_u8 r =
  need r 1;
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

(* 32-bit unsigned little-endian (lengths, checksums) *)
let u32 b n = Buffer.add_int32_le b (Int32.of_int n)

let read_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.buf r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

(* OCaml int as 8-byte little-endian (sign-preserving through Int64) *)
let i64 b n = Buffer.add_int64_le b (Int64.of_int n)

let read_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

(* floats by their exact bit pattern: decode(encode x) is bit-identical *)
let f64 b x = Buffer.add_int64_le b (Int64.bits_of_float x)

let read_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

let read_str r =
  let start = r.pos in
  let n = read_u32 r in
  if n > remaining r then fail ~offset:start "truncated string";
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

(* ---- values and tuples ---- *)

let value b = function
  | Value.Null -> u8 b 0
  | Value.Int n ->
      u8 b 1;
      i64 b n
  | Value.Float x ->
      u8 b 2;
      f64 b x
  | Value.Str s ->
      u8 b 3;
      str b s

let read_value r =
  let start = r.pos in
  match read_u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Int (read_i64 r)
  | 2 -> Value.Float (read_f64 r)
  | 3 -> Value.Str (read_str r)
  | tag -> fail ~offset:start (Printf.sprintf "bad value tag %d" tag)

let tuple b (t : Tuple.t) =
  u32 b (Array.length t);
  Array.iter (value b) t

let read_tuple r : Tuple.t =
  let start = r.pos in
  let n = read_u32 r in
  (* cheap sanity bound: a tuple cell takes at least one tag byte *)
  if n > remaining r then fail ~offset:start "truncated tuple";
  Array.init n (fun _ -> read_value r)

(* ---- packed keys ---- *)

let key b = function
  | Keypack.P k ->
      u8 b 0;
      i64 b k
  | Keypack.B t ->
      u8 b 1;
      tuple b t

let read_key r =
  let start = r.pos in
  match read_u8 r with
  | 0 -> Keypack.P (read_i64 r)
  | 1 -> Keypack.B (read_tuple r)
  | tag -> fail ~offset:start (Printf.sprintf "bad key tag %d" tag)

(* ---- checksummed frames ---- *)

(* [len u32][crc32 u32][payload]: the framing used for every WAL record,
   checkpoint body and store page. A frame only decodes if it is completely
   present and its checksum matches, so a torn tail or flipped bit reads as
   "no frame" — located at the frame's start. *)

let frame b payload =
  u32 b (String.length payload);
  u32 b (Util.Checksum.crc32 payload);
  Buffer.add_string b payload

let read_frame r =
  let start = r.pos in
  let len = read_u32 r in
  let crc = read_u32 r in
  if len > remaining r then fail ~offset:start "truncated frame";
  if Util.Checksum.crc32_sub r.buf ~pos:r.pos ~len <> crc then
    fail ~offset:start "frame checksum mismatch";
  let payload = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  payload
