(** Structured filter predicates, inspectable by the aggregate engines.

    [Additive_ineq] is the additive-inequality theta-join condition of the
    paper's Section 2.3 (sub-gradients of non-polynomial loss functions). *)

type t =
  | True
  | Ge of string * Value.t  (** attribute >= constant *)
  | Lt of string * Value.t  (** attribute < constant *)
  | Eq of string * Value.t
  | In of string * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Additive_ineq of (string * float) list * float
      (** [Additive_ineq ([(a1,w1);...], c)] holds when
          [w1*a1 + ... + wn*an > c]. *)

val attrs : t -> string list
(** Attributes mentioned, with repetitions. *)

val eval : Schema.t -> Tuple.t -> t -> bool

val compile : Schema.t -> t -> Tuple.t -> bool
(** Resolve attribute positions once; the returned closure is used on hot
    per-tuple paths. *)

val compile_cols : Schema.t -> Column.t array -> t -> int -> bool
(** Columnar variant of {!compile}: the closure tests a row INDEX against
    the given columns (positionally aligned with the schema), with typed
    fast paths and no tuple materialisation. *)

val to_sql : t -> string
(** SQL rendering (paper Section 2 presents the aggregate forms as SQL). *)

val pp : Format.formatter -> t -> unit
