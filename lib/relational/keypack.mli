(** Packed join/group-by keys: multi-attribute all-int keys packed into one
    immediate int (injective, lexicographically monotone), with a boxed-tuple
    fallback for keys that do not fit. Routing depends only on the key
    values, so column-reading extractors and tuple-reading packers agree. *)

type key = P of int | B of Tuple.t

val key_equal : key -> key -> bool
val key_hash : key -> int

val key_compare : key -> key -> int
(** Total order (packed before boxed) — deterministic serialisation order
    for checkpoint writers iterating hash tables. *)

val shard_of_key : shards:int -> key -> int
(** [shard_of_key ~shards k] maps [k] to a shard in [\[0, shards)]. Depends
    only on the key value: packed keys and their boxed round trips route
    identically. [shards <= 1] always routes to shard 0. *)

val field_width : int -> int
(** Bits per field at the given key arity (62 for arity <= 1, [62/k] else). *)

val key_of_tuple : int array -> Tuple.t -> key
(** Project the positions out of a boxed tuple and pack if possible. *)

val extractor : Column.t array -> int -> key
(** [extractor cols] compiles a key reader over the given key columns (in
    key order): [extractor cols i] is the key of row [i], packed without
    boxing when every field is a fitting int. Captures the column
    representations at compile time — build after the relation is loaded. *)

val unpack : int -> int -> Tuple.t
(** [unpack k p] recovers the [k] fields of a packed key as [Value.Int]s. *)

val key_tuple : int -> key -> Tuple.t
(** Boxed view of a key at the given arity ({!unpack} or the fallback). *)

module Itbl : Hashtbl.S with type key = int

(** Hash table keyed by {!key}: packed keys hash as ints, fallback keys as
    boxed tuples. *)
module Hybrid : sig
  type 'a t

  val create : int -> 'a t
  val find_opt : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool
  val add : 'a t -> key -> 'a -> unit
  val replace : 'a t -> key -> 'a -> unit
  val remove : 'a t -> key -> unit
  val length : 'a t -> int
  val clear : 'a t -> unit
  val iter : (key -> 'a -> unit) -> 'a t -> unit
  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
end
