(* Tuples are flat arrays of values, positionally aligned with a schema. *)

type t = Value.t array

let arity = Array.length

let get (t : t) i = t.(i)

let project (t : t) positions = Array.map (fun i -> t.(i)) positions

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop i = i = n || (Value.equal a.(i) b.(i) && loop (i + 1)) in
  loop 0

let compare (a : t) (b : t) =
  let n = Stdlib.min (Array.length a) (Array.length b) in
  let rec loop i =
    if i = n then Stdlib.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let concat (a : t) (b : t) : t = Array.append a b

let to_string (t : t) =
  String.concat "," (Array.to_list (Array.map Value.to_string t))

let pp ppf t = Format.fprintf ppf "(%s)" (to_string t)

(* Hashtbl key module for tuple-keyed indexes. *)
module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Key)
