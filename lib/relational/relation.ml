(* In-memory relations: a schema plus typed columns (see [Column]).

   Relations are bags (duplicates allowed); set semantics is available via
   [distinct]. Mutation is append-only — the IVM layer models deletions with
   Z-multiplicities instead (see [Fivm.Delta]).

   The physical layout is columnar: one typed column per attribute, unboxed
   [int array] / [float array] where the schema allows, promoted to boxed
   values only when a stored value demands it. Boxed [Tuple.t]s remain the
   interchange format at the edges ([append], [get], [iter], CSV); hot paths
   scan columns via {!scan} and pack keys via {!extractor} instead. *)

type t = {
  name : string;
  schema : Schema.t;
  cols : Column.t array;
  mutable size : int;
  mutable capacity : int;
}

(* Observability: columnar scans vs. boxed-tuple materialisations, so the
   migration away from row-at-a-time access is visible in metrics. *)
let c_column_scans = Obs.counter "relational.column_scans"
let c_boxed_tuples = Obs.counter "relational.boxed_tuples"

let create ?(capacity = 16) name schema =
  let capacity = Stdlib.max 1 capacity in
  {
    name;
    schema;
    cols =
      Array.map
        (fun (a : Schema.attr) -> Column.create a.ty capacity)
        (Array.of_list (Schema.attrs schema));
    size = 0;
    capacity;
  }

let name t = t.name
let schema t = t.schema
let cardinality t = t.size

let reserve t =
  if t.size = t.capacity then begin
    let bigger = 2 * t.capacity in
    Array.iter (fun c -> Column.grow c bigger) t.cols;
    t.capacity <- bigger
  end

let append t tuple =
  if Array.length tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.append: arity mismatch on %s (%d vs %d)" t.name
         (Array.length tuple) (Schema.arity t.schema));
  reserve t;
  let i = t.size in
  Array.iteri (fun j c -> Column.set c i tuple.(j)) t.cols;
  t.size <- i + 1

let of_list name schema tuples =
  let t = create ~capacity:(Stdlib.max 1 (List.length tuples)) name schema in
  List.iter (append t) tuples;
  t

(* ---- columnar access (hot paths) ---- *)

let columns t = t.cols
let column t j = t.cols.(j)

let scan t =
  Obs.incr c_column_scans;
  Array.map Column.data t.cols

let extractor t positions =
  Keypack.extractor (Array.map (fun p -> t.cols.(p)) positions)

let float_at t i pos = Column.float_at t.cols.(pos) i
let int_at t i pos = Column.int_at t.cols.(pos) i

(* Row cursor: attribute reads on row [i] without materialising a tuple. *)
module Row = struct
  type nonrec t = { rel : t; mutable i : int }

  let value r pos = Column.get r.rel.cols.(pos) r.i
  let float r pos = Column.float_at r.rel.cols.(pos) r.i
  let int r pos = Column.int_at r.rel.cols.(pos) r.i
end

let row t i = { Row.rel = t; i }

(* ---- append fast paths (no intermediate boxed tuple) ---- *)

(* Append row [i] of [src]; the caller guarantees compatible schemas. *)
let append_from t src i =
  reserve t;
  let d = t.size in
  for j = 0 to Array.length t.cols - 1 do
    Column.copy_cell ~src:src.cols.(j) ~src_i:i ~dst:t.cols.(j) ~dst_i:d
  done;
  t.size <- d + 1

(* Append the projection of row [i] of [src] onto [positions]. *)
let append_project t src positions i =
  reserve t;
  let d = t.size in
  for j = 0 to Array.length positions - 1 do
    Column.copy_cell ~src:src.cols.(positions.(j)) ~src_i:i ~dst:t.cols.(j) ~dst_i:d
  done;
  t.size <- d + 1

(* Append row [i] of [a] followed by [b]'s [b_positions] of row [j] — the
   natural-join output row, built column-to-column. *)
let append_concat t a i b b_positions j =
  reserve t;
  let d = t.size in
  let na = Array.length a.cols in
  for p = 0 to na - 1 do
    Column.copy_cell ~src:a.cols.(p) ~src_i:i ~dst:t.cols.(p) ~dst_i:d
  done;
  for q = 0 to Array.length b_positions - 1 do
    Column.copy_cell ~src:b.cols.(b_positions.(q)) ~src_i:j ~dst:t.cols.(na + q) ~dst_i:d
  done;
  t.size <- d + 1

(* Wrap freshly built columns as a relation; the caller transfers ownership
   and guarantees every column holds at least [size] cells. *)
let of_columns name schema cols size =
  let capacity =
    Array.fold_left
      (fun acc c -> Stdlib.min acc (Column.capacity c))
      (Stdlib.max 1 size) cols
  in
  { name; schema; cols; size; capacity }

(* Whole-column projection: the output columns are copies of the selected
   input columns, no per-row work at all. *)
let of_projection name src positions out_schema =
  {
    name;
    schema = out_schema;
    cols = Array.map (fun p -> Column.sub src.cols.(p) src.size) positions;
    size = src.size;
    capacity = Stdlib.max 1 src.size;
  }

(* ---- boxed access (edges and compatibility) ---- *)

let box_row t i = Array.map (fun c -> Column.get c i) t.cols

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Relation.get: out of bounds";
  Obs.incr c_boxed_tuples;
  box_row t i

let iter f t =
  Obs.add c_boxed_tuples t.size;
  for i = 0 to t.size - 1 do
    f (box_row t i)
  done

let iteri f t =
  Obs.add c_boxed_tuples t.size;
  for i = 0 to t.size - 1 do
    f i (box_row t i)
  done

let fold f init t =
  Obs.add c_boxed_tuples t.size;
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc (box_row t i)
  done;
  !acc

let to_list t =
  Obs.add c_boxed_tuples t.size;
  List.init t.size (fun i -> box_row t i)

let copy t =
  {
    t with
    cols = Array.map (fun c -> Column.sub c t.size) t.cols;
    capacity = Stdlib.max 1 t.size;
  }

let value_at t i attr =
  if i < 0 || i >= t.size then invalid_arg "Relation.value_at: out of bounds";
  Column.get t.cols.(Schema.position t.schema attr) i

(* Number of values = cardinality x arity; the paper's factorisation-size
   metric counts values, not tuples. *)
let value_count t = t.size * Schema.arity t.schema

(* Approximate CSV byte size: what the CSV serialisation would produce.
   Computed column-wise without materialising tuples or the string. *)
let csv_size t =
  let bytes = ref 0 in
  Array.iter
    (fun c ->
      match Column.data c with
      | Column.Ints a ->
          for i = 0 to t.size - 1 do
            bytes := !bytes + String.length (string_of_int a.(i)) + 1
          done
      | Column.Floats a ->
          for i = 0 to t.size - 1 do
            bytes := !bytes + String.length (Value.to_string (Value.Float a.(i))) + 1
          done
      | Column.Boxed a ->
          for i = 0 to t.size - 1 do
            bytes := !bytes + String.length (Value.to_string a.(i)) + 1
          done)
    t.cols;
  !bytes

let csv_rows t =
  List.init t.size (fun i ->
      Array.to_list (Array.map (fun c -> Value.to_string (Column.get c i)) t.cols))

(* Malformed rows raise [Util.Csvio.Malformed] with their 1-based source
   position; [first_line] anchors row 0 (pass 2 for data under a header
   line, or use {!of_csv_rows_located} when blank lines may interleave). *)
let of_csv_located name schema (rows : (int * string list) list) =
  let tys = Array.of_list (List.map (fun (a : Schema.attr) -> a.ty) (Schema.attrs schema)) in
  let t = create ~capacity:(Stdlib.max 1 (List.length rows)) name schema in
  List.iter
    (fun (line, row) ->
      let cells = Array.of_list row in
      if Array.length cells <> Array.length tys then
        Util.Csvio.malformed ~line ~column:(Array.length cells)
          (Printf.sprintf "expected %d cells for schema of %s, got %d"
             (Array.length tys) name (Array.length cells));
      append t
        (Array.mapi
           (fun i cell ->
             try Value.of_string tys.(i) cell
             with _ ->
               Util.Csvio.malformed ~line ~column:(i + 1)
                 (Printf.sprintf "cannot parse %S as %s" cell
                    (Value.ty_to_string tys.(i))))
           cells))
    rows;
  t

let of_csv_rows ?(first_line = 1) name schema rows =
  of_csv_located name schema (List.mapi (fun i row -> (first_line + i, row)) rows)

let of_csv_rows_located = of_csv_located

let distinct_count t =
  let all = Array.init (Schema.arity t.schema) Fun.id in
  let key = extractor t all in
  let seen = Keypack.Hybrid.create (Stdlib.max 16 t.size) in
  for i = 0 to t.size - 1 do
    let k = key i in
    if not (Keypack.Hybrid.mem seen k) then Keypack.Hybrid.add seen k ()
  done;
  Keypack.Hybrid.length seen

let pp ppf t =
  Format.fprintf ppf "%s%a [%d tuples]@\n" t.name Schema.pp t.schema t.size;
  let limit = Stdlib.min t.size 20 in
  for i = 0 to limit - 1 do
    Format.fprintf ppf "  %a@\n" Tuple.pp (box_row t i)
  done;
  if t.size > limit then Format.fprintf ppf "  ... (%d more)@\n" (t.size - limit)
