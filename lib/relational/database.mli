(** A named collection of relations joined by the feature-extraction query
    (their natural join). *)

type t

type chunks = (Relation.t -> unit) -> unit
(** A sequential chunk iterator over an out-of-core relation: calls its
    argument once per chunk, in global row order. Each chunk is an ordinary
    in-memory {!Relation.t} slice sharing the full relation's schema. *)

val create : string -> Relation.t list -> t
(** Raises on duplicate relation names. *)

val create_streamed : string -> (Relation.t * chunks option) list -> t
(** Like {!create}, but relations paired with [Some chunks] are out-of-core:
    the given relation is a stub carrying the true name, schema and
    cardinality while its cells live on disk. Engines must scan such
    relations through {!stream} and never read the stub's columns. *)

val stream : t -> string -> chunks option
(** The chunk iterator for an out-of-core relation, if this one is. *)

val streamed_names : t -> string list

val name : t -> string
val relations : t -> Relation.t list
val relation : t -> string -> Relation.t
val total_cardinality : t -> int
val total_value_count : t -> int
val total_csv_size : t -> int

val join_tree : t -> Join_tree.t
(** @raise Join_tree.Cyclic when the schema is cyclic. *)

val materialise_join : t -> Relation.t
(** The materialised feature-extraction query (structure-agnostic path). *)

val attribute_names : t -> string list
val pp : Format.formatter -> t -> unit
