(** Physical relational operators (tuple-at-a-time), used by the
    structure-agnostic baselines and as the semantic reference for the
    factorised engines. *)

val select : ?name:string -> Predicate.t -> Relation.t -> Relation.t
val select_fn : ?name:string -> (Tuple.t -> bool) -> Relation.t -> Relation.t

val project : ?name:string -> Relation.t -> string list -> Relation.t
(** Bag projection onto the named attributes, in that order. *)

val distinct : ?name:string -> Relation.t -> Relation.t
val project_distinct : ?name:string -> Relation.t -> string list -> Relation.t
val union : ?name:string -> Relation.t -> Relation.t -> Relation.t

val build_index : Relation.t -> int array -> int list ref Keypack.Hybrid.t
(** Hash index: packed key (projection on the given positions) to row ids,
    most recently appended first. *)

val natural_join : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Hash join on common attributes; Cartesian product when none. Output
    schema per {!Schema.join}. *)

val natural_join_all : ?name:string -> Relation.t list -> Relation.t
(** Left-deep chain of natural joins. Raises on the empty list. *)

val semijoin : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Tuples of the first relation with at least one partner in the second. *)

type agg =
  | Count
  | Sum of (Tuple.t -> float)
  | Min of (Tuple.t -> float)
  | Max of (Tuple.t -> float)
  | Avg of (Tuple.t -> float)

val sum_of_attr : Schema.t -> string -> agg
(** [Sum] of the named numeric attribute. *)

val group_by :
  ?name:string -> Relation.t -> key:string list -> aggs:(string * agg) list -> Relation.t
(** Group-by aggregation; output = key attributes then one float column per
    named aggregate. *)

val aggregate : Relation.t -> agg list -> float list
(** Scalar (ungrouped) aggregation. *)

val group_by_spill :
  ?name:string ->
  Relation.t ->
  key:string list ->
  aggs:(string * agg) list ->
  spill_above:int ->
  Relation.t
(** {!group_by} with bounded hash state: above [spill_above] input rows, row
    indexes are partitioned to disk by key shard and each partition grouped
    separately. Output rows are emitted in global first-seen key order and
    the result is BITWISE identical for every [spill_above] (only the hash
    table size and [store.spills] / [store.spill_rows] counters change).
    Note the emission order is first-seen, not {!group_by}'s hash order. *)

val natural_join_spill :
  ?name:string -> Relation.t -> Relation.t -> spill_above:int -> Relation.t
(** {!natural_join} with bounded hash state: above [spill_above] build-side
    rows, both sides partition their row indexes to disk by join-key shard
    and partitions join independently; a stable merge on the global probe
    index restores the exact in-memory emission order, so the result is
    bitwise identical to {!natural_join} at every threshold. *)

val sort_by : ?name:string -> Relation.t -> string list -> Relation.t
