(* Structured filter predicates.

   Keeping predicates first-order (rather than opaque closures) lets the
   aggregate engines inspect them: decision-tree costs push threshold and
   set-membership filters into aggregates (paper Section 2.2), and the
   additive-inequality predicate is the new theta-join condition of Section
   2.3. *)

type t =
  | True
  | Ge of string * Value.t (* attr >= const *)
  | Lt of string * Value.t (* attr < const *)
  | Eq of string * Value.t
  | In of string * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Additive_ineq of (string * float) list * float
      (* sum_i w_i * attr_i > c, over numeric attributes *)

let rec attrs = function
  | True -> []
  | Ge (a, _) | Lt (a, _) | Eq (a, _) | In (a, _) -> [ a ]
  | Not p -> attrs p
  | And (p, q) | Or (p, q) -> attrs p @ attrs q
  | Additive_ineq (terms, _) -> List.map fst terms

let rec eval schema (tuple : Tuple.t) = function
  | True -> true
  | Ge (a, c) -> Value.compare tuple.(Schema.position schema a) c >= 0
  | Lt (a, c) -> Value.compare tuple.(Schema.position schema a) c < 0
  | Eq (a, c) -> Value.equal tuple.(Schema.position schema a) c
  | In (a, cs) ->
      let v = tuple.(Schema.position schema a) in
      List.exists (Value.equal v) cs
  | Not p -> not (eval schema tuple p)
  | And (p, q) -> eval schema tuple p && eval schema tuple q
  | Or (p, q) -> eval schema tuple p || eval schema tuple q
  | Additive_ineq (terms, c) ->
      let s =
        List.fold_left
          (fun acc (a, w) ->
            acc +. (w *. Value.to_float tuple.(Schema.position schema a)))
          0.0 terms
      in
      s > c

(* Compile to a closure with attribute positions resolved once; used on hot
   paths where per-tuple name lookups would dominate. *)
let compile schema p =
  let rec go = function
    | True -> fun _ -> true
    | Ge (a, c) ->
        let i = Schema.position schema a in
        fun (t : Tuple.t) -> Value.compare t.(i) c >= 0
    | Lt (a, c) ->
        let i = Schema.position schema a in
        fun (t : Tuple.t) -> Value.compare t.(i) c < 0
    | Eq (a, c) ->
        let i = Schema.position schema a in
        fun (t : Tuple.t) -> Value.equal t.(i) c
    | In (a, cs) ->
        let i = Schema.position schema a in
        fun (t : Tuple.t) -> List.exists (Value.equal t.(i)) cs
    | Not p ->
        let f = go p in
        fun t -> not (f t)
    | And (p, q) ->
        let f = go p and g = go q in
        fun t -> f t && g t
    | Or (p, q) ->
        let f = go p and g = go q in
        fun t -> f t || g t
    | Additive_ineq (terms, c) ->
        let compiled =
          List.map (fun (a, w) -> (Schema.position schema a, w)) terms
        in
        fun (t : Tuple.t) ->
          List.fold_left
            (fun acc (i, w) -> acc +. (w *. Value.to_float t.(i)))
            0.0 compiled
          > c
  in
  go p

(* Columnar compilation: resolve each attribute to its column once and
   specialise the comparison to the column representation, so scans test
   rows by index without materialising tuples. The generic fallback boxes
   just the one referenced cell, preserving [Value.compare] semantics for
   promoted or cross-typed columns. *)
let compile_cols schema (cols : Column.t array) p =
  let col a = cols.(Schema.position schema a) in
  let rec go = function
    | True -> fun _ -> true
    | Ge (a, c) -> (
        let cl = col a in
        match (Column.data cl, c) with
        | Column.Ints arr, Value.Int x -> fun i -> arr.(i) >= x
        | Column.Floats arr, Value.Float x -> fun i -> arr.(i) >= x
        | _ -> fun i -> Value.compare (Column.get cl i) c >= 0)
    | Lt (a, c) -> (
        let cl = col a in
        match (Column.data cl, c) with
        | Column.Ints arr, Value.Int x -> fun i -> arr.(i) < x
        | Column.Floats arr, Value.Float x -> fun i -> arr.(i) < x
        | _ -> fun i -> Value.compare (Column.get cl i) c < 0)
    | Eq (a, c) -> (
        let cl = col a in
        match (Column.data cl, c) with
        | Column.Ints arr, Value.Int x -> fun i -> arr.(i) = x
        | Column.Floats arr, Value.Float x -> fun i -> arr.(i) = x
        | _ -> fun i -> Value.equal (Column.get cl i) c)
    | In (a, cs) -> (
        let cl = col a in
        match Column.data cl with
        | Column.Ints arr
          when List.for_all (function Value.Int _ -> true | _ -> false) cs ->
            let xs = List.map Value.to_int cs in
            fun i -> List.mem arr.(i) xs
        | _ -> fun i -> List.exists (Value.equal (Column.get cl i)) cs)
    | Not p ->
        let f = go p in
        fun i -> not (f i)
    | And (p, q) ->
        let f = go p and g = go q in
        fun i -> f i && g i
    | Or (p, q) ->
        let f = go p and g = go q in
        fun i -> f i || g i
    | Additive_ineq (terms, c) ->
        let compiled = List.map (fun (a, w) -> (col a, w)) terms in
        fun i ->
          List.fold_left
            (fun acc (cl, w) -> acc +. (w *. Column.float_at cl i))
            0.0 compiled
          > c
  in
  go p

(* SQL rendering of a predicate (the paper presents the aggregate forms as
   SQL in Section 2). *)
let rec to_sql = function
  | True -> "TRUE"
  | Ge (a, c) -> Printf.sprintf "%s >= %s" a (Value.to_string c)
  | Lt (a, c) -> Printf.sprintf "%s < %s" a (Value.to_string c)
  | Eq (a, c) -> Printf.sprintf "%s = %s" a (Value.to_string c)
  | In (a, cs) ->
      Printf.sprintf "%s IN (%s)" a
        (String.concat ", " (List.map Value.to_string cs))
  | Not p -> Printf.sprintf "NOT (%s)" (to_sql p)
  | And (p, q) -> Printf.sprintf "(%s AND %s)" (to_sql p) (to_sql q)
  | Or (p, q) -> Printf.sprintf "(%s OR %s)" (to_sql p) (to_sql q)
  | Additive_ineq (terms, c) ->
      Printf.sprintf "%s > %g"
        (String.concat " + "
           (List.map (fun (a, w) -> Printf.sprintf "%g * %s" w a) terms))
        c

let rec pp ppf = function
  | True -> Format.fprintf ppf "true"
  | Ge (a, c) -> Format.fprintf ppf "%s >= %a" a Value.pp c
  | Lt (a, c) -> Format.fprintf ppf "%s < %a" a Value.pp c
  | Eq (a, c) -> Format.fprintf ppf "%s = %a" a Value.pp c
  | In (a, cs) ->
      Format.fprintf ppf "%s in (%s)" a
        (String.concat ", " (List.map Value.to_string cs))
  | Not p -> Format.fprintf ppf "not (%a)" pp p
  | And (p, q) -> Format.fprintf ppf "(%a and %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a or %a)" pp p pp q
  | Additive_ineq (terms, c) ->
      Format.fprintf ppf "%s > %g"
        (String.concat " + "
           (List.map (fun (a, w) -> Printf.sprintf "%g*%s" w a) terms))
        c
