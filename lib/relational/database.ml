(* A database: a named collection of relations plus the feature-extraction
   query they participate in (their natural join), with size accounting used
   throughout the experiments. *)

type chunks = (Relation.t -> unit) -> unit

type t = {
  name : string;
  relations : Relation.t list;
  (* Out-of-core relations: name -> chunk iterator. A streamed relation's
     entry in [relations] is a STUB — correct name, schema and cardinality
     (so planners cost and order it normally) but no resident cells; engines
     that find a stream here must scan via the chunk iterator and must never
     read the stub's columns. *)
  streams : (string, chunks) Hashtbl.t;
}

let check_distinct relations =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let n = Relation.name r in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Database.create: duplicate relation %s" n);
      Hashtbl.add seen n ())
    relations

let create name relations =
  check_distinct relations;
  { name; relations; streams = Hashtbl.create 4 }

let create_streamed name entries =
  let relations = List.map fst entries in
  check_distinct relations;
  let streams = Hashtbl.create 4 in
  List.iter
    (fun (r, chunks) ->
      match chunks with
      | Some c -> Hashtbl.replace streams (Relation.name r) c
      | None -> ())
    entries;
  { name; relations; streams }

let stream t rel_name = Hashtbl.find_opt t.streams rel_name
let streamed_names t = Hashtbl.fold (fun n _ acc -> n :: acc) t.streams []

let name t = t.name
let relations t = t.relations

let relation t rel_name =
  match List.find_opt (fun r -> Relation.name r = rel_name) t.relations with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database.relation: unknown %s" rel_name)

let total_cardinality t =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 t.relations

let total_value_count t =
  List.fold_left (fun acc r -> acc + Relation.value_count r) 0 t.relations

let total_csv_size t =
  List.fold_left (fun acc r -> acc + Relation.csv_size r) 0 t.relations

let join_tree t = Join_tree.build t.relations

(* The feature-extraction query result, fully materialised (the
   structure-agnostic path of Figure 2). Join order follows a leaf-to-root
   traversal of the join tree so intermediate results stay join-connected. *)
let materialise_join t =
  let jt = join_tree t in
  let rec order (node : Join_tree.node) =
    node.rel :: List.concat_map order node.children
  in
  Ops.natural_join_all ~name:(t.name ^ "_join") (order (Join_tree.tree jt))

let attribute_names t =
  List.sort_uniq compare
    (List.concat_map (fun r -> Schema.names (Relation.schema r)) t.relations)

let pp ppf t =
  Format.fprintf ppf "database %s:@\n" t.name;
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s%a: %d tuples@\n" (Relation.name r) Schema.pp
        (Relation.schema r) (Relation.cardinality r))
    t.relations
