(* Typed columns: the unboxed physical representation behind [Relation].

   A column starts in the representation its declared type suggests —
   [Ints] for [Value.TInt] (dictionary-encoded categoricals and keys, see
   [Util.Interner]), [Floats] for [Value.TFloat] (continuous features,
   stored in OCaml's flat float arrays), [Boxed] for [Value.TStr] — and
   promotes itself to [Boxed] the first time a value that does not fit the
   typed representation is stored (a [Null] from an outer join, a stray
   constructor). Promotion rewrites the already-stored prefix as the
   equivalent boxed values, so reads observe exactly the [Value.t]s that
   were appended: the columnar store is semantically indistinguishable from
   the old array-of-boxed-tuples row store. *)

type data =
  | Ints of int array
  | Floats of float array
  | Boxed of Value.t array

type t = { mutable data : data }

let create ty capacity =
  let capacity = Stdlib.max 1 capacity in
  {
    data =
      (match ty with
      | Value.TInt -> Ints (Array.make capacity 0)
      | Value.TFloat -> Floats (Array.make capacity 0.0)
      | Value.TStr -> Boxed (Array.make capacity Value.Null));
  }

let of_ints a = { data = Ints (if Array.length a = 0 then [| 0 |] else a) }
let of_floats a = { data = Floats (if Array.length a = 0 then [| 0.0 |] else a) }
let of_boxed a = { data = Boxed (if Array.length a = 0 then [| Value.Null |] else a) }
let data t = t.data

let capacity t =
  match t.data with
  | Ints a -> Array.length a
  | Floats a -> Array.length a
  | Boxed a -> Array.length a

(* Box cell [i]. No bounds check: [Relation] guards the logical size. *)
let get t i =
  match t.data with
  | Ints a -> Value.Int a.(i)
  | Floats a -> Value.Float a.(i)
  | Boxed a -> a.(i)

(* Numeric views with [Value.to_float]/[to_int] semantics. *)
let float_at t i =
  match t.data with
  | Ints a -> float_of_int a.(i)
  | Floats a -> a.(i)
  | Boxed a -> Value.to_float a.(i)

let int_at t i =
  match t.data with
  | Ints a -> a.(i)
  | Floats a -> int_of_float a.(i)
  | Boxed a -> Value.to_int a.(i)

(* Rewrite the whole backing array boxed. Slots beyond the relation's
   logical size hold defaults (0 / 0.0) whose boxed images are never read. *)
let promote t =
  match t.data with
  | Boxed _ -> ()
  | Ints a -> t.data <- Boxed (Array.map (fun x -> Value.Int x) a)
  | Floats a -> t.data <- Boxed (Array.map (fun x -> Value.Float x) a)

let rec set t i v =
  match (t.data, v) with
  | Ints a, Value.Int x -> a.(i) <- x
  | Floats a, Value.Float x -> a.(i) <- x
  | Boxed a, _ -> a.(i) <- v
  | (Ints _ | Floats _), _ ->
      promote t;
      set t i v

(* Copy cell [src_i] of [src] into cell [dst_i] of [dst] without boxing when
   the representations agree (the common case for same-typed schemas). *)
let copy_cell ~src ~src_i ~dst ~dst_i =
  match (src.data, dst.data) with
  | Ints a, Ints b -> b.(dst_i) <- a.(src_i)
  | Floats a, Floats b -> b.(dst_i) <- a.(src_i)
  | Boxed a, Boxed b -> b.(dst_i) <- a.(src_i)
  | _ -> set dst dst_i (get src src_i)

let grow t new_capacity =
  match t.data with
  | Ints a ->
      let b = Array.make new_capacity 0 in
      Array.blit a 0 b 0 (Array.length a);
      t.data <- Ints b
  | Floats a ->
      let b = Array.make new_capacity 0.0 in
      Array.blit a 0 b 0 (Array.length a);
      t.data <- Floats b
  | Boxed a ->
      let b = Array.make new_capacity Value.Null in
      Array.blit a 0 b 0 (Array.length a);
      t.data <- Boxed b

(* Fresh column holding the first [n] cells (used by [Relation.copy]). *)
let sub t n =
  let n' = Stdlib.max 1 n in
  {
    data =
      (match t.data with
      | Ints a -> Ints (Array.sub a 0 (Stdlib.min n' (Array.length a)))
      | Floats a -> Floats (Array.sub a 0 (Stdlib.min n' (Array.length a)))
      | Boxed a -> Boxed (Array.sub a 0 (Stdlib.min n' (Array.length a))));
  }
