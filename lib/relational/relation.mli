(** In-memory bag relations with append-only mutation.

    Physically columnar: one typed {!Column.t} per attribute. Boxed
    {!Tuple.t}s are the interchange format at the edges; hot paths read
    columns via {!scan} / {!Row} and pack keys via {!extractor}. *)

type t

val create : ?capacity:int -> string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int

val append : t -> Tuple.t -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val of_list : string -> Schema.t -> Tuple.t list -> t

(** {1 Columnar access (hot paths)} *)

val columns : t -> Column.t array
(** The physical columns, positionally aligned with the schema. Read-only
    by convention. *)

val column : t -> int -> Column.t

val scan : t -> Column.data array
(** Snapshot of every column's backing data for a tight scan loop; bumps the
    [relational.column_scans] counter. Cells at indexes [>= cardinality]
    are unspecified. *)

val extractor : t -> int array -> int -> Keypack.key
(** [extractor t positions] compiles a packed-key reader for the given key
    positions (see {!Keypack.extractor}); build after loading. *)

val float_at : t -> int -> int -> float
(** [float_at t i pos]: row [i], column position [pos], as a float
    ({!Value.to_float} semantics). Unchecked. *)

val int_at : t -> int -> int -> int

(** Cursor over one row: attribute reads without materialising a tuple. *)
module Row : sig
  type rel := t
  type t = { rel : rel; mutable i : int }

  val value : t -> int -> Value.t
  val float : t -> int -> float
  val int : t -> int -> int
end

val row : t -> int -> Row.t

(** {1 Append fast paths (column-to-column, no intermediate tuple)} *)

val append_from : t -> t -> int -> unit
(** [append_from t src i] appends row [i] of [src]; schemas must be
    compatible positionally. *)

val append_project : t -> t -> int array -> int -> unit
(** Append the projection of [src]'s row [i] onto the given positions. *)

val append_concat : t -> t -> int -> t -> int array -> int -> unit
(** [append_concat t a i b b_positions j] appends [a]'s row [i] followed by
    the [b_positions] cells of [b]'s row [j] (the join output row). *)

val of_projection : string -> t -> int array -> Schema.t -> t
(** Bag projection by whole-column copy: column [j] of the result is a copy
    of the source column at [positions.(j)]. *)

val of_columns : string -> Schema.t -> Column.t array -> int -> t
(** [of_columns name schema cols size] wraps freshly built columns (aligned
    with [schema], each holding at least [size] cells); ownership
    transfers to the relation. *)

(** {1 Boxed access (edges and compatibility)}

    These materialise boxed tuples (counted by [relational.boxed_tuples]). *)

val get : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val iteri : (int -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Tuple.t list
val copy : t -> t

val value_at : t -> int -> string -> Value.t
(** [value_at r i attr] is tuple [i]'s value of attribute [attr]. Raises
    [Invalid_argument] when [i] is out of bounds. *)

val value_count : t -> int
(** Cardinality times arity — the paper's representation-size measure. *)

val csv_size : t -> int
(** Byte size of the CSV serialisation (without materialising it). *)

val csv_rows : t -> string list list

val of_csv_rows : ?first_line:int -> string -> Schema.t -> string list list -> t
(** Typed CSV load. Raises [Util.Csvio.Malformed] with the 1-based source
    position on wrong arity or an unparseable cell; [first_line] (default 1)
    anchors the first row's line number (pass 2 for data under a header). *)

val of_csv_rows_located : string -> Schema.t -> (int * string list) list -> t
(** As {!of_csv_rows}, over [Util.Csvio.parse_string_located] or
    [read_file_located] output — reported lines survive skipped blanks. *)

val distinct_count : t -> int
val pp : Format.formatter -> t -> unit
