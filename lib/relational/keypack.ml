(* Packed join/group-by keys.

   Multi-attribute keys over dictionary-encoded int columns pack into one
   immediate OCaml int (63 usable bits), so the hash tables on every join,
   group-by and view hot path hash and compare ints instead of boxed
   [Value.t array]s. Keys that do not fit — floats, strings, nulls, ints
   outside the per-field budget — fall back to the boxed tuple
   representation.

   Routing is a pure function of the key VALUES (not of the column
   representation they came from), so the column-reading extractor used by
   scans and the tuple-reading packer used by streaming updates agree: a
   given logical key always lands in the same side of a {!Hybrid} table.

   Packing layout: arity 1 is the identity (any int, including negatives);
   arity k >= 2 gives each field [62 / k] bits and requires
   [0 <= v < 2^(62/k)], folding big-endian ([(acc lsl w) lor v]). The map
   is injective on its domain and lexicographically monotone, and fields
   are recoverable by mask/shift (see {!unpack}). *)

type key = P of int | B of Tuple.t

let field_width k = if k <= 1 then 62 else 62 / k

(* Observability: how often keys pack vs. fall back to boxed tuples. *)
let c_packed = Obs.counter "keypack.packed"
let c_boxed = Obs.counter "keypack.boxed"

let key_equal a b =
  match (a, b) with
  | P x, P y -> x = y
  | B x, B y -> Tuple.equal x y
  | P _, B _ | B _, P _ -> false

(* Multiplicative hash with the high bits folded back down: [Hashtbl] masks
   the LOW bits of the hash to pick a bucket, and a bare [x * C] leaves them
   carrying only the low bits of [x] — i.e. only the LAST field of a packed
   key, collapsing the table into one chain per low-field value. *)
let hash_int x =
  let h = x * 0x2545F4914F6CDD1D in
  h lxor (h asr 31)

let key_hash = function P x -> hash_int x | B t -> Tuple.hash t

(* Shard routing depends only on the key value (via [key_hash]), so a packed
   key and its boxed round trip land on the same shard, and every producer
   of the same key routes identically. *)
let shard_of_key ~shards k =
  if shards <= 1 then 0 else (key_hash k land max_int) mod shards

(* Total order (packed before boxed): deterministic serialisation order for
   checkpoint writers iterating hash tables. *)
let key_compare a b =
  match (a, b) with
  | P x, P y -> Stdlib.compare x y
  | B x, B y -> Tuple.compare x y
  | P _, B _ -> -1
  | B _, P _ -> 1

(* [unpack k p] recovers the [k] packed fields as [Value.Int]s. *)
let unpack k p =
  if k = 1 then [| Value.Int p |]
  else
    let w = field_width k in
    let mask = (1 lsl w) - 1 in
    Array.init k (fun j -> Value.Int ((p asr ((k - 1 - j) * w)) land mask))

let key_tuple k = function P p -> unpack k p | B t -> t

(* Streaming packer: route a projection of a boxed tuple. *)
let key_of_tuple (positions : int array) (tuple : Tuple.t) : key =
  let k = Array.length positions in
  if k = 0 then P 0
  else if k = 1 then
    match tuple.(positions.(0)) with
    | Value.Int x -> P x
    | v -> B [| v |]
  else begin
    let w = field_width k in
    let bound = 1 lsl w in
    let rec go j acc =
      if j = k then P acc
      else
        match tuple.(positions.(j)) with
        | Value.Int x when x >= 0 && x < bound -> go (j + 1) ((acc lsl w) lor x)
        | _ -> B (Tuple.project tuple positions)
    in
    go 0 0
  end

(* Closure-free packing loop (fields are non-negative, so packed values are
   non-negative and -1 can flag "does not pack"). Defined outside the
   extractor's returned closure so per-row extraction allocates nothing on
   the fast path. *)
let rec pack_loop (datas : Column.data array) k w bound i j acc =
  if j = k then acc
  else
    match datas.(j) with
    | Column.Ints a ->
        let x = a.(i) in
        if x >= 0 && x < bound then
          pack_loop datas k w bound i (j + 1) ((acc lsl w) lor x)
        else -1
    | Column.Boxed a -> (
        match a.(i) with
        | Value.Int x when x >= 0 && x < bound ->
            pack_loop datas k w bound i (j + 1) ((acc lsl w) lor x)
        | _ -> -1)
    | Column.Floats _ -> -1

(* Compiled extractor: read the key straight out of the given columns (in
   key order), packing without ever boxing on the all-int fast path. The
   column representations are captured at compile time; extractors are for
   scans over fully-built relations. *)
let extractor (cols : Column.t array) : int -> key =
  let k = Array.length cols in
  if k = 0 then fun _ -> P 0
  else if k = 1 then
    match Column.data cols.(0) with
    | Column.Ints a -> fun i -> P a.(i)
    | Column.Floats a -> fun i -> B [| Value.Float a.(i) |]
    | Column.Boxed a -> (
        fun i -> match a.(i) with Value.Int x -> P x | v -> B [| v |])
  else begin
    let w = field_width k in
    let bound = 1 lsl w in
    let datas = Array.map Column.data cols in
    fun i ->
      let p = pack_loop datas k w bound i 0 0 in
      if p >= 0 then P p
      else B (Array.init k (fun j -> Column.get cols.(j) i))
  end

(* Int-keyed hash table (the packed side of a hybrid table). *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash = hash_int
end)

(* A key-value table split by key representation: packed ints hash as
   immediates, fallback keys as boxed tuples. Because routing is value-
   deterministic, lookups never need to consult both sides. *)
module Hybrid = struct
  type 'a t = { packed : 'a Itbl.t; boxed : 'a Tuple.Tbl.t }

  let create n =
    { packed = Itbl.create (Stdlib.max 8 n); boxed = Tuple.Tbl.create 8 }

  let find_opt t = function
    | P p -> Itbl.find_opt t.packed p
    | B k -> Tuple.Tbl.find_opt t.boxed k

  let mem t = function
    | P p -> Itbl.mem t.packed p
    | B k -> Tuple.Tbl.mem t.boxed k

  let add t key v =
    match key with
    | P p ->
        Obs.incr c_packed;
        Itbl.add t.packed p v
    | B k ->
        Obs.incr c_boxed;
        Tuple.Tbl.add t.boxed k v

  let replace t key v =
    match key with
    | P p -> Itbl.replace t.packed p v
    | B k -> Tuple.Tbl.replace t.boxed k v

  let remove t = function
    | P p -> Itbl.remove t.packed p
    | B k -> Tuple.Tbl.remove t.boxed k

  let length t = Itbl.length t.packed + Tuple.Tbl.length t.boxed

  let clear t =
    Itbl.clear t.packed;
    Tuple.Tbl.clear t.boxed

  let iter f t =
    Itbl.iter (fun p v -> f (P p) v) t.packed;
    Tuple.Tbl.iter (fun k v -> f (B k) v) t.boxed

  let fold f t init =
    let acc = Itbl.fold (fun p v acc -> f (P p) v acc) t.packed init in
    Tuple.Tbl.fold (fun k v acc -> f (B k) v acc) t.boxed acc
end
