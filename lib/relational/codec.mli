(** Binary codec for the durable formats (resilience layer, paged store):
    fixed-width little-endian primitives, value/tuple/key encodings, and
    checksummed frames. Writers append to a [Buffer.t]; readers raise
    {!Decode_error} on malformed or truncated input, LOCATED at the byte
    offset where the failing read began (floats round-trip
    bit-identically). *)

type error = {
  offset : int;  (** byte offset of the failing read; [-1] when semantic *)
  reason : string;
}

exception Decode_error of error

val error_message : error -> string
(** ["<reason> at byte <offset>"], or just the reason for semantic errors. *)

val fail : ?offset:int -> string -> 'a
(** Raise {!Decode_error} ([offset] defaults to [-1]: unlocated). *)

type reader = { buf : string; mutable pos : int }

val reader : ?pos:int -> string -> reader
val eof : reader -> bool
val remaining : reader -> int

val fail_at : reader -> string -> 'a
(** Raise {!Decode_error} located at the reader's current position. *)

val u8 : Buffer.t -> int -> unit
val read_u8 : reader -> int

val u32 : Buffer.t -> int -> unit
(** 32-bit unsigned little-endian (lengths, checksums). *)

val read_u32 : reader -> int

val i64 : Buffer.t -> int -> unit
(** OCaml int as 8-byte little-endian. *)

val read_i64 : reader -> int

val f64 : Buffer.t -> float -> unit
(** Exact bit pattern: [read_f64] returns a bit-identical float. *)

val read_f64 : reader -> float

val str : Buffer.t -> string -> unit
val read_str : reader -> string

val value : Buffer.t -> Value.t -> unit
val read_value : reader -> Value.t

val tuple : Buffer.t -> Tuple.t -> unit
val read_tuple : reader -> Tuple.t

val key : Buffer.t -> Keypack.key -> unit
val read_key : reader -> Keypack.key

val frame : Buffer.t -> string -> unit
(** [[len][crc32][payload]]: a frame decodes only when completely present
    with a matching checksum — torn tails and bit flips read as "no frame",
    located at the frame's first byte. *)

val read_frame : reader -> string
