(** Typed columns backing {!Relation}: unboxed [int array] / [float array]
    storage with dynamic promotion to boxed values, so columnar relations
    are observationally identical to the old array-of-tuples row store. *)

type data =
  | Ints of int array  (** dictionary-encoded categoricals / keys *)
  | Floats of float array  (** continuous features (flat float array) *)
  | Boxed of Value.t array  (** strings, nulls, mixed columns *)

type t

val create : Value.ty -> int -> t
(** [create ty capacity]: initial representation per the declared type. *)

val of_ints : int array -> t
(** Wrap a freshly built int array as a column (ownership transfers). *)

val of_floats : float array -> t
val of_boxed : Value.t array -> t

val data : t -> data
(** The backing array. Cells at indexes beyond the owning relation's
    cardinality are unspecified; hot loops must bound by it. The
    representation is stable while no value is stored, so it may be matched
    once per scan. *)

val capacity : t -> int

val get : t -> int -> Value.t
(** Box one cell (edge paths: CSV, pretty-printing, compat shims). *)

val float_at : t -> int -> float
(** Cell as a float, with {!Value.to_float} semantics. *)

val int_at : t -> int -> int
(** Cell as an int, with {!Value.to_int} semantics. *)

val set : t -> int -> Value.t -> unit
(** Store a value, promoting the column to [Boxed] if it does not fit the
    current representation. *)

val copy_cell : src:t -> src_i:int -> dst:t -> dst_i:int -> unit
(** Unboxed cell copy when representations agree; falls back to
    [set dst (get src)]. *)

val grow : t -> int -> unit
val sub : t -> int -> t
