(** (Semi)ring signatures (paper Section 3.1, footnote 3).

    Factorised computation is parameterised by a commutative semiring: the
    same one-pass evaluation over a factorised join computes counts, sums,
    boolean satisfiability, or whole covariance matrices depending only on
    the carrier. Rings additionally have additive inverses, which is what
    makes inserts and deletes uniform in the IVM layer. *)

module type SEMIRING = sig
  type t

  val zero : t
  (** Additive identity; also absorbing for [mul]. *)

  val one : t
  (** Multiplicative identity. *)

  val add : t -> t -> t
  val mul : t -> t -> t
  val equal : t -> t -> bool
  val to_string : t -> string
end

module type RING = sig
  include SEMIRING

  val neg : t -> t
  (** Additive inverse: [add x (neg x) = zero]. *)
end

module Pair (A : SEMIRING) (B : SEMIRING) : SEMIRING with type t = A.t * B.t
(** Product of two semirings, pointwise. Used to evaluate several
    independent aggregates in one pass. *)
