(** The covariance ring (paper Section 5.2): triples (c, s, Q) of
    [SUM(1)], [SUM(x_i)] and [SUM(x_i * x_j)] over a fixed feature dimension,
    with the ring product that shares counts into sums and sums into
    products. *)

open Util

type t = { c : float; s : Vec.t; q : Mat.t }

val dim : t -> int
val zero : int -> t
(** [zero n] for dimension [n]. *)

val one : int -> t
val add : t -> t -> t
val neg : t -> t
val smul : float -> t -> t
(** Scalar multiple (= repeated [add]). *)

val mul : t -> t -> t
(** The covariance-ring product of Section 5.2. *)

val lift : int -> int -> float -> t
(** [lift n i x] is the ring image [(1, x*e_i, x^2*E_ii)] of feature [i]'s
    value [x] in dimension [n]. *)

val of_tuple : float array -> t
(** [(1, x, x x^T)] — the product of the lifts of all features of one tuple,
    built directly. *)

(** Mutable accumulator for tight fold loops (no per-tuple allocation). *)
module Acc : sig
  type acc

  val create : int -> acc
  val add_tuple : acc -> ?multiplicity:float -> float array -> unit
  val add_triple : acc -> t -> unit
  val freeze : acc -> t
end

val is_zero : t -> bool
(** Exact structural zero (every component [= 0.0], either float zero; no
    tolerance) — safe to use for dropping exactly-cancelled view entries
    without perturbing bit-identity. *)

val equal : ?eps:float -> t -> t -> bool
(** Absolute tolerance. *)

val equal_rel : ?eps:float -> t -> t -> bool
(** Relative tolerance; robust to accumulation-order differences on
    large-magnitude sums. *)

val count : t -> float
val sums : t -> Vec.t
val products : t -> Mat.t

val moment_matrix : t -> Mat.t
(** The (n+1)x(n+1) symmetric moment matrix [[c, s^T]; [s, Q]] with the
    intercept in slot 0 — the input to gradient-descent linear regression. *)

val encode : Buffer.t -> t -> unit
(** Binary codec for checkpoint payloads; floats are stored by bit pattern,
    so {!decode} returns a bit-identical triple. *)

val decode : Relational.Codec.reader -> t
(** @raise Relational.Codec.Decode_error on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Make (_ : sig
  val n : int
end) : Sig.RING with type t = t

val make_ring : int -> (module Sig.RING with type t = t)
(** First-class ring instance at the given dimension. *)
