(* The covariance ring (paper Section 5.2).

   Elements are triples (c, s, Q): a scalar count, a vector of sums, and a
   matrix of sums of products, over a fixed feature dimension n:

     SUM(1)        SUM(x_i)        SUM(x_i * x_j)

   Addition is component-wise. Multiplication

     (c1,s1,Q1) * (c2,s2,Q2) =
       (c1*c2,  c2*s1 + c1*s2,  c2*Q1 + c1*Q2 + s1 s2^T + s2 s1^T)

   captures the shared computation across the whole aggregate batch: counts
   scale sums, sums build products. Lifting feature i's value x to
   (1, x*e_i, x^2*E_ii) and taking the ring product across a tuple's features
   yields the tuple's full second-moment contribution; summing over tuples
   yields all (n+1)^2 covariance aggregates in one pass. *)

open Util

type t = { c : float; s : Vec.t; q : Mat.t }

let dim t = Vec.dim t.s

let zero n = { c = 0.0; s = Vec.create n; q = Mat.create n n }

let one n = { c = 1.0; s = Vec.create n; q = Mat.create n n }

let add a b = { c = a.c +. b.c; s = Vec.add a.s b.s; q = Mat.add a.q b.q }

let neg a = { c = -.a.c; s = Vec.scale (-1.0) a.s; q = Mat.scale (-1.0) a.q }

let smul k a = { c = k *. a.c; s = Vec.scale k a.s; q = Mat.scale k a.q }

let mul a b =
  let n = dim a in
  let c = a.c *. b.c in
  let s = Vec.create n in
  for i = 0 to n - 1 do
    s.(i) <- (b.c *. a.s.(i)) +. (a.c *. b.s.(i))
  done;
  let q = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set q i j
        ((b.c *. Mat.get a.q i j)
        +. (a.c *. Mat.get b.q i j)
        +. (a.s.(i) *. b.s.(j))
        +. (b.s.(i) *. a.s.(j)))
    done
  done;
  { c; s; q }

(* Lift of feature [i]'s value [x]: the ring image of a single attribute
   value (Figure 10's per-value triples, generalised with the x^2 diagonal). *)
let lift n i x =
  let s = Vec.create n in
  s.(i) <- x;
  let q = Mat.create n n in
  Mat.set q i i (x *. x);
  { c = 1.0; s; q }

(* Fast path: the ring product of the lifts of all features of one tuple is
   (1, x, x x^T); build it directly instead of n-1 ring multiplications. *)
let of_tuple xs =
  let n = Array.length xs in
  let q = Mat.create n n in
  Mat.ger ~alpha:1.0 xs xs q;
  { c = 1.0; s = Vec.copy xs; q }

(* Mutable accumulator: folds tuples (with multiplicities) into a running
   (c, s, Q) without allocating a triple per tuple. This is the specialised
   inner loop that the "specialisation" stage of Figure 6 uses. *)
module Acc = struct
  type acc = { mutable count : float; sums : Vec.t; prods : Mat.t }

  let create n = { count = 0.0; sums = Vec.create n; prods = Mat.create n n }

  let add_tuple acc ?(multiplicity = 1.0) xs =
    acc.count <- acc.count +. multiplicity;
    Vec.axpy ~alpha:multiplicity xs acc.sums;
    Mat.ger ~alpha:multiplicity xs xs acc.prods

  let add_triple acc (x : t) =
    acc.count <- acc.count +. x.c;
    Vec.add_in_place acc.sums x.s;
    Mat.add_in_place acc.prods x.q

  let freeze acc : t =
    { c = acc.count; s = Vec.copy acc.sums; q = Mat.copy acc.prods }
end

(* Exact structural zero (no tolerance): the test that decides whether a
   maintained view entry may be dropped. Tolerant comparison here would
   discard near-zero-but-real contributions and break bit-identity with a
   from-scratch recompute; [x = 0.0] admits both float zeros, which is right
   because an exactly-cancelled group is indistinguishable from one a
   recompute never saw. *)
let is_zero a =
  a.c = 0.0
  &&
  let n = dim a in
  let ok = ref true in
  for i = 0 to n - 1 do
    if a.s.(i) <> 0.0 then ok := false;
    for j = 0 to n - 1 do
      if Mat.get a.q i j <> 0.0 then ok := false
    done
  done;
  !ok

let equal ?(eps = 1e-7) a b =
  Float.abs (a.c -. b.c) <= eps && Vec.equal ~eps a.s b.s && Mat.equal ~eps a.q b.q

(* Relative comparison: tolerant of accumulation-order float differences on
   large-magnitude sums. *)
let equal_rel ?(eps = 1e-9) a b =
  let close x y = Float.abs (x -. y) <= eps *. (1.0 +. Float.abs x +. Float.abs y) in
  dim a = dim b
  && close a.c b.c
  && (let ok = ref true in
      for i = 0 to dim a - 1 do
        if not (close a.s.(i) b.s.(i)) then ok := false;
        for j = 0 to dim a - 1 do
          if not (close (Mat.get a.q i j) (Mat.get b.q i j)) then ok := false
        done
      done;
      !ok)

let count t = t.c
let sums t = t.s
let products t = t.q

(* Assemble the (n+1)x(n+1) symmetric moment matrix with an intercept slot
   at index 0: [[c, s^T], [s, Q]]. This is the "sigma" matrix the linear
   regression gradient is built from. *)
let moment_matrix t =
  let n = dim t in
  Mat.init (n + 1) (n + 1) (fun i j ->
      match (i, j) with
      | 0, 0 -> t.c
      | 0, j -> t.s.(j - 1)
      | i, 0 -> t.s.(i - 1)
      | i, j -> Mat.get t.q (i - 1) (j - 1))

(* Binary codec (checkpoint payloads): dimension, count, sums, then the
   product matrix row-major, every float by its exact bit pattern — a
   decoded triple is bit-identical to the encoded one, which the
   crash-recovery equivalence guarantee depends on. *)
let encode b t =
  let n = dim t in
  Relational.Codec.u32 b n;
  Relational.Codec.f64 b t.c;
  for i = 0 to n - 1 do
    Relational.Codec.f64 b t.s.(i)
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Relational.Codec.f64 b (Mat.get t.q i j)
    done
  done

let decode r =
  let n = Relational.Codec.read_u32 r in
  if n > 65536 then Relational.Codec.fail "covariance dim";
  let c = Relational.Codec.read_f64 r in
  let s = Vec.create n in
  for i = 0 to n - 1 do
    s.(i) <- Relational.Codec.read_f64 r
  done;
  let q = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set q i j (Relational.Codec.read_f64 r)
    done
  done;
  { c; s; q }

let to_string t =
  Format.asprintf "(c=%g, s=%a)" t.c Vec.pp t.s

let pp ppf t =
  Format.fprintf ppf "c = %g@\ns = %a@\nQ =@\n%a" t.c Vec.pp t.s Mat.pp t.q

(* First-class semiring instance over a fixed dimension, for the generic
   factorised evaluator. *)
module Make (D : sig
  val n : int
end) : Sig.RING with type t = t = struct
  type nonrec t = t

  let zero = zero D.n
  let one = one D.n
  let add = add
  let mul = mul
  let neg = neg
  let equal = equal ~eps:1e-7
  let to_string = to_string
end

let make_ring n : (module Sig.RING with type t = t) =
  (module Make (struct
    let n = n
  end))
