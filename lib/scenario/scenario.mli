(** Hostile-stream scenario cells: one (dataset x stream-shape) pair from
    {!Datagen.Stream_gen.hostile} driven through every layer of the stack —
    F-IVM maintenance under all three strategies, sharded maintenance,
    crash/recovery, aggregate serving, model serving, and the out-of-core
    streamed engines — each layer checked by a BIT-identity differential
    against an independent oracle (hostile streams live on the dyadic float
    lattice, where covariance-ring arithmetic is exact).

    Counters: [scenario.cells], [scenario.checks], [scenario.failures],
    [scenario.updates], [scenario.deletes]. Span: [scenario.cell]. *)

type check = {
  layer : string;  (** one of {!layers} *)
  ok : bool;
  detail : string;  (** human-readable differential verdict *)
}

type cell = {
  dataset : string;
  shape : string;  (** {!Datagen.Stream_gen.shape_name} of the stream *)
  updates : int;  (** delta tuples pushed through each layer *)
  deletes : int;  (** how many of them were deletions *)
  checks : check list;  (** in execution order *)
}

val layers : string list
(** ["maintain"; "shard"; "resilience"; "serve"; "model"; "streamed"]. *)

val cell_ok : cell -> bool

val run_cell :
  ?seed:int ->
  ?strategies:Fivm.Maintainer.strategy list ->
  ?shards:int list ->
  ?layers:string list ->
  dataset:string ->
  shape:Datagen.Stream_gen.shape ->
  features:string list ->
  Relational.Database.t ->
  cell
(** Run one cell over a generated database (transformed and streamed by
    [Stream_gen.hostile shape]): maintain x [strategies] (default all
    three, each against its own recompute AND the F-IVM triple), shard x
    [shards] (default [{1; 4; 8}], merged and recomputed against the
    unsharded triple), crash recovery with the full damage grammar
    ([crash-after], [torn-tail], [reorder], [dup]) against a never-crashed
    run, serve (cache miss and hit against a fresh engine evaluation, mid-
    stream and at end), model (warm-refreshed linreg-closed against a cold
    retrain), and streamed (both LMFAO engines over a paged spill of the
    final live set against in-memory). [layers] restricts which layers
    run. *)

val pp_cell : Format.formatter -> cell -> unit
