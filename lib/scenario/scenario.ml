(* Hostile-stream scenario cells: one (dataset x stream-shape) pair driven
   through every maintenance/serving layer of the stack, each layer checked
   by a DIFFERENTIAL against an independent oracle rather than a golden
   file.

   Streams come from [Datagen.Stream_gen.hostile], which snaps float
   features onto the dyadic lattice {1/16 .. 64/16}. Covariance-ring
   arithmetic over lattice values is exact in floats, so every differential
   below demands BIT-identity: maintained == recomputed, sharded ==
   unsharded, crash-recovered == never-crashed, served == engine-evaluated,
   streamed-from-pages == in-memory. A layer that reorders, drops, double-
   applies or rounds anything fails the bit comparison — there is no
   tolerance to hide behind.

   Counters ([scenario.*]): cells run, checks executed, failures, and the
   insert/delete volume pushed through, so CI can assert a smoke run really
   exercised the matrix. *)

open Relational
module M = Fivm.Maintainer
module Sg = Datagen.Stream_gen

let c_cells = Obs.counter "scenario.cells"
let c_checks = Obs.counter "scenario.checks"
let c_failures = Obs.counter "scenario.failures"
let c_updates = Obs.counter "scenario.updates"
let c_deletes = Obs.counter "scenario.deletes"

type check = { layer : string; ok : bool; detail : string }

type cell = {
  dataset : string;
  shape : string;
  updates : int;  (** total delta tuples in the stream *)
  deletes : int;  (** how many of them were deletions *)
  checks : check list;  (** in execution order *)
}

let layers = [ "maintain"; "shard"; "resilience"; "serve"; "model"; "streamed" ]
let cell_ok c = List.for_all (fun ch -> ch.ok) c.checks

(* ---- bit-pattern comparisons ---- *)

let cov_bits (c : Rings.Covariance.t) =
  let b = Buffer.create 512 in
  Rings.Covariance.encode b c;
  Buffer.contents b

(* Keyed engine results compared key-by-key and bit-by-bit: group keys as
   strings, aggregate values by their float bit patterns. Aggregates are
   canonicalised by id and groups by key — the serving cache returns batch
   order while a raw engine evaluation groups by decomposition root, and
   only the CONTENTS must match. *)
let keyed_bits (rs : (string * Aggregates.Spec.result) list) =
  let key_string key =
    String.concat ";"
      (List.map (fun (attr, kv) -> attr ^ "=" ^ Value.to_string kv) key)
  in
  let rs =
    List.sort (fun (i, _) (j, _) -> compare i j) rs
    |> List.map (fun (id, groups) ->
           ( id,
             List.sort compare
               (List.map (fun (key, v) -> (key_string key, Int64.bits_of_float v)) groups)
           ))
  in
  let b = Buffer.create 512 in
  List.iter
    (fun (id, groups) ->
      Buffer.add_string b id;
      Buffer.add_char b '\n';
      List.iter
        (fun (ks, bits) ->
          Buffer.add_string b ks;
          Buffer.add_char b '=';
          Buffer.add_int64_le b bits;
          Buffer.add_char b '\n')
        groups)
    rs;
  Buffer.contents b

let packed_bits p =
  let b = Buffer.create 128 in
  Ml.Model_intf.encode_packed b p;
  Buffer.contents b

let with_temp_dir f =
  let dir = Filename.temp_dir "scenario" "" in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ---- per-layer checks ---- *)

let maintained strategy db ~features batches =
  let m = M.create strategy db ~features in
  List.iter (M.apply_batch m) batches;
  m

(* Cancelled groups must VANISH from F-IVM views, not linger as zero
   payloads: net-zero churn would otherwise leave the view trees carrying
   one dead entry per deleted group forever. *)
let zero_residue_rows (m : M.t) =
  match M.dump_views m with
  | M.Cov_views views ->
      List.fold_left
        (fun acc (_, entries) ->
          acc
          + List.length (List.filter (fun (_, p) -> Fivm.Payload.Cov_dyn.is_zero p) entries))
        0 views
  | _ -> 0

let check_maintain strategy db ~features batches =
  let m = maintained strategy db ~features batches in
  let got = cov_bits (M.covariance m) and want = cov_bits (M.recompute m) in
  let residue = if strategy = M.F_ivm then zero_residue_rows m else 0 in
  let ok = String.equal got want && residue = 0 in
  let detail =
    Printf.sprintf "%s: maintained %s recompute, %d view rows, %d zero-residue"
      (M.strategy_name strategy)
      (if String.equal got want then "==" else "<>")
      (M.view_rows m) residue
  in
  (m, { layer = "maintain"; ok; detail })

let check_shard ~shards db ~features batches ~reference =
  let sh = Fivm.Shard.create M.F_ivm db ~features ~shards in
  List.iter (fun b -> Fivm.Shard.apply_batch sh b) batches;
  let merged = cov_bits (Fivm.Shard.covariance sh) in
  let recomputed = cov_bits (Fivm.Shard.recompute sh) in
  let ok = String.equal merged reference && String.equal recomputed reference in
  let detail =
    Printf.sprintf "%d shards on %s: merged %s unsharded, recompute %s" shards
      (Fivm.Shard.plan_attr (Fivm.Shard.plan_of sh))
      (if String.equal merged reference then "==" else "<>")
      (if String.equal recomputed reference then "==" else "<>")
  in
  { layer = "shard"; ok; detail }

(* Crash mid-stream with the full damage grammar armed — the torn tail
   shears an acknowledged frame, the survivors are reordered and duplicated
   — then restart from the recovered sequence number and finish the stream.
   The final triple must be bit-identical to a driver that never crashed. *)
let check_resilience ~seed dir db ~features batches ~reference =
  let updates = Array.of_list (List.concat batches) in
  let n = Array.length updates in
  let spec =
    Printf.sprintf "crash-after:%d,torn-tail:3,reorder:4,dup:2" (max 1 (n / 2))
  in
  let faults = Resilience.Faults.parse ~seed spec in
  let cfg = Resilience.Driver.config ~checkpoint_every:64 ~faults dir in
  let make () = M.create M.F_ivm db ~features in
  let restarts = ref 0 in
  let rec drive d i =
    if i >= n then d
    else
      match Resilience.Driver.submit d updates.(i) with
      | Resilience.Driver.Applied | Resilience.Driver.Quarantined _ -> drive d (i + 1)
      | exception Resilience.Faults.Crash _ ->
          incr restarts;
          if !restarts > 8 then failwith "scenario: crash loop";
          (* recovery replays checkpoint + repaired WAL; [seq] is the count
             of committed updates = the index to resume the stream from *)
          let d = Resilience.Driver.create cfg make in
          drive d (Resilience.Driver.seq d)
  in
  let d = drive (Resilience.Driver.create cfg make) 0 in
  let got = cov_bits (Resilience.Driver.covariance d) in
  let quarantined = List.length (Resilience.Driver.quarantined d) in
  Resilience.Driver.close d;
  let ok = String.equal got reference && !restarts >= 1 && quarantined = 0 in
  let detail =
    Printf.sprintf "%s: %d restart(s), %d quarantined, recovered %s clean" spec !restarts
      quarantined
      (if String.equal got reference then "==" else "<>")
  in
  { layer = "resilience"; ok; detail }

(* Serve the covariance batch mid-stream and at the end, each time twice
   (cache miss then refreshed/cached hit), against a fresh engine evaluation
   over the server's own snapshot. *)
let check_serve db ~features batches =
  let srv = Serve.create M.F_ivm db ~features in
  let batch = Aggregates.Batch.covariance_numeric features in
  let probe () =
    let miss = keyed_bits (Serve.serve srv batch) in
    let hit = keyed_bits (Serve.serve srv batch) in
    let fresh =
      keyed_bits
        (Lmfao.Engine.eval ~on_cyclic:`Materialize (Serve.snapshot srv) batch)
          .Lmfao.Engine.keyed
    in
    (String.equal miss fresh, String.equal hit fresh)
  in
  let n = List.length batches in
  let half = n / 2 in
  List.iteri (fun i b -> if i < half then Serve.apply_deltas srv b) batches;
  let mid_miss, mid_hit = probe () in
  List.iteri (fun i b -> if i >= half then Serve.apply_deltas srv b) batches;
  let end_miss, end_hit = probe () in
  let ok = mid_miss && mid_hit && end_miss && end_hit in
  let detail =
    Printf.sprintf "mid-stream miss/hit %s/%s, end-of-stream %s/%s"
      (if mid_miss then "==" else "<>")
      (if mid_hit then "==" else "<>")
      (if end_miss then "==" else "<>")
      (if end_hit then "==" else "<>")
  in
  { layer = "serve"; ok; detail }

(* Register linreg-closed mid-stream, refresh it at the end, and compare the
   served parameters bit-for-bit against a cold retrain from a from-scratch
   recompute of the moments — the warm refresh path must not drift. *)
let check_model db ~features batches =
  let srv = Serve.create M.F_ivm db ~features in
  let response = List.hd features in
  let spec = Ml.Models.find_exn "linreg-closed" in
  let n = List.length batches in
  let half = max 1 (n / 2) in
  List.iteri (fun i b -> if i < half then Serve.apply_deltas srv b) batches;
  let name = Serve.Model.register srv spec ~response in
  List.iteri (fun i b -> if i >= half then Serve.apply_deltas srv b) batches;
  Serve.Model.refresh srv name;
  let served, epoch = Serve.Model.packed srv name in
  let cold =
    Ml.Model_intf.train_packed spec
      (Ml.Model_intf.moments_of_covariance
         ~snapshot:(fun () -> Serve.snapshot srv)
         (M.recompute (Serve.maintainer srv))
         ~features ~response)
  in
  let ok = String.equal (packed_bits served) (packed_bits cold) in
  let detail =
    Printf.sprintf "%s@epoch %d: warm-refreshed params %s cold retrain" name epoch
      (if ok then "==" else "<>")
  in
  { layer = "model"; ok; detail }

(* Spill the post-stream live set to paged column files, reopen it with a
   2-page cache, and run both LMFAO engines over the streamed database: all
   four results (2 engines x {in-memory, paged}) must agree bitwise. *)
let check_streamed dir (m : M.t) ~features =
  let snap = M.snapshot m in
  let batch = Aggregates.Batch.covariance_numeric features in
  let r_mem = keyed_bits (Lmfao.Engine.eval_batch snap batch) in
  let r_mem_compiled =
    keyed_bits (Compile.Engine.run (Compile.Engine.compile snap batch) snap)
  in
  let paged =
    List.map
      (fun rel ->
        ignore (Store.Loader.import_relation ~dir ~page_rows:64 rel);
        Store.Paged.openr ~cache_pages:2 ~dir (Relation.name rel))
      (Database.relations snap)
  in
  let sdb =
    Database.create_streamed
      (Database.name snap ^ "_paged")
      (List.map (fun p -> (Store.Paged.stub p, Some (Store.Paged.stream p))) paged)
  in
  let r_paged = keyed_bits (Lmfao.Engine.eval_batch sdb batch) in
  let r_compiled = keyed_bits (Compile.Engine.run (Compile.Engine.compile sdb batch) sdb) in
  List.iter Store.Paged.close paged;
  let agree a b = String.equal a b in
  let ok =
    agree r_mem r_paged && agree r_mem_compiled r_compiled && agree r_mem r_mem_compiled
  in
  let detail =
    Printf.sprintf "lmfao paged %s mem, compiled paged %s mem, engines %s"
      (if agree r_mem r_paged then "==" else "<>")
      (if agree r_mem_compiled r_compiled then "==" else "<>")
      (if agree r_mem r_mem_compiled then "==" else "<>")
  in
  { layer = "streamed"; ok; detail }

(* ---- the cell driver ---- *)

let run_cell ?(seed = 42) ?(strategies = [ M.F_ivm; M.Higher_order; M.First_order ])
    ?(shards = [ 1; 4; 8 ]) ?(layers = layers) ~dataset ~shape ~features db =
  Obs.with_span "scenario.cell" @@ fun () ->
  Obs.incr c_cells;
  let db, batches = Sg.hostile ~seed shape db in
  let updates = List.fold_left (fun n b -> n + List.length b) 0 batches in
  let deletes =
    List.fold_left
      (fun n b ->
        n + List.length (List.filter (fun (u : Fivm.Delta.update) -> u.multiplicity < 0) b))
      0 batches
  in
  Obs.add c_updates updates;
  Obs.add c_deletes deletes;
  let checks = ref [] in
  let record (c : check) =
    Obs.incr c_checks;
    if not c.ok then Obs.incr c_failures;
    checks := c :: !checks
  in
  let want layer = List.mem layer layers in
  (* the unsharded F-IVM maintained triple anchors the cross-layer
     differentials; built once, on demand *)
  let ref_m = lazy (maintained M.F_ivm db ~features batches) in
  let reference = lazy (cov_bits (M.covariance (Lazy.force ref_m))) in
  if want "maintain" then
    List.iter
      (fun strategy ->
        let m, c = check_maintain strategy db ~features batches in
        (* every strategy must also land on the SAME triple *)
        let same = String.equal (cov_bits (M.covariance m)) (Lazy.force reference) in
        record
          (if same then c
           else { c with ok = false; detail = c.detail ^ ", diverges from f-ivm" }))
      strategies;
  if want "shard" then
    List.iter
      (fun n ->
        record (check_shard ~shards:n db ~features batches ~reference:(Lazy.force reference)))
      shards;
  if want "resilience" then
    with_temp_dir (fun dir ->
        record
          (check_resilience ~seed dir db ~features batches
             ~reference:(Lazy.force reference)));
  if want "serve" then record (check_serve db ~features batches);
  if want "model" then record (check_model db ~features batches);
  if want "streamed" then
    with_temp_dir (fun dir -> record (check_streamed dir (Lazy.force ref_m) ~features));
  { dataset; shape = Sg.shape_name shape; updates; deletes; checks = List.rev !checks }

let pp_cell ppf (c : cell) =
  Format.fprintf ppf "@[<v>%s x %s: %d updates (%d deletes) — %s@," c.dataset c.shape
    c.updates c.deletes
    (if cell_ok c then "OK" else "FAILED");
  List.iter
    (fun ch ->
      Format.fprintf ppf "  [%s] %-10s %s@," (if ch.ok then "ok" else "FAIL") ch.layer
        ch.detail)
    c.checks;
  Format.fprintf ppf "@]"
