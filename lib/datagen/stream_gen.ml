(* Update-stream generation for the IVM experiments (Figure 4 right) and the
   hostile-stream scenario matrix: turn a generated database into a stream
   of delta batches against an initially empty database. Dimension tuples
   are interleaved early so the fact inserts find join partners, mirroring a
   live system's load order.

   The [hostile] grammar is schema-agnostic: the fact relation is the
   highest-cardinality one, join keys are the attributes shared between
   schemas, and every shape works for any of the four generators. Hostile
   streams are emitted over a DYADIC-LATTICE copy of the database (float
   features snapped to strictly positive multiples of 1/16, at most 4):
   every covariance-ring operation is then exact in float arithmetic, so a
   maintained result is bit-identical to a from-scratch recompute under ANY
   delivery order, batching, or sharding — which is what lets the scenario
   differentials demand bitwise equality instead of tolerances. *)

open Relational

let fact_relation (db : Database.t) =
  List.fold_left
    (fun acc r ->
      match acc with
      | None -> Some r
      | Some best ->
          if Relation.cardinality r > Relation.cardinality best then Some r else acc)
    None (Database.relations db)
  |> Option.get

(* All tuples of the database as inserts: dimensions first (round-robin),
   then the fact relation's tuples shuffled. [dimension_fraction] of the
   stream prefix is dimension data. *)
let inserts_of_database ?(seed = 1) (db : Database.t) =
  let rng = Util.Prng.create seed in
  let fact = fact_relation db in
  let dims = List.filter (fun r -> r != fact) (Database.relations db) in
  let dim_updates =
    List.concat_map
      (fun r ->
        List.map (fun t -> Fivm.Delta.insert (Relation.name r) t) (Relation.to_list r))
      dims
  in
  let dim_updates = Array.of_list dim_updates in
  Util.Prng.shuffle_in_place rng dim_updates;
  let fact_updates =
    Array.of_list
      (List.map (fun t -> Fivm.Delta.insert (Relation.name fact) t) (Relation.to_list fact))
  in
  Util.Prng.shuffle_in_place rng fact_updates;
  (* dimensions first: realistic reference-data-before-facts loading *)
  Array.to_list dim_updates @ Array.to_list fact_updates

(* A mixed insert/delete stream: after the initial load, [churn] fraction of
   fact tuples are deleted and re-inserted, exercising the additive
   inverse. *)
let with_churn ?(seed = 2) ?(churn = 0.1) (db : Database.t) =
  let rng = Util.Prng.create seed in
  let base = inserts_of_database ~seed db in
  let fact_name = Relation.name (fact_relation db) in
  let fact_inserts =
    List.filter (fun (u : Fivm.Delta.update) -> u.relation = fact_name) base
  in
  let victims =
    List.filter (fun _ -> Util.Prng.float rng 1.0 < churn) fact_inserts
  in
  base
  @ List.concat_map
      (fun (u : Fivm.Delta.update) ->
        [ Fivm.Delta.delete u.relation u.tuple; Fivm.Delta.insert u.relation u.tuple ])
      victims

(* ---- the hostile-stream grammar ---- *)

type shape =
  | Single_tuple
  | Batched of int
  | Churn of float
  | Net_zero
  | Out_of_order of int
  | Zipf_churn of float
  | High_card

let shapes =
  [
    ("single", Single_tuple);
    ("batched", Batched 64);
    ("churn", Churn 0.5);
    ("net-zero", Net_zero);
    ("out-of-order", Out_of_order 32);
    ("zipf", Zipf_churn 1.2);
    ("high-card", High_card);
  ]

let shape_name s =
  match List.find_opt (fun (_, s') -> s' = s) shapes with
  | Some (n, _) -> n
  | None -> (
      match s with
      | Single_tuple -> "single"
      | Batched k -> Printf.sprintf "batched:%d" k
      | Churn f -> Printf.sprintf "churn:%g" f
      | Net_zero -> "net-zero"
      | Out_of_order k -> Printf.sprintf "out-of-order:%d" k
      | Zipf_churn s -> Printf.sprintf "zipf:%g" s
      | High_card -> "high-card")

let shape_of_string name = List.assoc_opt name shapes

(* Snap a float onto the dyadic lattice {1/16 .. 64/16}: a deterministic
   function of the value's bit pattern, strictly positive and exactly
   representable. Sums of lattice values and their pairwise products (the
   covariance triple's s and q components have denominators at most 2^4 and
   2^8) stay exact far past any scale these streams reach, so float addition
   is associative over them. *)
let lattice_of_float x =
  let h = Int64.to_int (Int64.bits_of_float x) in
  let h = h lxor (h lsr 29) lxor (h lsr 47) in
  float_of_int (1 + (h land 63)) /. 16.0

let map_database f (db : Database.t) =
  let rels =
    List.map
      (fun r ->
        let name = Relation.name r in
        let schema, row = f name (Relation.schema r) in
        let out = Relation.create ~capacity:(max 1 (Relation.cardinality r)) name schema in
        Relation.iter (fun t -> Relation.append out (row t)) r;
        out)
      (Database.relations db)
  in
  Database.create (Database.name db) rels

let lattice_database (db : Database.t) =
  map_database
    (fun _ schema ->
      ( schema,
        fun t ->
          Array.mapi
            (fun i v ->
              match v with
              | Value.Float x when (Schema.attr_at schema i).Schema.ty = Value.TFloat ->
                  Value.Float (lattice_of_float x)
              | v -> v)
            t ))
    db

(* Attributes shared by at least two relation schemas: exactly the natural
   join keys the join tree is built from. *)
let shared_attrs (db : Database.t) =
  let count = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun a ->
          Hashtbl.replace count a (1 + Option.value ~default:0 (Hashtbl.find_opt count a)))
        (Schema.names (Relation.schema r)))
    (Database.relations db);
  Hashtbl.fold (fun a n acc -> if n >= 2 then a :: acc else acc) count []

(* High-cardinality categorical keys: every shared int join key becomes a
   string ("key-<v>"), consistently across fact and dimensions so FK
   integrity is preserved. Multi-attribute keys leave [Keypack]'s packed-int
   fast path entirely; single-attribute keys route through the boxed
   [Tuple.t] fallback. *)
let high_card_database (db : Database.t) =
  let keys = shared_attrs db in
  let is_key schema i =
    let a = Schema.attr_at schema i in
    a.Schema.ty = Value.TInt && List.mem a.Schema.name keys
  in
  map_database
    (fun _ schema ->
      let schema' =
        Schema.make
          (List.mapi
             (fun i (a : Schema.attr) ->
               (a.Schema.name, if is_key schema i then Value.TStr else a.Schema.ty))
             (Schema.attrs schema))
      in
      ( schema',
        fun t ->
          Array.mapi
            (fun i v ->
              match v with
              | Value.Int x when is_key schema i -> Value.Str (Printf.sprintf "key-%09d" x)
              | v -> v)
            t ))
    db

let chunk k xs =
  let k = max 1 k in
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = k then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let delete_insert (u : Fivm.Delta.update) =
  [ Fivm.Delta.delete u.relation u.tuple; Fivm.Delta.insert u.relation u.tuple ]

let hostile ?(seed = 7) shape (db : Database.t) =
  let db = lattice_database db in
  let db = match shape with High_card -> high_card_database db | _ -> db in
  let rng = Util.Prng.create (seed lxor 0x5ca1ab1e) in
  let base = inserts_of_database ~seed db in
  let fact_name = Relation.name (fact_relation db) in
  let fact_inserts =
    Array.of_list (List.filter (fun (u : Fivm.Delta.update) -> u.relation = fact_name) base)
  in
  let churn_pairs fraction =
    List.concat_map
      (fun u -> if Util.Prng.float rng 1.0 < fraction then delete_insert u else [])
      (Array.to_list fact_inserts)
  in
  let batches =
    match shape with
    | Single_tuple -> List.map (fun u -> [ u ]) base
    | Batched k -> chunk k base
    | Churn f -> chunk 64 (base @ churn_pairs f)
    | Net_zero ->
        (* churn 1.0 with three victim classes: deleted for good (the group
           nets to ZERO and must vanish from the maintained views), plain
           delete/re-insert, and double-delete/double-insert (multiplicity
           dips PAST zero to -1 before returning). *)
        let ops =
          List.concat
            (List.mapi
               (fun i (u : Fivm.Delta.update) ->
                 match i mod 3 with
                 | 0 -> [ Fivm.Delta.delete u.relation u.tuple ]
                 | 1 -> delete_insert u
                 | _ ->
                     [
                       Fivm.Delta.delete u.relation u.tuple;
                       Fivm.Delta.delete u.relation u.tuple;
                       Fivm.Delta.insert u.relation u.tuple;
                       Fivm.Delta.insert u.relation u.tuple;
                     ])
               (Array.to_list fact_inserts))
        in
        chunk 64 (base @ ops)
    | Out_of_order k ->
        (* window-shuffled delivery: deletes can overtake the inserts they
           cancel (transient negative multiplicities), facts can overtake
           dimensions. Exact-lattice arithmetic keeps the FINAL maintained
           state order-independent, which is precisely what the cell
           checks. *)
        let stream = Array.of_list (base @ churn_pairs 0.25) in
        let n = Array.length stream in
        let w = max 2 k in
        let i = ref 0 in
        while !i < n do
          let len = min w (n - !i) in
          let window = Array.sub stream !i len in
          Util.Prng.shuffle_in_place rng window;
          Array.blit window 0 stream !i len;
          i := !i + len
        done;
        chunk w (Array.to_list stream)
    | Zipf_churn s ->
        (* victim choice is Zipf-skewed over the (already skew-keyed) fact
           tuples: hot keys are churned over and over, cold ones almost
           never — the shard-routing and view-index hot paths see the same
           keys repeatedly. *)
        let n = Array.length fact_inserts in
        let ops =
          if n = 0 then []
          else
            List.concat
              (List.init n (fun _ ->
                   delete_insert fact_inserts.(Util.Prng.zipf rng ~n ~s - 1)))
        in
        chunk 64 (base @ ops)
    | High_card -> chunk 64 (base @ churn_pairs 0.25)
  in
  (db, batches)
