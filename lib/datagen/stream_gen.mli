(** Update-stream generation for the IVM experiments (Figure 4 right) and
    the hostile-stream scenario grammar (the dataset x shape x layer
    differential matrix). *)

val inserts_of_database : ?seed:int -> Relational.Database.t -> Fivm.Delta.update list
(** All tuples as single-tuple inserts against an initially empty database:
    shuffled dimensions first (reference data before facts), then the
    shuffled fact. *)

val with_churn : ?seed:int -> ?churn:float -> Relational.Database.t -> Fivm.Delta.update list
(** The insert stream followed by delete/re-insert pairs for a [churn]
    fraction of fact tuples — exercises the additive inverse. *)

val fact_relation : Relational.Database.t -> Relational.Relation.t
(** The highest-cardinality relation — the stream's fact table. *)

(** Hostile stream shapes, schema-agnostic over any generated database. *)
type shape =
  | Single_tuple  (** one update per delta batch *)
  | Batched of int  (** inserts delivered in batches of K *)
  | Churn of float  (** delete/re-insert pairs for a fraction of the fact *)
  | Net_zero
      (** churn 1.0 with groups deleted for good (net ZERO multiplicity) and
          double-delete windows (multiplicity dips PAST zero to -1) *)
  | Out_of_order of int
      (** delivery shuffled within windows of K: deletes can overtake the
          inserts they cancel, facts can overtake dimensions *)
  | Zipf_churn of float
      (** churn victims drawn Zipf(s): hot fact keys churned repeatedly *)
  | High_card
      (** every shared int join key rewritten to a string — forces
          [Keypack]'s boxed fallback on all shard/index routing *)

val shapes : (string * shape) list
(** The canonical named cells ("single", "batched", "churn", "net-zero",
    "out-of-order", "zipf", "high-card") used by the CLI, CI and bench. *)

val shape_name : shape -> string
val shape_of_string : string -> shape option

val lattice_database : Relational.Database.t -> Relational.Database.t
(** Copy with every float feature snapped onto the dyadic lattice
    {1/16 .. 64/16}: covariance-ring arithmetic over such values is EXACT,
    so maintained results are bit-identical to recomputation under any
    delivery order, batching or sharding. *)

val high_card_database : Relational.Database.t -> Relational.Database.t
(** Copy with every shared int join key rewritten (consistently, preserving
    FK integrity) to a high-cardinality string key. *)

val hostile :
  ?seed:int ->
  shape ->
  Relational.Database.t ->
  Relational.Database.t * Fivm.Delta.update list list
(** [hostile shape db] is the pair of the transformed database (lattice
    floats, plus string keys for [High_card]) and the delta-batch stream of
    the given shape over it. Every shape's stream nets to a final state with
    non-negative multiplicities, so maintained == recompute differentials
    are well-defined at the end of the stream. *)
