(* Synthetic Yelp dataset (public Yelp academic dataset schema, as used by
   LMFAO's evaluation):

     Review(userid, busid, stars, useful, funny, cool)  -- fact
     Business(busid, bcity, bstate, bstars, breviewcount, isopen, lat, lon)
     User(userid, ureviewcount, uavgstars, fans, elite, + 6 compliment
          counters)
     Attribute(busid, + 12 business attributes: noise, goodfor, wifi,
          parking, alcohol, ambience, smoking, takeout, delivery,
          creditcards, tv, outdoor)

   Join tree: Review joins User on userid and Business on busid; Attribute
   joins Business on busid. The response is the review's star rating. *)

open Relational
open Gen_util

let name = "yelp"

type sizes = { n_users : int; n_business : int; n_reviews : int }

let sizes ?(scale = 1.0) () =
  {
    n_users = scaled 500 scale;
    n_business = scaled 200 scale;
    n_reviews = scaled ~floor:20 25_000 scale;
  }

let generate ?(scale = 1.0) ~seed () =
  let s = sizes ~scale () in
  let rng = Util.Prng.create seed in
  let business =
    build "Business"
      [
        ("busid", Value.TInt); ("bcity", Value.TInt); ("bstate", Value.TInt);
        ("bstars", Value.TFloat); ("breviewcount", Value.TFloat);
        ("isopen", Value.TInt); ("lat", Value.TFloat); ("lon", Value.TFloat);
      ]
      s.n_business
      (fun busid ->
        let state = Util.Prng.int rng 12 in
        [|
          int busid; int ((state * 4) + Util.Prng.int rng 4); int state;
          flt (Util.Prng.float_range rng 1.0 5.0);
          flt (float_of_int (Util.Prng.int rng 900));
          int (if Util.Prng.float rng 1.0 < 0.85 then 1 else 0);
          flt (Util.Prng.float_range rng 25.0 49.0);
          flt (Util.Prng.float_range rng (-124.0) (-70.0));
        |])
  in
  let users =
    build "User"
      ([
         ("userid", Value.TInt); ("ureviewcount", Value.TFloat);
         ("uavgstars", Value.TFloat); ("fans", Value.TFloat);
         ("elite", Value.TInt); ("compliments", Value.TFloat);
       ]
      @ List.map
          (fun n -> (n, Value.TFloat))
          [
            "complimenthot"; "complimentmore"; "complimentcute";
            "complimentfunny"; "complimentcool"; "complimentwriter";
          ])
      s.n_users
      (fun userid ->
        Array.append
          [|
            int userid;
            flt (float_of_int (Util.Prng.int rng 400));
            flt (Util.Prng.float_range rng 1.0 5.0);
            flt (float_of_int (Util.Prng.int rng 150));
            int (if Util.Prng.float rng 1.0 < 0.1 then 1 else 0);
            flt (float_of_int (Util.Prng.int rng 300));
          |]
          (Array.init 6 (fun _ -> flt (float_of_int (Util.Prng.int rng 60)))))
  in
  let attributes =
    build "Attribute"
      (("busid", Value.TInt)
      :: List.map
           (fun n -> (n, Value.TInt))
           [
             "attnoise"; "attgoodfor"; "attwifi"; "attparking"; "attalcohol";
             "attambience"; "attsmoking"; "atttakeout"; "attdelivery";
             "attcreditcards"; "atttv"; "attoutdoor";
           ])
      s.n_business
      (fun busid ->
        Array.append [| int busid |]
          (Array.init 12 (fun k -> int (Util.Prng.int rng (2 + (k mod 4))))))
  in
  let b_stars =
    let c = Relation.column business 3 in
    Array.init s.n_business (fun b -> Column.float_at c b)
  in
  let u_stars =
    let c = Relation.column users 2 in
    Array.init s.n_users (fun u -> Column.float_at c u)
  in
  let reviews =
    build "Review"
      [
        ("userid", Value.TInt); ("busid", Value.TInt); ("stars", Value.TFloat);
        ("useful", Value.TFloat); ("funny", Value.TFloat); ("cool", Value.TFloat);
      ]
      s.n_reviews
      (fun _ ->
        let userid = Util.Prng.zipf rng ~n:s.n_users ~s:1.1 - 1 in
        let busid = Util.Prng.zipf rng ~n:s.n_business ~s:1.1 - 1 in
        let stars =
          clamp 1.0 5.0
            ((0.5 *. b_stars.(busid))
            +. (0.4 *. u_stars.(userid))
            +. Util.Prng.gaussian rng ~mu:0.5 ~sigma:0.7)
        in
        [|
          int userid; int busid; flt stars;
          flt (float_of_int (Util.Prng.int rng 20));
          flt (float_of_int (Util.Prng.int rng 10));
          flt (float_of_int (Util.Prng.int rng 10));
        |])
  in
  Database.create name [ reviews; business; users; attributes ]

let features =
  Aggregates.Feature.make ~response:"stars" ~thresholds_per_feature:20
    ~continuous:
      [ "useful"; "funny"; "cool"; "bstars"; "breviewcount"; "lat"; "lon";
        "ureviewcount"; "uavgstars"; "fans"; "compliments";
        "complimenthot"; "complimentmore"; "complimentcute";
        "complimentfunny"; "complimentcool"; "complimentwriter" ]
    ~categorical:
      [ "bcity"; "bstate"; "isopen"; "elite"; "attnoise"; "attgoodfor";
        "attwifi"; "attparking"; "attalcohol"; "attambience"; "attsmoking";
        "atttakeout"; "attdelivery"; "attcreditcards"; "atttv"; "attoutdoor" ]
    ()

let mi_attrs =
  [ "bcity"; "bstate"; "isopen"; "elite"; "attnoise"; "attgoodfor";
    "attwifi"; "attparking"; "attalcohol"; "attambience"; "attsmoking";
    "atttakeout"; "attdelivery"; "attcreditcards"; "atttv"; "attoutdoor";
    "busid"; "userid" ]

let ivm_features = [ "stars"; "useful"; "bstars"; "ureviewcount"; "uavgstars"; "fans" ]
