(* Synthetic retailer dataset (Figures 2 and 3).

   Schema-faithful stand-in for the paper's US-retailer dataset:

     Inventory(locn, dateid, ksn, inventoryunits)          -- fact, 84M rows
     Items(ksn, subcategory, category, categoryCluster, prize)
     Stores(locn, zip, rgn_cd, clim_zn, + 11 area/distance measures)
     Demographics(zip, + 15 population measures)
     Weather(locn, dateid, rain, snow, thunder, maxtemp, mintemp, meanwind)

   The join is a key-fkey snowflake: Inventory joins Items on ksn, Stores on
   locn, Weather on (locn, dateid); Demographics joins Stores on zip. The
   response (inventoryunits) is generated as a noisy linear function of item
   price, store area, demographics and weather, so a regression model has
   genuine signal to find. Cardinalities scale with [scale]; [scale = 1.0]
   approximates the paper's relative proportions at 1/1000 of its absolute
   size (so the default benchmarks finish in seconds). *)

open Relational
open Gen_util

let name = "retailer"

type sizes = {
  n_locn : int;
  n_zip : int;
  n_dates : int;
  n_items : int;
  n_inventory : int;
}

let sizes ?(scale = 1.0) () =
  {
    n_locn = scaled 130 scale;
    n_zip = scaled 120 scale;
    n_dates = scaled 90 scale;
    n_items = scaled 560 scale;
    n_inventory = scaled ~floor:20 84_000 scale;
  }

let generate ?(scale = 1.0) ~seed () =
  let s = sizes ~scale () in
  let rng = Util.Prng.create seed in
  let zip_of_locn = Array.init s.n_locn (fun _ -> Util.Prng.int rng s.n_zip) in
  let items =
    build "Items"
      [
        ("ksn", Value.TInt);
        ("subcategory", Value.TInt);
        ("category", Value.TInt);
        ("categoryCluster", Value.TInt);
        ("prize", Value.TFloat);
      ]
      s.n_items
      (fun ksn ->
        let category = Util.Prng.int rng 20 in
        [|
          int ksn;
          int ((category * 5) + Util.Prng.int rng 5);
          int category;
          int (category mod 6);
          flt (Util.Prng.float_range rng 0.5 80.0);
        |])
  in
  let stores =
    build "Stores"
      ([ ("locn", Value.TInt); ("zip", Value.TInt); ("rgn_cd", Value.TInt); ("clim_zn", Value.TInt) ]
      @ List.map
          (fun n -> (n, Value.TFloat))
          [
            "tot_area_sq_ft"; "sell_area_sq_ft"; "avghhi";
            "supertargetdistance"; "supertargetdrivetime";
            "targetdistance"; "targetdrivetime";
            "walmartdistance"; "walmartdrivetime";
            "walmartsupercenterdistance"; "walmartsupercenterdrivetime";
          ])
      s.n_locn
      (fun locn ->
        let area = Util.Prng.float_range rng 20_000.0 200_000.0 in
        Array.append
          [| int locn; int zip_of_locn.(locn); int (Util.Prng.int rng 8); int (Util.Prng.int rng 5) |]
          [|
            flt area;
            flt (area *. Util.Prng.float_range rng 0.5 0.9);
            flt (Util.Prng.float_range rng 30_000.0 120_000.0);
            flt (Util.Prng.float_range rng 0.5 40.0);
            flt (Util.Prng.float_range rng 1.0 60.0);
            flt (Util.Prng.float_range rng 0.5 40.0);
            flt (Util.Prng.float_range rng 1.0 60.0);
            flt (Util.Prng.float_range rng 0.5 40.0);
            flt (Util.Prng.float_range rng 1.0 60.0);
            flt (Util.Prng.float_range rng 0.5 40.0);
            flt (Util.Prng.float_range rng 1.0 60.0);
          |])
  in
  let demographics =
    build "Demographics"
      (("zip", Value.TInt)
      :: List.map
           (fun n -> (n, Value.TFloat))
           [
             "population"; "white"; "asian"; "pacific"; "black"; "medianage";
             "occupiedhouseunits"; "houseunits"; "families"; "households";
             "husbwife"; "males"; "females"; "householdschildren"; "hispanic";
           ])
      s.n_zip
      (fun zip ->
        let population = Util.Prng.float_range rng 1_000.0 80_000.0 in
        let frac () = population *. Util.Prng.float_range rng 0.05 0.6 in
        [|
          int zip;
          flt population; flt (frac ()); flt (frac ()); flt (frac ());
          flt (frac ()); flt (Util.Prng.float_range rng 20.0 55.0);
          flt (frac ()); flt (frac ()); flt (frac ()); flt (frac ());
          flt (frac ()); flt (frac ()); flt (frac ()); flt (frac ()); flt (frac ());
        |])
  in
  let weather =
    (* one row per (locn, dateid) *)
    build "Weather"
      [
        ("locn", Value.TInt); ("dateid", Value.TInt);
        ("rain", Value.TInt); ("snow", Value.TInt); ("thunder", Value.TInt);
        ("maxtemp", Value.TFloat); ("mintemp", Value.TFloat); ("meanwind", Value.TFloat);
      ]
      (s.n_locn * s.n_dates)
      (fun i ->
        let locn = i / s.n_dates and dateid = i mod s.n_dates in
        let maxt = Util.Prng.float_range rng (-5.0) 38.0 in
        [|
          int locn; int dateid;
          int (if Util.Prng.float rng 1.0 < 0.25 then 1 else 0);
          int (if maxt < 2.0 && Util.Prng.bool rng then 1 else 0);
          int (if Util.Prng.float rng 1.0 < 0.05 then 1 else 0);
          flt maxt;
          flt (maxt -. Util.Prng.float_range rng 2.0 12.0);
          flt (Util.Prng.float_range rng 0.0 25.0);
        |])
  in
  let item_price =
    let c = Relation.column items 4 in
    Array.init s.n_items (fun k -> Column.float_at c k)
  in
  let store_area =
    let c = Relation.column stores 4 in
    Array.init s.n_locn (fun l -> Column.float_at c l)
  in
  let inventory =
    build "Inventory"
      [
        ("locn", Value.TInt); ("dateid", Value.TInt); ("ksn", Value.TInt);
        ("inventoryunits", Value.TFloat);
      ]
      s.n_inventory
      (fun _ ->
        let locn = Util.Prng.int rng s.n_locn in
        let dateid = Util.Prng.int rng s.n_dates in
        let ksn = Util.Prng.zipf rng ~n:s.n_items ~s:1.05 - 1 in
        (* the signal: cheaper items and bigger stores carry more stock *)
        let units =
          clamp 0.0 5_000.0
            ((120.0 -. item_price.(ksn))
            +. (store_area.(locn) /. 2_000.0)
            +. Util.Prng.gaussian rng ~mu:0.0 ~sigma:15.0)
        in
        [| int locn; int dateid; int ksn; flt units |])
  in
  Database.create name [ inventory; items; stores; demographics; weather ]

(* Canonical feature map: join keys are excluded; binary weather flags and
   item taxonomy are categorical; everything else is continuous. *)
let features =
  Aggregates.Feature.make ~response:"inventoryunits" ~thresholds_per_feature:30
    ~continuous:
      [
        "prize";
        "tot_area_sq_ft"; "sell_area_sq_ft"; "avghhi";
        "supertargetdistance"; "supertargetdrivetime";
        "targetdistance"; "targetdrivetime";
        "walmartdistance"; "walmartdrivetime";
        "walmartsupercenterdistance"; "walmartsupercenterdrivetime";
        "population"; "white"; "asian"; "pacific"; "black"; "medianage";
        "occupiedhouseunits"; "houseunits"; "families"; "households";
        "husbwife"; "males"; "females"; "householdschildren"; "hispanic";
        "maxtemp"; "mintemp"; "meanwind";
      ]
    ~categorical:
      [ "subcategory"; "category"; "categoryCluster"; "rgn_cd"; "clim_zn";
        "rain"; "snow"; "thunder" ]
    ()

(* Categorical attributes used by the mutual-information workload (includes
   the join dimensions, as the paper's Chow-Liu task does). *)
let mi_attrs =
  [ "subcategory"; "category"; "categoryCluster"; "rgn_cd"; "clim_zn";
    "rain"; "snow"; "thunder"; "locn"; "dateid" ]

(* Numeric features for the IVM experiment (kept moderate so the per-update
   ring operations match the paper's setting without dominating runtime). *)
let ivm_features =
  [ "inventoryunits"; "prize"; "tot_area_sq_ft"; "avghhi"; "population";
    "medianage"; "maxtemp"; "mintemp"; "meanwind"; "households" ]
