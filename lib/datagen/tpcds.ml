(* Synthetic TPC-DS-style dataset: a wide store_sales fact joining the usual
   wide dimensions. Column sets follow the TPC-DS spec's names (subset), so
   the schema is genuinely wide — which is what drives the paper's largest
   batch sizes for this dataset (Figure 5, TPC-DS column).

     StoreSales(datesk, itemsk, storesk, customersk, quantity,
                wholesalecost, listprice, salesprice, extdiscountamt,
                extsalesprice, extwholesalecost, extlistprice, exttax,
                couponamt, netpaid, netpaidtax, netprofit)     -- fact
     DateDim(datesk, year, moy, dom, dow, qoy, holiday, weekend)
     Item(itemsk, icategory, iclass, ibrand, icurrentprice, iwholesalecost)
     Store(storesk, sstate, scounty, sfloorspace, semployees, smarket)
     Customer(customersk, cbirthyear, cgender, ceducation, ccredit, cdepcount)
     HouseholdDem(hdemosk, hdincomeband, hdbuypotential, hddepcount,
                  hdvehiclecount)
     Promotion(promosk, pchannelemail, pchanneltv, pcost, presponsetarget)
*)

open Relational
open Gen_util

let name = "tpcds"

type sizes = {
  n_dates : int;
  n_items : int;
  n_stores : int;
  n_customers : int;
  n_sales : int;
}

let sizes ?(scale = 1.0) () =
  {
    n_dates = scaled 120 scale;
    n_items = scaled 300 scale;
    n_stores = scaled 30 scale;
    n_customers = scaled 800 scale;
    n_sales = scaled ~floor:20 30_000 scale;
  }

let generate ?(scale = 1.0) ~seed () =
  let s = sizes ~scale () in
  let rng = Util.Prng.create seed in
  let date_dim =
    build "DateDim"
      [
        ("datesk", Value.TInt); ("year", Value.TInt); ("moy", Value.TInt);
        ("dom", Value.TInt); ("dow", Value.TInt); ("qoy", Value.TInt);
        ("holiday", Value.TInt); ("weekend", Value.TInt);
      ]
      s.n_dates
      (fun datesk ->
        let moy = datesk * 12 / Stdlib.max 1 s.n_dates in
        [|
          int datesk; int (2000 + (datesk / 365)); int moy; int (datesk mod 28);
          int (datesk mod 7); int (moy / 3);
          int (if Util.Prng.float rng 1.0 < 0.05 then 1 else 0);
          int (if datesk mod 7 >= 5 then 1 else 0);
        |])
  in
  let item =
    build "Item"
      [
        ("itemsk", Value.TInt); ("icategory", Value.TInt); ("iclass", Value.TInt);
        ("ibrand", Value.TInt); ("icurrentprice", Value.TFloat);
        ("iwholesalecost", Value.TFloat);
      ]
      s.n_items
      (fun itemsk ->
        let price = Util.Prng.float_range rng 1.0 300.0 in
        [|
          int itemsk; int (Util.Prng.int rng 10); int (Util.Prng.int rng 100);
          int (Util.Prng.int rng 50); flt price;
          flt (price *. Util.Prng.float_range rng 0.4 0.8);
        |])
  in
  let store =
    build "Store"
      [
        ("storesk", Value.TInt); ("sstate", Value.TInt); ("scounty", Value.TInt);
        ("sfloorspace", Value.TFloat); ("semployees", Value.TFloat);
        ("smarket", Value.TInt);
      ]
      s.n_stores
      (fun storesk ->
        [|
          int storesk; int (Util.Prng.int rng 20); int (Util.Prng.int rng 60);
          flt (Util.Prng.float_range rng 5_000_000.0 9_000_000.0);
          flt (float_of_int (Util.Prng.int_range rng 200 300));
          int (Util.Prng.int rng 10);
        |])
  in
  let customer =
    build "Customer"
      [
        ("customersk", Value.TInt); ("cbirthyear", Value.TFloat);
        ("cgender", Value.TInt); ("ceducation", Value.TInt);
        ("ccredit", Value.TInt); ("cdepcount", Value.TFloat);
      ]
      s.n_customers
      (fun customersk ->
        [|
          int customersk; flt (float_of_int (Util.Prng.int_range rng 1930 2005));
          int (Util.Prng.int rng 2); int (Util.Prng.int rng 7);
          int (Util.Prng.int rng 4); flt (float_of_int (Util.Prng.int rng 7));
        |])
  in
  let n_hdemo = Stdlib.max 3 (s.n_customers / 10) in
  let household =
    build "HouseholdDem"
      [
        ("hdemosk", Value.TInt); ("hdincomeband", Value.TInt);
        ("hdbuypotential", Value.TInt); ("hddepcount", Value.TFloat);
        ("hdvehiclecount", Value.TFloat);
      ]
      n_hdemo
      (fun hdemosk ->
        [|
          int hdemosk; int (Util.Prng.int rng 20); int (Util.Prng.int rng 6);
          flt (float_of_int (Util.Prng.int rng 9));
          flt (float_of_int (Util.Prng.int rng 4));
        |])
  in
  let n_promo = Stdlib.max 3 (s.n_items / 10) in
  let promotion =
    build "Promotion"
      [
        ("promosk", Value.TInt); ("pchannelemail", Value.TInt);
        ("pchanneltv", Value.TInt); ("pcost", Value.TFloat);
        ("presponsetarget", Value.TInt);
      ]
      n_promo
      (fun promosk ->
        [|
          int promosk; int (Util.Prng.int rng 2); int (Util.Prng.int rng 2);
          flt (Util.Prng.float_range rng 100.0 10_000.0);
          int (Util.Prng.int rng 3);
        |])
  in
  let item_price =
    let c = Relation.column item 4 in
    Array.init s.n_items (fun i -> Column.float_at c i)
  in
  let store_sales =
    build "StoreSales"
      ([
         ("datesk", Value.TInt); ("itemsk", Value.TInt); ("storesk", Value.TInt);
         ("customersk", Value.TInt); ("hdemosk", Value.TInt);
         ("promosk", Value.TInt); ("quantity", Value.TFloat);
       ]
      @ List.map
          (fun n -> (n, Value.TFloat))
          [
            "wholesalecost"; "listprice"; "salesprice"; "extdiscountamt";
            "extsalesprice"; "extwholesalecost"; "extlistprice"; "exttax";
            "couponamt"; "netpaid"; "netpaidtax"; "netprofit";
          ])
      s.n_sales
      (fun _ ->
        let itemsk = Util.Prng.zipf rng ~n:s.n_items ~s:1.1 - 1 in
        let price = item_price.(itemsk) in
        let qty =
          clamp 1.0 100.0
            ((200.0 /. (1.0 +. price)) +. Util.Prng.gaussian rng ~mu:0.0 ~sigma:3.0)
        in
        let sales = qty *. price *. Util.Prng.float_range rng 0.7 1.0 in
        let cost = qty *. price *. Util.Prng.float_range rng 0.4 0.7 in
        Array.append
          [|
            int (Util.Prng.int rng s.n_dates); int itemsk;
            int (Util.Prng.int rng s.n_stores); int (Util.Prng.int rng s.n_customers);
            int (Util.Prng.int rng n_hdemo); int (Util.Prng.int rng n_promo);
            flt qty;
          |]
          [|
            flt cost; flt (price *. qty); flt sales;
            flt (sales *. Util.Prng.float_range rng 0.0 0.2);
            flt sales; flt cost; flt (price *. qty);
            flt (sales *. 0.08);
            flt (sales *. Util.Prng.float_range rng 0.0 0.1);
            flt (sales *. 0.95); flt (sales *. 1.03); flt (sales -. cost);
          |])
  in
  Database.create name
    [ store_sales; date_dim; item; store; customer; household; promotion ]

let features =
  Aggregates.Feature.make ~response:"quantity" ~thresholds_per_feature:20
    ~continuous:
      [
        "wholesalecost"; "listprice"; "salesprice"; "extdiscountamt";
        "extsalesprice"; "extwholesalecost"; "extlistprice"; "exttax";
        "couponamt"; "netpaid"; "netpaidtax"; "netprofit";
        "icurrentprice"; "iwholesalecost"; "sfloorspace"; "semployees";
        "cbirthyear"; "cdepcount"; "hddepcount"; "hdvehiclecount"; "pcost";
      ]
    ~categorical:
      [
        "year"; "moy"; "dom"; "dow"; "qoy"; "holiday"; "weekend";
        "icategory"; "iclass"; "ibrand"; "sstate"; "scounty"; "smarket";
        "cgender"; "ceducation"; "ccredit"; "hdincomeband"; "hdbuypotential";
        "pchannelemail"; "pchanneltv"; "presponsetarget";
      ]
    ()

let mi_attrs =
  [
    "year"; "moy"; "dom"; "dow"; "qoy"; "holiday"; "weekend"; "icategory";
    "iclass"; "ibrand"; "sstate"; "scounty"; "smarket"; "cgender";
    "ceducation"; "ccredit"; "hdincomeband"; "hdbuypotential";
    "pchannelemail"; "pchanneltv"; "presponsetarget"; "storesk"; "itemsk";
  ]

let ivm_features =
  [ "quantity"; "salesprice"; "netprofit"; "icurrentprice"; "sfloorspace";
    "cbirthyear" ]
