(* Synthetic Corporación Favorita dataset (grocery sales forecasting), with
   the public Kaggle schema used by LMFAO's evaluation:

     Sales(date, store, item, unitsales, onpromotion)   -- fact
     Stores(store, city, state, stype, cluster)
     Items(item, family, itemclass, perishable)
     Transactions(date, store, transactions)
     Oil(date, oilprice)
     Holidays(date, holtype, locale, transferred)

   Join tree: Sales joins Items on item, Transactions on (date, store);
   Transactions joins Stores on store and Oil/Holidays on date. *)

open Relational
open Gen_util

let name = "favorita"

type sizes = { n_stores : int; n_items : int; n_dates : int; n_sales : int }

let sizes ?(scale = 1.0) () =
  {
    n_stores = scaled 54 scale;
    n_items = scaled 400 scale;
    n_dates = scaled 120 scale;
    n_sales = scaled ~floor:20 30_000 scale;
  }

let generate ?(scale = 1.0) ~seed () =
  let s = sizes ~scale () in
  let rng = Util.Prng.create seed in
  let stores =
    build "Stores"
      [
        ("store", Value.TInt); ("city", Value.TInt); ("state", Value.TInt);
        ("stype", Value.TInt); ("cluster", Value.TInt);
      ]
      s.n_stores
      (fun store ->
        let state = Util.Prng.int rng 16 in
        [| int store; int ((state * 3) + Util.Prng.int rng 3); int state;
           int (Util.Prng.int rng 5); int (Util.Prng.int rng 17) |])
  in
  let items =
    build "Items"
      [
        ("item", Value.TInt); ("family", Value.TInt);
        ("itemclass", Value.TFloat); ("perishable", Value.TInt);
      ]
      s.n_items
      (fun item ->
        [| int item; int (Util.Prng.int rng 33);
           flt (float_of_int (Util.Prng.int rng 340));
           int (if Util.Prng.float rng 1.0 < 0.25 then 1 else 0) |])
  in
  let transactions =
    build "Transactions"
      [ ("date", Value.TInt); ("store", Value.TInt); ("transactions", Value.TFloat) ]
      (s.n_dates * s.n_stores)
      (fun i ->
        let date = i / s.n_stores and store = i mod s.n_stores in
        [| int date; int store; flt (Util.Prng.float_range rng 200.0 5_000.0) |])
  in
  let oil =
    build "Oil"
      [ ("date", Value.TInt); ("oilprice", Value.TFloat) ]
      s.n_dates
      (fun date -> [| int date; flt (Util.Prng.float_range rng 26.0 110.0) |])
  in
  let holidays =
    build "Holidays"
      [
        ("date", Value.TInt); ("holtype", Value.TInt); ("locale", Value.TInt);
        ("transferred", Value.TInt);
      ]
      s.n_dates
      (fun date ->
        [| int date; int (Util.Prng.int rng 6); int (Util.Prng.int rng 3);
           int (if Util.Prng.float rng 1.0 < 0.1 then 1 else 0) |])
  in
  let perishable =
    let c = Relation.column items 3 in
    Array.init s.n_items (fun i -> Column.int_at c i)
  in
  let sales =
    build "Sales"
      [
        ("date", Value.TInt); ("store", Value.TInt); ("item", Value.TInt);
        ("unitsales", Value.TFloat); ("onpromotion", Value.TInt);
      ]
      s.n_sales
      (fun _ ->
        let item = Util.Prng.zipf rng ~n:s.n_items ~s:1.1 - 1 in
        let promo = if Util.Prng.float rng 1.0 < 0.15 then 1 else 0 in
        let units =
          clamp 0.0 500.0
            (8.0
            +. (12.0 *. float_of_int promo)
            +. (4.0 *. float_of_int perishable.(item))
            +. Util.Prng.gaussian rng ~mu:0.0 ~sigma:5.0)
        in
        [| int (Util.Prng.int rng s.n_dates); int (Util.Prng.int rng s.n_stores);
           int item; flt units; int promo |])
  in
  Database.create name [ sales; stores; items; transactions; oil; holidays ]

let features =
  Aggregates.Feature.make ~response:"unitsales" ~thresholds_per_feature:20
    ~continuous:[ "transactions"; "oilprice"; "itemclass" ]
    ~categorical:
      [ "onpromotion"; "stype"; "cluster"; "family"; "perishable";
        "holtype"; "locale"; "transferred" ]
    ()

let mi_attrs =
  [ "onpromotion"; "stype"; "cluster"; "family"; "perishable"; "holtype";
    "locale"; "transferred"; "city"; "state"; "store"; "item"; "date" ]

let ivm_features = [ "unitsales"; "transactions"; "oilprice"; "itemclass" ]
