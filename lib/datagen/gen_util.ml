(* Shared helpers for the synthetic dataset generators. *)

open Relational

let int n = Value.Int n
let flt x = Value.Float x

(* Round a scaled cardinality, with a floor so tiny scales stay joinable. *)
let scaled ?(floor = 3) base scale =
  Stdlib.max floor (int_of_float (float_of_int base *. scale))

(* Observability: tuple volume across all generators, plus one
   [datagen.<relation>] span per built relation. *)
let c_tuples = Obs.counter "datagen.tuples"

let build name attrs count gen =
  Obs.with_span ("datagen." ^ name) @@ fun () ->
  let schema = Schema.make attrs in
  let rel = Relation.create ~capacity:(Stdlib.max 1 count) name schema in
  for i = 0 to count - 1 do
    Relation.append rel (gen i)
  done;
  Obs.add c_tuples count;
  rel

(* Clamp to keep generated measures in sane ranges. *)
let clamp lo hi x = Stdlib.max lo (Stdlib.min hi x)
