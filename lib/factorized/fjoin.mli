(** Factorised join computation (Section 5.1): trie-based multiway
    intersection down a variable order, folded with a caller-supplied
    algebra — building {!Frep.t} gives the factorised join; folding with a
    semiring gives fused join-aggregate evaluation that never materialises
    the join (Figure 9). For acyclic queries with orders from
    {!Var_order.of_join_tree} this runs in O(input + factorised output). *)

open Relational

module VTbl : Hashtbl.S with type key = Value.t

type trie = Leaf of int | Node of vtbl

and vtbl = { ints : trie Keypack.Itbl.t; others : trie VTbl.t }
(** Relation tries following the variable order; leaves carry bag
    multiplicities. Each level is a hybrid table: int values (read unboxed
    from the typed columns) hash as ints, other values as boxed [Value.t]. *)

val build_trie : Relation.t -> string list -> vtbl
(** [build_trie rel attrs] nests [rel] by [attrs] (ordered root-first). *)

(** The algebra a traversal folds with. *)
type 'a algebra = {
  unit_ : 'a;  (** empty product *)
  mult : int -> 'a -> 'a;  (** bag multiplicity *)
  union : string -> (Value.t * 'a) list -> 'a;  (** a variable's branches *)
  prod : 'a list -> 'a;  (** conditionally independent parts *)
}

val frep_algebra : Frep.t algebra

val semiring_algebra :
  (module Rings.Sig.SEMIRING with type t = 'a) ->
  lift:(string -> Value.t -> 'a) ->
  'a algebra
(** [lift var v] is the semiring image of a value (Figure 9's re-mapping). *)

exception Unconstrained_variable of string
(** Raised when a variable of the order is covered by no relation. *)

val fold : ?cache:bool -> 'a algebra -> Relation.t list -> Var_order.t -> 'a
(** The generic traversal. [cache] (default true) shares subtree results per
    dependency-key binding, producing DAGs / avoiding recomputation. *)

val factorize : ?cache:bool -> Relation.t list -> Var_order.t -> Frep.t
(** The factorised natural join of the relations. *)

val eval_semiring :
  ?cache:bool ->
  (module Rings.Sig.SEMIRING with type t = 'a) ->
  ?lift:(string -> Value.t -> 'a) ->
  Relation.t list ->
  Var_order.t ->
  'a
(** Fused join-aggregate evaluation; [lift] defaults to the constant one. *)

val count : ?cache:bool -> Relation.t list -> Var_order.t -> int
(** COUNT of the join, in the natural-number semiring. *)

val sum_product :
  ?cache:bool -> Relation.t list -> Var_order.t -> vars:string list -> float
(** SUM of the product of the named numeric variables over the join. *)
