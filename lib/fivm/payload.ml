(* Payload rings for incremental view maintenance: a ring plus efficient
   integer scaling (for Z-multiplicities). *)

module type S = sig
  include Rings.Sig.RING

  val smul : int -> t -> t
  (** [smul m x] is the m-fold sum of [x] (negative m uses [neg]). *)

  val is_zero : t -> bool
  (** EXACT additive-identity test (no tolerance). Used by the view trees to
      drop entries whose payload cancelled to zero, so a group that churned
      down to zero multiplicity leaves no trace — bit-matching a recompute
      that never saw the group. *)
end

module Float : S with type t = float = struct
  include Rings.Instances.R

  let smul m x = float_of_int m *. x
  let is_zero x = x = 0.0
end

(* The covariance ring at a fixed dimension: F-IVM's compound payload. *)
module Cov (D : sig
  val n : int
end) : S with type t = Rings.Covariance.t = struct
  include Rings.Covariance.Make (D)

  let smul m x = Rings.Covariance.smul (float_of_int m) x
  let is_zero = Rings.Covariance.is_zero
end

let cov n : (module S with type t = Rings.Covariance.t) =
  (module Cov (struct
    let n = n
  end))

(* Dimension-agnostic covariance payload: [Zero] and [One] are symbolic so
   that the module needs no static dimension (the dimension is read off the
   first concrete element). [add One One], [neg One] and [smul m One] have no
   dimension to build from and are rejected; the view-tree maintenance never
   produces them (lifts are always concrete). *)
module Cov_dyn : S with type t = [ `Zero | `One | `Elem of Rings.Covariance.t ] =
struct
  module C = Rings.Covariance

  type t = [ `Zero | `One | `Elem of C.t ]

  let zero = `Zero
  let one = `One

  let add a b =
    match (a, b) with
    | `Zero, x | x, `Zero -> x
    | `One, `Elem e | `Elem e, `One -> `Elem (C.add (C.one (C.dim e)) e)
    | `Elem x, `Elem y -> `Elem (C.add x y)
    | `One, `One -> invalid_arg "Cov_dyn.add: One + One has no dimension"

  let mul a b =
    match (a, b) with
    | `Zero, _ | _, `Zero -> `Zero
    | `One, x | x, `One -> x
    | `Elem x, `Elem y -> `Elem (C.mul x y)

  let neg = function
    | `Zero -> `Zero
    | `Elem e -> `Elem (C.neg e)
    | `One -> invalid_arg "Cov_dyn.neg: One has no dimension"

  let smul m = function
    | `Zero -> `Zero
    | `Elem e -> `Elem (C.smul (float_of_int m) e)
    | `One -> invalid_arg "Cov_dyn.smul: One has no dimension"

  let is_zero = function
    | `Zero -> true
    | `One -> false
    | `Elem e -> C.is_zero e

  let equal a b =
    match (a, b) with
    | `Zero, `Zero | `One, `One -> true
    | `Elem x, `Elem y -> C.equal x y
    | `Zero, `Elem e | `Elem e, `Zero -> C.equal (C.zero (C.dim e)) e
    | `One, `Elem e | `Elem e, `One -> C.equal (C.one (C.dim e)) e
    | `Zero, `One | `One, `Zero -> false

  let to_string = function
    | `Zero -> "0"
    | `One -> "1"
    | `Elem e -> C.to_string e
end

let cov_elem n = function
  | `Zero -> Rings.Covariance.zero n
  | `One -> Rings.Covariance.one n
  | `Elem e -> e
