(** Sharded, domain-parallel F-IVM maintenance.

    Delta streams are hash-partitioned by packed partition key
    ({!Relational.Keypack.shard_of_key}) into N shards; each shard runs a
    full {!Maintainer} (storage + view trees) and shards are maintained on
    separate domains via [Util.Pool]. Per-shard covariances are merged in
    canonical shard order (shard 0 first), so the merged answer is a
    deterministic function of the stream and the shard count.

    Correctness: the partition attribute appears in every join result, and
    every tuple carrying partition value [v] routes to [shard_of v] while
    relations without the attribute are broadcast to all shards — so each
    join result is produced by exactly one shard and the per-shard
    covariance triples sum to the unsharded answer. When the payload
    arithmetic is exact (e.g. dyadic-rational features of bounded
    magnitude) the merged triple is bit-identical to the unsharded one for
    every shard count; for general floats it is deterministic for a fixed
    shard count and equal to the unsharded answer up to summation order. *)

open Relational

(** {1 Partitioning plan} *)

type plan

val plan : ?attr:string -> shards:int -> Database.t -> plan
(** Build a routing plan over the database's schemas. The partition
    attribute defaults to the attribute appearing in the most relations
    (ties: larger summed cardinality, then lexicographically first).
    Raises [Invalid_argument] if [shards < 1], or if [attr] is given but
    appears in no relation. *)

val plan_attr : plan -> string
val plan_shards : plan -> int

val route_update : plan -> Delta.update -> int option
(** [Some k] when the update's relation contains the partition attribute:
    the update affects shard [k] only. [None] when the relation lacks the
    attribute and must be broadcast to every shard. Maintains the
    [fivm.shard.routed] / [fivm.shard.broadcast] counters. *)

val partition : plan -> Delta.update list -> Delta.update list array
(** Order-preserving per-shard queues; broadcast updates are replicated
    into every queue. Applying queue [k] to shard [k] (sequentially, in
    queue order) for every [k] reproduces exactly the per-shard effects of
    applying the whole stream in order. *)

(** {1 Sharded maintainer} *)

type t

val create :
  ?attr:string ->
  Maintainer.strategy ->
  Database.t ->
  features:string list ->
  shards:int ->
  t
(** N independent maintainers over the (initially empty) database schema,
    plus the routing plan. *)

val plan_of : t -> plan
val shards : t -> int
val strategy_of : t -> Maintainer.strategy

val maintainer : t -> int -> Maintainer.t
(** Shard [k]'s underlying maintainer (tests and checkpointing). *)

val apply : t -> Delta.update -> unit
(** Route one update and apply it on the calling domain. *)

val apply_batch : ?domains:int -> t -> Delta.update list -> unit
(** Partition the batch and maintain every shard in parallel (one
    [Util.Pool] task per shard; [?domains] caps the worker count, with
    [~domains:1] running all shards inline in shard order). Runs inside an
    [fivm.shard.batch] span; updates per-shard [fivm.shard.<k>.deltas]
    counters and the [fivm.shard.skew] gauge (max/mean queue length). *)

val load_base :
  ?domains:int ->
  t ->
  relation:string ->
  (int -> (Relation.t -> unit) -> unit) ->
  unit
(** [load_base t ~relation chunks_of] streams a base relation into the
    shards: shard [k] applies every row of the chunk iterator
    [chunks_of k] as a [+1] delta to its own maintainer, one parallel task
    per shard. Pair with per-shard page directories
    ([Store.Loader.import_sharded], same [Keypack.shard_of_key] routing)
    so each domain streams only its own working set; broadcast relations
    (no partition attribute) must replay the full relation for every
    shard. Runs inside an [fivm.shard.load_base] span. *)

val covariance : t -> Rings.Covariance.t
(** Merged covariance: per-shard triples folded with ring addition in
    shard order, starting FROM shard 0's triple (so a 1-shard pipeline
    returns shard 0's triple verbatim, bit for bit). Runs inside an
    [fivm.shard.merge] span. *)

val recompute : t -> Rings.Covariance.t
(** Merged from-scratch recomputation over per-shard storage (oracle). *)

val view_rows : t -> int
(** Total view rows across all shards. *)

val shard_seconds : t -> float array
(** Per-shard maintenance seconds of the last {!apply_batch} — the max is
    the batch's critical path (the makespan on an idle N-core machine). *)
