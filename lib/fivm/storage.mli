(** Mutable base-relation storage for IVM: Z-multisets of tuples plus hash
    indexes on every join key shared with a join-tree neighbour. Strategies
    compute their view deltas against the pre-update state, then the driver
    calls {!apply} once. Multiset and indexes hash {!Keypack} keys, so
    in-range int join keys probe as immediate ints. *)

open Relational

type entry = { mult : int ref; stamp : int }
(** Distinct-tuple entry: multiplicity plus the insertion stamp that orders
    {!dump} (index-list order must survive checkpoint/restore). *)

type node = {
  name : string;
  schema : Schema.t;
  all_positions : int array;  (** identity positions (whole-tuple key) *)
  tuples : entry Keypack.Hybrid.t;
      (** whole-tuple key -> live entry (multiplicity never 0) *)
  indexes : (string * int array * Tuple.t list ref Keypack.Hybrid.t) list;
      (** (neighbour, key positions in this schema, key -> distinct tuples) *)
}

type t

val create : Database.t -> t
(** Empty storage shaped by the database's schemas and join tree. *)

val node : t -> string -> node
val multiplicity : node -> Tuple.t -> int

val matching : node -> neighbour:string -> Keypack.key -> Tuple.t list
(** Distinct tuples of the node joining with the given neighbour-edge key. *)

val key_for : node -> neighbour:string -> Tuple.t -> Keypack.key
(** A tuple's join key towards the given neighbour (sorted attribute
    order — both edge endpoints agree on it). *)

val apply : t -> Delta.update -> unit
(** Apply the update to the multiset and all indexes; entries reaching
    multiplicity 0 are removed. *)

val total_tuples : t -> int
val join_tree : t -> Join_tree.t
val iter_tuples : node -> (Tuple.t -> int -> unit) -> unit

val dump : t -> Delta.update list
(** Live contents as bulk inserts in insertion-stamp order (oldest first):
    applying them to a fresh storage reproduces every index list in the
    original order, which keeps downstream float accumulation bit-identical
    (the checkpoint/restore contract). *)
