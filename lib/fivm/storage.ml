(* Mutable base-relation storage for IVM: per relation, a Z-multiset of
   tuples plus hash indexes on every join key shared with a join-tree
   neighbour. All three maintenance strategies read this storage; updates are
   applied once per delta, after the strategies have computed their view
   deltas against the pre-update state.

   Updates arrive as boxed tuples (the streaming edge), but both the
   multiset and the indexes hash [Keypack] keys: join keys over in-range
   int attributes pack into immediate ints, so the per-update probes hash
   ints rather than boxed tuple arrays. *)

open Relational
module Hybrid = Keypack.Hybrid

(* Distinct-tuple entry: the multiplicity plus an insertion stamp. The stamp
   orders [dump] output so a restored storage rebuilds its index lists in the
   SAME order as the original — list order feeds float accumulation order in
   the IVM strategies, and crash recovery promises bit-identical state. *)
type entry = { mult : int ref; stamp : int }

type node = {
  name : string;
  schema : Schema.t;
  all_positions : int array; (* identity; whole-tuple key for [tuples] *)
  tuples : entry Hybrid.t; (* whole-tuple key -> live entry (mult never 0) *)
  indexes : (string * int array * Tuple.t list ref Hybrid.t) list;
      (* (neighbour, key positions in this schema, key -> distinct tuples) *)
}

type t = {
  nodes : (string, node) Hashtbl.t;
  jt : Join_tree.t;
  mutable next_stamp : int;
}

(* Undirected neighbour map from the join tree (via the default rooting plus
   reversal; every edge appears in both directions). *)
let neighbour_edges jt =
  let edges = ref [] in
  let rec walk (n : Join_tree.node) parent =
    (match parent with
    | Some p ->
        edges := (Relation.name n.rel, p) :: (p, Relation.name n.rel) :: !edges
    | None -> ());
    List.iter (fun c -> walk c (Some (Relation.name n.rel))) n.children
  in
  walk (Join_tree.tree jt) None;
  !edges

let create (db : Database.t) =
  let jt = Database.join_tree db in
  let edges = neighbour_edges jt in
  let nodes = Hashtbl.create 8 in
  List.iter
    (fun rel ->
      let name = Relation.name rel in
      let schema = Relation.schema rel in
      let indexes =
        List.filter_map
          (fun (a, b) ->
            if a <> name then None
            else
              let other = Join_tree.relation_by_name jt b in
              (* sorted so both endpoints of an edge agree on key order *)
              let key =
                List.sort compare (Schema.common schema (Relation.schema other))
              in
              Some
                ( b,
                  Array.of_list (List.map (Schema.position schema) key),
                  Hybrid.create 64 ))
          edges
      in
      Hashtbl.replace nodes name
        {
          name;
          schema;
          all_positions = Array.init (Schema.arity schema) Fun.id;
          tuples = Hybrid.create 256;
          indexes;
        })
    (Database.relations db);
  { nodes; jt; next_stamp = 0 }

let node t name =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Storage.node: unknown relation %s" name)

let tuple_key (n : node) tuple = Keypack.key_of_tuple n.all_positions tuple

let multiplicity (n : node) tuple =
  match Hybrid.find_opt n.tuples (tuple_key n tuple) with
  | Some e -> !(e.mult)
  | None -> 0

(* Distinct tuples of [n] joining with key [key] of neighbour [neighbour]. *)
let matching (n : node) ~neighbour (key : Keypack.key) =
  match List.find_opt (fun (b, _, _) -> b = neighbour) n.indexes with
  | None -> invalid_arg "Storage.matching: not a neighbour"
  | Some (_, _, idx) -> (
      match Hybrid.find_opt idx key with Some l -> !l | None -> [])

let key_for (n : node) ~neighbour tuple : Keypack.key =
  match List.find_opt (fun (b, _, _) -> b = neighbour) n.indexes with
  | None -> invalid_arg "Storage.key_for: not a neighbour"
  | Some (_, positions, _) -> Keypack.key_of_tuple positions tuple

let apply t (u : Delta.update) =
  let n = node t u.relation in
  let tk = tuple_key n u.tuple in
  let old_m =
    match Hybrid.find_opt n.tuples tk with Some e -> !(e.mult) | None -> 0
  in
  let new_m = old_m + u.multiplicity in
  if old_m = 0 && new_m <> 0 then begin
    let stamp = t.next_stamp in
    t.next_stamp <- stamp + 1;
    Hybrid.replace n.tuples tk { mult = ref new_m; stamp };
    List.iter
      (fun (_, positions, idx) ->
        let key = Keypack.key_of_tuple positions u.tuple in
        match Hybrid.find_opt idx key with
        | Some l -> l := u.tuple :: !l
        | None -> Hybrid.add idx key (ref [ u.tuple ]))
      n.indexes
  end
  else if new_m = 0 then begin
    Hybrid.remove n.tuples tk;
    List.iter
      (fun (_, positions, idx) ->
        let key = Keypack.key_of_tuple positions u.tuple in
        match Hybrid.find_opt idx key with
        | Some l ->
            l := List.filter (fun t -> not (Tuple.equal t u.tuple)) !l;
            if !l = [] then Hybrid.remove idx key
        | None -> ())
      n.indexes
  end
  else
    match Hybrid.find_opt n.tuples tk with
    | Some e -> e.mult := new_m
    | None -> assert false

let total_tuples t =
  Hashtbl.fold
    (fun _ n acc -> Hybrid.fold (fun _ e acc -> acc + abs !(e.mult)) n.tuples acc)
    t.nodes 0

let join_tree t = t.jt

(* Iterate distinct tuples with multiplicities; tuples are reconstructed
   from their whole-tuple keys (packed keys unpack value-faithfully). *)
let iter_tuples (n : node) f =
  let arity = Array.length n.all_positions in
  Hybrid.iter (fun k e -> f (Keypack.key_tuple arity k) !(e.mult)) n.tuples

(* Live contents in insertion-stamp order (oldest first): replaying the dump
   as inserts into a fresh storage rebuilds every index list in the original
   order, so float accumulation downstream reproduces bit-identically. *)
let dump t : Delta.update list =
  let entries = ref [] in
  Hashtbl.iter
    (fun name n ->
      let arity = Array.length n.all_positions in
      Hybrid.iter
        (fun k e ->
          entries :=
            (e.stamp, { Delta.relation = name;
                        tuple = Keypack.key_tuple arity k;
                        multiplicity = !(e.mult) })
            :: !entries)
        n.tuples)
    t.nodes;
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !entries)
