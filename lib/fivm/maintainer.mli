(** The three maintenance strategies of Figure 4 (right), all keeping the
    covariance-matrix batch fresh under tuple updates:

    - F-IVM: one view tree with covariance-ring payloads — one delta
      propagation per update maintains the whole batch;
    - higher-order IVM: one scalar view tree per aggregate;
    - first-order IVM: no views; per aggregate, each update re-evaluates its
      delta query against the base relations. *)

open Relational

type strategy = F_ivm | Higher_order | First_order

val strategy_name : strategy -> string

type t

val create : strategy -> Database.t -> features:string list -> t
(** Maintenance state over an initially EMPTY database with the given
    schemas; [features] are the numeric attributes of the covariance task. *)

val apply : t -> Delta.update -> unit
(** Process one update (views first, then base storage). Maintains the
    [fivm.updates] / [fivm.delta_tuples] counters when {!Obs} is enabled. *)

val apply_batch : t -> Delta.update list -> unit
(** Process a delta batch inside an [fivm.batch:<strategy>] span, then
    refresh the [fivm.view_rows] / [fivm.storage_tuples] gauges once. *)

val view_rows : t -> int
(** Total rows across all maintained views (0 for first-order, which keeps
    none). *)

val covariance : t -> Rings.Covariance.t
(** The maintained covariance triple. *)

val storage : t -> Storage.t

val snapshot : t -> Database.t
(** The current contents as a fresh [Database.t]: the storage dump replayed
    in insertion-stamp order into empty clones of the schema relations, so
    downstream float accumulation is deterministic for a given stream. This
    is the moment-assembly input for model refreshers that need aggregates
    beyond the maintained covariance triple (degree-4 monomials, data
    passes). *)

val features : t -> string list
(** The numeric features of the covariance task, in the order given to
    {!create} (= the index order of {!covariance}'s vector and matrix). *)

val strategy_of : t -> strategy

val recompute : t -> Rings.Covariance.t
(** From-scratch recomputation over the current contents (test oracle). *)

(** {2 Checkpoint hooks (used by {!Resilience})} *)

type view_dump =
  | Cov_views of (string * (Keypack.key * Payload.Cov_dyn.t) list) list
      (** F-IVM: per-node covariance-ring view contents. *)
  | Float_views of (string * (Keypack.key * float) list) list array
      (** Higher-order: per-aggregate per-node scalar view contents. *)
  | Totals of float array  (** First-order: running aggregate totals. *)

val dump_views : t -> view_dump
(** The EXACT accumulated view payloads of the maintained state; restoring a
    dump into a maintainer whose storage holds the same contents reproduces
    the state bit-identically (recomputation would re-associate float
    additions). *)

val restore_views : t -> view_dump -> unit
(** Replace the maintained view state with a dump. Raises [Invalid_argument]
    if the dump's shape does not match the maintainer's strategy. *)

val perturb : t -> float -> unit
(** Fault-injection hook: corrupt the maintained view state in place (base
    storage untouched) so that an audit against {!recompute} detects
    divergence. No-op on empty state. *)
