(* Incremental maintenance of GROUP BY aggregates.

   F-IVM's payload-ring design is not limited to the covariance triple: the
   k-relation semiring (maps from group-by assignments to sums, the sparse
   one-hot encoding of Section 2.1) is a ring too, so the same view-tree
   delta propagation keeps SUM(product of terms) GROUP BY attrs fresh under
   tuple updates. This is how the categorical slices of the covariance
   matrix stay maintained alongside the continuous triple. *)

open Relational
module GF = Factorized.Faggregate.Grouped_float
module Spec = Aggregates.Spec

(* the k-relation ring as an IVM payload: negation and integer scaling are
   pointwise *)
module P : Payload.S with type t = GF.t = struct
  type t = GF.t

  let zero = GF.zero
  let one = GF.one
  let add = GF.add
  let mul = GF.mul
  let equal = GF.equal
  let to_string = GF.to_string
  let neg m = GF.KMap.map (fun v -> -.v) m
  let smul k m = GF.KMap.map (fun v -> float_of_int k *. v) m
  let is_zero m = GF.KMap.for_all (fun _ v -> v = 0.0) m
end

module Tree = View_tree.Make (P)

type t = {
  storage : Storage.t;
  tree : Tree.t;
  spec : Spec.t; (* the maintained aggregate (scalar or grouped) *)
}

(* Each attribute is owned by its first relation (database order), exactly
   as in [Cov_task]; a tuple's lift is the singleton k-relation over its
   owned group-by attributes annotated with its owned term product. *)
let create (db : Database.t) (spec : Spec.t) : t =
  if spec.filter <> Predicate.True then
    invalid_arg "Grouped_view.create: filtered aggregates are not maintained";
  let owner = Hashtbl.create 8 in
  List.iter
    (fun attr ->
      match
        List.find_opt (fun r -> Schema.mem (Relation.schema r) attr) (Database.relations db)
      with
      | Some r -> Hashtbl.replace owner attr (Relation.name r)
      | None -> invalid_arg ("Grouped_view.create: unknown attribute " ^ attr))
    (Spec.attrs spec);
  let storage = Storage.create db in
  let lift rel_name =
    let schema = Relation.schema (Database.relation db rel_name) in
    let my_terms =
      List.filter_map
        (fun (a, p) ->
          if Hashtbl.find_opt owner a = Some rel_name then
            Some (Schema.position schema a, p)
          else None)
        spec.terms
    in
    let my_groups =
      List.filter_map
        (fun a ->
          if Hashtbl.find_opt owner a = Some rel_name then
            Some (a, Schema.position schema a)
          else None)
        spec.group_by
    in
    fun (tuple : Tuple.t) : GF.t ->
      let weight =
        List.fold_left
          (fun acc (pos, p) ->
            let x = Value.to_float tuple.(pos) in
            let rec pow acc k = if k = 0 then acc else pow (acc *. x) (k - 1) in
            pow acc p)
          1.0 my_terms
      in
      let assignment =
        List.sort compare (List.map (fun (a, pos) -> (a, tuple.(pos))) my_groups)
      in
      GF.KMap.singleton assignment weight
  in
  let tree = Tree.create storage ~lift in
  { storage; tree; spec }

let apply (t : t) (u : Delta.update) =
  Tree.delta t.tree u;
  Storage.apply t.storage u

let result (t : t) : Spec.result =
  List.filter (fun (_, v) -> Float.abs v > 0.0) (GF.bindings (Tree.result t.tree))

let recompute (t : t) : Spec.result =
  List.filter (fun (_, v) -> Float.abs v > 0.0) (GF.bindings (Tree.recompute t.tree))
