(** Factorised view trees with ring payloads (F-IVM, Sections 3.1/5.2): one
    view per join-tree node mapping its parent-join key to the ring
    aggregate of its subtree; single-tuple updates propagate bottom-up as
    deltas joined with sibling views. With [Payload.Float] and per-aggregate
    lifts this is higher-order delta processing; with the covariance ring it
    is F-IVM proper. *)

open Relational

module Make (P : Payload.S) : sig
  type t

  val create : Storage.t -> lift:(string -> Tuple.t -> P.t) -> t
  (** [lift name tuple] is the ring image of a tuple of relation [name]
      (the product of the lifts of the attributes it owns). Views start
      empty (matching the empty storage). *)

  val delta : t -> Delta.update -> unit
  (** Process one update against the CURRENT storage; call
      {!Storage.apply} once afterwards (after all trees saw the delta). *)

  val result : t -> P.t
  (** The maintained query result: the root view at the empty key. *)

  val recompute : t -> P.t
  (** From-scratch recomputation over the current storage (test oracle). *)

  val view_sizes : t -> (string * int) list
  (** Per-node view cardinalities (diagnostics). *)

  val export : t -> (string * (Keypack.key * P.t) list) list
  (** Per-node view contents (keys sorted), carrying the exact accumulated
      payloads — the checkpoint representation of maintained state. *)

  val import : t -> (string * (Keypack.key * P.t) list) list -> unit
  (** Replace all view contents with an {!export} dump (bit-identical
      restore); nodes absent from the dump become empty. *)
end
