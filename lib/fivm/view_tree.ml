(* Factorised view trees with ring payloads (F-IVM, Sections 3.1 and 5.2).

   The join tree is turned into a hierarchy of views: each node maintains,
   per join-key value with its parent, the ring aggregate of its subtree's
   join (tuple lifts multiplied down the tree, summed over join results).
   A single-tuple update issues one bottom-up delta propagation: at the
   updated node the delta is the lifted tuple times its children's current
   views; at each ancestor, the delta joins the ancestor's stored tuples
   (via the child-key index) and the other children's views. The root view
   holds the maintained query result.

   Instantiated with [Payload.Float] and per-aggregate lifts this is
   higher-order delta processing with intermediate views; instantiated with
   the covariance ring it is F-IVM proper — one tree maintaining the whole
   aggregate batch. *)

open Relational

module Make (P : Payload.S) = struct
  type vnode = {
    name : string;
    key_positions : int array; (* join key with parent, in storage schema *)
    lift : Tuple.t -> P.t;
    view : P.t ref Keypack.Hybrid.t;
    children : vnode array;
    child_names : string list array; (* subtree relation names per child *)
  }

  type t = { root : vnode; storage : Storage.t }

  (* [lift name tuple] must give the ring image of a tuple of relation
     [name] (the product of the lifts of the attributes owned by it). *)
  let create storage ~lift =
    let jt = Storage.join_tree storage in
    let rec build (n : Join_tree.node) =
      let name = Relation.name n.rel in
      let schema = Relation.schema n.rel in
      let children = Array.of_list (List.map build n.children) in
      {
        name;
        (* sorted to match [Storage]'s edge-key order *)
        key_positions =
          Array.of_list
            (List.map (Schema.position schema) (List.sort compare n.key));
        lift = lift name;
        view = Keypack.Hybrid.create 256;
        children;
        child_names =
          Array.map
            (fun c ->
              let rec names (v : vnode) =
                v.name :: List.concat_map names (Array.to_list v.children)
              in
              names c)
            children;
      }
    in
    { root = build (Join_tree.tree jt); storage }

  let view_get (v : vnode) (key : Keypack.key) =
    match Keypack.Hybrid.find_opt v.view key with
    | Some r -> Some !r
    | None -> None

  (* Accumulate a delta into the view, DROPPING the entry when the payload
     cancels to exact zero: a group churned down to zero multiplicity must
     leave no 0-weight residue, or the maintained state (view_rows,
     checkpoint dumps, and the -0.0/+0.0 bits reachable through
     [children_product]) diverges from a recompute that never saw the
     group. [P.is_zero] is exact, so near-zero accumulations survive. *)
  let view_add (v : vnode) (key : Keypack.key) delta =
    match Keypack.Hybrid.find_opt v.view key with
    | Some r ->
        let sum = P.add !r delta in
        if P.is_zero sum then Keypack.Hybrid.remove v.view key else r := sum
    | None -> if not (P.is_zero delta) then Keypack.Hybrid.add v.view key (ref delta)

  (* Product of the children's views for a tuple of [v]'s relation, skipping
     child [except]. [None] if some child has no matching key (no join
     partner: the tuple currently contributes nothing). *)
  let children_product (v : vnode) storage tuple ~except =
    let n = Storage.node storage v.name in
    let rec go i acc =
      if i = Array.length v.children then Some acc
      else if i = except then go (i + 1) acc
      else
        let child = v.children.(i) in
        let key = Storage.key_for n ~neighbour:child.name tuple in
        match view_get child key with
        | Some p -> go (i + 1) (P.mul acc p)
        | None -> None
    in
    go 0 P.one

  (* Apply one update; the delta is computed against the CURRENT storage
     (call [Storage.apply] after all trees have seen the update). Returns
     unit; the root view is updated in place. *)
  let delta (t : t) (u : Delta.update) =
    (* propagate: returns the per-key view deltas produced at [v] *)
    let rec propagate (v : vnode) : (Keypack.key * P.t) list =
      if v.name = u.relation then begin
        let d0 = P.smul u.multiplicity (v.lift u.tuple) in
        match children_product v t.storage u.tuple ~except:(-1) with
        | None -> []
        | Some prod ->
            let delta = P.mul d0 prod in
            let key = Keypack.key_of_tuple v.key_positions u.tuple in
            view_add v key delta;
            [ (key, delta) ]
      end
      else begin
        (* find the child subtree holding the updated relation *)
        let child_idx = ref (-1) in
        Array.iteri
          (fun i names -> if List.mem u.relation names then child_idx := i)
          v.child_names;
        if !child_idx < 0 then []
        else begin
          let c = !child_idx in
          let child = v.children.(c) in
          let child_deltas = propagate child in
          let n = Storage.node t.storage v.name in
          let my_deltas : P.t ref Keypack.Hybrid.t = Keypack.Hybrid.create 8 in
          List.iter
            (fun (ck, d) ->
              List.iter
                (fun tuple ->
                  let m = Storage.multiplicity n tuple in
                  if m <> 0 then
                    match children_product v t.storage tuple ~except:c with
                    | None -> ()
                    | Some others ->
                        let contrib =
                          P.mul (P.smul m (v.lift tuple)) (P.mul d others)
                        in
                        let key = Keypack.key_of_tuple v.key_positions tuple in
                        (match Keypack.Hybrid.find_opt my_deltas key with
                        | Some r -> r := P.add !r contrib
                        | None -> Keypack.Hybrid.add my_deltas key (ref contrib)))
                (Storage.matching n ~neighbour:child.name ck))
            child_deltas;
          Keypack.Hybrid.fold
            (fun key r acc ->
              view_add v key !r;
              (key, !r) :: acc)
            my_deltas []
        end
      end
    in
    ignore (propagate t.root)

  (* The maintained result: the root view at the empty key ([P 0]). *)
  let result (t : t) =
    match view_get t.root (Keypack.P 0) with Some p -> p | None -> P.zero

  (* From-scratch recomputation over the current storage (reference for
     tests): enumerate the join recursively through the view-tree shape. *)
  let recompute (t : t) =
    let storage = t.storage in
    let rec eval (v : vnode) : P.t ref Keypack.Hybrid.t =
      let child_views = Array.map eval v.children in
      let out = Keypack.Hybrid.create 64 in
      let n = Storage.node storage v.name in
      Storage.iter_tuples n (fun tuple m ->
          let rec go i acc =
            if i = Array.length v.children then Some acc
            else
              let key = Storage.key_for n ~neighbour:v.children.(i).name tuple in
              match Keypack.Hybrid.find_opt child_views.(i) key with
              | Some p -> go (i + 1) (P.mul acc !p)
              | None -> None
          in
          match go 0 (P.smul m (v.lift tuple)) with
          | None -> ()
          | Some p -> (
              let key = Keypack.key_of_tuple v.key_positions tuple in
              match Keypack.Hybrid.find_opt out key with
              | Some r -> r := P.add !r p
              | None -> Keypack.Hybrid.add out key (ref p)));
      out
    in
    match Keypack.Hybrid.find_opt (eval t.root) (Keypack.P 0) with
    | Some p -> !p
    | None -> P.zero

  let view_sizes (t : t) =
    let rec go (v : vnode) acc =
      Array.fold_left
        (fun acc c -> go c acc)
        ((v.name, Keypack.Hybrid.length v.view) :: acc)
        v.children
    in
    go t.root []

  (* Checkpoint support: dump every node's view as (key, payload) pairs and
     load such a dump back into a freshly created tree. Payload refs hold the
     EXACT accumulated ring values, so export -> import restores the
     maintained state bit-identically (a from-scratch recomputation would
     re-associate float additions). Keys are sorted for a deterministic
     serialisation; node names are unique (they are relation names). *)
  let export (t : t) : (string * (Keypack.key * P.t) list) list =
    let rec go (v : vnode) acc =
      let entries =
        Keypack.Hybrid.fold (fun k r acc -> (k, !r) :: acc) v.view []
      in
      let entries =
        List.sort (fun (a, _) (b, _) -> Keypack.key_compare a b) entries
      in
      Array.fold_left (fun acc c -> go c acc) ((v.name, entries) :: acc) v.children
    in
    go t.root []

  let import (t : t) (dump : (string * (Keypack.key * P.t) list) list) =
    let rec go (v : vnode) =
      Keypack.Hybrid.clear v.view;
      (match List.assoc_opt v.name dump with
      | Some entries ->
          (* skip exact-zero payloads so restoring a dump written before the
             zero-drop discipline still yields a normalised tree *)
          List.iter
            (fun (k, p) -> if not (P.is_zero p) then Keypack.Hybrid.add v.view k (ref p))
            entries
      | None -> ());
      Array.iter go v.children
    in
    go t.root
end
