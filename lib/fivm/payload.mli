(** Payload rings for incremental view maintenance: a ring plus efficient
    integer scaling for Z-multiplicities. *)

module type S = sig
  include Rings.Sig.RING

  val smul : int -> t -> t
  (** m-fold sum ([neg] for negative m). *)

  val is_zero : t -> bool
  (** EXACT additive-identity test (no tolerance): view trees drop entries
      whose payload cancelled to zero, so churn that nets a group to zero
      multiplicity leaves no 0-weight residue behind. *)
end

module Float : S with type t = float

module Cov (_ : sig
  val n : int
end) : S with type t = Rings.Covariance.t

val cov : int -> (module S with type t = Rings.Covariance.t)
(** First-class covariance payload at a runtime dimension. *)

(** Dimension-agnostic covariance payload: [`Zero] and [`One] are symbolic,
    so no static dimension is needed (it is read off the first concrete
    element). The dimension-less combinations ([`One + `One], [neg `One],
    [smul m `One]) are rejected; view-tree maintenance never produces them. *)
module Cov_dyn : S with type t = [ `Zero | `One | `Elem of Rings.Covariance.t ]

val cov_elem : int -> [ `Zero | `One | `Elem of Rings.Covariance.t ] -> Rings.Covariance.t
(** Concretise a dynamic payload at the given dimension. *)
