(* The three maintenance strategies compared in Figure 4 (right), all
   maintaining the full covariance-matrix batch under tuple updates:

   - F-IVM: ONE view tree whose payload is the covariance ring — a single
     delta propagation per update maintains all (n+1)^2 aggregates at once
     (the compound-payload sharing of Section 5.2).
   - Higher-order IVM: one scalar view tree PER aggregate (delta processing
     with intermediate views, DBToaster-style); each update propagates
     through every tree.
   - First-order IVM: no intermediate views; each update re-evaluates each
     aggregate's delta query against the base relations (classical delta
     processing with index nested-loop joins). *)

open Relational
module Cov = Rings.Covariance

module Cov_tree = View_tree.Make (Payload.Cov_dyn)
module Float_tree = View_tree.Make (Payload.Float)

type strategy = F_ivm | Higher_order | First_order

(* Observability ([fivm.*]): update/delta volumes plus view/storage sizes,
   the quantities behind Figure 4 (right)'s throughput differences. *)
let c_updates = Obs.counter "fivm.updates"
let c_delta_tuples = Obs.counter "fivm.delta_tuples"
let c_batches = Obs.counter "fivm.batches"
let g_view_rows = Obs.gauge "fivm.view_rows"
let g_storage_tuples = Obs.gauge "fivm.storage_tuples"

let strategy_name = function
  | F_ivm -> "F-IVM"
  | Higher_order -> "higher-order IVM"
  | First_order -> "first-order IVM"

type state =
  | Fivm of { task : Cov_task.t; storage : Storage.t; tree : Cov_tree.t }
  | Higher of {
      task : Cov_task.t;
      storage : Storage.t;
      aggs : (int * int) array;
      trees : Float_tree.t array;
    }
  | First of {
      task : Cov_task.t;
      storage : Storage.t;
      aggs : (int * int) array;
      totals : float array;
    }

(* [schema] is the (empty) database the maintainer was created over; it is
   never written, only cloned by {!snapshot} so relation order — and with it
   the join tree and LMFAO's accumulation order — survives a snapshot. *)
type t = { schema : Database.t; state : state }

let create strategy (db : Database.t) ~features =
  let task = Cov_task.make db ~features in
  let storage = Storage.create db in
  let state =
    match strategy with
    | F_ivm ->
        let tree = Cov_tree.create storage ~lift:(Cov_task.lift_cov task) in
        Fivm { task; storage; tree }
    | Higher_order ->
        let aggs = Cov_task.aggregate_pairs task in
        let trees =
          Array.map
            (fun pair ->
              Float_tree.create storage ~lift:(fun rel tuple ->
                  Cov_task.factor task pair rel tuple))
            aggs
        in
        Higher { task; storage; aggs; trees }
    | First_order ->
        let aggs = Cov_task.aggregate_pairs task in
        First { task; storage; aggs; totals = Array.make (Array.length aggs) 0.0 }
  in
  { schema = db; state }

(* Delta-join evaluation for first-order IVM: the sum, over all extensions
   of the updated tuple to full join results, of the aggregate's factor
   product times the stored multiplicities. Walks the join tree's adjacency
   via the storage indexes (index nested-loop join). *)
let delta_join_sum storage task pair (u : Delta.update) =
  let rec expand rel_name tuple visited =
    let n = Storage.node storage rel_name in
    let local = Cov_task.factor task pair rel_name tuple in
    List.fold_left
      (fun acc (neighbour, _, _) ->
        if List.mem neighbour visited then acc
        else begin
          let key = Storage.key_for n ~neighbour tuple in
          let partners = Storage.matching (Storage.node storage neighbour) ~neighbour:rel_name key in
          let s =
            List.fold_left
              (fun s t ->
                let m = Storage.multiplicity (Storage.node storage neighbour) t in
                s
                +. float_of_int m
                   *. expand neighbour t (rel_name :: visited))
              0.0 partners
          in
          acc *. s
        end)
      local n.Storage.indexes
  in
  float_of_int u.multiplicity *. expand u.relation u.tuple []

let apply t (u : Delta.update) =
  Obs.incr c_updates;
  Obs.add c_delta_tuples (abs u.multiplicity);
  match t.state with
  | Fivm { storage; tree; _ } ->
      Cov_tree.delta tree u;
      Storage.apply storage u
  | Higher { storage; trees; _ } ->
      Array.iter (fun tree -> Float_tree.delta tree u) trees;
      Storage.apply storage u
  | First { storage; task; aggs; totals } ->
      Array.iteri
        (fun k pair -> totals.(k) <- totals.(k) +. delta_join_sum storage task pair u)
        aggs;
      Storage.apply storage u

let covariance t : Cov.t =
  match t.state with
  | Fivm { task; tree; _ } -> Payload.cov_elem task.Cov_task.dim (Cov_tree.result tree)
  | Higher { task; aggs; trees; _ } ->
      Cov_task.assemble task
        (Array.to_list
           (Array.mapi (fun k pair -> (pair, Float_tree.result trees.(k))) aggs))
  | First { task; aggs; totals; _ } ->
      Cov_task.assemble task
        (Array.to_list (Array.mapi (fun k pair -> (pair, totals.(k))) aggs))

let storage t =
  match t.state with
  | Fivm { storage; _ } | Higher { storage; _ } | First { storage; _ } -> storage

let features t =
  match t.state with
  | Fivm { task; _ } | Higher { task; _ } | First { task; _ } ->
      Array.to_list task.Cov_task.features

let strategy_of t =
  match t.state with
  | Fivm _ -> F_ivm
  | Higher _ -> Higher_order
  | First _ -> First_order

(* Current contents as a fresh [Database.t]: replay [Storage.dump] (live
   tuples in insertion-stamp order) into empty clones of the schema
   relations. Order preservation keeps LMFAO's accumulation order — and so
   its float results — deterministic for a given stream. *)
let snapshot t : Database.t =
  let rels =
    List.map
      (fun r -> Relation.create (Relation.name r) (Relation.schema r))
      (Database.relations t.schema)
  in
  let db = Database.create (Database.name t.schema) rels in
  List.iter
    (fun (u : Delta.update) ->
      let rel = Database.relation db u.Delta.relation in
      for _ = 1 to u.Delta.multiplicity do
        Relation.append rel u.Delta.tuple
      done)
    (Storage.dump (storage t));
  db

(* ---- checkpoint hooks (used by lib/resilience) ----

   A view dump carries the EXACT accumulated payload floats of the strategy's
   maintained state; restoring it into a maintainer whose storage holds the
   same contents reproduces the state bit-identically (recomputation would
   re-associate float additions and drift in the last ulps). *)

type view_dump =
  | Cov_views of (string * (Relational.Keypack.key * Payload.Cov_dyn.t) list) list
  | Float_views of (string * (Relational.Keypack.key * float) list) list array
  | Totals of float array

let dump_views t =
  match t.state with
  | Fivm { tree; _ } -> Cov_views (Cov_tree.export tree)
  | Higher { trees; _ } -> Float_views (Array.map Float_tree.export trees)
  | First { totals; _ } -> Totals (Array.copy totals)

let restore_views t dump =
  match (t.state, dump) with
  | Fivm { tree; _ }, Cov_views d -> Cov_tree.import tree d
  | Higher { trees; _ }, Float_views ds ->
      if Array.length ds <> Array.length trees then
        invalid_arg "Maintainer.restore_views: tree count mismatch";
      Array.iteri (fun i d -> Float_tree.import trees.(i) d) ds
  | First { totals; _ }, Totals ts ->
      if Array.length ts <> Array.length totals then
        invalid_arg "Maintainer.restore_views: totals length mismatch";
      Array.blit ts 0 totals 0 (Array.length ts)
  | _ -> invalid_arg "Maintainer.restore_views: strategy mismatch"

(* Fault-injection hook: corrupt the maintained state in place (WITHOUT
   touching base storage) so that an audit against {!recompute} fails. Only
   reachable from the resilience layer's fault harness and tests. *)
let perturb t x =
  match t.state with
  | Fivm { tree; _ } ->
      let d =
        List.map
          (fun (name, entries) ->
            ( name,
              List.map
                (fun (k, p) ->
                  match p with
                  | `Elem e -> (k, `Elem { e with Cov.c = e.Cov.c +. x })
                  | p -> (k, p))
                entries ))
          (Cov_tree.export tree)
      in
      Cov_tree.import tree d
  | Higher { trees; _ } ->
      if Array.length trees > 0 then begin
        let d =
          List.map
            (fun (name, entries) ->
              (name, List.map (fun (k, v) -> (k, v +. x)) entries))
            (Float_tree.export trees.(0))
        in
        Float_tree.import trees.(0) d
      end
  | First { totals; _ } ->
      if Array.length totals > 0 then totals.(0) <- totals.(0) +. x

let view_rows t =
  let sum sizes = List.fold_left (fun acc (_, n) -> acc + n) 0 sizes in
  match t.state with
  | Fivm { tree; _ } -> sum (Cov_tree.view_sizes tree)
  | Higher { trees; _ } ->
      Array.fold_left (fun acc tree -> acc + sum (Float_tree.view_sizes tree)) 0 trees
  | First _ -> 0

(* One delta batch inside a span, with the view/storage size gauges
   refreshed once at the end (refreshing them per update would cost more
   than the updates themselves for the higher-order strategy). *)
let apply_batch t (us : Delta.update list) =
  let strategy = strategy_of t in
  Obs.with_span ("fivm.batch:" ^ strategy_name strategy) @@ fun () ->
  Obs.incr c_batches;
  List.iter (apply t) us;
  if Obs.is_enabled () then begin
    Obs.set_gauge g_view_rows (float_of_int (view_rows t));
    Obs.set_gauge g_storage_tuples (float_of_int (Storage.total_tuples (storage t)))
  end

(* Reference: recompute the covariance triple from scratch over the current
   storage contents (used by tests and drift checks). *)
let recompute t : Cov.t =
  match t.state with
  | Fivm { task; tree; _ } -> Payload.cov_elem task.Cov_task.dim (Cov_tree.recompute tree)
  | Higher { task; aggs; trees; _ } ->
      Cov_task.assemble task
        (Array.to_list
           (Array.mapi (fun k pair -> (pair, Float_tree.recompute trees.(k))) aggs))
  | First { task; storage; aggs; _ } ->
      (* build a temporary F-IVM tree shape for recomputation *)
      let tree = Cov_tree.create storage ~lift:(Cov_task.lift_cov task) in
      ignore aggs;
      Payload.cov_elem task.Cov_task.dim (Cov_tree.recompute tree)
