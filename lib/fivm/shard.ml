(* Sharded, domain-parallel F-IVM maintenance.

   Hash-partitions the delta stream by packed partition key into N shards,
   each a full Maintainer on its own Pool task, and merges per-shard
   covariances in canonical shard order. See shard.mli for the correctness
   argument (each join result is produced by exactly one shard). *)

open Relational
module Cov = Rings.Covariance

let c_routed = Obs.counter "fivm.shard.routed"
let c_broadcast = Obs.counter "fivm.shard.broadcast"
let c_batches = Obs.counter "fivm.shard.batches"
let g_skew = Obs.gauge "fivm.shard.skew"

type route = Keyed of int array | Broadcast

type plan = {
  attr : string;
  nshards : int;
  routes : (string, route) Hashtbl.t;
}

(* Partition attribute: the attribute shared by the most relations keeps
   broadcast traffic (replicated to every shard) to a minimum. Ties go to
   the attribute covering more stored tuples, then lexicographic, so the
   choice is deterministic. *)
let choose_attr db =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun rel ->
      let card = Relation.cardinality rel in
      List.iter
        (fun a ->
          let n, c =
            match Hashtbl.find_opt tally a with Some nc -> nc | None -> (0, 0)
          in
          Hashtbl.replace tally a (n + 1, c + card))
        (Schema.names (Relation.schema rel)))
    (Database.relations db);
  let best =
    Hashtbl.fold
      (fun a (n, c) acc ->
        match acc with
        | Some (a', n', c')
          when n' > n || (n' = n && (c' > c || (c' = c && a' < a))) ->
            Some (a', n', c')
        | _ -> Some (a, n, c))
      tally None
  in
  match best with
  | Some (a, _, _) -> a
  | None -> invalid_arg "Shard.plan: empty database"

let plan ?attr ~shards db =
  if shards < 1 then invalid_arg "Shard.plan: shards must be >= 1";
  let attr = match attr with Some a -> a | None -> choose_attr db in
  let routes = Hashtbl.create 8 in
  let keyed = ref 0 in
  List.iter
    (fun rel ->
      let route =
        match Schema.position_opt (Relation.schema rel) attr with
        | Some p ->
            incr keyed;
            Keyed [| p |]
        | None -> Broadcast
      in
      Hashtbl.replace routes (Relation.name rel) route)
    (Database.relations db);
  if !keyed = 0 then
    invalid_arg ("Shard.plan: attribute " ^ attr ^ " appears in no relation");
  { attr; nshards = shards; routes }

let plan_attr p = p.attr
let plan_shards p = p.nshards

let route_update p (u : Delta.update) =
  match Hashtbl.find_opt p.routes u.relation with
  | Some (Keyed positions) ->
      Obs.incr c_routed;
      Some
        (Keypack.shard_of_key ~shards:p.nshards
           (Keypack.key_of_tuple positions u.tuple))
  | Some Broadcast ->
      Obs.incr c_broadcast;
      None
  | None -> invalid_arg ("Shard.route_update: unknown relation " ^ u.relation)

let partition p updates =
  let queues = Array.make p.nshards [] in
  List.iter
    (fun u ->
      match route_update p u with
      | Some k -> queues.(k) <- u :: queues.(k)
      | None ->
          for k = 0 to p.nshards - 1 do
            queues.(k) <- u :: queues.(k)
          done)
    updates;
  Array.map List.rev queues

type t = {
  plan : plan;
  strategy : Maintainer.strategy;
  maintainers : Maintainer.t array;
  deltas : Obs.counter array;
  mutable seconds : float array;
}

let create ?attr strategy db ~features ~shards =
  let plan = plan ?attr ~shards db in
  let maintainers =
    Array.init shards (fun _ -> Maintainer.create strategy db ~features)
  in
  let deltas =
    Array.init shards (fun k ->
        Obs.counter (Printf.sprintf "fivm.shard.%d.deltas" k))
  in
  { plan; strategy; maintainers; deltas; seconds = Array.make shards 0.0 }

let plan_of t = t.plan
let shards t = t.plan.nshards
let strategy_of t = t.strategy
let maintainer t k = t.maintainers.(k)

let apply t u =
  match route_update t.plan u with
  | Some k ->
      Obs.incr t.deltas.(k);
      Maintainer.apply t.maintainers.(k) u
  | None ->
      Array.iteri
        (fun k m ->
          Obs.incr t.deltas.(k);
          Maintainer.apply m u)
        t.maintainers

let apply_batch ?domains t updates =
  Obs.incr c_batches;
  let queues = partition t.plan updates in
  let lens = Array.map List.length queues in
  let total = Array.fold_left ( + ) 0 lens in
  if total > 0 && Obs.is_enabled () then begin
    let mean = float_of_int total /. float_of_int t.plan.nshards in
    let widest = Array.fold_left Stdlib.max 0 lens in
    Obs.set_gauge g_skew (float_of_int widest /. mean)
  end;
  let seconds = Array.make t.plan.nshards 0.0 in
  Obs.with_span "fivm.shard.batch" (fun () ->
      (* One task per shard; each task owns its maintainer exclusively, so
         tasks share no mutable state (Obs counters are atomic). *)
      let tasks =
        List.init t.plan.nshards (fun k () ->
            let t0 = Obs.Clock.now () in
            List.iter (Maintainer.apply t.maintainers.(k)) queues.(k);
            Obs.add t.deltas.(k) lens.(k);
            seconds.(k) <- Obs.Clock.elapsed_since t0)
      in
      ignore (Util.Pool.parallel_tasks ?domains tasks));
  t.seconds <- seconds

(* Stream a base relation into the shards from per-shard chunk sources
   (e.g. the per-shard page directories of [Store.Loader.import_sharded]):
   shard [k] applies every row of [chunks_of k] as a +1 delta to its own
   maintainer, one parallel task per shard, so each domain's working set is
   its own shard's pages — never the whole relation. The caller routes: a
   keyed relation's shard files must have been split with the SAME
   [Keypack.shard_of_key] rule as [route_update]; a broadcast relation's
   source must replay the full relation for every shard. *)
let load_base ?domains t ~relation chunks_of =
  Obs.with_span "fivm.shard.load_base" (fun () ->
      let tasks =
        List.init t.plan.nshards (fun k () ->
            let m = t.maintainers.(k) in
            let count = ref 0 in
            chunks_of k (fun chunk ->
                for i = 0 to Relation.cardinality chunk - 1 do
                  Maintainer.apply m
                    {
                      Delta.relation;
                      tuple = Relation.get chunk i;
                      multiplicity = 1;
                    };
                  incr count
                done);
            Obs.add t.deltas.(k) !count)
      in
      ignore (Util.Pool.parallel_tasks ?domains tasks))

(* Merge folds FROM shard 0's triple (not from Cov.zero): ring addition
   with a zero can normalise -0.0 payloads, and starting from shard 0
   makes the 1-shard pipeline return its maintainer's triple verbatim. *)
let merge parts =
  let acc = ref parts.(0) in
  for k = 1 to Array.length parts - 1 do
    acc := Cov.add !acc parts.(k)
  done;
  !acc

let covariance t =
  Obs.with_span "fivm.shard.merge" (fun () ->
      merge (Array.map Maintainer.covariance t.maintainers))

let recompute t = merge (Array.map Maintainer.recompute t.maintainers)

let view_rows t =
  Array.fold_left (fun acc m -> acc + Maintainer.view_rows m) 0 t.maintainers

let shard_seconds t = t.seconds
