(** The structure-agnostic pipeline of Figure 2 (top) / Figure 3: materialise
    the join, export/import it as CSV (the data move between systems),
    one-hot encode and shuffle, then one epoch of mini-batch SGD — each
    stage timed separately for the paper's per-stage rows. *)

open Relational

type report = {
  join_seconds : float;
  export_seconds : float;  (** CSV write + read back *)
  shuffle_seconds : float;  (** one-hot encode + shuffle + split *)
  learn_seconds : float;
  join_cardinality : int;
  join_csv_bytes : int;
  matrix_bytes : int;
  rmse : float;  (** on the held-out fraction (train set when empty) *)
  weights : float array;
}

val run :
  ?sgd_params:Sgd.params ->
  ?test_fraction:float ->
  ?tmp_dir:string ->
  Database.t ->
  Aggregates.Feature.t ->
  report
(** Runs the four stages under [agnostic.join] / [agnostic.export] /
    [agnostic.shuffle] / [agnostic.learn] spans and bumps the
    [agnostic.join_rows] counter when {!Obs} is enabled. *)

val total_seconds : report -> float

(** {1 Engine interface}

    [Agnostic] also satisfies {!Aggregates.Engine_intf.S}: answer an
    aggregate batch the structure-agnostic way — materialise the join, then
    evaluate every aggregate over it independently. *)

val name : string

val description : string

type options = unit

val default_options : options

val eval_batch :
  ?options:options ->
  Database.t ->
  Aggregates.Batch.t ->
  (string * Aggregates.Spec.result) list
