(** The model registry: every {!Model_intf} implementation under its CLI
    selector ("linreg-cg", "linreg-closed", "linreg-gd", "polyreg", "fm",
    "huber"), plus the codec and audit helpers that need the full list. *)

val all : Model_intf.t list
val find : string -> Model_intf.t option
val find_exn : string -> Model_intf.t

val decode_packed : Relational.Codec.reader -> Model_intf.packed
(** Inverse of {!Model_intf.encode_packed}: dispatch on the leading model
    name. @raise Relational.Codec.Decode_error on unknown names. *)

val refresh_audit : Model_intf.t -> [ `Bitwise | `Tolerance of float ]
(** How a warm refresh must compare to a cold retrain over the same
    statistics: [`Bitwise] for direct solves (bit-identical under exact
    input arithmetic), [`Tolerance] for iterative optimisers. *)
