(* Assembling the one-hot moment (non-centred covariance) matrix from the
   covariance aggregate batch (Section 2.1).

   The batch's group-by aggregates are the sparse-tensor encoding of the
   categorical interactions: only the (pairs of) categories that actually
   occur in the data matrix carry entries. This module expands them into the
   explicit moment matrix Sigma = sum_D phi(x) phi(x)^T over the one-hot
   feature map phi = (1, continuous..., response, indicators...), which the
   closed-form / gradient-descent trainers consume. The data matrix itself
   is never materialised. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature
open Util

type t = {
  columns : string array; (* intercept, numeric..., one-hot columns *)
  index : (string, int) Hashtbl.t;
  matrix : Mat.t; (* symmetric (width x width) *)
  count : float;
  response_col : int option;
}

let width t = Array.length t.columns

let column_index t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Moment.column_index: unknown column %s" name)

let one_hot_name attr value = Printf.sprintf "%s=%s" attr (Value.to_string value)

let column_index_exn index attr value =
  match Hashtbl.find_opt index (one_hot_name attr value) with
  | Some i -> i
  | None -> invalid_arg "Moment.of_batch: unknown one-hot column"

(* [lookup id] must return the batch result for aggregate [id] as produced by
   the covariance batch of [Aggregates.Batch.covariance]. *)
let of_batch (f : Feature.t) (lookup : string -> Spec.result) : t =
  let numeric = Feature.numeric f in
  let categorical = f.categorical in
  (* discover categorical domains from the marginal count aggregates *)
  let domains =
    List.map
      (fun k ->
        let marginal = lookup (Printf.sprintf "count|%s" k) in
        let values =
          List.sort Value.compare
            (List.filter_map
               (fun (assignment, _) ->
                 match assignment with [ (_, v) ] -> Some v | _ -> None)
               marginal)
        in
        (k, values))
      categorical
  in
  let columns =
    Array.of_list
      (("intercept" :: numeric)
      @ List.concat_map
          (fun (k, values) -> List.map (one_hot_name k) values)
          domains)
  in
  let index = Hashtbl.create (Array.length columns) in
  Array.iteri (fun i c -> Hashtbl.replace index c i) columns;
  let matrix = Mat.create (Array.length columns) (Array.length columns) in
  let set_sym i j v =
    Mat.set matrix i j v;
    Mat.set matrix j i v
  in
  let scalar id = Spec.scalar_result (lookup id) in
  (* intercept / numeric block *)
  let count = scalar "count" in
  Mat.set matrix 0 0 count;
  List.iteri
    (fun a x ->
      set_sym 0 (a + 1) (scalar (Printf.sprintf "sum(%s)" x)))
    numeric;
  List.iteri
    (fun a x ->
      List.iteri
        (fun b y ->
          if b >= a then
            set_sym (a + 1) (b + 1) (scalar (Printf.sprintf "sum(%s*%s)" x y)))
        numeric)
    numeric;
  (* categorical marginals: indicator^2 = indicator, and indicator * 1 *)
  List.iter
    (fun (k, _) ->
      List.iter
        (fun (assignment, v) ->
          match assignment with
          | [ (_, value) ] ->
              let i = column_index_exn index k value in
              Mat.set matrix i i v;
              set_sym 0 i v
          | _ -> ())
        (lookup (Printf.sprintf "count|%s" k)))
    domains;
  (* categorical x numeric *)
  List.iter
    (fun (k, _) ->
      List.iteri
        (fun a x ->
          List.iter
            (fun (assignment, v) ->
              match assignment with
              | [ (_, value) ] ->
                  set_sym (a + 1) (column_index_exn index k value) v
              | _ -> ())
            (lookup (Printf.sprintf "sum(%s)|%s" x k)))
        numeric)
    domains;
  (* categorical pairs *)
  let rec pairs = function
    | [] -> []
    | (k, _) :: rest -> List.map (fun (k', _) -> (k, k')) rest @ pairs rest
  in
  List.iter
    (fun (k, k') ->
      List.iter
        (fun (assignment, v) ->
          match assignment with
          | [ (a1, v1); (a2, v2) ] ->
              let i = column_index_exn index a1 v1 in
              let j = column_index_exn index a2 v2 in
              set_sym i j v
          | _ -> ())
        (lookup (Printf.sprintf "count|%s,%s" k k')))
    (pairs domains);
  {
    columns;
    index;
    matrix;
    count;
    response_col =
      (match f.response with
      | Some r -> Hashtbl.find_opt index r
      | None -> None);
  }

(* The moment matrix read straight out of a maintained covariance triple:
   [Rings.Covariance.moment_matrix] already IS Sigma over
   (1, features...) — only the column names and the response slot need
   attaching. [features] must list the triple's features in its index
   order. This is the refresh path of online model maintenance: after a
   delta batch the triple is current, so assembling the trainer's input is
   O(d^2) and independent of the data size. *)
let of_covariance (cov : Rings.Covariance.t) ~(features : string list)
    ~(response : string option) : t =
  let dim = Rings.Covariance.dim cov in
  if List.length features <> dim then
    invalid_arg "Moment.of_covariance: features do not match the triple's dimension";
  let columns = Array.of_list ("intercept" :: features) in
  let index = Hashtbl.create (Array.length columns) in
  Array.iteri (fun i c -> Hashtbl.replace index c i) columns;
  let response_col =
    match response with
    | None -> None
    | Some r -> (
        match Hashtbl.find_opt index r with
        | Some i -> Some i
        | None -> invalid_arg "Moment.of_covariance: response not in features")
  in
  {
    columns;
    index;
    matrix = Rings.Covariance.moment_matrix cov;
    count = Rings.Covariance.count cov;
    response_col;
  }

(* The moment matrix computed directly over a materialised, one-hot encoded
   matrix — the reference the batch path is tested against. *)
let of_data_matrix (m : Baseline.One_hot.matrix) ~(response : string) : t =
  ignore response;
  let n_x = Baseline.One_hot.cols m in
  let columns = Array.append m.columns [| "__response" |] in
  let width = n_x + 1 in
  let index = Hashtbl.create width in
  Array.iteri (fun i c -> Hashtbl.replace index c i) columns;
  let matrix = Mat.create width width in
  Array.iteri
    (fun r row ->
      let full = Array.append row [| m.y.(r) |] in
      Mat.ger ~alpha:1.0 full full matrix)
    m.x;
  {
    columns;
    index;
    matrix;
    count = float_of_int (Baseline.One_hot.rows m);
    response_col = Some n_x;
  }

let pp ppf t =
  Format.fprintf ppf "moment matrix over %d columns (count = %g)" (width t) t.count
