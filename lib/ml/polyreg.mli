(** Degree-2 ridge polynomial regression over continuous features (Section
    2.1): the quadratic basis's moment matrix consists of SUM-PRODUCT
    aggregates of degree up to 4 — the basis-space moments of {!Monomial} —
    and training is one closed-form ridge solve over it. *)

open Relational

type monomial = Monomial.t
(** Sorted (attribute, power) products; [] is the constant 1. *)

val basis : string list -> monomial list
(** All monomials of total degree <= 2 over the features. *)

val monomial_name : monomial -> string
val mono_mul : monomial -> monomial -> monomial

val batch_for : string list -> response:string -> Aggregates.Batch.t * monomial list
(** The deduplicated aggregate batch covering every basis-pair product and
    basis-response product. *)

type model = { basis_monomials : monomial list; weights : Util.Vec.t; response : string }

val train_from_monomial_moments : ?ridge:float -> Moment.t -> model
(** Closed-form ridge solve over basis-space moments (as built by
    {!Monomial.moment_of_database} / {!Monomial.moment_of_rows}). *)

val predict : model -> (string -> float) -> float
val rmse_on : model -> Relation.t -> float

val encode : Buffer.t -> model -> unit
val decode : Codec.reader -> model

type model_options = { ridge : float }

(** The {!Model_intf.S} adapter ("polyreg"): trains from the bundle's
    monomial moments. *)
module Model :
  Model_intf.S with type model = model and type options = model_options

val train :
  ?ridge:float ->
  ?engine_options:Lmfao.Engine.options ->
  Database.t ->
  features:string list ->
  response:string ->
  model
  [@@ocaml.deprecated "use Model_intf / train_from_monomial_moments"]
(** @deprecated Thin wrapper: one LMFAO monomial-moment batch, then
    {!train_from_monomial_moments}. *)
