(** Degree-2 factorisation machines (Section 2.1's model list):
    y^ = w0 + sum w_i x_i + sum_{i<j} <v_i, v_j> x_i x_j with rank-r
    factors, trained by full-batch gradient descent on squared loss. The
    factor-part gradients need third/fourth moments that [6]
    reparameterises; here they are computed over the explicit data matrix
    (the substitution documented in DESIGN.md). *)

type model = { w0 : float; w : float array; v : float array array }

type params = {
  rank : int;
  learning_rate : float;
  iterations : int;
  l2 : float;
  init_scale : float;
  seed : int;
}

val default_params : params

val init : params:params -> int -> model
val predict : model -> float array -> float
(** O(n * rank) via the sum-of-squares identity. *)

val train_from_monomial_moments :
  ?params:params -> ?warm:model -> Moment.t -> features:string list -> model
(** Full-batch gradient descent driven purely by the degree-2 basis moments:
    the FM prediction is a linear form over the quadratic basis (with the
    square-term coefficients pinned to 0 and the pair coefficients tied to
    [<v_i, v_j>]), so the c-space gradient is [(A c - b) / N] from the
    moment matrix and the chain rule pushes it onto the factors. Each step
    is independent of the data size; [warm] resumes from a previous model
    (the online-refresh path). *)

val train_on_rows : ?params:params -> float array array -> float array -> model
(** Per-row full-batch gradient descent over an explicit data matrix —
    mathematically the same gradient as {!train_from_monomial_moments},
    kept as the reference side of the moment/data differential test. *)

val train : ?params:params -> float array array -> float array -> model
  [@@ocaml.deprecated "use train_on_rows, train_from_monomial_moments or Factorization_machine.Model"]
(** @deprecated Renamed to {!train_on_rows}. *)

val mse : model -> float array array -> float array -> float

type named_model = {
  fm_columns : string array;  (** continuous feature names, factor order *)
  machine : model;
}

type model_options = params

(** The {!Model_intf.S} adapter ("fm"): trains from the bundle's monomial
    moments. *)
module Model :
  Model_intf.S with type model = named_model and type options = params
