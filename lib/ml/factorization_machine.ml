(* Degree-2 factorisation machines (Section 2.1's model list; [6] derives
   their aggregates).

   Model:  y^(x) = w0 + sum_i w_i x_i + sum_{i<j} <v_i, v_j> x_i x_j
   with rank-r factor vectors v_i. The pairwise term rewrites as
   0.5 * sum_f [ (sum_i v_if x_i)^2 - sum_i v_if^2 x_i^2 ], giving O(n r)
   evaluation and gradients. Training uses mini-batch gradient descent on
   squared loss with L2 regularisation.

   The linear part's sufficient statistics are the covariance aggregates
   (shared with [Linreg]); the factor part's gradients involve third and
   fourth moments that [6] reparameterises — here they are computed by
   passes over the (possibly factorised-enumerated) data matrix, which is
   the substitution documented in DESIGN.md. *)

type model = {
  w0 : float;
  w : float array; (* n *)
  v : float array array; (* n x rank *)
}

type params = {
  rank : int;
  learning_rate : float;
  iterations : int; (* epochs *)
  l2 : float;
  init_scale : float;
  seed : int;
}

let default_params =
  { rank = 4; learning_rate = 0.01; iterations = 50; l2 = 1e-4; init_scale = 0.05; seed = 3 }

let init ~params n =
  let rng = Util.Prng.create params.seed in
  {
    w0 = 0.0;
    w = Array.make n 0.0;
    v =
      Array.init n (fun _ ->
          Array.init params.rank (fun _ ->
              Util.Prng.gaussian rng ~mu:0.0 ~sigma:params.init_scale));
  }

let predict (m : model) (x : float array) =
  let n = Array.length x in
  let rank = if n = 0 then 0 else Array.length m.v.(0) in
  let linear = ref m.w0 in
  for i = 0 to n - 1 do
    linear := !linear +. (m.w.(i) *. x.(i))
  done;
  let pair = ref 0.0 in
  for f = 0 to rank - 1 do
    let s = ref 0.0 and s2 = ref 0.0 in
    for i = 0 to n - 1 do
      let t = m.v.(i).(f) *. x.(i) in
      s := !s +. t;
      s2 := !s2 +. (t *. t)
    done;
    pair := !pair +. (0.5 *. ((!s *. !s) -. !s2))
  done;
  !linear +. !pair

(* Full-batch gradient descent driven purely by the degree-2 BASIS moments
   (degree-4 aggregates) — the reparameterisation of [6] made concrete: the
   FM prediction is a linear form c . phi(x) over the quadratic basis with

     c_1 = w0,   c_{x_i} = w_i,   c_{x_i x_j} = <v_i, v_j> (i < j),
     c_{x_i^2} = 0,

   so the squared-loss gradient in c-space is (A c - b) / N with A, b read
   from the basis-space moment matrix, and the chain rule pushes it onto the
   factors: dL/dv_if = sum_{j<>i} (A c - b)_{x_i x_j} v_jf. Each step is
   O(|basis|^2) independent of the data size — after a delta batch the
   refresher recomputes the moments once and resumes from the previous
   parameters. *)
let train_from_monomial_moments ?(params = default_params) ?warm (m : Moment.t)
    ~(features : string list) : model =
  let open Util in
  let n_feat = List.length features in
  let col name =
    match Hashtbl.find_opt m.Moment.index name with
    | Some i -> i
    | None -> invalid_arg ("Factorization_machine: missing basis column " ^ name)
  in
  let feat = Array.of_list features in
  let icpt = col "intercept" in
  let lin = Array.map (fun x -> col (Monomial.name [ (x, 1) ])) feat in
  let pair i j =
    col (Monomial.name (Monomial.mul [ (feat.(i), 1) ] [ (feat.(j), 1) ]))
  in
  let pair_idx =
    Array.init n_feat (fun i ->
        Array.init n_feat (fun j -> if i = j then -1 else pair i j))
  in
  let resp =
    match m.Moment.response_col with
    | Some r -> r
    | None -> invalid_arg "Factorization_machine: moments have no response"
  in
  let dim = Moment.width m - 1 in
  if resp <> dim then
    invalid_arg "Factorization_machine: response must be the last column";
  let n = Stdlib.max 1.0 m.Moment.count in
  let current =
    ref
      (match warm with
      | Some (w : model) when Array.length w.w = n_feat -> w
      | _ -> init ~params n_feat)
  in
  let c = Array.make dim 0.0 in
  for _ = 1 to params.iterations do
    let model = !current in
    (* coefficients of the equivalent linear form over the basis *)
    Array.fill c 0 dim 0.0;
    c.(icpt) <- model.w0;
    Array.iteri (fun i k -> c.(k) <- model.w.(i)) lin;
    for i = 0 to n_feat - 1 do
      for j = i + 1 to n_feat - 1 do
        c.(pair_idx.(i).(j)) <- Vec.dot model.v.(i) model.v.(j)
      done
    done;
    (* c-space gradient (A c - b), straight from the moments *)
    let g =
      Array.init dim (fun k ->
          let acc = ref (-.Mat.get m.Moment.matrix k resp) in
          for j = 0 to dim - 1 do
            acc := !acc +. (Mat.get m.Moment.matrix k j *. c.(j))
          done;
          !acc)
    in
    let scale = params.learning_rate /. n in
    current :=
      {
        w0 = model.w0 -. (scale *. g.(icpt));
        w =
          Array.mapi
            (fun i w -> w -. (scale *. (g.(lin.(i)) +. (params.l2 *. w))))
            model.w;
        v =
          Array.mapi
            (fun i vi ->
              Array.mapi
                (fun f vif ->
                  let gv = ref 0.0 in
                  for j = 0 to n_feat - 1 do
                    if j <> i then
                      gv := !gv +. (g.(pair_idx.(i).(j)) *. model.v.(j).(f))
                  done;
                  vif -. (scale *. (!gv +. (params.l2 *. vif))))
                vi)
            model.v;
      }
  done;
  !current

let train_on_rows ?(params = default_params) (x : float array array)
    (y : float array) : model =
  let n_rows = Array.length x in
  let n = if n_rows = 0 then 0 else Array.length x.(0) in
  let m = ref (init ~params n) in
  for _ = 1 to params.iterations do
    let model = !m in
    let g_w0 = ref 0.0 in
    let g_w = Array.make n 0.0 in
    let g_v = Array.init n (fun _ -> Array.make params.rank 0.0) in
    Array.iteri
      (fun r row ->
        let err = predict model row -. y.(r) in
        g_w0 := !g_w0 +. err;
        (* precompute per-factor sums *)
        let sums = Array.make params.rank 0.0 in
        for f = 0 to params.rank - 1 do
          for i = 0 to n - 1 do
            sums.(f) <- sums.(f) +. (model.v.(i).(f) *. row.(i))
          done
        done;
        for i = 0 to n - 1 do
          g_w.(i) <- g_w.(i) +. (err *. row.(i));
          for f = 0 to params.rank - 1 do
            let grad =
              row.(i) *. sums.(f) -. (model.v.(i).(f) *. row.(i) *. row.(i))
            in
            g_v.(i).(f) <- g_v.(i).(f) +. (err *. grad)
          done
        done)
      x;
    let scale = params.learning_rate /. float_of_int (Stdlib.max 1 n_rows) in
    m :=
      {
        w0 = model.w0 -. (scale *. !g_w0);
        w =
          Array.mapi
            (fun i w -> w -. (scale *. (g_w.(i) +. (params.l2 *. w))))
            model.w;
        v =
          Array.mapi
            (fun i vi ->
              Array.mapi
                (fun f vif -> vif -. (scale *. (g_v.(i).(f) +. (params.l2 *. vif))))
                vi)
            model.v;
      }
  done;
  !m

let train = train_on_rows

(* ---- the Model_intf adapter ---- *)

type named_model = {
  fm_columns : string array; (* continuous feature names, factor order *)
  machine : model;
}

type model_options = params

module Model = struct
  let name = "fm"

  let description =
    "degree-2 factorisation machine, gradient descent on the basis moments"

  type options = params

  let default_options = default_params

  type model = named_model

  let needs = `Monomial

  let train_from_moments ?(options = default_params) ?warm_start
      (m : Model_intf.moments) =
    let features = m.Model_intf.features.Aggregates.Feature.continuous in
    let columns = Array.of_list features in
    let warm =
      match warm_start with
      | Some (w : model) when w.fm_columns = columns -> Some w.machine
      | _ -> None
    in
    {
      fm_columns = columns;
      machine =
        train_from_monomial_moments ~params:options ?warm
          (Lazy.force m.Model_intf.monomial)
          ~features;
    }

  let refresh ?options ~previous m =
    train_from_moments ?options ~warm_start:previous m

  let predict (m : model) (get : string -> Relational.Value.t) =
    predict m.machine
      (Array.map (fun c -> Relational.Value.to_float (get c)) m.fm_columns)

  let encode buf (m : model) =
    let module Codec = Relational.Codec in
    Codec.i64 buf (Array.length m.fm_columns);
    Array.iter (Codec.str buf) m.fm_columns;
    Codec.f64 buf m.machine.w0;
    Array.iter (Codec.f64 buf) m.machine.w;
    let rank =
      if Array.length m.machine.v = 0 then 0 else Array.length m.machine.v.(0)
    in
    Codec.i64 buf rank;
    Array.iter (fun vi -> Array.iter (Codec.f64 buf) vi) m.machine.v

  let decode r : model =
    let module Codec = Relational.Codec in
    let n = Codec.read_i64 r in
    let fm_columns = Array.init n (fun _ -> Codec.read_str r) in
    let w0 = Codec.read_f64 r in
    let w = Array.init n (fun _ -> Codec.read_f64 r) in
    let rank = Codec.read_i64 r in
    let v =
      Array.init n (fun _ -> Array.init rank (fun _ -> Codec.read_f64 r))
    in
    { fm_columns; machine = { w0; w; v } }
end

let mse (m : model) x y =
  let n = Array.length x in
  if n = 0 then 0.0
  else begin
    let se = ref 0.0 in
    Array.iteri
      (fun i row ->
        let err = predict m row -. y.(i) in
        se := !se +. (err *. err))
      x;
    !se /. float_of_int n
  end
