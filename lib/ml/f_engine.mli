(** F: regression over factorised joins [67, 56] — the covariance ring
    plugged directly into the factorised-join traversal. An independent
    engine for the same sufficient statistics as LMFAO's batch (tests check
    they agree). *)

open Relational

val covariance : ?cache:bool -> Database.t -> features:string list -> Rings.Covariance.t
(** One factorised pass; [features] are numeric attributes of the join. *)

val train_linreg :
  ?ridge:float ->
  ?cache:bool ->
  Database.t ->
  features:string list ->
  response:string ->
  Linreg.model
(** Closed-form ridge regression from the factorised pass; [response] must
    appear in [features]. The triple is wrapped as a {!Moment.t} and solved
    by {!Linreg.train}, so the factorised and LMFAO paths share one model
    type (columns are intercept-first, as everywhere). *)
