(* The common shape of a moment-backed model trainer (linear, polynomial,
   Huber, factorisation machine): a name for selection, model-specific
   options with a default, and one entry point training from a [moments]
   bundle — mirroring [Aggregates.Engine_intf.S] so the CLI, the bench
   harness and the serving layer hold models as first-class modules instead
   of per-model match arms.

   The bundle carries the three sufficient-statistic flavours the models
   need, each lazy so a consumer pays only for what its [needs] declares:

   - [covariance]: the one-hot moment matrix (degree-2), which F-IVM keeps
     fresh as a maintained triple — refreshing a covariance-backed model
     after a delta batch reads the triple in O(d^2), independent of data
     size (the paper's Section 1.5 claim);
   - [monomial]: the degree-2 BASIS moment matrix (degree-4 aggregates) for
     polynomial regression and factorisation machines;
   - [rows]: an explicit (one-hot) data matrix, for models whose gradient
     needs per-step inequality aggregates (Huber) — honest about not being
     expressible as static moments.

   [refresh] warm-starts from the previous model (Section 1.5: "we resume
   ... with parameter values that are close to the final ones"); the
   [ml.refresh.*] counters and the [ml.refresh] span make refresh traffic
   observable. *)

open Relational
module Feature = Aggregates.Feature
module Batch = Aggregates.Batch
open Util

type rows = {
  row_columns : string array; (* column 0 is the intercept *)
  x : float array array;
  y : float array;
}

(* Where the bundle's statistics come from: a database pass, the maintained
   covariance triple (with an optional snapshot thunk for the flavours the
   triple cannot provide), or explicit rows. *)
type origin = From_database | From_triple | From_rows

type moments = {
  features : Feature.t;
  origin : origin;
  covariance : Moment.t Lazy.t;
  monomial : Moment.t Lazy.t;
  rows : rows Lazy.t;
}

let response_exn (f : Feature.t) =
  match f.response with
  | Some r -> r
  | None -> invalid_arg "Model_intf: the feature map has no response"

(* rows -> one-hot covariance moments, the structure-agnostic fallback *)
let covariance_of_rows (r : rows) ~(response : string) : Moment.t =
  let has_icpt =
    Array.length r.row_columns > 0 && r.row_columns.(0) = "intercept"
  in
  let columns =
    if has_icpt then Array.append r.row_columns [| response |]
    else Array.concat [ [| "intercept" |]; r.row_columns; [| response |] ]
  in
  let width = Array.length columns in
  let index = Hashtbl.create width in
  Array.iteri (fun i c -> Hashtbl.replace index c i) columns;
  let matrix = Mat.create width width in
  Array.iteri
    (fun i row ->
      let full =
        if has_icpt then Array.append row [| r.y.(i) |]
        else Array.concat [ [| 1.0 |]; row; [| r.y.(i) |] ]
      in
      Mat.ger ~alpha:1.0 full full matrix)
    r.x;
  {
    Moment.columns;
    index;
    matrix;
    count = float_of_int (Array.length r.x);
    response_col = Some (width - 1);
  }

let rows_of_database (db : Database.t) (f : Feature.t) : rows =
  let join = Database.materialise_join db in
  let m = Baseline.One_hot.encode join f in
  { row_columns = m.Baseline.One_hot.columns; x = m.Baseline.One_hot.x; y = m.Baseline.One_hot.y }

let moments_of_database ?(engine_options = Lmfao.Engine.default_options)
    (db : Database.t) (f : Feature.t) : moments =
  let response = response_exn f in
  let covariance =
    lazy
      (let batch = Batch.covariance f in
       let table =
         Lazy.force
           (Lmfao.Engine.eval ~options:engine_options ~on_cyclic:`Materialize db
              batch)
             .Lmfao.Engine.table
       in
       let lookup id =
         match Hashtbl.find_opt table id with
         | Some r -> r
         | None ->
             invalid_arg (Printf.sprintf "Model_intf: missing aggregate %s" id)
       in
       Moment.of_batch f lookup)
  in
  let monomial =
    lazy
      (fst
         (Monomial.moment_of_database ~engine_options db ~features:f.continuous
            ~response))
  in
  let rows = lazy (rows_of_database db f) in
  { features = f; origin = From_database; covariance; monomial; rows }

let moments_of_covariance ?snapshot ?(engine_options = Lmfao.Engine.default_options)
    (cov : Rings.Covariance.t) ~(features : string list) ~(response : string) :
    moments =
  let continuous = List.filter (fun x -> x <> response) features in
  let f = Feature.make ~response ~continuous ~categorical:[] () in
  let covariance =
    lazy (Moment.of_covariance cov ~features ~response:(Some response))
  in
  let need_snapshot what =
    match snapshot with
    | Some s -> s ()
    | None ->
        invalid_arg
          (Printf.sprintf
             "Model_intf: %s statistics need a snapshot (the covariance \
              triple only carries degree-2 moments)"
             what)
  in
  let monomial =
    lazy
      (fst
         (Monomial.moment_of_database ~engine_options (need_snapshot "monomial")
            ~features:continuous ~response))
  in
  let rows = lazy (rows_of_database (need_snapshot "row") f) in
  { features = f; origin = From_triple; covariance; monomial; rows }

let moments_of_rows ?(columns : string array option) ~(response : string)
    (x : float array array) (y : float array) : moments =
  let columns =
    match columns with
    | Some c -> c
    | None ->
        let n = if Array.length x = 0 then 0 else Array.length x.(0) in
        Array.init n (Printf.sprintf "x%d")
  in
  let continuous =
    List.filter (fun c -> c <> "intercept" && c <> response)
      (Array.to_list columns)
  in
  let f = Feature.make ~response ~continuous ~categorical:[] () in
  let rows = lazy { row_columns = columns; x; y } in
  let covariance =
    lazy (covariance_of_rows (Lazy.force rows) ~response)
  in
  let monomial =
    lazy
      (Monomial.moment_of_rows ~columns ~features:continuous ~response x y)
  in
  { features = f; origin = From_rows; covariance; monomial; rows }

(* ---------- the model signature ---------- *)

module type S = sig
  val name : string
  (** Short selector used by [borg learn --model] and the bench harness. *)

  val description : string
  (** One-line description for listings. *)

  type options

  val default_options : options

  type model

  val needs : [ `Covariance | `Monomial | `Rows ]
  (** Which statistic flavour {!train_from_moments} forces. Only
      [`Covariance] models refresh straight from a maintained triple; the
      others recompute their statistics from a snapshot. *)

  val train_from_moments : ?options:options -> ?warm_start:model -> moments -> model
  (** Train from the bundle; [warm_start] resumes iterative optimisers from
      a previous model's parameters. *)

  val refresh : ?options:options -> previous:model -> moments -> model
  (** [train_from_moments ~warm_start:previous] — the online-maintenance
      step after a delta batch. *)

  val predict : model -> (string -> Value.t) -> float
  (** Predict for a raw (non-encoded) row given by attribute lookup. *)

  val encode : Buffer.t -> model -> unit
  (** Binary codec; floats are stored by bit pattern, so two models encode
      equal iff their parameters are bit-identical. *)

  val decode : Codec.reader -> model
  (** @raise Relational.Codec.Decode_error on malformed input. *)
end

type t = (module S)

let name (module M : S) = M.name
let description (module M : S) = M.description
let find models n = List.find_opt (fun m -> name m = n) models

(* A model paired with the module that trained it: what a registry stores
   when different entries hold different model types. *)
type packed = Packed : (module S with type model = 'm) * 'm -> packed

(* Observability ([ml.refresh.*]): volume of online refreshes, how many were
   served purely from the maintained triple (no snapshot, no data pass), and
   the refresh span itself. *)
let c_refresh_total = Obs.counter "ml.refresh.total"
let c_refresh_triple = Obs.counter "ml.refresh.from_triple"

let train_packed (module M : S) (m : moments) : packed =
  Packed ((module M), M.train_from_moments m)

let refresh_packed (Packed ((module M), prev) : packed) (m : moments) : packed =
  Obs.with_span "ml.refresh" @@ fun () ->
  Obs.incr c_refresh_total;
  (match (m.origin, M.needs) with
  | From_triple, `Covariance -> Obs.incr c_refresh_triple
  | _ -> ());
  Packed ((module M), M.refresh ~previous:prev m)

let predict_packed (Packed ((module M), m) : packed) get = M.predict m get

let encode_packed buf (Packed ((module M), m) : packed) =
  Codec.str buf M.name;
  M.encode buf m

let packed_name (Packed ((module M), _) : packed) = M.name

(* ---------- timed end-to-end fits (the Figure 3 rows) ---------- *)

type 'm timed = {
  model : 'm;
  stats_seconds : float; (* computing the sufficient statistics *)
  solve_seconds : float; (* the in-moment-space optimisation *)
  aggregate_count : int; (* batch size, 0 for row-based statistics *)
}

let timed_fit (type m o) ?engine_options ?options
    (module M : S with type model = m and type options = o) (db : Database.t)
    (f : Feature.t) : m timed =
  let moments = moments_of_database ?engine_options db f in
  let force () =
    match M.needs with
    | `Covariance -> ignore (Lazy.force moments.covariance)
    | `Monomial -> ignore (Lazy.force moments.monomial)
    | `Rows -> ignore (Lazy.force moments.rows)
  in
  let (), stats_seconds = Timing.time force in
  let model, solve_seconds =
    Timing.time (fun () -> M.train_from_moments ?options moments)
  in
  let aggregate_count =
    match M.needs with
    | `Covariance -> Batch.size (Batch.covariance f)
    | `Monomial ->
        Batch.size
          (fst (Monomial.batch_for f.continuous ~response:(response_exn f)))
    | `Rows -> 0
  in
  { model; stats_seconds; solve_seconds; aggregate_count }
