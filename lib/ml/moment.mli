(** Assembling the one-hot moment (non-centred covariance) matrix from the
    covariance aggregate batch (Section 2.1). The group-by aggregates are
    the sparse-tensor encoding of categorical interactions; this expands
    them into the explicit Sigma = sum phi(x) phi(x)^T over the one-hot
    feature map, without ever materialising the data matrix. *)

open Relational
open Util

type t = {
  columns : string array;  (** intercept, numeric..., one-hot columns *)
  index : (string, int) Hashtbl.t;
  matrix : Mat.t;  (** symmetric width x width *)
  count : float;
  response_col : int option;
}

val width : t -> int

val column_index : t -> string -> int
(** Raises on unknown columns. *)

val one_hot_name : string -> Value.t -> string
(** ["attr=value"], the indicator column's name. *)

val of_batch : Aggregates.Feature.t -> (string -> Aggregates.Spec.result) -> t
(** Assemble from covariance-batch results ([lookup] keyed by the ids
    produced by [Aggregates.Batch.covariance]); categorical domains are
    discovered from the marginal counts. *)

val of_covariance :
  Rings.Covariance.t -> features:string list -> response:string option -> t
(** The moment matrix read straight out of a maintained covariance triple
    ([features] in the triple's index order; the intercept is slot 0). This
    is the O(d^2), data-size-independent refresh path of online model
    maintenance. Raises if [features] does not match the triple's dimension
    or [response] is not among them. *)

val of_data_matrix : Baseline.One_hot.matrix -> response:string -> t
(** Reference: the same matrix computed directly over a materialised,
    one-hot encoded data matrix (the response column is named
    ["__response"]). *)

val pp : Format.formatter -> t -> unit
