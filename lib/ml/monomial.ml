(* Monomials over continuous features and the degree-2 basis shared by
   polynomial regression and factorisation machines (Section 2.1: "Similar
   aggregates can be derived for polynomial regression models").

   The quadratic basis phi(x) = (1, x_i ..., x_i * x_j ...) needs the moment
   matrix E[phi phi^T], whose entries are SUM-PRODUCT aggregates of degree
   up to 4 — still plain [Spec] terms (attribute powers), so the same LMFAO
   engine computes the whole batch over the join without materialising it:
   products across relations factorise through the join tree.

   [moment_of_*] package that matrix as a [Moment.t] whose columns are the
   basis monomials (the constant named "intercept") plus the response, so
   the same split/standardise/solve machinery as linear regression applies
   verbatim in basis space. *)

open Relational
module Spec = Aggregates.Spec
open Util

(* basis monomials over features xs: exponent vectors of total degree <= 2 *)
type t = (string * int) list (* sorted, powers >= 1; [] = 1 *)

let basis (features : string list) : t list =
  let singles = List.map (fun x -> [ (x, 1) ]) features in
  let rec pairs = function
    | [] -> []
    | x :: rest ->
        [ (x, 2) ]
        :: List.map (fun y -> List.sort compare [ (x, 1); (y, 1) ]) rest
        @ pairs rest
  in
  ([] :: singles) @ pairs features

let name (m : t) =
  match m with
  | [] -> "1"
  | ts -> String.concat "*" (List.map (fun (a, p) -> Printf.sprintf "%s^%d" a p) ts)

(* product of two monomials: merge exponents *)
let mul (a : t) (b : t) : t =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (x, p) ->
      Hashtbl.replace table x (p + Option.value ~default:0 (Hashtbl.find_opt table x)))
    (a @ b);
  List.sort compare (Hashtbl.fold (fun x p acc -> (x, p) :: acc) table [])

let eval (m : t) (get : string -> float) =
  List.fold_left
    (fun acc (x, p) ->
      let v = get x in
      let rec pow acc k = if k = 0 then acc else pow (acc *. v) (k - 1) in
      pow acc p)
    1.0 m

(* the aggregate batch: SUM of every pairwise product of basis monomials
   (and of each monomial times the response) *)
let batch_for (features : string list) ~(response : string) =
  let b = basis features in
  let specs = Hashtbl.create 64 in
  let add terms =
    let id = name terms in
    if not (Hashtbl.mem specs id) then
      Hashtbl.replace specs id (Spec.make ~id ~terms ~group_by:[] ())
  in
  List.iteri
    (fun i mi ->
      List.iteri
        (fun j mj -> if j >= i then add (mul mi mj))
        b;
      add (mul mi [ (response, 1) ]))
    b;
  add [ (response, 2) ];
  ( { Aggregates.Batch.name = "polyreg";
      aggregates = Hashtbl.fold (fun _ s acc -> s :: acc) specs [] },
    b )

(* Column names of the basis-space moment matrix: basis monomials (the
   constant renamed "intercept" so [Linreg.standardise]'s invariant holds)
   followed by the response attribute itself. *)
let column_name (m : t) = match m with [] -> "intercept" | _ -> name m

let moment_of_scalars (b : t list) ~(response : string)
    (scalar : t -> float) : Moment.t =
  let barr = Array.of_list b in
  let dim = Array.length barr in
  let columns =
    Array.append (Array.map column_name barr) [| response |]
  in
  let index = Hashtbl.create (dim + 1) in
  Array.iteri (fun i c -> Hashtbl.replace index c i) columns;
  let matrix = Mat.create (dim + 1) (dim + 1) in
  let set_sym i j v =
    Mat.set matrix i j v;
    Mat.set matrix j i v
  in
  for i = 0 to dim - 1 do
    for j = i to dim - 1 do
      set_sym i j (scalar (mul barr.(i) barr.(j)))
    done;
    set_sym i dim (scalar (mul barr.(i) [ (response, 1) ]))
  done;
  Mat.set matrix dim dim (scalar [ (response, 2) ]);
  {
    Moment.columns;
    index;
    matrix;
    count = scalar [];
    response_col = Some dim;
  }

(* Basis-space moments over the join, one LMFAO batch (degree-4 SUM-PRODUCT
   aggregates). Returns the moment plus the batch size for timing reports. *)
let moment_of_database ?(engine_options = Lmfao.Engine.default_options)
    (db : Database.t) ~(features : string list) ~(response : string) :
    Moment.t * int =
  let batch, b = batch_for features ~response in
  let table =
    Lazy.force
      (Lmfao.Engine.eval ~options:engine_options ~on_cyclic:`Materialize db batch)
        .Lmfao.Engine.table
  in
  let scalar terms =
    match Hashtbl.find_opt table (name terms) with
    | Some r -> Spec.scalar_result r
    | None -> invalid_arg ("Monomial: missing aggregate " ^ name terms)
  in
  (moment_of_scalars b ~response scalar, Aggregates.Batch.size batch)

(* The same moments accumulated over explicit rows (the structure-agnostic
   reference, and the path for data given as matrices). *)
let moment_of_rows ~(columns : string array) ~(features : string list)
    ~(response : string) (x : float array array) (y : float array) : Moment.t =
  let pos = Hashtbl.create (Array.length columns) in
  Array.iteri (fun i c -> Hashtbl.replace pos c i) columns;
  let b = basis features in
  let barr = Array.of_list b in
  let dim = Array.length barr in
  (* the distinct monomials the matrix needs (pair products collide: e.g.
     1 * x^2 and x * x are the same SUM, accumulated once) *)
  let needed = Hashtbl.create 64 in
  let note terms = Hashtbl.replace needed (name terms) terms in
  for i = 0 to dim - 1 do
    for j = i to dim - 1 do
      note (mul barr.(i) barr.(j))
    done;
    note (mul barr.(i) [ (response, 1) ])
  done;
  note [ (response, 2) ];
  let totals = Hashtbl.create (Hashtbl.length needed) in
  Array.iteri
    (fun r row ->
      let get a =
        if a = response then y.(r)
        else
          match Hashtbl.find_opt pos a with
          | Some i -> row.(i)
          | None -> invalid_arg ("Monomial.moment_of_rows: unknown feature " ^ a)
      in
      Hashtbl.iter
        (fun id terms ->
          Hashtbl.replace totals id
            (eval terms get
            +. Option.value ~default:0.0 (Hashtbl.find_opt totals id)))
        needed)
    x;
  let scalar terms =
    Option.value ~default:0.0 (Hashtbl.find_opt totals (name terms))
  in
  moment_of_scalars b ~response scalar
