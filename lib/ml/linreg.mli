(** Ridge linear regression from the moment matrix (Sections 1.3 and 2.1):
    after the covariance aggregates are in, learning is a small
    optimisation independent of the data size. Gradient-based methods run on
    the moment-space-standardised normal equations; the closed form is one
    Cholesky solve (the accuracy reference of Figure 3). *)

open Relational
open Util
module Feature = Aggregates.Feature

type method_ =
  | Closed_form
  | Gradient_descent of gd_params
      (** steepest descent with exact line search (the Hessian is free from
          the aggregates) *)
  | Conjugate_gradient of cg_params

and gd_params = { learning_rate : float; iterations : int; tolerance : float }
and cg_params = { cg_iterations : int; cg_tolerance : float }

val default_gd : gd_params
val default_cg : cg_params

type model = {
  feature_columns : string array;
  weights : Vec.t;
  features : Feature.t;
  iterations_run : int;
}

val train :
  ?ridge:float -> ?method_:method_ -> ?warm_start:model -> Feature.t -> Moment.t -> model
(** [warm_start] resumes the gradient methods from a previous model's
    parameters — the Section 1.5 trick that keeps a maintained model's
    refresh below from-scratch retraining. *)

val training_mse : model -> Moment.t -> float
(** Training MSE computed purely from the moments — no data pass. *)

val predict : model -> (string -> Value.t) -> float
(** Predict for a raw row given by attribute lookup; unseen categories
    contribute nothing. *)

val rmse_on : model -> Relation.t -> float
(** RMSE over an explicit (materialised) relation, for evaluation. *)

val encode : Buffer.t -> model -> unit
(** Binary codec; floats round-trip bit-identically. *)

val decode : Codec.reader -> model
(** @raise Relational.Codec.Decode_error on malformed input. *)

type model_options = { ridge : float; method_ : method_ }

(** The {!Model_intf.S} adapter ("linreg-cg"). The CLI-selectable closed-form
    and gradient-descent variants live in {!Models}. *)
module Model :
  Model_intf.S with type model = model and type options = model_options

type timed_run = {
  model : model;
  batch_seconds : float;
  solve_seconds : float;
  aggregate_count : int;
}

val train_over_database :
  ?ridge:float ->
  ?method_:method_ ->
  ?engine_options:Lmfao.Engine.options ->
  Database.t ->
  Feature.t ->
  timed_run
  [@@ocaml.deprecated "use Model_intf.timed_fit (module Linreg.Model)"]
(** @deprecated Thin wrapper over {!Model_intf.timed_fit} with
    {!Model}. *)
