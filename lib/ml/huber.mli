(** Robust (Huber-loss) regression (Section 2.3): the gradient splits per
    tuple on the additive inequality |<w,x> - y| <= delta, so each step is a
    batch of theta-join aggregates under the current parameters. *)

type data = { x : float array array; y : float array }

type params = {
  delta : float;  (** the quadratic/linear crossover band *)
  learning_rate : float;
  iterations : int;
  l2 : float;
}

val default_params : params

val gradient_aggregates : data -> float array -> delta:float -> float array * int
(** One step's inequality-aggregate batch: the per-feature gradient sums and
    the number of in-band tuples. *)

val train_weights : ?params:params -> ?init:float array -> data -> float array
(** The gradient loop; [init] warm-starts it from a previous parameter
    vector (the online-refresh path). *)

val train : ?params:params -> data -> float array
  [@@ocaml.deprecated "use train_weights or Huber.Model"]
(** @deprecated [train_weights] without a warm start. *)

val predict : float array -> float array -> float
val objective : ?params:params -> float array -> data -> float

type named_model = {
  columns : string array;  (** one-hot column names; slot 0 is the intercept *)
  weights : float array;
  delta : float;
}

val predict_named : named_model -> (string -> Relational.Value.t) -> float

(** The {!Model_intf.S} adapter ("huber"). Huber's gradient needs per-step
    inequality aggregates under the current parameters, so the adapter
    declares [`Rows] and forces the bundle's data matrix — it cannot refresh
    from a covariance triple alone. *)
module Model :
  Model_intf.S with type model = named_model and type options = params
