(* F: regression models over factorised joins (the paper's earliest system
   in this line [67, 56]).

   Where LMFAO decomposes the aggregate batch over a join tree of views, F
   evaluates it in one factorised pass: the covariance ring is plugged
   directly into the factorised-join traversal, each feature variable
   lifting its values to (1, x*e_i, x^2*E_ii). Because every variable occurs
   exactly once in a variable order, no ownership bookkeeping is needed.
   This is a second, independently-structured engine for the same
   sufficient statistics — the test suite checks it against both LMFAO and
   the flat computation. *)

open Relational
module Cov = Rings.Covariance
module P = Fivm.Payload.Cov_dyn

(* Observability ([f.*]): how many value lifts the single factorised pass
   performs — the per-value work of Figure 9's re-mapping. *)
let c_lift_ops = Obs.counter "f.lift_ops"

(* The covariance triple of the numeric [features] over the natural join. *)
let covariance ?(cache = true) (db : Database.t) ~(features : string list) : Cov.t =
  Obs.with_span "f.covariance" @@ fun () ->
  let rels = Database.relations db in
  let order = Factorized.Var_order.of_relations rels in
  let dim = List.length features in
  let index = Hashtbl.create 16 in
  List.iteri (fun i f -> Hashtbl.replace index f i) features;
  let lift var v : P.t =
    Obs.incr c_lift_ops;
    match Hashtbl.find_opt index var with
    | Some i -> `Elem (Cov.lift dim i (Value.to_float v))
    | None -> `One
  in
  let result =
    Factorized.Fjoin.eval_semiring ~cache (module P) ~lift rels order
  in
  Fivm.Payload.cov_elem dim result

(* Ridge linear regression trained from the factorised covariance pass:
   response must be listed among [features]. The triple is wrapped as a
   [Moment.t] and solved by [Linreg.train], so the factorised and LMFAO
   paths share one model type and one weight-assembly code path. *)
let train_linreg ?(ridge = 1e-3) ?cache (db : Database.t) ~(features : string list)
    ~(response : string) : Linreg.model =
  let cov = covariance ?cache db ~features in
  if not (List.mem response features) then
    invalid_arg "F_engine.train_linreg: response not in features";
  let moment = Moment.of_covariance cov ~features ~response:(Some response) in
  let feature =
    Aggregates.Feature.make ~response
      ~continuous:(List.filter (fun f -> f <> response) features)
      ~categorical:[] ()
  in
  Linreg.train ~ridge ~method_:Linreg.Closed_form feature moment
