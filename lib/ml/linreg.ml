(* Ridge linear regression trained from the moment matrix (Sections 1.3 and
   2.1): once the covariance aggregates are in, learning is a small
   optimisation problem independent of the data size — gradient descent
   converges in milliseconds, and the closed-form ordinary-least-squares
   solution is one Cholesky solve (the accuracy reference of Figure 3). *)

open Relational
open Util
module Feature = Aggregates.Feature

type method_ =
  | Closed_form
  | Gradient_descent of gd_params
  | Conjugate_gradient of cg_params

and gd_params = {
  learning_rate : float;
  iterations : int;
  tolerance : float; (* stop when the gradient's max-norm drops below *)
}

and cg_params = { cg_iterations : int; cg_tolerance : float }

let default_gd = { learning_rate = 0.1; iterations = 5_000; tolerance = 1e-9 }

let default_cg = { cg_iterations = 1_000; cg_tolerance = 1e-12 }

(* Observability ([ml.*]): convergence effort of the in-moment-space
   optimisers — total iterations across trainings, and the last gradient
   norm (GD: max-norm; CG: residual 2-norm). *)
let c_iterations = Obs.counter "ml.iterations"
let g_grad_norm = Obs.gauge "ml.gradient_norm"

type model = {
  feature_columns : string array; (* columns of the weight vector *)
  weights : Vec.t;
  features : Feature.t;
  iterations_run : int;
}

(* Split the moment matrix into the feature block A = X^T X, the response
   correlation b = X^T y, and y^T y. *)
let split (m : Moment.t) =
  let r =
    match m.response_col with
    | Some r -> r
    | None -> invalid_arg "Linreg.train: moment matrix has no response column"
  in
  let w = Moment.width m in
  let keep = Array.of_list (List.filter (fun i -> i <> r) (List.init w Fun.id)) in
  let a =
    Mat.init (Array.length keep) (Array.length keep) (fun i j ->
        Mat.get m.matrix keep.(i) keep.(j))
  in
  let b = Array.map (fun i -> Mat.get m.matrix i r) keep in
  let yy = Mat.get m.matrix r r in
  let columns = Array.map (fun i -> m.columns.(i)) keep in
  (a, b, yy, columns)

(* Training MSE of weights theta, straight from the moments:
   (y^T y - 2 theta^T b + theta^T A theta) / N. No data pass needed. *)
let mse_of_moments a b yy count theta =
  let at = Mat.matvec a theta in
  (yy -. (2.0 *. Vec.dot theta b) +. Vec.dot theta at) /. Stdlib.max 1.0 count

(* Standardise the feature moments (mean 0, variance 1, intercept kept as
   the constant 1) entirely in moment space, returning the standardised
   (A', b') and the map from standardised weights back to raw-space
   weights. *)
let standardise ~columns a b n =
  let dim = Array.length b in
  assert (columns.(0) = "intercept");
  let mean = Array.init dim (fun i -> Mat.get a 0 i /. n) in
  mean.(0) <- 0.0;
  let std =
    Array.init dim (fun i ->
        if i = 0 then 1.0
        else
          let var = (Mat.get a i i /. n) -. (mean.(i) *. mean.(i)) in
          if var > 1e-12 then sqrt var else 1.0)
  in
  (* centred features are orthogonal to the constant column, so the
     intercept row/column of A' is (n, 0, ..., 0) *)
  let a' =
    Mat.init dim dim (fun i j ->
        if i = 0 && j = 0 then n
        else if i = 0 || j = 0 then 0.0
        else (Mat.get a i j -. (n *. mean.(i) *. mean.(j))) /. (std.(i) *. std.(j)))
  in
  let sum_y = b.(0) in
  let b' = Array.init dim (fun i -> (b.(i) -. (mean.(i) *. sum_y)) /. std.(i)) in
  let unstandardise (theta : Vec.t) =
    Array.init dim (fun i ->
        if i = 0 then
          theta.(0)
          -. Array.fold_left ( +. ) 0.0
               (Array.init (dim - 1) (fun j ->
                    theta.(j + 1) *. mean.(j + 1) /. std.(j + 1)))
        else theta.(i) /. std.(i))
  in
  (* inverse map, for warm starts from raw-space weights *)
  let restandardise (w : Vec.t) =
    Array.init dim (fun i ->
        if i = 0 then
          w.(0)
          +. Array.fold_left ( +. ) 0.0
               (Array.init (dim - 1) (fun j -> w.(j + 1) *. mean.(j + 1)))
        else w.(i) *. std.(i))
  in
  (a', b', unstandardise, restandardise)

let train ?(ridge = 1e-3) ?(method_ = Gradient_descent default_gd) ?warm_start
    (features : Feature.t) (m : Moment.t) : model =
  (* [warm_start] resumes the convergence procedure from a previous model's
     parameters (Section 1.5: refreshing a maintained model "takes less than
     ... computing the parameters from scratch, since we resume ... with
     parameter values that are close to the final ones"). *)
  let a, b, _yy, columns = split m in
  let n = Stdlib.max 1.0 m.count in
  let dim = Array.length b in
  match method_ with
  | Closed_form ->
      (* (A/N + ridge I) theta = b/N *)
      let lhs =
        Mat.init dim dim (fun i j ->
            (Mat.get a i j /. n) +. if i = j then ridge else 0.0)
      in
      let rhs = Array.map (fun x -> x /. n) b in
      {
        feature_columns = columns;
        weights = Mat.solve_spd lhs rhs;
        features;
        iterations_run = 0;
      }
  | Gradient_descent p ->
      (* Gradient of (1/2N)||X theta - y||^2 + (ridge/2)||theta||^2
         = (A theta - b)/N + ridge theta : built from the aggregates and the
         current parameters only (the paper's "gradient vector is built up
         using the computed aggregates"). Standardised in moment space; the
         step size uses exact line search along the gradient (the Hessian is
         available for free from the aggregates). *)
      let a', b', unstandardise, restandardise = standardise ~columns a b n in
      let theta =
        match warm_start with
        | Some (w : model) when Array.length w.weights = dim ->
            restandardise w.weights
        | _ -> Vec.create dim
      in
      let iterations = ref 0 in
      (try
         for it = 1 to p.iterations do
           iterations := it;
           Obs.incr c_iterations;
           let at = Mat.matvec a' theta in
           let grad =
             Array.init dim (fun i -> ((at.(i) -. b'.(i)) /. n) +. (ridge *. theta.(i)))
           in
           if Obs.is_enabled () then Obs.set_gauge g_grad_norm (Vec.norm_inf grad);
           if Vec.norm_inf grad < p.tolerance then raise Exit;
           let hg = Mat.matvec a' grad in
           let gg = Vec.dot grad grad in
           let ghg = (Vec.dot grad hg /. n) +. (ridge *. gg) in
           let alpha = if ghg > 0.0 then gg /. ghg else p.learning_rate in
           Vec.axpy ~alpha:(-.alpha) grad theta
         done
       with Exit -> ());
      {
        feature_columns = columns;
        weights = unstandardise theta;
        features;
        iterations_run = !iterations;
      }
  | Conjugate_gradient p ->
      (* Conjugate gradients on the standardised normal equations
         (A'/N + ridge I) theta = b'/N: converges in at most [dim] steps and
         is still built purely from the aggregates. *)
      let a', b', unstandardise, restandardise = standardise ~columns a b n in
      let apply_h v =
        let av = Mat.matvec a' v in
        Array.mapi (fun i x -> (x /. n) +. (ridge *. v.(i))) av
      in
      let theta =
        match warm_start with
        | Some (w : model) when Array.length w.weights = dim ->
            restandardise w.weights
        | _ -> Vec.create dim
      in
      (* residual r = b'/n - H theta (zero theta gives the usual b'/n) *)
      let h_theta = apply_h theta in
      let r = Array.mapi (fun i x -> (x /. n) -. h_theta.(i)) b' in
      let p_dir = Vec.copy r in
      let rs = ref (Vec.dot r r) in
      let iterations = ref 0 in
      (try
         for it = 1 to Stdlib.min p.cg_iterations (4 * dim) do
           iterations := it;
           Obs.incr c_iterations;
           if Obs.is_enabled () then Obs.set_gauge g_grad_norm (sqrt !rs);
           if !rs < p.cg_tolerance then raise Exit;
           let hp = apply_h p_dir in
           let php = Vec.dot p_dir hp in
           if php <= 0.0 then raise Exit;
           let alpha = !rs /. php in
           Vec.axpy ~alpha p_dir theta;
           Vec.axpy ~alpha:(-.alpha) hp r;
           let rs' = Vec.dot r r in
           let beta = rs' /. !rs in
           rs := rs';
           for i = 0 to dim - 1 do
             p_dir.(i) <- r.(i) +. (beta *. p_dir.(i))
           done
         done
       with Exit -> ());
      {
        feature_columns = columns;
        weights = unstandardise theta;
        features;
        iterations_run = !iterations;
      }

let training_mse (model : model) (m : Moment.t) =
  let a, b, yy, _ = split m in
  mse_of_moments a b yy m.count model.weights

(* Predict for a raw (non-encoded) row, given by attribute lookup. Unseen
   categories contribute nothing (their indicator column does not exist). *)
let predict (model : model) (get : string -> Value.t) =
  let acc = ref 0.0 in
  Array.iteri
    (fun i col ->
      let v =
        if col = "intercept" then 1.0
        else
          match String.index_opt col '=' with
          | Some eq ->
              let attr = String.sub col 0 eq in
              let value = String.sub col (eq + 1) (String.length col - eq - 1) in
              if Value.to_string (get attr) = value then 1.0 else 0.0
          | None -> Value.to_float (get col)
      in
      acc := !acc +. (model.weights.(i) *. v))
    model.feature_columns;
  !acc

let rmse_on (model : model) (rel : Relation.t) =
  let response =
    match model.features.response with
    | Some r -> r
    | None -> invalid_arg "Linreg.rmse_on: no response"
  in
  let schema = Relation.schema rel in
  let n = Relation.cardinality rel in
  if n = 0 then 0.0
  else begin
    let col_of = Hashtbl.create 16 in
    List.iter
      (fun (a : Schema.attr) ->
        Hashtbl.replace col_of a.name
          (Relation.column rel (Schema.position schema a.name)))
      (Schema.attrs schema);
    let row = ref 0 in
    let get a = Column.get (Hashtbl.find col_of a) !row in
    let se = ref 0.0 in
    for i = 0 to n - 1 do
      row := i;
      let err = predict model get -. Value.to_float (get response) in
      se := !se +. (err *. err)
    done;
    sqrt (!se /. float_of_int n)
  end

(* ---- binary codec (bit-identical float round trip) ---- *)

let encode_feature buf (f : Feature.t) =
  (match f.response with
  | None -> Codec.u8 buf 0
  | Some r ->
      Codec.u8 buf 1;
      Codec.str buf r);
  let strs l =
    Codec.i64 buf (List.length l);
    List.iter (Codec.str buf) l
  in
  strs f.continuous;
  strs f.categorical;
  Codec.i64 buf f.thresholds_per_feature

let decode_feature r : Feature.t =
  let response =
    match Codec.read_u8 r with 0 -> None | _ -> Some (Codec.read_str r)
  in
  let strs () = List.init (Codec.read_i64 r) (fun _ -> Codec.read_str r) in
  let continuous = strs () in
  let categorical = strs () in
  let thresholds_per_feature = Codec.read_i64 r in
  Feature.make ?response ~thresholds_per_feature ~continuous ~categorical ()

let encode buf (m : model) =
  Codec.i64 buf (Array.length m.feature_columns);
  Array.iter (Codec.str buf) m.feature_columns;
  Array.iter (Codec.f64 buf) m.weights;
  encode_feature buf m.features;
  Codec.i64 buf m.iterations_run

let decode r : model =
  let dim = Codec.read_i64 r in
  let feature_columns = Array.init dim (fun _ -> Codec.read_str r) in
  let weights = Array.init dim (fun _ -> Codec.read_f64 r) in
  let features = decode_feature r in
  let iterations_run = Codec.read_i64 r in
  { feature_columns; weights; features; iterations_run }

(* ---- the Model_intf adapter (plus its CLI-selectable variants) ---- *)

type model_options = { ridge : float; method_ : method_ }

module Model = struct
  let name = "linreg-cg"

  let description =
    "ridge linear regression, conjugate gradients on the covariance moments"

  type options = model_options

  let default_options = { ridge = 1e-3; method_ = Conjugate_gradient default_cg }

  type nonrec model = model

  let needs = `Covariance

  let train_from_moments ?(options = default_options) ?warm_start
      (m : Model_intf.moments) =
    train ~ridge:options.ridge ~method_:options.method_ ?warm_start
      m.Model_intf.features
      (Lazy.force m.Model_intf.covariance)

  let refresh ?options ~previous m =
    train_from_moments ?options ~warm_start:previous m

  let predict = predict
  let encode = encode
  let decode = decode
end

(* End-to-end structure-aware training: synthesise the covariance batch, run
   LMFAO, assemble the moment matrix, optimise. Returns the model plus the
   batch/optimisation timings (the Figure 3 rows). *)
type timed_run = {
  model : model;
  batch_seconds : float;
  solve_seconds : float;
  aggregate_count : int;
}

let train_over_database ?(ridge = 1e-3) ?(method_ = Conjugate_gradient default_cg)
    ?engine_options (db : Database.t) (features : Feature.t) : timed_run =
  let r =
    Model_intf.timed_fit ?engine_options ~options:{ ridge; method_ }
      (module Model) db features
  in
  {
    model = r.Model_intf.model;
    batch_seconds = r.Model_intf.stats_seconds;
    solve_seconds = r.Model_intf.solve_seconds;
    aggregate_count = r.Model_intf.aggregate_count;
  }
