(* Ridge polynomial regression of degree 2 over continuous features
   (Section 2.1: "Similar aggregates can be derived for polynomial
   regression models").

   The quadratic basis phi(x) = (1, x_i ..., x_i * x_j ...) needs the moment
   matrix E[phi phi^T] — the basis-space moments of [Monomial]. Training is
   one closed-form ridge solve over that matrix, so a refresh from updated
   moments is bit-identical to a cold retrain over the same statistics. *)

open Relational
open Util

type monomial = Monomial.t

let basis = Monomial.basis
let monomial_name = Monomial.name
let mono_mul = Monomial.mul
let batch_for = Monomial.batch_for

type model = {
  basis_monomials : monomial list;
  weights : Vec.t;
  response : string;
}

(* Closed-form ridge solve over the basis-space moments: the moment's
   columns are the basis monomials (constant first, named "intercept")
   followed by the response. *)
let train_from_monomial_moments ?(ridge = 1e-2) (m : Moment.t) : model =
  let r =
    match m.Moment.response_col with
    | Some r -> r
    | None -> invalid_arg "Polyreg: moment matrix has no response column"
  in
  let response = m.Moment.columns.(r) in
  let dim = Moment.width m - 1 in
  if r <> dim then invalid_arg "Polyreg: response must be the last column";
  let n = Stdlib.max 1.0 m.Moment.count in
  let a =
    Mat.init dim dim (fun i j ->
        (Mat.get m.Moment.matrix i j /. n) +. if i = j then ridge else 0.0)
  in
  let rhs = Array.init dim (fun i -> Mat.get m.Moment.matrix i r /. n) in
  let basis_monomials =
    List.map
      (fun c ->
        if c = "intercept" then []
        else
          List.map
            (fun part ->
              match String.index_opt part '^' with
              | Some caret ->
                  ( String.sub part 0 caret,
                    int_of_string
                      (String.sub part (caret + 1)
                         (String.length part - caret - 1)) )
              | None -> (part, 1))
            (String.split_on_char '*' c))
      (Array.to_list (Array.sub m.Moment.columns 0 dim))
  in
  { basis_monomials; weights = Mat.solve_spd a rhs; response }

let eval_monomial (m : monomial) (get : string -> float) = Monomial.eval m get

let predict (model : model) (get : string -> float) =
  List.fold_left
    (fun (acc, i) m -> (acc +. (model.weights.(i) *. eval_monomial m get), i + 1))
    (0.0, 0) model.basis_monomials
  |> fst

let rmse_on (model : model) (rel : Relation.t) =
  let schema = Relation.schema rel in
  let n = Relation.cardinality rel in
  if n = 0 then 0.0
  else begin
    let col_of = Hashtbl.create 16 in
    List.iter
      (fun (a : Schema.attr) ->
        Hashtbl.replace col_of a.name
          (Relation.column rel (Schema.position schema a.name)))
      (Schema.attrs schema);
    let row = ref 0 in
    let get a = Column.float_at (Hashtbl.find col_of a) !row in
    let se = ref 0.0 in
    for i = 0 to n - 1 do
      row := i;
      let err = predict model get -. get model.response in
      se := !se +. (err *. err)
    done;
    sqrt (!se /. float_of_int n)
  end

(* ---- binary codec ---- *)

let encode buf (m : model) =
  Codec.i64 buf (List.length m.basis_monomials);
  List.iter
    (fun mono ->
      Codec.i64 buf (List.length mono);
      List.iter
        (fun (a, p) ->
          Codec.str buf a;
          Codec.i64 buf p)
        mono)
    m.basis_monomials;
  Array.iter (Codec.f64 buf) m.weights;
  Codec.str buf m.response

let decode r : model =
  let dim = Codec.read_i64 r in
  let basis_monomials =
    List.init dim (fun _ ->
        List.init (Codec.read_i64 r) (fun _ ->
            let a = Codec.read_str r in
            let p = Codec.read_i64 r in
            (a, p)))
  in
  let weights = Array.init dim (fun _ -> Codec.read_f64 r) in
  let response = Codec.read_str r in
  { basis_monomials; weights; response }

(* ---- the Model_intf adapter ---- *)

type model_options = { ridge : float }

module Model = struct
  let name = "polyreg"

  let description =
    "degree-2 polynomial ridge regression from the basis-space moments"

  type options = model_options

  let default_options = { ridge = 1e-2 }

  type nonrec model = model

  let needs = `Monomial

  (* Closed form: the warm start is accepted for signature uniformity but
     cannot speed up a direct solve. *)
  let train_from_moments ?(options = default_options) ?warm_start
      (m : Model_intf.moments) =
    ignore warm_start;
    train_from_monomial_moments ~ridge:options.ridge
      (Lazy.force m.Model_intf.monomial)

  let refresh ?options ~previous m =
    train_from_moments ?options ~warm_start:previous m

  let predict (m : model) (get : string -> Value.t) =
    predict m (fun a -> Value.to_float (get a))

  let encode = encode
  let decode = decode
end

let train ?(ridge = 1e-2) ?(engine_options = Lmfao.Engine.default_options)
    (db : Database.t) ~(features : string list) ~(response : string) : model =
  let m, _ = Monomial.moment_of_database ~engine_options db ~features ~response in
  train_from_monomial_moments ~ridge m
