(** Monomials over continuous features and the degree-2 basis shared by
    polynomial regression and factorisation machines (Section 2.1). The
    basis's moment matrix consists of SUM-PRODUCT aggregates of degree up to
    4 — still plain [Spec] terms, so the same LMFAO engine computes the
    whole batch over the join without materialising it. *)

open Relational

type t = (string * int) list
(** Sorted (attribute, power) products; [] is the constant 1. *)

val basis : string list -> t list
(** All monomials of total degree <= 2 over the features. *)

val name : t -> string
val mul : t -> t -> t
val eval : t -> (string -> float) -> float

val batch_for : string list -> response:string -> Aggregates.Batch.t * t list
(** The deduplicated aggregate batch covering every basis-pair product and
    basis-response product. *)

val column_name : t -> string
(** The monomial's column name in a basis-space {!Moment.t}: the constant is
    "intercept", everything else {!name}. *)

val moment_of_database :
  ?engine_options:Lmfao.Engine.options ->
  Database.t ->
  features:string list ->
  response:string ->
  Moment.t * int
(** Basis-space moments over the join in one LMFAO batch; also returns the
    batch size (for timing reports). Columns are the basis monomials
    followed by the response, so linear-regression machinery applies
    verbatim in basis space. *)

val moment_of_rows :
  columns:string array ->
  features:string list ->
  response:string ->
  float array array ->
  float array ->
  Moment.t
(** The same moments accumulated over explicit rows ([columns] names the
    columns of the row matrix; the structure-agnostic reference). *)
