(** The common shape of a moment-backed model trainer (mirroring
    {!Aggregates.Engine_intf.S}): train from a lazy bundle of sufficient
    statistics, refresh with a warm start, predict by attribute lookup, and
    round-trip through a binary codec. The bundle lets the serving layer
    hand every model the SAME object after a delta batch — covariance-backed
    models read the maintained triple in O(d^2), the rest force a snapshot
    recompute — and the [ml.refresh.*] counters make the difference
    observable. *)

open Relational
module Feature := Aggregates.Feature

type rows = {
  row_columns : string array;  (** column 0 is the intercept *)
  x : float array array;
  y : float array;
}

type origin = From_database | From_triple | From_rows

type moments = {
  features : Feature.t;
  origin : origin;
  covariance : Moment.t Lazy.t;  (** one-hot degree-2 moment matrix *)
  monomial : Moment.t Lazy.t;  (** degree-2 basis (degree-4 aggregate) moments *)
  rows : rows Lazy.t;  (** explicit one-hot data matrix *)
}

val moments_of_database :
  ?engine_options:Lmfao.Engine.options -> Database.t -> Feature.t -> moments
(** Every flavour computed on demand over the database: covariance and
    monomial moments by LMFAO batches, rows by join materialisation. *)

val moments_of_covariance :
  ?snapshot:(unit -> Database.t) ->
  ?engine_options:Lmfao.Engine.options ->
  Rings.Covariance.t ->
  features:string list ->
  response:string ->
  moments
(** The online-maintenance bundle: covariance moments read straight from the
    maintained triple ([features] in the triple's index order, [response]
    among them). Monomial and row statistics force [snapshot] — the triple
    only carries degree-2 moments — and raise [Invalid_argument] when no
    snapshot is provided. *)

val moments_of_rows :
  ?columns:string array ->
  response:string ->
  float array array ->
  float array ->
  moments
(** Explicit rows ([columns] defaults to [x0..xn-1]; a leading "intercept"
    column is recognised and not duplicated in the covariance moments). *)

(** The model signature: a name for selection, model-specific options, and
    one trainer over the bundle. *)
module type S = sig
  val name : string
  (** Short selector used by [borg learn --model] and the bench harness. *)

  val description : string

  type options

  val default_options : options

  type model

  val needs : [ `Covariance | `Monomial | `Rows ]
  (** Which statistic flavour {!train_from_moments} forces. Only
      [`Covariance] models refresh straight from a maintained triple. *)

  val train_from_moments :
    ?options:options -> ?warm_start:model -> moments -> model
  (** [warm_start] resumes iterative optimisers from a previous model's
      parameters — the Section 1.5 trick that keeps a maintained model's
      refresh below from-scratch retraining. *)

  val refresh : ?options:options -> previous:model -> moments -> model
  (** [train_from_moments ~warm_start:previous] — the online-maintenance
      step after a delta batch. *)

  val predict : model -> (string -> Value.t) -> float

  val encode : Buffer.t -> model -> unit
  (** Floats are stored by bit pattern: two models encode equal iff their
      parameters are bit-identical. *)

  val decode : Codec.reader -> model
  (** @raise Relational.Codec.Decode_error on malformed input. *)
end

type t = (module S)

val name : t -> string
val description : t -> string
val find : t list -> string -> t option

type packed = Packed : (module S with type model = 'm) * 'm -> packed
(** A model paired with the module that trained it — what a registry stores
    when different entries hold different model types. *)

val train_packed : t -> moments -> packed
(** Train with default options. *)

val refresh_packed : packed -> moments -> packed
(** Warm-started refresh inside an [ml.refresh] span; bumps
    [ml.refresh.total] and, when a [`Covariance] model consumed a
    triple-backed bundle, [ml.refresh.from_triple]. *)

val predict_packed : packed -> (string -> Value.t) -> float

val encode_packed : Buffer.t -> packed -> unit
(** The model's name followed by its payload (decode via a registry, e.g.
    [Models.decode_packed]). *)

val packed_name : packed -> string

type 'm timed = {
  model : 'm;
  stats_seconds : float;  (** computing the sufficient statistics *)
  solve_seconds : float;  (** the in-moment-space optimisation *)
  aggregate_count : int;  (** batch size; 0 for row-based statistics *)
}

val timed_fit :
  ?engine_options:Lmfao.Engine.options ->
  ?options:'o ->
  (module S with type model = 'm and type options = 'o) ->
  Database.t ->
  Feature.t ->
  'm timed
(** End-to-end structure-aware training over a database with the
    statistics/optimisation split timed (the Figure 3 rows). *)
