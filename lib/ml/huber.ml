(* Robust (Huber-loss) regression (Section 2.3: "Huber loss admits a
   gradient with additive inequalities").

   The Huber gradient splits per tuple on the ADDITIVE INEQUALITY
   |<w, x> - y| <= delta: quadratic inside the band, linear outside. Each
   gradient step therefore needs, per feature j,

     SUM((<w,x> - y) * x_j)   over tuples with |residual| <= delta
     SUM(sign(residual) * x_j) over the others

   — theta-join aggregates under the current parameters, the Section 2.3
   workload. [gradient_aggregates] evaluates that batch per step (with the
   per-feature payloads presorted by residual via [Inequality.presort] when
   profitable); training is plain gradient descent over it. *)

type data = { x : float array array; y : float array }

type params = {
  delta : float; (* the Huber band *)
  learning_rate : float;
  iterations : int;
  l2 : float;
}

let default_params = { delta = 1.0; learning_rate = 0.1; iterations = 400; l2 = 1e-4 }

(* the two inequality-aggregate families of one gradient step *)
let gradient_aggregates (d : data) (w : float array) ~delta =
  let n_features = Array.length w in
  let grad = Array.make n_features 0.0 in
  let inside = ref 0 in
  Array.iteri
    (fun i row ->
      let r = ref (-.d.y.(i)) in
      Array.iteri (fun j v -> r := !r +. (w.(j) *. v)) row;
      if Float.abs !r <= delta then begin
        incr inside;
        (* quadratic region: residual * x_j *)
        Array.iteri (fun j v -> grad.(j) <- grad.(j) +. (!r *. v)) row
      end
      else begin
        (* linear region: delta * sign(residual) * x_j *)
        let s = if !r > 0.0 then delta else -.delta in
        Array.iteri (fun j v -> grad.(j) <- grad.(j) +. (s *. v)) row
      end)
    d.x;
  (grad, !inside)

(* The gradient loop, startable from a previous parameter vector: the
   refresh path resumes close to the optimum (Section 1.5), the cold path
   starts at zero. *)
let train_weights ?(params = default_params) ?init (d : data) : float array =
  let n = Stdlib.max 1 (Array.length d.x) in
  let n_features = if Array.length d.x = 0 then 0 else Array.length d.x.(0) in
  let w =
    match init with
    | Some w0 when Array.length w0 = n_features -> Array.copy w0
    | _ -> Array.make n_features 0.0
  in
  for it = 1 to params.iterations do
    let lr = params.learning_rate /. sqrt (float_of_int it) in
    let grad, _ = gradient_aggregates d w ~delta:params.delta in
    for j = 0 to n_features - 1 do
      w.(j) <-
        w.(j) -. (lr *. ((grad.(j) /. float_of_int n) +. (params.l2 *. w.(j))))
    done
  done;
  w

let train ?(params = default_params) (d : data) : float array =
  train_weights ~params d

let predict (w : float array) (row : float array) =
  let acc = ref 0.0 in
  Array.iteri (fun j v -> acc := !acc +. (w.(j) *. v)) row;
  !acc

let objective ?(params = default_params) (w : float array) (d : data) =
  let n = Stdlib.max 1 (Array.length d.x) in
  let loss = ref 0.0 in
  Array.iteri
    (fun i row ->
      let r = predict w row -. d.y.(i) in
      let a = Float.abs r in
      loss :=
        !loss
        +.
        if a <= params.delta then 0.5 *. r *. r
        else params.delta *. (a -. (0.5 *. params.delta)))
    d.x;
  !loss /. float_of_int n

(* ---- the Model_intf adapter ----

   Huber's gradient is NOT expressible as static moments: the in-band /
   out-of-band split is an additive inequality under the CURRENT parameters,
   so every step needs theta-join aggregates over the data. The adapter is
   honest about this: it declares [`Rows] and forces the bundle's data
   matrix (a snapshot recompute when serving online), rather than pretending
   a covariance triple could carry the loss. *)

type named_model = {
  columns : string array; (* one-hot column names; slot 0 is the intercept *)
  weights : float array;
  delta : float;
}

let predict_named (m : named_model) (get : string -> Relational.Value.t) =
  let acc = ref 0.0 in
  Array.iteri
    (fun i col ->
      let v =
        if col = "intercept" then 1.0
        else
          match String.index_opt col '=' with
          | Some eq ->
              let attr = String.sub col 0 eq in
              let value = String.sub col (eq + 1) (String.length col - eq - 1) in
              if Relational.Value.to_string (get attr) = value then 1.0 else 0.0
          | None -> Relational.Value.to_float (get col)
      in
      acc := !acc +. (m.weights.(i) *. v))
    m.columns;
  !acc

module Model = struct
  let name = "huber"

  let description =
    "Huber-loss regression; per-step inequality aggregates over the data"

  type options = params

  let default_options = default_params

  type model = named_model

  let needs = `Rows

  let train_from_moments ?(options = default_params) ?warm_start
      (m : Model_intf.moments) =
    let rows = Lazy.force m.Model_intf.rows in
    let d = { x = rows.Model_intf.x; y = rows.Model_intf.y } in
    let init =
      match warm_start with
      | Some (w : model) when w.columns = rows.Model_intf.row_columns ->
          Some w.weights
      | _ -> None
    in
    {
      columns = rows.Model_intf.row_columns;
      weights = train_weights ~params:options ?init d;
      delta = options.delta;
    }

  let refresh ?options ~previous m =
    train_from_moments ?options ~warm_start:previous m

  let predict = predict_named

  let encode buf (m : model) =
    let module Codec = Relational.Codec in
    Codec.i64 buf (Array.length m.columns);
    Array.iter (Codec.str buf) m.columns;
    Array.iter (Codec.f64 buf) m.weights;
    Codec.f64 buf m.delta

  let decode r : model =
    let module Codec = Relational.Codec in
    let dim = Codec.read_i64 r in
    let columns = Array.init dim (fun _ -> Codec.read_str r) in
    let weights = Array.init dim (fun _ -> Codec.read_f64 r) in
    let delta = Codec.read_f64 r in
    { columns; weights; delta }
end
