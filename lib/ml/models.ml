(* The model registry: every Model_intf implementation under its CLI
   selector, mirroring the engine list the aggregate side keeps. The linreg
   variants share one model type and differ only in the optimiser the
   default options pick — closed form refreshes bit-identically from exact
   moments, the gradient methods warm-start. *)

module Intf = Model_intf

(* NB: shadowing [default_options] after [include] is not enough — the
   included [train_from_moments] already closed over the original default,
   so the entry points must be re-bound to thread the new one through. *)
module Linreg_closed = struct
  include Linreg.Model

  let name = "linreg-closed"
  let description = "ridge linear regression, one Cholesky solve of the moments"
  let default_options = { Linreg.ridge = 1e-3; method_ = Linreg.Closed_form }

  let train_from_moments ?(options = default_options) ?warm_start m =
    Linreg.Model.train_from_moments ~options ?warm_start m

  let refresh ?(options = default_options) ~previous m =
    Linreg.Model.refresh ~options ~previous m
end

module Linreg_gd = struct
  include Linreg.Model

  let name = "linreg-gd"

  let description =
    "ridge linear regression, line-searched gradient descent on the moments"

  let default_options =
    { Linreg.ridge = 1e-3; method_ = Linreg.Gradient_descent Linreg.default_gd }

  let train_from_moments ?(options = default_options) ?warm_start m =
    Linreg.Model.train_from_moments ~options ?warm_start m

  let refresh ?(options = default_options) ~previous m =
    Linreg.Model.refresh ~options ~previous m
end

let all : Intf.t list =
  [
    (module Linreg.Model);
    (module Linreg_closed);
    (module Linreg_gd);
    (module Polyreg.Model);
    (module Factorization_machine.Model);
    (module Huber.Model);
  ]

let find = Intf.find all

let find_exn n =
  match find n with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Models.find_exn: unknown model %s (known: %s)" n
           (String.concat ", " (List.map Intf.name all)))

let decode_packed (r : Relational.Codec.reader) : Intf.packed =
  let n = Relational.Codec.read_str r in
  match find n with
  | Some (module M) -> Intf.Packed ((module M), M.decode r)
  | None -> Relational.Codec.fail ("unknown model " ^ n)

(* How a warm refresh must compare to a cold retrain over the SAME
   statistics: direct solves reproduce bit-identically (under exact input
   arithmetic); convex optimisers run to tight convergence tolerances
   (CG 1e-12, GD 1e-9) so warm and cold meet at the unique ridge optimum —
   CG's stopping rule is much tighter than GD's, whose warm and cold paths
   can land ~1e-6 apart in prediction space on ill-conditioned draws;
   fm/huber run a FIXED iteration budget of a (possibly non-convex)
   objective, so warm and cold need not meet — they only get a sanity
   envelope on predictions. *)
let refresh_audit (m : Intf.t) : [ `Bitwise | `Tolerance of float ] =
  match Intf.name m with
  | "linreg-closed" | "polyreg" -> `Bitwise
  | "linreg-cg" -> `Tolerance 1e-6
  | "linreg-gd" -> `Tolerance 1e-5
  | _ -> `Tolerance 0.5
