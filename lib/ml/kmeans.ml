(* K-means over relational data (Section 3.3, Rk-means [23]).

   Two paths:
   - [lloyd]: standard weighted Lloyd iterations over explicit points — the
     structure-agnostic reference when run over the materialised join.
   - [rk_means]: the structure-aware path. Each numeric dimension is
     quantised into a per-dimension grid (equi-width over the dimension's
     observed range); the joint grid-cell weights are ONE count aggregate
     grouped by the per-relation bucket columns, evaluated by LMFAO over the
     (never materialised) join. Lloyd then clusters the weighted grid — a
     coreset whose size is bounded by the number of OCCUPIED cells, not by
     the join. This matches Rk-means' grid-coreset construction and keeps
     its constant-factor approximation flavour: every join tuple is moved to
     its cell centre, displacing it by at most half a cell diagonal. *)

open Relational
module Spec = Aggregates.Spec

type clustering = {
  centroids : float array array; (* k x d *)
  cost : float; (* weighted sum of squared distances *)
  iterations : int;
}

let sq_dist a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.0)) a;
  !acc

let nearest centroids p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun c centre ->
      let d = sq_dist p centre in
      if d < !best_d then begin
        best := c;
        best_d := d
      end)
    centroids;
  (!best, !best_d)

(* Weighted Lloyd with k-means++-style seeding (greedy farthest point on the
   weighted points, deterministic given the PRNG seed). *)
let lloyd ?(seed = 1) ?(max_iters = 50) ~k (points : (float array * float) array) :
    clustering =
  if Array.length points = 0 then
    { centroids = [||]; cost = 0.0; iterations = 0 }
  else begin
    let rng = Util.Prng.create seed in
    let d = Array.length (fst points.(0)) in
    let k = Stdlib.min k (Array.length points) in
    (* seeding: first uniform, then weighted-distance greedy *)
    let centroids = Array.make k (Array.make d 0.0) in
    centroids.(0) <- Array.copy (fst points.(Util.Prng.int rng (Array.length points)));
    for c = 1 to k - 1 do
      let far = ref 0 and far_d = ref neg_infinity in
      Array.iteri
        (fun i (p, w) ->
          let dmin = ref infinity in
          for c' = 0 to c - 1 do
            dmin := Stdlib.min !dmin (sq_dist p centroids.(c'))
          done;
          let score = w *. !dmin in
          if score > !far_d then begin
            far := i;
            far_d := score
          end)
        points;
      centroids.(c) <- Array.copy (fst points.(!far))
    done;
    let cost = ref infinity in
    let iterations = ref 0 in
    (try
       for it = 1 to max_iters do
         iterations := it;
         let sums = Array.init k (fun _ -> Array.make d 0.0) in
         let weights = Array.make k 0.0 in
         let new_cost = ref 0.0 in
         Array.iter
           (fun (p, w) ->
             let c, dist = nearest centroids p in
             new_cost := !new_cost +. (w *. dist);
             weights.(c) <- weights.(c) +. w;
             Array.iteri (fun i x -> sums.(c).(i) <- sums.(c).(i) +. (w *. x)) p)
           points;
         for c = 0 to k - 1 do
           if weights.(c) > 0.0 then
             centroids.(c) <- Array.map (fun s -> s /. weights.(c)) sums.(c)
         done;
         if !new_cost >= !cost -. 1e-12 then begin
           cost := !new_cost;
           raise Exit
         end;
         cost := !new_cost
       done
     with Exit -> ());
    { centroids; cost = !cost; iterations = !iterations }
  end

let points_of_relation (rel : Relation.t) (dims : string list) =
  let schema = Relation.schema rel in
  let cols =
    Array.of_list
      (List.map (fun d -> Relation.column rel (Schema.position schema d)) dims)
  in
  Array.init (Relation.cardinality rel) (fun i ->
      (Array.map (fun c -> Column.float_at c i) cols, 1.0))

(* ---- the structure-aware grid coreset ---- *)

type grid = { dims : string array; lo : float array; step : float array; cells : int }

let bucket_attr dim = "__bucket_" ^ dim

(* Per-dimension range from the base relations (each dimension lives in one
   relation; no join needed). *)
let make_grid (db : Database.t) ~(dims : string list) ~(cells : int) : grid =
  let dims = Array.of_list dims in
  let lo = Array.make (Array.length dims) infinity in
  let hi = Array.make (Array.length dims) neg_infinity in
  Array.iteri
    (fun i dim ->
      List.iter
        (fun rel ->
          match Schema.position_opt (Relation.schema rel) dim with
          | None -> ()
          | Some pos ->
              let col = Relation.column rel pos in
              for row = 0 to Relation.cardinality rel - 1 do
                let x = Column.float_at col row in
                if x < lo.(i) then lo.(i) <- x;
                if x > hi.(i) then hi.(i) <- x
              done)
        (Database.relations db))
    dims;
  let step =
    Array.mapi
      (fun i h ->
        let range = h -. lo.(i) in
        if range <= 0.0 then 1.0 else range /. float_of_int cells)
      hi
  in
  { dims; lo; step; cells }

let cell_of_value g i x =
  Stdlib.min (g.cells - 1)
    (Stdlib.max 0 (int_of_float ((x -. g.lo.(i)) /. g.step.(i))))

let centre_of_cell g i c = g.lo.(i) +. ((float_of_int c +. 0.5) *. g.step.(i))

(* Extend each relation owning a dimension with that dimension's bucket
   column; the grid weights are then one COUNT GROUP BY bucket columns. *)
let augmented_database (db : Database.t) (g : grid) =
  let owner = Hashtbl.create 8 in
  Array.iteri
    (fun i dim ->
      let rel =
        List.find
          (fun r -> Schema.mem (Relation.schema r) dim)
          (Database.relations db)
      in
      let cur = Option.value ~default:[] (Hashtbl.find_opt owner (Relation.name rel)) in
      Hashtbl.replace owner (Relation.name rel) ((i, dim) :: cur))
    g.dims;
  let relations =
    List.map
      (fun rel ->
        match Hashtbl.find_opt owner (Relation.name rel) with
        | None | Some [] -> rel
        | Some dims ->
            let schema = Relation.schema rel in
            let extra =
              List.map (fun (_, dim) -> Schema.attr (bucket_attr dim) Value.TInt) dims
            in
            let schema' = Schema.of_list (Schema.attrs schema @ extra) in
            let n = Relation.cardinality rel in
            let base = Array.map (fun c -> Column.sub c n) (Relation.columns rel) in
            let buckets =
              Array.of_list
                (List.map
                   (fun (i, dim) ->
                     let src = Relation.column rel (Schema.position schema dim) in
                     Column.of_ints
                       (Array.init n (fun row ->
                            cell_of_value g i (Column.float_at src row))))
                   dims)
            in
            Relation.of_columns (Relation.name rel) schema'
              (Array.append base buckets) n)
      (Database.relations db)
  in
  Database.create (Database.name db ^ "_grid") relations

(* The weighted coreset: occupied grid cells with their join counts. *)
let coreset ?(engine_options = Lmfao.Engine.default_options) (db : Database.t)
    (g : grid) : (float array * float) array =
  let db' = augmented_database db g in
  let spec =
    Spec.make ~id:"cells" ~terms:[]
      ~group_by:(Array.to_list (Array.map bucket_attr g.dims))
      ()
  in
  let results =
    (Lmfao.Engine.eval ~options:engine_options db'
       { Aggregates.Batch.name = "kmeans-grid"; aggregates = [ spec ] })
      .keyed
  in
  let cells = List.assoc "cells" results in
  Array.of_list
    (List.map
       (fun (assignment, w) ->
         let point =
           Array.mapi
             (fun i dim ->
               match List.assoc_opt (bucket_attr dim) assignment with
               | Some v -> centre_of_cell g i (Value.to_int v)
               | None -> invalid_arg "Kmeans.coreset: missing bucket")
             g.dims
         in
         (point, w))
       cells)

(* Rk-means: cluster the weighted grid coreset instead of the join. *)
let rk_means ?(seed = 1) ?(cells = 16) ?engine_options ~k (db : Database.t)
    ~(dims : string list) : clustering =
  let g = make_grid db ~dims ~cells in
  let points = coreset ?engine_options db g in
  lloyd ~seed ~k points

(* Cost of given centroids over explicit (point, weight) data. *)
let cost_of centroids points =
  Array.fold_left
    (fun acc (p, w) -> acc +. (w *. snd (nearest centroids p)))
    0.0 points
