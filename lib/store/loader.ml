(* Chunked loaders: in-memory relations (datagen) and CSV files to pages.

   Page encoding is embarrassingly parallel — each page covers a disjoint
   row range — so the relation importer encodes waves of [num_domains]
   pages on [Util.Pool] and appends them in index order; memory stays
   bounded by one wave of encoded pages. Sharded import runs one task per
   shard, each routing rows with the same [Keypack.shard_of_key] rule as
   [Fivm.Shard], so a shard's page file holds exactly the rows that shard
   would own. *)

module Relation = Relational.Relation
module Schema = Relational.Schema
module Keypack = Relational.Keypack
module Pool = Util.Pool

let pages_loaded = Obs.counter "store.pages_loaded"

let import_relation ~dir ?(page_rows = Paged.default_page_rows) rel =
  let n = Relation.cardinality rel in
  let name = Relation.name rel in
  let w = Paged.writer ~dir ~page_rows name (Relation.schema rel) in
  let npages = (n + page_rows - 1) / page_rows in
  let wave = Stdlib.max 1 (Pool.num_domains ()) in
  let i = ref 0 in
  while !i < npages do
    let base = !i in
    let batch = Stdlib.min wave (npages - base) in
    let encoded =
      Pool.parallel_tasks
        (List.init batch (fun j () ->
             let idx = base + j in
             let lo = idx * page_rows in
             let rows = Stdlib.min page_rows (n - lo) in
             (Page.encode ~index:idx rel ~lo ~rows, rows)))
    in
    List.iter
      (fun (enc, rows) ->
        Paged.append_encoded w enc ~rows;
        Obs.incr pages_loaded)
      encoded;
    i := base + batch
  done;
  Paged.close_writer w

let import_csv ~dir ?page_rows ~name ~schema path =
  let rows = Util.Csvio.read_file_located path in
  let rel = Relation.of_csv_rows_located name schema rows in
  import_relation ~dir ?page_rows rel

let shard_name name s = Printf.sprintf "%s.shard%d" name s

(* Write one paged relation per shard, routing rows by the packed key at the
   given attribute names — the routing [Fivm.Shard] uses, so shard [s]'s
   pages hold exactly its working set. One parallel task per shard; each
   task compiles its own extractor (extractors are not shared across
   domains) and scans the full input, keeping only its rows. *)
let import_sharded ~dir ?(page_rows = Paged.default_page_rows) ~shards ~key rel =
  let n = Relation.cardinality rel in
  let name = Relation.name rel in
  let schema = Relation.schema rel in
  let positions = Array.of_list (Schema.positions schema key) in
  Pool.parallel_tasks
    (List.init shards (fun s () ->
         let key_of = Relation.extractor rel positions in
         let w = Paged.writer ~dir ~page_rows (shard_name name s) schema in
         for i = 0 to n - 1 do
           if Keypack.shard_of_key ~shards (key_of i) = s then
             Paged.append_row w rel i
         done;
         Paged.close_writer w))

let open_shard ?cache_pages ~dir name s = Paged.openr ?cache_pages ~dir (shard_name name s)
