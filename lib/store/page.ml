(* One page of the paged columnar format: a fixed number of rows of every
   column, encoded column-major in the column's CURRENT representation
   ([Ints] as i64, [Floats] by bit pattern, [Boxed] as tagged values), so a
   decode rebuilds columns bit-identical to the slice that was encoded.

   Wire layout:

     page    := magic "BPG1" , Codec.frame(payload)
     payload := index u32 , rows u32 , ncols u8 , column*
     column  := tag u8 (0 ints | 1 floats | 2 boxed) , cell{rows}

   The frame ([len][crc32][payload], [Relational.Codec.frame]) makes every
   header field and cell checksum-protected: a torn tail or a flipped bit
   reads as "no page", located at the page's byte offset in the file. *)

module Codec = Relational.Codec
module Column = Relational.Column

let magic = "BPG1"

type t = { index : int; rows : int; columns : Column.t array }

let encode ~index rel ~lo ~rows =
  let payload = Buffer.create (rows * 16) in
  Codec.u32 payload index;
  Codec.u32 payload rows;
  let cols = Relational.Relation.columns rel in
  Codec.u8 payload (Array.length cols);
  Array.iter
    (fun col ->
      match Column.data col with
      | Column.Ints a ->
          Codec.u8 payload 0;
          for i = lo to lo + rows - 1 do
            Codec.i64 payload a.(i)
          done
      | Column.Floats a ->
          Codec.u8 payload 1;
          for i = lo to lo + rows - 1 do
            Codec.f64 payload a.(i)
          done
      | Column.Boxed a ->
          Codec.u8 payload 2;
          for i = lo to lo + rows - 1 do
            Codec.value payload a.(i)
          done)
    cols;
  let b = Buffer.create (Buffer.length payload + 16) in
  Buffer.add_string b magic;
  Codec.frame b (Buffer.contents payload);
  Buffer.contents b

(* Decode a page from [s]; [at] is the page's byte offset in its file, used
   to relocate decode errors from page-relative to file-absolute offsets. *)
let decode ?(at = 0) s =
  let relocate e =
    let offset = if e.Codec.offset < 0 then at else at + e.Codec.offset in
    Codec.fail ~offset e.Codec.reason
  in
  try
    let rd = Codec.reader s in
    let mlen = String.length magic in
    if Codec.remaining rd < mlen || String.sub s 0 mlen <> magic then
      Codec.fail ~offset:0 "bad page magic";
    rd.Codec.pos <- mlen;
    let payload = Codec.read_frame rd in
    let rd = Codec.reader payload in
    let index = Codec.read_u32 rd in
    let rows = Codec.read_u32 rd in
    let ncols = Codec.read_u8 rd in
    let columns =
      Array.init ncols (fun _ ->
          match Codec.read_u8 rd with
          | 0 -> Column.of_ints (Array.init rows (fun _ -> Codec.read_i64 rd))
          | 1 -> Column.of_floats (Array.init rows (fun _ -> Codec.read_f64 rd))
          | 2 -> Column.of_boxed (Array.init rows (fun _ -> Codec.read_value rd))
          | tag -> Codec.fail_at rd (Printf.sprintf "bad column tag %d" tag))
    in
    { index; rows; columns }
  with Codec.Decode_error e -> relocate e

let to_relation name schema page =
  Relational.Relation.of_columns name schema page.columns page.rows
