(* Paged on-disk relations: a relation is a `<name>.pages` file — the
   concatenation of CRC-framed pages ([Page]) — plus a `<name>.meta` file
   holding the schema, row counts and the page directory (byte offset,
   byte length and row count per page):

     meta    := magic "BSTM1" , Codec.frame(payload)
     payload := name , ncols u32 , (attr name , ty u8)* ,
                rows i64 , page_rows i64 , npages i64 ,
                (offset i64 , bytes i64 , rows i64)*

   The meta file is written to a [.tmp] sibling and renamed into place, so
   a crash mid-import never leaves a readable-but-wrong directory; and
   since the directory is itself one checksummed frame, a torn or corrupt
   meta reads as "no relation" with a located error.

   A reader handle decodes pages on demand through a bounded [Cache]; scans
   touch one page at a time in directory order, so a full-relation scan
   holds at most [cache_pages] decoded pages resident no matter the
   relation's cardinality — that is the out-of-core property the bench
   gauges verify. *)

module Codec = Relational.Codec
module Schema = Relational.Schema
module Relation = Relational.Relation
module Column = Relational.Column
module Value = Relational.Value

let pages_written = Obs.counter "store.pages_written"
let meta_magic = "BSTM1"
let default_page_rows = 4096
let default_cache_pages = 64

let pages_path dir name = Filename.concat dir (name ^ ".pages")
let meta_path dir name = Filename.concat dir (name ^ ".meta")

let ty_tag = function Value.TInt -> 0 | Value.TFloat -> 1 | Value.TStr -> 2

let ty_of_tag rd = function
  | 0 -> Value.TInt
  | 1 -> Value.TFloat
  | 2 -> Value.TStr
  | tag -> Codec.fail_at rd (Printf.sprintf "bad type tag %d" tag)

(* ---- meta ---- *)

let write_meta ~dir ~name ~schema ~rows ~page_rows directory =
  let payload = Buffer.create 256 in
  Codec.str payload name;
  let attrs = Schema.attrs schema in
  Codec.u32 payload (List.length attrs);
  List.iter
    (fun (a : Schema.attr) ->
      Codec.str payload a.name;
      Codec.u8 payload (ty_tag a.ty))
    attrs;
  Codec.i64 payload rows;
  Codec.i64 payload page_rows;
  Codec.i64 payload (Array.length directory);
  Array.iter
    (fun (offset, bytes, prows) ->
      Codec.i64 payload offset;
      Codec.i64 payload bytes;
      Codec.i64 payload prows)
    directory;
  let b = Buffer.create (Buffer.length payload + 16) in
  Buffer.add_string b meta_magic;
  Codec.frame b (Buffer.contents payload);
  let path = meta_path dir name in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (Buffer.contents b));
  Sys.rename tmp path

let read_meta ~dir name =
  let s = In_channel.with_open_bin (meta_path dir name) In_channel.input_all in
  let mlen = String.length meta_magic in
  if String.length s < mlen || String.sub s 0 mlen <> meta_magic then
    Codec.fail ~offset:0 "bad meta magic";
  let rd = Codec.reader ~pos:mlen s in
  let payload = Codec.read_frame rd in
  let rd = Codec.reader payload in
  let stored_name = Codec.read_str rd in
  let ncols = Codec.read_u32 rd in
  let attrs =
    List.init ncols (fun _ ->
        let n = Codec.read_str rd in
        let ty = ty_of_tag rd (Codec.read_u8 rd) in
        Schema.attr n ty)
  in
  let rows = Codec.read_i64 rd in
  let page_rows = Codec.read_i64 rd in
  let npages = Codec.read_i64 rd in
  let directory =
    Array.init npages (fun _ ->
        let offset = Codec.read_i64 rd in
        let bytes = Codec.read_i64 rd in
        let prows = Codec.read_i64 rd in
        (offset, bytes, prows))
  in
  (stored_name, Schema.of_list attrs, rows, page_rows, directory)

(* ---- writer ---- *)

type writer = {
  w_dir : string;
  w_name : string;
  w_schema : Schema.t;
  w_page_rows : int;
  w_oc : Out_channel.t;
  w_tmp : string;
  mutable w_buf : Relation.t;
  mutable w_entries : (int * int * int) list; (* newest first *)
  mutable w_offset : int;
  mutable w_rows : int;
  mutable w_pages : int;
}

let writer ~dir ?(page_rows = default_page_rows) name schema =
  let tmp = pages_path dir name ^ ".tmp" in
  {
    w_dir = dir;
    w_name = name;
    w_schema = schema;
    w_page_rows = page_rows;
    w_oc = Out_channel.open_bin tmp;
    w_tmp = tmp;
    w_buf = Relation.create ~capacity:page_rows name schema;
    w_entries = [];
    w_offset = 0;
    w_rows = 0;
    w_pages = 0;
  }

let write_page w encoded rows =
  Obs.incr pages_written;
  Out_channel.output_string w.w_oc encoded;
  w.w_entries <- (w.w_offset, String.length encoded, rows) :: w.w_entries;
  w.w_offset <- w.w_offset + String.length encoded;
  w.w_rows <- w.w_rows + rows;
  w.w_pages <- w.w_pages + 1

let flush_buf w =
  let rows = Relation.cardinality w.w_buf in
  if rows > 0 then begin
    write_page w (Page.encode ~index:w.w_pages w.w_buf ~lo:0 ~rows) rows;
    w.w_buf <- Relation.create ~capacity:w.w_page_rows w.w_name w.w_schema
  end

let append_row w src i =
  Relation.append_from w.w_buf src i;
  if Relation.cardinality w.w_buf >= w.w_page_rows then flush_buf w

let append_chunk w chunk =
  for i = 0 to Relation.cardinality chunk - 1 do
    append_row w chunk i
  done

let append_encoded w encoded ~rows = write_page w encoded rows

let close_writer w =
  flush_buf w;
  Out_channel.close w.w_oc;
  Sys.rename w.w_tmp (pages_path w.w_dir w.w_name);
  write_meta ~dir:w.w_dir ~name:w.w_name ~schema:w.w_schema ~rows:w.w_rows
    ~page_rows:w.w_page_rows
    (Array.of_list (List.rev w.w_entries));
  w.w_rows

(* ---- reader ---- *)

type t = {
  dir : string;
  name : string;
  schema : Schema.t;
  rows : int;
  page_rows : int;
  directory : (int * int * int) array;
  ic : In_channel.t;
  cache : Page.t Cache.t;
}

let openr ?(cache_pages = default_cache_pages) ~dir name =
  let stored_name, schema, rows, page_rows, directory = read_meta ~dir name in
  if stored_name <> name then
    Codec.fail (Printf.sprintf "meta names %s, expected %s" stored_name name);
  {
    dir;
    name;
    schema;
    rows;
    page_rows;
    directory;
    ic = In_channel.open_bin (pages_path dir name);
    cache = Cache.create ~budget:cache_pages;
  }

let name t = t.name
let schema t = t.schema
let rows t = t.rows
let page_rows t = t.page_rows
let pages t = Array.length t.directory
let close t = In_channel.close t.ic

let load_page t i =
  let offset, bytes, prows = t.directory.(i) in
  In_channel.seek t.ic (Int64.of_int offset);
  let s =
    match In_channel.really_input_string t.ic bytes with
    | Some s -> s
    | None -> Codec.fail ~offset (Printf.sprintf "torn page %d: short read" i)
  in
  let page = Page.decode ~at:offset s in
  if page.Page.index <> i then
    Codec.fail ~offset (Printf.sprintf "page %d holds index %d" i page.Page.index);
  if page.Page.rows <> prows then
    Codec.fail ~offset
      (Printf.sprintf "page %d holds %d rows, directory says %d" i page.Page.rows prows);
  page

let page t i = Cache.find t.cache i ~load:(load_page t)
let chunk t i = Page.to_relation t.name t.schema (page t i)

let iter_chunks t f =
  for i = 0 to pages t - 1 do
    f (chunk t i)
  done

let stream t : Relational.Database.chunks = fun f -> iter_chunks t f

(* A stub relation for planners: true name, schema and cardinality, but
   capacity-1 columns holding no data. Engines that cost, order or group by
   cardinality work unchanged; any actual cell read is a bug (the stream
   must be scanned instead). *)
let stub t =
  let cols =
    Array.of_list (List.map (fun (a : Schema.attr) -> Column.create a.ty 1) (Schema.attrs t.schema))
  in
  Relation.of_columns t.name t.schema cols t.rows

(* Decode every page and cross-check the directory; returns (pages, rows)
   on success, raises a located [Codec.Decode_error] on any damage. *)
let verify t =
  let total = ref 0 in
  for i = 0 to pages t - 1 do
    let p = load_page t i in
    total := !total + p.Page.rows
  done;
  if !total <> t.rows then
    Codec.fail (Printf.sprintf "pages hold %d rows, meta says %d" !total t.rows);
  (pages t, t.rows)

(* Materialise the whole paged relation in memory (small relations, tests). *)
let to_relation t =
  let out = Relation.create ~capacity:(Stdlib.max 1 t.rows) t.name t.schema in
  iter_chunks t (fun c ->
      for i = 0 to Relation.cardinality c - 1 do
        Relation.append_from out c i
      done);
  out
