(* Bounded page cache: at most [budget] decoded pages stay resident; the
   least-recently-used page is evicted when a miss would exceed it. The
   budget is what makes paged scans out-of-core — with a cyclic scan of a
   relation larger than the budget, every page is decoded again each pass,
   and peak residency never exceeds the budget (gauge-verified in CI).

   Recency is a monotone stamp per entry; eviction scans for the minimum.
   Budgets are tens-to-thousands of pages, so the O(budget) evict scan is
   noise next to the page decode it makes room for. *)

let page_reads = Obs.counter "store.page_reads"
let cache_hits = Obs.counter "store.cache_hits"
let evictions = Obs.counter "store.evictions"
let cache_pages = Obs.gauge "store.cache_pages"
let cache_pages_peak = Obs.gauge "store.cache_pages_peak"
let cache_budget = Obs.gauge "store.cache_budget"

type 'a t = {
  budget : int;
  entries : (int, 'a * int ref) Hashtbl.t;
  mutable clock : int;
}

let create ~budget =
  let budget = Stdlib.max 1 budget in
  Obs.set_gauge cache_budget (float_of_int budget);
  { budget; entries = Hashtbl.create (2 * budget); clock = 0 }

let budget t = t.budget
let resident t = Hashtbl.length t.entries

let note_resident t =
  let n = float_of_int (Hashtbl.length t.entries) in
  Obs.set_gauge cache_pages n;
  if n > Obs.gauge_value cache_pages_peak then Obs.set_gauge cache_pages_peak n

let evict_lru t =
  let victim = ref (-1) and oldest = ref max_int in
  Hashtbl.iter
    (fun k (_, stamp) -> if !stamp < !oldest then begin
        oldest := !stamp;
        victim := k
      end)
    t.entries;
  if !victim >= 0 then begin
    Hashtbl.remove t.entries !victim;
    Obs.incr evictions
  end

let find t key ~load =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.entries key with
  | Some (v, stamp) ->
      stamp := t.clock;
      Obs.incr cache_hits;
      v
  | None ->
      Obs.incr page_reads;
      let v = load key in
      if Hashtbl.length t.entries >= t.budget then evict_lru t;
      Hashtbl.replace t.entries key (v, ref t.clock);
      note_resident t;
      v

let clear t =
  Hashtbl.reset t.entries;
  Obs.set_gauge cache_pages 0.0
