(** Paged on-disk relations: `<name>.pages` (CRC-framed pages) plus
    `<name>.meta` (schema + page directory, one checksummed frame, written
    tmp+rename). Readers decode pages on demand through a bounded LRU
    {!Cache}, so scans stay out-of-core. *)

val default_page_rows : int
val default_cache_pages : int

val pages_path : string -> string -> string
val meta_path : string -> string -> string

(** {1 Writing} *)

type writer

val writer :
  dir:string -> ?page_rows:int -> string -> Relational.Schema.t -> writer

val append_row : writer -> Relational.Relation.t -> int -> unit
val append_chunk : writer -> Relational.Relation.t -> unit

val append_encoded : writer -> string -> rows:int -> unit
(** Append an already-encoded page (parallel loaders); pages must arrive in
    index order. *)

val close_writer : writer -> int
(** Flush the trailing partial page, rename the pages file into place and
    write the meta directory. Returns total rows written. *)

(** {1 Reading} *)

type t

val openr : ?cache_pages:int -> dir:string -> string -> t
(** Open for reading with the given page-cache budget. Raises
    [Relational.Codec.Decode_error] (located) on a corrupt meta. *)

val name : t -> string
val schema : t -> Relational.Schema.t
val rows : t -> int
val page_rows : t -> int
val pages : t -> int
val close : t -> unit

val chunk : t -> int -> Relational.Relation.t
(** Page [i] as an in-memory relation chunk (via the cache). *)

val iter_chunks : t -> (Relational.Relation.t -> unit) -> unit
(** Sequential scan, one page chunk at a time, in global row order. *)

val stream : t -> Relational.Database.chunks

val stub : t -> Relational.Relation.t
(** Planner stub: true name/schema/cardinality, no resident cells. *)

val verify : t -> int * int
(** Decode every page against the directory; [(pages, rows)] on success,
    located [Decode_error] on damage. *)

val to_relation : t -> Relational.Relation.t
(** Materialise fully in memory (tests, small relations). *)
