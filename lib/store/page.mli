(** Page codec of the paged columnar store: CRC-framed, column-major,
    bit-exact. See the .ml header for the wire grammar. *)

type t = { index : int; rows : int; columns : Relational.Column.t array }

val magic : string

val encode : index:int -> Relational.Relation.t -> lo:int -> rows:int -> string
(** Encode rows [lo, lo+rows) of the relation as one page. *)

val decode : ?at:int -> string -> t
(** Decode one page. Raises [Relational.Codec.Decode_error] on torn or
    corrupt input, located at the absolute file offset [at + relative]. *)

val to_relation : string -> Relational.Schema.t -> t -> Relational.Relation.t
(** Wrap a decoded page as an in-memory relation chunk. *)
