(** Parallel chunked loaders: datagen relations and CSV files to pages. *)

val import_relation :
  dir:string -> ?page_rows:int -> Relational.Relation.t -> int
(** Encode the relation's pages in parallel waves on [Util.Pool] and write
    `<name>.pages` / `<name>.meta` under [dir]. Returns rows written. *)

val import_csv :
  dir:string ->
  ?page_rows:int ->
  name:string ->
  schema:Relational.Schema.t ->
  string ->
  int
(** Typed CSV import ([Util.Csvio] dialect); raises [Util.Csvio.Malformed]
    with the source position on bad input. *)

val shard_name : string -> int -> string

val import_sharded :
  dir:string ->
  ?page_rows:int ->
  shards:int ->
  key:string list ->
  Relational.Relation.t ->
  int list
(** Per-shard page directories: one paged relation per shard, rows routed
    by [Keypack.shard_of_key] on the named key attributes (the same rule as
    [Fivm.Shard]). One parallel task per shard; returns rows per shard. *)

val open_shard : ?cache_pages:int -> dir:string -> string -> int -> Paged.t
