(** LRU page cache with a bounded page budget. Counters:
    [store.page_reads] (misses → loads), [store.cache_hits],
    [store.evictions]; gauges: [store.cache_pages] (resident),
    [store.cache_pages_peak], [store.cache_budget]. *)

type 'a t

val create : budget:int -> 'a t
(** [budget] is clamped to at least 1 page. *)

val budget : 'a t -> int
val resident : 'a t -> int

val find : 'a t -> int -> load:(int -> 'a) -> 'a
(** Return the cached value for [key], loading (and caching, evicting the
    LRU entry if the budget is full) on a miss. *)

val clear : 'a t -> unit
